// Command sketchlint is this repository's custom static analyzer. It
// enforces the correctness contracts that go vet cannot see:
//
//	unchecked-err  errors from Quantile/Rank/Merge/UnmarshalBinary must
//	               not be discarded in non-test code
//	float-eq       no == / != between non-constant floats (use an
//	               epsilon, math.Float64bits, or math.IsNaN)
//	global-rand    internal/ packages must use seeded generators
//	               (internal/datagen), never the global math/rand
//	panic          sketch packages may panic only in invariant files or
//	               functions whose doc comment documents the panic
//
// Usage:
//
//	go run ./cmd/sketchlint ./...          # whole module
//	go run ./cmd/sketchlint ./internal/kll # specific packages
//
// It exits 1 when findings are reported, 2 on analysis failure. Built
// only on the standard library (go/parser, go/types); see internal/lint.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	var (
		rules = flag.String("rules", "", "comma-separated rule names to enable (default: all)")
		quiet = flag.Bool("q", false, "suppress the summary line")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: sketchlint [flags] [./... | packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "sketchlint:", err)
		os.Exit(2)
	}
	// Validate -rules up front: a typo'd rule name must not silently
	// filter every finding and report a clean tree.
	if *rules != "" {
		for _, r := range strings.Split(*rules, ",") {
			if !lint.KnownRule(strings.TrimSpace(r)) {
				fmt.Fprintf(os.Stderr, "sketchlint: unknown rule %q (known: %s)\n",
					strings.TrimSpace(r), strings.Join(lint.Rules(), ", "))
				os.Exit(2)
			}
		}
	}
	findings, err := run(root, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "sketchlint:", err)
		os.Exit(2)
	}
	if *rules != "" {
		enabled := make(map[string]bool)
		for _, r := range strings.Split(*rules, ",") {
			enabled[strings.TrimSpace(r)] = true
		}
		kept := findings[:0]
		for _, f := range findings {
			if enabled[f.Rule] {
				kept = append(kept, f)
			}
		}
		findings = kept
	}
	for _, f := range findings {
		rel := f
		if r, err := filepath.Rel(root, f.Pos.Filename); err == nil {
			rel.Pos.Filename = r
		}
		fmt.Println(rel)
	}
	if len(findings) > 0 {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "sketchlint: %d finding(s)\n", len(findings))
		}
		os.Exit(1)
	}
}

// run loads and checks the requested packages. With no arguments or a
// "./..." pattern it checks the whole module.
func run(root string, args []string) ([]lint.Finding, error) {
	cfg := lint.DefaultConfig()
	if len(args) == 0 {
		args = []string{"./..."}
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		return nil, err
	}
	var findings []lint.Finding
	seen := make(map[string]bool)
	check := func(pkg *lint.Package) {
		if pkg == nil || seen[pkg.ImportPath] {
			return
		}
		seen[pkg.ImportPath] = true
		findings = append(findings, lint.Check(pkg, cfg)...)
	}
	for _, arg := range args {
		if arg == "./..." || arg == "..." || arg == "all" {
			pkgs, err := loader.LoadAll()
			if err != nil {
				return nil, err
			}
			for _, p := range pkgs {
				check(p)
			}
			continue
		}
		pkg, err := loader.LoadDir(arg)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", arg, err)
		}
		check(pkg)
	}
	return findings, nil
}

// findModuleRoot walks upward from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
