// Command sketchlint is this repository's custom static analyzer. It
// enforces the correctness contracts that go vet cannot see — per-
// package rules (unchecked-err, float-eq, global-rand, panic,
// container-heap, quantile-loop, naked-panic, recover-swallow,
// hotpath-alloc) and whole-module rules that walk a conservative call
// graph across function and package boundaries (purity, atomic-mix).
// Run `sketchlint -help` for the rule list with one-line docs.
//
// Findings can be suppressed case by case with
//
//	//lint:ignore <rule> <reason>
//
// on the flagged line or the line above it; suppressions that stop
// matching anything are themselves reported (unused-suppression).
//
// Usage:
//
//	go run ./cmd/sketchlint ./...          # whole module
//	go run ./cmd/sketchlint ./internal/kll # filter output to packages
//	go run ./cmd/sketchlint -json ./...    # machine-readable findings
//
// The whole module is always loaded and analyzed (the cross-package
// rules need every compilation unit); package arguments filter which
// findings are reported. It exits 1 when findings are reported, 2 on
// analysis failure. Built only on the standard library (go/parser,
// go/types); see internal/lint.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/lint"
)

// jsonFinding is the -json wire form of one finding, consumed by CI.
type jsonFinding struct {
	File   string `json:"file"`
	Line   int    `json:"line"`
	Column int    `json:"column"`
	Rule   string `json:"rule"`
	Msg    string `json:"msg"`
}

func main() {
	var (
		rules    = flag.String("rules", "", "comma-separated rule names to enable (default: all)")
		jsonOut  = flag.Bool("json", false, "emit findings as a JSON array on stdout (for CI)")
		quiet    = flag.Bool("q", false, "suppress the summary line")
		listDocs = flag.Bool("list", false, "list every rule with its one-line doc and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: sketchlint [flags] [./... | packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *listDocs {
		docs := lint.RuleDocs()
		for _, r := range lint.Rules() {
			fmt.Printf("%-20s %s\n", r, docs[r])
		}
		return
	}

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "sketchlint:", err)
		os.Exit(2)
	}
	// Validate -rules up front: a typo'd rule name must not silently
	// filter every finding and report a clean tree.
	enabledRules, err := lint.ValidateRules(*rules)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sketchlint:", err)
		os.Exit(2)
	}
	findings, err := run(root, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "sketchlint:", err)
		os.Exit(2)
	}
	if enabledRules != nil {
		enabled := make(map[string]bool, len(enabledRules))
		for _, r := range enabledRules {
			enabled[r] = true
		}
		kept := findings[:0]
		for _, f := range findings {
			if enabled[f.Rule] {
				kept = append(kept, f)
			}
		}
		findings = kept
	}
	for i, f := range findings {
		if rel, err := filepath.Rel(root, f.Pos.Filename); err == nil {
			findings[i].Pos.Filename = rel
		}
	}
	if *jsonOut {
		out := make([]jsonFinding, len(findings))
		for i, f := range findings {
			out[i] = jsonFinding{File: f.Pos.Filename, Line: f.Pos.Line, Column: f.Pos.Column, Rule: f.Rule, Msg: f.Msg}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "sketchlint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		if !*quiet && !*jsonOut {
			fmt.Fprintf(os.Stderr, "sketchlint: %d finding(s)\n", len(findings))
		}
		os.Exit(1)
	}
}

// run analyzes the whole module and filters the findings to the
// requested packages. Cross-function rules (purity, atomic-mix) need
// every package loaded regardless of what was asked for, so the load
// always covers the module and the arguments select output only.
func run(root string, args []string) ([]lint.Finding, error) {
	findings, err := lint.CheckAll(root, lint.DefaultConfig())
	if err != nil {
		return nil, err
	}
	if wantAll(args) {
		return findings, nil
	}
	dirs := make(map[string]bool, len(args))
	for _, arg := range args {
		abs, err := filepath.Abs(arg)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", arg, err)
		}
		if _, err := os.Stat(abs); err != nil {
			return nil, fmt.Errorf("%s: %w", arg, err)
		}
		dirs[abs] = true
	}
	kept := findings[:0]
	for _, f := range findings {
		if dirs[filepath.Dir(f.Pos.Filename)] {
			kept = append(kept, f)
		}
	}
	return kept, nil
}

// wantAll reports whether args ask for the whole module.
func wantAll(args []string) bool {
	if len(args) == 0 {
		return true
	}
	for _, arg := range args {
		if arg == "./..." || arg == "..." || arg == "all" {
			return true
		}
	}
	return false
}

// findModuleRoot walks upward from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
