// Command benchjson converts `go test -bench` text output into JSON and
// compares a current run against a recorded baseline.
//
// Usage:
//
//	benchjson -baseline results/bench_seed_stream.txt \
//	          -current  results/bench_stream_current.txt \
//	          -compare  'BenchmarkInsert/kll=BenchmarkInsertBatch/kll/batch' \
//	          -out      BENCH_stream.json
//
// Each -compare flag (repeatable) names a baseline benchmark and the
// current benchmark it should be measured against, separated by the
// '=' directly before the current name's "Benchmark" prefix (so
// sub-benchmark names that themselves contain '=', like "w=4", stay
// intact). The emitted JSON holds every parsed benchmark of both
// files (ns/op, B/op, allocs/op) plus a comparison list with the
// baseline/current ns/op ratio as "speedup".
//
// -baseline may be omitted, in which case the current file doubles as
// the baseline: -compare pairs then relate two benchmarks of the same
// run (e.g. a locked single-sketch baseline against the concurrent
// writer path, 'BenchmarkConcurrentInsert/kll/locked/w=4=Benchmark...').
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	Iterations  int64   `json:"iterations"`
}

// Comparison pairs a baseline benchmark with its current counterpart.
type Comparison struct {
	Baseline        string  `json:"baseline"`
	Current         string  `json:"current"`
	BaselineNsPerOp float64 `json:"baseline_ns_per_op"`
	CurrentNsPerOp  float64 `json:"current_ns_per_op"`
	Speedup         float64 `json:"speedup"`
}

// Report is the emitted document.
type Report struct {
	BaselineFile string            `json:"baseline_file"`
	CurrentFile  string            `json:"current_file"`
	Baseline     map[string]Result `json:"baseline"`
	Current      map[string]Result `json:"current"`
	Comparisons  []Comparison      `json:"comparisons"`
}

// gomaxprocsSuffix strips the -N parallelism suffix go test appends to
// benchmark names when GOMAXPROCS != 1.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// parseFile extracts benchmark results from go test -bench output.
func parseFile(path string) (map[string]Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]Result)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := Result{Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = v
			case "allocs/op":
				r.AllocsPerOp = v
			}
		}
		name := gomaxprocsSuffix.ReplaceAllString(fields[0], "")
		// With -count=N each benchmark appears N times; keep the
		// fastest run (best-of-N), the standard way to strip scheduler
		// noise from a shared CI machine before a ratio gate.
		if prev, ok := out[name]; !ok || r.NsPerOp < prev.NsPerOp {
			out[name] = r
		}
	}
	return out, sc.Err()
}

// compareList collects repeated -compare flags.
type compareList []string

func (c *compareList) String() string     { return strings.Join(*c, ",") }
func (c *compareList) Set(s string) error { *c = append(*c, s); return nil }

// cutCompare splits a -compare pair at the '=' immediately preceding
// the current benchmark's name, so baseline names containing '=' (e.g.
// sub-benchmarks like "w=1") survive intact.
func cutCompare(pair string) (name, cur string, ok bool) {
	if i := strings.Index(pair, "=Benchmark"); i >= 0 {
		return pair[:i], pair[i+1:], true
	}
	name, cur, ok = strings.Cut(pair, "=")
	return name, cur, ok
}

func main() {
	var (
		baselinePath = flag.String("baseline", "", "baseline go test -bench output file")
		currentPath  = flag.String("current", "", "current go test -bench output file")
		outPath      = flag.String("out", "", "output JSON file (default stdout)")
		compares     compareList
	)
	flag.Var(&compares, "compare", "baselineName=currentName pair to compare (repeatable)")
	flag.Parse()
	if *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -current is required")
		os.Exit(2)
	}
	if *baselinePath == "" {
		// Self-comparison mode: -compare pairs relate benchmarks within
		// the current run.
		*baselinePath = *currentPath
	}

	report := Report{BaselineFile: *baselinePath, CurrentFile: *currentPath}
	var err error
	if report.Baseline, err = parseFile(*baselinePath); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if report.Current, err = parseFile(*currentPath); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	for _, pair := range compares {
		name, cur, ok := cutCompare(pair)
		if !ok {
			fmt.Fprintf(os.Stderr, "benchjson: malformed -compare %q\n", pair)
			os.Exit(2)
		}
		b, okB := report.Baseline[name]
		c, okC := report.Current[cur]
		if !okB || !okC {
			fmt.Fprintf(os.Stderr, "benchjson: comparison %q: baseline found=%v current found=%v\n", pair, okB, okC)
			os.Exit(1)
		}
		cmp := Comparison{
			Baseline:        name,
			Current:         cur,
			BaselineNsPerOp: b.NsPerOp,
			CurrentNsPerOp:  c.NsPerOp,
		}
		if c.NsPerOp > 0 {
			cmp.Speedup = b.NsPerOp / c.NsPerOp
		}
		report.Comparisons = append(report.Comparisons, cmp)
	}

	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	blob = append(blob, '\n')
	if *outPath == "" {
		os.Stdout.Write(blob)
		return
	}
	if err := os.WriteFile(*outPath, blob, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
