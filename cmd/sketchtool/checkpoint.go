package main

import (
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/checkpoint"
)

// checkpointUsage documents the checkpoint subcommands.
const checkpointUsage = `usage: sketchtool checkpoint <inspect|verify> <path ...>

  inspect  print each file's envelope metadata (record name, format
           version, payload size, CRC32-C and whether it verifies);
           engine snapshots additionally get a state summary
  verify   validate checkpoints: for a directory, every snap-*.qckp in
           it (a checkpoint.DirStore); for a file, its envelope.
           Exits 1 if anything fails validation.
`

// checkpointCmd dispatches `sketchtool checkpoint <sub> <paths>`,
// writing to w; it returns the process exit code.
func checkpointCmd(args []string, w io.Writer) int {
	if len(args) < 2 {
		fmt.Fprint(os.Stderr, checkpointUsage)
		return 2
	}
	sub, paths := args[0], args[1:]
	switch sub {
	case "inspect":
		return checkpointInspect(paths, w)
	case "verify":
		return checkpointVerify(paths, w)
	default:
		fmt.Fprintf(os.Stderr, "sketchtool checkpoint: unknown subcommand %q\n%s", sub, checkpointUsage)
		return 2
	}
}

func checkpointInspect(paths []string, w io.Writer) int {
	code := 0
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(w, "%s: ERROR %v\n", path, err)
			code = 1
			continue
		}
		info, err := checkpoint.Inspect(data)
		if err != nil {
			fmt.Fprintf(w, "%s: ERROR %v\n", path, err)
			code = 1
			continue
		}
		status := "OK"
		if !info.CRCValid {
			status = "CHECKSUM MISMATCH"
			code = 1
		}
		fmt.Fprintf(w, "%s: name=%s version=%d payload=%dB crc=%08x %s\n",
			path, info.Name, info.Version, info.PayloadBytes, info.CRC, status)
		if info.Name == "engine-snapshot" && info.CRCValid {
			snap, err := checkpoint.DecodeSnapshot(data)
			if err != nil {
				fmt.Fprintf(w, "%s: ERROR snapshot record: %v\n", path, err)
				code = 1
				continue
			}
			fmt.Fprintf(w, "  seq=%d sketch=%s drawn=%d watermark=%v next_fire=%d open_windows=%d in_flight=%d\n",
				snap.Seq, snap.SketchName, snap.Drawn, time.Duration(snap.Watermark), snap.NextFire,
				len(snap.Windows), len(snap.InFlight))
			fmt.Fprintf(w, "  generated=%d accepted=%d dropped_late=%d rejected=%d\n",
				snap.Generated, snap.Accepted, snap.DroppedLate, snap.RejectedInput)
		}
	}
	return code
}

func checkpointVerify(paths []string, w io.Writer) int {
	code := 0
	for _, path := range paths {
		fi, err := os.Stat(path)
		if err != nil {
			fmt.Fprintf(w, "%s: ERROR %v\n", path, err)
			code = 1
			continue
		}
		if fi.IsDir() {
			if verifyStoreDir(path, w) != 0 {
				code = 1
			}
			continue
		}
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(w, "%s: ERROR %v\n", path, err)
			code = 1
			continue
		}
		if name, _, err := checkpoint.Open(data); err != nil {
			fmt.Fprintf(w, "%s: CORRUPT %v\n", path, err)
			code = 1
		} else {
			fmt.Fprintf(w, "%s: OK name=%s\n", path, name)
		}
	}
	return code
}

func verifyStoreDir(dir string, w io.Writer) int {
	store, err := checkpoint.NewDirStore(dir)
	if err != nil {
		fmt.Fprintf(w, "%s: ERROR %v\n", dir, err)
		return 1
	}
	seqs, err := store.Seqs()
	if err != nil {
		fmt.Fprintf(w, "%s: ERROR %v\n", dir, err)
		return 1
	}
	if len(seqs) == 0 {
		fmt.Fprintf(w, "%s: no snapshots\n", dir)
		return 0
	}
	code, valid := 0, 0
	for _, seq := range seqs {
		data, err := store.Get(seq)
		if err != nil {
			fmt.Fprintf(w, "%s: seq %d: ERROR %v\n", dir, seq, err)
			code = 1
			continue
		}
		snap, err := checkpoint.DecodeSnapshot(data)
		if err != nil {
			fmt.Fprintf(w, "%s: seq %d: CORRUPT %v\n", dir, seq, err)
			code = 1
			continue
		}
		valid++
		fmt.Fprintf(w, "%s: seq %d: OK sketch=%s drawn=%d open_windows=%d (%dB)\n",
			dir, seq, snap.SketchName, snap.Drawn, len(snap.Windows), len(data))
	}
	fmt.Fprintf(w, "%s: %d/%d snapshots valid\n", dir, valid, len(seqs))
	return code
}
