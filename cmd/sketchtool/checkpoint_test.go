package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/datagen"
	"repro/internal/kll"
	"repro/internal/sketch"
	"repro/internal/stream"
)

// runStoreDir produces a real checkpoint directory by running the
// stream engine with a DirStore, so the CLI is tested against genuine
// snapshots rather than hand-built fixtures.
func runStoreDir(t *testing.T) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "ckpt")
	store, err := checkpoint.NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := stream.NewEngine(stream.Config{
		WindowSize:      500 * time.Millisecond,
		Rate:            2000,
		NumWindows:      4,
		Partitions:      2,
		NewValues:       func() datagen.Source { return datagen.NewUniform(1, 100, 3) },
		Builder:         func() sketch.Sketch { return kll.NewWithSeed(64, 9) },
		CheckpointStore: store,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(func(stream.WindowResult) {}); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestCheckpointCLIRoundTrip drives `sketchtool checkpoint verify` and
// `inspect` over a real checkpoint directory: clean snapshots verify
// with exit 0 and print their metadata; a corrupted file flips both
// commands to failure and the damage is reported, not panicked on.
func TestCheckpointCLIRoundTrip(t *testing.T) {
	dir := runStoreDir(t)
	store, err := checkpoint.NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	seqs, err := store.Seqs()
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) == 0 {
		t.Fatal("engine run produced no checkpoints")
	}

	var out strings.Builder
	if code := checkpointCmd([]string{"verify", dir}, &out); code != 0 {
		t.Fatalf("verify on clean store exited %d:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "snapshots valid") || strings.Contains(out.String(), "CORRUPT") {
		t.Errorf("verify output:\n%s", out.String())
	}

	snapPath := store.Path(seqs[len(seqs)-1])
	out.Reset()
	if code := checkpointCmd([]string{"inspect", snapPath}, &out); code != 0 {
		t.Fatalf("inspect on clean snapshot exited %d:\n%s", code, out.String())
	}
	for _, want := range []string{"name=engine-snapshot", "crc=", " OK", "sketch=kll", "generated="} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("inspect output missing %q:\n%s", want, out.String())
		}
	}

	// Corrupt the newest snapshot in place: verify and inspect must both
	// flag it and exit non-zero.
	data, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x10
	if err := os.WriteFile(snapPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if code := checkpointCmd([]string{"verify", dir}, &out); code == 0 {
		t.Fatalf("verify passed a corrupted store:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "CORRUPT") {
		t.Errorf("verify did not flag the corrupt snapshot:\n%s", out.String())
	}
	out.Reset()
	if code := checkpointCmd([]string{"inspect", snapPath}, &out); code == 0 {
		t.Fatalf("inspect passed a corrupted snapshot:\n%s", out.String())
	}

	// Unknown subcommand and missing args are usage errors (exit 2).
	if code := checkpointCmd([]string{"frobnicate", dir}, &out); code != 2 {
		t.Errorf("unknown subcommand exited %d, want 2", code)
	}
	if code := checkpointCmd([]string{"inspect"}, &out); code != 2 {
		t.Errorf("missing paths exited %d, want 2", code)
	}
}
