// Command sketchtool builds a quantile sketch over numbers read from
// stdin (one per line, blank lines and '#' comments skipped) and prints
// the requested quantiles — a pipeline-friendly way to use the library:
//
//	seq 1 100000 | sketchtool -sketch ddsketch -q 0.5,0.95,0.99
//	sketchtool -sketch kll -q 0.999 -rank 42.5 < latencies.txt
//
// With -serialize the sketch itself is written to stdout as binary
// (deserializable with -merge in a later invocation), demonstrating the
// cross-process mergeability workflow the study motivates.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/ddsketch"
	"repro/internal/gk"
	"repro/internal/hdr"
	"repro/internal/kll"
	"repro/internal/moments"
	"repro/internal/mrl"
	"repro/internal/obs"
	"repro/internal/req"
	"repro/internal/sketch"
	"repro/internal/tdigest"
	"repro/internal/uddsketch"
)

func newSketch(name string, alpha float64, k int) (sketch.Sketch, error) {
	switch name {
	case "ddsketch":
		return ddsketch.New(alpha), nil
	case "uddsketch":
		return uddsketch.NewChecked(alpha, 1024)
	case "kll":
		return kll.New(k), nil
	case "req":
		return req.New(k, true), nil
	case "req-lra":
		return req.New(k, false), nil
	case "moments":
		return moments.New(12), nil
	case "moments-log":
		return moments.NewWithTransform(12, moments.TransformLog), nil
	case "tdigest":
		return tdigest.New(tdigest.DefaultCompression), nil
	case "gk":
		return gk.New(alpha), nil
	case "ddsketch-cubic":
		// Kept for compatibility: the cubic mapping is ddsketch's default
		// now, so this is the same sketch "ddsketch" builds.
		return ddsketch.New(alpha), nil
	case "ddsketch-log":
		m, err := ddsketch.NewLogarithmic(alpha)
		if err != nil {
			return nil, err
		}
		return ddsketch.NewWithMapping(m, func() ddsketch.Store { return ddsketch.NewDenseStore() })
	case "ddsketch-paginated":
		return ddsketch.NewPaginated(alpha), nil
	case "hdr":
		return hdr.New(1, 100_000_000, 3)
	case "mrl":
		return mrl.New(mrl.DefaultBuffers, mrl.DefaultK), nil
	default:
		return nil, fmt.Errorf("unknown sketch %q (ddsketch, ddsketch-log, ddsketch-paginated, uddsketch, kll, req, req-lra, moments, moments-log, tdigest, gk, hdr, mrl)", name)
	}
}

func main() {
	// Subcommand dispatch before flag parsing: `sketchtool checkpoint
	// inspect|verify <paths>` examines checkpoint envelopes and stores.
	if len(os.Args) > 1 && os.Args[1] == "checkpoint" {
		os.Exit(checkpointCmd(os.Args[2:], os.Stdout))
	}
	var (
		name      = flag.String("sketch", "ddsketch", "sketch type")
		alpha     = flag.Float64("alpha", 0.01, "relative accuracy (ddsketch/uddsketch) or rank error (gk)")
		k         = flag.Int("k", 0, "size parameter for kll (default 350) and req (default 30)")
		qList     = flag.String("q", "0.5,0.9,0.95,0.99", "comma-separated quantiles to print")
		rankOf    = flag.Float64("rank", 0, "also print the rank of this value (0 disables)")
		serialize = flag.Bool("serialize", false, "write the binary sketch to stdout instead of quantiles")
		mergeIn   = flag.String("merge", "", "comma-separated files holding serialized sketches to merge in")
		stats     = flag.Bool("stats", false, "print sketch statistics (count, memory) to stderr")
		metricsF  = flag.Bool("metrics", false, "record sketch metrics (inserts, compactions, collapses, ...) and dump them to stderr at exit")
	)
	flag.Parse()

	var reg *obs.Registry
	if *metricsF {
		reg = obs.NewRegistry()
		core.EnableMetrics(reg)
	}
	if *k == 0 {
		if *name == "kll" {
			*k = kll.DefaultK
		} else {
			*k = req.DefaultSectionSize
		}
	}

	sk, err := newSketch(*name, *alpha, *k)
	if err != nil {
		fail(err)
	}

	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 0, 1<<16), 1<<20)
	lines := 0
	for in.Scan() {
		line := strings.TrimSpace(in.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		for _, field := range strings.Fields(line) {
			v, err := strconv.ParseFloat(field, 64)
			if err != nil {
				fail(fmt.Errorf("line %d: %w", lines+1, err))
			}
			sk.Insert(v)
		}
		lines++
	}
	if err := in.Err(); err != nil {
		fail(err)
	}

	for _, path := range splitNonEmpty(*mergeIn) {
		blob, err := os.ReadFile(path)
		if err != nil {
			fail(err)
		}
		other, err := newSketch(*name, *alpha, *k)
		if err != nil {
			fail(err)
		}
		if err := other.UnmarshalBinary(blob); err != nil {
			fail(fmt.Errorf("%s: %w", path, err))
		}
		if err := sk.Merge(other); err != nil {
			fail(fmt.Errorf("merging %s: %w", path, err))
		}
	}

	if *stats {
		fmt.Fprintf(os.Stderr, "sketch=%s count=%d memory=%dB\n", sk.Name(), sk.Count(), sk.MemoryBytes())
	}
	if reg != nil {
		if err := reg.WriteText(os.Stderr); err != nil {
			fail(err)
		}
	}

	if *serialize {
		blob, err := sk.MarshalBinary()
		if err != nil {
			fail(err)
		}
		if _, err := io.Copy(os.Stdout, strings.NewReader(string(blob))); err != nil {
			fail(err)
		}
		return
	}

	var qvals []float64
	for _, qs := range splitNonEmpty(*qList) {
		q, err := strconv.ParseFloat(qs, 64)
		if err != nil {
			fail(fmt.Errorf("bad quantile %q: %w", qs, err))
		}
		qvals = append(qvals, q)
	}
	if len(qvals) > 0 {
		vals, err := sketch.Quantiles(sk, qvals)
		if err != nil {
			fail(err)
		}
		for i, q := range qvals {
			fmt.Printf("q%v\t%g\n", q, vals[i])
		}
	}
	if *rankOf != 0 {
		r, err := sk.Rank(*rankOf)
		if err != nil {
			fail(err)
		}
		fmt.Printf("rank(%g)\t%.6f\n", *rankOf, r)
	}
}

func splitNonEmpty(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "sketchtool:", err)
	os.Exit(1)
}
