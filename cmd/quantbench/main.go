// Command quantbench regenerates the tables and figures of "An
// Experimental Analysis of Quantile Sketches over Data Streams" (EDBT
// 2023). Each experiment is addressed by the paper artifact it
// reproduces:
//
//	quantbench -list
//	quantbench -run fig6 -scale 0.1
//	quantbench -run all -scale 1 -out results.txt
//
// Scale 1 reproduces the paper's workload sizes (minutes to hours);
// the default 0.1 preserves every qualitative conclusion in a fraction
// of the time.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/harness"
)

func main() {
	var (
		list          = flag.Bool("list", false, "list available experiments and exit")
		run           = flag.String("run", "", "experiment id to run (or 'all'); see -list")
		scale         = flag.Float64("scale", 0.1, "workload scale factor (1 = paper scale)")
		runs          = flag.Int("runs", 10, "independent repetitions for accuracy experiments (paper: 10)")
		rate          = flag.Int("rate", 50000, "stream event rate in events/s (paper: 50000)")
		winSec        = flag.Float64("window", 20, "tumbling window length in seconds before scaling (paper: 20)")
		windows       = flag.Int("windows", 10, "measured windows per run (paper: 10)")
		seed          = flag.Uint64("seed", 0x5eedc0de, "root RNG seed")
		parallel      = flag.Int("parallel", 1, "concurrent accuracy runs (results are identical at any parallelism)")
		streamWorkers = flag.Int("stream-workers", 1, "insert worker goroutines per stream engine (results are bit-identical at any count)")
		evalWorkers   = flag.Int("eval-workers", 1, "concurrent window evaluations per accuracy run (results are bit-identical at any count)")
		outPath       = flag.String("out", "", "also write results to this file")
		csv           = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		quiet         = flag.Bool("quiet", false, "suppress progress logging")
	)
	flag.Parse()

	if *list || *run == "" {
		fmt.Println("experiments:")
		for _, e := range harness.Experiments() {
			fmt.Printf("  %-8s  %-10s  %s\n", e.ID, "("+e.Ref+")", e.Title)
		}
		if *run == "" && !*list {
			fmt.Println("\nuse -run <id> or -run all")
		}
		return
	}

	opts := harness.Options{
		Scale:         *scale,
		Runs:          *runs,
		Rate:          *rate,
		WindowSeconds: *winSec,
		Windows:       *windows,
		Seed:          *seed,
		Parallel:      *parallel,
		StreamWorkers: *streamWorkers,
		EvalWorkers:   *evalWorkers,
	}
	if !*quiet {
		opts.Out = os.Stderr
	}

	var sink io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "quantbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		sink = io.MultiWriter(os.Stdout, f)
	}

	var ids []string
	if *run == "all" {
		for _, e := range harness.Experiments() {
			ids = append(ids, e.ID)
		}
	} else {
		for _, id := range strings.Split(*run, ",") {
			if id = strings.TrimSpace(id); id != "" {
				ids = append(ids, id)
			}
		}
	}
	for _, id := range ids {
		e, ok := harness.Get(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "quantbench: unknown experiment %q (use -list)\n", id)
			os.Exit(1)
		}
		start := time.Now()
		fmt.Fprintf(sink, "=== %s (%s): %s ===\n", e.ID, e.Ref, e.Title)
		tables, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "quantbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		for _, t := range tables {
			if *csv {
				fmt.Fprintf(sink, "# %s\n%s\n", t.Title, t.CSV())
			} else {
				fmt.Fprintln(sink, t.Render())
			}
		}
		fmt.Fprintf(sink, "(%s completed in %s)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
