// Command quantbench regenerates the tables and figures of "An
// Experimental Analysis of Quantile Sketches over Data Streams" (EDBT
// 2023). Each experiment is addressed by the paper artifact it
// reproduces:
//
//	quantbench -list
//	quantbench -run fig6 -scale 0.1
//	quantbench -run all -scale 1 -out results.txt
//
// Scale 1 reproduces the paper's workload sizes (minutes to hours);
// the default 0.1 preserves every qualitative conclusion in a fraction
// of the time.
package main

import (
	"expvar"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/harness"
	"repro/internal/obs"
)

func main() {
	var (
		list          = flag.Bool("list", false, "list available experiments and exit")
		run           = flag.String("run", "", "experiment id to run (or 'all'); see -list")
		scale         = flag.Float64("scale", 0.1, "workload scale factor (1 = paper scale)")
		runs          = flag.Int("runs", 10, "independent repetitions for accuracy experiments (paper: 10)")
		rate          = flag.Int("rate", 50000, "stream event rate in events/s (paper: 50000)")
		winSec        = flag.Float64("window", 20, "tumbling window length in seconds before scaling (paper: 20)")
		windows       = flag.Int("windows", 10, "measured windows per run (paper: 10)")
		seed          = flag.Uint64("seed", 0x5eedc0de, "root RNG seed")
		parallel      = flag.Int("parallel", 1, "concurrent accuracy runs (results are identical at any parallelism)")
		streamWorkers = flag.Int("stream-workers", 1, "insert worker goroutines per stream engine (results are bit-identical at any count)")
		evalWorkers   = flag.Int("eval-workers", 1, "concurrent window evaluations per accuracy run (results are bit-identical at any count)")
		outPath       = flag.String("out", "", "also write results to this file")
		csv           = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		quiet         = flag.Bool("quiet", false, "suppress progress logging")
		metricsDump   = flag.Bool("metrics", false, "enable sketch/engine metrics and dump them at run end")
		ckptDir       = flag.String("checkpoint-dir", "", "enable fault-tolerant runs: checkpoint every stream into per-run subdirectories of this directory and auto-recover from crashes")
		ckptEvery     = flag.Int("checkpoint-every", 0, "snapshot cadence in fired windows (0 with -checkpoint-dir means every window)")
		faultSpec     = flag.String("fault", "", "deterministic fault plan, e.g. 'panic@w1:5000,stall@p2:100:50ms,dup@7,corrupt@3:bitflip'; requires -checkpoint-dir for the crashing faults to recover")
		httpAddr      = flag.String("http", "", "serve /metrics (Prometheus text), /debug/vars and /debug/pprof on this address (e.g. localhost:9090); implies -metrics")
		linger        = flag.Duration("linger", 0, "with -http, keep the process (and endpoints) alive this long after the runs finish")
	)
	flag.Parse()

	if *list || *run == "" {
		fmt.Println("experiments:")
		for _, e := range harness.Experiments() {
			fmt.Printf("  %-8s  %-10s  %s\n", e.ID, "("+e.Ref+")", e.Title)
		}
		if *run == "" && !*list {
			fmt.Println("\nuse -run <id> or -run all")
		}
		return
	}

	opts := harness.Options{
		Scale:         *scale,
		Runs:          *runs,
		Rate:          *rate,
		WindowSeconds: *winSec,
		Windows:       *windows,
		Seed:          *seed,
		Parallel:      *parallel,
		StreamWorkers: *streamWorkers,
		EvalWorkers:   *evalWorkers,
	}
	if !*quiet {
		opts.Out = os.Stderr
	}
	if *ckptDir != "" {
		opts.CheckpointDir = *ckptDir
		opts.CheckpointEvery = *ckptEvery
	}
	if *faultSpec != "" {
		plan, err := faultinject.Parse(*faultSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "quantbench: -fault:", err)
			os.Exit(1)
		}
		if *ckptDir == "" {
			fmt.Fprintln(os.Stderr, "quantbench: -fault without -checkpoint-dir: a crashing fault would abort the run with nothing to recover from")
		}
		opts.Faults = plan
	}

	var reg *obs.Registry
	if *metricsDump || *httpAddr != "" {
		reg = obs.NewRegistry()
		core.EnableMetrics(reg)
		opts.Metrics = reg
	}
	if *httpAddr != "" {
		// Custom mux: expose metrics, expvar and pprof without touching
		// http.DefaultServeMux (net/http/pprof's side-effect registration
		// is re-exported explicitly instead).
		reg.PublishExpvar("quantstream")
		mux := http.NewServeMux()
		mux.Handle("/metrics", reg.Handler())
		mux.Handle("/debug/vars", expvar.Handler())
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		ln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "quantbench: -http:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "quantbench: serving metrics on http://%s/metrics\n", ln.Addr())
		go func() {
			if err := http.Serve(ln, mux); err != nil {
				fmt.Fprintln(os.Stderr, "quantbench: http server:", err)
			}
		}()
	}

	var sink io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "quantbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		sink = io.MultiWriter(os.Stdout, f)
	}

	var ids []string
	if *run == "all" {
		for _, e := range harness.Experiments() {
			ids = append(ids, e.ID)
		}
	} else {
		for _, id := range strings.Split(*run, ",") {
			if id = strings.TrimSpace(id); id != "" {
				ids = append(ids, id)
			}
		}
	}
	for _, id := range ids {
		e, ok := harness.Get(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "quantbench: unknown experiment %q (use -list)\n", id)
			os.Exit(1)
		}
		start := time.Now()
		fmt.Fprintf(sink, "=== %s (%s): %s ===\n", e.ID, e.Ref, e.Title)
		tables, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "quantbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		for _, t := range tables {
			if *csv {
				fmt.Fprintf(sink, "# %s\n%s\n", t.Title, t.CSV())
			} else {
				fmt.Fprintln(sink, t.Render())
			}
		}
		fmt.Fprintf(sink, "(%s completed in %s)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}

	if reg != nil {
		fmt.Fprintln(sink, "=== metrics ===")
		if err := reg.WriteText(sink); err != nil {
			fmt.Fprintln(os.Stderr, "quantbench: metrics dump:", err)
			os.Exit(1)
		}
	}
	if *httpAddr != "" && *linger > 0 {
		fmt.Fprintf(os.Stderr, "quantbench: lingering %s for scrapes\n", *linger)
		time.Sleep(*linger)
	}
}
