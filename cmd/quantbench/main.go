// Command quantbench regenerates the tables and figures of "An
// Experimental Analysis of Quantile Sketches over Data Streams" (EDBT
// 2023). Each experiment is addressed by the paper artifact it
// reproduces:
//
//	quantbench -list
//	quantbench -run fig6 -scale 0.1
//	quantbench -run all -scale 1 -out results.txt
//
// Scale 1 reproduces the paper's workload sizes (minutes to hours);
// the default 0.1 preserves every qualitative conclusion in a fraction
// of the time.
package main

import (
	"context"
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/concurrent"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/ddsketch"
	"repro/internal/faultinject"
	"repro/internal/harness"
	"repro/internal/kll"
	"repro/internal/obs"
	"repro/internal/sketch"
	"repro/internal/stream"
)

func main() {
	var (
		list          = flag.Bool("list", false, "list available experiments and exit")
		run           = flag.String("run", "", "experiment id to run (or 'all'); see -list")
		scale         = flag.Float64("scale", 0.1, "workload scale factor (1 = paper scale)")
		runs          = flag.Int("runs", 10, "independent repetitions for accuracy experiments (paper: 10)")
		rate          = flag.Int("rate", 50000, "stream event rate in events/s (paper: 50000)")
		winSec        = flag.Float64("window", 20, "tumbling window length in seconds before scaling (paper: 20)")
		winSlide      = flag.Float64("window-slide", 0, "sliding-window slide in seconds before scaling (0 = tumbling); windows of -window length start every -window-slide seconds, computed by pane-based sharing")
		decay         = flag.Float64("decay", 0, "exponential time-decay rate λ for sliding windows: older panes are down-weighted by exp(-λ·age) at window assembly (requires -window-slide)")
		windows       = flag.Int("windows", 10, "measured windows per run (paper: 10)")
		seed          = flag.Uint64("seed", 0x5eedc0de, "root RNG seed")
		parallel      = flag.Int("parallel", 1, "concurrent accuracy runs (results are identical at any parallelism)")
		streamWorkers = flag.Int("stream-workers", 1, "insert worker goroutines per stream engine (results are bit-identical at any count)")
		evalWorkers   = flag.Int("eval-workers", 1, "concurrent window evaluations per accuracy run (results are bit-identical at any count)")
		outPath       = flag.String("out", "", "also write results to this file")
		csv           = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		quiet         = flag.Bool("quiet", false, "suppress progress logging")
		metricsDump   = flag.Bool("metrics", false, "enable sketch/engine metrics and dump them at run end")
		ckptDir       = flag.String("checkpoint-dir", "", "enable fault-tolerant runs: checkpoint every stream into per-run subdirectories of this directory and auto-recover from crashes")
		ckptEvery     = flag.Int("checkpoint-every", 0, "snapshot cadence in fired windows (0 with -checkpoint-dir means every window)")
		faultSpec     = flag.String("fault", "", "deterministic fault plan, e.g. 'panic@w1:5000,stall@p2:100:50ms,dup@7,corrupt@3:bitflip'; requires -checkpoint-dir for the crashing faults to recover")
		httpAddr      = flag.String("http", "", "serve /metrics (Prometheus text), /debug/vars and /debug/pprof on this address (e.g. localhost:9090); implies -metrics")
		linger        = flag.Duration("linger", 0, "with -http, keep the process (and endpoints) alive this long after the runs finish")
		concWriters   = flag.Int("concurrent-writers", 0, "run a live concurrent shared-sketch ingestion stream with this many writer goroutines (0 disables); with -http, live snapshots are served at /quantile while the stream runs")
		concSketch    = flag.String("concurrent-sketch", "kll", "shared sketch for -concurrent-writers: kll or ddsketch")
		memBudget     = flag.Int("mem-budget", 0, "cap each stream run's live sketch footprint at this many bytes: sketches degrade in place past the budget (coarser but still bounded summaries), events are shed only when degradation cannot fit it (0 disables)")
	)
	flag.Parse()

	if *winSlide < 0 || *winSlide > *winSec {
		fmt.Fprintf(os.Stderr, "quantbench: -window-slide %v outside [0, -window=%v]\n", *winSlide, *winSec)
		os.Exit(1)
	}
	if *decay > 0 && !(*winSlide > 0 && *winSlide < *winSec) {
		fmt.Fprintln(os.Stderr, "quantbench: -decay requires sliding windows (0 < -window-slide < -window)")
		os.Exit(1)
	}

	if *list || (*run == "" && *concWriters == 0) {
		fmt.Println("experiments:")
		for _, e := range harness.Experiments() {
			fmt.Printf("  %-8s  %-10s  %s\n", e.ID, "("+e.Ref+")", e.Title)
		}
		if *run == "" && !*list {
			fmt.Println("\nuse -run <id>, -run all, or -concurrent-writers N")
		}
		return
	}

	var shared concurrent.Shared
	var sharedBuilder sketch.Builder
	if *concWriters > 0 {
		var err error
		shared, sharedBuilder, err = newSharedSketch(*concSketch, *concWriters)
		if err != nil {
			fmt.Fprintln(os.Stderr, "quantbench: -concurrent-sketch:", err)
			os.Exit(1)
		}
	}

	// A SIGINT/SIGTERM anywhere past this point requests a graceful
	// shutdown: the linger is cut short, the metrics server drains with
	// a bounded deadline, and shared writers are flushed so the final
	// state is exact. A second signal kills the process the default way.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	opts := harness.Options{
		Scale:         *scale,
		Runs:          *runs,
		Rate:          *rate,
		WindowSeconds: *winSec,
		SlideSeconds:  *winSlide,
		DecayLambda:   *decay,
		Windows:       *windows,
		Seed:          *seed,
		Parallel:      *parallel,
		StreamWorkers: *streamWorkers,
		EvalWorkers:   *evalWorkers,
		MemoryBudget:  *memBudget,
	}
	if !*quiet {
		opts.Out = os.Stderr
	}
	if *ckptDir != "" {
		opts.CheckpointDir = *ckptDir
		opts.CheckpointEvery = *ckptEvery
	}
	if *faultSpec != "" {
		plan, err := faultinject.Parse(*faultSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "quantbench: -fault:", err)
			os.Exit(1)
		}
		if *ckptDir == "" {
			fmt.Fprintln(os.Stderr, "quantbench: -fault without -checkpoint-dir: a crashing fault would abort the run with nothing to recover from")
		}
		opts.Faults = plan
	}

	var reg *obs.Registry
	if *metricsDump || *httpAddr != "" {
		reg = obs.NewRegistry()
		core.EnableMetrics(reg)
		opts.Metrics = reg
	}
	if *httpAddr != "" {
		// Custom mux: expose metrics, expvar and pprof without touching
		// http.DefaultServeMux (net/http/pprof's side-effect registration
		// is re-exported explicitly instead).
		reg.PublishExpvar("quantstream")
		mux := http.NewServeMux()
		mux.Handle("/metrics", reg.Handler())
		if shared != nil {
			// Live quantile reads against the shared sketch: valid (and
			// relaxed-consistent) at any moment while the stream runs.
			mux.Handle("/quantile", quantileHandler(shared))
		}
		mux.Handle("/debug/vars", expvar.Handler())
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		ln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "quantbench: -http:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "quantbench: serving metrics on http://%s/metrics\n", ln.Addr())
		srv := &http.Server{Handler: mux}
		go func() {
			if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "quantbench: http server:", err)
			}
		}()
		// Drain in-flight scrapes on exit, but never hang on a stuck
		// client: Shutdown is bounded by its own deadline.
		defer func() {
			sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if err := srv.Shutdown(sctx); err != nil {
				fmt.Fprintln(os.Stderr, "quantbench: http shutdown:", err)
			}
		}()
	}

	var sink io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "quantbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		sink = io.MultiWriter(os.Stdout, f)
	}

	var ids []string
	if *run == "all" {
		for _, e := range harness.Experiments() {
			ids = append(ids, e.ID)
		}
	} else {
		for _, id := range strings.Split(*run, ",") {
			if id = strings.TrimSpace(id); id != "" {
				ids = append(ids, id)
			}
		}
	}
	for _, id := range ids {
		e, ok := harness.Get(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "quantbench: unknown experiment %q (use -list)\n", id)
			os.Exit(1)
		}
		start := time.Now()
		fmt.Fprintf(sink, "=== %s (%s): %s ===\n", e.ID, e.Ref, e.Title)
		tables, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "quantbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		for _, t := range tables {
			if *csv {
				fmt.Fprintf(sink, "# %s\n%s\n", t.Title, t.CSV())
			} else {
				fmt.Fprintln(sink, t.Render())
			}
		}
		fmt.Fprintf(sink, "(%s completed in %s)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}

	if shared != nil {
		if err := runConcurrentLive(sink, shared, sharedBuilder, *concSketch, opts, reg); err != nil {
			fmt.Fprintln(os.Stderr, "quantbench: concurrent:", err)
			os.Exit(1)
		}
		// The engine's workers flushed their own writer handles at
		// close; this quiescent-point flush covers any handle the run
		// did not own, so post-run snapshots (a /quantile scrape during
		// the linger, the metrics dump) are exact.
		shared.Flush()
	}

	if reg != nil {
		fmt.Fprintln(sink, "=== metrics ===")
		if err := reg.WriteText(sink); err != nil {
			fmt.Fprintln(os.Stderr, "quantbench: metrics dump:", err)
			os.Exit(1)
		}
	}
	if *httpAddr != "" && *linger > 0 {
		fmt.Fprintf(os.Stderr, "quantbench: lingering %s for scrapes\n", *linger)
		select {
		case <-time.After(*linger):
		case <-ctx.Done():
			fmt.Fprintln(os.Stderr, "quantbench: interrupted, shutting down")
		}
	}
}

// newSharedSketch builds the shared sketch for -concurrent-writers,
// together with the builder for the stream engine's windowed partials
// (same algorithm, study configuration).
func newSharedSketch(kind string, writers int) (concurrent.Shared, sketch.Builder, error) {
	switch kind {
	case "kll":
		return concurrent.NewKLL(kll.DefaultK, writers, 0),
			func() sketch.Sketch { return kll.New(kll.DefaultK) }, nil
	case "ddsketch":
		sh, err := concurrent.NewDDSketch(0.01, writers, 0)
		if err != nil {
			return nil, nil, err
		}
		return sh, func() sketch.Sketch { return ddsketch.New(0.01) }, nil
	default:
		return nil, nil, fmt.Errorf("unknown sketch %q (want kll or ddsketch)", kind)
	}
}

// runConcurrentLive drives a stream engine whose accepted events also
// feed the shared sketch: writers equal to the engine's worker count,
// one partition per worker. After every fired window — and, with
// -http, at any /quantile request — the shared sketch answers live
// quantile queries that cover all events propagated so far, windowed
// or not.
func runConcurrentLive(w io.Writer, shared concurrent.Shared, builder sketch.Builder, kind string, opts harness.Options, reg *obs.Registry) error {
	writers := shared.NumWriters()
	winDur := time.Duration(opts.WindowSeconds * opts.Scale * float64(time.Second))
	if winDur <= 0 {
		winDur = time.Second
	}
	cfg := stream.Config{
		WindowSize:   winDur,
		Rate:         opts.Rate,
		NumWindows:   opts.Windows,
		Partitions:   writers,
		Workers:      writers,
		Values:       datagen.NewUniform(1, 1000, opts.Seed),
		Builder:      builder,
		SharedSketch: shared,
	}
	if reg != nil {
		cfg.Metrics = reg.Engine()
	}
	eng, err := stream.NewEngine(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "=== concurrent: live shared-%s ingestion, %d writers, relaxation <= %d values ===\n",
		kind, writers, shared.MaxRelaxation())
	start := time.Now()
	stats, err := eng.Run(func(r stream.WindowResult) {
		snap := shared.Snapshot().(*concurrent.Snapshot)
		line := fmt.Sprintf("window %2d fired: live epoch %4d, count %8d", r.Index, snap.Epoch(), snap.Count())
		if snap.Count() > 0 {
			if qs, err := sketch.Quantiles(snap, []float64{0.5, 0.99}); err == nil {
				line += fmt.Sprintf(", p50 %8.3f, p99 %8.3f", qs[0], qs[1])
			}
		}
		fmt.Fprintln(w, line)
	})
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	snap := shared.Snapshot().(*concurrent.Snapshot)
	fmt.Fprintf(w, "done: %d accepted events in %s (%.0f inserts/s aggregate), final count %d, epoch %d\n\n",
		stats.Accepted, elapsed.Round(time.Millisecond),
		float64(stats.Accepted)/elapsed.Seconds(), snap.Count(), snap.Epoch())
	return nil
}

// quantileHandler serves live quantile reads over the shared sketch as
// JSON: GET /quantile?q=0.5,0.99 → {"epoch":…,"count":…,"quantiles":…}.
// The snapshot behind each response is consistent up to the layer's
// relaxation bound, echoed as max_relaxation.
func quantileHandler(shared concurrent.Shared) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		spec := req.URL.Query().Get("q")
		if spec == "" {
			spec = "0.5,0.9,0.99"
		}
		var qs []float64
		for _, part := range strings.Split(spec, ",") {
			q, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil || !(q > 0 && q <= 1) {
				http.Error(w, fmt.Sprintf("bad quantile %q (want 0 < q <= 1)", part), http.StatusBadRequest)
				return
			}
			qs = append(qs, q)
		}
		snap := shared.Snapshot().(*concurrent.Snapshot)
		resp := struct {
			Epoch         uint64             `json:"epoch"`
			Count         uint64             `json:"count"`
			MaxRelaxation uint64             `json:"max_relaxation"`
			Quantiles     map[string]float64 `json:"quantiles"`
		}{
			Epoch:         snap.Epoch(),
			Count:         snap.Count(),
			MaxRelaxation: shared.MaxRelaxation(),
			Quantiles:     make(map[string]float64, len(qs)),
		}
		if snap.Count() > 0 {
			vals, err := sketch.Quantiles(snap, qs)
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			for i, q := range qs {
				resp.Quantiles[strconv.FormatFloat(q, 'g', -1, 64)] = vals[i]
			}
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(resp); err != nil {
			// Client went away mid-write; nothing to clean up.
			_ = err
		}
	})
}
