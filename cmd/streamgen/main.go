// Command streamgen generates and inspects the study's workload data
// sets. It writes values to stdout (one per line) for piping into
// sketchtool or external tools, or prints distribution summaries:
//
//	streamgen -dataset pareto -n 1000000 > pareto.txt
//	streamgen -dataset nyt -n 100000 -summary
//	streamgen -dataset power -n 50000 | sketchtool -q 0.99
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/datagen"
	"repro/internal/stats"
)

func main() {
	var (
		dataset = flag.String("dataset", "pareto", "dataset name: pareto, uniform, nyt, power, adaptability, or file:<path>")
		n       = flag.Int("n", 1_000_000, "number of values to generate")
		seed    = flag.Uint64("seed", 1, "RNG seed")
		summary = flag.Bool("summary", false, "print a distribution summary instead of raw values")
		hist    = flag.Bool("hist", false, "print a text histogram instead of raw values")
	)
	flag.Parse()

	var src datagen.Source
	var err error
	if *dataset == "adaptability" {
		src = datagen.NewAdaptabilityWorkload(*seed, *n/2)
	} else {
		src, err = datagen.NewDatasetOrFile(*dataset, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "streamgen:", err)
			os.Exit(1)
		}
	}

	if !*summary && !*hist {
		w := bufio.NewWriterSize(os.Stdout, 1<<16)
		defer w.Flush()
		for i := 0; i < *n; i++ {
			fmt.Fprintf(w, "%g\n", src.Next())
		}
		return
	}

	data := datagen.Take(src, *n)
	ex := stats.NewExactQuantiles(data)
	var mom stats.Moments
	mom.AddAll(data)
	fmt.Printf("dataset=%s n=%d\n", *dataset, *n)
	fmt.Printf("min=%g max=%g mean=%g stddev=%g\n", ex.Min(), ex.Max(), mom.Mean(), mom.StdDev())
	fmt.Printf("skewness=%.3f kurtosis=%.3f top10mass=%.3f%%\n",
		mom.Skewness(), mom.Kurtosis(), 100*stats.TopValueMass(data, 10))
	for _, q := range []float64{0.05, 0.25, 0.5, 0.75, 0.9, 0.95, 0.98, 0.99} {
		fmt.Printf("q%.2f=%g\n", q, ex.Quantile(q))
	}
	if *hist {
		h := stats.NewHistogram(data, ex.Min(), ex.Quantile(0.995), 24)
		fmt.Println(h.Render(48))
	}
}
