// Package maxent solves the maximum-entropy density-estimation problem at
// the core of the Moments Sketch (Gan et al., VLDB 2018): given the first
// k Chebyshev moments of an unknown distribution supported on [−1, 1],
// find the density f(t) = exp(Σ_j λ_j T_j(t)) matching those moments —
// the unique maximum-Shannon-entropy distribution consistent with them.
// The convex dual is minimized with damped Newton iterations on a
// quadrature grid, using the Chebyshev product identity
// T_i·T_j = (T_{i+j} + T_{|i−j|})/2 to assemble the Hessian cheaply.
package maxent

// ChebyshevCoefficients returns the power-basis coefficient vectors of
// T_0..T_{k−1}: out[j][m] is the coefficient of t^m in T_j(t), from the
// recurrence T_{j+1} = 2t·T_j − T_{j−1}.
func ChebyshevCoefficients(k int) [][]float64 {
	if k < 1 {
		return nil
	}
	out := make([][]float64, k)
	out[0] = []float64{1}
	if k == 1 {
		return out
	}
	out[1] = []float64{0, 1}
	for j := 2; j < k; j++ {
		cur := make([]float64, j+1)
		for m, c := range out[j-1] {
			cur[m+1] += 2 * c
		}
		for m, c := range out[j-2] {
			cur[m] -= c
		}
		out[j] = cur
	}
	return out
}

// PowerToChebyshevMoments converts power moments μ_m = E[t^m], m = 0..k−1,
// of a distribution on [−1, 1] into Chebyshev moments c_j = E[T_j(t)].
func PowerToChebyshevMoments(mu []float64) []float64 {
	coeffs := ChebyshevCoefficients(len(mu))
	out := make([]float64, len(mu))
	for j, poly := range coeffs {
		var c float64
		for m, a := range poly {
			c += a * mu[m]
		}
		out[j] = c
	}
	return out
}

// ShiftPowerMoments converts raw power moments E[x^m] into power moments
// of t = a·x + b via the binomial theorem: E[t^m] = Σ_i C(m,i)·a^i·b^(m−i)·E[x^i].
// This is how the sketch's raw power sums are rescaled onto [−1, 1] at
// query time (the scaling depends on the running min/max, so it cannot be
// applied at insert time).
func ShiftPowerMoments(raw []float64, a, b float64) []float64 {
	k := len(raw)
	out := make([]float64, k)
	// binom[m][i], built row by row (Pascal's triangle).
	binom := make([][]float64, k)
	for m := 0; m < k; m++ {
		binom[m] = make([]float64, m+1)
		binom[m][0] = 1
		for i := 1; i <= m; i++ {
			if i == m {
				binom[m][i] = 1
			} else {
				binom[m][i] = binom[m-1][i-1] + binom[m-1][i]
			}
		}
	}
	for m := 0; m < k; m++ {
		var sum float64
		ai := 1.0 // a^i
		for i := 0; i <= m; i++ {
			sum += binom[m][i] * ai * powf(b, m-i) * raw[i]
			ai *= a
		}
		out[m] = sum
	}
	return out
}

func powf(x float64, n int) float64 {
	p := 1.0
	for i := 0; i < n; i++ {
		p *= x
	}
	return p
}
