package maxent

import "repro/internal/obs"

// metrics records solver behavior (Newton iterations, cold starts) into
// the owning sketch's metrics set — in this repo the Moments sketch,
// which wires it via moments.SetMetrics. nil (the default) disables
// recording.
var metrics *obs.SketchMetrics

// SetMetrics enables (or, with nil, disables) solver metrics recording.
// It must be called while no Solver is mid-Solve — typically at process
// start; after that, recording is safe from any number of goroutines.
func SetMetrics(m *obs.SketchMetrics) { metrics = m }
