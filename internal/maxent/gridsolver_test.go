package maxent

import (
	"math"
	"testing"
)

// uniformGridBasis builds the Chebyshev basis on a uniform [−1,1] grid,
// the same structure Solver uses — letting us check GridSolver against
// the specialized solver.
func uniformGridBasis(k, gs int) (basis [][]float64, weights []float64) {
	dt := 2 / float64(gs)
	grid := make([]float64, gs)
	for g := range grid {
		grid[g] = -1 + (float64(g)+0.5)*dt
	}
	basis = make([][]float64, k)
	basis[0] = make([]float64, gs)
	for g := range basis[0] {
		basis[0][g] = 1
	}
	if k > 1 {
		basis[1] = append([]float64(nil), grid...)
	}
	for i := 2; i < k; i++ {
		row := make([]float64, gs)
		for g := range row {
			row[g] = 2*grid[g]*basis[i-1][g] - basis[i-2][g]
		}
		basis[i] = row
	}
	weights = make([]float64, gs)
	for g := range weights {
		weights[g] = dt
	}
	return
}

func TestGridSolverMatchesChebyshevSolver(t *testing.T) {
	k, gs := 6, 512
	// Moments of the uniform distribution on [−1,1].
	mu := make([]float64, k)
	for m := 0; m < k; m++ {
		if m%2 == 0 {
			mu[m] = 1 / float64(m+1)
		}
	}
	d := PowerToChebyshevMoments(mu)

	ref := NewSolver(k, gs)
	refDens, err := ref.Solve(d)
	if err != nil {
		t.Fatal(err)
	}
	basis, weights := uniformGridBasis(k, gs)
	gen, err := NewGridSolver(basis, weights)
	if err != nil {
		t.Fatal(err)
	}
	genDens, err := gen.Solve(d)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		a := refDens.QuantileT(q)
		// Map the generic solver's cell back to [−1,1].
		cell := genDens.QuantileCell(q)
		b := -1 + (cell+0.5)*(2/float64(gs))
		if math.Abs(a-b) > 0.01 {
			t.Errorf("q=%v: specialized %v vs generic %v", q, a, b)
		}
	}
}

func TestGridSolverValidation(t *testing.T) {
	basis, weights := uniformGridBasis(4, 64)
	if _, err := NewGridSolver(basis[:1], weights); err == nil {
		t.Error("single basis function should fail")
	}
	if _, err := NewGridSolver(basis, weights[:4]); err == nil {
		t.Error("tiny grid should fail")
	}
	short := [][]float64{basis[0], basis[1][:10]}
	if _, err := NewGridSolver(short, weights); err == nil {
		t.Error("ragged basis should fail")
	}
	notOnes := [][]float64{append([]float64(nil), basis[1]...), basis[1]}
	if _, err := NewGridSolver(notOnes, weights); err == nil {
		t.Error("non-constant first basis should fail")
	}
	s, err := NewGridSolver(basis, weights)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Solve([]float64{1, 0}); err == nil {
		t.Error("wrong moment count should fail")
	}
	if _, err := s.Solve([]float64{1, math.NaN(), 0, 0}); err == nil {
		t.Error("NaN moment should fail")
	}
}

func TestGridDensityCDFInvertsQuantile(t *testing.T) {
	k, gs := 5, 256
	mu := make([]float64, k)
	for m := 0; m < k; m++ {
		if m%2 == 0 {
			mu[m] = 1 / float64(m+1)
		}
	}
	basis, weights := uniformGridBasis(k, gs)
	s, err := NewGridSolver(basis, weights)
	if err != nil {
		t.Fatal(err)
	}
	dens, err := s.Solve(PowerToChebyshevMoments(mu))
	if err != nil {
		t.Fatal(err)
	}
	for q := 0.05; q < 1; q += 0.1 {
		cell := dens.QuantileCell(q)
		back := dens.CDFCell(cell)
		if math.Abs(back-q) > 0.01 {
			t.Errorf("CDF(Quantile(%v)) = %v", q, back)
		}
	}
	// Edges.
	if dens.QuantileCell(0) != 0 {
		t.Error("q=0 should map to the first cell")
	}
	if dens.QuantileCell(1) != float64(gs-1) {
		t.Error("q=1 should map to the last cell")
	}
	if dens.CDFCell(-10) != 0 || dens.CDFCell(float64(gs)+10) != 1 {
		t.Error("CDF edges wrong")
	}
}

// Non-uniform weights: the solver must respect the quadrature measure.
// Uniform-density moments with exponential cell weights correspond to a
// density that compensates; just assert convergence and a monotone CDF.
func TestGridSolverNonUniformWeights(t *testing.T) {
	k, gs := 4, 256
	basis, weights := uniformGridBasis(k, gs)
	for g := range weights {
		weights[g] = weights[g] * (1 + float64(g)/float64(gs))
	}
	mu := []float64{1, 0, 1.0 / 3, 0}
	s, err := NewGridSolver(basis, weights)
	if err != nil {
		t.Fatal(err)
	}
	dens, err := s.Solve(PowerToChebyshevMoments(mu))
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, c := range dens.cdf {
		if c < prev-1e-12 {
			t.Fatal("CDF not monotone")
		}
		prev = c
	}
	if math.Abs(dens.cdf[len(dens.cdf)-1]-1) > 1e-9 {
		t.Errorf("CDF does not end at 1: %v", prev)
	}
}
