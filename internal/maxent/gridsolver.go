package maxent

import (
	"fmt"
	"math"
)

// GridSolver solves the max-entropy problem for an arbitrary basis
// tabulated on a grid: find f(g) = exp(Σ_i λ_i B_i(g)) whose basis
// moments ∫B_i·f match the targets. It generalizes Solver (whose basis
// is the Chebyshev polynomials of one variable, with a fast
// product-identity Hessian) to mixed bases — in particular the original
// Moments Sketch design where standard-moment AND log-moment constraints
// are imposed jointly. The Hessian is assembled by direct quadrature,
// O(k²·grid) per Newton step.
type GridSolver struct {
	basis   [][]float64 // basis[i][g]; basis[0] must be all ones
	weights []float64   // quadrature weight per grid cell
}

// NewGridSolver wraps basis values on a grid with per-cell quadrature
// weights (uniform grids pass all-equal weights). The first basis row
// must be constant 1.
func NewGridSolver(basis [][]float64, weights []float64) (*GridSolver, error) {
	if len(basis) < 2 {
		return nil, fmt.Errorf("maxent: need at least 2 basis functions, got %d", len(basis))
	}
	g := len(weights)
	if g < 8 {
		return nil, fmt.Errorf("maxent: grid too small (%d)", g)
	}
	for i, row := range basis {
		if len(row) != g {
			return nil, fmt.Errorf("maxent: basis %d has %d values for a %d-cell grid", i, len(row), g)
		}
	}
	for _, v := range basis[0] {
		if v != 1 {
			return nil, fmt.Errorf("maxent: basis[0] must be the constant 1")
		}
	}
	return &GridSolver{basis: basis, weights: weights}, nil
}

// GridDensity is a solved density tabulated on the solver's grid.
type GridDensity struct {
	pdf []float64
	cdf []float64
}

// Solve runs damped Newton iterations to match the target moments d
// (len(d) = number of basis functions, d[0] = 1).
func (s *GridSolver) Solve(d []float64) (*GridDensity, error) {
	k := len(s.basis)
	if len(d) != k {
		return nil, fmt.Errorf("%w: got %d moments for %d basis functions", ErrBadMoments, len(d), k)
	}
	for _, v := range d {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, ErrBadMoments
		}
	}
	gs := len(s.weights)
	lambda := make([]float64, k)
	// Start from the maximum-entropy density with only the mass
	// constraint: f = 1/Σw.
	var wSum float64
	for _, w := range s.weights {
		wSum += w
	}
	lambda[0] = math.Log(1 / wSum)

	f := make([]float64, gs)
	grad := make([]float64, k)
	hess := make([]float64, k*k)
	step := make([]float64, k)
	trial := make([]float64, k)
	scratch := make([][]float64, k) // B_i weighted by f, reused per iter
	for i := range scratch {
		scratch[i] = make([]float64, gs)
	}

	evalDensity := func(l []float64, out []float64) {
		for g := 0; g < gs; g++ {
			var e float64
			for i := 0; i < k; i++ {
				e += l[i] * s.basis[i][g]
			}
			if e > maxExpArg {
				e = maxExpArg
			} else if e < -maxExpArg {
				e = -maxExpArg
			}
			out[g] = math.Exp(e)
		}
	}
	potential := func(l []float64, fv []float64) float64 {
		var z float64
		for g := 0; g < gs; g++ {
			z += fv[g] * s.weights[g]
		}
		var lin float64
		for i := 0; i < k; i++ {
			lin += l[i] * d[i]
		}
		return z - lin
	}

	evalDensity(lambda, f)
	p := potential(lambda, f)
	for iter := 0; iter < maxNewtonIters; iter++ {
		// Gradient: basis moments of f minus targets.
		maxG := 0.0
		for i := 0; i < k; i++ {
			var acc float64
			for g := 0; g < gs; g++ {
				v := s.basis[i][g] * f[g] * s.weights[g]
				scratch[i][g] = v
				acc += v
			}
			grad[i] = acc - d[i]
			if a := math.Abs(grad[i]); a > maxG {
				maxG = a
			}
		}
		if maxG < gradTol {
			return s.tabulate(f), nil
		}
		// Hessian: H_ij = Σ_g B_i B_j f w (reuse B_i·f·w from scratch).
		for i := 0; i < k; i++ {
			for j := i; j < k; j++ {
				var acc float64
				row := s.basis[j]
				sc := scratch[i]
				for g := 0; g < gs; g++ {
					acc += sc[g] * row[g]
				}
				hess[i*k+j] = acc
				hess[j*k+i] = acc
			}
		}
		if !solveSPD(hess, grad, step, k) {
			return nil, ErrNoConvergence
		}
		descent := 0.0
		for i := 0; i < k; i++ {
			step[i] = -step[i]
			descent += grad[i] * step[i]
		}
		alpha := 1.0
		improved := false
		for t := 0; t < 40; t++ {
			for i := 0; i < k; i++ {
				trial[i] = lambda[i] + alpha*step[i]
			}
			evalDensity(trial, f)
			pt := potential(trial, f)
			if pt <= p+1e-4*alpha*descent || pt < p {
				copy(lambda, trial)
				p = pt
				improved = true
				break
			}
			alpha /= 2
		}
		if !improved {
			if maxG < 1e-4 {
				return s.tabulate(f), nil
			}
			return nil, ErrNoConvergence
		}
	}
	// Loose acceptance, mirroring Solver.
	for i := 0; i < k; i++ {
		var acc float64
		for g := 0; g < gs; g++ {
			acc += s.basis[i][g] * f[g] * s.weights[g]
		}
		if math.Abs(acc-d[i]) > 1e-3 {
			return nil, ErrNoConvergence
		}
	}
	return s.tabulate(f), nil
}

func (s *GridSolver) tabulate(f []float64) *GridDensity {
	pdf := append([]float64(nil), f...)
	cdf := make([]float64, len(pdf))
	var z, cum float64
	for g, v := range pdf {
		z += v * s.weights[g]
	}
	for g, v := range pdf {
		cum += v * s.weights[g]
		cdf[g] = cum / z
	}
	return &GridDensity{pdf: pdf, cdf: cdf}
}

// QuantileCell returns the (fractional) grid cell index where the CDF
// reaches q; callers map it back to their value domain.
func (dn *GridDensity) QuantileCell(q float64) float64 {
	if q <= 0 {
		return 0
	}
	if q >= 1 {
		return float64(len(dn.cdf) - 1)
	}
	lo, hi := 0, len(dn.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if dn.cdf[mid] < q {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	g := lo
	prev := 0.0
	if g > 0 {
		prev = dn.cdf[g-1]
	}
	frac := 0.5
	if dn.cdf[g] > prev {
		frac = (q - prev) / (dn.cdf[g] - prev)
	}
	return float64(g) - 0.5 + frac
}

// CDFCell returns the CDF at a (fractional) grid cell index.
func (dn *GridDensity) CDFCell(cell float64) float64 {
	if cell <= -0.5 {
		return 0
	}
	last := float64(len(dn.cdf) - 1)
	if cell >= last+0.5 {
		return 1
	}
	pos := cell + 0.5
	g := int(pos)
	if g >= len(dn.cdf) {
		g = len(dn.cdf) - 1
	}
	prev := 0.0
	if g > 0 {
		prev = dn.cdf[g-1]
	}
	frac := pos - float64(g)
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	return prev + frac*(dn.cdf[g]-prev)
}
