package maxent

import (
	"math"
	"testing"
	"testing/quick"
)

func TestChebyshevCoefficients(t *testing.T) {
	c := ChebyshevCoefficients(5)
	want := [][]float64{
		{1},
		{0, 1},
		{-1, 0, 2},
		{0, -3, 0, 4},
		{1, 0, -8, 0, 8},
	}
	for j := range want {
		if len(c[j]) != len(want[j]) {
			t.Fatalf("T_%d has %d coeffs, want %d", j, len(c[j]), len(want[j]))
		}
		for m := range want[j] {
			if c[j][m] != want[j][m] {
				t.Errorf("T_%d coeff %d = %v, want %v", j, m, c[j][m], want[j][m])
			}
		}
	}
}

// Chebyshev values from coefficients must match the recurrence used by
// the solver grid.
func TestChebyshevConsistency(t *testing.T) {
	coeffs := ChebyshevCoefficients(8)
	for _, x := range []float64{-1, -0.5, 0, 0.3, 0.99, 1} {
		tPrev, tCur := 1.0, x
		for j := 0; j < 8; j++ {
			var fromCoef float64
			p := 1.0
			for _, c := range coeffs[j] {
				fromCoef += c * p
				p *= x
			}
			var rec float64
			switch j {
			case 0:
				rec = 1
			case 1:
				rec = x
			default:
				rec = 2*x*tCur - tPrev
				tPrev, tCur = tCur, rec
			}
			if math.Abs(fromCoef-rec) > 1e-9 {
				t.Fatalf("T_%d(%v): coeffs %v vs recurrence %v", j, x, fromCoef, rec)
			}
		}
	}
}

// Also: T_j(cos θ) = cos(jθ).
func TestChebyshevIdentity(t *testing.T) {
	coeffs := ChebyshevCoefficients(10)
	for theta := 0.0; theta <= math.Pi; theta += 0.1 {
		x := math.Cos(theta)
		for j, poly := range coeffs {
			var v float64
			p := 1.0
			for _, c := range poly {
				v += c * p
				p *= x
			}
			if want := math.Cos(float64(j) * theta); math.Abs(v-want) > 1e-8 {
				t.Fatalf("T_%d(cos %v) = %v, want %v", j, theta, v, want)
			}
		}
	}
}

func TestShiftPowerMoments(t *testing.T) {
	// Distribution: point mass at x = 3. Raw moments E[x^m] = 3^m.
	raw := []float64{1, 3, 9, 27}
	// t = 0.5x − 1 → point mass at t = 0.5.
	got := ShiftPowerMoments(raw, 0.5, -1)
	want := []float64{1, 0.5, 0.25, 0.125}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("moment %d = %v, want %v", i, got[i], want[i])
		}
	}
}

// Solving with the moments of the uniform distribution on [−1,1] must
// recover (approximately) the uniform density: E[T_0]=1, E[T_1]=0,
// E[T_2]=∫t²/2·2−... use exact: E[t^m] = 0 for odd m, 1/(m+1) for even m.
func TestSolveUniform(t *testing.T) {
	k := 8
	mu := make([]float64, k)
	for m := 0; m < k; m++ {
		if m%2 == 0 {
			mu[m] = 1 / float64(m+1)
		}
	}
	d := PowerToChebyshevMoments(mu)
	s := NewSolver(k, 512)
	dens, err := s.Solve(d)
	if err != nil {
		t.Fatal(err)
	}
	// Quantiles of U(−1,1): q-quantile = 2q − 1.
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		got := dens.QuantileT(q)
		want := 2*q - 1
		if math.Abs(got-want) > 0.01 {
			t.Errorf("uniform q=%v: got %v, want %v", q, got, want)
		}
	}
}

// A truncated-Gaussian-like density: feed the sample moments of a normal
// clipped to [−1,1] and check the median comes back near its mean.
func TestSolveGaussianLike(t *testing.T) {
	k := 10
	// Sample moments of N(0.2, 0.1²) — essentially fully inside [−1,1].
	const mean, sd = 0.2, 0.1
	mu := make([]float64, k)
	// Use the moment recurrence for the normal distribution:
	// E[x^m] = mean·E[x^(m−1)] + (m−1)·sd²·E[x^(m−2)].
	mu[0] = 1
	if k > 1 {
		mu[1] = mean
	}
	for m := 2; m < k; m++ {
		mu[m] = mean*mu[m-1] + float64(m-1)*sd*sd*mu[m-2]
	}
	d := PowerToChebyshevMoments(mu)
	s := NewSolver(k, 1024)
	dens, err := s.Solve(d)
	if err != nil {
		t.Fatal(err)
	}
	if got := dens.QuantileT(0.5); math.Abs(got-mean) > 0.01 {
		t.Errorf("median = %v, want ≈ %v", got, mean)
	}
	// 84th percentile ≈ mean + sd.
	if got := dens.QuantileT(0.8413); math.Abs(got-(mean+sd)) > 0.02 {
		t.Errorf("q=0.84 = %v, want ≈ %v", got, mean+sd)
	}
}

func TestSolveRejectsBadMoments(t *testing.T) {
	s := NewSolver(4, 256)
	if _, err := s.Solve([]float64{1, math.NaN(), 0, 0}); err == nil {
		t.Error("NaN moment should fail")
	}
	if _, err := s.Solve([]float64{1, 5, 0, 0}); err == nil {
		t.Error("|c_1| > 1 should fail")
	}
	if _, err := s.Solve([]float64{1, 0}); err == nil {
		t.Error("wrong moment count should fail")
	}
}

func TestDensityCDFInvertsQuantile(t *testing.T) {
	k := 6
	mu := make([]float64, k)
	for m := 0; m < k; m++ {
		if m%2 == 0 {
			mu[m] = 1 / float64(m+1)
		}
	}
	s := NewSolver(k, 512)
	dens, err := s.Solve(PowerToChebyshevMoments(mu))
	if err != nil {
		t.Fatal(err)
	}
	for q := 0.05; q < 1; q += 0.05 {
		tq := dens.QuantileT(q)
		back := dens.CDFT(tq)
		if math.Abs(back-q) > 0.01 {
			t.Errorf("CDF(Quantile(%v)) = %v", q, back)
		}
	}
}

func TestSolveSPD(t *testing.T) {
	// 2x2 system: [[4,2],[2,3]]·x = [2,5] → x = [−0.5, 2].
	a := []float64{4, 2, 2, 3}
	b := []float64{2, 5}
	x := make([]float64, 2)
	if !solveSPD(a, b, x, 2) {
		t.Fatal("solve failed")
	}
	if math.Abs(x[0]+0.5) > 1e-12 || math.Abs(x[1]-2) > 1e-12 {
		t.Fatalf("x = %v, want [-0.5, 2]", x)
	}
}

// Property: solveSPD solves random SPD systems A = MᵀM + I.
func TestQuickSolveSPD(t *testing.T) {
	f := func(seedVals [9]int8, bv [3]int8) bool {
		n := 3
		m := make([]float64, n*n)
		for i := range m {
			m[i] = float64(seedVals[i]) / 16
		}
		a := make([]float64, n*n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				var s float64
				for p := 0; p < n; p++ {
					s += m[p*n+i] * m[p*n+j]
				}
				if i == j {
					s += 1
				}
				a[i*n+j] = s
			}
		}
		b := []float64{float64(bv[0]), float64(bv[1]), float64(bv[2])}
		x := make([]float64, n)
		if !solveSPD(a, b, x, n) {
			return false
		}
		// Verify residual.
		for i := 0; i < n; i++ {
			var r float64
			for j := 0; j < n; j++ {
				r += a[i*n+j] * x[j]
			}
			if math.Abs(r-b[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
