package maxent

import (
	"errors"
	"fmt"
	"math"
)

// Solver errors.
var (
	// ErrNoConvergence is returned when Newton iteration fails to reach
	// the gradient tolerance within the iteration budget.
	ErrNoConvergence = errors.New("maxent: Newton iteration did not converge")
	// ErrBadMoments is returned for non-finite or inconsistent target
	// moments.
	ErrBadMoments = errors.New("maxent: invalid target moments")
)

// DefaultGridSize matches the default quadrature grid of the reference
// Moments Sketch solver; the paper notes accuracy can be traded against
// query time through this parameter (Sec 4.5.5).
const DefaultGridSize = 1024

const (
	maxNewtonIters = 200
	gradTol        = 1e-9
	maxExpArg      = 350 // exp clamp to avoid overflow during line search
)

// Solver holds the precomputed quadrature grid and Chebyshev polynomial
// values needed to solve the max-entropy problem for k moments. It is
// reusable across queries and safe for sequential reuse.
type Solver struct {
	k        int
	gridSize int
	dt       float64
	grid     []float64   // midpoint quadrature nodes on [−1, 1]
	cheb     [][]float64 // cheb[i][g] = T_i(grid[g]), i < 2k−1

	// warm holds the multipliers of the last successful solve. Across
	// adjacent solves of one stream (a window boundary, or a handful of
	// new observations among many) the max-entropy solution moves very
	// little, so Newton restarted from it converges in a few iterations
	// where a cold start needs dozens. Empty until the first success.
	warm []float64
}

// NewSolver builds a solver for k Chebyshev moments (including c_0) on a
// quadrature grid of gridSize points. It panics if k < 2.
func NewSolver(k, gridSize int) *Solver {
	if k < 2 {
		panic(fmt.Sprintf("maxent: need k >= 2 moments, got %d", k))
	}
	if gridSize < 8 {
		gridSize = 8
	}
	s := &Solver{k: k, gridSize: gridSize, dt: 2 / float64(gridSize)}
	s.grid = make([]float64, gridSize)
	for g := range s.grid {
		s.grid[g] = -1 + (float64(g)+0.5)*s.dt
	}
	// T_i on the grid for i ≤ 2k−2 (the Hessian needs moments up to
	// order 2k−2 via the product identity).
	n := 2*k - 1
	s.cheb = make([][]float64, n)
	s.cheb[0] = make([]float64, gridSize)
	for g := range s.cheb[0] {
		s.cheb[0][g] = 1
	}
	if n > 1 {
		s.cheb[1] = append([]float64(nil), s.grid...)
	}
	for i := 2; i < n; i++ {
		row := make([]float64, gridSize)
		for g := range row {
			row[g] = 2*s.grid[g]*s.cheb[i-1][g] - s.cheb[i-2][g]
		}
		s.cheb[i] = row
	}
	return s
}

// K returns the number of moments the solver was built for.
func (s *Solver) K() int { return s.k }

// DiscardWarm forgets the warm-start multipliers, forcing the next
// Solve to cold-start. Callers use it at serialization and reset
// boundaries, where answers must be reproducible from sketch state
// alone rather than from this instance's query history.
func (s *Solver) DiscardWarm() { s.warm = s.warm[:0] }

// GridSize returns the quadrature grid size.
func (s *Solver) GridSize() int { return s.gridSize }

// Density is a solved max-entropy density tabulated on the solver's grid,
// with its cumulative distribution for quantile inversion.
type Density struct {
	grid []float64
	pdf  []float64
	cdf  []float64 // cdf[g] = P(T ≤ grid[g] + dt/2), cdf[last] = 1
	dt   float64
}

// Solve finds the max-entropy density whose Chebyshev moments match d
// (len(d) = k, d[0] must be 1 up to rounding). It returns the tabulated
// density or an error if the moments are infeasible or iteration fails.
//
// When a previous Solve on this instance succeeded, Newton restarts
// from that solution's multipliers; if the warm-started iteration fails
// to converge it falls back to the usual cold start from the uniform
// density, so warm starting can only change how fast a solvable system
// converges, never turn a solvable one into a failure.
func (s *Solver) Solve(d []float64) (*Density, error) {
	if len(d) != s.k {
		return nil, fmt.Errorf("%w: got %d moments, solver built for %d", ErrBadMoments, len(d), s.k)
	}
	for _, v := range d {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, ErrBadMoments
		}
	}
	// Chebyshev moments of any distribution on [−1,1] lie in [−1, 1].
	for j := 1; j < len(d); j++ {
		if math.Abs(d[j]) > 1+1e-6 {
			return nil, fmt.Errorf("%w: |c_%d| = %v > 1", ErrBadMoments, j, math.Abs(d[j]))
		}
	}

	lambda := make([]float64, s.k)
	if len(s.warm) == s.k {
		copy(lambda, s.warm)
		if dn, err := s.newton(d, lambda); err == nil {
			s.warm = append(s.warm[:0], lambda...)
			return dn, nil
		}
		for i := range lambda {
			lambda[i] = 0
		}
	}
	if metrics != nil {
		metrics.ColdStarts.Inc()
	}
	lambda[0] = math.Log(0.5) // start from the uniform density on [−1,1]
	dn, err := s.newton(d, lambda)
	if err != nil {
		return nil, err
	}
	s.warm = append(s.warm[:0], lambda...)
	return dn, nil
}

// newton runs the damped Newton iteration from the given starting
// multipliers, updating lambda in place to the multipliers of the
// returned density.
func (s *Solver) newton(d, lambda []float64) (*Density, error) {
	k, gs := s.k, s.gridSize
	f := make([]float64, gs)
	m := make([]float64, 2*k-1)
	grad := make([]float64, k)
	hess := make([]float64, k*k)
	step := make([]float64, k)
	trial := make([]float64, k)

	evalDensity := func(l []float64, out []float64) {
		for g := 0; g < gs; g++ {
			var e float64
			for j := 0; j < k; j++ {
				e += l[j] * s.cheb[j][g]
			}
			if e > maxExpArg {
				e = maxExpArg
			} else if e < -maxExpArg {
				e = -maxExpArg
			}
			out[g] = math.Exp(e)
		}
	}
	potential := func(l []float64, fv []float64) float64 {
		var z float64
		for g := 0; g < gs; g++ {
			z += fv[g]
		}
		z *= s.dt
		var lin float64
		for j := 0; j < k; j++ {
			lin += l[j] * d[j]
		}
		return z - lin
	}

	evalDensity(lambda, f)
	p := potential(lambda, f)
	for iter := 0; iter < maxNewtonIters; iter++ {
		if metrics != nil {
			metrics.NewtonIterations.Inc()
		}
		// Moments of the current density up to order 2k−2.
		for i := range m {
			var acc float64
			row := s.cheb[i]
			for g := 0; g < gs; g++ {
				acc += row[g] * f[g]
			}
			m[i] = acc * s.dt
		}
		maxG := 0.0
		for j := 0; j < k; j++ {
			grad[j] = m[j] - d[j]
			if a := math.Abs(grad[j]); a > maxG {
				maxG = a
			}
		}
		if maxG < gradTol {
			return s.tabulate(f), nil
		}
		// Hessian via the product identity.
		for i := 0; i < k; i++ {
			for j := i; j < k; j++ {
				v := 0.5 * (m[i+j] + m[j-i])
				hess[i*k+j] = v
				hess[j*k+i] = v
			}
		}
		if !solveSPD(hess, grad, step, k) {
			return nil, ErrNoConvergence
		}
		// Damped Newton: step = −H⁻¹g, backtracking on the potential.
		descent := 0.0
		for j := 0; j < k; j++ {
			step[j] = -step[j]
			descent += grad[j] * step[j]
		}
		alpha := 1.0
		improved := false
		for t := 0; t < 40; t++ {
			for j := 0; j < k; j++ {
				trial[j] = lambda[j] + alpha*step[j]
			}
			evalDensity(trial, f)
			pt := potential(trial, f)
			if pt <= p+1e-4*alpha*descent || pt < p {
				copy(lambda, trial)
				p = pt
				improved = true
				break
			}
			alpha /= 2
		}
		if !improved {
			// No progress possible along the Newton direction: accept the
			// current density if it is already close, else fail.
			if maxG < 1e-4 {
				return s.tabulate(f), nil
			}
			return nil, ErrNoConvergence
		}
	}
	// Accept a slightly loose solution rather than failing hard: the
	// sketch's accuracy analysis tolerates approximate solves.
	for i := range m {
		if i < k {
			var acc float64
			for g := 0; g < gs; g++ {
				acc += s.cheb[i][g] * f[g]
			}
			if math.Abs(acc*s.dt-d[i]) > 1e-3 {
				return nil, ErrNoConvergence
			}
		}
	}
	return s.tabulate(f), nil
}

// tabulate normalizes f into a Density with its CDF.
func (s *Solver) tabulate(f []float64) *Density {
	pdf := append([]float64(nil), f...)
	cdf := make([]float64, len(pdf))
	var z float64
	for _, v := range pdf {
		z += v
	}
	var cum float64
	for g, v := range pdf {
		cum += v
		cdf[g] = cum / z
	}
	return &Density{grid: s.grid, pdf: pdf, cdf: cdf, dt: s.dt}
}

// QuantileT inverts the CDF: the t ∈ [−1, 1] with P(T ≤ t) = q, linearly
// interpolated between grid cells.
func (dn *Density) QuantileT(q float64) float64 {
	if q <= 0 {
		return -1
	}
	if q >= 1 {
		return 1
	}
	// Binary search for the first cdf entry ≥ q.
	lo, hi := 0, len(dn.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if dn.cdf[mid] < q {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	g := lo
	prev := 0.0
	if g > 0 {
		prev = dn.cdf[g-1]
	}
	frac := 0.5
	if dn.cdf[g] > prev {
		frac = (q - prev) / (dn.cdf[g] - prev)
	}
	return dn.grid[g] - dn.dt/2 + frac*dn.dt
}

// CDFT returns P(T ≤ t) for t ∈ [−1, 1].
func (dn *Density) CDFT(t float64) float64 {
	if t <= -1 {
		return 0
	}
	if t >= 1 {
		return 1
	}
	pos := (t + 1) / dn.dt // in grid cells
	g := int(pos)
	if g >= len(dn.cdf) {
		g = len(dn.cdf) - 1
	}
	prev := 0.0
	if g > 0 {
		prev = dn.cdf[g-1]
	}
	frac := pos - float64(g)
	return prev + frac*(dn.cdf[g]-prev)
}

// solveSPD solves the symmetric positive-definite system A·x = b (A given
// row-major, n×n) by Cholesky factorization, retrying with increasing
// ridge regularization when the factorization fails. b is not modified.
// It reports whether a solution was produced.
func solveSPD(a, b, x []float64, n int) bool {
	l := make([]float64, n*n)
	ridge := 0.0
	for attempt := 0; attempt < 8; attempt++ {
		if cholesky(a, l, n, ridge) {
			// Forward substitution L·y = b.
			y := x // reuse
			for i := 0; i < n; i++ {
				sum := b[i]
				for j := 0; j < i; j++ {
					sum -= l[i*n+j] * y[j]
				}
				y[i] = sum / l[i*n+i]
			}
			// Back substitution Lᵀ·x = y.
			for i := n - 1; i >= 0; i-- {
				sum := y[i]
				for j := i + 1; j < n; j++ {
					sum -= l[j*n+i] * x[j]
				}
				x[i] = sum / l[i*n+i]
			}
			ok := true
			for i := 0; i < n; i++ {
				if math.IsNaN(x[i]) || math.IsInf(x[i], 0) {
					ok = false
					break
				}
			}
			if ok {
				return true
			}
		}
		if ridge == 0 {
			ridge = 1e-12
		} else {
			ridge *= 100
		}
	}
	return false
}

// cholesky computes the lower-triangular factor of a+ridge·I into l,
// reporting success.
func cholesky(a, l []float64, n int, ridge float64) bool {
	for i := range l {
		l[i] = 0
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a[i*n+j]
			if i == j {
				sum += ridge
			}
			for p := 0; p < j; p++ {
				sum -= l[i*n+p] * l[j*n+p]
			}
			if i == j {
				if sum <= 0 || math.IsNaN(sum) {
					return false
				}
				l[i*n+i] = math.Sqrt(sum)
			} else {
				l[i*n+j] = sum / l[j*n+j]
			}
		}
	}
	return true
}
