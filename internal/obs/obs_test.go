package obs

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// Nil receivers are the disabled state: every method must be a safe
// no-op returning zero.
func TestNilReceiversAreNoOps(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Load() != 0 {
		t.Error("nil counter should load 0")
	}
	var g *Gauge
	g.Set(9)
	g.Max(9)
	if g.Load() != 0 {
		t.Error("nil gauge should load 0")
	}
	var m *SketchMetrics
	// Field access on a nil struct pointer is not possible, but the
	// instrumented packages guard with `if metrics != nil`; the nil
	// Counter/Gauge behavior above covers the engine's field pointers.
	_ = m
}

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Errorf("counter = %d, want 42", got)
	}
	var g Gauge
	g.Max(10)
	g.Max(7) // lower: ignored
	if got := g.Load(); got != 10 {
		t.Errorf("max gauge = %d, want 10", got)
	}
	g.Set(3)
	if got := g.Load(); got != 3 {
		t.Errorf("gauge = %d, want 3", got)
	}
}

// Max must be correct under contention: the final value is the maximum
// of everything observed.
func TestGaugeMaxConcurrent(t *testing.T) {
	var g Gauge
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(base int64) {
			defer wg.Done()
			for i := int64(0); i < 1000; i++ {
				g.Max(base*1000 + i)
			}
		}(int64(w))
	}
	wg.Wait()
	if got := g.Load(); got != 7999 {
		t.Errorf("concurrent max = %d, want 7999", got)
	}
}

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	r.Sketch("kll").Inserts.Add(100)
	r.Sketch("kll").Compactions.Inc()
	r.Engine().Generated.Add(100)
	r.Engine().DroppedLate.Add(3)
	snap := r.Snapshot()
	if snap["sketch.kll.inserts"] != 100 {
		t.Errorf("inserts = %d", snap["sketch.kll.inserts"])
	}
	if snap["sketch.kll.compactions"] != 1 {
		t.Errorf("compactions = %d", snap["sketch.kll.compactions"])
	}
	if snap["engine.generated"] != 100 || snap["engine.dropped_late"] != 3 {
		t.Errorf("engine counters: %v", snap)
	}
	// Sketch sets are stable identities: the same pointer every call.
	if r.Sketch("kll") != r.Sketch("kll") {
		t.Error("Sketch not idempotent")
	}
}

func TestWriteTextAndHandler(t *testing.T) {
	r := NewRegistry()
	r.Sketch("ddsketch").Collapses.Add(7)
	r.Sketch("kll").Inserts.Add(5)
	r.Engine().WindowFires.Add(2)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"# TYPE quantstream_engine_window_fires_total counter",
		"quantstream_engine_window_fires_total 2",
		`quantstream_sketch_collapses_total{sketch="ddsketch"} 7`,
		`quantstream_sketch_inserts_total{sketch="kll"} 5`,
		"# TYPE quantstream_sketch_peak_bytes gauge",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("text dump missing %q:\n%s", want, text)
		}
	}

	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
}
