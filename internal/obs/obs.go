// Package obs is the repo's zero-dependency observability layer: atomic
// counters and gauges the sketches and the stream engine increment at
// their structural events (inserts, compactions, collapses, window
// fires, late drops, …), aggregated in a Registry that can be dumped as
// Prometheus text, published through expvar, or snapshotted for test
// assertions.
//
// The layer is disabled by default. Every instrumented package holds a
// nil *SketchMetrics (or a nil Config.Metrics in the stream engine), and
// every recording method nil-checks its receiver, so the disabled cost
// is a single predictable branch per recording site — none of which sit
// inside per-element scalar loops tighter than an insert. Production
// systems built on these sketches (Rinberg et al.'s concurrent sketches,
// UDDSketch deployments where the collapse count is the accuracy
// diagnostic) treat these counters as first-class; here they also make
// the engine's accounting provable: the stats identity
// Generated == Accepted + DroppedLate + RejectedInput is asserted
// against these counters in tests.
//
// Enabling is a wiring decision made at process start (see
// core.EnableMetrics and the quantbench -metrics/-http flags). The
// Set*Metrics functions of the instrumented packages must be called
// while no sketch or engine of that package is running; after that,
// recording is safe from any number of goroutines.
package obs

import (
	"expvar"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. All methods are
// safe on a nil receiver (no-ops / zero), which is the disabled state.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Load returns the current value (0 on nil).
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. All methods are safe on a nil
// receiver.
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Max raises the gauge to n if n exceeds the current value — a
// high-water mark. Lock-free via CAS.
func (g *Gauge) Max(n int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Load returns the current value (0 on nil).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// SketchMetrics aggregates the structural events of every sketch
// instance a package builds (all windows, all partitions). A nil
// *SketchMetrics is the disabled state; the instrumented packages guard
// every recording site with a nil check on the package-level pointer.
type SketchMetrics struct {
	// Inserts counts accepted values (batch kernels add their length).
	Inserts Counter
	// Compactions counts compactor-level compaction operations
	// (KLL/REQ).
	Compactions Counter
	// Collapses counts bucket-store collapse operations (DDSketch
	// collapsing stores, UDDSketch uniform collapses).
	Collapses Counter
	// AlphaDeteriorations counts guarantee degradations: UDDSketch's
	// α ← 2α/(1+α²) steps. DDSketch collapses do not degrade α and so
	// never increment this.
	AlphaDeteriorations Counter
	// NewtonIterations counts max-entropy solver Newton steps
	// (Moments).
	NewtonIterations Counter
	// ColdStarts counts solver cold starts, including warm-start
	// fallbacks (Moments).
	ColdStarts Counter
	// PeakBytes is the high-water-mark MemoryBytes() of any single
	// instance, sampled at structural events (compaction, collapse,
	// merge, solve) — "space actually resident" as opposed to the
	// footprint the sketch reports at query time.
	PeakBytes Gauge
}

// sketchFields enumerates the SketchMetrics values for rendering.
func (m *SketchMetrics) fields() []field {
	return []field{
		{"inserts_total", counterKind, m.Inserts.Load()},
		{"compactions_total", counterKind, m.Compactions.Load()},
		{"collapses_total", counterKind, m.Collapses.Load()},
		{"alpha_deteriorations_total", counterKind, m.AlphaDeteriorations.Load()},
		{"newton_iterations_total", counterKind, m.NewtonIterations.Load()},
		{"cold_starts_total", counterKind, m.ColdStarts.Load()},
		{"peak_bytes", gaugeKind, m.PeakBytes.Load()},
	}
}

// EngineMetrics aggregates stream-engine counters across runs. A nil
// *EngineMetrics disables recording (stream.Config.Metrics defaults to
// nil).
type EngineMetrics struct {
	// Generated counts events produced by the source inside the
	// measured run (grace-period events past the final window are
	// excluded, matching Stats.Generated).
	Generated Counter
	// Inserted counts events routed into a window's sketch.
	Inserted Counter
	// DroppedLate counts events discarded because their window had
	// already fired.
	DroppedLate Counter
	// RejectedInput counts events discarded for invalid payloads
	// (NaN/±Inf) before reaching any sketch.
	RejectedInput Counter
	// WindowFires counts emitted windows.
	WindowFires Counter
	// PanesOpen is the number of panes the pane-sharing sliding engine
	// currently buffers (unsealed panes still accepting events plus
	// sealed panes retained for windows that have not fired yet).
	// Tumbling runs leave it at 0.
	PanesOpen Gauge
	// PaneMerges counts pane sketches folded into fired sliding
	// windows — the work the pane-sharing engine does instead of
	// re-inserting every event once per overlapping window.
	PaneMerges Counter
	// MaxWatermarkLagNS is the high-water mark of (event arrival time −
	// watermark) observed while processing, in nanoseconds: how far
	// arrival order ran ahead of event time.
	MaxWatermarkLagNS Gauge
	// MaxBatchQueueDepth is the high-water mark of any parallel
	// worker's channel depth (queued batch/fire messages).
	MaxBatchQueueDepth Gauge
	// SnapshotsTaken counts engine checkpoints persisted to the
	// configured store.
	SnapshotsTaken Counter
	// SnapshotBytes totals the sealed size of persisted checkpoints.
	SnapshotBytes Counter
	// Restores counts successful resume-from-checkpoint operations.
	Restores Counter
	// ReplayedEvents counts source draws fast-forwarded during resumes
	// (events re-generated to reach the checkpointed source offset).
	ReplayedEvents Counter
	// RecoveredPanics counts engine/worker panics converted into a
	// restore-and-replay cycle by RunRecovering.
	RecoveredPanics Counter
	// WorkersClamped counts engine constructions whose Config.Workers
	// exceeded Config.Partitions and was clamped down (each worker owns
	// whole partitions, so extra workers would sit idle). The clamp is
	// also reported once per process on stderr; this counter makes it
	// visible to scrapes and tests.
	WorkersClamped Counter
	// Degradations counts in-place sketch degradations applied by the
	// memory-budget governor (rung 1 of the degradation ladder).
	Degradations Counter
	// BudgetEvictions counts sealed panes coarsened (merged into their
	// successor early) to reclaim memory (rung 2).
	BudgetEvictions Counter
	// BudgetShed counts events dropped because the budget was exhausted
	// past every degradation rung (rung 3). These extend the accounting
	// identity: Generated == Accepted + DroppedLate + RejectedInput +
	// ShedBudget.
	BudgetShed Counter
	// BudgetBytes is the governor's tracked footprint after the most
	// recent enforcement pass (0 when no budget is configured).
	BudgetBytes Gauge
	// CheckpointRetries counts transient checkpoint-store failures
	// absorbed by retry (checkpoint.RetryStore).
	CheckpointRetries Counter
}

func (m *EngineMetrics) fields() []field {
	return []field{
		{"generated_total", counterKind, m.Generated.Load()},
		{"inserted_total", counterKind, m.Inserted.Load()},
		{"dropped_late_total", counterKind, m.DroppedLate.Load()},
		{"rejected_input_total", counterKind, m.RejectedInput.Load()},
		{"window_fires_total", counterKind, m.WindowFires.Load()},
		{"panes_open", gaugeKind, m.PanesOpen.Load()},
		{"pane_merges_total", counterKind, m.PaneMerges.Load()},
		{"max_watermark_lag_ns", gaugeKind, m.MaxWatermarkLagNS.Load()},
		{"max_batch_queue_depth", gaugeKind, m.MaxBatchQueueDepth.Load()},
		{"snapshots_total", counterKind, m.SnapshotsTaken.Load()},
		{"snapshot_bytes_total", counterKind, m.SnapshotBytes.Load()},
		{"restores_total", counterKind, m.Restores.Load()},
		{"replayed_events_total", counterKind, m.ReplayedEvents.Load()},
		{"recovered_panics_total", counterKind, m.RecoveredPanics.Load()},
		{"workers_clamped_total", counterKind, m.WorkersClamped.Load()},
		{"degradations_total", counterKind, m.Degradations.Load()},
		{"budget_evictions_total", counterKind, m.BudgetEvictions.Load()},
		{"budget_shed_total", counterKind, m.BudgetShed.Load()},
		{"budget_bytes", gaugeKind, m.BudgetBytes.Load()},
		{"checkpoint_retries_total", counterKind, m.CheckpointRetries.Load()},
	}
}

// ConcurrentMetrics aggregates the structural events of the concurrent
// shared-sketch layer (internal/concurrent): buffer handoffs from
// writer-local buffers into the shared sketch, CAS publication retries
// under contention, and snapshot reads. A nil *ConcurrentMetrics is the
// disabled state.
type ConcurrentMetrics struct {
	// Handoffs counts writer buffer flushes into the shared sketch.
	Handoffs Counter
	// HandoffValues totals the values propagated across all handoffs.
	HandoffValues Counter
	// CASRetries counts failed compare-and-swap attempts during
	// propagation (state pointer publication or lazily installed
	// counter pages lost to a concurrent writer).
	CASRetries Counter
	// Snapshots counts point-in-time snapshot reads taken while
	// writers were free to keep inserting.
	Snapshots Counter
	// RejectedInput counts values a writer handle refused (NaN/±Inf)
	// before they reached any buffer — the shared-sketch counterpart
	// of EngineMetrics.RejectedInput.
	RejectedInput Counter
}

func (m *ConcurrentMetrics) fields() []field {
	return []field{
		{"handoffs_total", counterKind, m.Handoffs.Load()},
		{"handoff_values_total", counterKind, m.HandoffValues.Load()},
		{"cas_retries_total", counterKind, m.CASRetries.Load()},
		{"snapshots_total", counterKind, m.Snapshots.Load()},
		{"rejected_input_total", counterKind, m.RejectedInput.Load()},
	}
}

type metricKind int

const (
	counterKind metricKind = iota
	gaugeKind
)

func (k metricKind) String() string {
	if k == counterKind {
		return "counter"
	}
	return "gauge"
}

// field is one rendered metric value.
type field struct {
	name string
	kind metricKind
	v    int64
}

// Registry owns the process's metric sets: one SketchMetrics per sketch
// name and one shared EngineMetrics. It is safe for concurrent use.
type Registry struct {
	mu         sync.Mutex
	sketches   map[string]*SketchMetrics
	engine     EngineMetrics
	concurrent ConcurrentMetrics
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{sketches: make(map[string]*SketchMetrics)}
}

// Sketch returns (creating on first use) the metrics set for the named
// sketch.
func (r *Registry) Sketch(name string) *SketchMetrics {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.sketches[name]
	if m == nil {
		m = &SketchMetrics{}
		r.sketches[name] = m
	}
	return m
}

// Engine returns the registry's engine metrics set.
func (r *Registry) Engine() *EngineMetrics { return &r.engine }

// Concurrent returns the registry's concurrent-sketch metrics set.
func (r *Registry) Concurrent() *ConcurrentMetrics { return &r.concurrent }

// sketchNames returns the registered sketch names, sorted.
func (r *Registry) sketchNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.sketches))
	for n := range r.sketches {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Snapshot returns every metric as a flat map: "engine.<name>" for
// engine counters and "sketch.<sketch>.<name>" for sketch counters.
// Values are read atomically per metric (the snapshot as a whole is not
// a consistent cut, which is fine for monotone counters at quiescence —
// the state tests read them in).
func (r *Registry) Snapshot() map[string]int64 {
	out := make(map[string]int64)
	for _, f := range r.engine.fields() {
		out["engine."+trimSuffix(f.name)] = f.v
	}
	for _, f := range r.concurrent.fields() {
		out["concurrent."+trimSuffix(f.name)] = f.v
	}
	for _, name := range r.sketchNames() {
		m := r.Sketch(name)
		for _, f := range m.fields() {
			out["sketch."+name+"."+trimSuffix(f.name)] = f.v
		}
	}
	return out
}

// trimSuffix drops the Prometheus "_total" suffix for snapshot keys.
func trimSuffix(s string) string {
	const suf = "_total"
	if len(s) > len(suf) && s[len(s)-len(suf):] == suf {
		return s[:len(s)-len(suf)]
	}
	return s
}

// WriteText renders the registry in the Prometheus text exposition
// format (one TYPE line per family, sketch families labeled by sketch
// name).
func (r *Registry) WriteText(w io.Writer) error {
	for _, f := range r.engine.fields() {
		if _, err := fmt.Fprintf(w, "# TYPE quantstream_engine_%s %s\nquantstream_engine_%s %d\n",
			f.name, f.kind, f.name, f.v); err != nil {
			return err
		}
	}
	for _, f := range r.concurrent.fields() {
		if _, err := fmt.Fprintf(w, "# TYPE quantstream_concurrent_%s %s\nquantstream_concurrent_%s %d\n",
			f.name, f.kind, f.name, f.v); err != nil {
			return err
		}
	}
	names := r.sketchNames()
	if len(names) == 0 {
		return nil
	}
	// Families across sketches share TYPE lines; emit family-major.
	families := r.Sketch(names[0]).fields()
	for fi := range families {
		f := families[fi]
		if _, err := fmt.Fprintf(w, "# TYPE quantstream_sketch_%s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, name := range names {
			v := r.Sketch(name).fields()[fi].v
			if _, err := fmt.Fprintf(w, "quantstream_sketch_%s{sketch=%q} %d\n", f.name, name, v); err != nil {
				return err
			}
		}
	}
	return nil
}

// Handler returns an http.Handler serving WriteText — a Prometheus
// scrape endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}

// PublishExpvar exposes the registry's Snapshot under the given expvar
// name (visible at /debug/vars). Publishing twice under one name panics
// in expvar, so call once per process.
func (r *Registry) PublishExpvar(name string) {
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
