package checkpoint

import (
	"errors"
	"fmt"
	"syscall"
	"testing"
	"time"

	"repro/internal/obs"
)

// flakyStore fails the first failN Puts with err, then delegates.
type flakyStore struct {
	Store
	failN int
	err   error
	puts  int
}

func (f *flakyStore) Put(seq uint64, data []byte) error {
	f.puts++
	if f.puts <= f.failN {
		return f.err
	}
	return f.Store.Put(seq, data)
}

// TestIsTransient pins the default classifier.
func TestIsTransient(t *testing.T) {
	transient := []error{
		syscall.EIO,
		fmt.Errorf("wrapped: %w", syscall.EINTR),
		syscall.EAGAIN,
		syscall.ETIMEDOUT,
	}
	for _, err := range transient {
		if !IsTransient(err) {
			t.Errorf("IsTransient(%v) = false, want true", err)
		}
	}
	permanent := []error{
		nil,
		ErrNotFound,
		ErrNoSnapshot,
		ErrCorrupt,
		ErrVersion,
		fmt.Errorf("wrapped: %w", ErrCorrupt),
		errors.New("some logic bug"),
	}
	for _, err := range permanent {
		if IsTransient(err) {
			t.Errorf("IsTransient(%v) = true, want false", err)
		}
	}
}

// TestRetryStorePutRecovers pins the happy retry path: transient EIO
// failures are absorbed, the payload lands intact, and the retry
// counter reflects every retried attempt.
func TestRetryStorePutRecovers(t *testing.T) {
	inner := &flakyStore{Store: NewMemStore(), failN: 3, err: fmt.Errorf("disk: %w", syscall.EIO)}
	var slept []time.Duration
	var retries obs.Counter
	rs := &RetryStore{
		Inner:   inner,
		Sleep:   func(d time.Duration) { slept = append(slept, d) },
		Retries: &retries,
	}
	if err := rs.Put(7, []byte("payload")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if inner.puts != 4 {
		t.Errorf("inner saw %d puts, want 4 (3 failures + success)", inner.puts)
	}
	if retries.Load() != 3 {
		t.Errorf("retry counter = %d, want 3", retries.Load())
	}
	if len(slept) != 3 {
		t.Fatalf("slept %d times, want 3", len(slept))
	}
	base, cap := 5*time.Millisecond, 500*time.Millisecond
	prev := base
	for i, d := range slept {
		hi := 3 * prev
		if hi > cap {
			hi = cap
		}
		if d < base || d > hi {
			t.Errorf("sleep %d = %v outside decorrelated-jitter range [%v, %v]", i, d, base, hi)
		}
		prev = d
	}
	got, err := rs.Get(7)
	if err != nil || string(got) != "payload" {
		t.Fatalf("Get after retries = %q, %v", got, err)
	}
}

// TestRetryStorePermanentFailsFast pins that permanent errors are
// returned immediately, unretried.
func TestRetryStorePermanentFailsFast(t *testing.T) {
	inner := &flakyStore{Store: NewMemStore(), failN: 100, err: fmt.Errorf("decode: %w", ErrCorrupt)}
	rs := &RetryStore{
		Inner: inner,
		Sleep: func(time.Duration) { t.Fatal("slept on a permanent error") },
	}
	if err := rs.Put(1, nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Put = %v, want ErrCorrupt through", err)
	}
	if inner.puts != 1 {
		t.Errorf("inner saw %d puts, want 1", inner.puts)
	}
	if _, err := rs.Get(42); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(missing) = %v, want ErrNotFound fast", err)
	}
}

// TestRetryStoreDeadline pins the bounded-retry contract: a fault that
// never clears exhausts the deadline and surfaces the last error.
func TestRetryStoreDeadline(t *testing.T) {
	inner := &flakyStore{Store: NewMemStore(), failN: 1 << 30, err: syscall.EIO}
	now := time.Unix(0, 0)
	rs := &RetryStore{
		Inner:      inner,
		MaxElapsed: time.Second,
		Sleep:      func(d time.Duration) { now = now.Add(d) },
		Now:        func() time.Time { return now },
	}
	err := rs.Put(1, []byte("x"))
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("Put = %v, want ErrRetriesExhausted", err)
	}
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("exhaustion error %v does not wrap the last cause", err)
	}
	if inner.puts < 2 {
		t.Errorf("inner saw %d puts, want at least one retry before giving up", inner.puts)
	}
}

// TestRetryStoreSeqs pins that reads are retried too.
type flakySeqs struct {
	Store
	fails int
}

func (f *flakySeqs) Seqs() ([]uint64, error) {
	if f.fails > 0 {
		f.fails--
		return nil, syscall.EAGAIN
	}
	return f.Store.Seqs()
}

func TestRetryStoreSeqs(t *testing.T) {
	mem := NewMemStore()
	if err := mem.Put(3, []byte("a")); err != nil {
		t.Fatal(err)
	}
	rs := &RetryStore{
		Inner: &flakySeqs{Store: mem, fails: 2},
		Sleep: func(time.Duration) {},
	}
	seqs, err := rs.Seqs()
	if err != nil || len(seqs) != 1 || seqs[0] != 3 {
		t.Fatalf("Seqs = %v, %v", seqs, err)
	}
}
