package checkpoint

import (
	"testing"
)

func shedSnap(shed int64, panes []PaneSnap) *Snapshot {
	return &Snapshot{
		Seq:        2,
		SketchName: "kll",
		Drawn:      100,
		Watermark:  50,
		NextFire:   3,
		Generated:  100,
		Accepted:   90 - shed,
		ShedBudget: shed,
		Windows: []WindowSnap{
			{Index: 3, Accepted: 10, Partials: [][]byte{nil, []byte("blob")}},
		},
		Panes: panes,
	}
}

// TestShedBudgetRoundTrip pins the extension trailer: ShedBudget
// survives encode/decode both with and without a pane trailer ahead of
// it, and stays zero when absent.
func TestShedBudgetRoundTrip(t *testing.T) {
	cases := []struct {
		name  string
		shed  int64
		panes []PaneSnap
	}{
		{"no-shed-no-panes", 0, nil},
		{"shed-no-panes", 17, nil},
		{"shed-with-panes", 23, []PaneSnap{{Index: 5, Accepted: 4, Sketch: []byte("pane")}}},
		{"panes-no-shed", 0, []PaneSnap{{Index: 5, Accepted: 4, Sketch: []byte("pane")}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data, err := EncodeSnapshot(shedSnap(tc.shed, tc.panes))
			if err != nil {
				t.Fatal(err)
			}
			got, err := DecodeSnapshot(data)
			if err != nil {
				t.Fatal(err)
			}
			if got.ShedBudget != tc.shed {
				t.Errorf("ShedBudget = %d, want %d", got.ShedBudget, tc.shed)
			}
			if len(got.Panes) != len(tc.panes) {
				t.Errorf("panes = %d, want %d", len(got.Panes), len(tc.panes))
			}
		})
	}
}

// TestShedBudgetLayoutUnchangedWhenZero pins backward compatibility:
// a snapshot without shedding encodes byte-identically to one that
// never knew the field, so historical blobs and bit-identity baselines
// are unaffected.
func TestShedBudgetLayoutUnchangedWhenZero(t *testing.T) {
	withField, err := EncodeSnapshot(shedSnap(0, nil))
	if err != nil {
		t.Fatal(err)
	}
	// Re-encode after a decode round-trip: any hidden trailer would
	// change the byte length.
	decoded, err := DecodeSnapshot(withField)
	if err != nil {
		t.Fatal(err)
	}
	again, err := EncodeSnapshot(decoded)
	if err != nil {
		t.Fatal(err)
	}
	if string(withField) != string(again) {
		t.Error("zero ShedBudget changed the snapshot byte layout")
	}
}
