package checkpoint

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestEnvelopeRoundTrip(t *testing.T) {
	payload := []byte{0, 1, 2, 3, 254, 255}
	sealed, err := Seal("kll", payload)
	if err != nil {
		t.Fatal(err)
	}
	name, got, err := Open(sealed)
	if err != nil {
		t.Fatal(err)
	}
	if name != "kll" || !bytes.Equal(got, payload) {
		t.Fatalf("got (%q, %v), want (kll, %v)", name, got, payload)
	}

	// Empty payloads are legal (an empty sketch's state can be tiny).
	sealed, err = Seal("engine-snapshot", nil)
	if err != nil {
		t.Fatal(err)
	}
	if name, got, err = Open(sealed); err != nil || name != "engine-snapshot" || len(got) != 0 {
		t.Fatalf("empty payload: got (%q, %v, %v)", name, got, err)
	}
}

func TestSealRejectsBadNames(t *testing.T) {
	if _, err := Seal("", []byte{1}); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := Seal(strings.Repeat("x", 256), []byte{1}); err == nil {
		t.Error("oversized name accepted")
	}
}

// TestEnvelopeCorruptionSweep is the containment guarantee: every
// truncation and every single-bit flip of a sealed envelope must be
// rejected with an error — never accepted, never a panic.
func TestEnvelopeCorruptionSweep(t *testing.T) {
	sealed, err := Seal("req", []byte("payload bytes that the checksum covers"))
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(sealed); n++ {
		if _, _, err := Open(sealed[:n]); err == nil {
			t.Fatalf("truncation to %d/%d bytes accepted", n, len(sealed))
		}
	}
	for i := 0; i < len(sealed); i++ {
		for bit := 0; bit < 8; bit++ {
			flipped := make([]byte, len(sealed))
			copy(flipped, sealed)
			flipped[i] ^= 1 << bit
			if _, _, err := Open(flipped); err == nil {
				t.Fatalf("bit flip at byte %d bit %d accepted", i, bit)
			}
		}
	}
}

func TestEnvelopeVersionGate(t *testing.T) {
	sealed, err := Seal("kll", []byte{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	sealed[4] = EnvelopeVersion + 1
	if _, _, err := Open(sealed); !errors.Is(err, ErrVersion) {
		t.Fatalf("got %v, want ErrVersion", err)
	}
}

// TestInspectDescribesDamage: Inspect must parse a structurally sound
// envelope whose checksum fails (payload bit flip) and report the
// damage, so `sketchtool checkpoint inspect` can describe bad files.
func TestInspectDescribesDamage(t *testing.T) {
	sealed, err := Seal("mrl", []byte("some payload"))
	if err != nil {
		t.Fatal(err)
	}
	info, err := Inspect(sealed)
	if err != nil {
		t.Fatal(err)
	}
	if info.Name != "mrl" || info.Version != EnvelopeVersion || !info.CRCValid || info.PayloadBytes != 12 {
		t.Fatalf("clean envelope described as %+v", info)
	}
	// Flip one payload bit (past the 11-byte header + 3-byte name):
	// the header still parses, only the checksum fails.
	sealed[15] ^= 0x01
	info, err = Inspect(sealed)
	if err != nil {
		t.Fatal(err)
	}
	if info.CRCValid {
		t.Error("Inspect reports a valid checksum on a flipped payload")
	}
	if _, _, err := Open(sealed); !errors.Is(err, ErrCorrupt) {
		t.Errorf("Open accepted what Inspect flagged: %v", err)
	}
}

func sampleSnapshot() *Snapshot {
	return &Snapshot{
		Seq:           3,
		SketchName:    "kll",
		Drawn:         12345,
		Watermark:     987654321,
		NextFire:      2,
		Generated:     12000,
		Accepted:      11500,
		DroppedLate:   400,
		RejectedInput: 100,
		LateWindows:   []int64{0, 1},
		LateDrops:     []int64{250, 150},
		InFlight: []Event{
			{Gen: 100, Arrival: 150, Value: 1.5, Partition: 0},
			{Gen: 101, Arrival: 140, Value: 2.5, Partition: 1},
		},
		Windows: []WindowSnap{
			{Index: 2, Accepted: 500, HasValues: true, Values: []float64{1, 2, 3},
				Partials: [][]byte{[]byte("blob-a"), nil}},
			{Index: 3, Accepted: 10, Partials: [][]byte{nil, []byte("blob-b")}},
		},
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	want := sampleSnapshot()
	data, err := EncodeSnapshot(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, want)
	}
}

// TestSnapshotCorruptionContained mirrors the envelope sweep at the
// snapshot level: damage anywhere must produce an error, not a panic
// or a silently wrong snapshot.
func TestSnapshotCorruptionContained(t *testing.T) {
	data, err := EncodeSnapshot(sampleSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(data); n++ {
		if _, err := DecodeSnapshot(data[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded", n)
		}
	}
	for i := 0; i < len(data); i++ {
		flipped := make([]byte, len(data))
		copy(flipped, data)
		flipped[i] ^= 0x10
		if _, err := DecodeSnapshot(flipped); err == nil {
			t.Fatalf("bit flip at byte %d decoded", i)
		}
	}
	// A valid envelope that is not an engine snapshot must be refused.
	other, err := Seal("kll", []byte{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeSnapshot(other); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("foreign envelope decoded as snapshot: %v", err)
	}
}

func TestMemStore(t *testing.T) {
	testStore(t, NewMemStore())
}

func TestDirStore(t *testing.T) {
	store, err := NewDirStore(filepath.Join(t.TempDir(), "ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	testStore(t, store)
}

func testStore(t *testing.T, store Store) {
	t.Helper()
	if _, err := store.Get(1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get on empty store: %v, want ErrNotFound", err)
	}
	for seq, data := range map[uint64][]byte{3: {3, 3}, 1: {1}, 2: {2, 2, 2}} {
		if err := store.Put(seq, data); err != nil {
			t.Fatal(err)
		}
	}
	seqs, err := store.Seqs()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seqs, []uint64{1, 2, 3}) {
		t.Fatalf("Seqs() = %v, want ascending [1 2 3]", seqs)
	}
	got, err := store.Get(2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{2, 2, 2}) {
		t.Fatalf("Get(2) = %v", got)
	}
	// Put replaces.
	if err := store.Put(2, []byte{9}); err != nil {
		t.Fatal(err)
	}
	if got, _ = store.Get(2); !bytes.Equal(got, []byte{9}) {
		t.Fatalf("Get(2) after replace = %v", got)
	}
}

// TestDirStoreIgnoresForeignFiles: a checkpoint directory may hold temp
// files from interrupted writes and unrelated files; Seqs must skip
// them.
func TestDirStoreIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	store, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Put(7, []byte{7}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"snap-zzzz.qckp", "snap-0abc.tmp", "README"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	seqs, err := store.Seqs()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seqs, []uint64{7}) {
		t.Fatalf("Seqs() = %v, want [7]", seqs)
	}
}

// TestLatestValidFallback: the newest snapshot is corrupt, so recovery
// must fall back to the newest VALID one and report the skip count.
func TestLatestValidFallback(t *testing.T) {
	store := NewMemStore()
	for seq := uint64(1); seq <= 3; seq++ {
		snap := sampleSnapshot()
		snap.Seq = seq
		data, err := EncodeSnapshot(snap)
		if err != nil {
			t.Fatal(err)
		}
		if seq == 3 {
			data = data[:len(data)/2]
		}
		if err := store.Put(seq, data); err != nil {
			t.Fatal(err)
		}
	}
	snap, seq, skipped, err := LatestValid(store)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 2 || snap.Seq != 2 || skipped != 1 {
		t.Fatalf("got seq=%d snap.Seq=%d skipped=%d, want 2/2/1", seq, snap.Seq, skipped)
	}

	// All corrupt: clean error wrapping ErrNoSnapshot.
	bad := NewMemStore()
	_ = bad.Put(1, []byte("junk"))
	if _, _, _, err := LatestValid(bad); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("got %v, want ErrNoSnapshot", err)
	}
	// Empty store: same contract.
	if _, _, _, err := LatestValid(NewMemStore()); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("empty store: got %v, want ErrNoSnapshot", err)
	}
}
