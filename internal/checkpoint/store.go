package checkpoint

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// ErrNotFound reports a Get for a sequence number the store does not
// hold.
var ErrNotFound = errors.New("checkpoint: snapshot not found")

// ErrNoSnapshot reports that a store holds no decodable snapshot to
// resume from.
var ErrNoSnapshot = errors.New("checkpoint: no usable snapshot in store")

// Store persists sealed snapshots keyed by an ascending sequence
// number. Implementations must make Put atomic: a reader never observes
// a partially written snapshot under the final key (torn writes at the
// byte level are instead caught by the envelope checksum).
type Store interface {
	// Put durably stores data under seq, replacing any previous value.
	Put(seq uint64, data []byte) error
	// Get returns the data stored under seq, or ErrNotFound.
	Get(seq uint64) ([]byte, error)
	// Seqs lists the stored sequence numbers in ascending order.
	Seqs() ([]uint64, error)
}

// MemStore is the in-memory Store: snapshots live in a map. It is safe
// for concurrent use, and is the default store for tests and for
// quantbench runs without -checkpoint-dir.
type MemStore struct {
	mu    sync.Mutex
	snaps map[uint64][]byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{snaps: make(map[uint64][]byte)}
}

// Put implements Store.
func (m *MemStore) Put(seq uint64, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	cp := make([]byte, len(data))
	copy(cp, data)
	m.snaps[seq] = cp
	return nil
}

// Get implements Store.
func (m *MemStore) Get(seq uint64) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.snaps[seq]
	if !ok {
		return nil, fmt.Errorf("%w: seq %d", ErrNotFound, seq)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	return cp, nil
}

// Seqs implements Store.
func (m *MemStore) Seqs() ([]uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	seqs := make([]uint64, 0, len(m.snaps))
	for s := range m.snaps {
		seqs = append(seqs, s)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// snapPrefix/snapSuffix frame DirStore file names: snap-%016x.qckp.
const (
	snapPrefix = "snap-"
	snapSuffix = ".qckp"
)

// DirStore persists snapshots as files in a directory, one per
// sequence number. Put writes to a temp file in the same directory,
// fsyncs it, renames it into place, and fsyncs the directory, so a
// crash mid-write never leaves a partial snapshot under the final name
// (rename is atomic on POSIX filesystems) and a crash right after Put
// returns cannot lose the directory entry itself.
type DirStore struct {
	dir string
}

// NewDirStore creates dir if needed and returns a store over it.
func NewDirStore(dir string) (*DirStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	return &DirStore{dir: dir}, nil
}

// Dir returns the store's directory.
func (d *DirStore) Dir() string { return d.dir }

// Path returns the file path that holds (or would hold) seq.
func (d *DirStore) Path(seq uint64) string {
	return filepath.Join(d.dir, fmt.Sprintf("%s%016x%s", snapPrefix, seq, snapSuffix))
}

// Put implements Store: write-to-temp, fsync, rename, fsync the
// directory. Without the final directory sync the rename itself is not
// durable: a power loss after Put returns could roll the directory back
// to a state where the snapshot never existed, which breaks the
// contract RetryStore and the recovery loop build on.
func (d *DirStore) Put(seq uint64, data []byte) error {
	f, err := os.CreateTemp(d.dir, snapPrefix+"*.tmp")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := os.Rename(tmp, d.Path(seq)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: %w", err)
	}
	return d.syncDir()
}

// syncDir fsyncs the store directory, making completed renames durable.
func (d *DirStore) syncDir() error {
	dir, err := os.Open(d.dir)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	defer dir.Close()
	if err := dir.Sync(); err != nil {
		return fmt.Errorf("checkpoint: sync dir: %w", err)
	}
	return nil
}

// Get implements Store.
func (d *DirStore) Get(seq uint64) ([]byte, error) {
	data, err := os.ReadFile(d.Path(seq))
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: seq %d", ErrNotFound, seq)
	}
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	return data, nil
}

// Seqs implements Store.
func (d *DirStore) Seqs() ([]uint64, error) {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	var seqs []uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, snapSuffix) {
			continue
		}
		hex := strings.TrimSuffix(strings.TrimPrefix(name, snapPrefix), snapSuffix)
		seq, err := strconv.ParseUint(hex, 16, 64)
		if err != nil {
			continue // foreign file; not ours to interpret
		}
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// LatestValid loads the newest snapshot in store that decodes and
// checksum-verifies, skipping corrupt or unreadable ones (newest
// first). It returns the snapshot, its sequence number, and how many
// newer snapshots were skipped as corrupt. When nothing usable remains
// the error wraps ErrNoSnapshot.
func LatestValid(store Store) (*Snapshot, uint64, int, error) {
	seqs, err := store.Seqs()
	if err != nil {
		return nil, 0, 0, err
	}
	skipped := 0
	for i := len(seqs) - 1; i >= 0; i-- {
		data, err := store.Get(seqs[i])
		if err != nil {
			skipped++
			continue
		}
		snap, err := DecodeSnapshot(data)
		if err != nil {
			skipped++
			continue
		}
		return snap, seqs[i], skipped, nil
	}
	return nil, 0, skipped, fmt.Errorf("%w (%d present, all corrupt or unreadable)", ErrNoSnapshot, skipped)
}
