package checkpoint

import (
	"errors"
	"fmt"
	"syscall"
	"time"

	"repro/internal/obs"
)

// IsTransient is the default transient-vs-permanent classifier for
// store errors. Transient failures (EIO on a flaky disk, EINTR,
// EAGAIN, timeouts, anything advertising net.Error-style Temporary or
// Timeout) are worth retrying; structural failures (missing snapshot,
// corrupt envelope) never heal by retry and are returned immediately.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	// Structural store/codec errors are permanent by definition.
	if errors.Is(err, ErrNotFound) || errors.Is(err, ErrNoSnapshot) ||
		errors.Is(err, ErrCorrupt) || errors.Is(err, ErrVersion) {
		return false
	}
	for _, errno := range []syscall.Errno{
		syscall.EIO, syscall.EINTR, syscall.EAGAIN, syscall.ETIMEDOUT,
	} {
		if errors.Is(err, errno) {
			return true
		}
	}
	var temp interface{ Temporary() bool }
	if errors.As(err, &temp) && temp.Temporary() {
		return true
	}
	var to interface{ Timeout() bool }
	if errors.As(err, &to) && to.Timeout() {
		return true
	}
	return false
}

// RetryStore wraps a Store with bounded retries for transient faults,
// using capped decorrelated-jitter backoff (the AWS architecture-blog
// scheme: each delay is uniform in [base, 3·prev], capped). Retrying
// a checkpoint Put only affects when the snapshot lands, never what it
// contains — the engine's windows stay bit-identical — so retries are
// safe to layer under any engine configuration.
//
// The zero-value knobs get production defaults on first use; tests
// override Sleep to run instantly and MaxElapsed to bound the loop.
// The backoff state is unsynchronized: RetryStore expects the engine's
// single snapshotting goroutine, like DirStore.
type RetryStore struct {
	// Inner is the wrapped store. Required.
	Inner Store

	// MaxElapsed bounds the total time spent on one operation,
	// attempts included (default 30s). The deadline is checked before
	// each sleep; the attempt in flight is never interrupted.
	MaxElapsed time.Duration
	// BaseDelay is the minimum backoff (default 5ms).
	BaseDelay time.Duration
	// MaxDelay caps each backoff step (default 500ms).
	MaxDelay time.Duration

	// IsTransient classifies errors; nil means the package-level
	// IsTransient.
	IsTransient func(error) bool
	// Sleep is the delay function; nil means time.Sleep. Tests inject
	// a recorder to run instantly and assert the backoff sequence.
	Sleep func(time.Duration)
	// Now is the clock; nil means time.Now. Tests inject a fake to
	// drive the deadline.
	Now func() time.Time
	// Retries, when non-nil, counts every retried attempt — wired to
	// EngineMetrics.CheckpointRetries by quantbench.
	Retries *obs.Counter

	// rng is the decorrelated-jitter state, seeded lazily from the
	// first operation's inputs so the sequence is reproducible.
	rng uint64
}

// ErrRetriesExhausted wraps the last transient error when the deadline
// expires before an attempt succeeds.
var ErrRetriesExhausted = errors.New("checkpoint: retries exhausted")

func (r *RetryStore) defaults() (maxElapsed, base, maxDelay time.Duration,
	isTransient func(error) bool, sleep func(time.Duration), now func() time.Time) {
	maxElapsed = r.MaxElapsed
	if maxElapsed <= 0 {
		maxElapsed = 30 * time.Second
	}
	base = r.BaseDelay
	if base <= 0 {
		base = 5 * time.Millisecond
	}
	maxDelay = r.MaxDelay
	if maxDelay < base {
		maxDelay = 500 * time.Millisecond
		if maxDelay < base {
			maxDelay = base
		}
	}
	isTransient = r.IsTransient
	if isTransient == nil {
		isTransient = IsTransient
	}
	sleep = r.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	now = r.Now
	if now == nil {
		now = time.Now
	}
	return
}

// jitter advances the inline xorshift state and returns a duration
// uniform in [base, hi] (hi >= base).
func (r *RetryStore) jitter(base, hi time.Duration) time.Duration {
	if r.rng == 0 {
		r.rng = 0x9e3779b97f4a7c15
	}
	x := r.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	r.rng = x
	if hi <= base {
		return base
	}
	return base + time.Duration(x%uint64(hi-base+1))
}

// do runs op with the retry loop; what labels errors.
func (r *RetryStore) do(what string, op func() error) error {
	maxElapsed, base, maxDelay, isTransient, sleep, now := r.defaults()
	deadline := now().Add(maxElapsed)
	prev := base
	for {
		err := op()
		if err == nil || !isTransient(err) {
			return err
		}
		if !now().Before(deadline) {
			return fmt.Errorf("%w: %s: %w", ErrRetriesExhausted, what, err)
		}
		// Decorrelated jitter: uniform in [base, 3·prev], capped.
		hi := 3 * prev
		if hi > maxDelay {
			hi = maxDelay
		}
		d := r.jitter(base, hi)
		prev = d
		r.Retries.Inc()
		sleep(d)
	}
}

// Put implements Store with retries.
func (r *RetryStore) Put(seq uint64, data []byte) error {
	return r.do("put", func() error { return r.Inner.Put(seq, data) })
}

// Get implements Store with retries.
func (r *RetryStore) Get(seq uint64) ([]byte, error) {
	var data []byte
	err := r.do("get", func() (e error) { data, e = r.Inner.Get(seq); return })
	return data, err
}

// Seqs implements Store with retries.
func (r *RetryStore) Seqs() ([]uint64, error) {
	var seqs []uint64
	err := r.do("seqs", func() (e error) { seqs, e = r.Inner.Seqs(); return })
	return seqs, err
}
