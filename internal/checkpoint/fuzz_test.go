package checkpoint

import (
	"bytes"
	"testing"
)

// fuzzSeeds builds the seed corpus shared by both fuzz targets: valid
// envelopes (including a full engine snapshot), systematic truncations,
// and a bit-flipped variant, so the fuzzer starts at the interesting
// boundaries instead of random noise.
func fuzzSeeds(f *testing.F) {
	f.Helper()
	sealed, err := Seal("kll", []byte{1, 2, 3, 4, 5, 6, 7, 8})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(sealed)
	f.Add(sealed[:len(sealed)/2])
	f.Add(sealed[:envelopeOverhead])
	flipped := append([]byte(nil), sealed...)
	flipped[len(flipped)/2] ^= 0x10
	f.Add(flipped)

	snap, err := EncodeSnapshot(sampleSnapshot())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(snap)
	f.Add(snap[:len(snap)-1])
	f.Add([]byte{})
	f.Add([]byte("QCKP"))
}

// FuzzEnvelopeOpen asserts Open never panics and never returns success
// on data whose checksum does not verify end-to-end: whatever Open
// accepts must re-seal to the identical bytes.
func FuzzEnvelopeOpen(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		name, payload, err := Open(data)
		if err != nil {
			return
		}
		resealed, err := Seal(name, payload)
		if err != nil {
			t.Fatalf("accepted envelope does not re-seal: %v", err)
		}
		if !bytes.Equal(resealed, data) {
			t.Fatalf("accepted envelope is not canonical: %x vs %x", data, resealed)
		}
	})
}

// FuzzSnapshotDecode asserts the snapshot decoder never panics and that
// anything it accepts re-encodes to the identical sealed bytes (the
// format has a single canonical encoding).
func FuzzSnapshotDecode(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := DecodeSnapshot(data)
		if err != nil {
			return
		}
		reencoded, err := EncodeSnapshot(snap)
		if err != nil {
			t.Fatalf("accepted snapshot does not re-encode: %v", err)
		}
		if !bytes.Equal(reencoded, data) {
			t.Fatalf("accepted snapshot is not canonical")
		}
	})
}
