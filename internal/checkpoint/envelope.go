// Package checkpoint provides the fault-tolerance substrate of the
// stream engine: a checksummed binary envelope wrapping serialized
// sketch state, an engine snapshot record capturing everything needed
// to resume a run from a window-fire barrier (watermark, per-window ×
// per-partition sketch blobs, stats counters, source offset), and a
// Store interface with in-memory and atomic directory backends.
//
// The paper runs its experiments on Flink precisely because Flink
// pairs event-time windows with fault-tolerant state (Sec 2.6/4.1);
// this package supplies the equivalent for internal/stream. Every blob
// is wrapped in a versioned envelope carrying the sketch's registry
// name and a CRC32-C checksum, so truncation and bit corruption are
// detected before any sketch decoder runs — corruption is contained to
// a clean error, never a panic or silently wrong state.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// EnvelopeVersion is the current envelope wire format version.
const EnvelopeVersion byte = 1

// magic identifies a checkpoint envelope ("QCKP": quantile checkpoint).
var magic = [4]byte{'Q', 'C', 'K', 'P'}

// maxNameLen bounds the envelope's name field (sketch registry names
// are short; a longer name indicates corruption).
const maxNameLen = 255

// envelope header: magic(4) version(1) nameLen(2) name payloadLen(4)
// payload crc(4), crc32-C over every preceding byte.
const envelopeOverhead = 4 + 1 + 2 + 4 + 4

// ErrCorrupt reports an envelope that failed structural or checksum
// validation.
var ErrCorrupt = errors.New("checkpoint: corrupt envelope")

// ErrVersion reports an envelope written by an incompatible format
// version.
var ErrVersion = errors.New("checkpoint: unsupported envelope version")

// castagnoli is the CRC32-C table (the polynomial used by iSCSI, ext4
// and the DataSketches serialization formats; hardware-accelerated on
// amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Seal wraps payload in a checksummed envelope tagged with name (the
// registry name of the sketch that produced it, or a record type like
// "engine-snapshot").
func Seal(name string, payload []byte) ([]byte, error) {
	if len(name) == 0 || len(name) > maxNameLen {
		return nil, fmt.Errorf("checkpoint: envelope name %q must be 1..%d bytes", name, maxNameLen)
	}
	buf := make([]byte, 0, envelopeOverhead+len(name)+len(payload))
	buf = append(buf, magic[:]...)
	buf = append(buf, EnvelopeVersion)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(name)))
	buf = append(buf, name...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))
	return buf, nil
}

// Open validates data as an envelope (magic, version, lengths, CRC32-C)
// and returns its name and payload. The payload aliases data; callers
// that keep it past data's lifetime must copy. Any single-bit flip or
// truncation of a sealed envelope is guaranteed to be rejected.
func Open(data []byte) (name string, payload []byte, err error) {
	name, payload, crcOK, err := parse(data)
	if err != nil {
		return "", nil, err
	}
	if !crcOK {
		return "", nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return name, payload, nil
}

// parse splits data into envelope fields, validating structure but
// reporting (rather than failing on) a checksum mismatch so Inspect can
// describe damaged files.
func parse(data []byte) (name string, payload []byte, crcOK bool, err error) {
	if len(data) < envelopeOverhead {
		return "", nil, false, fmt.Errorf("%w: %d bytes is shorter than an empty envelope", ErrCorrupt, len(data))
	}
	if [4]byte(data[:4]) != magic {
		return "", nil, false, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if v := data[4]; v != EnvelopeVersion {
		return "", nil, false, fmt.Errorf("%w: got version %d, support %d", ErrVersion, v, EnvelopeVersion)
	}
	nameLen := int(binary.LittleEndian.Uint16(data[5:7]))
	if nameLen == 0 || nameLen > maxNameLen || 7+nameLen+8 > len(data) {
		return "", nil, false, fmt.Errorf("%w: bad name length %d", ErrCorrupt, nameLen)
	}
	name = string(data[7 : 7+nameLen])
	off := 7 + nameLen
	payloadLen := int(binary.LittleEndian.Uint32(data[off : off+4]))
	off += 4
	if payloadLen < 0 || off+payloadLen+4 != len(data) {
		return "", nil, false, fmt.Errorf("%w: payload length %d does not match envelope size", ErrCorrupt, payloadLen)
	}
	payload = data[off : off+payloadLen]
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	crcOK = crc32.Checksum(data[:len(data)-4], castagnoli) == want
	return name, payload, crcOK, nil
}

// Info describes an envelope's metadata, including whether its checksum
// verifies — the `sketchtool checkpoint inspect` view.
type Info struct {
	// Name is the envelope's record name (a sketch registry name or
	// "engine-snapshot").
	Name string
	// Version is the envelope format version.
	Version byte
	// PayloadBytes is the wrapped payload's size.
	PayloadBytes int
	// CRC is the stored CRC32-C checksum.
	CRC uint32
	// CRCValid reports whether the stored checksum matches the content.
	CRCValid bool
}

// Inspect parses data's envelope header and checksum without requiring
// the checksum to verify, so damaged files can still be described. It
// errors only when the header itself is unparseable.
func Inspect(data []byte) (Info, error) {
	name, payload, crcOK, err := parse(data)
	if err != nil {
		return Info{}, err
	}
	return Info{
		Name:         name,
		Version:      data[4],
		PayloadBytes: len(payload),
		CRC:          binary.LittleEndian.Uint32(data[len(data)-4:]),
		CRCValid:     crcOK,
	}, nil
}
