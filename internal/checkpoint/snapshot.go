package checkpoint

import (
	"fmt"

	"repro/internal/sketch"
)

// snapshotName is the envelope record name of engine snapshots.
const snapshotName = "engine-snapshot"

// Event mirrors one in-flight stream event (generated but not yet
// arrived when the snapshot was taken). Times are nanoseconds relative
// to the run start.
type Event struct {
	Gen       int64
	Arrival   int64
	Value     float64
	Partition int64
}

// WindowSnap captures one open window: its identity (tumbling Index, or
// the [Start, End) span for the generic engine, which uses Index -1),
// engine-side counters, optionally the collected raw values, and the
// sealed per-partition sketch blobs.
type WindowSnap struct {
	Index    int64
	Start    int64 // ns; generic engine only
	End      int64 // ns; generic engine only
	Accepted int64
	// HasValues distinguishes a nil Values slice (CollectValues off)
	// from an empty one, preserving the engine's emit semantics exactly.
	HasValues bool
	Values    []float64
	// Partials holds one sealed envelope per partition; nil entries are
	// partitions that saw no events.
	Partials [][]byte
}

// PaneSnap captures one sealed pane of a pane-sharing sliding run: the
// pane's engine-side counters, optionally its collected raw values,
// and the sealed merged pane sketch (nil for a pane holding counters
// but no inserts).
type PaneSnap struct {
	Index     int64
	Accepted  int64
	HasValues bool
	Values    []float64
	Sketch    []byte
}

// Snapshot is the engine state at a window-fire barrier: everything
// needed to resume the run and produce bit-identical remaining output.
// The source offset is Drawn — the resumed engine fast-forwards a fresh
// source by that many draws, which reproduces the exact remaining event
// sequence because events are a pure function of the seeds.
type Snapshot struct {
	// Seq is the number of windows fired before the snapshot (the
	// store sequence number).
	Seq uint64
	// SketchName is the builder product's Name(), checked on resume.
	SketchName string
	// Drawn counts source draws (events generated, including grace
	// events) before the snapshot.
	Drawn int64
	// Watermark is the engine watermark in ns (-1: none yet).
	Watermark int64
	// NextFire is the next window index to fire (tumbling engine).
	NextFire int64
	// Generated/Accepted/DroppedLate/RejectedInput mirror stream.Stats.
	Generated     int64
	Accepted      int64
	DroppedLate   int64
	RejectedInput int64
	// LateWindows/LateDrops are the per-window late-drop counts
	// (parallel slices, window index ascending).
	LateWindows []int64
	LateDrops   []int64
	// InFlight is the delay heap's backing slice, verbatim — a valid
	// binary min-heap that can be adopted without re-heapifying.
	InFlight []Event
	// Windows are the open (not yet fired) windows. In pane mode the
	// entries are open panes, with Index holding the pane index.
	Windows []WindowSnap
	// Panes are the sealed, still-referenced panes of a pane-sharing
	// sliding run. The section is encoded only when non-empty, as an
	// optional trailer after Windows, so tumbling snapshots keep their
	// historical byte layout and old blobs still decode.
	Panes []PaneSnap
	// ShedBudget counts events shed by the memory-budget governor's
	// last rung, extending the accounting identity to
	// Generated == Accepted + DroppedLate + RejectedInput + ShedBudget.
	// It rides in an optional extension trailer (marker U32(0), which
	// no pane trailer can start with — pane counts are >= 1) written
	// only when non-zero, so unbudgeted snapshots keep their historical
	// byte layout. Per-window degradation counts are deliberately not
	// persisted: the degraded sketch state itself is exact in the
	// partial blobs, and the counts reset on resume.
	ShedBudget int64
}

// EncodeSnapshot serializes s and seals it in an "engine-snapshot"
// envelope.
func EncodeSnapshot(s *Snapshot) ([]byte, error) {
	w := sketch.NewWriter(256 + 32*len(s.InFlight))
	w.U64(s.Seq)
	w.Blob([]byte(s.SketchName))
	w.I64(s.Drawn)
	w.I64(s.Watermark)
	w.I64(s.NextFire)
	w.I64(s.Generated)
	w.I64(s.Accepted)
	w.I64(s.DroppedLate)
	w.I64(s.RejectedInput)
	w.I64s(s.LateWindows)
	w.I64s(s.LateDrops)
	w.U32(uint32(len(s.InFlight)))
	for _, ev := range s.InFlight {
		w.I64(ev.Gen)
		w.I64(ev.Arrival)
		w.F64(ev.Value)
		w.I64(ev.Partition)
	}
	w.U32(uint32(len(s.Windows)))
	for _, win := range s.Windows {
		w.I64(win.Index)
		w.I64(win.Start)
		w.I64(win.End)
		w.I64(win.Accepted)
		if win.HasValues {
			w.Byte(1)
			w.F64s(win.Values)
		} else {
			w.Byte(0)
		}
		w.U32(uint32(len(win.Partials)))
		for _, blob := range win.Partials {
			if blob == nil {
				w.Byte(0)
				continue
			}
			w.Byte(1)
			w.Blob(blob)
		}
	}
	if len(s.Panes) > 0 {
		w.U32(uint32(len(s.Panes)))
		for _, p := range s.Panes {
			w.I64(p.Index)
			w.I64(p.Accepted)
			if p.HasValues {
				w.Byte(1)
				w.F64s(p.Values)
			} else {
				w.Byte(0)
			}
			if p.Sketch != nil {
				w.Byte(1)
				w.Blob(p.Sketch)
			} else {
				w.Byte(0)
			}
		}
	}
	if s.ShedBudget != 0 {
		w.U32(0) // extension-trailer marker; a pane count is never 0
		w.I64(s.ShedBudget)
	}
	return Seal(snapshotName, w.Bytes())
}

// DecodeSnapshot opens data's envelope (validating the checksum) and
// parses the snapshot record.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	name, payload, err := Open(data)
	if err != nil {
		return nil, err
	}
	if name != snapshotName {
		return nil, fmt.Errorf("%w: envelope holds %q, not an engine snapshot", ErrCorrupt, name)
	}
	r := sketch.NewReader(payload)
	s := &Snapshot{
		Seq:        r.U64(),
		SketchName: string(r.Blob()),
	}
	s.Drawn = r.I64()
	s.Watermark = r.I64()
	s.NextFire = r.I64()
	s.Generated = r.I64()
	s.Accepted = r.I64()
	s.DroppedLate = r.I64()
	s.RejectedInput = r.I64()
	s.LateWindows = r.I64s()
	s.LateDrops = r.I64s()
	if r.Err() != nil || len(s.LateWindows) != len(s.LateDrops) {
		return nil, ErrCorrupt
	}
	nEv := int(r.U32())
	if r.Err() != nil || nEv < 0 || nEv > maxCount(r, 32) {
		return nil, ErrCorrupt
	}
	s.InFlight = make([]Event, nEv)
	for i := range s.InFlight {
		s.InFlight[i] = Event{Gen: r.I64(), Arrival: r.I64(), Value: r.F64(), Partition: r.I64()}
	}
	nWin := int(r.U32())
	if r.Err() != nil || nWin < 0 || nWin > maxCount(r, 37) {
		return nil, ErrCorrupt
	}
	s.Windows = make([]WindowSnap, nWin)
	for i := range s.Windows {
		win := &s.Windows[i]
		win.Index = r.I64()
		win.Start = r.I64()
		win.End = r.I64()
		win.Accepted = r.I64()
		if r.Byte() == 1 {
			win.HasValues = true
			win.Values = r.F64s()
		}
		nPart := int(r.U32())
		if r.Err() != nil || nPart < 0 || nPart > maxCount(r, 1) {
			return nil, ErrCorrupt
		}
		win.Partials = make([][]byte, nPart)
		for p := range win.Partials {
			if r.Byte() == 1 {
				win.Partials[p] = r.Blob()
			}
		}
	}
	if r.Err() != nil {
		return nil, r.Err()
	}
	// Optional pane trailer: present only for pane-sharing sliding
	// snapshots, absent in tumbling (and pre-pane) blobs. A leading
	// U32 of 0 is instead the extension-trailer marker (pane counts
	// are always >= 1).
	if r.Remaining() != 0 {
		nPane := int(r.U32())
		if r.Err() != nil || nPane < 0 || nPane > maxCount(r, 18) {
			return nil, ErrCorrupt
		}
		if nPane > 0 {
			s.Panes = make([]PaneSnap, nPane)
			for i := range s.Panes {
				p := &s.Panes[i]
				p.Index = r.I64()
				p.Accepted = r.I64()
				if r.Byte() == 1 {
					p.HasValues = true
					p.Values = r.F64s()
				}
				if r.Byte() == 1 {
					p.Sketch = r.Blob()
				}
			}
			if r.Err() != nil {
				return nil, r.Err()
			}
			// The pane trailer may itself be followed by the extension
			// trailer; consume its marker if present.
			if r.Remaining() != 0 {
				if r.U32() != 0 || r.Err() != nil {
					return nil, ErrCorrupt
				}
				nPane = 0
			}
		}
		if nPane == 0 {
			// Extension trailer (marker already consumed).
			s.ShedBudget = r.I64()
			if r.Err() != nil || s.ShedBudget < 0 {
				return nil, ErrCorrupt
			}
		}
	}
	if r.Remaining() != 0 {
		return nil, ErrCorrupt
	}
	return s, nil
}

// maxCount bounds a decoded element count by the bytes remaining for
// elements of at least elemSize bytes, rejecting absurd counts before
// any allocation.
func maxCount(r *sketch.Reader, elemSize int) int {
	return r.Remaining()/elemSize + 1
}
