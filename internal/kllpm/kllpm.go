// Package kllpm implements KLL± (Zhao et al., VLDB 2021), the extension
// of the KLL sketch to dynamic data sets with deletions that the study
// cites as KLL's turnstile variant (Sec 3.1, [40]). Two KLL sketches are
// maintained — one over insertions, one over deletions — and queries
// operate on the signed difference of their rank functions:
//
//	Rank±(x) = RankIns(x)·Nins − RankDel(x)·Ndel
//
// A quantile query binary-searches the retained sample values for the
// smallest value whose corrected rank reaches ⌈q·(Nins−Ndel)⌉. The error
// guarantee degrades with the deletion fraction (εn where n counts ALL
// operations), which is why the study evaluates cash-register sketches
// only — this package exists to make that trade-off measurable.
package kllpm

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/kll"
	"repro/internal/sketch"
)

// Sketch is a KLL± dynamic quantile sketch.
type Sketch struct {
	ins *kll.Sketch
	del *kll.Sketch
	k   int
}

// New returns a KLL± sketch with max compactor size k for both halves.
func New(k int) *Sketch { return NewWithSeed(k, 0x4b11aa115eed0001) }

// NewWithSeed returns a seeded KLL± sketch.
func NewWithSeed(k int, seed uint64) *Sketch {
	return &Sketch{
		ins: kll.NewWithSeed(k, seed),
		del: kll.NewWithSeed(k, seed^0xde1e7ede1e7ede1e),
		k:   k,
	}
}

// Name identifies the sketch.
func (s *Sketch) Name() string { return "kllpm" }

// Insert adds one observation.
func (s *Sketch) Insert(x float64) { s.ins.Insert(x) }

// Delete removes one (previously inserted) observation. Deleting values
// that were never inserted leaves the sketch in a formally undefined
// state, as in the original algorithm.
func (s *Sketch) Delete(x float64) { s.del.Insert(x) }

// Count returns the live count: insertions minus deletions.
func (s *Sketch) Count() uint64 {
	ins, del := s.ins.Count(), s.del.Count()
	if del >= ins {
		return 0
	}
	return ins - del
}

// Operations returns the total operation count (insertions plus
// deletions) that the error guarantee εn is relative to.
func (s *Sketch) Operations() uint64 { return s.ins.Count() + s.del.Count() }

// Rank estimates the fraction of live values ≤ x.
func (s *Sketch) Rank(x float64) (float64, error) {
	live := s.Count()
	if live == 0 {
		return 0, sketch.ErrEmpty
	}
	ri, err := s.ins.Rank(x)
	if err != nil {
		return 0, err
	}
	signed := ri * float64(s.ins.Count())
	if s.del.Count() > 0 {
		rd, err := s.del.Rank(x)
		if err != nil {
			return 0, err
		}
		signed -= rd * float64(s.del.Count())
	}
	r := signed / float64(live)
	if r < 0 {
		r = 0
	}
	if r > 1 {
		r = 1
	}
	return r, nil
}

// Quantile estimates the q-quantile of the live multiset.
func (s *Sketch) Quantile(q float64) (float64, error) {
	if err := sketch.CheckQuantile(q); err != nil {
		return 0, err
	}
	live := s.Count()
	if live == 0 {
		return 0, sketch.ErrEmpty
	}
	// Candidate values: every retained sample of either half. The
	// corrected rank function is monotone over them.
	cands := s.candidates()
	if len(cands) == 0 {
		return 0, sketch.ErrEmpty
	}
	target := q
	lo, hi := 0, len(cands)-1
	for lo < hi {
		mid := (lo + hi) / 2
		r, err := s.Rank(cands[mid])
		if err != nil {
			return 0, err
		}
		if r < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return cands[lo], nil
}

// candidates returns the distinct retained values of both halves in
// ascending order.
func (s *Sketch) candidates() []float64 {
	// The underlying KLL exposes retained samples only through queries;
	// reconstruct candidates by probing its serialized form would be
	// heavyweight, so KLL exposes Samples for this purpose.
	vals := append(s.ins.SampleValues(), s.del.SampleValues()...)
	sort.Float64s(vals)
	out := vals[:0]
	prev := math.Inf(-1)
	for _, v := range vals {
		if math.Float64bits(v) != math.Float64bits(prev) {
			out = append(out, v)
			prev = v
		}
	}
	return out
}

// Merge folds other into the receiver.
func (s *Sketch) Merge(other *Sketch) error {
	if other.k != s.k {
		return fmt.Errorf("%w: k mismatch %d vs %d", sketch.ErrIncompatible, s.k, other.k)
	}
	if err := s.ins.Merge(other.ins); err != nil {
		return err
	}
	return s.del.Merge(other.del)
}

// MemoryBytes reports the combined structural footprint.
func (s *Sketch) MemoryBytes() int { return s.ins.MemoryBytes() + s.del.MemoryBytes() }

// Reset restores the empty state.
func (s *Sketch) Reset() {
	s.ins.Reset()
	s.del.Reset()
}
