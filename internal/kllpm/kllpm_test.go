package kllpm

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/sketch"
)

func exactRankOf(sorted []float64, x float64) float64 {
	i := sort.SearchFloat64s(sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(sorted))
}

func TestInsertOnlyMatchesKLLBehaviour(t *testing.T) {
	s := NewWithSeed(200, 1)
	rng := rand.New(rand.NewPCG(1, 2))
	n := 200000
	data := make([]float64, n)
	for i := range data {
		data[i] = rng.Float64() * 1000
		s.Insert(data[i])
	}
	sort.Float64s(data)
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		est, err := s.Quantile(q)
		if err != nil {
			t.Fatal(err)
		}
		if re := math.Abs(q - exactRankOf(data, est)); re > 0.03 {
			t.Errorf("q=%v: rank error %v", q, re)
		}
	}
}

func TestDeletionsShiftQuantiles(t *testing.T) {
	s := NewWithSeed(200, 3)
	// Insert 1..100000, delete the lower half: live data is 50001..100000.
	n := 100000
	for i := 1; i <= n; i++ {
		s.Insert(float64(i))
	}
	for i := 1; i <= n/2; i++ {
		s.Delete(float64(i))
	}
	if got, want := s.Count(), uint64(n/2); got != want {
		t.Fatalf("live count %d, want %d", got, want)
	}
	med, err := s.Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	// True live median is 75000; tolerance εn over ALL ops (150k).
	if math.Abs(med-75000) > 6000 {
		t.Errorf("median after deletions = %v, want ≈ 75000", med)
	}
	lo, err := s.Quantile(0.01)
	if err != nil {
		t.Fatal(err)
	}
	if lo < 45000 {
		t.Errorf("q0.01 = %v should sit near the deleted boundary (≈50500)", lo)
	}
}

func TestInterleavedChurn(t *testing.T) {
	// A sliding multiset: insert i, delete i−window. The live set is
	// always the last `window` integers.
	s := NewWithSeed(350, 5)
	window := 50000
	total := 300000
	for i := 0; i < total; i++ {
		s.Insert(float64(i))
		if i >= window {
			s.Delete(float64(i - window))
		}
	}
	if got, want := s.Count(), uint64(window); got != want {
		t.Fatalf("live count %d, want %d", got, want)
	}
	med, err := s.Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(total - window/2)
	// ε scales with total operations (550k), so allow a few percent.
	if math.Abs(med-want) > 0.06*float64(total) {
		t.Errorf("median = %v, want ≈ %v", med, want)
	}
}

func TestEmptyAndExhausted(t *testing.T) {
	s := New(100)
	if _, err := s.Quantile(0.5); err != sketch.ErrEmpty {
		t.Errorf("empty err = %v", err)
	}
	s.Insert(5)
	s.Delete(5)
	if s.Count() != 0 {
		t.Errorf("count = %d after cancelling ops", s.Count())
	}
	if _, err := s.Quantile(0.5); err != sketch.ErrEmpty {
		t.Errorf("exhausted err = %v", err)
	}
}

func TestMerge(t *testing.T) {
	a, b := NewWithSeed(200, 7), NewWithSeed(200, 8)
	for i := 1; i <= 50000; i++ {
		a.Insert(float64(i))
		b.Insert(float64(i + 50000))
	}
	for i := 1; i <= 25000; i++ {
		b.Delete(float64(i + 50000))
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if got, want := a.Count(), uint64(75000); got != want {
		t.Fatalf("merged live count %d, want %d", got, want)
	}
	c := NewWithSeed(100, 9)
	if err := a.Merge(c); err == nil {
		t.Error("k mismatch should fail")
	}
}

func TestRankMonotone(t *testing.T) {
	s := NewWithSeed(150, 11)
	rng := rand.New(rand.NewPCG(4, 5))
	for i := 0; i < 50000; i++ {
		x := rng.Float64() * 100
		s.Insert(x)
		if rng.Float64() < 0.3 {
			s.Delete(x)
		}
	}
	prev := -1.0
	for x := 0.0; x <= 100; x += 5 {
		r, err := s.Rank(x)
		if err != nil {
			t.Fatal(err)
		}
		if r < prev-1e-9 {
			t.Errorf("rank not monotone at %v: %v < %v", x, r, prev)
		}
		prev = r
	}
}

// Property: with deletions of a random subset, live count is exact.
func TestQuickLiveCount(t *testing.T) {
	f := func(n uint16, delFrac uint8) bool {
		s := NewWithSeed(64, uint64(n)*31+uint64(delFrac))
		dels := 0
		for i := 0; i < int(n); i++ {
			s.Insert(float64(i))
			if i%7 < int(delFrac)%7 {
				s.Delete(float64(i))
				dels++
			}
		}
		return s.Count() == uint64(int(n)-dels) &&
			s.Operations() == uint64(int(n)+dels)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
