package mrl

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/sketch"
)

func exactRankOf(sorted []float64, x float64) float64 {
	i := sort.SearchFloat64s(sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(sorted))
}

func TestSmallStreamExact(t *testing.T) {
	s := New(DefaultBuffers, DefaultK)
	data := []float64{3, 8, 11, 16, 30, 51, 55, 61, 75, 100}
	for _, x := range data {
		s.Insert(x)
	}
	for i, q := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		got, err := s.Quantile(q)
		if err != nil {
			t.Fatal(err)
		}
		want := data[int(math.Ceil(q*10))-1]
		_ = i
		if got != want {
			t.Errorf("q=%v: got %v, want %v", q, got, want)
		}
	}
}

func TestRankErrorUniform(t *testing.T) {
	s := NewWithSeed(DefaultBuffers, DefaultK, 7)
	rng := rand.New(rand.NewPCG(1, 2))
	n := 500000
	data := make([]float64, n)
	for i := range data {
		data[i] = rng.Float64() * 1e6
		s.Insert(data[i])
	}
	sort.Float64s(data)
	for _, q := range []float64{0.05, 0.25, 0.5, 0.75, 0.95, 0.99} {
		est, err := s.Quantile(q)
		if err != nil {
			t.Fatal(err)
		}
		if re := math.Abs(q - exactRankOf(data, est)); re > 0.03 {
			t.Errorf("q=%v: rank error %v", q, re)
		}
	}
}

func TestBufferBudget(t *testing.T) {
	s := NewWithSeed(8, 100, 3)
	for i := 0; i < 1000000; i++ {
		s.Insert(float64(i % 9973))
	}
	if len(s.buffers) > 8 {
		t.Errorf("holds %d buffers, budget 8", len(s.buffers))
	}
	if got := s.Retained(); got > 8*100 {
		t.Errorf("retained %d > b*k", got)
	}
}

func TestEmptyAndInvalid(t *testing.T) {
	s := New(4, 16)
	if _, err := s.Quantile(0.5); err != sketch.ErrEmpty {
		t.Errorf("empty err = %v", err)
	}
	s.Insert(1)
	if _, err := s.Quantile(0); err == nil {
		t.Error("Quantile(0) should fail")
	}
	v, err := s.Quantile(1)
	if err != nil || v != 1 {
		t.Errorf("Quantile(1) = %v, %v", v, err)
	}
}

func TestMerge(t *testing.T) {
	a := NewWithSeed(10, 200, 1)
	b := NewWithSeed(10, 200, 2)
	rng := rand.New(rand.NewPCG(3, 4))
	var all []float64
	for i := 0; i < 100000; i++ {
		x := rng.NormFloat64()*50 + 500
		all = append(all, x)
		if i%2 == 0 {
			a.Insert(x)
		} else {
			b.Insert(x)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != uint64(len(all)) {
		t.Fatalf("count %d, want %d", a.Count(), len(all))
	}
	sort.Float64s(all)
	for _, q := range []float64{0.25, 0.5, 0.75} {
		est, _ := a.Quantile(q)
		if re := math.Abs(q - exactRankOf(all, est)); re > 0.05 {
			t.Errorf("q=%v: rank error %v after merge", q, re)
		}
	}
	c := New(5, 200)
	if err := a.Merge(c); err == nil {
		t.Error("config mismatch should fail")
	}
}

func TestSerde(t *testing.T) {
	s := NewWithSeed(10, 100, 5)
	rng := rand.New(rand.NewPCG(5, 6))
	for i := 0; i < 50000; i++ {
		s.Insert(rng.ExpFloat64())
	}
	blob, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var d Sketch
	if err := d.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if d.Count() != s.Count() || d.Retained() != s.Retained() {
		t.Fatal("state mismatch")
	}
	qa, _ := s.Quantile(0.9)
	qb, _ := d.Quantile(0.9)
	if qa != qb {
		t.Errorf("round trip: %v != %v", qa, qb)
	}
	if err := d.UnmarshalBinary(blob[:13]); err == nil {
		t.Error("truncated blob should fail")
	}
}

// Property: total sample weight stays within one collapse-rounding of
// the true count.
func TestQuickWeightNearCount(t *testing.T) {
	f := func(n uint16, seed uint64) bool {
		s := NewWithSeed(6, 32, seed)
		for i := 0; i < int(n); i++ {
			s.Insert(float64(i % 131))
		}
		if s.Count() == 0 {
			return true
		}
		var totalW uint64
		for _, b := range s.buffers {
			totalW += b.weight * uint64(len(b.items))
		}
		// Collapses with integer weight division can shed up to one
		// output-weight of mass per collapse; allow 15% drift.
		diff := math.Abs(float64(totalW) - float64(s.Count()))
		return diff <= 0.15*float64(s.Count())+float64(s.k)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDeterministic(t *testing.T) {
	run := func() float64 {
		s := NewWithSeed(10, 100, 99)
		rng := rand.New(rand.NewPCG(1, 1))
		for i := 0; i < 100000; i++ {
			s.Insert(rng.Float64())
		}
		v, _ := s.Quantile(0.5)
		return v
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic: %v vs %v", a, b)
	}
}
