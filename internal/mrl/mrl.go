// Package mrl implements the Random algorithm of the study's Sec 5.2.1:
// the randomized multi-buffer quantile summary rooted in Manku,
// Rajagopalan and Lindsay (SIGMOD 1999), in the randomized variant Luo
// et al. found to be among the best performers of its generation and
// which KLL later subsumed ("Random's space and accuracy guarantees were
// further improved in KLL Sketch").
//
// The sketch keeps b buffers of k elements. New items fill weight-1
// buffers; when every buffer is full, the two lowest-weight buffers
// COLLAPSE: their contents are merged sorted and a random every-other
// half survives with doubled weight. Queries treat each element as
// weight copies of itself, exactly like KLL — which makes the lineage
// (and why KLL's geometric capacity schedule improves on it) visible in
// code.
package mrl

import (
	"fmt"
	"math"
	"math/rand/v2"
	"slices"

	"repro/internal/sketch"
)

// DefaultBuffers and DefaultK give ≈1% rank error at 1M-element streams
// with a footprint comparable to the study's KLL configuration.
const (
	DefaultBuffers = 10
	DefaultK       = 500
)

// buffer is one weighted sample buffer.
type buffer struct {
	weight uint64
	items  []float64
	sorted bool
}

// Sketch is a Random/MRL quantile sketch.
type Sketch struct {
	b, k     int
	buffers  []*buffer
	active   *buffer // weight-1 buffer currently being filled
	count    uint64
	min, max float64
	rng      *rand.Rand
	pcg      *rand.PCG // rng's source, kept for exact state serialization
	seed     uint64

	// auxScratch is reused by samples() across queries so repeated
	// quantile evaluation does not reallocate the merged sample walk.
	auxScratch []weighted
}

var _ sketch.Sketch = (*Sketch)(nil)

// New returns a Random sketch with b buffers of k elements each.
func New(b, k int) *Sketch { return NewWithSeed(b, k, 0x3a4d04) }

// NewWithSeed returns a seeded Random sketch. It panics if b < 3 or
// k < 2.
func NewWithSeed(b, k int, seed uint64) *Sketch {
	if b < 3 || k < 2 {
		panic(fmt.Sprintf("mrl: need b >= 3 and k >= 2, got b=%d k=%d", b, k))
	}
	pcg := rand.NewPCG(seed, seed^0x94d049bb133111eb)
	return &Sketch{
		b:    b,
		k:    k,
		min:  math.Inf(1),
		max:  math.Inf(-1),
		rng:  rand.New(pcg),
		pcg:  pcg,
		seed: seed,
	}
}

// Name implements sketch.Sketch.
func (s *Sketch) Name() string { return "mrl" }

// Insert implements sketch.Sketch. NaNs are ignored.
func (s *Sketch) Insert(x float64) {
	if math.IsNaN(x) {
		return
	}
	if s.active == nil || len(s.active.items) >= s.k {
		s.active = s.allocBuffer()
	}
	s.active.items = append(s.active.items, x)
	s.active.sorted = false
	s.count++
	if x < s.min {
		s.min = x
	}
	if x > s.max {
		s.max = x
	}
}

// allocBuffer returns an empty weight-1 buffer, collapsing the two
// lowest-weight full buffers first if the budget is exhausted.
func (s *Sketch) allocBuffer() *buffer {
	if len(s.buffers) >= s.b {
		s.collapse()
	}
	nb := &buffer{weight: 1, items: make([]float64, 0, s.k), sorted: true}
	s.buffers = append(s.buffers, nb)
	return nb
}

// collapse merges the two lowest-weight buffers into one of combined
// weight, retaining a random alternating half of the merged order.
func (s *Sketch) collapse() {
	if len(s.buffers) < 2 {
		return
	}
	// Find the two lowest-weight buffers (stable order for determinism).
	i1, i2 := -1, -1
	for i, b := range s.buffers {
		if i1 == -1 || b.weight < s.buffers[i1].weight {
			i2 = i1
			i1 = i
		} else if i2 == -1 || b.weight < s.buffers[i2].weight {
			i2 = i
		}
	}
	b1, b2 := s.buffers[i1], s.buffers[i2]
	// Weighted merge: duplicate-free weighted merge is approximated by
	// expanding relative weights; with the classic power-of-two weight
	// schedule both inputs share a weight, so a plain alternating pick
	// conserves total weight exactly. For unequal weights the heavier
	// buffer's items are taken proportionally (Luo et al.'s weighted
	// collapse).
	type wItem struct {
		v float64
		w uint64
	}
	merged := make([]wItem, 0, len(b1.items)+len(b2.items))
	b1.sort()
	b2.sort()
	p1, p2 := 0, 0
	for p1 < len(b1.items) || p2 < len(b2.items) {
		switch {
		case p1 >= len(b1.items):
			merged = append(merged, wItem{b2.items[p2], b2.weight})
			p2++
		case p2 >= len(b2.items):
			merged = append(merged, wItem{b1.items[p1], b1.weight})
			p1++
		case b1.items[p1] <= b2.items[p2]:
			merged = append(merged, wItem{b1.items[p1], b1.weight})
			p1++
		default:
			merged = append(merged, wItem{b2.items[p2], b2.weight})
			p2++
		}
	}
	totalW := b1.weight*uint64(len(b1.items)) + b2.weight*uint64(len(b2.items))
	// Survivors: walk the merged sequence accumulating weight; emit an
	// item every newWeight of accumulated mass, starting at a random
	// offset — the randomized selection that gives Random its name.
	outLen := len(merged) / 2
	if outLen < 1 {
		outLen = 1
	}
	newWeight := totalW / uint64(outLen)
	if newWeight < 1 {
		newWeight = 1
	}
	offset := s.rng.Uint64() % newWeight
	out := make([]float64, 0, outLen)
	var cum, next uint64 = 0, offset + 1
	for _, it := range merged {
		cum += it.w
		for cum >= next && len(out) < outLen {
			out = append(out, it.v)
			next += newWeight
		}
	}
	for len(out) < outLen {
		out = append(out, merged[len(merged)-1].v)
	}
	b1.items = out
	b1.weight = newWeight
	b1.sorted = true
	s.buffers = append(s.buffers[:i2], s.buffers[i2+1:]...)
}

func (b *buffer) sort() {
	if !b.sorted {
		slices.Sort(b.items)
		b.sorted = true
	}
}

// Count implements sketch.Sketch.
func (s *Sketch) Count() uint64 { return s.count }

type weighted struct {
	v float64
	w uint64
}

// samples returns every retained element with its buffer weight, sorted
// by value. The returned slice aliases a scratch buffer owned by the
// sketch and is only valid until the next samples call.
func (s *Sketch) samples() []weighted {
	out := s.auxScratch[:0]
	for _, b := range s.buffers {
		for _, v := range b.items {
			out = append(out, weighted{v, b.weight})
		}
	}
	slices.SortFunc(out, func(a, b weighted) int {
		switch {
		case a.v < b.v:
			return -1
		case a.v > b.v:
			return 1
		default:
			return 0
		}
	})
	s.auxScratch = out
	return out
}

// Quantile implements sketch.Sketch.
func (s *Sketch) Quantile(q float64) (float64, error) {
	if err := sketch.CheckQuantile(q); err != nil {
		return 0, err
	}
	if s.count == 0 {
		return 0, sketch.ErrEmpty
	}
	if q == 1 {
		return s.max, nil
	}
	sm := s.samples()
	var totalW uint64
	for _, e := range sm {
		totalW += e.w
	}
	target := uint64(math.Ceil(q * float64(totalW)))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for _, e := range sm {
		cum += e.w
		if cum >= target {
			v := e.v
			if v < s.min {
				v = s.min
			}
			if v > s.max {
				v = s.max
			}
			return v, nil
		}
	}
	return s.max, nil
}

// Rank implements sketch.Sketch.
func (s *Sketch) Rank(x float64) (float64, error) {
	if s.count == 0 {
		return 0, sketch.ErrEmpty
	}
	var le, totalW uint64
	for _, b := range s.buffers {
		for _, v := range b.items {
			totalW += b.weight
			if v <= x {
				le += b.weight
			}
		}
	}
	return float64(le) / float64(totalW), nil
}

// Merge implements sketch.Sketch: adopt the other sketch's buffers and
// collapse down to the budget.
func (s *Sketch) Merge(other sketch.Sketch) error {
	o, ok := other.(*Sketch)
	if !ok {
		return fmt.Errorf("%w: cannot merge %s into mrl", sketch.ErrIncompatible, other.Name())
	}
	if o.b != s.b || o.k != s.k {
		return fmt.Errorf("%w: config mismatch", sketch.ErrIncompatible)
	}
	for _, b := range o.buffers {
		cp := &buffer{weight: b.weight, items: append([]float64(nil), b.items...), sorted: b.sorted}
		s.buffers = append(s.buffers, cp)
	}
	s.count += o.count
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	s.active = nil
	for len(s.buffers) > s.b {
		s.collapse()
	}
	return nil
}

// Retained reports the held sample count.
func (s *Sketch) Retained() int {
	n := 0
	for _, b := range s.buffers {
		n += len(b.items)
	}
	return n
}

// MemoryBytes implements sketch.Sketch: full buffer capacities at 8
// bytes (the classic implementation preallocates).
func (s *Sketch) MemoryBytes() int {
	return 8 * (s.b*s.k + 2*len(s.buffers) + 6)
}

// Reset implements sketch.Sketch.
func (s *Sketch) Reset() {
	*s = *NewWithSeed(s.b, s.k, s.seed)
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (s *Sketch) MarshalBinary() ([]byte, error) {
	w := sketch.NewWriter(96 + 8*s.Retained())
	w.Byte(0x09) // private tag: mrl is a related baseline
	w.Byte(sketch.SerdeVersion)
	w.U32(uint32(s.b))
	w.U32(uint32(s.k))
	w.U64(s.seed)
	rngState, err := s.pcg.MarshalBinary()
	if err != nil {
		return nil, err
	}
	w.Blob(rngState)
	w.U64(s.count)
	w.F64(s.min)
	w.F64(s.max)
	// The active buffer (the weight-1 buffer inserts currently land in)
	// is one of s.buffers; record its index so a decoded sketch keeps
	// filling the same buffer instead of allocating a fresh one.
	active := int32(-1)
	for i, b := range s.buffers {
		if b == s.active {
			active = int32(i)
			break
		}
	}
	w.U32(uint32(active))
	w.U32(uint32(len(s.buffers)))
	for _, b := range s.buffers {
		w.U64(b.weight)
		if b.sorted {
			w.Byte(1)
		} else {
			w.Byte(0)
		}
		w.F64s(b.items)
	}
	return w.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (s *Sketch) UnmarshalBinary(data []byte) error {
	r := sketch.NewReader(data)
	if r.Byte() != 0x09 || r.Byte() != sketch.SerdeVersion {
		return sketch.ErrCorrupt
	}
	b := int(r.U32())
	k := int(r.U32())
	seed := r.U64()
	rngState := r.Blob()
	count := r.U64()
	minV := r.F64()
	maxV := r.F64()
	active := int32(r.U32())
	nb := int(r.U32())
	if r.Err() != nil {
		return r.Err()
	}
	if b < 3 || b > 1<<16 || k < 2 || k > 1<<24 || nb < 0 || nb > b+1 {
		return sketch.ErrCorrupt
	}
	if active < -1 || int(active) >= nb {
		return sketch.ErrCorrupt
	}
	ns := NewWithSeed(b, k, seed)
	if err := ns.pcg.UnmarshalBinary(rngState); err != nil {
		return sketch.ErrCorrupt
	}
	ns.count = count
	ns.min = minV
	ns.max = maxV
	for i := 0; i < nb; i++ {
		weight := r.U64()
		sorted := r.Byte() == 1
		items := r.F64s()
		if r.Err() != nil {
			return r.Err()
		}
		if weight < 1 || len(items) > k {
			return sketch.ErrCorrupt
		}
		ns.buffers = append(ns.buffers, &buffer{weight: weight, items: items, sorted: sorted})
	}
	if r.Remaining() != 0 {
		return sketch.ErrCorrupt
	}
	if active >= 0 {
		if bf := ns.buffers[active]; bf.weight != 1 {
			return sketch.ErrCorrupt
		}
		ns.active = ns.buffers[active]
	}
	*s = *ns
	return nil
}
