package kll

import (
	"math"

	"repro/internal/sketch"
)

var _ sketch.CountScaler = (*Sketch)(nil)

// ScaleCount implements sketch.CountScaler by binary re-decomposition of
// the retained samples: a sample at level h carries weight 2^h, so after
// scaling it should carry W = round(g·2^h), and it is re-placed at every
// set bit of W (all bits are ≤ h, so the sketch never grows in height).
// Weight conservation (Σ_h |levels[h]|·2^h == count) holds exactly for
// the new count Σ_h |levels[h]|·W_h, and the result is a pure function
// of the prior state and g: levels are visited in ascending order,
// samples in retained order, with no randomness until the final
// capacity-restoring compress (whose coin flips come from the sketch's
// own deterministic PCG stream). Levels whose scaled weight rounds to 0
// drop their samples; if everything rounds away the sketch resets.
// min/max are kept: surviving samples are a subset of the old ones, so
// the bounds stay ordered (they become conservative, not exact).
func (s *Sketch) ScaleCount(g float64) {
	if math.IsNaN(g) || g >= 1 {
		return
	}
	if g <= 0 {
		s.Reset()
		return
	}
	newLevels := make([][]float32, len(s.levels))
	var count uint64
	for h, lv := range s.levels {
		if len(lv) == 0 {
			continue
		}
		w := uint64(math.Round(g * float64(uint64(1)<<uint(h))))
		if w == 0 {
			continue
		}
		count += w * uint64(len(lv))
		for b := uint(0); w>>b != 0; b++ {
			if w&(1<<b) != 0 {
				newLevels[b] = append(newLevels[b], lv...)
			}
		}
	}
	if count == 0 {
		s.Reset()
		return
	}
	for h := range s.levels {
		s.levels[h] = append(s.levels[h][:0], newLevels[h]...)
	}
	s.count = count
	s.auxValid = false
	s.compress()
}
