// Package kll implements the KLL sketch (Karnin, Lang, Liberty; FOCS
// 2016) with the practical refinements of Ivkin et al. used by Apache
// DataSketches: a hierarchy of compactors whose capacities decay
// geometrically (factor 2/3) from the top level's k, lazy compaction, and
// exact min/max tracking. An item retained at level h represents 2^h
// stream items.
//
// Mirroring the DataSketches implementation the study evaluates (a
// *float* sketch), samples are stored as float32; this is what produces
// the paper's Table 3 footprint of ≈4.24 KB for k = 350 (≈1048 retained
// samples at 4 bytes each).
//
// KLL answers rank queries with additive error εn with high probability;
// returned quantile estimates are actual stream values (modulo float32
// rounding), so on data with heavy value repetition it is frequently
// exact (paper Sec 4.5.3).
package kll

import (
	"fmt"
	"math"
	"math/rand/v2"
	"slices"
	"sort"

	"repro/internal/sketch"
)

// DefaultK is the study's configuration: max_compactor_size = 350, giving
// an expected rank error of ≈0.97% (Sec 4.2).
const DefaultK = 350

// minCompactorSize is the smallest capacity any level may have.
const minCompactorSize = 2

// capacityDecay is the geometric decay of compactor capacities below the
// top level.
const capacityDecay = 2.0 / 3.0

// Sketch is a KLL quantile sketch.
type Sketch struct {
	k      int
	levels [][]float32 // levels[h] holds items of weight 2^h
	count  uint64
	min    float64
	max    float64
	rng    *rand.Rand
	pcg    *rand.PCG // rng's source, kept for exact state serialization
	seed   uint64
	caps   []int // cached per-level capacities for the current height

	// Sorted-view cache (values ascending with cumulative weights), built
	// lazily at query time and invalidated by mutation — the same
	// auxiliary structure DataSketches builds, and the reason KLL query
	// times are fast and size-stable (Sec 4.4.2). The slices (and the
	// weighted scratch the build sorts in) keep their capacity across
	// rebuilds, so steady-state queries allocate nothing.
	auxValid   bool
	auxVals    []float32
	auxCum     []uint64
	auxScratch []weighted
}

var _ sketch.Sketch = (*Sketch)(nil)

// New returns a KLL sketch with max compactor size k and a fixed default
// seed (deterministic across runs). Use NewWithSeed to vary the
// randomization.
func New(k int) *Sketch { return NewWithSeed(k, 0x5eed5eed5eed5eed) }

// NewWithSeed returns a KLL sketch whose compaction coin flips derive
// from seed. It panics if k < 2.
func NewWithSeed(k int, seed uint64) *Sketch {
	if k < minCompactorSize {
		panic(fmt.Sprintf("kll: k must be >= %d, got %d", minCompactorSize, k))
	}
	pcg := rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)
	return &Sketch{
		k:      k,
		levels: [][]float32{make([]float32, 0, 8)},
		min:    math.Inf(1),
		max:    math.Inf(-1),
		rng:    rand.New(pcg),
		pcg:    pcg,
		seed:   seed,
	}
}

// Name implements sketch.Sketch.
func (s *Sketch) Name() string { return "kll" }

// K returns the configured max compactor size.
func (s *Sketch) K() int { return s.k }

// capacity returns the target capacity of level h given the current
// number of levels: ⌈k·(2/3)^(H−1−h)⌉ bounded below by 2, so the top
// level holds k items and lower levels shrink geometrically. Capacities
// are cached per sketch height since they are consulted on every insert.
func (s *Sketch) capacity(h int) int {
	if len(s.caps) != len(s.levels) {
		s.caps = make([]int, len(s.levels))
		for lvl := range s.caps {
			depth := len(s.levels) - 1 - lvl
			c := int(math.Ceil(float64(s.k) * math.Pow(capacityDecay, float64(depth))))
			if c < minCompactorSize {
				c = minCompactorSize
			}
			s.caps[lvl] = c
		}
	}
	return s.caps[h]
}

// Insert implements sketch.Sketch. NaNs are ignored.
func (s *Sketch) Insert(x float64) {
	if math.IsNaN(x) {
		return
	}
	if metrics != nil {
		metrics.Inserts.Inc()
	}
	s.levels[0] = append(s.levels[0], float32(x))
	s.count++
	s.auxValid = false
	if x < s.min {
		s.min = x
	}
	if x > s.max {
		s.max = x
	}
	if len(s.levels[0]) >= s.capacity(0) {
		s.compress()
	}
}

// compress cascades compactions from the lowest over-full level upward
// until every level fits its capacity.
func (s *Sketch) compress() {
	for h := 0; h < len(s.levels); h++ {
		if len(s.levels[h]) >= s.capacity(h) {
			s.compactLevel(h)
			if metrics != nil {
				metrics.Compactions.Inc()
			}
		}
	}
	if metrics != nil {
		metrics.PeakBytes.Max(int64(s.MemoryBytes()))
	}
	s.assertInvariants("compress")
}

// compactLevel sorts level h, promotes a uniformly chosen half (odd- or
// even-indexed items) to level h+1 and discards the rest. When the level
// holds an odd number of items one item stays behind so total weight is
// conserved exactly.
func (s *Sketch) compactLevel(h int) {
	buf := s.levels[h]
	if len(buf) < minCompactorSize {
		return
	}
	if h+1 >= len(s.levels) {
		s.levels = append(s.levels, make([]float32, 0, s.capacity(h)+1))
	}
	sortFloat32(buf)
	// Keep one leftover on odd sizes: compact items buf[start:start+2m].
	m := len(buf) / 2
	start := len(buf) - 2*m // 0 or 1; the smallest item stays on odd sizes
	offset := 0
	if s.rng.Uint64()&1 == 1 {
		offset = 1
	}
	for i := 0; i < m; i++ {
		s.levels[h+1] = append(s.levels[h+1], buf[start+2*i+offset])
	}
	if start == 1 {
		s.levels[h] = append(s.levels[h][:0], buf[0])
	} else {
		s.levels[h] = s.levels[h][:0]
	}
}

func sortFloat32(b []float32) { slices.Sort(b) }

// Count implements sketch.Sketch.
func (s *Sketch) Count() uint64 { return s.count }

// weighted is one retained sample with its level weight.
type weighted struct {
	v float32
	w uint64
}

// samples returns all retained items with weights, sorted by value. The
// returned slice aliases the sketch's reusable scratch buffer. Equal
// values may land in any order (the sort is unstable), which cannot be
// observed: Quantile and Rank only consult cumulative weight at value
// boundaries.
func (s *Sketch) samples() []weighted {
	out := s.auxScratch[:0]
	for h, lv := range s.levels {
		w := uint64(1) << uint(h)
		for _, v := range lv {
			out = append(out, weighted{v, w})
		}
	}
	slices.SortFunc(out, func(a, b weighted) int {
		switch {
		case a.v < b.v:
			return -1
		case a.v > b.v:
			return 1
		default:
			return 0
		}
	})
	s.auxScratch = out
	return out
}

// buildAux materializes the sorted view once per mutation epoch, reusing
// the capacity of the previous epoch's arrays.
func (s *Sketch) buildAux() {
	if s.auxValid {
		return
	}
	sm := s.samples()
	vals := s.auxVals[:0]
	cums := s.auxCum[:0]
	var cum uint64
	for _, e := range sm {
		cum += e.w
		vals = append(vals, e.v)
		cums = append(cums, cum)
	}
	s.auxVals, s.auxCum = vals, cums
	s.auxValid = true
}

// Quantile implements sketch.Sketch: the retained sample whose cumulative
// weight first reaches ⌈qN⌉. Estimates are actual inserted values
// (float32-rounded); q = 1 returns the exact maximum.
func (s *Sketch) Quantile(q float64) (float64, error) {
	if err := sketch.CheckQuantile(q); err != nil {
		return 0, err
	}
	if s.count == 0 {
		return 0, sketch.ErrEmpty
	}
	if q == 1 {
		return s.max, nil
	}
	s.buildAux()
	return s.quantileFromAux(q), nil
}

// quantileFromAux answers one valid q against the built sorted view.
func (s *Sketch) quantileFromAux(q float64) float64 {
	if q == 1 {
		return s.max
	}
	target := uint64(math.Ceil(q * float64(s.count)))
	if target < 1 {
		target = 1
	}
	// First position whose cumulative weight reaches the target rank.
	i := sort.Search(len(s.auxCum), func(i int) bool { return s.auxCum[i] >= target })
	if i >= len(s.auxVals) {
		return s.max
	}
	return clampF(float64(s.auxVals[i]), s.min, s.max)
}

// QuantileAll implements sketch.MultiQuantiler: the cumulative CDF
// snapshot is built once and every target rank binary-searches it.
func (s *Sketch) QuantileAll(qs []float64) ([]float64, error) {
	if err := sketch.ValidateQuantiles(qs, s.count == 0); err != nil {
		return nil, err
	}
	s.buildAux()
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = s.quantileFromAux(q)
	}
	return out, nil
}

// Rank implements sketch.Sketch.
func (s *Sketch) Rank(x float64) (float64, error) {
	if s.count == 0 {
		return 0, sketch.ErrEmpty
	}
	s.buildAux()
	xf := float32(x)
	// Last position with value ≤ x.
	i := sort.Search(len(s.auxVals), func(i int) bool { return s.auxVals[i] > xf })
	if i == 0 {
		return 0, nil
	}
	return float64(s.auxCum[i-1]) / float64(s.count), nil
}

// Merge implements sketch.Sketch: compactors at the same height are
// concatenated and any level exceeding the merged sketch's capacity
// schedule is compacted (Sec 3.1).
//
// Sketches with different k merge under the DataSketches min-k rule:
// the receiver adopts the smaller of the two k values before
// concatenating, so its capacity schedule (and error bound) degrades to
// the coarser sketch's. This is what keeps budget-degraded partials
// (Degrade) mergeable with fresh full-k partials at window boundaries.
func (s *Sketch) Merge(other sketch.Sketch) error {
	o, ok := other.(*Sketch)
	if !ok {
		return fmt.Errorf("%w: cannot merge %s into kll", sketch.ErrIncompatible, other.Name())
	}
	if o.k < s.k {
		s.k = o.k
		s.caps = nil
	}
	mergedCount := s.count + o.count
	for len(s.levels) < len(o.levels) {
		s.levels = append(s.levels, nil)
	}
	for h, lv := range o.levels {
		s.levels[h] = append(s.levels[h], lv...)
	}
	s.count += o.count
	s.auxValid = false
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	s.compress()
	s.assertCount("merge", mergedCount)
	return nil
}

// SampleValues returns the values of every retained sample (unsorted,
// duplicates preserved) as float64s. KLL± uses them as quantile-search
// candidates.
func (s *Sketch) SampleValues() []float64 {
	out := make([]float64, 0, s.Retained())
	for _, lv := range s.levels {
		for _, v := range lv {
			out = append(out, float64(v))
		}
	}
	return out
}

// Retained reports the total number of samples currently held.
func (s *Sketch) Retained() int {
	n := 0
	for _, lv := range s.levels {
		n += len(lv)
	}
	return n
}

// NumLevels reports the current compactor count.
func (s *Sketch) NumLevels() int { return len(s.levels) }

// MemoryBytes implements sketch.Sketch: 4 bytes per allocated float32
// slot. Like the DataSketches implementation the study measured, the
// accounting covers the full compactor capacities (the paper's "total
// sample size of 1048" for k = 350 is the capacity sum k·Σ(2/3)^i ≈ 3k),
// not just their current occupancy, plus fixed bookkeeping.
func (s *Sketch) MemoryBytes() int {
	slots := 0
	for h := range s.levels {
		c := s.capacity(h)
		if n := len(s.levels[h]); n > c {
			c = n
		}
		slots += c
	}
	return 4*slots + 8*8
}

// Footprint implements sketch.Footprinter: the live bytes actually
// held — allocated sample-slot capacity (not the schedule's target
// capacities) plus the sorted-view caches and fixed bookkeeping.
func (s *Sketch) Footprint() int {
	slots := 0
	for _, lv := range s.levels {
		slots += cap(lv)
	}
	return 4*slots + 4*cap(s.auxVals) + 8*cap(s.auxCum) + 16*cap(s.auxScratch) + 8*8
}

// minDegradeK is the floor Degrade will not shrink k below: at k = 8
// the sketch is already a near-constant-size summary and further
// halving frees almost nothing.
const minDegradeK = 8

// Degrade implements sketch.Degrader: force-compact to half the
// current k. The capacity schedule shrinks geometrically with k, so
// every over-full level compacts, the sample arrays are clipped to
// their new occupancy and the query caches are dropped. The degraded
// sketch stays mergeable with full-k sketches through the min-k Merge
// rule, at the min-k error bound (AccuracyBound grows accordingly).
func (s *Sketch) Degrade() (int, error) {
	if s.k <= minDegradeK {
		return 0, sketch.ErrNotDegradable
	}
	before := s.Footprint()
	nk := s.k / 2
	if nk < minDegradeK {
		nk = minDegradeK
	}
	s.k = nk
	s.caps = nil
	s.auxValid = false
	s.compress()
	for h := range s.levels {
		s.levels[h] = slices.Clip(s.levels[h])
	}
	s.auxVals, s.auxCum, s.auxScratch = nil, nil, nil
	freed := before - s.Footprint()
	if freed < 0 {
		freed = 0
	}
	return freed, nil
}

// AccuracyBound implements sketch.AccuracyBounder with the DataSketches
// empirical fit for KLL's normalized rank error, ε(k) ≈ 2.296/k^0.9433
// (≈0.97% at the study's k = 350). It is a comparable error scale — it
// doubles-ish every Degrade — rather than a formal tail bound.
func (s *Sketch) AccuracyBound() float64 {
	return 2.296 / math.Pow(float64(s.k), 0.9433)
}

// Reset implements sketch.Sketch.
func (s *Sketch) Reset() {
	*s = *NewWithSeed(s.k, s.seed)
}

// Clone returns a deep copy that continues (inserts, compaction coin
// flips, serialization) bit-identically to the receiver while sharing
// no mutable state with it. The sorted-view caches are not copied —
// they are query-time scratch the copy rebuilds on demand. Clone only
// reads the receiver, so any number of goroutines may Clone the same
// immutable sketch concurrently; the concurrent layer's CAS handoff and
// snapshot reads are built on exactly that property. It panics if the
// compaction RNG state fails to round-trip, which cannot happen for a
// state the RNG itself produced.
func (s *Sketch) Clone() *Sketch {
	c := &Sketch{
		k:     s.k,
		count: s.count,
		min:   s.min,
		max:   s.max,
		seed:  s.seed,
		caps:  slices.Clone(s.caps),
	}
	c.levels = make([][]float32, len(s.levels))
	for h, lv := range s.levels {
		c.levels[h] = slices.Clone(lv)
	}
	state, err := s.pcg.MarshalBinary()
	if err != nil {
		panic(fmt.Sprintf("kll: clone: marshal rng state: %v", err))
	}
	pcg := rand.NewPCG(s.seed, s.seed^0x9e3779b97f4a7c15)
	if err := pcg.UnmarshalBinary(state); err != nil {
		panic(fmt.Sprintf("kll: clone: restore rng state: %v", err))
	}
	c.pcg = pcg
	c.rng = rand.New(pcg)
	return c
}

func clampF(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (s *Sketch) MarshalBinary() ([]byte, error) {
	w := sketch.NewWriter(96 + 4*s.Retained())
	w.Header(sketch.TagKLL)
	w.U32(uint32(s.k))
	w.U64(s.seed)
	rngState, err := s.pcg.MarshalBinary()
	if err != nil {
		return nil, err
	}
	w.Blob(rngState)
	w.U64(s.count)
	w.F64(s.min)
	w.F64(s.max)
	w.U32(uint32(len(s.levels)))
	for _, lv := range s.levels {
		w.U32(uint32(len(lv)))
		for _, v := range lv {
			w.U32(math.Float32bits(v))
		}
	}
	return w.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler. The decoded
// sketch restores the exact PCG state of the compaction RNG, so it
// continues (inserts, compaction coin flips, future serializations)
// bit-identically to the original — the contract stream checkpoint
// recovery relies on.
func (s *Sketch) UnmarshalBinary(data []byte) error {
	r := sketch.NewReader(data)
	if err := r.Header(sketch.TagKLL); err != nil {
		return err
	}
	k := int(r.U32())
	seed := r.U64()
	rngState := r.Blob()
	count := r.U64()
	minV := r.F64()
	maxV := r.F64()
	numLevels := int(r.U32())
	if r.Err() != nil {
		return r.Err()
	}
	if k < minCompactorSize || k > 1<<24 || numLevels < 1 || numLevels > 64 {
		return sketch.ErrCorrupt
	}
	ns := NewWithSeed(k, seed)
	if err := ns.pcg.UnmarshalBinary(rngState); err != nil {
		return sketch.ErrCorrupt
	}
	ns.count = count
	ns.min = minV
	ns.max = maxV
	ns.levels = make([][]float32, numLevels)
	for h := range ns.levels {
		n := int(r.U32())
		if r.Err() != nil || n < 0 || n > (r.Remaining())/4 {
			return sketch.ErrCorrupt
		}
		lv := make([]float32, n)
		for i := range lv {
			lv[i] = math.Float32frombits(r.U32())
		}
		ns.levels[h] = lv
	}
	if r.Err() != nil {
		return r.Err()
	}
	if r.Remaining() != 0 {
		return sketch.ErrCorrupt
	}
	// Structural validation: a blob that decodes but breaks the sketch's
	// invariants (weight conservation, ordered bounds, NaN samples) is
	// corrupt, even if every field parsed.
	var weight uint64
	for h, lv := range ns.levels {
		weight += uint64(len(lv)) << uint(h)
		for _, v := range lv {
			if math.IsNaN(float64(v)) {
				return sketch.ErrCorrupt
			}
		}
	}
	if weight != ns.count {
		return sketch.ErrCorrupt
	}
	if ns.count > 0 && !(ns.min <= ns.max) {
		return sketch.ErrCorrupt
	}
	ns.assertInvariants("unmarshal")
	*s = *ns
	return nil
}
