package kll

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/sketch"
)

// TestDegrade pins the sketch.Degrader contract for KLL: each step
// halves k (flooring at 8), conserves the count exactly, keeps queries
// sane, grows the reported accuracy bound, and eventually refuses with
// ErrNotDegradable.
func TestDegrade(t *testing.T) {
	s := NewWithSeed(256, 42)
	rng := rand.New(rand.NewPCG(1, 2))
	const n = 100000
	for i := 0; i < n; i++ {
		s.Insert(rng.Float64() * 1000)
	}
	prevBound := s.AccuracyBound()
	steps := 0
	for {
		before := s.Footprint()
		freed, err := s.Degrade()
		if errors.Is(err, sketch.ErrNotDegradable) {
			break
		}
		if err != nil {
			t.Fatalf("degrade step %d: %v", steps, err)
		}
		steps++
		if s.Count() != n {
			t.Fatalf("step %d: count %d, want %d", steps, s.Count(), n)
		}
		if foot := s.Footprint(); before-foot != freed {
			t.Errorf("step %d: freed %d but footprint went %d -> %d", steps, freed, before, foot)
		}
		if b := s.AccuracyBound(); b <= prevBound {
			t.Errorf("step %d: bound %v did not grow past %v", steps, b, prevBound)
		} else {
			prevBound = b
		}
		if est, err := s.Quantile(0.5); err != nil || est < 0 || est > 1000 {
			t.Fatalf("step %d: median %v err %v", steps, est, err)
		}
	}
	if s.K() != minDegradeK {
		t.Errorf("final k = %d, want floor %d", s.K(), minDegradeK)
	}
	if steps != 5 { // 256 -> 128 -> 64 -> 32 -> 16 -> 8
		t.Errorf("took %d steps, want 5", steps)
	}
	// Degraded accuracy: the median of Uniform(0,1000) should still be
	// recognizable even at k = 8 over 100k items.
	est, _ := s.Quantile(0.5)
	if math.Abs(est-500) > 250 {
		t.Errorf("median after full degradation: %v", est)
	}
}

// TestDegradeMergesWithFresh pins the property the budget governor
// relies on: a degraded partial still merges with a fresh full-k
// partial (both directions), landing at the min k.
func TestDegradeMergesWithFresh(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	degraded := NewWithSeed(128, 7)
	fresh := NewWithSeed(128, 8)
	for i := 0; i < 20000; i++ {
		degraded.Insert(rng.Float64())
		fresh.Insert(rng.Float64())
	}
	if _, err := degraded.Degrade(); err != nil {
		t.Fatal(err)
	}
	want := degraded.Count() + fresh.Count()

	into := fresh
	if err := into.Merge(degraded); err != nil {
		t.Fatalf("fresh.Merge(degraded): %v", err)
	}
	if into.Count() != want || into.K() != 64 {
		t.Errorf("merged count=%d k=%d, want count=%d k=64", into.Count(), into.K(), want)
	}
	if _, err := into.Quantile(0.9); err != nil {
		t.Fatal(err)
	}
}
