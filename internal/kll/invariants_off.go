//go:build !invariants

package kll

// assertInvariants compiles to an empty inlined call without the
// invariants build tag; see invariants.go for the checked contracts.
func (s *Sketch) assertInvariants(string) {}

// assertCount compiles to an empty inlined call without the invariants
// build tag; see invariants.go for the checked contracts.
func (s *Sketch) assertCount(string, uint64) {}
