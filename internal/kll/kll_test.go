package kll

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/sketch"
)

func exactRankOf(sorted []float64, x float64) float64 {
	i := sort.SearchFloat64s(sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(sorted))
}

func TestSmallStreamIsExact(t *testing.T) {
	// Below the first compaction every value is retained: estimates are
	// exact (modulo float32 rounding of the inserted values).
	s := New(DefaultK)
	data := []float64{3, 8, 11, 16, 30, 51, 55, 61, 75, 100} // Table 1
	for _, x := range data {
		s.Insert(x)
	}
	for i, q := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1} {
		got, err := s.Quantile(q)
		if err != nil {
			t.Fatal(err)
		}
		if got != data[i] {
			t.Errorf("q=%v: got %v, want %v", q, got, data[i])
		}
	}
}

// Reproduces Table 2: after one compaction of the Table 1 data with a
// 10-slot level-0 compactor, level 1 holds 5 elements of weight 2, every
// other element of the sorted input.
func TestTable2Example(t *testing.T) {
	s := NewWithSeed(10, 7) // k = 10: level 0 compacts on the 10th insert
	data := []float64{3, 8, 11, 16, 30, 51, 55, 61, 75, 100}
	for _, x := range data {
		s.Insert(x)
	}
	if s.NumLevels() < 2 {
		t.Fatal("expected a compaction to have occurred")
	}
	if got := s.Retained(); got != 5 {
		t.Fatalf("retained %d samples, want 5 after discarding half", got)
	}
	// The retained samples are either the odd- or even-indexed elements.
	var kept []float64
	for _, sm := range s.samples() {
		kept = append(kept, float64(sm.v))
		if sm.w != 2 {
			t.Errorf("sample %v has weight %d, want 2", sm.v, sm.w)
		}
	}
	even := []float64{3, 11, 30, 55, 75}
	odd := []float64{8, 16, 51, 61, 100}
	match := func(a, b []float64) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if !match(kept, even) && !match(kept, odd) {
		t.Errorf("kept %v, want every-other elements %v or %v", kept, even, odd)
	}
	// Total weight is preserved exactly.
	if s.Count() != 10 {
		t.Errorf("count %d, want 10", s.Count())
	}
}

// The headline property: rank error stays within a few epsilon with the
// study's k = 350 (expected rank error 0.97%).
func TestRankErrorBound(t *testing.T) {
	s := NewWithSeed(DefaultK, 99)
	rng := rand.New(rand.NewPCG(42, 43))
	n := 500000
	data := make([]float64, n)
	for i := range data {
		data[i] = rng.Float64() * 1e6
		s.Insert(data[i])
	}
	sort.Float64s(data)
	for _, q := range []float64{0.05, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99} {
		est, err := s.Quantile(q)
		if err != nil {
			t.Fatal(err)
		}
		rankErr := math.Abs(q - exactRankOf(data, est))
		// 3x the expected 0.97% leaves headroom for randomization.
		if rankErr > 0.03 {
			t.Errorf("q=%v: rank error %v > 0.03", q, rankErr)
		}
	}
}

func TestRetainedBounded(t *testing.T) {
	s := New(DefaultK)
	rng := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 1000000; i++ {
		s.Insert(rng.Float64())
	}
	// Steady-state retention ≈ k/(1−2/3) = 3k ≈ 1050 (paper: 1048).
	if got := s.Retained(); got < 500 || got > 2000 {
		t.Errorf("retained %d samples at 1M inserts, expected ≈ 1050", got)
	}
	if got := s.MemoryBytes(); got > 10*1024 {
		t.Errorf("MemoryBytes %d, expected a few KB", got)
	}
}

func TestWeightConservation(t *testing.T) {
	s := NewWithSeed(50, 3)
	n := uint64(123457)
	for i := uint64(0); i < n; i++ {
		s.Insert(float64(i))
	}
	var total uint64
	for _, sm := range s.samples() {
		total += sm.w
	}
	if total != n {
		t.Fatalf("total sample weight %d, want %d", total, n)
	}
}

func TestEmptyAndInvalid(t *testing.T) {
	s := New(DefaultK)
	if _, err := s.Quantile(0.5); err != sketch.ErrEmpty {
		t.Errorf("empty err = %v", err)
	}
	if _, err := s.Rank(1); err != sketch.ErrEmpty {
		t.Errorf("empty rank err = %v", err)
	}
	s.Insert(1)
	if _, err := s.Quantile(-1); err == nil {
		t.Error("Quantile(-1) should fail")
	}
}

func TestMinMaxExact(t *testing.T) {
	s := NewWithSeed(20, 5)
	rng := rand.New(rand.NewPCG(8, 9))
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 0; i < 100000; i++ {
		x := rng.NormFloat64() * 1000
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
		s.Insert(x)
	}
	got, err := s.Quantile(1)
	if err != nil {
		t.Fatal(err)
	}
	if got != hi {
		t.Errorf("Quantile(1) = %v, want exact max %v", got, hi)
	}
}

func TestMergePreservesAccuracy(t *testing.T) {
	a := NewWithSeed(DefaultK, 1)
	b := NewWithSeed(DefaultK, 2)
	rng := rand.New(rand.NewPCG(3, 4))
	var all []float64
	for i := 0; i < 100000; i++ {
		x := rng.Float64() * 100
		all = append(all, x)
		if i%2 == 0 {
			a.Insert(x)
		} else {
			b.Insert(x)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != uint64(len(all)) {
		t.Fatalf("count %d, want %d", a.Count(), len(all))
	}
	sort.Float64s(all)
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		est, _ := a.Quantile(q)
		if re := math.Abs(q - exactRankOf(all, est)); re > 0.03 {
			t.Errorf("q=%v: rank error %v after merge", q, re)
		}
	}
	// Merged sketch respects the same retention bound.
	if got := a.Retained(); got > 2200 {
		t.Errorf("retained %d after merge", got)
	}
}

func TestMergeMinK(t *testing.T) {
	// Differing k merge under the DataSketches min-k rule: the receiver
	// adopts the smaller k (either direction) so budget-degraded
	// sketches stay mergeable with full-k ones.
	rng := rand.New(rand.NewPCG(11, 12))
	a, b := New(100), New(200)
	var n uint64
	for i := 0; i < 5000; i++ {
		x := rng.Float64() * 100
		a.Insert(x)
		b.Insert(x + 100)
		n += 2
	}
	if err := a.Merge(b); err != nil {
		t.Fatalf("min-k merge (small ← large): %v", err)
	}
	if a.K() != 100 || a.Count() != n {
		t.Errorf("merged k=%d count=%d, want k=100 count=%d", a.K(), a.Count(), n)
	}
	big, small := New(200), New(100)
	for i := 0; i < 5000; i++ {
		x := rng.Float64() * 100
		big.Insert(x)
		small.Insert(x + 100)
	}
	if err := big.Merge(small); err != nil {
		t.Fatalf("min-k merge (large ← small): %v", err)
	}
	if big.K() != 100 {
		t.Errorf("merged k = %d, want the min k 100", big.K())
	}
	if _, err := big.Quantile(0.5); err != nil {
		t.Fatalf("quantile after min-k merge: %v", err)
	}
}

func TestSerdeRoundTrip(t *testing.T) {
	s := NewWithSeed(DefaultK, 77)
	rng := rand.New(rand.NewPCG(5, 6))
	for i := 0; i < 50000; i++ {
		s.Insert(rng.NormFloat64() * 10)
	}
	blob, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var d Sketch
	if err := d.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if d.Count() != s.Count() || d.Retained() != s.Retained() {
		t.Fatal("state mismatch after round trip")
	}
	for _, q := range []float64{0.05, 0.5, 0.95} {
		a, _ := s.Quantile(q)
		b, _ := d.Quantile(q)
		if a != b {
			t.Errorf("q=%v: %v != %v", q, a, b)
		}
	}
	if err := d.UnmarshalBinary(blob[:8]); err == nil {
		t.Error("truncated blob should fail")
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	run := func() []float64 {
		s := NewWithSeed(100, 12345)
		rng := rand.New(rand.NewPCG(1, 1))
		for i := 0; i < 50000; i++ {
			s.Insert(rng.Float64())
		}
		var out []float64
		for _, q := range []float64{0.1, 0.5, 0.9} {
			v, _ := s.Quantile(q)
			out = append(out, v)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic result with fixed seed: %v vs %v", a, b)
		}
	}
}

// Property: count is always exact and rank estimates are monotone in x.
func TestQuickRankMonotone(t *testing.T) {
	f := func(vals []float32) bool {
		if len(vals) < 2 {
			return true
		}
		s := NewWithSeed(20, 9)
		for _, v := range vals {
			if !math.IsNaN(float64(v)) {
				s.Insert(float64(v))
			}
		}
		if s.Count() == 0 {
			return true
		}
		r1, err1 := s.Rank(math.Inf(-1))
		r2, err2 := s.Rank(0)
		r3, err3 := s.Rank(math.Inf(1))
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		return r1 <= r2 && r2 <= r3 && r3 == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: weight conservation holds for arbitrary stream lengths.
func TestQuickWeightConservation(t *testing.T) {
	f := func(n uint16, seed uint64) bool {
		s := NewWithSeed(16, seed)
		for i := 0; i < int(n); i++ {
			s.Insert(float64(i % 97))
		}
		var total uint64
		for _, sm := range s.samples() {
			total += sm.w
		}
		return total == uint64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
