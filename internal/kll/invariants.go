//go:build invariants

package kll

import (
	"math"

	"repro/internal/invariant"
)

// assertInvariants re-verifies KLL's structural contracts. op names the
// mutation that just ran, for the violation report.
//
//   - Weight conservation: Σ_h |levels[h]|·2^h == count. Compaction
//     promotes exactly half of an even-sized prefix one level up (its
//     weight doubles), so the total weight of retained samples must
//     equal the number of inserted items at all times.
//   - Geometric capacity schedule: capacity(h) must equal
//     max(2, ⌈k·(2/3)^(H−1−h)⌉) — recomputed here independently so a
//     stale cache is caught.
//   - Ordered bounds: min ≤ max whenever the sketch is non-empty, and
//     no retained sample may be NaN.
func (s *Sketch) assertInvariants(op string) {
	var weight uint64
	for h, lv := range s.levels {
		weight += uint64(len(lv)) << uint(h)
		for _, v := range lv {
			if math.IsNaN(float64(v)) {
				invariant.Violationf("kll", op, "NaN sample at level %d", h)
			}
		}
	}
	if weight != s.count {
		invariant.Violationf("kll", op, "weight conservation broken: retained weight %d, count %d", weight, s.count)
	}
	for h := range s.levels {
		depth := len(s.levels) - 1 - h
		want := int(math.Ceil(float64(s.k) * math.Pow(capacityDecay, float64(depth))))
		if want < minCompactorSize {
			want = minCompactorSize
		}
		if got := s.capacity(h); got != want {
			invariant.Violationf("kll", op, "capacity schedule broken at level %d: got %d, want %d (k=%d, levels=%d)",
				h, got, want, s.k, len(s.levels))
		}
	}
	if s.count > 0 && !(s.min <= s.max) {
		invariant.Violationf("kll", op, "bounds broken: min %v > max %v with count %d", s.min, s.max, s.count)
	}
}

// assertCount verifies count conservation across a merge: the merged
// sketch must account for exactly the items of both inputs.
func (s *Sketch) assertCount(op string, want uint64) {
	if s.count != want {
		invariant.Violationf("kll", op, "count conservation broken: got %d, want %d", s.count, want)
	}
	s.assertInvariants(op)
}
