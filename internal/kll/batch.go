package kll

import (
	"math"

	"repro/internal/sketch"
)

var (
	_ sketch.BatchInserter  = (*Sketch)(nil)
	_ sketch.MultiQuantiler = (*Sketch)(nil)
)

// InsertBatch implements sketch.BatchInserter: equivalent to inserting
// every value of xs in order, but with the level-0 buffer, count and
// bounds kept in locals so the hot append loop carries no pointer
// re-loads. Compaction triggers at exactly the same points as the
// scalar path — state is written back before every compress and the
// buffer/capacity are re-read after, since compaction empties level 0
// and growing the hierarchy reshapes the capacity schedule.
//
//sketch:hotpath
func (s *Sketch) InsertBatch(xs []float64) {
	if len(xs) == 0 {
		return
	}
	s.auxValid = false
	buf := s.levels[0]
	cap0 := s.capacity(0)
	count := s.count
	startCount := count
	minV, maxV := s.min, s.max
	for _, x := range xs {
		if math.IsNaN(x) {
			continue
		}
		buf = append(buf, float32(x))
		count++
		if x < minV {
			minV = x
		}
		if x > maxV {
			maxV = x
		}
		if len(buf) >= cap0 {
			s.levels[0] = buf
			s.count = count
			s.min, s.max = minV, maxV
			s.compress()
			buf = s.levels[0]
			cap0 = s.capacity(0)
		}
	}
	s.levels[0] = buf
	if metrics != nil {
		metrics.Inserts.Add(int64(count - startCount))
	}
	s.count = count
	s.min, s.max = minV, maxV
}
