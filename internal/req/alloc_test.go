package req

import "testing"

// TestInsertBatchAllocs pins the //sketch:hotpath contract on the batch
// kernel: at steady state a 1024-value batch allocates (amortized)
// nothing — compaction reuses its buffers. Interface boxing on the
// insert path would read as ~1024 allocations per batch; the bound of
// 4 leaves headroom only for a rare compactor-growth reallocation.
func TestInsertBatchAllocs(t *testing.T) {
	s := New(12, false)
	xs := make([]float64, 1024)
	state := uint64(0x9e3779b97f4a7c15)
	for i := range xs {
		state = state*6364136223846793005 + 1442695040888963407
		xs[i] = 1 + float64(state>>11)/float64(1<<53)*999
	}
	for i := 0; i < 200; i++ {
		s.InsertBatch(xs) // warm: grow compactors past the measured window
	}
	avg := testing.AllocsPerRun(200, func() { s.InsertBatch(xs) })
	if avg > 4 {
		t.Errorf("InsertBatch allocates %.2f times per 1024-value batch, want ~0 (boxing would be ~1024)", avg)
	}
}
