package req

import (
	"math"

	"repro/internal/sketch"
)

var _ sketch.CountScaler = (*Sketch)(nil)

// ScaleCount implements sketch.CountScaler with the same binary
// re-decomposition KLL uses: an item in the height-h compactor carries
// weight 2^h, so after scaling it should carry W = round(g·2^h) and is
// re-placed into the compactor at every set bit of W (all ≤ h, so no
// new compactors appear). Each compactor keeps its section
// configuration and compaction-schedule state; only its buffer contents
// are rebuilt (unsorted, sortedLen reset). The new count is
// Σ_h |buf_h|·W_h, conserving retained weight exactly, and the whole
// transform is deterministic — compactors ascending, items in retained
// order, coin flips only in the final compress from the sketch's own
// PCG stream. Heights whose scaled weight rounds to 0 drop their items;
// if everything rounds away the sketch resets. min/max are kept as
// conservative bounds.
func (s *Sketch) ScaleCount(g float64) {
	if math.IsNaN(g) || g >= 1 {
		return
	}
	if g <= 0 {
		s.Reset()
		return
	}
	newBufs := make([][]float32, len(s.compactors))
	var count uint64
	for h, c := range s.compactors {
		if len(c.buf) == 0 {
			continue
		}
		w := uint64(math.Round(g * float64(uint64(1)<<uint(h))))
		if w == 0 {
			continue
		}
		count += w * uint64(len(c.buf))
		for b := uint(0); w>>b != 0; b++ {
			if w&(1<<b) != 0 {
				newBufs[b] = append(newBufs[b], c.buf...)
			}
		}
	}
	if count == 0 {
		s.Reset()
		return
	}
	for h, c := range s.compactors {
		c.buf = append(c.buf[:0], newBufs[h]...)
		c.sortedLen = 0
	}
	s.count = count
	s.auxValid = false
	s.compress()
}
