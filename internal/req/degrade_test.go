package req

import (
	"errors"
	"math/rand/v2"
	"testing"

	"repro/internal/sketch"
)

// TestDegrade pins the sketch.Degrader contract for REQ: each step
// halves the section sizes, conserves the count, keeps queries sane,
// grows the reported error scale, and eventually refuses.
func TestDegrade(t *testing.T) {
	s := NewWithSeed(DefaultSectionSize, true, 9)
	rng := rand.New(rand.NewPCG(5, 6))
	const n = 100000
	for i := 0; i < n; i++ {
		s.Insert(rng.ExpFloat64() * 100)
	}
	startRetained := s.Retained()
	prevBound := s.AccuracyBound()
	steps := 0
	for {
		freed, err := s.Degrade()
		if errors.Is(err, sketch.ErrNotDegradable) {
			break
		}
		if err != nil {
			t.Fatalf("degrade step %d: %v", steps, err)
		}
		steps++
		if freed < 0 {
			t.Fatalf("step %d: negative freed %d", steps, freed)
		}
		if s.Count() != n {
			t.Fatalf("step %d: count %d, want %d", steps, s.Count(), n)
		}
		if b := s.AccuracyBound(); b <= prevBound {
			t.Errorf("step %d: bound %v did not grow past %v", steps, b, prevBound)
		} else {
			prevBound = b
		}
		if _, err := s.Quantile(0.99); err != nil {
			t.Fatalf("step %d: quantile: %v", steps, err)
		}
	}
	if steps == 0 {
		t.Fatal("sketch refused to degrade at all")
	}
	if got := s.Retained(); got >= startRetained {
		t.Errorf("retained %d did not shrink from %d", got, startRetained)
	}
	// Fully degraded compactors sit at (or just above — rounding can
	// strand a compactor at 6 when half its size float would round
	// below the floor) the minimum section size.
	for h, c := range s.compactors {
		if c.sectionSize > minSectionSize+2 {
			t.Errorf("compactor %d sectionSize = %d, want <= %d", h, c.sectionSize, minSectionSize+2)
		}
	}
}

// TestDegradeMergesWithFresh pins that a degraded REQ partial merges
// with a fresh full-k partial in both directions under the min-k rule.
func TestDegradeMergesWithFresh(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	degraded := NewWithSeed(DefaultSectionSize, true, 1)
	fresh := NewWithSeed(DefaultSectionSize, true, 2)
	for i := 0; i < 20000; i++ {
		degraded.Insert(rng.Float64())
		fresh.Insert(rng.Float64())
	}
	if _, err := degraded.Degrade(); err != nil {
		t.Fatal(err)
	}
	want := degraded.Count() + fresh.Count()
	if err := fresh.Merge(degraded); err != nil {
		t.Fatalf("fresh.Merge(degraded): %v", err)
	}
	if fresh.Count() != want {
		t.Errorf("merged count = %d, want %d", fresh.Count(), want)
	}
	if fresh.K() != degraded.K() {
		t.Errorf("merged k = %d, want the degraded (min) k %d", fresh.K(), degraded.K())
	}
	if _, err := fresh.Quantile(0.9); err != nil {
		t.Fatal(err)
	}
}
