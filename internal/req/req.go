// Package req implements ReqSketch (Cormode, Karnin, Liberty, Thaler,
// Veselý; PODS 2021), the relative-error quantile sketch built from
// *relative compactors*. Each compactor keeps a protected half of its
// buffer untouched and compacts only sections from the other end, with a
// schedule that compacts the extreme sections geometrically more often —
// yielding the multiplicative rank guarantee
// |R̂ank(x) − Rank(x)| ≤ ε·Rank(x) (LRA) with high probability.
//
// In high-rank-accuracy (HRA) mode, the mode the study evaluates, the
// *smallest* values are compacted first so upper quantiles are sharpest
// (paper Sec 3.5 and 4.2). Samples are stored as float32, mirroring the
// DataSketches float implementation whose footprint the study reports
// (≈17 KB / ≈4,177 retained items at 1M Pareto inserts, Sec 4.3).
package req

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand/v2"
	"slices"
	"sort"

	"repro/internal/sketch"
)

// DefaultSectionSize is the study's configuration for the compactor
// section size k (which the paper calls num_sections).
const DefaultSectionSize = 30

const (
	minSectionSize  = 4
	initNumSections = 3
	sqrt2           = 1.4142135623730951
)

// compactor is one relative compactor at height h; items in it carry
// weight 2^h.
type compactor struct {
	h            int
	sectionSizeF float64
	sectionSize  int
	numSections  int
	state        uint64 // number of compactions performed
	buf          []float32
	sortedLen    int // buf[:sortedLen] is sorted; appends land after it
	scratch      []float32
}

func newCompactor(h, sectionSize int) *compactor {
	return &compactor{
		h:            h,
		sectionSizeF: float64(sectionSize),
		sectionSize:  sectionSize,
		numSections:  initNumSections,
		buf:          make([]float32, 0, 2*sectionSize*initNumSections),
	}
}

// capacity is the buffer size that triggers compaction: 2·k·numSections,
// half of which is the protected region.
func (c *compactor) capacity() int { return 2 * c.sectionSize * c.numSections }

// sort restores full sortedness. The buffer is always a sorted prefix
// (survivors of the last compaction) plus an unsorted tail of new
// arrivals, so sorting the tail and merging the two runs is much cheaper
// than re-sorting the whole buffer every compaction.
func (c *compactor) sort() {
	if c.sortedLen == len(c.buf) {
		return
	}
	tail := c.buf[c.sortedLen:]
	slices.Sort(tail)
	if c.sortedLen > 0 {
		c.scratch = append(c.scratch[:0], tail...)
		// Merge backward: largest elements settle at the end first.
		i, j, k := c.sortedLen-1, len(c.scratch)-1, len(c.buf)-1
		for j >= 0 {
			if i >= 0 && c.buf[i] > c.scratch[j] {
				c.buf[k] = c.buf[i]
				i--
			} else {
				c.buf[k] = c.scratch[j]
				j--
			}
			k--
		}
	}
	c.sortedLen = len(c.buf)
}

// nearestEven rounds to the nearest even integer.
func nearestEven(f float64) int {
	return 2 * int(math.Round(f/2))
}

// Sketch is a ReqSketch instance.
type Sketch struct {
	k          int  // initial section size
	hra        bool // high ranks accurate (compact lowest values first)
	compactors []*compactor
	count      uint64
	min, max   float64
	rng        *rand.Rand
	pcg        *rand.PCG // rng's source, kept for exact state serialization
	seed       uint64

	// Sorted-view cache (values ascending with cumulative weights), built
	// lazily at query time and invalidated by mutation. Unlike KLL's, the
	// rebuild must re-sort higher compactors too, which is why ReqSketch
	// query time grows with data size (Sec 4.4.2). The slices (and the
	// weighted scratch the build sorts in) keep their capacity across
	// rebuilds, so steady-state queries allocate nothing.
	auxValid   bool
	auxVals    []float32
	auxCum     []uint64
	auxScratch []weighted
}

var _ sketch.Sketch = (*Sketch)(nil)

// New returns a ReqSketch with section size k in HRA or LRA mode and a
// fixed default seed. Use NewWithSeed to vary the randomization.
func New(k int, hra bool) *Sketch { return NewWithSeed(k, hra, 0x0e90e90e90e90e95) }

// NewWithSeed returns a ReqSketch whose compaction coin flips derive from
// seed. It panics if k is below the minimum section size.
func NewWithSeed(k int, hra bool, seed uint64) *Sketch {
	if k < minSectionSize {
		panic(fmt.Sprintf("req: section size must be >= %d, got %d", minSectionSize, k))
	}
	k = nearestEven(float64(k))
	pcg := rand.NewPCG(seed, seed^0xbf58476d1ce4e5b9)
	return &Sketch{
		k:          k,
		hra:        hra,
		compactors: []*compactor{newCompactor(0, k)},
		min:        math.Inf(1),
		max:        math.Inf(-1),
		rng:        rand.New(pcg),
		pcg:        pcg,
		seed:       seed,
	}
}

// Name implements sketch.Sketch.
func (s *Sketch) Name() string { return "req" }

// K returns the configured initial section size.
func (s *Sketch) K() int { return s.k }

// HighRankAccuracy reports whether the sketch favours upper quantiles.
func (s *Sketch) HighRankAccuracy() bool { return s.hra }

// Insert implements sketch.Sketch. NaNs are ignored.
func (s *Sketch) Insert(x float64) {
	if math.IsNaN(x) {
		return
	}
	if metrics != nil {
		metrics.Inserts.Inc()
	}
	c0 := s.compactors[0]
	c0.buf = append(c0.buf, float32(x))
	s.count++
	s.auxValid = false
	if x < s.min {
		s.min = x
	}
	if x > s.max {
		s.max = x
	}
	if len(c0.buf) >= c0.capacity() {
		s.compress()
	}
}

// compress compacts every over-full compactor from the bottom up.
func (s *Sketch) compress() {
	for h := 0; h < len(s.compactors); h++ {
		c := s.compactors[h]
		if len(c.buf) >= c.capacity() {
			s.compactLevel(h)
			if metrics != nil {
				metrics.Compactions.Inc()
			}
		}
	}
	if metrics != nil {
		metrics.PeakBytes.Max(int64(s.MemoryBytes()))
	}
}

// compactLevel runs one compaction of compactor h, promoting survivors to
// height h+1 (created on demand).
func (s *Sketch) compactLevel(h int) {
	c := s.compactors[h]
	if len(c.buf) < 2 {
		return
	}
	if h+1 >= len(s.compactors) {
		s.compactors = append(s.compactors, newCompactor(h+1, c.sectionSize))
	}
	next := s.compactors[h+1]
	c.sort()

	// The schedule: the number of sections compacted at the C-th
	// compaction is trailingOnes(C)+1, capped at numSections — so the
	// extreme sections compact every time and interior sections
	// geometrically less often (Sec 3.5).
	secs := bits.TrailingZeros64(^c.state) + 1
	if secs > c.numSections {
		secs = c.numSections
	}
	L := secs * c.sectionSize
	// Never touch the protected half of the nominal capacity; with
	// oversized buffers (post-merge) allow compacting the excess too.
	if maxL := len(c.buf) - c.capacity()/2; L > maxL {
		L = maxL
	}
	L &^= 1 // even
	if L < 2 {
		L = 2
		if len(c.buf) < 2 {
			return
		}
	}

	var compactRegion []float32
	if s.hra {
		// High ranks accurate: sacrifice the smallest values.
		compactRegion = c.buf[:L]
	} else {
		compactRegion = c.buf[len(c.buf)-L:]
	}
	offset := 0
	if s.rng.Uint64()&1 == 1 {
		offset = 1
	}
	for i := offset; i < len(compactRegion); i += 2 {
		next.buf = append(next.buf, compactRegion[i])
	}
	if s.hra {
		c.buf = append(c.buf[:0], c.buf[L:]...)
	} else {
		c.buf = c.buf[:len(c.buf)-L]
	}
	c.sortedLen = len(c.buf) // removing a contiguous region of a sorted buffer keeps it sorted

	c.state++
	// Grow the number of sections (shrinking their size by √2) once the
	// compaction count warrants it, keeping the ε schedule on track as n
	// grows.
	if c.state >= 1<<uint(c.numSections-1) && c.sectionSize > minSectionSize {
		if ne := nearestEven(c.sectionSizeF / sqrt2); ne >= minSectionSize {
			c.sectionSizeF /= sqrt2
			c.sectionSize = ne
			c.numSections <<= 1
		}
	}
}

// Count implements sketch.Sketch.
func (s *Sketch) Count() uint64 { return s.count }

type weighted struct {
	v float32
	w uint64
}

// samples returns all retained items with weights, sorted by value. The
// returned slice aliases the sketch's reusable scratch buffer. Equal
// values may land in any order (the sort is unstable), which cannot be
// observed: Quantile and Rank only consult cumulative weight at value
// boundaries.
func (s *Sketch) samples() []weighted {
	out := s.auxScratch[:0]
	for _, c := range s.compactors {
		w := uint64(1) << uint(c.h)
		for _, v := range c.buf {
			out = append(out, weighted{v, w})
		}
	}
	slices.SortFunc(out, func(a, b weighted) int {
		switch {
		case a.v < b.v:
			return -1
		case a.v > b.v:
			return 1
		default:
			return 0
		}
	})
	s.auxScratch = out
	return out
}

// buildAux materializes the sorted view once per mutation epoch, reusing
// the capacity of the previous epoch's arrays.
func (s *Sketch) buildAux() {
	if s.auxValid {
		return
	}
	sm := s.samples()
	vals := s.auxVals[:0]
	cums := s.auxCum[:0]
	var cum uint64
	for _, e := range sm {
		cum += e.w
		vals = append(vals, e.v)
		cums = append(cums, cum)
	}
	s.auxVals, s.auxCum = vals, cums
	s.auxValid = true
}

// Quantile implements sketch.Sketch; estimates are actual inserted values
// (float32-rounded) and q = 1 returns the exact maximum.
func (s *Sketch) Quantile(q float64) (float64, error) {
	if err := sketch.CheckQuantile(q); err != nil {
		return 0, err
	}
	if s.count == 0 {
		return 0, sketch.ErrEmpty
	}
	if q == 1 {
		return s.max, nil
	}
	s.buildAux()
	return s.quantileFromAux(q), nil
}

// quantileFromAux answers one valid q against the built sorted view.
func (s *Sketch) quantileFromAux(q float64) float64 {
	if q == 1 {
		return s.max
	}
	target := uint64(math.Ceil(q * float64(s.count)))
	if target < 1 {
		target = 1
	}
	i := sort.Search(len(s.auxCum), func(i int) bool { return s.auxCum[i] >= target })
	if i >= len(s.auxVals) {
		return s.max
	}
	return clampF(float64(s.auxVals[i]), s.min, s.max)
}

// QuantileAll implements sketch.MultiQuantiler: the cumulative CDF
// snapshot is built once and every target rank binary-searches it.
func (s *Sketch) QuantileAll(qs []float64) ([]float64, error) {
	if err := sketch.ValidateQuantiles(qs, s.count == 0); err != nil {
		return nil, err
	}
	s.buildAux()
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = s.quantileFromAux(q)
	}
	return out, nil
}

// Rank implements sketch.Sketch.
func (s *Sketch) Rank(x float64) (float64, error) {
	if s.count == 0 {
		return 0, sketch.ErrEmpty
	}
	s.buildAux()
	xf := float32(x)
	i := sort.Search(len(s.auxVals), func(i int) bool { return s.auxVals[i] > xf })
	if i == 0 {
		return 0, nil
	}
	return float64(s.auxCum[i-1]) / float64(s.count), nil
}

// Merge implements sketch.Sketch: same-height compactors concatenate
// their buffers, the compaction schedule states merge by bitwise OR
// (Sec 3.5), and over-full levels are compacted.
func (s *Sketch) Merge(other sketch.Sketch) error {
	o, ok := other.(*Sketch)
	if !ok {
		return fmt.Errorf("%w: cannot merge %s into req", sketch.ErrIncompatible, other.Name())
	}
	if o.hra != s.hra {
		return fmt.Errorf("%w: hra mismatch %v vs %v", sketch.ErrIncompatible, s.hra, o.hra)
	}
	// Differing k merge under the min-k rule (mirroring KLL): the merged
	// sketch adopts the smaller configuration, so budget-degraded
	// partials (Degrade) stay mergeable with full-k ones at the degraded
	// error bound. The accuracy mode itself must match — HRA and LRA
	// sketches protect opposite ends of their buffers.
	if o.k < s.k {
		s.k = o.k
	}
	for len(s.compactors) < len(o.compactors) {
		h := len(s.compactors)
		s.compactors = append(s.compactors, newCompactor(h, s.compactors[h-1].sectionSize))
	}
	for h, oc := range o.compactors {
		c := s.compactors[h]
		// Appended foreign items form the unsorted tail; the receiver's
		// sorted prefix remains valid.
		c.buf = append(c.buf, oc.buf...)
		c.state |= oc.state
		// Adopt the finer (further advanced) section configuration; at
		// equal advancement, the smaller (degraded) section size wins so
		// the merge direction cannot resurrect a pre-degradation config.
		if oc.numSections > c.numSections ||
			(oc.numSections == c.numSections && oc.sectionSize < c.sectionSize) {
			c.numSections = oc.numSections
			c.sectionSize = oc.sectionSize
			c.sectionSizeF = oc.sectionSizeF
		}
	}
	s.count += o.count
	s.auxValid = false
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	s.compress()
	return nil
}

// Retained reports the total number of samples currently held.
func (s *Sketch) Retained() int {
	n := 0
	for _, c := range s.compactors {
		n += len(c.buf)
	}
	return n
}

// NumLevels reports the number of relative compactors.
func (s *Sketch) NumLevels() int { return len(s.compactors) }

// MemoryBytes implements sketch.Sketch: 4 bytes per retained float32
// sample plus per-compactor and global bookkeeping.
func (s *Sketch) MemoryBytes() int {
	return 4*s.Retained() + 5*8*len(s.compactors) + 8*8
}

// Footprint implements sketch.Footprinter: the live bytes actually
// held — allocated buffer and merge-scratch capacity per compactor plus
// the sorted-view caches and fixed bookkeeping — as opposed to
// MemoryBytes' occupancy-based Table 3 accounting.
func (s *Sketch) Footprint() int {
	b := 0
	for _, c := range s.compactors {
		b += 4*(cap(c.buf)+cap(c.scratch)) + 5*8
	}
	return b + 4*cap(s.auxVals) + 8*cap(s.auxCum) + 16*cap(s.auxScratch) + 8*8
}

// Degrade implements sketch.Degrader: halve every compactor's section
// size (floored at the minimum, 4) and force-compact under the shrunken
// capacities, clipping buffers to their new occupancy. The degraded
// sketch stays mergeable with full-k sketches through the min-k Merge
// rule; its relative-error scale grows by ≈√2 per step (AccuracyBound).
func (s *Sketch) Degrade() (int, error) {
	before := s.Footprint()
	shrunk := false
	for _, c := range s.compactors {
		if ne := nearestEven(c.sectionSizeF / 2); ne >= minSectionSize && ne < c.sectionSize {
			c.sectionSizeF /= 2
			c.sectionSize = ne
			shrunk = true
		}
	}
	if !shrunk {
		return 0, sketch.ErrNotDegradable
	}
	if nk := nearestEven(float64(s.k) / 2); nk >= minSectionSize {
		s.k = nk
	}
	s.auxValid = false
	s.compress()
	for _, c := range s.compactors {
		c.buf = slices.Clip(c.buf)
		c.scratch = nil
	}
	s.auxVals, s.auxCum, s.auxScratch = nil, nil, nil
	freed := before - s.Footprint()
	if freed < 0 {
		freed = 0
	}
	return freed, nil
}

// AccuracyBound implements sketch.AccuracyBounder with the DataSketches
// empirical scale for ReqSketch's relative rank error, ε(k) ≈ √(0.0512/k)
// (≈4.1% relative standard error at the study's k = 30). Like KLL's, it
// is a comparable error scale that grows as the sketch degrades, not a
// formal tail bound.
func (s *Sketch) AccuracyBound() float64 {
	return math.Sqrt(0.0512 / float64(s.k))
}

// Reset implements sketch.Sketch.
func (s *Sketch) Reset() {
	*s = *NewWithSeed(s.k, s.hra, s.seed)
}

func clampF(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (s *Sketch) MarshalBinary() ([]byte, error) {
	w := sketch.NewWriter(96 + 4*s.Retained())
	w.Header(sketch.TagReq)
	w.U32(uint32(s.k))
	if s.hra {
		w.Byte(1)
	} else {
		w.Byte(0)
	}
	w.U64(s.seed)
	rngState, err := s.pcg.MarshalBinary()
	if err != nil {
		return nil, err
	}
	w.Blob(rngState)
	w.U64(s.count)
	w.F64(s.min)
	w.F64(s.max)
	w.U32(uint32(len(s.compactors)))
	for _, c := range s.compactors {
		w.F64(c.sectionSizeF)
		w.U32(uint32(c.sectionSize))
		w.U32(uint32(c.numSections))
		w.U64(c.state)
		w.U32(uint32(len(c.buf)))
		for _, v := range c.buf {
			w.U32(math.Float32bits(v))
		}
	}
	return w.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler. Like KLL, the
// decoded sketch restores the exact PCG state of its coin-flip RNG, so
// it continues bit-identically to the original.
func (s *Sketch) UnmarshalBinary(data []byte) error {
	r := sketch.NewReader(data)
	if err := r.Header(sketch.TagReq); err != nil {
		return err
	}
	k := int(r.U32())
	hra := r.Byte() == 1
	seed := r.U64()
	rngState := r.Blob()
	count := r.U64()
	minV := r.F64()
	maxV := r.F64()
	numLevels := int(r.U32())
	if r.Err() != nil {
		return r.Err()
	}
	if k < minSectionSize || k > 1<<20 || numLevels < 1 || numLevels > 64 {
		return sketch.ErrCorrupt
	}
	ns := NewWithSeed(k, hra, seed)
	if err := ns.pcg.UnmarshalBinary(rngState); err != nil {
		return sketch.ErrCorrupt
	}
	ns.count = count
	ns.min = minV
	ns.max = maxV
	ns.compactors = make([]*compactor, numLevels)
	for h := range ns.compactors {
		c := newCompactor(h, k)
		c.sectionSizeF = r.F64()
		c.sectionSize = int(r.U32())
		c.numSections = int(r.U32())
		c.state = r.U64()
		n := int(r.U32())
		if r.Err() != nil || n < 0 || n > r.Remaining()/4 {
			return sketch.ErrCorrupt
		}
		if c.sectionSize < minSectionSize || c.sectionSize > 1<<20 || c.numSections < 1 || c.numSections > 1<<20 {
			return sketch.ErrCorrupt
		}
		c.buf = make([]float32, n)
		for i := range c.buf {
			c.buf[i] = math.Float32frombits(r.U32())
		}
		c.sortedLen = 0
		ns.compactors[h] = c
	}
	if r.Err() != nil {
		return r.Err()
	}
	if r.Remaining() != 0 {
		return sketch.ErrCorrupt
	}
	*s = *ns
	return nil
}
