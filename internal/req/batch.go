package req

import (
	"math"

	"repro/internal/sketch"
)

var (
	_ sketch.BatchInserter  = (*Sketch)(nil)
	_ sketch.MultiQuantiler = (*Sketch)(nil)
)

// InsertBatch implements sketch.BatchInserter: equivalent to inserting
// every value of xs in order, with the level-0 buffer, count and bounds
// held in locals across the hot append loop. Compaction triggers at
// exactly the scalar path's points — state is written back before every
// compress and the buffer/capacity re-read after, since compacting
// shrinks the buffer and may advance the section schedule (changing the
// capacity). The bottom compactor pointer is stable: compress never
// replaces compactors[0], only appends higher levels.
//
//sketch:hotpath
func (s *Sketch) InsertBatch(xs []float64) {
	if len(xs) == 0 {
		return
	}
	s.auxValid = false
	c0 := s.compactors[0]
	buf := c0.buf
	capc := c0.capacity()
	count := s.count
	startCount := count
	minV, maxV := s.min, s.max
	for _, x := range xs {
		if math.IsNaN(x) {
			continue
		}
		buf = append(buf, float32(x))
		count++
		if x < minV {
			minV = x
		}
		if x > maxV {
			maxV = x
		}
		if len(buf) >= capc {
			c0.buf = buf
			s.count = count
			s.min, s.max = minV, maxV
			s.compress()
			buf = c0.buf
			capc = c0.capacity()
		}
	}
	c0.buf = buf
	if metrics != nil {
		metrics.Inserts.Add(int64(count - startCount))
	}
	s.count = count
	s.min, s.max = minV, maxV
}
