package req

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/sketch"
)

func exactRankOf(sorted []float64, x float64) float64 {
	i := sort.SearchFloat64s(sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(sorted))
}

func exactQuantile(sorted []float64, q float64) float64 {
	idx := int(math.Ceil(q * float64(len(sorted))))
	if idx < 1 {
		idx = 1
	}
	if idx > len(sorted) {
		idx = len(sorted)
	}
	return sorted[idx-1]
}

func TestSmallStreamIsExact(t *testing.T) {
	s := New(DefaultSectionSize, true)
	data := []float64{3, 8, 11, 16, 30, 51, 55, 61, 75, 100}
	for _, x := range data {
		s.Insert(x)
	}
	for i, q := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1} {
		got, err := s.Quantile(q)
		if err != nil {
			t.Fatal(err)
		}
		if got != data[i] {
			t.Errorf("q=%v: got %v, want %v", q, got, data[i])
		}
	}
}

// HRA mode: upper quantiles get tighter rank error than a uniform bound;
// here we check the multiplicative-style behaviour — the rank error at
// high ranks stays small even on a heavy-tailed stream.
func TestHRAUpperQuantileRankError(t *testing.T) {
	s := NewWithSeed(DefaultSectionSize, true, 17)
	rng := rand.New(rand.NewPCG(42, 43))
	n := 500000
	data := make([]float64, n)
	for i := range data {
		data[i] = 1 / math.Pow(1-rng.Float64(), 1.0) // Pareto α=1
		s.Insert(data[i])
	}
	sort.Float64s(data)
	for _, q := range []float64{0.9, 0.95, 0.98, 0.99, 0.999} {
		est, err := s.Quantile(q)
		if err != nil {
			t.Fatal(err)
		}
		rankErr := math.Abs(q - exactRankOf(data, est))
		// HRA: error at rank q scales like ε(1−q); near the top it must be
		// well under 1%.
		if rankErr > 0.01 {
			t.Errorf("q=%v: rank error %v > 0.01 in HRA mode", q, rankErr)
		}
	}
}

func TestLRALowerQuantileRankError(t *testing.T) {
	s := NewWithSeed(DefaultSectionSize, false, 23)
	rng := rand.New(rand.NewPCG(1, 9))
	n := 300000
	data := make([]float64, n)
	for i := range data {
		data[i] = rng.Float64() * 1000
		s.Insert(data[i])
	}
	sort.Float64s(data)
	for _, q := range []float64{0.001, 0.01, 0.05, 0.1} {
		est, err := s.Quantile(q)
		if err != nil {
			t.Fatal(err)
		}
		rankErr := math.Abs(q - exactRankOf(data, est))
		if rankErr > 0.01 {
			t.Errorf("q=%v: rank error %v > 0.01 in LRA mode", q, rankErr)
		}
	}
}

func TestWeightConservation(t *testing.T) {
	s := NewWithSeed(8, true, 3)
	n := uint64(98765)
	for i := uint64(0); i < n; i++ {
		s.Insert(float64(i % 1013))
	}
	var total uint64
	for _, sm := range s.samples() {
		total += sm.w
	}
	if total != n {
		t.Fatalf("total sample weight %d, want %d", total, n)
	}
}

func TestRetainedGrowsSubLinearly(t *testing.T) {
	s := NewWithSeed(DefaultSectionSize, true, 5)
	rng := rand.New(rand.NewPCG(2, 3))
	for i := 0; i < 1000000; i++ {
		s.Insert(1 / math.Pow(1-rng.Float64(), 1.0))
	}
	// Paper Sec 4.3: ≈4,177 retained items at 1M Pareto inserts for the
	// study's configuration. Allow a generous band for schedule details.
	got := s.Retained()
	if got < 1500 || got > 9000 {
		t.Errorf("retained %d at 1M inserts, expected ≈4000", got)
	}
	t.Logf("retained=%d levels=%d memory=%dB", got, s.NumLevels(), s.MemoryBytes())
}

func TestEmptyAndInvalid(t *testing.T) {
	s := New(DefaultSectionSize, true)
	if _, err := s.Quantile(0.5); err != sketch.ErrEmpty {
		t.Errorf("empty err = %v", err)
	}
	s.Insert(5)
	if _, err := s.Quantile(2); err == nil {
		t.Error("Quantile(2) should fail")
	}
	got, err := s.Quantile(1)
	if err != nil || got != 5 {
		t.Errorf("Quantile(1) = %v, %v", got, err)
	}
}

func TestMergePreservesAccuracy(t *testing.T) {
	a := NewWithSeed(DefaultSectionSize, true, 1)
	b := NewWithSeed(DefaultSectionSize, true, 2)
	rng := rand.New(rand.NewPCG(3, 4))
	var all []float64
	for i := 0; i < 200000; i++ {
		x := 1 / math.Pow(1-rng.Float64(), 1.2)
		all = append(all, x)
		if i%2 == 0 {
			a.Insert(x)
		} else {
			b.Insert(x)
		}
	}
	bCount := b.Count()
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if b.Count() != bCount {
		t.Error("Merge mutated its argument count")
	}
	if a.Count() != uint64(len(all)) {
		t.Fatalf("count %d, want %d", a.Count(), len(all))
	}
	sort.Float64s(all)
	for _, q := range []float64{0.9, 0.95, 0.99} {
		est, _ := a.Quantile(q)
		if re := math.Abs(q - exactRankOf(all, est)); re > 0.015 {
			t.Errorf("q=%v: rank error %v after merge", q, re)
		}
	}
}

func TestMergeStateOR(t *testing.T) {
	a := NewWithSeed(8, true, 1)
	b := NewWithSeed(8, true, 2)
	for i := 0; i < 2000; i++ {
		a.Insert(float64(i))
		b.Insert(float64(i) + 0.5)
	}
	sa := a.compactors[0].state
	sb := b.compactors[0].state
	if sa == 0 || sb == 0 {
		t.Skip("need compactions at level 0 for this test")
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	// After merge+compress the state must contain the OR of both (the
	// compress step may have advanced it further).
	if got := a.compactors[0].state; got&(sa|sb) != (sa|sb) && got < (sa|sb) {
		t.Errorf("merged state %b lost bits of %b | %b", got, sa, sb)
	}
}

func TestMergeIncompatible(t *testing.T) {
	a := New(8, true)
	b := New(8, false)
	if err := a.Merge(b); err == nil {
		t.Error("HRA and LRA sketches should not merge")
	}
	// Differing section sizes merge under the min-k rule (the receiver
	// adopts the smaller configuration) so budget-degraded sketches stay
	// mergeable with full-k ones.
	c := New(16, true)
	c.Insert(1)
	a.Insert(2)
	if err := c.Merge(a); err != nil {
		t.Fatalf("min-k merge: %v", err)
	}
	if c.K() != 8 || c.Count() != 2 {
		t.Errorf("merged k=%d count=%d, want k=8 count=2", c.K(), c.Count())
	}
}

func TestSerdeRoundTrip(t *testing.T) {
	s := NewWithSeed(DefaultSectionSize, true, 7)
	rng := rand.New(rand.NewPCG(5, 6))
	for i := 0; i < 100000; i++ {
		s.Insert(rng.ExpFloat64() * 100)
	}
	blob, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var d Sketch
	if err := d.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if d.Count() != s.Count() || d.Retained() != s.Retained() || d.NumLevels() != s.NumLevels() {
		t.Fatal("state mismatch after round trip")
	}
	for _, q := range []float64{0.05, 0.5, 0.95, 0.99} {
		a, _ := s.Quantile(q)
		b, _ := d.Quantile(q)
		if a != b {
			t.Errorf("q=%v: %v != %v", q, a, b)
		}
	}
	if err := d.UnmarshalBinary(blob[:12]); err == nil {
		t.Error("truncated blob should fail")
	}
}

func TestSectionGrowth(t *testing.T) {
	s := NewWithSeed(16, true, 11)
	rng := rand.New(rand.NewPCG(8, 8))
	for i := 0; i < 2000000; i++ {
		s.Insert(rng.Float64())
	}
	c0 := s.compactors[0]
	if c0.numSections == initNumSections {
		t.Error("expected level-0 sections to have grown on a 2M stream")
	}
	if c0.sectionSize >= 16 {
		t.Errorf("sectionSize %d should have shrunk from 16", c0.sectionSize)
	}
	if c0.sectionSize < minSectionSize {
		t.Errorf("sectionSize %d below minimum", c0.sectionSize)
	}
}

// Property: weight conservation for arbitrary stream lengths and modes.
func TestQuickWeightConservation(t *testing.T) {
	f := func(n uint16, hra bool, seed uint64) bool {
		s := NewWithSeed(8, hra, seed)
		for i := 0; i < int(n); i++ {
			s.Insert(float64(i % 31))
		}
		var total uint64
		for _, sm := range s.samples() {
			total += sm.w
		}
		return total == uint64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: quantile estimates are always actual inserted values
// (float32-rounded) for q < 1.
func TestQuickEstimatesAreDataValues(t *testing.T) {
	f := func(vals []uint16, qFrac uint16) bool {
		if len(vals) == 0 {
			return true
		}
		s := NewWithSeed(8, true, 42)
		seen := make(map[float32]bool, len(vals))
		for _, v := range vals {
			s.Insert(float64(v))
			seen[float32(v)] = true
		}
		q := (float64(qFrac) + 1) / 65537
		est, err := s.Quantile(q)
		if err != nil {
			return false
		}
		return seen[float32(est)]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	run := func() float64 {
		s := NewWithSeed(16, true, 321)
		rng := rand.New(rand.NewPCG(4, 4))
		for i := 0; i < 100000; i++ {
			s.Insert(rng.Float64())
		}
		v, _ := s.Quantile(0.99)
		return v
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic with fixed seed: %v vs %v", a, b)
	}
}

func TestHRAvsLRAUpperTail(t *testing.T) {
	// On identical Pareto data, HRA should usually beat LRA on the 0.99
	// quantile rank error (this is the paper's rationale for enabling
	// HRA, Sec 4.2). Averaged over several seeds to damp randomness.
	rng := rand.New(rand.NewPCG(10, 20))
	n := 200000
	data := make([]float64, n)
	for i := range data {
		data[i] = 1 / math.Pow(1-rng.Float64(), 1.0)
	}
	sorted := append([]float64(nil), data...)
	sort.Float64s(sorted)
	truth := exactQuantile(sorted, 0.99)
	_ = truth
	var hraErr, lraErr float64
	for seed := uint64(0); seed < 5; seed++ {
		h := NewWithSeed(DefaultSectionSize, true, seed)
		l := NewWithSeed(DefaultSectionSize, false, seed)
		for _, x := range data {
			h.Insert(x)
			l.Insert(x)
		}
		eh, _ := h.Quantile(0.99)
		el, _ := l.Quantile(0.99)
		hraErr += math.Abs(0.99 - exactRankOf(sorted, eh))
		lraErr += math.Abs(0.99 - exactRankOf(sorted, el))
	}
	t.Logf("mean rank err at q=0.99: HRA=%v LRA=%v", hraErr/5, lraErr/5)
	if hraErr > lraErr {
		t.Errorf("HRA (%v) should beat LRA (%v) at the upper tail", hraErr/5, lraErr/5)
	}
}
