package core

import (
	"repro/internal/concurrent"
	"repro/internal/ddsketch"
	"repro/internal/kll"
	"repro/internal/moments"
	"repro/internal/obs"
	"repro/internal/req"
	"repro/internal/uddsketch"
)

// EnableMetrics wires every study sketch package to reg, keying each
// package's SketchMetrics by its algorithm name (the moments entry also
// covers the maxent solver counters). Call once at process start —
// before any sketch is built — per the obs package's quiescence
// contract. Passing nil disables recording again.
func EnableMetrics(reg *obs.Registry) {
	if reg == nil {
		kll.SetMetrics(nil)
		req.SetMetrics(nil)
		ddsketch.SetMetrics(nil)
		uddsketch.SetMetrics(nil)
		moments.SetMetrics(nil)
		concurrent.SetMetrics(nil)
		return
	}
	kll.SetMetrics(reg.Sketch(AlgKLL))
	req.SetMetrics(reg.Sketch(AlgReq))
	ddsketch.SetMetrics(reg.Sketch(AlgDD))
	uddsketch.SetMetrics(reg.Sketch(AlgUDD))
	moments.SetMetrics(reg.Sketch(AlgMoments))
	concurrent.SetMetrics(reg.Concurrent())
}
