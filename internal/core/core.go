// Package core encodes the study's experimental setup (paper Sec 4.2):
// the five sketches under their paper-specified configurations, the
// quantile set queried in every experiment with its mid/upper/p99
// grouping, and the per-window accuracy evaluation that all accuracy
// figures (Fig 6–8, Sec 4.6–4.7) are built from.
package core

import (
	"fmt"

	"repro/internal/datagen"
	"repro/internal/ddsketch"
	"repro/internal/kll"
	"repro/internal/moments"
	"repro/internal/req"
	"repro/internal/sketch"
	"repro/internal/stats"
	"repro/internal/uddsketch"
)

// Study parameters (Sec 4.2). Each was chosen by the authors so the
// sketches have a similar memory footprint and ≈1% rank or relative
// accuracy.
const (
	// KLLMaxCompactorSize is KLL's k: expected rank error ≈ 0.97%.
	KLLMaxCompactorSize = 350
	// ReqNumSections is ReqSketch's section-size parameter (the paper
	// calls it num_sections).
	ReqNumSections = 30
	// ReqHighRankAccuracy: the study enables HRA to sharpen upper
	// quantiles.
	ReqHighRankAccuracy = true
	// DDSketchAlpha is DDSketch's relative accuracy (γ = 1.0202).
	DDSketchAlpha = 0.01
	// UDDSketchAlpha is UDDSketch's target final relative accuracy.
	UDDSketchAlpha = 0.01
	// UDDSketchMaxBuckets is UDDSketch's bucket budget.
	UDDSketchMaxBuckets = 1024
	// UDDSketchNumCollapses is the collapse budget the initial α₀ is
	// derived from.
	UDDSketchNumCollapses = 12
	// MomentsNumMoments is Moments Sketch's k (≥15 is numerically
	// unstable).
	MomentsNumMoments = 12
)

// Algorithm names in the paper's reporting order (Table 3).
const (
	AlgReq     = "req"
	AlgKLL     = "kll"
	AlgUDD     = "uddsketch"
	AlgDD      = "ddsketch"
	AlgMoments = "moments"
)

// AlgorithmNames returns the five algorithm identifiers in reporting
// order.
func AlgorithmNames() []string {
	return []string{AlgReq, AlgKLL, AlgUDD, AlgDD, AlgMoments}
}

// Quantiles queried in every accuracy experiment (Sec 4.2), grouped the
// way the paper reports them.
var (
	// MidQuantiles are reported as the "mid" group.
	MidQuantiles = []float64{0.05, 0.25, 0.5, 0.75, 0.9}
	// UpperQuantiles are reported as the "upper" group.
	UpperQuantiles = []float64{0.95, 0.98}
	// P99 is reported separately.
	P99 = 0.99
)

// AllQuantiles returns every queried quantile in ascending order.
func AllQuantiles() []float64 {
	out := append([]float64{}, MidQuantiles...)
	out = append(out, UpperQuantiles...)
	return append(out, P99)
}

// BuilderOptions tune the per-algorithm construction.
type BuilderOptions struct {
	// LogTransformMoments applies the ln transform to Moments Sketch
	// inserts — the study's setting for the Pareto and Power data sets.
	LogTransformMoments bool
	// Seed randomizes KLL/REQ compaction coin flips per run.
	Seed uint64
}

// NewBuilder returns a sketch.Builder for the named algorithm configured
// exactly as in the study.
func NewBuilder(name string, opts BuilderOptions) (sketch.Builder, error) {
	switch name {
	case AlgKLL:
		return func() sketch.Sketch {
			return kll.NewWithSeed(KLLMaxCompactorSize, opts.Seed)
		}, nil
	case AlgReq:
		return func() sketch.Sketch {
			return req.NewWithSeed(ReqNumSections, ReqHighRankAccuracy, opts.Seed)
		}, nil
	case AlgDD:
		return func() sketch.Sketch { return ddsketch.New(DDSketchAlpha) }, nil
	case AlgUDD:
		return func() sketch.Sketch {
			s, err := uddsketch.NewWithBudget(UDDSketchAlpha, UDDSketchMaxBuckets, UDDSketchNumCollapses)
			if err != nil {
				panic(err) // constants are valid by construction
			}
			return s
		}, nil
	case AlgMoments:
		tr := moments.TransformNone
		if opts.LogTransformMoments {
			tr = moments.TransformLog
		}
		return func() sketch.Sketch { return moments.NewWithTransform(MomentsNumMoments, tr) }, nil
	default:
		return nil, fmt.Errorf("core: unknown algorithm %q (want one of %v)", name, AlgorithmNames())
	}
}

// BuildersForDataset returns the five study builders with the Moments
// transform chosen per data set, as the study does (Sec 4.2).
func BuildersForDataset(dataset string, seed uint64) (map[string]sketch.Builder, error) {
	out := make(map[string]sketch.Builder, 5)
	for _, name := range AlgorithmNames() {
		b, err := NewBuilder(name, BuilderOptions{
			LogTransformMoments: datagen.NeedsLogTransform(dataset),
			Seed:                seed,
		})
		if err != nil {
			return nil, err
		}
		out[name] = b
	}
	return out, nil
}

// WindowAccuracy is one window's per-group mean relative error.
type WindowAccuracy struct {
	// PerQuantile maps each queried q to its relative error.
	PerQuantile map[float64]float64
	// Mid, Upper and P99 are the group means the paper reports.
	Mid, Upper, P99 float64
}

// EvaluateWindow computes relative errors of sk against the exact
// quantiles of values (the window's accepted events), grouped per the
// study's reporting.
func EvaluateWindow(sk sketch.Sketch, values []float64) (WindowAccuracy, error) {
	if len(values) == 0 {
		return WindowAccuracy{}, stats.ErrEmpty
	}
	exact := stats.NewExactQuantiles(values)
	return EvaluateAgainst(sk, exact)
}

// QuantileOracle is the ground-truth surface EvaluateAgainst queries:
// *stats.ExactQuantiles for plain windows, *stats.WeightedQuantiles for
// exponentially decayed sliding windows.
type QuantileOracle interface {
	Quantile(q float64) float64
}

// EvaluateAgainst is EvaluateWindow with a pre-built oracle (lets callers
// share one sort across sketches).
func EvaluateAgainst(sk sketch.Sketch, exact QuantileOracle) (WindowAccuracy, error) {
	qs := AllQuantiles()
	ests, err := sketch.Quantiles(sk, qs)
	if err != nil {
		return WindowAccuracy{}, fmt.Errorf("core: %s: %w", sk.Name(), err)
	}
	acc := WindowAccuracy{PerQuantile: make(map[float64]float64, len(qs))}
	var midSum, upSum float64
	for i, q := range qs {
		re := stats.RelativeError(exact.Quantile(q), ests[i])
		acc.PerQuantile[q] = re
		switch {
		case i < len(MidQuantiles):
			midSum += re
		case i < len(MidQuantiles)+len(UpperQuantiles):
			upSum += re
		default:
			acc.P99 = re
		}
	}
	acc.Mid = midSum / float64(len(MidQuantiles))
	acc.Upper = upSum / float64(len(UpperQuantiles))
	return acc, nil
}
