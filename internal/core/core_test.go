package core

import (
	"math"
	"testing"

	"repro/internal/datagen"
	"repro/internal/moments"
	"repro/internal/sketch"
	"repro/internal/stats"
)

func TestAlgorithmNames(t *testing.T) {
	names := AlgorithmNames()
	if len(names) != 5 {
		t.Fatalf("got %d algorithms", len(names))
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate %s", n)
		}
		seen[n] = true
		b, err := NewBuilder(n, BuilderOptions{Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		sk := b()
		if sk.Name() != n {
			t.Errorf("builder %s produced sketch named %s", n, sk.Name())
		}
	}
}

func TestUnknownAlgorithm(t *testing.T) {
	if _, err := NewBuilder("nope", BuilderOptions{}); err == nil {
		t.Error("unknown algorithm should fail")
	}
}

func TestQuantileGroups(t *testing.T) {
	all := AllQuantiles()
	if len(all) != len(MidQuantiles)+len(UpperQuantiles)+1 {
		t.Fatalf("AllQuantiles has %d entries", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i] <= all[i-1] {
			t.Fatalf("quantiles not ascending: %v", all)
		}
	}
	if all[len(all)-1] != P99 {
		t.Error("p99 must come last")
	}
}

func TestBuildersForDatasetTransforms(t *testing.T) {
	for _, ds := range datagen.DatasetNames() {
		builders, err := BuildersForDataset(ds, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(builders) != 5 {
			t.Fatalf("%s: %d builders", ds, len(builders))
		}
		m := builders[AlgMoments]().(*moments.Sketch)
		wantLog := datagen.NeedsLogTransform(ds)
		gotLog := m.Transform() == moments.TransformLog
		if wantLog != gotLog {
			t.Errorf("%s: moments log transform = %v, want %v", ds, gotLog, wantLog)
		}
	}
}

func TestStudyParameters(t *testing.T) {
	// Sanity-check the derived configuration values quoted in Sec 4.2.
	b, err := NewBuilder(AlgDD, BuilderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	dd := b()
	type gammaer interface{ Gamma() float64 }
	if g := dd.(gammaer).Gamma(); math.Abs(g-1.0202) > 0.0001 {
		t.Errorf("DDSketch gamma = %v, paper reports 1.0202", g)
	}
	ub, err := NewBuilder(AlgUDD, BuilderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	type alphaer interface{ InitialAlpha() float64 }
	a0 := ub().(alphaer).InitialAlpha()
	if a0 < 4.5e-6 || a0 > 5.0e-6 {
		t.Errorf("UDDSketch alpha0 = %v, formula gives ≈ 4.88e-6", a0)
	}
}

func TestEvaluateWindow(t *testing.T) {
	data := make([]float64, 10000)
	for i := range data {
		data[i] = float64(i + 1)
	}
	b, err := NewBuilder(AlgDD, BuilderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sk := b()
	sketch.InsertAll(sk, data)
	wa, err := EvaluateWindow(sk, data)
	if err != nil {
		t.Fatal(err)
	}
	if len(wa.PerQuantile) != 8 {
		t.Fatalf("PerQuantile has %d entries", len(wa.PerQuantile))
	}
	if wa.Mid > 0.01 || wa.Upper > 0.01 || wa.P99 > 0.01 {
		t.Errorf("DDSketch errors above alpha: mid=%v upper=%v p99=%v", wa.Mid, wa.Upper, wa.P99)
	}
	// Group means are the means of their members.
	var midSum float64
	for _, q := range MidQuantiles {
		midSum += wa.PerQuantile[q]
	}
	if math.Abs(wa.Mid-midSum/float64(len(MidQuantiles))) > 1e-15 {
		t.Error("Mid is not the mean of the mid quantile errors")
	}
	if wa.P99 != wa.PerQuantile[P99] {
		t.Error("P99 mismatch")
	}
}

func TestEvaluateWindowEmpty(t *testing.T) {
	b, _ := NewBuilder(AlgDD, BuilderOptions{})
	if _, err := EvaluateWindow(b(), nil); err == nil {
		t.Error("empty window should fail")
	}
}

func TestEvaluateAgainstPropagatesQueryErrors(t *testing.T) {
	// A Moments sketch with < 5 values fails to solve; the evaluation
	// must surface that instead of fabricating numbers.
	b, _ := NewBuilder(AlgMoments, BuilderOptions{})
	sk := b()
	sk.Insert(1)
	sk.Insert(2)
	exact := stats.NewExactQuantiles([]float64{1, 2})
	if _, err := EvaluateAgainst(sk, exact); err == nil {
		t.Error("under-filled moments sketch should fail evaluation")
	}
}

// Seeded builders must produce deterministic randomized sketches.
func TestBuilderSeedDeterminism(t *testing.T) {
	for _, alg := range []string{AlgKLL, AlgReq} {
		run := func() float64 {
			b, err := NewBuilder(alg, BuilderOptions{Seed: 42})
			if err != nil {
				t.Fatal(err)
			}
			sk := b()
			src := datagen.NewPareto(1, 1, 7)
			for i := 0; i < 100000; i++ {
				sk.Insert(src.Next())
			}
			v, err := sk.Quantile(0.99)
			if err != nil {
				t.Fatal(err)
			}
			return v
		}
		if a, b := run(), run(); a != b {
			t.Errorf("%s: non-deterministic with fixed seed", alg)
		}
	}
}
