package gk

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/sketch"
)

func exactRankOf(sorted []float64, x float64) float64 {
	i := sort.SearchFloat64s(sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(sorted))
}

func TestRankErrorBound(t *testing.T) {
	eps := 0.01
	s := New(eps)
	rng := rand.New(rand.NewPCG(1, 2))
	n := 100000
	data := make([]float64, n)
	for i := range data {
		data[i] = rng.Float64() * 1e6
		s.Insert(data[i])
	}
	sort.Float64s(data)
	for _, q := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		est, err := s.Quantile(q)
		if err != nil {
			t.Fatal(err)
		}
		if re := math.Abs(q - exactRankOf(data, est)); re > eps+1e-9 {
			t.Errorf("q=%v: rank error %v > eps %v", q, re, eps)
		}
	}
}

func TestSummarySizeSubLinear(t *testing.T) {
	s := New(0.01)
	rng := rand.New(rand.NewPCG(3, 4))
	for i := 0; i < 500000; i++ {
		s.Insert(rng.Float64())
	}
	// GK holds O((1/ε)·log(εn)) tuples; at ε=0.01, n=5e5 that is a few
	// hundred to a few thousand, never anywhere near n.
	if got := s.Tuples(); got > 20000 {
		t.Errorf("summary holds %d tuples for 500k inserts", got)
	}
	t.Logf("tuples=%d memory=%dB", s.Tuples(), s.MemoryBytes())
}

func TestSortedInsertOrder(t *testing.T) {
	// Adversarial: sorted input (worst case for naive summaries).
	s := New(0.02)
	n := 50000
	for i := 0; i < n; i++ {
		s.Insert(float64(i))
	}
	for _, q := range []float64{0.1, 0.5, 0.9} {
		est, err := s.Quantile(q)
		if err != nil {
			t.Fatal(err)
		}
		wantRank := q * float64(n)
		if math.Abs(est-wantRank) > 0.03*float64(n) {
			t.Errorf("q=%v: est %v, want ≈ %v", q, est, wantRank)
		}
	}
}

func TestEmptyAndInvalid(t *testing.T) {
	s := New(0.01)
	if _, err := s.Quantile(0.5); err != sketch.ErrEmpty {
		t.Errorf("empty err = %v", err)
	}
	s.Insert(5)
	if _, err := s.Quantile(-0.5); err == nil {
		t.Error("Quantile(-0.5) should fail")
	}
	got, err := s.Quantile(1)
	if err != nil || got != 5 {
		t.Errorf("Quantile(1) = %v, %v", got, err)
	}
}

func TestMergeDegradesBoundButWorks(t *testing.T) {
	a, b := New(0.01), New(0.01)
	rng := rand.New(rand.NewPCG(5, 6))
	var all []float64
	for i := 0; i < 60000; i++ {
		x := rng.NormFloat64() * 100
		all = append(all, x)
		if i%2 == 0 {
			a.Insert(x)
		} else {
			b.Insert(x)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != uint64(len(all)) {
		t.Fatalf("count %d, want %d", a.Count(), len(all))
	}
	if a.EffectiveEpsilon() <= a.Epsilon() {
		t.Error("merge should degrade the effective bound")
	}
	sort.Float64s(all)
	for _, q := range []float64{0.1, 0.5, 0.9} {
		est, _ := a.Quantile(q)
		if re := math.Abs(q - exactRankOf(all, est)); re > a.EffectiveEpsilon()+1e-9 {
			t.Errorf("q=%v: rank error %v > effective eps %v", q, re, a.EffectiveEpsilon())
		}
	}
}

func TestSerdeRoundTrip(t *testing.T) {
	s := New(0.01)
	rng := rand.New(rand.NewPCG(7, 8))
	for i := 0; i < 30000; i++ {
		s.Insert(rng.ExpFloat64())
	}
	blob, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var d Sketch
	if err := d.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if d.Count() != s.Count() || d.Tuples() != s.Tuples() {
		t.Fatal("state mismatch")
	}
	qa, _ := s.Quantile(0.5)
	qb, _ := d.Quantile(0.5)
	if qa != qb {
		t.Errorf("median mismatch: %v vs %v", qa, qb)
	}
	if err := d.UnmarshalBinary(blob[:7]); err == nil {
		t.Error("truncated blob should fail")
	}
}

// Property: rank error bound holds for arbitrary positive data.
func TestQuickRankBound(t *testing.T) {
	f := func(vals []uint16, qFrac uint16) bool {
		if len(vals) == 0 {
			return true
		}
		s := New(0.05)
		data := make([]float64, len(vals))
		for i, v := range vals {
			data[i] = float64(v)
			s.Insert(data[i])
		}
		sort.Float64s(data)
		q := (float64(qFrac) + 1) / 65537
		est, err := s.Quantile(q)
		if err != nil {
			return false
		}
		// Discrete repeated values can push the measured rank past the
		// target; allow the bound plus the repetition mass of the
		// estimate's value.
		re := math.Abs(q - exactRankOf(data, est))
		if re <= 0.05+1e-9 {
			return true
		}
		lo := sort.SearchFloat64s(data, est)
		hi := sort.SearchFloat64s(data, math.Nextafter(est, math.Inf(1)))
		dup := float64(hi-lo) / float64(len(data))
		return re <= 0.05+dup+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
