// Package gk implements the Greenwald–Khanna quantile summary (SIGMOD
// 2001), the classic deterministic additive-rank-error sketch that the
// modern algorithms in this repository descend from (the study's related
// work, Sec 5.1: GKAdaptive/GKArray are its tuned variants).
//
// The summary is a sorted list of tuples (v, g, Δ) where g is the gap in
// minimum rank to the previous tuple and Δ bounds the rank uncertainty;
// the invariant g + Δ ≤ ⌊2εn⌋ guarantees every rank query within εn.
// GK is *not* losslessly mergeable — Merge here concatenates and
// compresses, doubling the error bound in the worst case, which is one
// of the reasons the study's five sketches superseded it.
package gk

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/sketch"
)

// DefaultEpsilon matches the study's 1% accuracy target.
const DefaultEpsilon = 0.01

// tuple is one summary entry.
type tuple struct {
	v     float64
	g     int64 // rmin(i) − rmin(i−1)
	delta int64 // rmax(i) − rmin(i)
}

// Sketch is a GK summary.
type Sketch struct {
	eps       float64
	tuples    []tuple
	count     int64
	inserted  int64 // inserts since last compress
	mergedEps float64
}

var _ sketch.Sketch = (*Sketch)(nil)

// New returns a GK summary with additive rank error bound eps.
func New(eps float64) *Sketch {
	if !(eps > 0 && eps < 1) {
		eps = DefaultEpsilon
	}
	return &Sketch{eps: eps, mergedEps: eps}
}

// Name implements sketch.Sketch.
func (s *Sketch) Name() string { return "gk" }

// Epsilon returns the configured error bound; EffectiveEpsilon reports
// the bound after any merges.
func (s *Sketch) Epsilon() float64 { return s.eps }

// EffectiveEpsilon reports the rank-error bound currently guaranteed,
// accounting for merge-induced degradation.
func (s *Sketch) EffectiveEpsilon() float64 { return s.mergedEps }

// Insert implements sketch.Sketch. NaNs are ignored.
func (s *Sketch) Insert(x float64) {
	if math.IsNaN(x) {
		return
	}
	pos := sort.Search(len(s.tuples), func(i int) bool { return s.tuples[i].v >= x })
	var delta int64
	if pos != 0 && pos != len(s.tuples) {
		delta = int64(2*s.eps*float64(s.count)) - 1
		if delta < 0 {
			delta = 0
		}
	}
	s.tuples = append(s.tuples, tuple{})
	copy(s.tuples[pos+1:], s.tuples[pos:])
	s.tuples[pos] = tuple{v: x, g: 1, delta: delta}
	s.count++
	s.inserted++
	if s.inserted >= int64(1/(2*s.eps)) {
		s.compress()
		s.inserted = 0
	}
}

// compress merges adjacent tuples while preserving g + Δ ≤ 2εn.
func (s *Sketch) compress() {
	if len(s.tuples) < 3 {
		return
	}
	bound := int64(2 * s.mergedEps * float64(s.count))
	out := s.tuples[:0]
	out = append(out, s.tuples[0])
	for i := 1; i < len(s.tuples)-1; i++ {
		t := s.tuples[i]
		last := &out[len(out)-1]
		// Try to fold t into its successor (standard GK folds forward;
		// folding into the last emitted tuple is equivalent bookkeeping).
		if len(out) > 1 && last.g+t.g+t.delta <= bound {
			t.g += last.g
			out[len(out)-1] = t
		} else {
			out = append(out, t)
		}
	}
	out = append(out, s.tuples[len(s.tuples)-1])
	s.tuples = out
}

// Count implements sketch.Sketch.
func (s *Sketch) Count() uint64 { return uint64(s.count) }

// Quantile implements sketch.Sketch: the value whose rank bounds bracket
// ⌈qN⌉ within εn.
func (s *Sketch) Quantile(q float64) (float64, error) {
	if err := sketch.CheckQuantile(q); err != nil {
		return 0, err
	}
	if s.count == 0 {
		return 0, sketch.ErrEmpty
	}
	target := int64(math.Ceil(q * float64(s.count)))
	margin := int64(math.Ceil(s.mergedEps * float64(s.count)))
	var rmin int64
	for i, t := range s.tuples {
		rmin += t.g
		rmax := rmin + t.delta
		if target-rmin <= margin && rmax-target <= margin {
			return t.v, nil
		}
		if i == len(s.tuples)-1 {
			break
		}
	}
	return s.tuples[len(s.tuples)-1].v, nil
}

// Rank implements sketch.Sketch.
func (s *Sketch) Rank(x float64) (float64, error) {
	if s.count == 0 {
		return 0, sketch.ErrEmpty
	}
	var rmin int64
	for _, t := range s.tuples {
		if t.v > x {
			break
		}
		rmin += t.g
	}
	return float64(rmin) / float64(s.count), nil
}

// Merge implements sketch.Sketch by merging the sorted tuple lists and
// compressing. The effective error bound becomes the sum of both inputs'
// bounds — GK's lack of lossless mergeability is precisely why the study
// focuses on the five newer sketches (Sec 5.1).
func (s *Sketch) Merge(other sketch.Sketch) error {
	o, ok := other.(*Sketch)
	if !ok {
		return fmt.Errorf("%w: cannot merge %s into gk", sketch.ErrIncompatible, other.Name())
	}
	merged := make([]tuple, 0, len(s.tuples)+len(o.tuples))
	i, j := 0, 0
	for i < len(s.tuples) && j < len(o.tuples) {
		if s.tuples[i].v <= o.tuples[j].v {
			merged = append(merged, s.tuples[i])
			i++
		} else {
			merged = append(merged, o.tuples[j])
			j++
		}
	}
	merged = append(merged, s.tuples[i:]...)
	merged = append(merged, o.tuples[j:]...)
	s.tuples = merged
	s.count += o.count
	if o.mergedEps > s.mergedEps {
		s.mergedEps = o.mergedEps
	}
	s.mergedEps = math.Min(0.5, s.mergedEps+o.mergedEps) // bound degradation
	s.compress()
	return nil
}

// Tuples reports the summary size.
func (s *Sketch) Tuples() int { return len(s.tuples) }

// MemoryBytes implements sketch.Sketch: three numbers per tuple.
func (s *Sketch) MemoryBytes() int { return 8 * (3*len(s.tuples) + 4) }

// Reset implements sketch.Sketch.
func (s *Sketch) Reset() { *s = *New(s.eps) }

// MarshalBinary implements encoding.BinaryMarshaler.
func (s *Sketch) MarshalBinary() ([]byte, error) {
	w := sketch.NewWriter(40 + 24*len(s.tuples))
	w.Header(sketch.TagGK)
	w.F64(s.eps)
	w.F64(s.mergedEps)
	w.I64(s.count)
	w.U32(uint32(len(s.tuples)))
	for _, t := range s.tuples {
		w.F64(t.v)
		w.I64(t.g)
		w.I64(t.delta)
	}
	return w.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (s *Sketch) UnmarshalBinary(data []byte) error {
	r := sketch.NewReader(data)
	if err := r.Header(sketch.TagGK); err != nil {
		return err
	}
	eps := r.F64()
	mergedEps := r.F64()
	count := r.I64()
	n := int(r.U32())
	if r.Err() != nil {
		return r.Err()
	}
	if !(eps > 0 && eps < 1) || n < 0 || n > r.Remaining()/24 {
		return sketch.ErrCorrupt
	}
	ns := New(eps)
	ns.mergedEps = mergedEps
	ns.count = count
	ns.tuples = make([]tuple, n)
	for i := range ns.tuples {
		ns.tuples[i] = tuple{v: r.F64(), g: r.I64(), delta: r.I64()}
	}
	if r.Err() != nil {
		return r.Err()
	}
	if r.Remaining() != 0 {
		return sketch.ErrCorrupt
	}
	*s = *ns
	return nil
}
