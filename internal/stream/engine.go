package stream

import (
	"container/heap"
	"errors"
	"fmt"
	"time"

	"repro/internal/datagen"
	"repro/internal/sketch"
)

// Config describes one streaming run: a source emitting Rate events/s for
// the run's duration, tumbling event-time windows of WindowSize, and a
// sketch under test.
type Config struct {
	// WindowSize is the tumbling window length (the study uses 20 s, with
	// 5 s and 10 s in the sensitivity analysis, Sec 4.7).
	WindowSize time.Duration
	// Rate is the source's event rate in events per second (study: 50,000).
	Rate int
	// NumWindows is how many complete windows to run. The engine emits
	// exactly this many results; the source runs long enough to close the
	// final window.
	NumWindows int
	// Partitions is the number of partition-local sketches the stream is
	// split across; they are merged when a window fires. 1 disables
	// partitioning (a single sketch per window).
	Partitions int
	// Values supplies the event payloads in generation order.
	Values datagen.Source
	// Delay is the network-delay model; nil means ZeroDelay.
	Delay DelayModel
	// Builder constructs the sketch under test; one (per partition) per
	// window.
	Builder sketch.Builder
	// CollectValues materializes each window's accepted events in
	// WindowResult.Values so callers can compute exact ground truth.
	CollectValues bool
}

// WindowResult is the outcome of one fired tumbling window.
type WindowResult struct {
	// Index is the zero-based window sequence number.
	Index int
	// Start and End delimit the window's event-time range [Start, End).
	Start, End time.Duration
	// Sketch summarizes every accepted event (partition sketches merged).
	Sketch sketch.Sketch
	// Values holds the accepted events' payloads when
	// Config.CollectValues is set; nil otherwise.
	Values []float64
	// Accepted is the number of events included in the window.
	Accepted int64
	// DroppedLate is the number of events belonging to this window that
	// arrived after it fired and were discarded (Sec 2.6). Late events by
	// definition show up after the window has been emitted, so this field
	// is only populated by RunCollect (which patches results after the
	// run); streaming Run callbacks always see 0.
	DroppedLate int64
}

// Stats aggregates engine-level counters over one run.
type Stats struct {
	// Generated is the total number of events produced by the source.
	Generated int64
	// Accepted is the total number of events included in fired windows.
	Accepted int64
	// DroppedLate is the total number of late-dropped events.
	DroppedLate int64
}

// LossRate returns the fraction of generated events dropped as late.
func (s Stats) LossRate() float64 {
	if s.Generated == 0 {
		return 0
	}
	return float64(s.DroppedLate) / float64(s.Generated)
}

// arrivalHeap orders in-flight events by arrival time, breaking ties by
// generation time so replay is deterministic.
type arrivalHeap []Event

func (h arrivalHeap) Len() int { return len(h) }
func (h arrivalHeap) Less(i, j int) bool {
	if h[i].Arrival != h[j].Arrival {
		return h[i].Arrival < h[j].Arrival
	}
	return h[i].GenTime < h[j].GenTime
}
func (h arrivalHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *arrivalHeap) Push(x any)   { *h = append(*h, x.(Event)) }
func (h *arrivalHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}

// windowState accumulates one open window.
type windowState struct {
	index    int
	partials []sketch.Sketch
	values   []float64
	accepted int64
}

// Engine runs a configured streaming job.
type Engine struct {
	cfg Config
}

// NewEngine validates cfg and returns a runnable engine.
func NewEngine(cfg Config) (*Engine, error) {
	if cfg.WindowSize <= 0 {
		return nil, errors.New("stream: WindowSize must be positive")
	}
	if cfg.Rate <= 0 {
		return nil, errors.New("stream: Rate must be positive")
	}
	if cfg.NumWindows <= 0 {
		return nil, errors.New("stream: NumWindows must be positive")
	}
	if cfg.Partitions <= 0 {
		cfg.Partitions = 1
	}
	if cfg.Values == nil {
		return nil, errors.New("stream: Values source is required")
	}
	if cfg.Builder == nil {
		return nil, errors.New("stream: Builder is required")
	}
	if cfg.Delay == nil {
		cfg.Delay = ZeroDelay{}
	}
	return &Engine{cfg: cfg}, nil
}

// Run executes the job, invoking emit for each fired window in order.
// Returns aggregate stats. The run generates events a little past the
// final window boundary so late stragglers of the last window are
// accounted and the window always fires.
func (e *Engine) Run(emit func(WindowResult)) (Stats, error) {
	stats, _, err := e.run(emit)
	return stats, err
}

func (e *Engine) run(emit func(WindowResult)) (Stats, map[int]int64, error) {
	cfg := e.cfg
	interval := time.Second / time.Duration(cfg.Rate)
	if interval <= 0 {
		return Stats{}, nil, fmt.Errorf("stream: rate %d too high for ns resolution", cfg.Rate)
	}
	runEnd := cfg.WindowSize * time.Duration(cfg.NumWindows)
	// Grace period past the end so the final watermark passes runEnd:
	// one window of extra events (discarded, they belong to window
	// NumWindows) is plenty for realistic delay tails.
	genEnd := runEnd + cfg.WindowSize

	var (
		stats     Stats
		inFlight  arrivalHeap
		open                    = map[int]*windowState{}
		watermark time.Duration = -1
		nextFire  int           // next window index to fire
	)

	fire := func(w *windowState) error {
		merged := cfg.Builder()
		for _, p := range w.partials {
			if p == nil {
				continue
			}
			if err := merged.Merge(p); err != nil {
				return fmt.Errorf("stream: window merge: %w", err)
			}
		}
		emit(WindowResult{
			Index:    w.index,
			Start:    cfg.WindowSize * time.Duration(w.index),
			End:      cfg.WindowSize * time.Duration(w.index+1),
			Sketch:   merged,
			Values:   w.values,
			Accepted: w.accepted,
		})
		return nil
	}

	lateOf := map[int]int64{} // window index → late drops (post-fire arrivals)

	process := func(ev Event) error {
		wi := int(ev.GenTime / cfg.WindowSize)
		if wi < nextFire {
			// Window already fired: late event, dropped.
			if wi >= 0 && wi < cfg.NumWindows {
				lateOf[wi]++
				stats.DroppedLate++
			}
			return nil
		}
		if wi < cfg.NumWindows {
			w := open[wi]
			if w == nil {
				w = &windowState{index: wi, partials: make([]sketch.Sketch, cfg.Partitions)}
				open[wi] = w
			}
			p := ev.Partition % cfg.Partitions
			if w.partials[p] == nil {
				w.partials[p] = cfg.Builder()
			}
			w.partials[p].Insert(ev.Value)
			w.accepted++
			stats.Accepted++
			if cfg.CollectValues {
				w.values = append(w.values, ev.Value)
			}
		}
		if ev.GenTime > watermark {
			watermark = ev.GenTime
			// Fire every window whose end the watermark has passed.
			for nextFire < cfg.NumWindows {
				end := cfg.WindowSize * time.Duration(nextFire+1)
				if watermark < end {
					break
				}
				w := open[nextFire]
				if w == nil {
					w = &windowState{index: nextFire, partials: make([]sketch.Sketch, cfg.Partitions)}
				}
				delete(open, nextFire)
				// Late counts accrue after firing; attach the state so the
				// final accounting can pick them up via lateOf.
				if err := fire(w); err != nil {
					return err
				}
				nextFire++
			}
		}
		return nil
	}

	part := 0
	for gen := time.Duration(0); gen < genEnd; gen += interval {
		v := cfg.Values.Next()
		d := cfg.Delay.Delay()
		stats.Generated++
		heap.Push(&inFlight, Event{GenTime: gen, Arrival: gen + d, Value: v, Partition: part})
		part++
		if part == cfg.Partitions {
			part = 0
		}
		// Any event generated later arrives at ≥ its own gen time ≥ gen,
		// so everything in flight with arrival ≤ gen is safe to process.
		for len(inFlight) > 0 && inFlight[0].Arrival <= gen {
			if err := process(heap.Pop(&inFlight).(Event)); err != nil {
				return stats, lateOf, err
			}
		}
	}
	for len(inFlight) > 0 {
		if err := process(heap.Pop(&inFlight).(Event)); err != nil {
			return stats, lateOf, err
		}
	}
	// Fire any windows still open (source exhausted before watermark
	// passed their end — only possible for the final window on extreme
	// delays).
	for ; nextFire < cfg.NumWindows; nextFire++ {
		w := open[nextFire]
		if w == nil {
			w = &windowState{index: nextFire, partials: make([]sketch.Sketch, cfg.Partitions)}
		}
		delete(open, nextFire)
		if err := fire(w); err != nil {
			return stats, lateOf, err
		}
	}
	return stats, lateOf, nil
}

// RunCollect is Run but returning the window results as a slice, with
// per-window late-drop counts filled in after the run completes.
func (e *Engine) RunCollect() ([]WindowResult, Stats, error) {
	var out []WindowResult
	stats, lateOf, err := e.run(func(r WindowResult) { out = append(out, r) })
	for i := range out {
		out[i].DroppedLate = lateOf[out[i].Index]
	}
	return out, stats, err
}
