package stream

import (
	"errors"
	"fmt"
	"math"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/budget"
	"repro/internal/checkpoint"
	"repro/internal/concurrent"
	"repro/internal/datagen"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/sketch"
)

// Config describes one streaming run: a source emitting Rate events/s for
// the run's duration, tumbling event-time windows of WindowSize, and a
// sketch under test.
type Config struct {
	// WindowSize is the tumbling window length (the study uses 20 s, with
	// 5 s and 10 s in the sensitivity analysis, Sec 4.7).
	WindowSize time.Duration
	// Slide, when in (0, WindowSize), switches the engine to sliding
	// windows of length WindowSize starting every Slide, computed by
	// pane-based sharing: events are inserted once into a sketch for
	// their non-overlapping pane of length gcd(WindowSize, Slide), and
	// each window is answered by merging its ~WindowSize/Slide
	// constituent panes instead of recomputing them. 0 (or Slide ==
	// WindowSize) keeps the tumbling fast path, bit-identical to before
	// the field existed. Window starts sit on the slide lattice; the
	// early windows whose nominal start precedes the stream origin are
	// emitted with Start clamped to 0, matching SlidingAssigner
	// (DESIGN.md §15). NumWindows counts emitted windows, so the run
	// spans (NumWindows-1)·Slide + WindowSize of event time. A pane is
	// sealed when the first window containing it fires; events arriving
	// for a sealed pane are dropped late from every remaining window
	// (the sharing trade-off, also §15).
	Slide time.Duration
	// DecayLambda, when positive, applies exponential time decay at
	// window assembly: each pane's sketch is down-weighted by
	// exp(-DecayLambda·age) before merging, where age is the gap in
	// seconds between the pane's end and the window's end (the newest
	// pane always has weight 1). Requires sliding mode (0 < Slide <
	// WindowSize) and a Builder whose product implements
	// sketch.CountScaler — the weighting clones the sealed pane sketch
	// and rescales the clone's count, so the pane itself stays exact
	// for later windows. 0 disables decay; a DecayLambda of 0 is
	// bit-identical to the undecayed sliding run.
	DecayLambda float64
	// Rate is the source's event rate in events per second (study: 50,000).
	Rate int
	// NumWindows is how many complete windows to run. The engine emits
	// exactly this many results; the source runs long enough to close the
	// final window.
	NumWindows int
	// Partitions is the number of partition-local sketches the stream is
	// split across; they are merged when a window fires. 1 disables
	// partitioning (a single sketch per window).
	Partitions int
	// Workers is the number of goroutines running the partition-local
	// sketch inserts. 0 or 1 runs everything on the caller's goroutine;
	// higher values consume fixed-size event batches over channels, with
	// windows fired at deterministic barrier points, so results are
	// bit-identical to the sequential path at any worker count. Workers
	// above Partitions are clamped (each partition is owned by exactly
	// one worker): the clamp increments Metrics.WorkersClamped and is
	// reported once per process on stderr, since a silently reduced
	// worker count is otherwise invisible to callers tuning parallelism.
	// Builder must be safe to call from multiple goroutines when
	// Workers > 1.
	Workers int
	// Values supplies the event payloads in generation order.
	Values datagen.Source
	// NewValues returns a fresh copy of the Values source, positioned at
	// its start. Sources are forward-only, so crash recovery re-derives
	// the event stream from a fresh source and fast-forwards it to the
	// checkpointed offset: Resume and RunRecovering require NewValues.
	// When set, every run draws from its own NewValues() result and
	// Values may be nil.
	NewValues func() datagen.Source
	// Delay is the network-delay model; nil means ZeroDelay.
	Delay DelayModel
	// NewDelay is NewValues for the delay model. Stateless models
	// (ZeroDelay, ConstantDelay) do not need it; a stateful model
	// (ExponentialDelay) must provide it for Resume to reproduce the
	// original delay sequence.
	NewDelay func() DelayModel
	// Builder constructs the sketch under test; one (per partition) per
	// window.
	Builder sketch.Builder
	// CollectValues materializes each window's accepted events in
	// WindowResult.Values so callers can compute exact ground truth.
	CollectValues bool
	// Metrics, when non-nil, receives engine-level counters (generated,
	// inserted, dropped-late, rejected, window fires, watermark lag,
	// batch-queue depth, checkpoint/restore activity) as the run
	// progresses. Counters accumulate across runs sharing the same
	// EngineMetrics. Nil disables recording at the cost of one
	// predictable branch per event.
	Metrics *obs.EngineMetrics
	// CheckpointStore, when non-nil, enables fault tolerance: the engine
	// persists a sealed snapshot of its full state (watermark, stats,
	// in-flight events, per-window × per-partition sketch blobs, source
	// offset) at window-fire barriers. Resume restores the newest valid
	// snapshot and replays the rest of the run bit-identically.
	CheckpointStore checkpoint.Store
	// CheckpointEvery is the snapshot cadence in fired windows; values
	// below 1 default to 1 (a snapshot after every fired window).
	CheckpointEvery int
	// Faults, when non-nil, injects the configured deterministic faults
	// (worker panics, partition stalls, duplicate batch deliveries) into
	// the run — see internal/faultinject. Nil costs one predictable
	// branch per event on the insert path.
	Faults *faultinject.Plan
	// MemoryBudget, when positive, caps the engine's live sketch
	// footprint (sketch.FootprintOf over every open partition sketch
	// and sealed pane) at roughly this many bytes, enforced by a
	// governor at deterministic points (every budget.BaseInterval
	// processed events while binding — backing off when slack — and at
	// fire barriers) through a three-rung
	// degradation ladder: (1) degrade the largest sketches in place
	// (sketch.Degrader — KLL/REQ shrink k, DDSketch folds its lowest
	// buckets, UDDSketch collapses uniformly), (2) in sliding mode,
	// coarsen the oldest sealed panes by merging them into their
	// successors early when every remaining window sees both, and
	// (3) as a last resort shed new events, counted in
	// Stats.ShedBudget — never a panic. Fired windows report the
	// degradations applied to their data and the resulting accuracy
	// bound (WindowResult.Degradations / AccuracyBound). With
	// Workers > 1 each worker governs its own partitions over an equal
	// share of the budget and only rung 1 runs there (no shedding), so
	// a budgeted parallel run stays deterministic for a fixed worker
	// count but is not bit-identical across worker counts the way
	// unbudgeted runs are. 0 disables the governor; the unbudgeted hot
	// path pays one predictable branch per event.
	MemoryBudget int
	// SharedSketch, when non-nil, additionally feeds every accepted
	// event into the given concurrent shared sketch, so live quantile
	// queries can be answered mid-window (and mid-run) through
	// SharedSketch.Snapshot() while the engine keeps inserting — the
	// windowed results above are unaffected. The serial path inserts
	// through writer handle 0 on the engine goroutine; with Workers > 1
	// each worker w inserts through handle w, so SharedSketch must have
	// NumWriters() >= the (clamped) worker count. Writer buffers are
	// flushed when the run completes (workers flush at shutdown), after
	// which the shared sketch reflects every accepted event of the run
	// exactly; snapshots taken mid-run may trail by at most
	// SharedSketch.MaxRelaxation() buffered events. The shared sketch
	// accumulates across all windows of the run and is NOT part of
	// checkpoints: a resumed run replays events into it, so pass a
	// fresh shared sketch per resumed run if its count must stay exact.
	SharedSketch concurrent.Shared
}

// WindowResult is the outcome of one fired tumbling window.
type WindowResult struct {
	// Index is the zero-based window sequence number.
	Index int
	// Start and End delimit the window's event-time range [Start, End).
	Start, End time.Duration
	// Sketch summarizes every accepted event (partition sketches merged).
	Sketch sketch.Sketch
	// Values holds the accepted events' payloads when
	// Config.CollectValues is set; nil otherwise.
	Values []float64
	// Accepted is the number of events included in the window.
	Accepted int64
	// DroppedLate is the number of events belonging to this window that
	// arrived after it fired and were discarded (Sec 2.6). Late events by
	// definition show up after the window has been emitted, so this field
	// is CONTRACTUALLY only populated by RunCollect, which patches the
	// collected results after the run completes; streaming Run callbacks
	// always observe 0 here, and the run-wide total lives in
	// Stats.DroppedLate either way. TestDroppedLateContract enforces
	// this.
	DroppedLate int64
	// PaneCounts, set only in sliding (pane-sharing) mode, holds the
	// accepted-event count of each constituent pane, oldest first — one
	// entry per pane of the window, zero for panes that saw no events.
	// With CollectValues set, Values is the concatenation of the panes'
	// values in the same order, so PaneCounts delimits the per-pane
	// segments: callers computing decayed ground truth weight segment i
	// by exp(-λ·(End - paneEnd_i)) where paneEnd_i is (i+1) pane
	// lengths after Start... precisely, the window's first pane ends at
	// End - (len(PaneCounts)-1)·paneLen and each later pane one paneLen
	// after, with paneLen = gcd(WindowSize, Slide). Budget coarsening
	// (Config.MemoryBudget rung 2) can fold a pane into its successor,
	// leaving a 0 entry whose events are counted one slot later.
	PaneCounts []int
	// Degradations counts the budget-governor degradations applied to
	// this window's data (its open partition sketches, and in sliding
	// mode its constituent sealed panes). Always 0 without
	// Config.MemoryBudget. Not persisted across checkpoint resume —
	// the degraded sketch state itself is exact in the snapshot, only
	// the count resets.
	Degradations int
	// AccuracyBound is the merged sketch's self-reported error bound
	// (sketch.AccuracyBounder: rank-error estimate for KLL/REQ,
	// relative α for DDSketch/UDDSketch) at fire time, which grows as
	// the budget governor degrades the sketch. 0 when the sketch does
	// not implement AccuracyBounder (moments).
	AccuracyBound float64
}

// Stats aggregates engine-level counters over one run. Every generated
// event is accounted for exactly once:
//
//	Generated == Accepted + DroppedLate + RejectedInput + ShedBudget
//
// holds on the serial, parallel and generic paths alike (enforced by
// TestStatsIdentity / TestParallelDrainLosesNothing), and survives a
// crash-and-resume cycle intact (TestCrashRecoveryDeterminism).
// ShedBudget is 0 without Config.MemoryBudget, reducing the identity
// to its historical three-term form.
type Stats struct {
	// Generated is the number of events the source produced within the
	// measured run (GenTime < NumWindows·WindowSize). Grace-period
	// events — generated past the final window boundary solely to push
	// the watermark across it — are excluded: they belong to no tracked
	// window and would otherwise skew LossRate.
	Generated int64
	// Accepted is the total number of events included in fired windows.
	Accepted int64
	// DroppedLate is the total number of late-dropped events.
	DroppedLate int64
	// RejectedInput is the total number of events whose payload was
	// invalid (NaN or ±Inf) and was discarded before reaching any
	// sketch. Rejected events still advance the watermark — their
	// timestamps are sound, only the payloads are not.
	RejectedInput int64
	// ShedBudget is the total number of valid, on-time events dropped
	// because Config.MemoryBudget was exhausted past every degradation
	// rung. Shed events still advance the watermark. Always 0 without
	// a budget, and on the parallel path (which degrades but never
	// sheds).
	ShedBudget int64
}

// LossRate returns the fraction of generated events dropped as late.
func (s Stats) LossRate() float64 {
	if s.Generated == 0 {
		return 0
	}
	return float64(s.DroppedLate) / float64(s.Generated)
}

// partialSink owns the per-window, per-partition sketches of a run. The
// engine drives it with the accepted-event stream in arrival order and
// collects each window's partials at its fire barrier. Implementations:
// seqSink (in-line inserts) and workerPool (batched inserts on worker
// goroutines).
type partialSink interface {
	// insert routes one accepted event to partition part of window win.
	insert(win, part int, v float64)
	// partials returns window win's partition sketches, indexed by
	// partition (nil entries for partitions that saw no events), with
	// every insert for that window applied, plus the number of budget
	// degradations the sink applied to them (workerPool counts its
	// workers' in-sink degradations; seqSink reports 0 because the
	// engine's governor attributes serial degradations to windowState
	// directly). It is the fire barrier: the window's state is removed
	// from the sink.
	partials(win int) ([]sketch.Sketch, int)
	// snapshot returns, for every open window, one sealed checkpoint
	// envelope per partition holding that partition sketch's serialized
	// state (nil entries for partitions without a sketch). It is a
	// barrier: every insert issued before the call is reflected.
	snapshot() (map[int][][]byte, error)
	// restore seeds window win's partition sketches from a decoded
	// snapshot. It must be called before any insert for that window.
	restore(win int, parts []sketch.Sketch)
	// err reports a failure captured inside the sink (a worker panic)
	// since the run began; the engine checks it at every fire barrier.
	err() error
	// close releases worker resources; the sink is unusable afterwards.
	close()
}

// seqSink is the single-threaded partialSink: inserts run on the
// engine's goroutine as the events are processed. With a budget
// governor wired (gov non-nil) every partition sketch is tracked under
// the id win·partitions+part from creation to its fire barrier, so the
// engine's enforcement passes see the sink's full footprint.
type seqSink struct {
	builder    sketch.Builder
	partitions int
	open       map[int][]sketch.Sketch
	gov        *budget.Governor // nil without Config.MemoryBudget
}

func newSeqSink(builder sketch.Builder, partitions int, gov *budget.Governor) *seqSink {
	return &seqSink{builder: builder, partitions: partitions, open: make(map[int][]sketch.Sketch), gov: gov}
}

// govID is the governor tracking id of (win, part): deterministic, so
// degradation order is reproducible run to run.
func (s *seqSink) govID(win, part int) int64 {
	return int64(win)*int64(s.partitions) + int64(part)
}

func (s *seqSink) insert(win, part int, v float64) {
	ps := s.open[win]
	if ps == nil {
		ps = make([]sketch.Sketch, s.partitions)
		s.open[win] = ps
	}
	if ps[part] == nil {
		ps[part] = s.builder()
		s.gov.Track(s.govID(win, part), ps[part])
	}
	ps[part].Insert(v)
}

func (s *seqSink) partials(win int) ([]sketch.Sketch, int) {
	ps := s.open[win]
	delete(s.open, win)
	if s.gov != nil {
		for part := range ps {
			s.gov.Untrack(s.govID(win, part))
		}
	}
	return ps, 0
}

func (s *seqSink) snapshot() (map[int][][]byte, error) {
	// Seal windows in ascending index order: map-order iteration would
	// make the encode call sequence — and which window's failure is
	// reported when several seals error — depend on the iteration seed.
	wins := make([]int, 0, len(s.open))
	for win := range s.open {
		wins = append(wins, win)
	}
	sort.Ints(wins)
	out := make(map[int][][]byte, len(s.open))
	for _, win := range wins {
		ps := s.open[win]
		blobs := make([][]byte, s.partitions)
		for part, sk := range ps {
			if sk == nil {
				continue
			}
			sealed, err := sealPartial(sk)
			if err != nil {
				return nil, err
			}
			blobs[part] = sealed
		}
		out[win] = blobs
	}
	return out, nil
}

func (s *seqSink) restore(win int, parts []sketch.Sketch) {
	s.open[win] = parts
	if s.gov != nil {
		for part, sk := range parts {
			if sk != nil {
				s.gov.Track(s.govID(win, part), sk)
			}
		}
	}
}

func (s *seqSink) err() error { return nil }

func (s *seqSink) close() {}

// sealPartial serializes one partition sketch and wraps it in a named,
// checksummed checkpoint envelope.
func sealPartial(sk sketch.Sketch) ([]byte, error) {
	blob, err := sk.MarshalBinary()
	if err != nil {
		return nil, fmt.Errorf("stream: snapshot partial: %w", err)
	}
	return checkpoint.Seal(sk.Name(), blob)
}

// windowState accumulates the engine-side counters of one open window;
// the partition sketches live in the partialSink.
type windowState struct {
	index    int
	values   []float64
	accepted int64
	degrades int // budget degradations applied to this window's sketches
}

// Engine runs a configured streaming job.
type Engine struct {
	cfg Config
}

// NewEngine validates cfg and returns a runnable engine.
func NewEngine(cfg Config) (*Engine, error) {
	if cfg.WindowSize <= 0 {
		return nil, errors.New("stream: WindowSize must be positive")
	}
	if cfg.Rate <= 0 {
		return nil, errors.New("stream: Rate must be positive")
	}
	if cfg.NumWindows <= 0 {
		return nil, errors.New("stream: NumWindows must be positive")
	}
	if cfg.Slide < 0 || cfg.Slide > cfg.WindowSize {
		return nil, fmt.Errorf("stream: Slide %v outside (0, WindowSize=%v] (0 selects tumbling windows)", cfg.Slide, cfg.WindowSize)
	}
	if cfg.DecayLambda < 0 || math.IsNaN(cfg.DecayLambda) || math.IsInf(cfg.DecayLambda, 0) {
		return nil, errors.New("stream: DecayLambda must be finite and non-negative")
	}
	if cfg.Partitions <= 0 {
		cfg.Partitions = 1
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.Workers > cfg.Partitions {
		warnWorkersClamped(cfg.Workers, cfg.Partitions, cfg.Metrics)
		cfg.Workers = cfg.Partitions
	}
	if cfg.Values == nil && cfg.NewValues == nil {
		return nil, errors.New("stream: Values source (or NewValues factory) is required")
	}
	if cfg.SharedSketch != nil && cfg.SharedSketch.NumWriters() < cfg.Workers {
		return nil, fmt.Errorf("stream: SharedSketch has %d writer handles, need >= %d (one per worker)",
			cfg.SharedSketch.NumWriters(), cfg.Workers)
	}
	if cfg.Builder == nil {
		return nil, errors.New("stream: Builder is required")
	}
	if cfg.DecayLambda > 0 {
		if cfg.Slide == 0 || cfg.Slide == cfg.WindowSize {
			return nil, errors.New("stream: DecayLambda requires sliding mode (0 < Slide < WindowSize)")
		}
		probe := cfg.Builder()
		if _, ok := probe.(sketch.CountScaler); !ok {
			return nil, fmt.Errorf("stream: DecayLambda requires a sketch.CountScaler, %s does not implement it", probe.Name())
		}
	}
	if cfg.Delay == nil {
		cfg.Delay = ZeroDelay{}
	}
	if cfg.CheckpointStore != nil && cfg.CheckpointEvery < 1 {
		cfg.CheckpointEvery = 1
	}
	return &Engine{cfg: cfg}, nil
}

// workersClampedOnce gates the process-wide stderr notice about worker
// clamping; the obs counter records every clamped construction.
var workersClampedOnce sync.Once

// warnWorkersClamped records a Workers > Partitions clamp: the obs
// counter (when metrics are wired) on every occurrence, plus a one-time
// stderr notice so interactive callers tuning worker counts see why
// added workers change nothing.
func warnWorkersClamped(workers, partitions int, met *obs.EngineMetrics) {
	if met != nil {
		met.WorkersClamped.Inc()
	}
	workersClampedOnce.Do(func() {
		fmt.Fprintf(os.Stderr,
			"stream: Workers=%d exceeds Partitions=%d; clamping to %d (each partition is owned by exactly one worker — raise Partitions to use more workers)\n",
			workers, partitions, partitions)
	})
}

// Run executes the job, invoking emit for each fired window in order.
// Returns aggregate stats. The run generates events a little past the
// final window boundary so late stragglers of the last window are
// accounted and the window always fires.
func (e *Engine) Run(emit func(WindowResult)) (Stats, error) {
	stats, _, err := e.run(emit)
	return stats, err
}

func (e *Engine) run(emit func(WindowResult)) (Stats, map[int]int64, error) {
	rs, err := e.newRunState(emit)
	if err != nil {
		return Stats{}, nil, err
	}
	defer rs.sink.close()
	err = rs.loop()
	if rs.sharedW != nil {
		// Quiesce the serial path's shared writer so post-run snapshots
		// are exact. (Parallel-path writers flush at worker shutdown in
		// the deferred close.)
		rs.sharedW.Flush()
	}
	return rs.stats, rs.lateOf, err
}

// runState is one run's mutable state, factored out of the run loop so
// checkpoint restore can rebuild it mid-stream: a resumed run and an
// uninterrupted run traverse the identical state sequence from the
// snapshot point on.
type runState struct {
	cfg  Config
	emit func(WindowResult)
	met  *obs.EngineMetrics
	sink partialSink

	vals  datagen.Source
	delay DelayModel

	interval time.Duration
	runEnd   time.Duration
	genEnd   time.Duration

	stats     Stats
	inFlight  minHeap[Event]
	open      map[int]*windowState
	watermark time.Duration
	nextFire  int           // next window index to fire
	lateOf    map[int]int64 // window index → late drops (post-fire arrivals)

	// Pane-sharing sliding mode (0 < Slide < WindowSize). The open map
	// above is keyed by pane index instead of window index, and fired
	// windows are assembled from sealed panes (panes.go).
	paneMode    bool
	paneSize    time.Duration       // gcd(WindowSize, Slide)
	panesPerGap int                 // Slide / paneSize
	panesPerWin int                 // WindowSize / paneSize
	firstOff    int                 // 1 - ceil(WindowSize/Slide): slide-lattice offset of window 0
	numPanes    int                 // panes covering the run: paneEnd(NumWindows-1)
	nextSeal    int                 // first pane index not yet sealed
	sealed      map[int]*sealedPane // sealed, still-referenced panes

	drawn     int64  // source draws so far (event n was draw n, zero-based)
	fired     uint64 // windows fired so far (checkpoint sequence basis)
	sinceSnap int    // fires since the last snapshot
	snapEvery int    // snapshot cadence; math.MaxInt disables

	builderName string // cached Builder product name for envelopes

	serialFaults  *faultinject.Plan // non-nil only on the serial insert path
	serialInserts int64             // engine-goroutine ("worker 0") insert count
	partInserts   []int64           // per-partition insert counts (fault hooks)

	sharedW *concurrent.Writer // serial-path shared-sketch handle (writer 0)

	// Memory-budget governor state (Config.MemoryBudget). gov tracks
	// the serial sink's open sketches and, in pane mode, the sealed
	// pane sketches (under negative ids); with Workers > 1 the workers
	// govern their own sketches and gov covers only sealed panes.
	gov          *budget.Governor
	shedding     bool // rung 3 engaged: drop new events until under budget
	sinceEnforce int  // events processed since the last enforcement pass
	enforceAt    int  // cached gov.Interval(), refreshed by enforceBudget
}

func (e *Engine) newRunState(emit func(WindowResult)) (*runState, error) {
	cfg := e.cfg
	interval := time.Second / time.Duration(cfg.Rate)
	if interval <= 0 {
		return nil, fmt.Errorf("stream: rate %d too high for ns resolution", cfg.Rate)
	}
	runEnd := cfg.WindowSize * time.Duration(cfg.NumWindows)
	rs := &runState{
		cfg:      cfg,
		emit:     emit,
		met:      cfg.Metrics,
		vals:     cfg.Values,
		delay:    cfg.Delay,
		interval: interval,
		runEnd:   runEnd,
		// Grace period past the end so the final watermark passes runEnd:
		// one window of extra events (discarded, they belong to window
		// NumWindows) is plenty for realistic delay tails.
		genEnd:    runEnd + cfg.WindowSize,
		open:      map[int]*windowState{},
		watermark: -1,
		lateOf:    map[int]int64{},
		snapEvery: math.MaxInt,
	}
	if cfg.Slide > 0 && cfg.Slide < cfg.WindowSize {
		rs.initPanes()
	}
	if cfg.NewValues != nil {
		rs.vals = cfg.NewValues()
	}
	if cfg.NewDelay != nil {
		rs.delay = cfg.NewDelay()
	}
	if cfg.Workers > 1 {
		// Workers govern their own partitions over equal budget shares;
		// in pane mode half the budget is reserved for the coordinator's
		// sealed panes (which live outside the workers).
		workerBudget := cfg.MemoryBudget
		if workerBudget > 0 && rs.paneMode {
			workerBudget /= 2
		}
		rs.sink = newWorkerPool(cfg.Builder, cfg.Partitions, cfg.Workers, cfg.Metrics, cfg.Faults, cfg.SharedSketch, workerBudget)
		if rs.paneMode {
			rs.gov = budget.New(cfg.MemoryBudget / 2)
			rs.enforceAt = rs.gov.Interval()
		}
	} else {
		rs.gov = budget.New(cfg.MemoryBudget)
		rs.enforceAt = rs.gov.Interval()
		rs.sink = newSeqSink(cfg.Builder, cfg.Partitions, rs.gov)
		rs.serialFaults = cfg.Faults
		if cfg.SharedSketch != nil {
			rs.sharedW = cfg.SharedSketch.Writer(0)
		}
	}
	if rs.serialFaults != nil {
		rs.partInserts = make([]int64, cfg.Partitions)
	}
	if cfg.CheckpointStore != nil {
		rs.snapEvery = cfg.CheckpointEvery
		rs.builderName = cfg.Builder().Name()
	}
	return rs, nil
}

// fire merges window w's partition sketches and emits the result. It is
// the barrier at which worker failures surface and checkpoint cadence
// advances.
func (rs *runState) fire(w *windowState) error {
	merged := rs.cfg.Builder()
	parts, sinkDeg := rs.sink.partials(w.index)
	if err := rs.sink.err(); err != nil {
		return err
	}
	for _, p := range parts {
		if p == nil {
			continue
		}
		if err := merged.Merge(p); err != nil {
			return fmt.Errorf("stream: window merge: %w", err)
		}
	}
	if rs.met != nil {
		rs.met.WindowFires.Inc()
	}
	rs.fired++
	rs.sinceSnap++
	rs.emit(WindowResult{
		Index:         w.index,
		Start:         rs.cfg.WindowSize * time.Duration(w.index),
		End:           rs.cfg.WindowSize * time.Duration(w.index+1),
		Sketch:        merged,
		Values:        w.values,
		Accepted:      w.accepted,
		Degradations:  w.degrades + sinkDeg,
		AccuracyBound: accuracyBoundOf(merged),
	})
	return nil
}

// accuracyBoundOf reads a sketch's self-reported error bound, 0 when
// the sketch type has none.
func accuracyBoundOf(sk sketch.Sketch) float64 {
	if ab, ok := sk.(sketch.AccuracyBounder); ok {
		return ab.AccuracyBound()
	}
	return 0
}

// process routes one arrived event: reject invalid payloads, drop late
// events, insert the rest, then advance the watermark and fire every
// window whose end it passed. Pane mode routes by pane instead of
// window (routePaned) but shares the watermark/fire machinery.
func (rs *runState) process(ev Event) error {
	cfg := &rs.cfg
	if rs.paneMode {
		rs.routePaned(ev)
	} else {
		rs.routeTumbling(ev)
	}
	if rs.gov != nil {
		rs.sinceEnforce++
		if rs.sinceEnforce >= rs.enforceAt {
			rs.enforceBudget()
		}
	}
	if ev.GenTime > rs.watermark {
		rs.watermark = ev.GenTime
		// Fire every window whose end the watermark has passed.
		fired := false
		for rs.nextFire < cfg.NumWindows && rs.watermark >= rs.windowEndTime(rs.nextFire) {
			if err := rs.fireNext(); err != nil {
				return err
			}
			fired = true
		}
		if fired && rs.gov != nil {
			// Fired windows untracked their sketches; re-evaluate so a
			// shedding engine recovers as soon as memory is released.
			rs.enforceBudget()
		}
	}
	if rs.met != nil {
		// How far arrival order ran ahead of event time: the delay
		// model's effective disorder, as seen by the engine.
		if lag := int64(ev.Arrival - rs.watermark); lag > 0 {
			rs.met.MaxWatermarkLagNS.Max(lag)
		}
	}
	return nil
}

// routeTumbling classifies one event on the tumbling path: reject,
// late-drop, or insert into its window.
func (rs *runState) routeTumbling(ev Event) {
	cfg := &rs.cfg
	wi := int(ev.GenTime / cfg.WindowSize)
	switch {
	case math.IsNaN(ev.Value) || math.IsInf(ev.Value, 0):
		// Poisoned payload: rejected before reaching any sketch or
		// the collected values. The event still advances the
		// watermark in process — its timestamp is sound. Counted only
		// inside the measured run so the Stats identity stays exact.
		if wi >= 0 && wi < cfg.NumWindows {
			rs.stats.RejectedInput++
			if rs.met != nil {
				rs.met.RejectedInput.Inc()
			}
		}
	case wi < rs.nextFire:
		// Window already fired: late event, dropped. Its GenTime is
		// below the watermark by construction, so the watermark
		// advance in process is a no-op.
		if wi >= 0 && wi < cfg.NumWindows {
			rs.lateOf[wi]++
			rs.stats.DroppedLate++
			if rs.met != nil {
				rs.met.DroppedLate.Inc()
			}
		}
	case wi < cfg.NumWindows:
		if rs.shedding {
			// Budget exhausted past every degradation rung: the event is
			// shed, counted, and still advances the watermark in process.
			rs.stats.ShedBudget++
			if rs.met != nil {
				rs.met.BudgetShed.Inc()
			}
			return
		}
		w := rs.open[wi]
		if w == nil {
			w = &windowState{index: wi}
			rs.open[wi] = w
		}
		part := ev.Partition % cfg.Partitions
		if rs.serialFaults != nil {
			rs.serialFaults.OnEvent(0, part, rs.serialInserts, rs.partInserts[part])
			rs.serialInserts++
			rs.partInserts[part]++
		}
		rs.sink.insert(wi, part, ev.Value)
		if rs.sharedW != nil {
			rs.sharedW.Insert(ev.Value)
		}
		w.accepted++
		rs.stats.Accepted++
		if rs.met != nil {
			rs.met.Inserted.Inc()
		}
		if cfg.CollectValues {
			w.values = append(w.values, ev.Value)
		}
	}
}

// windowEndTime is the event time at which window k fires.
func (rs *runState) windowEndTime(k int) time.Duration {
	if rs.paneMode {
		return rs.paneSize * time.Duration(rs.paneEnd(k))
	}
	return rs.cfg.WindowSize * time.Duration(k+1)
}

// fireNext fires window nextFire via the mode's fire path and advances
// nextFire.
func (rs *runState) fireNext() error {
	if rs.paneMode {
		if err := rs.firePaned(rs.nextFire); err != nil {
			return err
		}
		rs.nextFire++
		return nil
	}
	w := rs.open[rs.nextFire]
	if w == nil {
		w = &windowState{index: rs.nextFire}
	}
	delete(rs.open, rs.nextFire)
	// Late counts accrue after firing; the final accounting picks them
	// up via lateOf.
	if err := rs.fire(w); err != nil {
		return err
	}
	rs.nextFire++
	return nil
}

// drain processes every in-flight event that has arrived by gen. Any
// event generated later arrives at ≥ its own gen time ≥ gen, so
// everything in flight with arrival ≤ gen is safe to process.
func (rs *runState) drain(gen time.Duration) error {
	for rs.inFlight.Len() > 0 && rs.inFlight.Min().Arrival <= gen {
		if err := rs.process(rs.inFlight.Pop()); err != nil {
			return err
		}
		if rs.sinceSnap >= rs.snapEvery {
			if err := rs.maybeSnapshot(); err != nil {
				return err
			}
		}
	}
	return nil
}

// loop is the run driver: generate, drain, fire, until the source is
// exhausted and every tracked window has fired. On a resumed state
// (drawn > 0) it first finishes the arrival drain the snapshot
// interrupted, then continues generating from the checkpointed source
// offset — the exact state sequence of an uninterrupted run. Panics on
// the engine goroutine (including injected faults on the serial insert
// path) are converted into a *PanicError result.
func (rs *runState) loop() (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = asPanicError(r)
		}
	}()
	cfg := rs.cfg
	if rs.drawn > 0 {
		if err := rs.drain(rs.interval * time.Duration(rs.drawn-1)); err != nil {
			return err
		}
	}
	part := int(rs.drawn % int64(cfg.Partitions))
	for gen := rs.interval * time.Duration(rs.drawn); gen < rs.genEnd; gen += rs.interval {
		v := rs.vals.Next()
		d := rs.delay.Delay()
		if gen < rs.runEnd {
			// Grace-period events (gen ≥ runEnd) exist only to push the
			// watermark past the final boundary; they belong to no
			// tracked window and are excluded from the accounting so
			// Generated == Accepted + DroppedLate + RejectedInput holds
			// exactly.
			rs.stats.Generated++
			if rs.met != nil {
				rs.met.Generated.Inc()
			}
		}
		rs.drawn++
		rs.inFlight.Push(Event{GenTime: gen, Arrival: gen + d, Value: v, Partition: part})
		part++
		if part == cfg.Partitions {
			part = 0
		}
		if err := rs.drain(gen); err != nil {
			return err
		}
	}
	for rs.inFlight.Len() > 0 {
		if err := rs.process(rs.inFlight.Pop()); err != nil {
			return err
		}
		if rs.sinceSnap >= rs.snapEvery {
			if err := rs.maybeSnapshot(); err != nil {
				return err
			}
		}
	}
	// Fire any windows still open (source exhausted before watermark
	// passed their end — only possible for the final window on extreme
	// delays).
	for rs.nextFire < cfg.NumWindows {
		if err := rs.fireNext(); err != nil {
			return err
		}
	}
	return nil
}

// RunCollect is Run but returning the window results as a slice, with
// per-window late-drop counts filled in after the run completes.
func (e *Engine) RunCollect() ([]WindowResult, Stats, error) {
	var out []WindowResult
	stats, lateOf, err := e.run(func(r WindowResult) { out = append(out, r) })
	for i := range out {
		out[i].DroppedLate = lateOf[out[i].Index]
	}
	return out, stats, err
}
