package stream

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/datagen"
	"repro/internal/obs"
	"repro/internal/sketch"
)

// Config describes one streaming run: a source emitting Rate events/s for
// the run's duration, tumbling event-time windows of WindowSize, and a
// sketch under test.
type Config struct {
	// WindowSize is the tumbling window length (the study uses 20 s, with
	// 5 s and 10 s in the sensitivity analysis, Sec 4.7).
	WindowSize time.Duration
	// Rate is the source's event rate in events per second (study: 50,000).
	Rate int
	// NumWindows is how many complete windows to run. The engine emits
	// exactly this many results; the source runs long enough to close the
	// final window.
	NumWindows int
	// Partitions is the number of partition-local sketches the stream is
	// split across; they are merged when a window fires. 1 disables
	// partitioning (a single sketch per window).
	Partitions int
	// Workers is the number of goroutines running the partition-local
	// sketch inserts. 0 or 1 runs everything on the caller's goroutine;
	// higher values consume fixed-size event batches over channels, with
	// windows fired at deterministic barrier points, so results are
	// bit-identical to the sequential path at any worker count. Workers
	// above Partitions are clamped (each partition is owned by exactly
	// one worker). Builder must be safe to call from multiple goroutines
	// when Workers > 1.
	Workers int
	// Values supplies the event payloads in generation order.
	Values datagen.Source
	// Delay is the network-delay model; nil means ZeroDelay.
	Delay DelayModel
	// Builder constructs the sketch under test; one (per partition) per
	// window.
	Builder sketch.Builder
	// CollectValues materializes each window's accepted events in
	// WindowResult.Values so callers can compute exact ground truth.
	CollectValues bool
	// Metrics, when non-nil, receives engine-level counters (generated,
	// inserted, dropped-late, rejected, window fires, watermark lag,
	// batch-queue depth) as the run progresses. Counters accumulate
	// across runs sharing the same EngineMetrics. Nil disables recording
	// at the cost of one predictable branch per event.
	Metrics *obs.EngineMetrics
}

// WindowResult is the outcome of one fired tumbling window.
type WindowResult struct {
	// Index is the zero-based window sequence number.
	Index int
	// Start and End delimit the window's event-time range [Start, End).
	Start, End time.Duration
	// Sketch summarizes every accepted event (partition sketches merged).
	Sketch sketch.Sketch
	// Values holds the accepted events' payloads when
	// Config.CollectValues is set; nil otherwise.
	Values []float64
	// Accepted is the number of events included in the window.
	Accepted int64
	// DroppedLate is the number of events belonging to this window that
	// arrived after it fired and were discarded (Sec 2.6). Late events by
	// definition show up after the window has been emitted, so this field
	// is CONTRACTUALLY only populated by RunCollect, which patches the
	// collected results after the run completes; streaming Run callbacks
	// always observe 0 here, and the run-wide total lives in
	// Stats.DroppedLate either way. TestDroppedLateContract enforces
	// this.
	DroppedLate int64
}

// Stats aggregates engine-level counters over one run. Every generated
// event is accounted for exactly once:
//
//	Generated == Accepted + DroppedLate + RejectedInput
//
// holds on the serial, parallel and generic paths alike (enforced by
// TestStatsIdentity / TestParallelDrainLosesNothing).
type Stats struct {
	// Generated is the number of events the source produced within the
	// measured run (GenTime < NumWindows·WindowSize). Grace-period
	// events — generated past the final window boundary solely to push
	// the watermark across it — are excluded: they belong to no tracked
	// window and would otherwise skew LossRate.
	Generated int64
	// Accepted is the total number of events included in fired windows.
	Accepted int64
	// DroppedLate is the total number of late-dropped events.
	DroppedLate int64
	// RejectedInput is the total number of events whose payload was
	// invalid (NaN or ±Inf) and was discarded before reaching any
	// sketch. Rejected events still advance the watermark — their
	// timestamps are sound, only the payloads are not.
	RejectedInput int64
}

// LossRate returns the fraction of generated events dropped as late.
func (s Stats) LossRate() float64 {
	if s.Generated == 0 {
		return 0
	}
	return float64(s.DroppedLate) / float64(s.Generated)
}

// partialSink owns the per-window, per-partition sketches of a run. The
// engine drives it with the accepted-event stream in arrival order and
// collects each window's partials at its fire barrier. Implementations:
// seqSink (in-line inserts) and workerPool (batched inserts on worker
// goroutines).
type partialSink interface {
	// insert routes one accepted event to partition part of window win.
	insert(win, part int, v float64)
	// partials returns window win's partition sketches, indexed by
	// partition (nil entries for partitions that saw no events), with
	// every insert for that window applied. It is the fire barrier: the
	// window's state is removed from the sink.
	partials(win int) []sketch.Sketch
	// close releases worker resources; the sink is unusable afterwards.
	close()
}

// seqSink is the single-threaded partialSink: inserts run on the
// engine's goroutine as the events are processed.
type seqSink struct {
	builder    sketch.Builder
	partitions int
	open       map[int][]sketch.Sketch
}

func newSeqSink(builder sketch.Builder, partitions int) *seqSink {
	return &seqSink{builder: builder, partitions: partitions, open: make(map[int][]sketch.Sketch)}
}

func (s *seqSink) insert(win, part int, v float64) {
	ps := s.open[win]
	if ps == nil {
		ps = make([]sketch.Sketch, s.partitions)
		s.open[win] = ps
	}
	if ps[part] == nil {
		ps[part] = s.builder()
	}
	ps[part].Insert(v)
}

func (s *seqSink) partials(win int) []sketch.Sketch {
	ps := s.open[win]
	delete(s.open, win)
	return ps
}

func (s *seqSink) close() {}

// windowState accumulates the engine-side counters of one open window;
// the partition sketches live in the partialSink.
type windowState struct {
	index    int
	values   []float64
	accepted int64
}

// Engine runs a configured streaming job.
type Engine struct {
	cfg Config
}

// NewEngine validates cfg and returns a runnable engine.
func NewEngine(cfg Config) (*Engine, error) {
	if cfg.WindowSize <= 0 {
		return nil, errors.New("stream: WindowSize must be positive")
	}
	if cfg.Rate <= 0 {
		return nil, errors.New("stream: Rate must be positive")
	}
	if cfg.NumWindows <= 0 {
		return nil, errors.New("stream: NumWindows must be positive")
	}
	if cfg.Partitions <= 0 {
		cfg.Partitions = 1
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.Workers > cfg.Partitions {
		cfg.Workers = cfg.Partitions
	}
	if cfg.Values == nil {
		return nil, errors.New("stream: Values source is required")
	}
	if cfg.Builder == nil {
		return nil, errors.New("stream: Builder is required")
	}
	if cfg.Delay == nil {
		cfg.Delay = ZeroDelay{}
	}
	return &Engine{cfg: cfg}, nil
}

// Run executes the job, invoking emit for each fired window in order.
// Returns aggregate stats. The run generates events a little past the
// final window boundary so late stragglers of the last window are
// accounted and the window always fires.
func (e *Engine) Run(emit func(WindowResult)) (Stats, error) {
	stats, _, err := e.run(emit)
	return stats, err
}

func (e *Engine) run(emit func(WindowResult)) (Stats, map[int]int64, error) {
	cfg := e.cfg
	interval := time.Second / time.Duration(cfg.Rate)
	if interval <= 0 {
		return Stats{}, nil, fmt.Errorf("stream: rate %d too high for ns resolution", cfg.Rate)
	}
	runEnd := cfg.WindowSize * time.Duration(cfg.NumWindows)
	// Grace period past the end so the final watermark passes runEnd:
	// one window of extra events (discarded, they belong to window
	// NumWindows) is plenty for realistic delay tails.
	genEnd := runEnd + cfg.WindowSize

	var sink partialSink
	if cfg.Workers > 1 {
		sink = newWorkerPool(cfg.Builder, cfg.Partitions, cfg.Workers, cfg.Metrics)
	} else {
		sink = newSeqSink(cfg.Builder, cfg.Partitions)
	}
	defer sink.close()

	var (
		stats     Stats
		inFlight  minHeap[Event]
		open                    = map[int]*windowState{}
		watermark time.Duration = -1
		nextFire  int           // next window index to fire
	)

	met := cfg.Metrics

	fire := func(w *windowState) error {
		merged := cfg.Builder()
		for _, p := range sink.partials(w.index) {
			if p == nil {
				continue
			}
			if err := merged.Merge(p); err != nil {
				return fmt.Errorf("stream: window merge: %w", err)
			}
		}
		if met != nil {
			met.WindowFires.Inc()
		}
		emit(WindowResult{
			Index:    w.index,
			Start:    cfg.WindowSize * time.Duration(w.index),
			End:      cfg.WindowSize * time.Duration(w.index+1),
			Sketch:   merged,
			Values:   w.values,
			Accepted: w.accepted,
		})
		return nil
	}

	lateOf := map[int]int64{} // window index → late drops (post-fire arrivals)

	process := func(ev Event) error {
		wi := int(ev.GenTime / cfg.WindowSize)
		switch {
		case math.IsNaN(ev.Value) || math.IsInf(ev.Value, 0):
			// Poisoned payload: rejected before reaching any sketch or
			// the collected values. The event still advances the
			// watermark below — its timestamp is sound. Counted only
			// inside the measured run so the Stats identity stays exact.
			if wi >= 0 && wi < cfg.NumWindows {
				stats.RejectedInput++
				if met != nil {
					met.RejectedInput.Inc()
				}
			}
		case wi < nextFire:
			// Window already fired: late event, dropped. Its GenTime is
			// below the watermark by construction, so falling through to
			// the watermark advance is a no-op.
			if wi >= 0 && wi < cfg.NumWindows {
				lateOf[wi]++
				stats.DroppedLate++
				if met != nil {
					met.DroppedLate.Inc()
				}
			}
		case wi < cfg.NumWindows:
			w := open[wi]
			if w == nil {
				w = &windowState{index: wi}
				open[wi] = w
			}
			sink.insert(wi, ev.Partition%cfg.Partitions, ev.Value)
			w.accepted++
			stats.Accepted++
			if met != nil {
				met.Inserted.Inc()
			}
			if cfg.CollectValues {
				w.values = append(w.values, ev.Value)
			}
		}
		if ev.GenTime > watermark {
			watermark = ev.GenTime
			// Fire every window whose end the watermark has passed.
			for nextFire < cfg.NumWindows {
				end := cfg.WindowSize * time.Duration(nextFire+1)
				if watermark < end {
					break
				}
				w := open[nextFire]
				if w == nil {
					w = &windowState{index: nextFire}
				}
				delete(open, nextFire)
				// Late counts accrue after firing; attach the state so the
				// final accounting can pick them up via lateOf.
				if err := fire(w); err != nil {
					return err
				}
				nextFire++
			}
		}
		if met != nil {
			// How far arrival order ran ahead of event time: the delay
			// model's effective disorder, as seen by the engine.
			if lag := int64(ev.Arrival - watermark); lag > 0 {
				met.MaxWatermarkLagNS.Max(lag)
			}
		}
		return nil
	}

	part := 0
	for gen := time.Duration(0); gen < genEnd; gen += interval {
		v := cfg.Values.Next()
		d := cfg.Delay.Delay()
		if gen < runEnd {
			// Grace-period events (gen ≥ runEnd) exist only to push the
			// watermark past the final boundary; they belong to no
			// tracked window and are excluded from the accounting so
			// Generated == Accepted + DroppedLate + RejectedInput holds
			// exactly.
			stats.Generated++
			if met != nil {
				met.Generated.Inc()
			}
		}
		inFlight.Push(Event{GenTime: gen, Arrival: gen + d, Value: v, Partition: part})
		part++
		if part == cfg.Partitions {
			part = 0
		}
		// Any event generated later arrives at ≥ its own gen time ≥ gen,
		// so everything in flight with arrival ≤ gen is safe to process.
		for inFlight.Len() > 0 && inFlight.Min().Arrival <= gen {
			if err := process(inFlight.Pop()); err != nil {
				return stats, lateOf, err
			}
		}
	}
	for inFlight.Len() > 0 {
		if err := process(inFlight.Pop()); err != nil {
			return stats, lateOf, err
		}
	}
	// Fire any windows still open (source exhausted before watermark
	// passed their end — only possible for the final window on extreme
	// delays).
	for ; nextFire < cfg.NumWindows; nextFire++ {
		w := open[nextFire]
		if w == nil {
			w = &windowState{index: nextFire}
		}
		delete(open, nextFire)
		if err := fire(w); err != nil {
			return stats, lateOf, err
		}
	}
	return stats, lateOf, nil
}

// RunCollect is Run but returning the window results as a slice, with
// per-window late-drop counts filled in after the run completes.
func (e *Engine) RunCollect() ([]WindowResult, Stats, error) {
	var out []WindowResult
	stats, lateOf, err := e.run(func(r WindowResult) { out = append(out, r) })
	for i := range out {
		out[i].DroppedLate = lateOf[out[i].Index]
	}
	return out, stats, err
}
