package stream

import (
	"fmt"
	"time"
)

// Window identifies one event-time window [Start, End).
type Window struct {
	Start, End time.Duration
}

// Contains reports whether t falls inside the window.
func (w Window) Contains(t time.Duration) bool { return t >= w.Start && t < w.End }

func (w Window) String() string {
	return fmt.Sprintf("[%v,%v)", w.Start, w.End)
}

// Assigner maps an event's generation time to the window(s) it belongs
// to — the three time-based window types of paper Sec 2.5. Tumbling and
// sliding windows are fixed; session windows grow and merge, which the
// generic engine handles via MergesWindows.
type Assigner interface {
	// Assign returns every window the event-time t belongs to.
	Assign(t time.Duration) []Window
	// MergesWindows reports whether assigned windows can merge with
	// existing ones (true only for session windows).
	MergesWindows() bool
}

// TumblingAssigner produces fixed, non-overlapping windows of Size: the
// paper's configuration ("time-based fixed windows", Sec 2.5).
type TumblingAssigner struct {
	Size time.Duration
}

// Assign implements Assigner.
func (a TumblingAssigner) Assign(t time.Duration) []Window {
	start := t / a.Size * a.Size
	return []Window{{Start: start, End: start + a.Size}}
}

// MergesWindows implements Assigner.
func (TumblingAssigner) MergesWindows() bool { return false }

// SlidingAssigner produces overlapping windows of Size, starting every
// Slide: "a sliding window of the same length and a period of 1 s would
// create a group from time t to t+10s, another from t+1s to t+11s, and
// so on" (Sec 2.5). Each event belongs to ⌈Size/Slide⌉ windows (one
// fewer at some slide phases when Slide does not divide Size) — and
// that holds from the very first event: the early windows whose nominal
// start would be negative are emitted with their Start clamped to 0
// (DESIGN.md §15 documents this boundary decision), so window ends stay
// on the slide lattice and start-of-stream coverage matches mid-stream
// coverage. Misconfiguration (Slide outside (0, Size]) is rejected once
// at engine construction, not here.
type SlidingAssigner struct {
	Size, Slide time.Duration
}

// Assign implements Assigner.
func (a SlidingAssigner) Assign(t time.Duration) []Window {
	var out []Window
	// The most recent window containing t starts at the slide boundary
	// at or before t; earlier ones follow at -Slide steps while t still
	// falls inside. Nominal starts below 0 clamp to the stream origin.
	lastStart := t / a.Slide * a.Slide
	for start := lastStart; start > t-a.Size; start -= a.Slide {
		w := Window{Start: start, End: start + a.Size}
		if start < 0 {
			w.Start = 0
		}
		out = append(out, w)
	}
	return out
}

// MergesWindows implements Assigner.
func (SlidingAssigner) MergesWindows() bool { return false }

// SessionAssigner produces per-event proto-windows [t, t+Gap) that the
// engine merges whenever they overlap: "a session window with a timeout
// of 10 s would start grouping events at time t and keep collecting
// events until a period of inactivity for 10 s" (Sec 2.5).
type SessionAssigner struct {
	Gap time.Duration
}

// Assign implements Assigner.
func (a SessionAssigner) Assign(t time.Duration) []Window {
	return []Window{{Start: t, End: t + a.Gap}}
}

// MergesWindows implements Assigner.
func (SessionAssigner) MergesWindows() bool { return true }
