package stream

import (
	"sync"
	"sync/atomic"

	"repro/internal/budget"
	"repro/internal/concurrent"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/sketch"
)

// batchSize is the number of events a per-partition batch holds before
// it is shipped to its worker. Large enough to amortize the channel
// hand-off and let the sketches' batch kernels (sketch.BatchInserter)
// work on long runs, small enough that a window's tail flush stays
// cheap.
const batchSize = 256

// eventBatch carries a run of accepted events for one partition. wins
// and vals are parallel slices; wins is non-decreasing (events arrive
// in watermark order), so workers can split it into per-window runs and
// feed each run to the sketch's batched insert path in one call. seq is
// the partition-local ship sequence number (1-based): workers drop any
// batch whose seq they have already seen, so duplicate delivery (the
// faultinject dup fault, or a retry layer above the pool) is idempotent.
type eventBatch struct {
	part int32
	seq  uint64
	wins []int32
	vals []float64
}

func (b *eventBatch) reset() {
	b.wins = b.wins[:0]
	b.vals = b.vals[:0]
}

// workerSnap is a worker's reply to a snapshot barrier: one sealed
// envelope per (window, owned-partition) sketch it holds, or the error
// that prevented serialization.
type workerSnap struct {
	entries []snapEntry
	err     error
}

// snapEntry is one partition sketch's sealed state. local is the
// worker-local partition index; the coordinator maps it back to the
// global partition w + local·workers.
type snapEntry struct {
	win   int32
	local int32
	blob  []byte
}

// restoreMsg seeds one partition sketch into a worker's open-window
// state during checkpoint resume.
type restoreMsg struct {
	win   int32
	local int32
	sk    sketch.Sketch
}

// fireReply is a worker's answer to a fire barrier: the window's
// partition sketches it owned, plus the budget degradations it applied
// to them while the window was open.
type fireReply struct {
	sks      []sketch.Sketch
	degrades int
}

// workerMsg is one message to a worker: an event batch, a restore seed,
// a snapshot barrier (snap non-nil), or a fire barrier (reply non-nil)
// for window fireWin.
type workerMsg struct {
	batch   *eventBatch
	fireWin int32
	reply   chan<- fireReply
	snap    chan<- workerSnap
	restore *restoreMsg
}

// workerPool is the parallel partialSink: partition p is owned by
// worker p % workers, each worker consumes event batches from its own
// channel and maintains the partition-local sketches of its open
// windows. Because every partition's events flow through exactly one
// worker in arrival order, and the engine collects partials at fire
// barriers and merges them in partition order, the results are
// bit-identical to the sequential sink at any worker count.
//
// Workers run under a recover guard: a panic (injected fault or real
// bug) poisons the worker — it stops inserting but keeps draining its
// channel, replying empty to barriers, so the coordinator never
// deadlocks; the captured *PanicError surfaces through err() at the
// next fire barrier.
type workerPool struct {
	builder    sketch.Builder
	partitions int
	workers    int

	pending []*eventBatch // one per partition, nil when empty
	seqs    []uint64      // per-partition ship sequence numbers
	shipped int64         // total batches shipped (faultinject dup basis)
	chans   []chan workerMsg
	replies []chan fireReply
	snaps   []chan workerSnap
	pool    sync.Pool // *eventBatch recycling (coordinator ⇄ workers)
	wg      sync.WaitGroup
	met     *obs.EngineMetrics // nil disables queue-depth recording
	faults  *faultinject.Plan  // nil disables fault hooks
	shared  concurrent.Shared  // nil disables live shared-sketch feeds
	// workerBudget is each worker's byte share of Config.MemoryBudget
	// (already divided); 0 disables per-worker governors. Workers run
	// only rung 1 of the ladder (in-place degradation) — shedding on a
	// worker would make the event stream depend on worker count.
	workerBudget int
	failure      atomic.Pointer[PanicError]
}

func newWorkerPool(builder sketch.Builder, partitions, workers int, met *obs.EngineMetrics, faults *faultinject.Plan, shared concurrent.Shared, memBudget int) *workerPool {
	p := &workerPool{
		builder:    builder,
		partitions: partitions,
		workers:    workers,
		pending:    make([]*eventBatch, partitions),
		seqs:       make([]uint64, partitions),
		chans:      make([]chan workerMsg, workers),
		replies:    make([]chan fireReply, workers),
		snaps:      make([]chan workerSnap, workers),
		met:        met,
		faults:     faults,
		shared:     shared,
	}
	if memBudget > 0 {
		p.workerBudget = memBudget / workers
	}
	p.pool.New = func() any {
		return &eventBatch{
			wins: make([]int32, 0, batchSize),
			vals: make([]float64, 0, batchSize),
		}
	}
	for w := 0; w < workers; w++ {
		// Deep buffers decouple the coordinator (event generation,
		// delay heap, watermarks) from insert hiccups like sketch
		// compactions.
		p.chans[w] = make(chan workerMsg, 32)
		p.replies[w] = make(chan fireReply, 1)
		p.snaps[w] = make(chan workerSnap, 1)
		p.wg.Add(1)
		go p.runWorker(w)
	}
	return p
}

// ship stamps b with its partition's next sequence number and sends it
// to the owning worker — duplicated when the fault plan says so (the
// duplicate carries the same seq, so the worker's dedupe drops it).
func (p *workerPool) ship(part int, b *eventBatch) {
	p.seqs[part]++
	b.seq = p.seqs[part]
	var dup *eventBatch
	if p.faults != nil && p.faults.DuplicateBatch(p.shipped) {
		// Clone before sending: once shipped, the worker owns b.
		dup = p.pool.Get().(*eventBatch)
		dup.part = b.part
		dup.seq = b.seq
		dup.wins = append(dup.wins[:0], b.wins...)
		dup.vals = append(dup.vals[:0], b.vals...)
	}
	p.shipped++
	ch := p.chans[part%p.workers]
	ch <- workerMsg{batch: b}
	if dup != nil {
		ch <- workerMsg{batch: dup}
	}
	if p.met != nil {
		// Sampled right after the send: how far this worker's queue
		// backed up (insert hiccups, compaction stalls).
		p.met.MaxBatchQueueDepth.Max(int64(len(ch)))
	}
}

// insert implements partialSink: append to the partition's pending
// batch, shipping it to the owning worker when full.
func (p *workerPool) insert(win, part int, v float64) {
	b := p.pending[part]
	if b == nil {
		b = p.pool.Get().(*eventBatch)
		b.part = int32(part)
		p.pending[part] = b
	}
	b.wins = append(b.wins, int32(win))
	b.vals = append(b.vals, v)
	if len(b.vals) == batchSize {
		p.pending[part] = nil
		p.ship(part, b)
	}
}

// flushPending ships every partially filled batch — the prelude to any
// barrier, so the barrier observes all inserts issued before it.
func (p *workerPool) flushPending() {
	for part, b := range p.pending {
		if b != nil {
			p.pending[part] = nil
			p.ship(part, b)
		}
	}
}

// partials implements partialSink: flush every pending batch, then send
// each worker a fire barrier and reassemble the window's partition
// sketches in partition order. The channel send/receive pair gives the
// coordinator a happens-before edge on all of the window's inserts.
func (p *workerPool) partials(win int) ([]sketch.Sketch, int) {
	p.flushPending()
	for w := 0; w < p.workers; w++ {
		p.chans[w] <- workerMsg{fireWin: int32(win), reply: p.replies[w]}
	}
	out := make([]sketch.Sketch, p.partitions)
	degrades := 0
	for w := 0; w < p.workers; w++ {
		r := <-p.replies[w]
		degrades += r.degrades
		for k, sk := range r.sks {
			out[w+k*p.workers] = sk
		}
	}
	return out, degrades
}

// snapshot implements partialSink: flush pending batches, then barrier
// every worker and reassemble the sealed per-partition blobs per open
// window. Every worker is always drained even when one reports an
// error, keeping the channels balanced.
func (p *workerPool) snapshot() (map[int][][]byte, error) {
	p.flushPending()
	for w := 0; w < p.workers; w++ {
		p.chans[w] <- workerMsg{snap: p.snaps[w]}
	}
	out := make(map[int][][]byte)
	var firstErr error
	for w := 0; w < p.workers; w++ {
		res := <-p.snaps[w]
		if res.err != nil {
			if firstErr == nil {
				firstErr = res.err
			}
			continue
		}
		for _, e := range res.entries {
			win := int(e.win)
			blobs := out[win]
			if blobs == nil {
				blobs = make([][]byte, p.partitions)
				out[win] = blobs
			}
			blobs[w+int(e.local)*p.workers] = e.blob
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// restore implements partialSink: route each decoded partition sketch
// to its owning worker. Channel FIFO ordering guarantees the seed is in
// place before any later batch for the window; no barrier is needed.
func (p *workerPool) restore(win int, parts []sketch.Sketch) {
	for part, sk := range parts {
		if sk == nil {
			continue
		}
		p.chans[part%p.workers] <- workerMsg{restore: &restoreMsg{
			win:   int32(win),
			local: int32(part / p.workers),
			sk:    sk,
		}}
	}
}

// err implements partialSink: the first worker panic captured this run,
// if any.
func (p *workerPool) err() error {
	if pe := p.failure.Load(); pe != nil {
		return pe
	}
	return nil
}

// close implements partialSink: stop the workers and wait for them to
// drain. Any still-pending batches are dropped — the engine fires every
// tracked window before closing, so by then they can only hold events
// of untracked (grace-period) windows, which are never inserted anyway.
func (p *workerPool) close() {
	for _, ch := range p.chans {
		close(ch)
	}
	p.wg.Wait()
}

// ownedPartitions returns how many partitions worker w owns (the
// partitions congruent to w modulo the worker count).
func (p *workerPool) ownedPartitions(w int) int {
	return (p.partitions-1-w)/p.workers + 1
}

// runWorker runs worker w's message loop under the recover guard. If
// the loop panics, the worker turns into a drain: it consumes the rest
// of its channel, replying empty to fire barriers and the captured
// error to snapshot barriers, so the coordinator's sends never block on
// a dead worker. The failure itself surfaces via err().
func (p *workerPool) runWorker(w int) {
	defer p.wg.Done()
	if p.workerLoop(w) {
		return
	}
	for msg := range p.chans[w] {
		switch {
		case msg.reply != nil:
			msg.reply <- fireReply{}
		case msg.snap != nil:
			msg.snap <- workerSnap{err: p.err()}
		case msg.batch != nil:
			msg.batch.reset()
			p.pool.Put(msg.batch)
		}
	}
}

// workerLoop consumes worker w's channel: batches are split into
// per-window runs and bulk-inserted into the owning partition's sketch;
// fire barriers hand the window's local partials back to the
// coordinator; snapshot barriers seal them; restore seeds adopt decoded
// sketches. Returns true when the channel closed cleanly, false when a
// panic was recovered (recorded in p.failure).
func (p *workerPool) workerLoop(w int) (clean bool) {
	defer func() {
		if r := recover(); r != nil {
			pe := asPanicError(r)
			if pe.Worker < 0 {
				pe.Worker = w
			}
			p.failure.CompareAndSwap(nil, pe)
		}
	}()
	nOwned := p.ownedPartitions(w)
	var sharedW *concurrent.Writer // this worker's shared-sketch handle
	if p.shared != nil {
		sharedW = p.shared.Writer(w)
	}
	open := make(map[int32][]sketch.Sketch)
	seen := make([]uint64, nOwned)      // per-partition last-seen batch seq
	var inserted int64                  // worker-local insert count (fault hooks)
	partEvents := make([]int64, nOwned) // partition-local insert counts
	// Per-worker budget governor (rung 1 only): tracks this worker's
	// partition sketches under the same win·P+part ids as seqSink, so
	// degradation order within a worker is deterministic for a fixed
	// worker count. Enforcement runs at batch boundaries — the same
	// few-hundred-event cadence as the serial path.
	gov := budget.New(p.workerBudget)
	sinceEnforce := 0                // events since the last governor pass
	enforceAt := gov.Interval()      // cached cadence, refreshed per pass
	degradeOf := make(map[int32]int) // win → degradations (fire replies)
	govID := func(win int32, local int) int64 {
		return int64(win)*int64(p.partitions) + int64(w+local*p.workers)
	}
	onDegrade := func(id int64) {
		if p.met != nil {
			p.met.Degradations.Inc()
		}
		degradeOf[int32(id/int64(p.partitions))]++
	}
	for msg := range p.chans[w] {
		switch {
		case msg.restore != nil:
			rm := msg.restore
			sks := open[rm.win]
			if sks == nil {
				sks = make([]sketch.Sketch, nOwned)
				open[rm.win] = sks
			}
			sks[rm.local] = rm.sk
			gov.Track(govID(rm.win, int(rm.local)), rm.sk)
		case msg.snap != nil:
			// sealOpen recovers its own panics, so the reply always
			// arrives and the coordinator cannot deadlock on a snapshot
			// barrier.
			msg.snap <- p.sealOpen(open)
		case msg.reply != nil:
			// Fire barrier: relinquish the window's partials along with
			// the degradations applied to them while the window was open.
			local := open[msg.fireWin]
			delete(open, msg.fireWin)
			for k := range local {
				gov.Untrack(govID(msg.fireWin, k))
			}
			deg := degradeOf[msg.fireWin]
			delete(degradeOf, msg.fireWin)
			msg.reply <- fireReply{sks: local, degrades: deg}
		default:
			b := msg.batch
			local := int(b.part) / p.workers
			if b.seq <= seen[local] {
				// Duplicate delivery: already applied, drop it.
				b.reset()
				p.pool.Put(b)
				continue
			}
			seen[local] = b.seq
			if sharedW != nil {
				// Past the dedupe check, so duplicate deliveries cannot
				// double-count into the shared sketch.
				sharedW.InsertBatch(b.vals)
			}
			for i := 0; i < len(b.wins); {
				win := b.wins[i]
				j := i + 1
				for j < len(b.wins) && b.wins[j] == win {
					j++
				}
				sks := open[win]
				if sks == nil {
					sks = make([]sketch.Sketch, nOwned)
					open[win] = sks
				}
				if sks[local] == nil {
					sks[local] = p.builder()
					gov.Track(govID(win, local), sks[local])
				}
				if p.faults == nil {
					sketch.InsertAll(sks[local], b.vals[i:j])
				} else {
					// Per-value loop so the fault hooks see exact
					// worker-local and partition-local event indices.
					part := int(b.part)
					sk := sks[local]
					for _, v := range b.vals[i:j] {
						p.faults.OnEvent(w, part, inserted, partEvents[local])
						inserted++
						partEvents[local]++
						sk.Insert(v)
					}
				}
				i = j
			}
			nvals := len(b.vals)
			b.reset()
			p.pool.Put(b)
			if gov != nil {
				// Batch-boundary enforcement at the governor's adaptive
				// cadence — the parallel analogue of the serial path
				// (batches are ≤256 events, so a binding budget enforces
				// roughly per batch).
				sinceEnforce += nvals
				if sinceEnforce >= enforceAt {
					sinceEnforce = 0
					out := gov.Enforce(onDegrade)
					enforceAt = gov.Interval()
					if p.met != nil {
						p.met.BudgetBytes.Max(int64(out.Usage))
					}
				}
			}
		}
	}
	if sharedW != nil {
		// Clean shutdown: quiesce this worker's buffer so post-run
		// snapshots of the shared sketch are exact.
		sharedW.Flush()
	}
	return true
}

// sealOpen serializes every open partition sketch into snapshot
// entries, converting any panic into an error reply.
func (p *workerPool) sealOpen(open map[int32][]sketch.Sketch) (ws workerSnap) {
	defer func() {
		if r := recover(); r != nil {
			ws = workerSnap{err: asPanicError(r)}
		}
	}()
	var entries []snapEntry
	for win, sks := range open {
		for local, sk := range sks {
			if sk == nil {
				continue
			}
			blob, err := sealPartial(sk)
			if err != nil {
				return workerSnap{err: err}
			}
			entries = append(entries, snapEntry{win: win, local: int32(local), blob: blob})
		}
	}
	return workerSnap{entries: entries}
}
