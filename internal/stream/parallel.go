package stream

import (
	"sync"

	"repro/internal/obs"
	"repro/internal/sketch"
)

// batchSize is the number of events a per-partition batch holds before
// it is shipped to its worker. Large enough to amortize the channel
// hand-off and let the sketches' batch kernels (sketch.BatchInserter)
// work on long runs, small enough that a window's tail flush stays
// cheap.
const batchSize = 256

// eventBatch carries a run of accepted events for one partition. wins
// and vals are parallel slices; wins is non-decreasing (events arrive
// in watermark order), so workers can split it into per-window runs and
// feed each run to the sketch's batched insert path in one call.
type eventBatch struct {
	part int32
	wins []int32
	vals []float64
}

func (b *eventBatch) reset() {
	b.wins = b.wins[:0]
	b.vals = b.vals[:0]
}

// workerMsg is one message to a worker: either an event batch or, when
// reply is non-nil, a fire barrier for window fireWin.
type workerMsg struct {
	batch   *eventBatch
	fireWin int32
	reply   chan<- []sketch.Sketch
}

// workerPool is the parallel partialSink: partition p is owned by
// worker p % workers, each worker consumes event batches from its own
// channel and maintains the partition-local sketches of its open
// windows. Because every partition's events flow through exactly one
// worker in arrival order, and the engine collects partials at fire
// barriers and merges them in partition order, the results are
// bit-identical to the sequential sink at any worker count.
type workerPool struct {
	builder    sketch.Builder
	partitions int
	workers    int

	pending []*eventBatch // one per partition, nil when empty
	chans   []chan workerMsg
	replies []chan []sketch.Sketch
	pool    sync.Pool // *eventBatch recycling (coordinator ⇄ workers)
	wg      sync.WaitGroup
	met     *obs.EngineMetrics // nil disables queue-depth recording
}

func newWorkerPool(builder sketch.Builder, partitions, workers int, met *obs.EngineMetrics) *workerPool {
	p := &workerPool{
		builder:    builder,
		partitions: partitions,
		workers:    workers,
		pending:    make([]*eventBatch, partitions),
		chans:      make([]chan workerMsg, workers),
		replies:    make([]chan []sketch.Sketch, workers),
		met:        met,
	}
	p.pool.New = func() any {
		return &eventBatch{
			wins: make([]int32, 0, batchSize),
			vals: make([]float64, 0, batchSize),
		}
	}
	for w := 0; w < workers; w++ {
		// Deep buffers decouple the coordinator (event generation,
		// delay heap, watermarks) from insert hiccups like sketch
		// compactions.
		p.chans[w] = make(chan workerMsg, 32)
		p.replies[w] = make(chan []sketch.Sketch, 1)
		p.wg.Add(1)
		go p.runWorker(w)
	}
	return p
}

// insert implements partialSink: append to the partition's pending
// batch, shipping it to the owning worker when full.
func (p *workerPool) insert(win, part int, v float64) {
	b := p.pending[part]
	if b == nil {
		b = p.pool.Get().(*eventBatch)
		b.part = int32(part)
		p.pending[part] = b
	}
	b.wins = append(b.wins, int32(win))
	b.vals = append(b.vals, v)
	if len(b.vals) == batchSize {
		ch := p.chans[part%p.workers]
		ch <- workerMsg{batch: b}
		p.pending[part] = nil
		if p.met != nil {
			// Sampled right after the send: how far this worker's queue
			// backed up (insert hiccups, compaction stalls).
			p.met.MaxBatchQueueDepth.Max(int64(len(ch)))
		}
	}
}

// partials implements partialSink: flush every pending batch, then send
// each worker a fire barrier and reassemble the window's partition
// sketches in partition order. The channel send/receive pair gives the
// coordinator a happens-before edge on all of the window's inserts.
func (p *workerPool) partials(win int) []sketch.Sketch {
	for part, b := range p.pending {
		if b != nil {
			ch := p.chans[part%p.workers]
			ch <- workerMsg{batch: b}
			p.pending[part] = nil
			if p.met != nil {
				p.met.MaxBatchQueueDepth.Max(int64(len(ch)))
			}
		}
	}
	for w := 0; w < p.workers; w++ {
		p.chans[w] <- workerMsg{fireWin: int32(win), reply: p.replies[w]}
	}
	out := make([]sketch.Sketch, p.partitions)
	for w := 0; w < p.workers; w++ {
		for k, sk := range <-p.replies[w] {
			out[w+k*p.workers] = sk
		}
	}
	return out
}

// close implements partialSink: stop the workers and wait for them to
// drain. Any still-pending batches are dropped — the engine fires every
// tracked window before closing, so by then they can only hold events
// of untracked (grace-period) windows, which are never inserted anyway.
func (p *workerPool) close() {
	for _, ch := range p.chans {
		close(ch)
	}
	p.wg.Wait()
}

// ownedPartitions returns how many partitions worker w owns (the
// partitions congruent to w modulo the worker count).
func (p *workerPool) ownedPartitions(w int) int {
	return (p.partitions-1-w)/p.workers + 1
}

// runWorker consumes worker w's channel: batches are split into
// per-window runs and bulk-inserted into the owning partition's sketch;
// fire barriers hand the window's local partials back to the
// coordinator.
func (p *workerPool) runWorker(w int) {
	defer p.wg.Done()
	nOwned := p.ownedPartitions(w)
	open := make(map[int32][]sketch.Sketch)
	for msg := range p.chans[w] {
		if msg.batch == nil {
			// Fire barrier: relinquish the window's partials.
			local := open[msg.fireWin]
			delete(open, msg.fireWin)
			msg.reply <- local
			continue
		}
		b := msg.batch
		local := int(b.part) / p.workers
		for i := 0; i < len(b.wins); {
			win := b.wins[i]
			j := i + 1
			for j < len(b.wins) && b.wins[j] == win {
				j++
			}
			sks := open[win]
			if sks == nil {
				sks = make([]sketch.Sketch, nOwned)
				open[win] = sks
			}
			if sks[local] == nil {
				sks[local] = p.builder()
			}
			sketch.InsertAll(sks[local], b.vals[i:j])
			i = j
		}
		b.reset()
		p.pool.Put(b)
	}
}
