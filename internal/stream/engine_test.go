package stream

import (
	"math"
	"testing"
	"time"

	"repro/internal/datagen"
	"repro/internal/ddsketch"
	"repro/internal/sketch"
	"repro/internal/stats"
)

func ddBuilder() sketch.Sketch { return ddsketch.New(0.01) }

func TestNoDelayNoDrops(t *testing.T) {
	eng, err := NewEngine(Config{
		WindowSize:    time.Second,
		Rate:          1000,
		NumWindows:    5,
		Partitions:    4,
		Values:        datagen.NewUniform(1, 100, 7),
		Builder:       ddBuilder,
		CollectValues: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	results, st, err := eng.RunCollect()
	if err != nil {
		t.Fatal(err)
	}
	if st.DroppedLate != 0 {
		t.Errorf("dropped %d events with zero delay", st.DroppedLate)
	}
	if len(results) != 5 {
		t.Fatalf("got %d windows, want 5", len(results))
	}
	for _, r := range results {
		// 1000 events/s × 1 s windows.
		if r.Accepted != 1000 {
			t.Errorf("window %d accepted %d events, want 1000", r.Index, r.Accepted)
		}
		if int64(len(r.Values)) != r.Accepted {
			t.Errorf("window %d: %d values vs %d accepted", r.Index, len(r.Values), r.Accepted)
		}
		if got := r.Sketch.Count(); got != uint64(r.Accepted) {
			t.Errorf("window %d: sketch count %d vs accepted %d", r.Index, got, r.Accepted)
		}
		if r.DroppedLate != 0 {
			t.Errorf("window %d: dropped %d with zero delay", r.Index, r.DroppedLate)
		}
	}
}

// The merged partition sketches must answer as accurately as a single
// sketch over the window (mergeability in anger).
func TestPartitionedAccuracy(t *testing.T) {
	eng, err := NewEngine(Config{
		WindowSize:    time.Second,
		Rate:          10000,
		NumWindows:    3,
		Partitions:    8,
		Values:        datagen.NewPareto(1, 1, 11),
		Builder:       ddBuilder,
		CollectValues: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	results, _, err := eng.RunCollect()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		ex := stats.NewExactQuantiles(r.Values)
		for _, q := range []float64{0.5, 0.95, 0.99} {
			est, err := r.Sketch.Quantile(q)
			if err != nil {
				t.Fatal(err)
			}
			if re := stats.RelativeError(ex.Quantile(q), est); re > 0.01*(1+1e-9) {
				t.Errorf("window %d q=%v: rel err %v > alpha", r.Index, q, re)
			}
		}
	}
}

func TestConstantDelayShiftsButDropsNothing(t *testing.T) {
	eng, err := NewEngine(Config{
		WindowSize: time.Second,
		Rate:       1000,
		NumWindows: 3,
		Values:     datagen.NewUniform(1, 2, 3),
		Delay:      ConstantDelay{D: 100 * time.Millisecond},
		Builder:    ddBuilder,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, st, err := eng.RunCollect()
	if err != nil {
		t.Fatal(err)
	}
	if st.DroppedLate != 0 {
		t.Errorf("constant delay dropped %d events", st.DroppedLate)
	}
}

// Exponential delay must drop a small share of events — and only events
// near window boundaries. The expected loss is
// (mean/W)·(1 − e^(−W/mean)) ≈ mean/W for W ≫ mean.
func TestExponentialDelayDropsTail(t *testing.T) {
	window := time.Second
	mean := 50 * time.Millisecond
	eng, err := NewEngine(Config{
		WindowSize: window,
		Rate:       20000,
		NumWindows: 10,
		Values:     datagen.NewUniform(1, 2, 5),
		Delay:      NewExponentialDelay(mean, 99),
		Builder:    ddBuilder,
	})
	if err != nil {
		t.Fatal(err)
	}
	results, st, err := eng.RunCollect()
	if err != nil {
		t.Fatal(err)
	}
	if st.DroppedLate == 0 {
		t.Fatal("expected late drops with exponential delay")
	}
	loss := st.LossRate()
	approx := float64(mean) / float64(window) // ≈ 5%
	if loss < approx/3 || loss > approx*3 {
		t.Errorf("loss rate %v, expected around %v", loss, approx)
	}
	var perWindow int64
	for _, r := range results {
		perWindow += r.DroppedLate
	}
	// Total per-window drops ≈ total drops (a few may fall past the last
	// tracked window).
	if perWindow == 0 {
		t.Error("per-window late counts not populated")
	}
}

func TestWindowsArriveInOrder(t *testing.T) {
	eng, err := NewEngine(Config{
		WindowSize: 500 * time.Millisecond,
		Rate:       2000,
		NumWindows: 8,
		Values:     datagen.NewNormal(10, 1, 1),
		Delay:      NewExponentialDelay(30*time.Millisecond, 2),
		Builder:    ddBuilder,
	})
	if err != nil {
		t.Fatal(err)
	}
	last := -1
	_, err = func() (Stats, error) {
		return eng.Run(func(r WindowResult) {
			if r.Index != last+1 {
				t.Errorf("window %d fired after %d", r.Index, last)
			}
			last = r.Index
		})
	}()
	if err != nil {
		t.Fatal(err)
	}
	if last != 7 {
		t.Errorf("last window %d, want 7", last)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (float64, int64) {
		eng, err := NewEngine(Config{
			WindowSize: time.Second,
			Rate:       5000,
			NumWindows: 3,
			Partitions: 2,
			Values:     datagen.NewPareto(1, 1, 42),
			Delay:      NewExponentialDelay(20*time.Millisecond, 43),
			Builder:    ddBuilder,
		})
		if err != nil {
			t.Fatal(err)
		}
		results, st, err := eng.RunCollect()
		if err != nil {
			t.Fatal(err)
		}
		v, _ := results[2].Sketch.Quantile(0.99)
		return v, st.DroppedLate
	}
	v1, d1 := run()
	v2, d2 := run()
	if v1 != v2 || d1 != d2 {
		t.Errorf("non-deterministic: (%v,%d) vs (%v,%d)", v1, d1, v2, d2)
	}
}

func TestConfigValidation(t *testing.T) {
	base := Config{
		WindowSize: time.Second,
		Rate:       100,
		NumWindows: 1,
		Values:     datagen.NewUniform(0, 1, 1),
		Builder:    ddBuilder,
	}
	bad := base
	bad.WindowSize = 0
	if _, err := NewEngine(bad); err == nil {
		t.Error("zero WindowSize should fail")
	}
	bad = base
	bad.Rate = 0
	if _, err := NewEngine(bad); err == nil {
		t.Error("zero Rate should fail")
	}
	bad = base
	bad.Values = nil
	if _, err := NewEngine(bad); err == nil {
		t.Error("nil Values should fail")
	}
	bad = base
	bad.Builder = nil
	if _, err := NewEngine(bad); err == nil {
		t.Error("nil Builder should fail")
	}
	bad = base
	bad.NumWindows = 0
	if _, err := NewEngine(bad); err == nil {
		t.Error("zero NumWindows should fail")
	}
}

// Without partitioning the sketch must see exactly the collected values —
// a cross-check between the sketch path and the ground-truth path.
func TestSketchMatchesValuesExactly(t *testing.T) {
	eng, err := NewEngine(Config{
		WindowSize:    time.Second,
		Rate:          1000,
		NumWindows:    2,
		Values:        datagen.NewUniform(10, 20, 21),
		Delay:         NewExponentialDelay(100*time.Millisecond, 22),
		Builder:       ddBuilder,
		CollectValues: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	results, _, err := eng.RunCollect()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if got, want := r.Sketch.Count(), uint64(len(r.Values)); got != want {
			t.Errorf("window %d: sketch saw %d, values hold %d", r.Index, got, want)
		}
		var sum float64
		for _, v := range r.Values {
			sum += v
		}
		if len(r.Values) > 0 {
			mean := sum / float64(len(r.Values))
			if math.Abs(mean-15) > 1 {
				t.Errorf("window %d: mean %v implausible for U(10,20)", r.Index, mean)
			}
		}
	}
}
