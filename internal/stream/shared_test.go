package stream

import (
	"math"
	"testing"
	"time"

	"repro/internal/concurrent"
	"repro/internal/datagen"
	"repro/internal/kll"
	"repro/internal/obs"
)

// sharedRunConfig is the common job for the shared-sketch tests: 5 s of
// 1000 ev/s over 4 partitions, zero delay so Accepted is exact.
func sharedRunConfig(workers int, shared concurrent.Shared) Config {
	return Config{
		WindowSize:   time.Second,
		Rate:         1000,
		NumWindows:   5,
		Partitions:   4,
		Workers:      workers,
		Values:       datagen.NewUniform(1, 100, 7),
		Builder:      ddBuilder,
		SharedSketch: shared,
	}
}

// TestSharedSketchSerialRun: on the serial path the engine goroutine
// feeds writer 0; after the run the shared sketch must hold exactly
// the accepted events, and its quantiles must agree with a windowed
// DDSketch merged over the whole run (both summarize the identical
// multiset, and DDSketch is order-insensitive).
func TestSharedSketchSerialRun(t *testing.T) {
	sh, err := concurrent.NewDDSketch(0.01, 1, 128)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(sharedRunConfig(1, sh))
	if err != nil {
		t.Fatal(err)
	}
	results, st, err := eng.RunCollect()
	if err != nil {
		t.Fatal(err)
	}
	if got := sh.Count(); got != uint64(st.Accepted) {
		t.Fatalf("shared count %d, accepted %d", got, st.Accepted)
	}
	merged := ddBuilder()
	for _, r := range results {
		if err := merged.Merge(r.Sketch); err != nil {
			t.Fatal(err)
		}
	}
	snap := sh.Snapshot()
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		got, err := snap.Quantile(q)
		if err != nil {
			t.Fatal(err)
		}
		want, err := merged.Quantile(q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("quantile(%v): shared %v, windowed-merged %v", q, got, want)
		}
	}
}

// TestSharedSketchParallelRun: with Workers > 1 each worker feeds its
// own handle; after the run (workers flush at shutdown) the shared
// sketch again holds exactly the accepted events.
func TestSharedSketchParallelRun(t *testing.T) {
	sh := concurrent.NewKLL(kll.DefaultK, 4, 128)
	eng, err := NewEngine(sharedRunConfig(4, sh))
	if err != nil {
		t.Fatal(err)
	}
	_, st, err := eng.RunCollect()
	if err != nil {
		t.Fatal(err)
	}
	if got := sh.Count(); got != uint64(st.Accepted) {
		t.Fatalf("shared count %d, accepted %d", got, st.Accepted)
	}
	if med, err := sh.Snapshot().Quantile(0.5); err != nil {
		t.Fatal(err)
	} else if med < 1 || med > 100 {
		t.Errorf("median %v outside the data range [1, 100]", med)
	}
}

// TestSharedSketchRejectsNonFinite poisons every 10th payload with an
// alternating ±Inf or NaN: the engine rejects them before the shared
// writer (and the writer's own validation would catch any that slipped
// through), so after the run the shared sketch holds exactly the
// accepted finite events and its count proves no poison reached it.
func TestSharedSketchRejectsNonFinite(t *testing.T) {
	sh, err := concurrent.NewDDSketch(0.01, 1, 128)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sharedRunConfig(1, sh)
	clean := datagen.NewUniform(1, 100, 7)
	n := 0
	cfg.Values = datagen.SourceFunc(func() float64 {
		n++
		switch {
		case n%30 == 0:
			return math.NaN()
		case n%20 == 0:
			return math.Inf(-1)
		case n%10 == 0:
			return math.Inf(1)
		}
		return clean.Next()
	})
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, st, err := eng.RunCollect()
	if err != nil {
		t.Fatal(err)
	}
	if st.RejectedInput == 0 {
		t.Fatal("poisoned source produced no rejections")
	}
	if got := sh.Count(); got != uint64(st.Accepted) {
		t.Fatalf("shared count %d, accepted %d (non-finite payloads leaked)", got, st.Accepted)
	}
	if med, err := sh.Snapshot().Quantile(0.5); err != nil {
		t.Fatal(err)
	} else if math.IsNaN(med) || math.IsInf(med, 0) {
		t.Errorf("median %v: shared sketch was poisoned", med)
	}
}

// TestSharedSketchLiveQueries queries the shared sketch from the emit
// callback — mid-run, between windows — exercising the live-read path
// the layer exists for. Each snapshot must be within the relaxation
// bound of the events accepted so far.
func TestSharedSketchLiveQueries(t *testing.T) {
	sh := concurrent.NewKLL(kll.DefaultK, 1, 64)
	cfg := sharedRunConfig(1, sh)
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var acceptedSoFar int64
	snaps := 0
	_, err = eng.Run(func(r WindowResult) {
		acceptedSoFar += r.Accepted
		snap := sh.Snapshot()
		c := snap.Count()
		if c > uint64(acceptedSoFar) {
			t.Errorf("window %d: snapshot count %d exceeds accepted %d", r.Index, c, acceptedSoFar)
		}
		if c+sh.MaxRelaxation() < uint64(acceptedSoFar) {
			t.Errorf("window %d: snapshot count %d trails accepted %d beyond the bound %d",
				r.Index, c, acceptedSoFar, sh.MaxRelaxation())
		}
		if c > 0 {
			if _, err := snap.Quantile(0.5); err != nil {
				t.Errorf("window %d: live quantile: %v", r.Index, err)
			}
		}
		snaps++
	})
	if err != nil {
		t.Fatal(err)
	}
	if snaps != cfg.NumWindows {
		t.Fatalf("took %d snapshots, want %d", snaps, cfg.NumWindows)
	}
}

// TestSharedSketchWriterValidation: a shared sketch with fewer writer
// handles than (clamped) workers must be rejected at construction.
func TestSharedSketchWriterValidation(t *testing.T) {
	sh := concurrent.NewKLL(kll.DefaultK, 2, 64)
	if _, err := NewEngine(sharedRunConfig(4, sh)); err == nil {
		t.Fatal("engine accepted SharedSketch with 2 writers for 4 workers")
	}
	// Clamping can rescue it: 8 workers over 4 partitions clamp to 4,
	// so 4 handles suffice.
	sh4 := concurrent.NewKLL(kll.DefaultK, 4, 64)
	if _, err := NewEngine(sharedRunConfig(8, sh4)); err != nil {
		t.Fatalf("engine rejected SharedSketch after clamp: %v", err)
	}
}

// TestWorkersClampedCounter pins the satellite behavior: a Workers >
// Partitions construction increments Metrics.WorkersClamped (once per
// construction), while an unclamped one does not.
func TestWorkersClampedCounter(t *testing.T) {
	met := &obs.EngineMetrics{}
	cfg := sharedRunConfig(8, nil)
	cfg.Metrics = met
	if _, err := NewEngine(cfg); err != nil {
		t.Fatal(err)
	}
	if got := met.WorkersClamped.Load(); got != 1 {
		t.Fatalf("WorkersClamped = %d after one clamped construction, want 1", got)
	}
	cfg.Workers = 4
	if _, err := NewEngine(cfg); err != nil {
		t.Fatal(err)
	}
	if got := met.WorkersClamped.Load(); got != 1 {
		t.Fatalf("WorkersClamped = %d after an unclamped construction, want 1", got)
	}
}
