package stream

import (
	"fmt"
	"math"
	"time"

	"repro/internal/sketch"
)

// Pane-based sharing for sliding windows (DESIGN.md §15).
//
// A sliding job with window length W and slide S decomposes the stream
// into non-overlapping panes of length g = gcd(W, S): every window is
// an exact union of W/g consecutive panes, and consecutive windows
// differ by S/g panes. Each accepted event is inserted once, into its
// pane's partition sketches; when a window fires, its constituent pane
// sketches are merged — ~W/S merges per window instead of re-inserting
// every event W/S times. The geometry matches SlidingAssigner's
// clamped window family: window starts sit on the slide lattice
// {m·S : m ∈ ℤ}, the first emitted window is the earliest one whose
// end is positive (m = 1 - ceil(W/S)), and nominal starts before the
// stream origin clamp to 0.
//
// A pane is sealed — its partition sketches pulled from the sink and
// merged into one immutable pane sketch — when the first window
// containing it fires. Sealed panes are retained until the last window
// referencing them fires, then evicted. Events arriving for a sealed
// pane are dropped late from every remaining window: the sharing
// trade-off, consistent with the tumbling engine's drop-on-fire rule
// (of which this is the exact degenerate case at S == W, where pane ==
// window and sealing == firing).
//
// With DecayLambda > 0, window assembly down-weights each pane by
// exp(-λ·age), age being the seconds between the pane's end and the
// window's end. The newest pane has age 0 and is merged directly; an
// older pane's sealed sketch is cloned (Marshal/Unmarshal round-trip
// into a fresh builder product) and the clone's count rescaled via
// sketch.CountScaler before merging, so the sealed pane stays exact
// for the later windows that still reference it. λ = 0 makes every
// weight 1 and is bit-identical to the undecayed sliding run.

// sealedPane is one sealed pane: its merged sketch (nil if the pane
// held engine-side state but no inserts) plus the engine-side
// counters, immutable until evicted.
type sealedPane struct {
	sketch   sketch.Sketch
	values   []float64
	accepted int64
	degrades int // budget degradations applied to this pane's sketch
}

// gcdDur is the greatest common divisor of two positive durations.
func gcdDur(a, b time.Duration) time.Duration {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// initPanes switches rs into pane mode, deriving the pane geometry
// from WindowSize and Slide and re-deriving the run span: the run ends
// when the last window does, (NumWindows-1)·Slide + WindowSize after
// the origin, not NumWindows·WindowSize.
func (rs *runState) initPanes() {
	cfg := &rs.cfg
	g := gcdDur(cfg.WindowSize, cfg.Slide)
	rs.paneMode = true
	rs.paneSize = g
	rs.panesPerGap = int(cfg.Slide / g)
	rs.panesPerWin = int(cfg.WindowSize / g)
	rs.firstOff = 1 - int((cfg.WindowSize+cfg.Slide-1)/cfg.Slide)
	rs.numPanes = rs.paneEnd(cfg.NumWindows - 1)
	rs.sealed = map[int]*sealedPane{}
	rs.runEnd = g * time.Duration(rs.numPanes)
	rs.genEnd = rs.runEnd + cfg.WindowSize
}

// paneEnd is the exclusive pane bound of window k; the window's end
// time is paneEnd(k)·paneSize.
func (rs *runState) paneEnd(k int) int {
	return (rs.firstOff+k)*rs.panesPerGap + rs.panesPerWin
}

// paneStart is the inclusive first pane of window k, clamped to the
// stream origin for the early windows.
func (rs *runState) paneStart(k int) int {
	s := (rs.firstOff + k) * rs.panesPerGap
	if s < 0 {
		s = 0
	}
	return s
}

// lateWindowOf attributes a late event in sealed pane pi to the newest
// already-fired window containing that pane, for the per-window
// late-drop accounting.
func (rs *runState) lateWindowOf(pi int) int {
	k := pi/rs.panesPerGap - rs.firstOff
	if k > rs.nextFire-1 {
		k = rs.nextFire - 1
	}
	if k >= rs.cfg.NumWindows {
		k = rs.cfg.NumWindows - 1
	}
	return k
}

// routePaned classifies one event in pane mode: reject, late-drop
// (sealed pane), or insert into its pane. The open map is keyed by
// pane index; the sink's window key is the pane index too.
func (rs *runState) routePaned(ev Event) {
	cfg := &rs.cfg
	pi := int(ev.GenTime / rs.paneSize)
	switch {
	case math.IsNaN(ev.Value) || math.IsInf(ev.Value, 0):
		// Tracked-range guard: pi < numPanes ⟺ GenTime < runEnd, the
		// pane-mode equivalent of the tumbling wi < NumWindows check.
		if pi >= 0 && pi < rs.numPanes {
			rs.stats.RejectedInput++
			if rs.met != nil {
				rs.met.RejectedInput.Inc()
			}
		}
	case pi < rs.nextSeal:
		// The pane was sealed when its first window fired: the event
		// is dropped from every window, including unfired ones — the
		// pane-sharing late rule (§15).
		if pi >= 0 {
			rs.lateOf[rs.lateWindowOf(pi)]++
			rs.stats.DroppedLate++
			if rs.met != nil {
				rs.met.DroppedLate.Inc()
			}
		}
	case pi < rs.numPanes:
		if rs.shedding {
			// Budget exhausted past every degradation rung: shed, count,
			// and let the event still advance the watermark in process.
			rs.stats.ShedBudget++
			if rs.met != nil {
				rs.met.BudgetShed.Inc()
			}
			return
		}
		w := rs.open[pi]
		if w == nil {
			w = &windowState{index: pi}
			rs.open[pi] = w
			if rs.met != nil {
				rs.met.PanesOpen.Set(int64(len(rs.open) + len(rs.sealed)))
			}
		}
		part := ev.Partition % cfg.Partitions
		if rs.serialFaults != nil {
			rs.serialFaults.OnEvent(0, part, rs.serialInserts, rs.partInserts[part])
			rs.serialInserts++
			rs.partInserts[part]++
		}
		rs.sink.insert(pi, part, ev.Value)
		if rs.sharedW != nil {
			rs.sharedW.Insert(ev.Value)
		}
		w.accepted++
		rs.stats.Accepted++
		if rs.met != nil {
			rs.met.Inserted.Inc()
		}
		if cfg.CollectValues {
			w.values = append(w.values, ev.Value)
		}
	}
}

// sealPane pulls pane j's partition sketches from the sink (a fire
// barrier for that pane) and merges them, in partition order, into one
// immutable pane sketch. Panes that saw no events leave no entry.
func (rs *runState) sealPane(j int) error {
	w := rs.open[j]
	delete(rs.open, j)
	parts, sinkDeg := rs.sink.partials(j)
	if err := rs.sink.err(); err != nil {
		return err
	}
	var sk sketch.Sketch
	for _, p := range parts {
		if p == nil {
			continue
		}
		if sk == nil {
			sk = rs.cfg.Builder()
		}
		if err := sk.Merge(p); err != nil {
			return fmt.Errorf("stream: pane %d merge: %w", j, err)
		}
	}
	if sk == nil && w == nil {
		return nil
	}
	sp := &sealedPane{sketch: sk, degrades: sinkDeg}
	if w != nil {
		sp.values = w.values
		sp.accepted = w.accepted
		sp.degrades += w.degrades
	}
	rs.sealed[j] = sp
	if sk != nil && rs.gov != nil {
		// Sealed panes stay resident until evicted, so the governor
		// tracks them under the negative-id namespace (-1-j).
		rs.gov.Track(-1-int64(j), sk)
	}
	return nil
}

// paneWeight is pane j's decay weight when merged into a window ending
// at endT: exp(-λ·age) with age the seconds from the pane's end to the
// window's end. The window's newest pane has age 0 and weight 1.
func (rs *runState) paneWeight(j int, endT time.Duration) float64 {
	if rs.cfg.DecayLambda == 0 {
		return 1
	}
	age := (endT - rs.paneSize*time.Duration(j+1)).Seconds()
	return math.Exp(-rs.cfg.DecayLambda * age)
}

// cloneScaled clones a sealed pane sketch via a Marshal/Unmarshal
// round-trip into a fresh builder product and rescales the clone's
// count by g, leaving the original untouched for later windows.
func (rs *runState) cloneScaled(src sketch.Sketch, g float64) (sketch.Sketch, error) {
	blob, err := src.MarshalBinary()
	if err != nil {
		return nil, fmt.Errorf("stream: decay clone: %w", err)
	}
	clone := rs.cfg.Builder()
	if err := clone.UnmarshalBinary(blob); err != nil {
		return nil, fmt.Errorf("stream: decay clone: %w", err)
	}
	clone.(sketch.CountScaler).ScaleCount(g)
	return clone, nil
}

// firePaned fires window k: seal every pane the fire makes immutable,
// assemble the window by merging its panes oldest-first (down-weighted
// under decay), emit, and evict panes no remaining window references.
func (rs *runState) firePaned(k int) error {
	endPane := rs.paneEnd(k)
	for j := rs.nextSeal; j < endPane; j++ {
		if err := rs.sealPane(j); err != nil {
			return err
		}
	}
	rs.nextSeal = endPane
	startPane := rs.paneStart(k)
	endT := rs.paneSize * time.Duration(endPane)
	merged := rs.cfg.Builder()
	var values []float64
	var accepted int64
	degrades := 0
	paneCounts := make([]int, 0, endPane-startPane)
	for j := startPane; j < endPane; j++ {
		sp := rs.sealed[j]
		if sp == nil {
			paneCounts = append(paneCounts, 0)
			continue
		}
		paneCounts = append(paneCounts, int(sp.accepted))
		accepted += sp.accepted
		degrades += sp.degrades
		if rs.cfg.CollectValues {
			values = append(values, sp.values...)
		}
		if sp.sketch == nil {
			continue
		}
		src := sp.sketch
		if g := rs.paneWeight(j, endT); g < 1 {
			clone, err := rs.cloneScaled(src, g)
			if err != nil {
				return err
			}
			src = clone
		}
		if err := merged.Merge(src); err != nil {
			return fmt.Errorf("stream: window %d pane merge: %w", k, err)
		}
		if rs.met != nil {
			rs.met.PaneMerges.Inc()
		}
	}
	if rs.met != nil {
		rs.met.WindowFires.Inc()
	}
	rs.fired++
	rs.sinceSnap++
	rs.emit(WindowResult{
		Index:         k,
		Start:         rs.paneSize * time.Duration(startPane),
		End:           endT,
		Sketch:        merged,
		Values:        values,
		Accepted:      accepted,
		PaneCounts:    paneCounts,
		Degradations:  degrades,
		AccuracyBound: accuracyBoundOf(merged),
	})
	// Evict panes below the next window's start — no remaining window
	// references them. After the last window everything goes.
	keep := rs.numPanes
	if k+1 < rs.cfg.NumWindows {
		keep = rs.paneStart(k + 1)
	}
	for j := range rs.sealed {
		if j < keep {
			delete(rs.sealed, j)
			rs.gov.Untrack(-1 - int64(j))
		}
	}
	if rs.met != nil {
		rs.met.PanesOpen.Set(int64(len(rs.open) + len(rs.sealed)))
	}
	return nil
}
