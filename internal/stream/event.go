// Package stream is the stream-processing substrate standing in for
// Apache Flink in the accuracy experiments (paper Sec 4.2): event-time
// tumbling windows over a source producing events at a fixed rate, with a
// configurable network-delay model, watermark-based window firing, and
// dropped late events (Sec 2.5–2.6).
//
// Time is fully simulated — events carry virtual generation and arrival
// timestamps and the engine processes them in arrival order — so a
// "220-second" Flink run executes as fast as the inserts do while
// preserving exactly the event-selection semantics (which events make it
// into which window, and which are dropped as late) of the wall-clock
// system.
//
// The engine also exercises mergeability the way a distributed SPE does:
// events are partitioned across P partition-local sketches that are
// merged when the window fires (Sec 2.4).
package stream

import (
	"time"

	"repro/internal/datagen"
)

// Event is one stream element.
type Event struct {
	// GenTime is the event-generation (event-time) timestamp, relative to
	// the start of the run.
	GenTime time.Duration
	// Arrival is GenTime plus the simulated network delay; the engine
	// consumes events in Arrival order.
	Arrival time.Duration
	// Value is the measurement carried by the event.
	Value float64
	// Partition is the engine partition that will absorb the event.
	Partition int
}

// Before orders events by arrival time, breaking ties by generation
// time so replay is deterministic. It is the ordering of the engines'
// in-flight heap.
func (e Event) Before(other Event) bool {
	if e.Arrival != other.Arrival {
		return e.Arrival < other.Arrival
	}
	return e.GenTime < other.GenTime
}

// DelayModel produces per-event network delays (the gap between event
// generation at the source and ingestion by the SPE, Sec 2.5).
type DelayModel interface {
	// Delay returns the next event's network delay (non-negative).
	Delay() time.Duration
}

// ZeroDelay is the no-late-data configuration: events arrive the instant
// they are generated.
type ZeroDelay struct{}

// Delay implements DelayModel.
func (ZeroDelay) Delay() time.Duration { return 0 }

// ConstantDelay delays every event by the same amount (shifts arrival
// order without reordering, so it never causes drops by itself).
type ConstantDelay struct{ D time.Duration }

// Delay implements DelayModel.
func (c ConstantDelay) Delay() time.Duration { return c.D }

// ExponentialDelay draws delays from an exponential distribution — the
// paper's late-data emulation, with 150 ms as the mean network delay
// (Sec 4.6). The exponential's long tail makes a small share of events
// miss their window.
type ExponentialDelay struct {
	src *datagen.Exponential
}

// NewExponentialDelay returns an exponential delay model with the given
// mean.
func NewExponentialDelay(mean time.Duration, seed uint64) *ExponentialDelay {
	return &ExponentialDelay{src: datagen.NewExponential(float64(mean), seed)}
}

// Delay implements DelayModel.
func (e *ExponentialDelay) Delay() time.Duration {
	d := time.Duration(e.src.Next())
	if d < 0 {
		d = 0
	}
	return d
}
