package stream

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/datagen"
	"repro/internal/faultinject"
	"repro/internal/kll"
	"repro/internal/sketch"
)

// brokenMergeSketch wraps a sketch and fails every Merge — the fault a
// mismatched or corrupted partial produces in production.
type brokenMergeSketch struct {
	sketch.Sketch
}

func (b *brokenMergeSketch) Merge(sketch.Sketch) error {
	return errors.New("deliberate merge failure")
}

// TestSessionMergeErrorPropagates is the regression test for the
// session-merge failure path: a sketch Merge error during session
// window merging must surface as the run's error — not a panic that
// kills a harness driving many configurations.
func TestSessionMergeErrorPropagates(t *testing.T) {
	eng, err := NewGenericEngine(GenericConfig{
		Assigner:  SessionAssigner{Gap: 2 * time.Second},
		Rate:      100,
		RunLength: time.Second,
		Values:    datagen.NewUniform(1, 2, 9),
		Builder: func() sketch.Sketch {
			return &brokenMergeSketch{Sketch: kll.NewWithSeed(64, 1)}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("session merge failure escaped as a panic: %v", r)
		}
	}()
	_, err = eng.Run(func(GenericResult) {})
	if err == nil {
		t.Fatal("merge failure did not surface as a run error")
	}
	if !strings.Contains(err.Error(), "session merge") {
		t.Errorf("error %q does not identify the session merge", err)
	}
	if !strings.Contains(err.Error(), "deliberate merge failure") {
		t.Errorf("error %q does not wrap the sketch's merge error", err)
	}
}

// genericRecoveryCfg drives sliding windows (every event lands in two
// windows) with late drops, so the generic engine's checkpoint covers
// overlapping open windows.
func genericRecoveryCfg() GenericConfig {
	return GenericConfig{
		Assigner:      SlidingAssigner{Size: 400 * time.Millisecond, Slide: 200 * time.Millisecond},
		Rate:          2000,
		RunLength:     5 * time.Second,
		NewValues:     func() datagen.Source { return datagen.NewPareto(1, 1, 17) },
		NewDelay:      func() DelayModel { return NewExponentialDelay(80*time.Millisecond, 19) },
		Builder:       func() sketch.Sketch { return kll.NewWithSeed(128, 23) },
		CollectValues: true,
		Metrics:       testMetrics.Engine(),
	}
}

// collectGeneric runs cfg, collecting results keyed by window span so a
// re-emission after recovery overwrites its (bit-identical) original.
func collectGeneric(t *testing.T, cfg GenericConfig, into map[Window]GenericResult) (Stats, error) {
	t.Helper()
	eng, err := NewGenericEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng.Run(func(r GenericResult) { into[r.Window] = r })
}

// TestGenericCrashRecoveryDeterminism is the fault-tolerance contract
// on the generic path: crash mid-run, resume from the newest snapshot,
// and the union of pre-crash and post-resume emissions must be
// bit-identical to an uninterrupted run.
func TestGenericCrashRecoveryDeterminism(t *testing.T) {
	baseline := map[Window]GenericResult{}
	baseStats, err := collectGeneric(t, genericRecoveryCfg(), baseline)
	if err != nil {
		t.Fatal(err)
	}
	if baseStats.DroppedLate == 0 {
		t.Fatal("want late drops so recovery is tested under late-accounting pressure")
	}

	cfg := genericRecoveryCfg()
	cfg.CheckpointStore = checkpoint.NewMemStore()
	cfg.Faults = faultinject.New().WithPanic(0, 6000)

	got := map[Window]GenericResult{}
	_, err = collectGeneric(t, cfg, got)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("injected fault surfaced as %v, want *PanicError", err)
	}
	stats, err := ResumeGeneric(cfg, func(r GenericResult) { got[r.Window] = r })
	if err != nil {
		t.Fatal(err)
	}

	if stats != baseStats {
		t.Errorf("recovered stats %+v, want %+v", stats, baseStats)
	}
	if len(got) != len(baseline) {
		t.Fatalf("recovered %d windows, want %d", len(got), len(baseline))
	}
	for win, want := range baseline {
		g, ok := got[win]
		if !ok {
			t.Errorf("window %v missing after recovery", win)
			continue
		}
		if g.Accepted != want.Accepted || len(g.Values) != len(want.Values) {
			t.Errorf("window %v: accepted=%d values=%d, want accepted=%d values=%d",
				win, g.Accepted, len(g.Values), want.Accepted, len(want.Values))
		}
		if !bytes.Equal(marshal(t, g.Sketch), marshal(t, want.Sketch)) {
			t.Errorf("window %v: sketch differs from uninterrupted run", win)
		}
	}
	if got := cfg.Metrics.Restores.Load(); got == 0 {
		t.Error("resume did not record a restore")
	}
}

// TestGenericSessionCheckpoint crashes and resumes a session-window run:
// session state (merged, variable-span windows) must round-trip through
// the snapshot.
func TestGenericSessionCheckpoint(t *testing.T) {
	// Gap below the 5 ms generation interval, so sessions split and fire
	// throughout the run (snapshots exist before the crash), while the
	// delay model reorders arrivals enough that overlapping proto-windows
	// still merge open sessions.
	cfg := GenericConfig{
		Assigner:  SessionAssigner{Gap: 4 * time.Millisecond},
		Rate:      200,
		RunLength: 5 * time.Second,
		NewValues: func() datagen.Source { return datagen.NewUniform(1, 100, 31) },
		NewDelay:  func() DelayModel { return NewExponentialDelay(20*time.Millisecond, 37) },
		Builder:   func() sketch.Sketch { return kll.NewWithSeed(64, 41) },
	}
	baseline := map[Window]GenericResult{}
	baseStats, err := collectGeneric(t, cfg, baseline)
	if err != nil {
		t.Fatal(err)
	}

	chaos := cfg
	chaos.CheckpointStore = checkpoint.NewMemStore()
	chaos.Faults = faultinject.New().WithPanic(0, 500)
	got := map[Window]GenericResult{}
	_, err = collectGeneric(t, chaos, got)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("injected fault surfaced as %v, want *PanicError", err)
	}
	stats, err := ResumeGeneric(chaos, func(r GenericResult) { got[r.Window] = r })
	if err != nil {
		t.Fatal(err)
	}
	if stats != baseStats {
		t.Errorf("recovered stats %+v, want %+v", stats, baseStats)
	}
	if len(got) != len(baseline) {
		t.Fatalf("recovered %d session windows, want %d", len(got), len(baseline))
	}
	for win, want := range baseline {
		g, ok := got[win]
		if !ok {
			t.Errorf("session %v missing after recovery", win)
			continue
		}
		if !bytes.Equal(marshal(t, g.Sketch), marshal(t, want.Sketch)) {
			t.Errorf("session %v: sketch differs from uninterrupted run", win)
		}
	}
}
