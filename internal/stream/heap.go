package stream

// heapOrdered constrains heap elements to types that define their own
// strict weak ordering. The method receives the other element by value,
// so comparisons compile to direct (inlinable) calls.
type heapOrdered[T any] interface {
	// Before reports whether the receiver sorts strictly before other.
	Before(other T) bool
}

// minHeap is a non-boxing binary min-heap. It replaces container/heap
// on the engines' hot path: container/heap funnels every element
// through `any` (one allocation per Push and per Pop) and every
// comparison through a non-inlinable interface call, which at stream
// rates dominates the cost of the delay-reordering buffer. sketchlint's
// container-heap rule keeps this package from regressing to the boxed
// version.
type minHeap[T heapOrdered[T]] struct {
	data []T
}

// Len reports the number of buffered elements.
func (h *minHeap[T]) Len() int { return len(h.data) }

// Min returns the smallest element without removing it. It must not be
// called on an empty heap.
func (h *minHeap[T]) Min() T { return h.data[0] }

// Push adds x.
//
//sketch:hotpath
func (h *minHeap[T]) Push(x T) {
	h.data = append(h.data, x)
	// Sift up.
	i := len(h.data) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.data[i].Before(h.data[parent]) {
			break
		}
		h.data[i], h.data[parent] = h.data[parent], h.data[i]
		i = parent
	}
}

// Pop removes and returns the smallest element. It must not be called
// on an empty heap.
//
//sketch:hotpath
func (h *minHeap[T]) Pop() T {
	d := h.data
	top := d[0]
	n := len(d) - 1
	d[0] = d[n]
	var zero T
	d[n] = zero // release references held by the vacated slot
	h.data = d[:n]

	// Sift down.
	d = h.data
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		small := left
		if right := left + 1; right < n && d[right].Before(d[left]) {
			small = right
		}
		if !d[small].Before(d[i]) {
			break
		}
		d[i], d[small] = d[small], d[i]
		i = small
	}
	return top
}
