package stream

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/datagen"
	"repro/internal/kll"
	"repro/internal/obs"
	"repro/internal/sketch"
)

// paneCfg is the job for the pane-sharing recompute-reference tests:
// zero delay so nothing is late and the reference can reconstruct the
// exact accepted stream, seeded KLL so every Builder() product is
// identical and any merge-order deviation shows in the serialized
// bytes. Slide = WindowSize/4, so every window spans 4 panes and the
// first three windows are clamped to the stream origin.
func paneCfg() Config {
	return Config{
		WindowSize:    time.Second,
		Slide:         250 * time.Millisecond,
		Rate:          4000,
		NumWindows:    6,
		Partitions:    3,
		NewValues:     func() datagen.Source { return datagen.NewPareto(1, 1, 41) },
		Builder:       func() sketch.Sketch { return kll.NewWithSeed(128, 99) },
		CollectValues: true,
		Metrics:       testMetrics.Engine(),
	}
}

// refPane is one pane of the recompute reference: the accepted values
// split by partition (insert order) and concatenated (window order).
type refPane struct {
	parts  [][]float64
	values []float64
}

// paneReference recomputes every sliding window of cfg from scratch —
// no sharing, no engine — mirroring the engine's two-level merge
// structure exactly: per-partition sketches fold into a fresh pane
// sketch in partition order, pane sketches fold into a fresh window
// sketch in ascending pane order. cfg must use zero delay (the
// reference reconstructs the accepted stream as the generation
// sequence) and NewValues (the engine consumes its own source copy).
// lambda > 0 applies the engine's decay rule: panes older than the
// window's newest are cloned and count-scaled by exp(-lambda·age)
// before merging.
func paneReference(t *testing.T, cfg Config, lambda float64) []WindowResult {
	t.Helper()
	g := gcdDur(cfg.WindowSize, cfg.Slide)
	pps := int(cfg.Slide / g)
	ppw := int(cfg.WindowSize / g)
	firstOff := 1 - int((cfg.WindowSize+cfg.Slide-1)/cfg.Slide)
	paneEnd := func(k int) int { return (firstOff+k)*pps + ppw }
	paneStart := func(k int) int {
		if s := (firstOff + k) * pps; s > 0 {
			return s
		}
		return 0
	}
	numPanes := paneEnd(cfg.NumWindows - 1)
	runEnd := g * time.Duration(numPanes)

	// Reconstruct the accepted stream: partition cycles per draw, pane
	// is the generation time's slot, zero delay keeps generation order.
	interval := time.Second / time.Duration(cfg.Rate)
	src := cfg.NewValues()
	panes := make([]*refPane, numPanes)
	draw := 0
	for gen := time.Duration(0); gen < runEnd; gen += interval {
		v := src.Next()
		part := draw % cfg.Partitions
		draw++
		p := panes[gen/g]
		if p == nil {
			p = &refPane{parts: make([][]float64, cfg.Partitions)}
			panes[gen/g] = p
		}
		p.parts[part] = append(p.parts[part], v)
		p.values = append(p.values, v)
	}

	paneSk := make([]sketch.Sketch, numPanes)
	for j, p := range panes {
		if p == nil {
			continue
		}
		var sk sketch.Sketch
		for part := 0; part < cfg.Partitions; part++ {
			if len(p.parts[part]) == 0 {
				continue
			}
			ps := cfg.Builder()
			for _, v := range p.parts[part] {
				ps.Insert(v)
			}
			if sk == nil {
				sk = cfg.Builder()
			}
			if err := sk.Merge(ps); err != nil {
				t.Fatal(err)
			}
		}
		paneSk[j] = sk
	}

	out := make([]WindowResult, cfg.NumWindows)
	for k := range out {
		endT := g * time.Duration(paneEnd(k))
		merged := cfg.Builder()
		var values []float64
		var accepted int64
		var paneCounts []int
		for j := paneStart(k); j < paneEnd(k); j++ {
			p := panes[j]
			if p == nil {
				paneCounts = append(paneCounts, 0)
				continue
			}
			paneCounts = append(paneCounts, len(p.values))
			accepted += int64(len(p.values))
			values = append(values, p.values...)
			src := paneSk[j]
			if w := math.Exp(-lambda * (endT - g*time.Duration(j+1)).Seconds()); lambda > 0 && w < 1 {
				clone := cfg.Builder()
				blob, err := src.MarshalBinary()
				if err != nil {
					t.Fatal(err)
				}
				if err := clone.UnmarshalBinary(blob); err != nil {
					t.Fatal(err)
				}
				clone.(sketch.CountScaler).ScaleCount(w)
				src = clone
			}
			if err := merged.Merge(src); err != nil {
				t.Fatal(err)
			}
		}
		out[k] = WindowResult{
			Index:      k,
			Start:      g * time.Duration(paneStart(k)),
			End:        endT,
			Sketch:     merged,
			Values:     values,
			Accepted:   accepted,
			PaneCounts: paneCounts,
		}
	}
	return out
}

// assertSameWindows compares two window lists bit-exactly, including
// the pane decomposition PaneCounts reports.
func assertSameWindows(t *testing.T, label string, got, want []WindowResult) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d windows, want %d", label, len(got), len(want))
	}
	for i, w := range want {
		g := got[i]
		if g.Index != w.Index || g.Start != w.Start || g.End != w.End || g.Accepted != w.Accepted {
			t.Errorf("%s window %d: header Index=%d [%v,%v) accepted=%d, want Index=%d [%v,%v) accepted=%d",
				label, i, g.Index, g.Start, g.End, g.Accepted, w.Index, w.Start, w.End, w.Accepted)
		}
		if len(g.PaneCounts) != len(w.PaneCounts) {
			t.Fatalf("%s window %d: %d pane counts, want %d", label, i, len(g.PaneCounts), len(w.PaneCounts))
		}
		for j := range w.PaneCounts {
			if g.PaneCounts[j] != w.PaneCounts[j] {
				t.Errorf("%s window %d pane %d: count %d, want %d", label, i, j, g.PaneCounts[j], w.PaneCounts[j])
			}
		}
		if len(g.Values) != len(w.Values) {
			t.Fatalf("%s window %d: %d values, want %d", label, i, len(g.Values), len(w.Values))
		}
		for j := range w.Values {
			if g.Values[j] != w.Values[j] {
				t.Fatalf("%s window %d value %d: %v, want %v", label, i, j, g.Values[j], w.Values[j])
			}
		}
		if !bytes.Equal(marshal(t, g.Sketch), marshal(t, w.Sketch)) {
			t.Errorf("%s window %d: merged sketch differs", label, i)
		}
	}
}

// TestPaneBitIdentityVsRecompute is the pane-sharing correctness
// contract: the engine's pane-merged sliding windows are bit-identical
// to windows recomputed from scratch, including the clamped
// start-of-stream windows, so sharing is a pure optimization with no
// semantic drift.
func TestPaneBitIdentityVsRecompute(t *testing.T) {
	want := paneReference(t, paneCfg(), 0)
	got, stats := mustRunCollect(t, paneCfg())
	assertSameWindows(t, "pane-shared", got, want)
	if stats.Generated != stats.Accepted+stats.DroppedLate+stats.RejectedInput {
		t.Errorf("stats identity violated: %+v", stats)
	}
	// Start-of-stream coverage: the first window is clamped to the
	// origin and holds exactly the events generated before its end.
	first := got[0]
	if first.Start != 0 {
		t.Errorf("first window starts at %v, want 0", first.Start)
	}
	cfg := paneCfg()
	if wantN := int64(first.End / (time.Second / time.Duration(cfg.Rate))); first.Accepted != wantN {
		t.Errorf("first window accepted %d events, want every one of the %d generated before %v", first.Accepted, wantN, first.End)
	}
	if first.End-first.Start >= cfg.WindowSize {
		t.Errorf("first clamped window spans %v, want < WindowSize", first.End-first.Start)
	}
	last := got[len(got)-1]
	if last.End-last.Start != cfg.WindowSize {
		t.Errorf("steady-state window spans %v, want %v", last.End-last.Start, cfg.WindowSize)
	}
}

// TestPaneDecayVsRecompute extends the recompute contract to the
// exponentially decayed mode: the engine's per-pane clone-and-scale
// assembly matches an independent recomputation applying the same
// weights.
func TestPaneDecayVsRecompute(t *testing.T) {
	const lambda = 0.9
	cfg := paneCfg()
	cfg.DecayLambda = lambda
	want := paneReference(t, paneCfg(), lambda)
	got, _ := mustRunCollect(t, cfg)
	assertSameWindows(t, "decayed", got, want)
}

// TestPaneParallelBitIdentical extends the Workers determinism
// guarantee to pane mode: under a reordering delay model (late drops
// present), the parallel pane path must match the sequential pane path
// byte-for-byte at every worker count, including uneven partition
// distributions. Run under -race (scripts/verify.sh does) this is also
// the pane path's data-race exercise.
func TestPaneParallelBitIdentical(t *testing.T) {
	run := func(workers, partitions int) ([]WindowResult, Stats) {
		cfg := paneCfg()
		cfg.Partitions = partitions
		cfg.Workers = workers
		cfg.NewDelay = func() DelayModel { return NewExponentialDelay(150*time.Millisecond, 43) }
		return mustRunCollect(t, cfg)
	}
	for _, partitions := range []int{4, 5} {
		seqResults, seqStats := run(1, partitions)
		if seqStats.DroppedLate == 0 {
			t.Fatal("want late drops in the reference run so sealed-pane accounting is tested under reordering pressure")
		}
		if seqStats.Generated != seqStats.Accepted+seqStats.DroppedLate+seqStats.RejectedInput {
			t.Fatalf("stats identity violated: %+v", seqStats)
		}
		for _, workers := range []int{2, 4, 8} {
			parResults, parStats := run(workers, partitions)
			if parStats != seqStats {
				t.Errorf("partitions=%d workers=%d: stats %+v, sequential %+v", partitions, workers, parStats, seqStats)
			}
			assertSameWindows(t, "parallel-pane", parResults, seqResults)
		}
	}
}

// TestDecayMetamorphic pins the decay semantics without a reference
// implementation: λ=0 is byte-identical to the undecayed sliding run;
// under λ>0 a single-pane window (the clamped first window, whose only
// pane has age 0) is still byte-identical, every multi-pane window
// summarizes strictly fewer weighted events, and the engine-side pane
// accounting (PaneCounts) is untouched by the weighting.
func TestDecayMetamorphic(t *testing.T) {
	plain, _ := mustRunCollect(t, paneCfg())

	zeroCfg := paneCfg()
	zeroCfg.DecayLambda = 0
	zero, _ := mustRunCollect(t, zeroCfg)
	assertSameWindows(t, "lambda-zero", zero, plain)

	decCfg := paneCfg()
	decCfg.DecayLambda = 1.5
	decayed, _ := mustRunCollect(t, decCfg)
	if len(decayed) != len(plain) {
		t.Fatalf("%d decayed windows, want %d", len(decayed), len(plain))
	}
	for i, d := range decayed {
		p := plain[i]
		if len(d.PaneCounts) != len(p.PaneCounts) {
			t.Fatalf("window %d: %d pane counts, want %d", i, len(d.PaneCounts), len(p.PaneCounts))
		}
		for j := range p.PaneCounts {
			if d.PaneCounts[j] != p.PaneCounts[j] {
				t.Errorf("window %d pane %d: decay changed the accepted count %d -> %d", i, j, p.PaneCounts[j], d.PaneCounts[j])
			}
		}
		if len(d.PaneCounts) == 1 {
			if !bytes.Equal(marshal(t, d.Sketch), marshal(t, p.Sketch)) {
				t.Errorf("window %d: single-pane window (newest pane, weight 1) differs under decay", i)
			}
			continue
		}
		if dc, pc := d.Sketch.Count(), p.Sketch.Count(); dc >= pc {
			t.Errorf("window %d: decayed count %d, want < undecayed %d", i, dc, pc)
		}
	}
}

// TestPaneMetrics asserts the pane-sharing observability: PaneMerges
// counts one merge per (window, non-empty pane) pair, WindowFires
// counts the sliding windows, and PanesOpen returns to zero once the
// final window evicts everything.
func TestPaneMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := paneCfg()
	cfg.Metrics = reg.Engine()
	got, _ := mustRunCollect(t, cfg)

	var wantMerges int64
	for _, r := range got {
		for _, c := range r.PaneCounts {
			if c > 0 {
				wantMerges++
			}
		}
	}
	if merges := reg.Engine().PaneMerges.Load(); merges != wantMerges {
		t.Errorf("PaneMerges = %d, want %d", merges, wantMerges)
	}
	if fires := reg.Engine().WindowFires.Load(); fires != int64(cfg.NumWindows) {
		t.Errorf("WindowFires = %d, want %d", fires, cfg.NumWindows)
	}
	if open := reg.Engine().PanesOpen.Load(); open != 0 {
		t.Errorf("PanesOpen = %d after the run, want 0 (all panes evicted)", open)
	}
}

// TestTumblingSlideDegenerate asserts Slide == WindowSize takes the
// tumbling fast path: output is byte-identical to Slide == 0 and
// carries no pane decomposition.
func TestTumblingSlideDegenerate(t *testing.T) {
	tumbling := paneCfg()
	tumbling.Slide = 0
	want, wantStats := mustRunCollect(t, tumbling)

	degenerate := paneCfg()
	degenerate.Slide = degenerate.WindowSize
	got, gotStats := mustRunCollect(t, degenerate)
	if gotStats != wantStats {
		t.Errorf("stats %+v, want %+v", gotStats, wantStats)
	}
	if len(got) != len(want) {
		t.Fatalf("%d windows, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].PaneCounts != nil {
			t.Errorf("window %d: tumbling-degenerate run reports pane counts %v", i, got[i].PaneCounts)
		}
		if got[i].Start != want[i].Start || got[i].End != want[i].End || got[i].Accepted != want[i].Accepted {
			t.Errorf("window %d: header %+v, want %+v", i, got[i], want[i])
		}
		if !bytes.Equal(marshal(t, got[i].Sketch), marshal(t, want[i].Sketch)) {
			t.Errorf("window %d: sketch differs from tumbling run", i)
		}
	}
}

// noScale strips the CountScaler implementation off a sketch by hiding
// it behind the plain Sketch interface's method set.
type noScale struct{ sketch.Sketch }

// TestSlidingConstructionValidation pins the construction-time
// rejection of misconfigured sliding jobs: out-of-range slides and
// unusable decay setups fail NewEngine with a descriptive error
// instead of surfacing mid-run.
func TestSlidingConstructionValidation(t *testing.T) {
	base := paneCfg()
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"negative slide", func(c *Config) { c.Slide = -time.Second }, "Slide"},
		{"slide above window", func(c *Config) { c.Slide = c.WindowSize + 1 }, "Slide"},
		{"decay on tumbling", func(c *Config) { c.Slide = 0; c.DecayLambda = 1 }, "sliding mode"},
		{"decay on degenerate slide", func(c *Config) { c.Slide = c.WindowSize; c.DecayLambda = 1 }, "sliding mode"},
		{"negative decay", func(c *Config) { c.DecayLambda = -1 }, "DecayLambda"},
		{"NaN decay", func(c *Config) { c.DecayLambda = math.NaN() }, "DecayLambda"},
		{"decay without CountScaler", func(c *Config) {
			c.DecayLambda = 1
			inner := c.Builder
			c.Builder = func() sketch.Sketch { return noScale{inner()} }
		}, "CountScaler"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mut(&cfg)
			_, err := NewEngine(cfg)
			if err == nil {
				t.Fatal("NewEngine accepted the misconfiguration")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestGenericSlidingValidation pins the same construction-time
// rejection for the generic engine's SlidingAssigner, which used to
// panic per-event inside Assign instead.
func TestGenericSlidingValidation(t *testing.T) {
	mk := func(size, slide time.Duration) error {
		_, err := NewGenericEngine(GenericConfig{
			Assigner:  SlidingAssigner{Size: size, Slide: slide},
			Rate:      1000,
			RunLength: time.Second,
			Values:    datagen.NewUniform(0, 1, 7),
			Builder:   ddBuilder,
		})
		return err
	}
	if err := mk(time.Second, 0); err == nil {
		t.Error("NewGenericEngine accepted Slide = 0")
	}
	if err := mk(time.Second, 2*time.Second); err == nil {
		t.Error("NewGenericEngine accepted Slide > Size")
	}
	if err := mk(time.Second, time.Second); err != nil {
		t.Errorf("NewGenericEngine rejected Slide == Size: %v", err)
	}
}

// TestSlidingAssignerStartOfStream pins the negative-start clamping:
// events near the stream origin are covered by the full ⌈Size/Slide⌉
// window family, with nominal starts before the origin clamped to 0
// and every end kept on the slide lattice.
func TestSlidingAssignerStartOfStream(t *testing.T) {
	a := SlidingAssigner{Size: 4 * time.Second, Slide: time.Second}
	wins := a.Assign(500 * time.Millisecond)
	if len(wins) != 4 {
		t.Fatalf("Assign(500ms) returned %d windows, want 4", len(wins))
	}
	for i, w := range wins {
		if !w.Contains(500 * time.Millisecond) {
			t.Errorf("window %v does not contain the event", w)
		}
		if w.Start != 0 {
			t.Errorf("start-of-stream window %d starts at %v, want clamped 0", i, w.Start)
		}
		if w.End%a.Slide != 0 {
			t.Errorf("window end %v is off the slide lattice", w.End)
		}
		if w.Start < 0 || w.End <= w.Start {
			t.Errorf("degenerate window %v", w)
		}
	}
	// Mid-stream, the same family is unclamped and spans exactly Size.
	for _, w := range a.Assign(10 * time.Second) {
		if w.End-w.Start != a.Size {
			t.Errorf("mid-stream window %v spans %v, want %v", w, w.End-w.Start, a.Size)
		}
		if !w.Contains(10 * time.Second) {
			t.Errorf("mid-stream window %v does not contain the event", w)
		}
	}
}

// TestGenericSlidingStartOfStream runs the generic engine over a
// sliding assigner with zero delay and checks full start-of-stream
// coverage: nothing is dropped, the clamped windows fire with Start 0,
// and each holds exactly the events generated before its end.
func TestGenericSlidingStartOfStream(t *testing.T) {
	cfg := GenericConfig{
		Assigner:      SlidingAssigner{Size: 2 * time.Second, Slide: 500 * time.Millisecond},
		Rate:          1000,
		RunLength:     3 * time.Second,
		Values:        datagen.NewUniform(0, 100, 17),
		Builder:       ddBuilder,
		CollectValues: true,
	}
	eng, err := NewGenericEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var results []GenericResult
	stats, err := eng.Run(func(r GenericResult) { results = append(results, r) })
	if err != nil {
		t.Fatal(err)
	}
	if stats.DroppedLate != 0 {
		t.Errorf("zero-delay run dropped %d events late", stats.DroppedLate)
	}
	if stats.Accepted != stats.Generated {
		t.Errorf("accepted %d of %d generated events; start-of-stream events lost", stats.Accepted, stats.Generated)
	}
	interval := time.Second / time.Duration(cfg.Rate)
	clamped := 0
	for _, r := range results {
		if r.Window.Start != 0 {
			continue
		}
		clamped++
		if want := int64(r.Window.End / interval); r.Accepted != want {
			t.Errorf("clamped window %v accepted %d events, want %d", r.Window, r.Accepted, want)
		}
	}
	// Ends 500ms..2s sit before the first unclamped start: 4 clamped
	// windows, the full ⌈Size/Slide⌉ family.
	if clamped != 4 {
		t.Errorf("%d clamped start-of-stream windows fired, want 4", clamped)
	}
}
