package stream

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/datagen"
	"repro/internal/faultinject"
	"repro/internal/kll"
	"repro/internal/sketch"
)

// recoveryCfg is the shared configuration of the crash-recovery tests:
// KLL makes the comparison strict (compaction coin flips depend on the
// exact insert sequence AND the exact RNG state, so a resume that
// diverged anywhere would show in the serialized sketches), and the
// exponential delay produces late drops, so the late-accounting state
// is exercised across the crash too.
func recoveryCfg(workers, partitions int) Config {
	return Config{
		WindowSize:    time.Second,
		Rate:          5000,
		NumWindows:    4,
		Partitions:    partitions,
		Workers:       workers,
		NewValues:     func() datagen.Source { return datagen.NewPareto(1, 1, 41) },
		NewDelay:      func() DelayModel { return NewExponentialDelay(150*time.Millisecond, 43) },
		Builder:       func() sketch.Sketch { return kll.NewWithSeed(128, 99) },
		CollectValues: true,
		Metrics:       testMetrics.Engine(),
	}
}

// mustRunCollect runs cfg without faults and returns the collected
// results and stats.
func mustRunCollect(t *testing.T, cfg Config) ([]WindowResult, Stats) {
	t.Helper()
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	results, stats, err := eng.RunCollect()
	if err != nil {
		t.Fatal(err)
	}
	return results, stats
}

// assertSameRun asserts two runs produced bit-identical windows and
// equal stats, and that the accounting identity held.
func assertSameRun(t *testing.T, label string, got []WindowResult, gotStats Stats, want []WindowResult, wantStats Stats) {
	t.Helper()
	if gotStats != wantStats {
		t.Errorf("%s: stats %+v, want %+v", label, gotStats, wantStats)
	}
	if gotStats.Generated != gotStats.Accepted+gotStats.DroppedLate+gotStats.RejectedInput {
		t.Errorf("%s: stats identity violated: %+v", label, gotStats)
	}
	if len(got) != len(want) {
		t.Fatalf("%s: %d windows, want %d", label, len(got), len(want))
	}
	for i, w := range want {
		g := got[i]
		if g.Index != w.Index || g.Start != w.Start || g.End != w.End ||
			g.Accepted != w.Accepted || g.DroppedLate != w.DroppedLate {
			t.Errorf("%s window %d: header %+v, want %+v", label, i, g, w)
		}
		if len(g.Values) != len(w.Values) {
			t.Fatalf("%s window %d: %d values, want %d", label, i, len(g.Values), len(w.Values))
		}
		for j := range w.Values {
			if g.Values[j] != w.Values[j] {
				t.Fatalf("%s window %d value %d: %v, want %v", label, i, j, g.Values[j], w.Values[j])
			}
		}
		if !bytes.Equal(marshal(t, g.Sketch), marshal(t, w.Sketch)) {
			t.Errorf("%s window %d: merged sketch differs", label, i)
		}
	}
}

// TestCrashRecoveryDeterminism is the fault-tolerance contract: a run
// that crashes (injected worker panic) and resumes from its last
// checkpoint produces windows bit-identical to an uninterrupted run,
// with the stats identity intact, across the workers × partitions
// matrix on both the serial and parallel paths. The baseline runs
// WITHOUT checkpointing, so this also proves snapshots are transparent
// to the results.
func TestCrashRecoveryDeterminism(t *testing.T) {
	for _, partitions := range []int{1, 4} {
		for _, workers := range []int{1, 4} {
			baseline, baseStats := mustRunCollect(t, recoveryCfg(workers, partitions))

			cfg := recoveryCfg(workers, partitions)
			cfg.CheckpointStore = checkpoint.NewMemStore()
			// Crash a worker that exists after clamping (workers >
			// partitions collapse to the serial path's worker 0) midway
			// through the run, after checkpoints exist.
			worker := 0
			if workers > 1 && partitions > 1 {
				worker = 1
			}
			cfg.Faults = faultinject.New().WithPanic(worker, 2500)

			results, stats, err := RunRecovering(cfg)
			if err != nil {
				t.Fatalf("workers=%d partitions=%d: %v", workers, partitions, err)
			}
			label := "recovered"
			assertSameRun(t, label, results, stats, baseline, baseStats)
			if got := cfg.Metrics.RecoveredPanics.Load(); got == 0 {
				t.Errorf("workers=%d partitions=%d: fault did not fire (RecoveredPanics=0)", workers, partitions)
			}
		}
	}
}

// paneRecoveryCfg is recoveryCfg in pane-sharing sliding mode: windows
// still 1 s long but starting every 500 ms, so snapshots carry sealed
// panes (retained for unfired overlapping windows) alongside the open
// ones, and restore must rebuild both plus the re-derived seal
// horizon.
func paneRecoveryCfg(workers, partitions int, lambda float64) Config {
	cfg := recoveryCfg(workers, partitions)
	cfg.Slide = 500 * time.Millisecond
	cfg.DecayLambda = lambda
	return cfg
}

// TestPaneCrashRecoveryDeterminism extends the fault-tolerance
// contract to pane-sharing sliding windows, undecayed and decayed: a
// crashed-and-resumed run is bit-identical to an uninterrupted one —
// including the pane decomposition each window reports — across the
// workers × partitions matrix.
func TestPaneCrashRecoveryDeterminism(t *testing.T) {
	for _, lambda := range []float64{0, 0.8} {
		for _, partitions := range []int{1, 4} {
			for _, workers := range []int{1, 4} {
				baseline, baseStats := mustRunCollect(t, paneRecoveryCfg(workers, partitions, lambda))

				cfg := paneRecoveryCfg(workers, partitions, lambda)
				cfg.CheckpointStore = checkpoint.NewMemStore()
				worker := 0
				if workers > 1 && partitions > 1 {
					worker = 1
				}
				cfg.Faults = faultinject.New().WithPanic(worker, 2500)

				results, stats, err := RunRecovering(cfg)
				if err != nil {
					t.Fatalf("lambda=%v workers=%d partitions=%d: %v", lambda, workers, partitions, err)
				}
				assertSameRun(t, "pane-recovered", results, stats, baseline, baseStats)
				assertSameWindows(t, "pane-recovered", results, baseline)
				if cfg.Metrics.RecoveredPanics.Load() == 0 {
					t.Errorf("lambda=%v workers=%d partitions=%d: fault did not fire", lambda, workers, partitions)
				}
			}
		}
	}
}

// TestTumblingRejectsPaneSnapshot asserts the mode guard on restore: a
// snapshot taken by a sliding run holds pane state a tumbling engine
// cannot interpret, so resuming it with Slide = 0 must fail as corrupt
// rather than silently misreading pane indices as window indices.
func TestTumblingRejectsPaneSnapshot(t *testing.T) {
	cfg := paneRecoveryCfg(1, 4, 0)
	store := checkpoint.NewMemStore()
	cfg.CheckpointStore = store
	mustRunCollect(t, cfg)

	cfg.Slide = 0
	_, err := Resume(cfg, func(WindowResult) {})
	if !errors.Is(err, checkpoint.ErrCorrupt) {
		t.Fatalf("got %v, want ErrCorrupt", err)
	}
}

// TestRecoveryBeforeFirstCheckpoint crashes before any window fires:
// the store is empty, so RunRecovering must fall back to a clean
// restart — which cannot re-crash, because faults are one-shot.
func TestRecoveryBeforeFirstCheckpoint(t *testing.T) {
	baseline, baseStats := mustRunCollect(t, recoveryCfg(1, 4))

	cfg := recoveryCfg(1, 4)
	cfg.CheckpointStore = checkpoint.NewMemStore()
	cfg.Faults = faultinject.New().WithPanic(0, 10)
	results, stats, err := RunRecovering(cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertSameRun(t, "restarted", results, stats, baseline, baseStats)
}

// TestResumeContinuesCompletedStore exercises the explicit Resume entry
// point: after a full checkpointed run, Resume restores the newest
// snapshot and re-emits exactly the windows fired after it,
// bit-identical to the original emissions.
func TestResumeContinuesCompletedStore(t *testing.T) {
	cfg := recoveryCfg(1, 4)
	store := checkpoint.NewMemStore()
	cfg.CheckpointStore = store
	baseline, baseStats := mustRunCollect(t, cfg)

	snap, seq, skipped, err := checkpoint.LatestValid(store)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Fatalf("clean store reports %d corrupt snapshots", skipped)
	}
	if int(snap.NextFire) >= cfg.NumWindows {
		t.Fatalf("latest snapshot (seq %d) has nothing left to fire", seq)
	}

	var resumed []WindowResult
	stats, err := Resume(cfg, func(r WindowResult) { resumed = append(resumed, r) })
	if err != nil {
		t.Fatal(err)
	}
	if stats != baseStats {
		t.Errorf("resumed stats %+v, want %+v", stats, baseStats)
	}
	want := baseline[snap.NextFire:]
	if len(resumed) != len(want) {
		t.Fatalf("resume emitted %d windows, want %d (from window %d on)", len(resumed), len(want), snap.NextFire)
	}
	for i, w := range want {
		if resumed[i].Index != w.Index || resumed[i].Accepted != w.Accepted {
			t.Errorf("resumed window %d: %+v, want %+v", i, resumed[i], w)
		}
		if !bytes.Equal(marshal(t, resumed[i].Sketch), marshal(t, w.Sketch)) {
			t.Errorf("resumed window %d: sketch differs from original emission", w.Index)
		}
	}
}

// TestCorruptCheckpointFallback damages the newest checkpoint on its
// way into the store, then crashes: recovery must skip the corrupt
// snapshot (checksum validation), fall back to the previous valid one,
// and still converge to the uninterrupted result.
func TestCorruptCheckpointFallback(t *testing.T) {
	for _, mode := range []string{faultinject.CorruptTruncate, faultinject.CorruptBitflip} {
		baseline, baseStats := mustRunCollect(t, recoveryCfg(1, 4))

		cfg := recoveryCfg(1, 4)
		// Corrupt the seq-2 snapshot (after the second window fires) and
		// panic during window 3, so the newest snapshot at crash time is
		// the corrupt one.
		cfg.Faults = faultinject.New().
			WithCorruptCheckpoint(2, mode).
			WithPanic(0, 11_000)
		cfg.CheckpointStore = cfg.Faults.WrapStore(checkpoint.NewMemStore())

		results, stats, err := RunRecovering(cfg)
		if err != nil {
			t.Fatalf("mode=%s: %v", mode, err)
		}
		assertSameRun(t, "fallback-"+mode, results, stats, baseline, baseStats)
	}
}

// TestResumeAllCorrupt asserts the clean-error contract: when every
// stored snapshot fails validation, Resume reports an error wrapping
// checkpoint.ErrNoSnapshot — never a panic, never a silent fresh run.
func TestResumeAllCorrupt(t *testing.T) {
	store := checkpoint.NewMemStore()
	if err := store.Put(1, []byte("not a snapshot")); err != nil {
		t.Fatal(err)
	}
	blob, err := checkpoint.Seal("engine-snapshot", []byte{0xff, 0xff, 0xff})
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)-1] ^= 0x01 // break the checksum
	if err := store.Put(2, blob); err != nil {
		t.Fatal(err)
	}
	cfg := recoveryCfg(1, 4)
	cfg.CheckpointStore = store
	_, err = Resume(cfg, func(WindowResult) {})
	if !errors.Is(err, checkpoint.ErrNoSnapshot) {
		t.Fatalf("got %v, want ErrNoSnapshot", err)
	}
}

// TestResumeWrongSketch asserts a snapshot taken with one sketch family
// cannot be restored into an engine building another.
func TestResumeWrongSketch(t *testing.T) {
	cfg := recoveryCfg(1, 4)
	store := checkpoint.NewMemStore()
	cfg.CheckpointStore = store
	mustRunCollect(t, cfg)

	cfg.Builder = ddBuilder
	_, err := Resume(cfg, func(WindowResult) {})
	if err == nil {
		t.Fatal("resume with a different builder succeeded")
	}
}

// TestDuplicateBatchDelivery injects a duplicated batch on the parallel
// path: the workers' per-partition sequence numbers must drop the
// second copy, keeping the run bit-identical to the clean baseline.
func TestDuplicateBatchDelivery(t *testing.T) {
	baseline, baseStats := mustRunCollect(t, recoveryCfg(4, 4))

	cfg := recoveryCfg(4, 4)
	cfg.Faults = faultinject.New().WithDuplicateBatch(5)
	results, stats := mustRunCollect(t, cfg)
	assertSameRun(t, "deduped", results, stats, baseline, baseStats)
}

// TestStallFault stalls one partition mid-run: pure backpressure, no
// state loss, results bit-identical.
func TestStallFault(t *testing.T) {
	baseline, baseStats := mustRunCollect(t, recoveryCfg(4, 4))

	cfg := recoveryCfg(4, 4)
	cfg.Faults = faultinject.New().WithStall(1, 500, 20*time.Millisecond)
	results, stats := mustRunCollect(t, cfg)
	assertSameRun(t, "stalled", results, stats, baseline, baseStats)
}

// TestWorkerPanicSurfacesAsError asserts a worker panic without
// recovery configured aborts the run with a *PanicError (not a crash,
// not a deadlock) naming the panicking worker.
func TestWorkerPanicSurfacesAsError(t *testing.T) {
	cfg := recoveryCfg(4, 4)
	cfg.Faults = faultinject.New().WithPanic(2, 100)
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = eng.RunCollect()
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("got %v, want *PanicError", err)
	}
	if pe.Worker != 2 {
		t.Errorf("panic attributed to worker %d, want 2", pe.Worker)
	}
}

// TestCheckpointCadence asserts CheckpointEvery thins the snapshot
// stream: every=2 over 4 windows stores roughly half the snapshots of
// every=1.
func TestCheckpointCadence(t *testing.T) {
	count := func(every int) int {
		cfg := recoveryCfg(1, 2)
		store := checkpoint.NewMemStore()
		cfg.CheckpointStore = store
		cfg.CheckpointEvery = every
		mustRunCollect(t, cfg)
		seqs, err := store.Seqs()
		if err != nil {
			t.Fatal(err)
		}
		return len(seqs)
	}
	dense, sparse := count(1), count(2)
	if dense == 0 || sparse == 0 {
		t.Fatalf("no snapshots stored (dense=%d sparse=%d)", dense, sparse)
	}
	if sparse >= dense {
		t.Errorf("CheckpointEvery=2 stored %d snapshots, CheckpointEvery=1 stored %d", sparse, dense)
	}
}
