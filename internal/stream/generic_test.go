package stream

import (
	"testing"
	"time"

	"repro/internal/datagen"
)

func TestTumblingAssigner(t *testing.T) {
	a := TumblingAssigner{Size: 10 * time.Second}
	wins := a.Assign(25 * time.Second)
	if len(wins) != 1 {
		t.Fatalf("%d windows", len(wins))
	}
	if wins[0].Start != 20*time.Second || wins[0].End != 30*time.Second {
		t.Errorf("window %v", wins[0])
	}
	if a.MergesWindows() {
		t.Error("tumbling does not merge")
	}
}

func TestSlidingAssigner(t *testing.T) {
	// Size 10s, slide 2s: each event belongs to 5 windows.
	a := SlidingAssigner{Size: 10 * time.Second, Slide: 2 * time.Second}
	wins := a.Assign(21 * time.Second)
	if len(wins) != 5 {
		t.Fatalf("%d windows, want 5", len(wins))
	}
	for _, w := range wins {
		if !w.Contains(21 * time.Second) {
			t.Errorf("window %v does not contain the event", w)
		}
		if w.End-w.Start != 10*time.Second {
			t.Errorf("window %v has wrong size", w)
		}
		if w.Start%(2*time.Second) != 0 {
			t.Errorf("window %v not slide-aligned", w)
		}
	}
	// Near stream start, early windows are clipped away (no negative
	// starts).
	wins = a.Assign(3 * time.Second)
	for _, w := range wins {
		if w.Start < 0 {
			t.Errorf("negative window start %v", w)
		}
	}
}

func TestSessionAssigner(t *testing.T) {
	a := SessionAssigner{Gap: 10 * time.Second}
	wins := a.Assign(5 * time.Second)
	if len(wins) != 1 || wins[0].Start != 5*time.Second || wins[0].End != 15*time.Second {
		t.Errorf("windows %v", wins)
	}
	if !a.MergesWindows() {
		t.Error("session windows merge")
	}
}

func TestGenericTumblingMatchesEngine(t *testing.T) {
	// The generic engine with a tumbling assigner must accept exactly
	// the same events as the specialized Engine.
	mk := func() (int64, int64) {
		eng, err := NewGenericEngine(GenericConfig{
			Assigner:  TumblingAssigner{Size: time.Second},
			Rate:      2000,
			RunLength: 5 * time.Second,
			Values:    datagen.NewUniform(0, 1, 3),
			Delay:     NewExponentialDelay(40*time.Millisecond, 4),
			Builder:   ddBuilder,
		})
		if err != nil {
			t.Fatal(err)
		}
		var accepted int64
		st, err := eng.Run(func(r GenericResult) { accepted += r.Accepted })
		if err != nil {
			t.Fatal(err)
		}
		return accepted, st.DroppedLate
	}
	acc, dropped := mk()
	if dropped == 0 {
		t.Error("expected some drops under exponential delay")
	}
	if acc+dropped != 10000 {
		t.Errorf("accounting: %d accepted + %d dropped != 10000", acc, dropped)
	}
}

func TestGenericSlidingCoverage(t *testing.T) {
	// With size=2s slide=1s every event (after warmup) lands in exactly
	// 2 windows; window event counts must be ≈ 2× the tumbling count.
	eng, err := NewGenericEngine(GenericConfig{
		Assigner:  SlidingAssigner{Size: 2 * time.Second, Slide: time.Second},
		Rate:      1000,
		RunLength: 6 * time.Second,
		Values:    datagen.NewUniform(0, 1, 5),
		Builder:   ddBuilder,
	})
	if err != nil {
		t.Fatal(err)
	}
	var results []GenericResult
	if _, err := eng.Run(func(r GenericResult) { results = append(results, r) }); err != nil {
		t.Fatal(err)
	}
	if len(results) < 5 {
		t.Fatalf("%d windows", len(results))
	}
	// Interior full windows hold 2000 events (2 s × 1000/s).
	full := 0
	for _, r := range results {
		if r.Window.Start >= time.Second && r.Window.End <= 5*time.Second {
			if r.Accepted != 2000 {
				t.Errorf("window %v holds %d events, want 2000", r.Window, r.Accepted)
			}
			full++
		}
	}
	if full == 0 {
		t.Error("no interior windows checked")
	}
	// Windows fire in end order.
	for i := 1; i < len(results); i++ {
		if results[i].Window.End < results[i-1].Window.End {
			t.Error("windows fired out of order")
		}
	}
}

func TestGenericSessionMerging(t *testing.T) {
	// A bursty source: events at 0–1s, silence until 5s, events 5–6s.
	// With a 2s gap this is exactly two sessions.
	type ev struct {
		t time.Duration
		v float64
	}
	// Drive sessions through a custom value source + constant rate: the
	// engine generates continuously, so emulate bursts by a value source
	// and assigner over a thinned rate. Instead, test mergeSessions
	// directly through a small run with gaps injected via delay: simpler
	// to validate the merging math on a handcrafted sequence.
	eng, err := NewGenericEngine(GenericConfig{
		Assigner:  SessionAssigner{Gap: 2 * time.Second},
		Rate:      10,
		RunLength: 3 * time.Second,
		Values:    datagen.NewUniform(0, 1, 6),
		Builder:   ddBuilder,
	})
	if err != nil {
		t.Fatal(err)
	}
	var results []GenericResult
	if _, err := eng.Run(func(r GenericResult) { results = append(results, r) }); err != nil {
		t.Fatal(err)
	}
	// Continuous events 100ms apart with a 2s gap: one big session.
	if len(results) != 1 {
		t.Fatalf("%d sessions, want 1 (continuous stream)", len(results))
	}
	r := results[0]
	if r.Accepted != 30 {
		t.Errorf("session holds %d events, want 30", r.Accepted)
	}
	if r.Window.Start != 0 {
		t.Errorf("session start %v", r.Window.Start)
	}
	// End = last event time + gap.
	if r.Window.End != 2900*time.Millisecond+2*time.Second {
		t.Errorf("session end %v, want last event + gap", r.Window.End)
	}
	_ = ev{}
}

func TestGenericSessionSplit(t *testing.T) {
	// A value source is irrelevant; create bursts via a sparse rate and
	// a gap smaller than the inter-event spacing: every event becomes
	// its own session.
	eng, err := NewGenericEngine(GenericConfig{
		Assigner:  SessionAssigner{Gap: 50 * time.Millisecond},
		Rate:      10, // events every 100ms > gap
		RunLength: time.Second,
		Values:    datagen.NewUniform(0, 1, 7),
		Builder:   ddBuilder,
	})
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	if _, err := eng.Run(func(r GenericResult) {
		count++
		if r.Accepted != 1 {
			t.Errorf("session holds %d events, want 1", r.Accepted)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Errorf("%d sessions, want 10", count)
	}
}

func TestAllowedLatenessReadmits(t *testing.T) {
	run := func(lateness time.Duration) int64 {
		eng, err := NewGenericEngine(GenericConfig{
			Assigner:        TumblingAssigner{Size: time.Second},
			Rate:            5000,
			RunLength:       5 * time.Second,
			AllowedLateness: lateness,
			Values:          datagen.NewUniform(0, 1, 8),
			Delay:           NewExponentialDelay(60*time.Millisecond, 9),
			Builder:         ddBuilder,
		})
		if err != nil {
			t.Fatal(err)
		}
		st, err := eng.Run(func(GenericResult) {})
		if err != nil {
			t.Fatal(err)
		}
		return st.DroppedLate
	}
	strict := run(0)
	lenient := run(500 * time.Millisecond)
	if strict == 0 {
		t.Fatal("expected drops without lateness allowance")
	}
	if lenient >= strict {
		t.Errorf("allowed lateness should reduce drops: %d -> %d", strict, lenient)
	}
}

func TestGenericConfigValidation(t *testing.T) {
	base := GenericConfig{
		Assigner:  TumblingAssigner{Size: time.Second},
		Rate:      10,
		RunLength: time.Second,
		Values:    datagen.NewUniform(0, 1, 1),
		Builder:   ddBuilder,
	}
	for _, mut := range []func(*GenericConfig){
		func(c *GenericConfig) { c.Assigner = nil },
		func(c *GenericConfig) { c.Rate = 0 },
		func(c *GenericConfig) { c.RunLength = 0 },
		func(c *GenericConfig) { c.Values = nil },
		func(c *GenericConfig) { c.Builder = nil },
	} {
		bad := base
		mut(&bad)
		if _, err := NewGenericEngine(bad); err == nil {
			t.Error("invalid config accepted")
		}
	}
}

// Ingestion-time windows never drop events: arrival order is watermark
// order, so lateness cannot occur (the Sec 2.5 trade-off).
func TestIngestionTimeNeverLate(t *testing.T) {
	eng, err := NewGenericEngine(GenericConfig{
		Assigner:         TumblingAssigner{Size: time.Second},
		Rate:             2000,
		RunLength:        4 * time.Second,
		UseIngestionTime: true,
		Values:           datagen.NewUniform(0, 1, 11),
		Delay:            NewExponentialDelay(80*time.Millisecond, 12),
		Builder:          ddBuilder,
	})
	if err != nil {
		t.Fatal(err)
	}
	var accepted int64
	st, err := eng.Run(func(r GenericResult) { accepted += r.Accepted })
	if err != nil {
		t.Fatal(err)
	}
	if st.DroppedLate != 0 {
		t.Errorf("ingestion time dropped %d events", st.DroppedLate)
	}
	if accepted != st.Generated {
		t.Errorf("accepted %d of %d generated", accepted, st.Generated)
	}
}

// A watermark lag ≥ the delay tail eliminates drops by firing late.
func TestWatermarkLagReducesDrops(t *testing.T) {
	run := func(lag time.Duration) int64 {
		eng, err := NewGenericEngine(GenericConfig{
			Assigner:     TumblingAssigner{Size: time.Second},
			Rate:         5000,
			RunLength:    5 * time.Second,
			WatermarkLag: lag,
			Values:       datagen.NewUniform(0, 1, 13),
			Delay:        NewExponentialDelay(60*time.Millisecond, 14),
			Builder:      ddBuilder,
		})
		if err != nil {
			t.Fatal(err)
		}
		st, err := eng.Run(func(GenericResult) {})
		if err != nil {
			t.Fatal(err)
		}
		return st.DroppedLate
	}
	noLag := run(0)
	withLag := run(800 * time.Millisecond)
	if noLag == 0 {
		t.Fatal("expected drops without watermark lag")
	}
	if withLag >= noLag/2 {
		t.Errorf("watermark lag should cut drops sharply: %d -> %d", noLag, withLag)
	}
}

// With zero delay and a tumbling assigner, the generic and specialized
// engines must produce identical window populations (counts per window
// and sketch answers).
func TestEnginesEquivalentOnTumbling(t *testing.T) {
	const (
		rate    = 3000
		windows = 4
	)
	spec, err := NewEngine(Config{
		WindowSize:    time.Second,
		Rate:          rate,
		NumWindows:    windows,
		Values:        datagen.NewUniform(10, 20, 42),
		Builder:       ddBuilder,
		CollectValues: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	specResults, _, err := spec.RunCollect()
	if err != nil {
		t.Fatal(err)
	}
	gen, err := NewGenericEngine(GenericConfig{
		Assigner:      TumblingAssigner{Size: time.Second},
		Rate:          rate,
		RunLength:     windows * time.Second,
		Values:        datagen.NewUniform(10, 20, 42),
		Builder:       ddBuilder,
		CollectValues: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var genResults []GenericResult
	if _, err := gen.Run(func(r GenericResult) { genResults = append(genResults, r) }); err != nil {
		t.Fatal(err)
	}
	if len(genResults) < windows {
		t.Fatalf("generic emitted %d windows, want >= %d", len(genResults), windows)
	}
	for i, sr := range specResults {
		gr := genResults[i]
		if sr.Accepted != gr.Accepted {
			t.Errorf("window %d: specialized %d events vs generic %d", i, sr.Accepted, gr.Accepted)
		}
		for _, q := range []float64{0.25, 0.5, 0.75} {
			a, _ := sr.Sketch.Quantile(q)
			b, _ := gr.Sketch.Quantile(q)
			if a != b {
				t.Errorf("window %d q=%v: %v vs %v", i, q, a, b)
			}
		}
	}
}
