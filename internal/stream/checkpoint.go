package stream

import (
	"errors"
	"fmt"
	"runtime/debug"
	"sort"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/faultinject"
	"repro/internal/sketch"
)

// PanicError is the error an engine run returns when one of its
// goroutines panicked (an injected fault or a real bug): the run aborts
// but the process survives, and RunRecovering treats it as the signal
// that a restore-and-replay cycle is warranted.
type PanicError struct {
	// Worker is the panicking worker's index (0 is the engine goroutine
	// on the serial path), or -1 when unknown.
	Worker int
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("stream: worker %d panicked: %v", e.Worker, e.Value)
}

// asPanicError converts a recovered panic value into a *PanicError,
// pulling the worker index out of injected faults.
func asPanicError(r any) *PanicError {
	if pe, ok := r.(*PanicError); ok {
		return pe
	}
	worker := -1
	if f, ok := r.(faultinject.Fault); ok {
		worker = f.Worker
	}
	return &PanicError{Worker: worker, Value: r, Stack: debug.Stack()}
}

// maybeSnapshot persists a checkpoint when the cadence says so. The
// drain loops pre-check sinceSnap >= snapEvery before calling, so with
// checkpointing disabled (snapEvery == math.MaxInt) the per-event cost
// is that one always-false inlined comparison, never a call.
func (rs *runState) maybeSnapshot() error {
	if rs.sinceSnap < rs.snapEvery {
		return nil
	}
	rs.sinceSnap = 0
	if rs.nextFire >= rs.cfg.NumWindows {
		// Every tracked window has fired; there is nothing left that a
		// resume could usefully replay.
		return nil
	}
	return rs.snapshot()
}

// snapshot captures the full run state — counters, watermark, late-drop
// map, the in-flight delay heap verbatim, and every open window's
// engine-side state plus sealed per-partition sketch blobs — and puts
// it in the configured store under the fired-window sequence number.
func (rs *runState) snapshot() error {
	partials, err := rs.sink.snapshot()
	if err != nil {
		return err
	}
	snap := &checkpoint.Snapshot{
		Seq:           rs.fired,
		SketchName:    rs.builderName,
		Drawn:         rs.drawn,
		Watermark:     int64(rs.watermark),
		NextFire:      int64(rs.nextFire),
		Generated:     rs.stats.Generated,
		Accepted:      rs.stats.Accepted,
		DroppedLate:   rs.stats.DroppedLate,
		RejectedInput: rs.stats.RejectedInput,
		ShedBudget:    rs.stats.ShedBudget,
	}
	lateWins := make([]int, 0, len(rs.lateOf))
	for wi := range rs.lateOf {
		lateWins = append(lateWins, wi)
	}
	sort.Ints(lateWins)
	for _, wi := range lateWins {
		snap.LateWindows = append(snap.LateWindows, int64(wi))
		snap.LateDrops = append(snap.LateDrops, rs.lateOf[wi])
	}
	// The heap's backing slice is stored verbatim: it is a valid binary
	// min-heap, so the restored engine adopts it without re-heapifying
	// and pops in the identical order.
	snap.InFlight = make([]checkpoint.Event, len(rs.inFlight.data))
	for i, ev := range rs.inFlight.data {
		snap.InFlight[i] = checkpoint.Event{
			Gen:       int64(ev.GenTime),
			Arrival:   int64(ev.Arrival),
			Value:     ev.Value,
			Partition: int64(ev.Partition),
		}
	}
	openWins := make([]int, 0, len(rs.open))
	for wi := range rs.open {
		openWins = append(openWins, wi)
	}
	sort.Ints(openWins)
	for _, wi := range openWins {
		w := rs.open[wi]
		ws := checkpoint.WindowSnap{Index: int64(wi), Accepted: w.accepted}
		if w.values != nil {
			ws.HasValues = true
			ws.Values = w.values
		}
		ws.Partials = partials[wi]
		snap.Windows = append(snap.Windows, ws)
	}
	if rs.paneMode {
		// Sealed panes ride in the optional trailer, ascending; the
		// Windows section above already holds the open panes (keyed by
		// pane index). nextSeal is not stored — every snapshot sits at
		// a post-fire drain point, so it is always paneEnd(nextFire-1)
		// and restore re-derives it.
		paneIdx := make([]int, 0, len(rs.sealed))
		for j := range rs.sealed {
			paneIdx = append(paneIdx, j)
		}
		sort.Ints(paneIdx)
		for _, j := range paneIdx {
			sp := rs.sealed[j]
			ps := checkpoint.PaneSnap{Index: int64(j), Accepted: sp.accepted}
			if sp.values != nil {
				ps.HasValues = true
				ps.Values = sp.values
			}
			if sp.sketch != nil {
				sealed, err := sealPartial(sp.sketch)
				if err != nil {
					return err
				}
				ps.Sketch = sealed
			}
			snap.Panes = append(snap.Panes, ps)
		}
	}
	data, err := checkpoint.EncodeSnapshot(snap)
	if err != nil {
		return fmt.Errorf("stream: checkpoint encode: %w", err)
	}
	if err := rs.cfg.CheckpointStore.Put(snap.Seq, data); err != nil {
		return fmt.Errorf("stream: checkpoint put: %w", err)
	}
	if rs.met != nil {
		rs.met.SnapshotsTaken.Inc()
		rs.met.SnapshotBytes.Add(int64(len(data)))
	}
	return nil
}

// restore rebuilds the run state from a decoded snapshot: counters and
// heap are adopted directly, partition sketches are unsealed and seeded
// into the sink, and the fresh sources are fast-forwarded to the
// checkpointed offset (events are a pure function of the seeds, so
// re-drawing reproduces the exact remaining stream).
func (rs *runState) restore(snap *checkpoint.Snapshot) error {
	cfg := rs.cfg
	if snap.SketchName != rs.builderName {
		return fmt.Errorf("stream: snapshot holds %q sketches, engine builds %q", snap.SketchName, rs.builderName)
	}
	if snap.Drawn < 0 || snap.NextFire < 0 || snap.NextFire > int64(cfg.NumWindows) {
		return fmt.Errorf("stream: snapshot state out of range for this config: %w", checkpoint.ErrCorrupt)
	}
	rs.drawn = snap.Drawn
	rs.fired = snap.Seq
	rs.watermark = time.Duration(snap.Watermark)
	rs.nextFire = int(snap.NextFire)
	rs.stats = Stats{
		Generated:     snap.Generated,
		Accepted:      snap.Accepted,
		DroppedLate:   snap.DroppedLate,
		RejectedInput: snap.RejectedInput,
		ShedBudget:    snap.ShedBudget,
	}
	for i := range snap.LateWindows {
		rs.lateOf[int(snap.LateWindows[i])] = snap.LateDrops[i]
	}
	rs.inFlight.data = make([]Event, len(snap.InFlight))
	for i, ev := range snap.InFlight {
		rs.inFlight.data[i] = Event{
			GenTime:   time.Duration(ev.Gen),
			Arrival:   time.Duration(ev.Arrival),
			Value:     ev.Value,
			Partition: int(ev.Partition),
		}
	}
	// In pane mode the Windows section holds open panes, so the index
	// bound is the pane count, not the window count.
	trackLimit := cfg.NumWindows
	if rs.paneMode {
		trackLimit = rs.numPanes
		if rs.nextFire > 0 {
			rs.nextSeal = rs.paneEnd(rs.nextFire - 1)
		}
	} else if len(snap.Panes) != 0 {
		return fmt.Errorf("stream: snapshot holds pane state but the engine is tumbling: %w", checkpoint.ErrCorrupt)
	}
	for i := range snap.Windows {
		ws := &snap.Windows[i]
		wi := int(ws.Index)
		if wi < 0 || wi >= trackLimit {
			return fmt.Errorf("stream: snapshot window %d out of range: %w", wi, checkpoint.ErrCorrupt)
		}
		w := &windowState{index: wi, accepted: ws.Accepted}
		if ws.HasValues {
			w.values = ws.Values
		}
		rs.open[wi] = w
		if len(ws.Partials) == 0 {
			continue
		}
		if len(ws.Partials) != cfg.Partitions {
			return fmt.Errorf("stream: snapshot window %d holds %d partitions, config has %d", wi, len(ws.Partials), cfg.Partitions)
		}
		parts := make([]sketch.Sketch, cfg.Partitions)
		for pi, blob := range ws.Partials {
			if blob == nil {
				continue
			}
			sk, err := decodePartial(cfg.Builder, rs.builderName, blob)
			if err != nil {
				return err
			}
			parts[pi] = sk
		}
		rs.sink.restore(wi, parts)
	}
	for i := range snap.Panes {
		ps := &snap.Panes[i]
		j := int(ps.Index)
		if j < 0 || j >= rs.numPanes || j >= rs.nextSeal {
			return fmt.Errorf("stream: snapshot pane %d out of range: %w", j, checkpoint.ErrCorrupt)
		}
		sp := &sealedPane{accepted: ps.Accepted}
		if ps.HasValues {
			sp.values = ps.Values
		}
		if ps.Sketch != nil {
			sk, err := decodePartial(cfg.Builder, rs.builderName, ps.Sketch)
			if err != nil {
				return err
			}
			sp.sketch = sk
			if rs.gov != nil {
				rs.gov.Track(-1-int64(j), sk)
			}
		}
		rs.sealed[j] = sp
	}
	for i := int64(0); i < snap.Drawn; i++ {
		rs.vals.Next()
		rs.delay.Delay()
	}
	if rs.met != nil {
		rs.met.Restores.Inc()
		rs.met.ReplayedEvents.Add(snap.Drawn)
	}
	return nil
}

// decodePartial opens one sealed partition-sketch envelope and decodes
// it into a fresh builder product.
func decodePartial(builder sketch.Builder, wantName string, blob []byte) (sketch.Sketch, error) {
	name, payload, err := checkpoint.Open(blob)
	if err != nil {
		return nil, fmt.Errorf("stream: partial envelope: %w", err)
	}
	if name != wantName {
		return nil, fmt.Errorf("stream: partial envelope holds %q, want %q: %w", name, wantName, checkpoint.ErrCorrupt)
	}
	sk := builder()
	if err := sk.UnmarshalBinary(payload); err != nil {
		return nil, fmt.Errorf("stream: partial decode: %w", err)
	}
	return sk, nil
}

// checkResumable validates that cfg can support checkpoint resume.
func checkResumable(cfg Config, op string) error {
	if cfg.CheckpointStore == nil {
		return fmt.Errorf("stream: %s requires Config.CheckpointStore", op)
	}
	if cfg.NewValues == nil {
		return fmt.Errorf("stream: %s requires Config.NewValues (sources are forward-only; recovery re-derives the stream from a fresh source)", op)
	}
	return nil
}

// Resume restores the newest valid snapshot in cfg.CheckpointStore and
// runs the job to completion from there, invoking emit for each window
// fired after the snapshot point. The resumed run's remaining output is
// bit-identical to what the interrupted run would have produced:
// windows already fired before the snapshot are not re-emitted, and the
// returned Stats cover the whole logical run (checkpointed counters
// plus the replayed remainder). Corrupt or truncated snapshots are
// skipped (newest first); if none is usable the error wraps
// checkpoint.ErrNoSnapshot.
func Resume(cfg Config, emit func(WindowResult)) (Stats, error) {
	e, err := NewEngine(cfg)
	if err != nil {
		return Stats{}, err
	}
	if err := checkResumable(e.cfg, "Resume"); err != nil {
		return Stats{}, err
	}
	stats, _, err := e.resumeRun(emit)
	return stats, err
}

func (e *Engine) resumeRun(emit func(WindowResult)) (Stats, map[int]int64, error) {
	snap, _, _, err := checkpoint.LatestValid(e.cfg.CheckpointStore)
	if err != nil {
		return Stats{}, nil, err
	}
	rs, err := e.newRunState(emit)
	if err != nil {
		return Stats{}, nil, err
	}
	defer rs.sink.close()
	if err := rs.restore(snap); err != nil {
		return Stats{}, nil, err
	}
	err = rs.loop()
	return rs.stats, rs.lateOf, err
}

// maxRecoveries bounds RunRecovering's restore-and-replay cycles; a
// fault plan is one-shot per fault, so any legitimate chaos run
// converges well below this.
const maxRecoveries = 8

// RunRecovering runs the job end-to-end with automatic crash recovery:
// when a run dies with a *PanicError (an injected fault or a worker
// bug), the newest valid checkpoint is restored and the run replayed
// from there — or restarted from scratch when no checkpoint was taken
// yet. Window results are collected by index, so a window re-fired
// after recovery simply overwrites its (bit-identical) first emission.
// Requires CheckpointStore and NewValues; per-window DroppedLate counts
// are patched in like RunCollect.
func RunRecovering(cfg Config) ([]WindowResult, Stats, error) {
	e, err := NewEngine(cfg)
	if err != nil {
		return nil, Stats{}, err
	}
	cfg = e.cfg
	if err := checkResumable(cfg, "RunRecovering"); err != nil {
		return nil, Stats{}, err
	}
	results := make([]WindowResult, cfg.NumWindows)
	emitted := make([]bool, cfg.NumWindows)
	emit := func(r WindowResult) {
		if r.Index >= 0 && r.Index < cfg.NumWindows {
			results[r.Index] = r
			emitted[r.Index] = true
		}
	}
	recoveries := 0
	stats, lateOf, err := e.run(emit)
	for err != nil {
		var pe *PanicError
		if !errors.As(err, &pe) || recoveries >= maxRecoveries {
			return nil, Stats{}, err
		}
		recoveries++
		if met := cfg.Metrics; met != nil {
			met.RecoveredPanics.Inc()
		}
		stats, lateOf, err = e.resumeRun(emit)
		if errors.Is(err, checkpoint.ErrNoSnapshot) {
			// Crashed before the first checkpoint: replay from scratch.
			// One-shot fault semantics guarantee the restart does not
			// re-crash on the same event.
			stats, lateOf, err = e.run(emit)
		}
	}
	for i := range results {
		if !emitted[i] {
			return nil, Stats{}, fmt.Errorf("stream: window %d never fired", i)
		}
		results[i].DroppedLate = lateOf[i]
	}
	return results, stats, nil
}
