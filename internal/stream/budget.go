package stream

// Memory-budget governor wiring (Config.MemoryBudget): the engine-side
// half of the degradation ladder. Rung 1 (in-place sketch degradation)
// lives in internal/budget; this file climbs to rung 2 (coarsening
// sealed panes) and rung 3 (shedding) when rung 1 is exhausted, and
// attributes degradations back to the windows that will report them.

// The enforcement cadence is budget.BaseInterval processed events while
// the budget is binding; the governor backs the interval off (up to
// 64×) while usage stays below half the limit, so a slack budget stays
// off the per-event profile. Engines consult gov.Interval() each pass.

// onDegrade attributes one governor degradation to the window (or
// sealed pane) whose sketch shrank, for WindowResult.Degradations.
// Non-negative ids are seqSink sketches (id = win·partitions + part,
// where win is the pane index in pane mode); negative ids are sealed
// panes (id = -1-j).
func (rs *runState) onDegrade(id int64) {
	if rs.met != nil {
		rs.met.Degradations.Inc()
	}
	if id < 0 {
		if sp := rs.sealed[int(-1-id)]; sp != nil {
			sp.degrades++
		}
		return
	}
	if w := rs.open[int(id/int64(rs.cfg.Partitions))]; w != nil {
		w.degrades++
	}
}

// enforceBudget runs one governor pass and climbs the ladder: degrade
// (rung 1, inside Enforce), coarsen sealed panes (rung 2) while
// degradation alone cannot fit the budget, and finally toggle shedding
// (rung 3). Shedding clears itself on the first pass that fits again.
func (rs *runState) enforceBudget() {
	rs.sinceEnforce = 0
	out := rs.gov.Enforce(rs.onDegrade)
	for out.Exhausted && rs.coarsenOldestPane() {
		out = rs.gov.Enforce(rs.onDegrade)
	}
	rs.shedding = out.Exhausted
	rs.enforceAt = rs.gov.Interval()
	if rs.met != nil {
		rs.met.BudgetBytes.Max(int64(out.Usage))
	}
}

// coarsenOldestPane is rung 2: fold the oldest sealed pane into its
// successor, freeing one resident sketch, when the fold is exact —
// every window still to fire sees either both panes or neither, so
// window contents are unchanged (only PaneCounts attribution moves one
// slot later). Disabled under time decay, where the two panes carry
// different ages and the fold would change their weights. Returns
// whether a pane was folded.
func (rs *runState) coarsenOldestPane() bool {
	if !rs.paneMode || rs.cfg.DecayLambda > 0 {
		return false
	}
	// Candidates are sealed panes ascending; stop at the first pane
	// whose successor is unsealed or whose fold would be inexact.
	for j := rs.oldestSealed(); j >= 0 && j+1 < rs.nextSeal; j = rs.nextSealedAfter(j) {
		if !rs.foldExact(j) {
			continue
		}
		dst := rs.sealed[j+1]
		src := rs.sealed[j]
		if dst == nil {
			// Successor held no events: the fold is a move.
			rs.sealed[j+1] = src
		} else {
			if src.sketch != nil {
				if dst.sketch == nil {
					dst.sketch = src.sketch
				} else if err := dst.sketch.Merge(src.sketch); err != nil {
					// A same-builder merge failing is a bug surfaced
					// elsewhere; skip the fold rather than lose data.
					continue
				}
			}
			// Pane j precedes j+1, so its values prefix the successor's.
			if src.values != nil {
				dst.values = append(src.values, dst.values...)
			}
			dst.accepted += src.accepted
			dst.degrades += src.degrades
		}
		delete(rs.sealed, j)
		rs.gov.Untrack(-1 - int64(j))
		if sk := rs.sealed[j+1].sketch; sk != nil {
			rs.gov.Track(-1-int64(j+1), sk)
		}
		if rs.met != nil {
			rs.met.BudgetEvictions.Inc()
			rs.met.PanesOpen.Set(int64(len(rs.open) + len(rs.sealed)))
		}
		return true
	}
	return false
}

// oldestSealed returns the smallest sealed pane index, -1 when none.
func (rs *runState) oldestSealed() int {
	min := -1
	for j := range rs.sealed {
		if min < 0 || j < min {
			min = j
		}
	}
	return min
}

// nextSealedAfter returns the smallest sealed pane index above j, -1
// when none.
func (rs *runState) nextSealedAfter(j int) int {
	next := -1
	for k := range rs.sealed {
		if k > j && (next < 0 || k < next) {
			next = k
		}
	}
	return next
}

// foldExact reports whether folding sealed pane j into pane j+1 leaves
// every unfired window's contents unchanged: no remaining window may
// contain one of the two panes without the other, i.e. no window
// boundary (start or end) falls between them. Window k spans panes
// [paneStart(k), paneEnd(k)), so the fold is inexact iff some k in
// [nextFire, NumWindows) has paneEnd(k) == j+1 or paneStart(k) == j+1.
func (rs *runState) foldExact(j int) bool {
	b := j + 1
	// paneEnd(k) == b  ⟺  k == (b - panesPerWin)/panesPerGap - firstOff
	if d := b - rs.panesPerWin; d%rs.panesPerGap == 0 {
		if k := d/rs.panesPerGap - rs.firstOff; k >= rs.nextFire && k < rs.cfg.NumWindows {
			return false
		}
	}
	// paneStart(k) == b (b > 0, so the origin clamp cannot produce it)
	// ⟺ k == b/panesPerGap - firstOff
	if b%rs.panesPerGap == 0 {
		if k := b/rs.panesPerGap - rs.firstOff; k >= rs.nextFire && k < rs.cfg.NumWindows {
			return false
		}
	}
	return true
}
