package stream

import (
	"testing"
	"time"
)

// TestMinHeapAllocs pins the //sketch:hotpath contract on the generic
// heap: once the backing array has capacity, a Push/Pop cycle must not
// allocate — the whole point of replacing container/heap, which boxes
// every element through `any` on both operations.
func TestMinHeapAllocs(t *testing.T) {
	var h minHeap[Event]
	events := make([]Event, 256)
	state := uint64(0x9e3779b97f4a7c15)
	for i := range events {
		state = state*6364136223846793005 + 1442695040888963407
		events[i] = Event{
			GenTime: time.Duration(state >> 40),
			Arrival: time.Duration(state >> 38),
			Value:   float64(i),
		}
	}
	for _, e := range events {
		h.Push(e) // warm capacity
	}
	for h.Len() > 0 {
		h.Pop()
	}
	avg := testing.AllocsPerRun(100, func() {
		for _, e := range events {
			h.Push(e)
		}
		for h.Len() > 0 {
			h.Pop()
		}
	})
	if avg > 0 {
		t.Errorf("minHeap Push/Pop cycle allocates %.1f times per 256 events, want 0", avg)
	}
}
