package stream

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/datagen"
	"repro/internal/kll"
	"repro/internal/moments"
	"repro/internal/obs"
	"repro/internal/sketch"
)

// checkShedIdentity asserts the extended accounting identity every
// budgeted run must satisfy: Generated = Accepted + DroppedLate +
// RejectedInput + ShedBudget.
func checkShedIdentity(t *testing.T, st Stats) {
	t.Helper()
	if st.Generated != st.Accepted+st.DroppedLate+st.RejectedInput+st.ShedBudget {
		t.Fatalf("accounting identity broken: %+v", st)
	}
}

// TestBudgetedRunStaysUnderBudget is the governor's core property: with
// a budget above the degradation floor, the post-enforcement footprint
// (the BudgetBytes high-water mark) never exceeds the budget, events
// are never shed, and the degraded windows carry a widened accuracy
// bound.
func TestBudgetedRunStaysUnderBudget(t *testing.T) {
	freshBound := kll.NewWithSeed(1024, 1).AccuracyBound()
	// The window's 4 partition sketches grow to ~60 KiB together, so
	// both budgets bind well above the k=8 degradation floor.
	for _, budget := range []int{24 << 10, 48 << 10} {
		met := obs.NewRegistry().Engine()
		eng, err := NewEngine(Config{
			WindowSize:   time.Second,
			Rate:         20000,
			NumWindows:   4,
			Partitions:   4,
			Values:       datagen.NewUniform(1, 1000, 21),
			Builder:      func() sketch.Sketch { return kll.NewWithSeed(1024, 31) },
			Metrics:      met,
			MemoryBudget: budget,
		})
		if err != nil {
			t.Fatal(err)
		}
		results, st, err := eng.RunCollect()
		if err != nil {
			t.Fatal(err)
		}
		checkShedIdentity(t, st)
		if st.ShedBudget != 0 {
			t.Errorf("budget %d: shed %d events despite degradable sketches", budget, st.ShedBudget)
		}
		if got := met.BudgetBytes.Load(); got > int64(budget) {
			t.Errorf("budget %d: post-enforcement high-water %d exceeds the budget", budget, got)
		}
		if met.Degradations.Load() == 0 {
			t.Errorf("budget %d: governor never degraded (budget not binding — retune the test)", budget)
		}
		degradedWindows := 0
		for _, r := range results {
			if r.Degradations > 0 {
				degradedWindows++
				if r.AccuracyBound <= freshBound {
					t.Errorf("budget %d window %d: %d degradations but bound %v not above fresh %v",
						budget, r.Index, r.Degradations, r.AccuracyBound, freshBound)
				}
			}
		}
		if degradedWindows == 0 {
			t.Errorf("budget %d: no window reported its degradations", budget)
		}
	}
}

// TestBudgetShedsWhenNotDegradable: moments sketches refuse every
// degradation step, so an impossible budget must climb the whole ladder
// to rung 3 — counted, non-panicking shedding — while the run still
// completes and every window still fires.
func TestBudgetShedsWhenNotDegradable(t *testing.T) {
	met := obs.NewRegistry().Engine()
	eng, err := NewEngine(Config{
		WindowSize:   time.Second,
		Rate:         5000,
		NumWindows:   3,
		Partitions:   2,
		Values:       datagen.NewUniform(1, 1000, 5),
		Builder:      func() sketch.Sketch { return moments.New(10) },
		Metrics:      met,
		MemoryBudget: 64, // below a single sketch's footprint
	})
	if err != nil {
		t.Fatal(err)
	}
	results, st, err := eng.RunCollect()
	if err != nil {
		t.Fatal(err)
	}
	checkShedIdentity(t, st)
	if st.ShedBudget == 0 {
		t.Fatal("impossible budget shed nothing")
	}
	if got := met.BudgetShed.Load(); got != st.ShedBudget {
		t.Errorf("BudgetShed counter %d != Stats.ShedBudget %d", got, st.ShedBudget)
	}
	if len(results) != 3 {
		t.Fatalf("%d windows fired, want 3", len(results))
	}
	// The first enforcement pass runs after budget.BaseInterval events,
	// so the run accepts some prefix before shedding begins.
	if st.Accepted == 0 {
		t.Error("shedding started before the first enforcement pass")
	}
}

// TestBudgetUnbudgetedRunsUnchanged pins the disabled path: a run with
// MemoryBudget 0 is bit-identical to the same run before the governor
// existed — no shed events, no degradations, identical sketches.
func TestBudgetUnbudgetedRunsUnchanged(t *testing.T) {
	mk := func(budget int) ([]WindowResult, Stats) {
		eng, err := NewEngine(Config{
			WindowSize:   time.Second,
			Rate:         10000,
			NumWindows:   3,
			Partitions:   4,
			Values:       datagen.NewUniform(1, 1000, 9),
			Builder:      func() sketch.Sketch { return kll.NewWithSeed(256, 13) },
			MemoryBudget: budget,
		})
		if err != nil {
			t.Fatal(err)
		}
		results, st, err := eng.RunCollect()
		if err != nil {
			t.Fatal(err)
		}
		return results, st
	}
	base, baseStats := mk(0)
	// A budget far above the workload's footprint must also change
	// nothing: the governor tracks but never degrades.
	slack, slackStats := mk(1 << 30)
	if baseStats != slackStats {
		t.Fatalf("slack budget changed stats: %+v vs %+v", slackStats, baseStats)
	}
	for i := range base {
		a, _ := base[i].Sketch.MarshalBinary()
		b, _ := slack[i].Sketch.MarshalBinary()
		if !bytes.Equal(a, b) {
			t.Fatalf("window %d: slack-budget sketch diverged from unbudgeted", i)
		}
		if base[i].Degradations != 0 || slack[i].Degradations != 0 {
			t.Fatalf("window %d: degradations on a non-binding budget", i)
		}
	}
}

// TestBudgetPaneCoarsening exercises rung 2: in pane mode with sketches
// that refuse degradation, a binding budget coarsens sealed panes
// (exact early merges) before resorting to shedding. Window totals are
// preserved: every pane's accepted count survives the fold, just
// attributed one slot later.
func TestBudgetPaneCoarsening(t *testing.T) {
	mk := func(budget int, met *obs.EngineMetrics) ([]WindowResult, Stats) {
		eng, err := NewEngine(Config{
			// Pane size gcd(5s, 2s) = 1s: each fired window leaves 3
			// sealed panes resident, so the oldest two are fold
			// candidates while the budget is binding.
			WindowSize:   5 * time.Second,
			Slide:        2 * time.Second,
			Rate:         4000,
			NumWindows:   6,
			Partitions:   2,
			Values:       datagen.NewUniform(1, 1000, 17),
			Builder:      func() sketch.Sketch { return moments.New(10) },
			Metrics:      met,
			MemoryBudget: budget,
		})
		if err != nil {
			t.Fatal(err)
		}
		results, st, err := eng.RunCollect()
		if err != nil {
			t.Fatal(err)
		}
		return results, st
	}
	base, _ := mk(0, nil)
	met := obs.NewRegistry().Engine()
	// Enough for the open panes plus a coarsened sealed population but
	// not the full one, so rung 2 must fire; moments are small, so the
	// total was tuned against their ~120-byte footprint.
	got, st := mk(750, met)
	checkShedIdentity(t, st)
	if met.BudgetEvictions.Load() == 0 {
		t.Fatal("binding pane-mode budget never coarsened a pane")
	}
	if len(got) != len(base) {
		t.Fatalf("%d windows fired, want %d", len(got), len(base))
	}
	for i, r := range got {
		var paneSum int64
		for _, c := range r.PaneCounts {
			paneSum += int64(c)
		}
		if paneSum != r.Accepted {
			t.Errorf("window %d: pane counts sum to %d, accepted %d", i, paneSum, r.Accepted)
		}
		if st.ShedBudget == 0 && r.Accepted != base[i].Accepted {
			t.Errorf("window %d: coarsening changed accepted count %d -> %d",
				i, base[i].Accepted, r.Accepted)
		}
	}
}

// TestBudgetParallelDeterministic: a budgeted parallel run is a pure
// function of the configuration — re-running it reproduces the same
// windows bit-for-bit (the per-worker budget split and batch-cadence
// enforcement are deterministic for a fixed worker count).
func TestBudgetParallelDeterministic(t *testing.T) {
	run := func() ([]WindowResult, Stats) {
		eng, err := NewEngine(Config{
			WindowSize: time.Second,
			Rate:       20000,
			NumWindows: 3,
			Partitions: 4,
			Workers:    4,
			Values:     datagen.NewUniform(1, 1000, 41),
			Builder:    func() sketch.Sketch { return kll.NewWithSeed(1024, 43) },
			// 8 KiB per worker after the 4-way split: each worker's
			// single ~16 KiB partition sketch must degrade.
			MemoryBudget: 32 << 10,
		})
		if err != nil {
			t.Fatal(err)
		}
		results, st, err := eng.RunCollect()
		if err != nil {
			t.Fatal(err)
		}
		return results, st
	}
	a, aStats := run()
	b, bStats := run()
	if aStats != bStats {
		t.Fatalf("stats diverged across identical runs: %+v vs %+v", aStats, bStats)
	}
	checkShedIdentity(t, aStats)
	sawDegrade := false
	for i := range a {
		if a[i].Degradations != b[i].Degradations {
			t.Fatalf("window %d: degradation count diverged: %d vs %d", i, a[i].Degradations, b[i].Degradations)
		}
		if a[i].Degradations > 0 {
			sawDegrade = true
		}
		ab, _ := a[i].Sketch.MarshalBinary()
		bb, _ := b[i].Sketch.MarshalBinary()
		if !bytes.Equal(ab, bb) {
			t.Fatalf("window %d: budgeted parallel run is not deterministic", i)
		}
	}
	if !sawDegrade {
		t.Error("parallel budget never bound (retune the test)")
	}
}

// TestBudgetGenericEngine wires the ladder through the generic engine:
// a binding budget degrades sliding-window sketches in place, and an
// impossible one (non-degradable moments) sheds with the extended
// identity intact.
func TestBudgetGenericEngine(t *testing.T) {
	met := obs.NewRegistry().Engine()
	eng, err := NewGenericEngine(GenericConfig{
		Assigner:     SlidingAssigner{Size: 2 * time.Second, Slide: time.Second},
		Rate:         10000,
		RunLength:    5 * time.Second,
		Values:       datagen.NewUniform(1, 1000, 23),
		Builder:      func() sketch.Sketch { return kll.NewWithSeed(1024, 29) },
		Metrics:      met,
		MemoryBudget: 48 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	var fired int
	st, err := eng.Run(func(GenericResult) { fired++ })
	if err != nil {
		t.Fatal(err)
	}
	checkShedIdentity(t, st)
	if fired == 0 {
		t.Fatal("no windows fired")
	}
	if met.Degradations.Load() == 0 {
		t.Error("generic governor never degraded (budget not binding — retune the test)")
	}
	if got := met.BudgetBytes.Load(); got > 48<<10 {
		t.Errorf("generic post-enforcement high-water %d exceeds the budget", got)
	}

	met = obs.NewRegistry().Engine()
	eng, err = NewGenericEngine(GenericConfig{
		Assigner:     TumblingAssigner{Size: time.Second},
		Rate:         5000,
		RunLength:    3 * time.Second,
		Values:       datagen.NewUniform(1, 1000, 25),
		Builder:      func() sketch.Sketch { return moments.New(10) },
		Metrics:      met,
		MemoryBudget: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err = eng.Run(func(GenericResult) {})
	if err != nil {
		t.Fatal(err)
	}
	checkShedIdentity(t, st)
	if st.ShedBudget == 0 {
		t.Error("impossible generic budget shed nothing")
	}
	if got := met.BudgetShed.Load(); got != st.ShedBudget {
		t.Errorf("BudgetShed counter %d != Stats.ShedBudget %d", got, st.ShedBudget)
	}
}
