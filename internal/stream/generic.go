package stream

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/datagen"
	"repro/internal/obs"
	"repro/internal/sketch"
)

// GenericConfig describes a streaming job over an arbitrary window
// assigner (tumbling, sliding or session). The tumbling-specialized
// Engine remains the harness's fast path; GenericEngine trades some
// speed for the full windowing semantics of paper Sec 2.5.
type GenericConfig struct {
	// Assigner maps event times to windows.
	Assigner Assigner
	// Rate is the source's event rate in events per second.
	Rate int
	// RunLength is how long the source generates events (event time).
	RunLength time.Duration
	// AllowedLateness keeps a window open for this long (in watermark
	// time) past its end before firing, re-admitting mildly late events —
	// Flink's allowedLateness. Zero reproduces the paper's
	// drop-everything-late behaviour.
	AllowedLateness time.Duration
	// UseIngestionTime assigns windows by arrival time instead of
	// generation time (the alternative grouping of paper Sec 2.5). With
	// ingestion time nothing is ever late, at the cost of windows no
	// longer corresponding to when events actually happened.
	UseIngestionTime bool
	// WatermarkLag holds the watermark this far behind the max observed
	// event time (Flink's bounded-out-of-orderness watermarks): windows
	// fire later, so events up to WatermarkLag late are still admitted.
	// Unlike AllowedLateness it delays ALL firings rather than keeping
	// fired windows open.
	WatermarkLag time.Duration
	// Values supplies event payloads in generation order.
	Values datagen.Source
	// Delay is the network-delay model; nil means ZeroDelay.
	Delay DelayModel
	// Builder constructs the per-window sketch.
	Builder sketch.Builder
	// CollectValues materializes accepted events per window.
	CollectValues bool
	// Metrics, when non-nil, receives engine-level counters as the run
	// progresses (see Config.Metrics).
	Metrics *obs.EngineMetrics
}

// GenericResult is one fired window from the generic engine.
type GenericResult struct {
	// Window is the event-time span (for sessions: after all merges).
	Window Window
	// Sketch summarizes the accepted events.
	Sketch sketch.Sketch
	// Values holds accepted payloads when CollectValues is set.
	Values []float64
	// Accepted counts the events included.
	Accepted int64
}

// GenericEngine runs jobs with sliding or session windows (and tumbling,
// for parity testing against the specialized Engine).
type GenericEngine struct {
	cfg GenericConfig
}

// NewGenericEngine validates cfg.
func NewGenericEngine(cfg GenericConfig) (*GenericEngine, error) {
	if cfg.Assigner == nil {
		return nil, errors.New("stream: Assigner is required")
	}
	if cfg.Rate <= 0 {
		return nil, errors.New("stream: Rate must be positive")
	}
	if cfg.RunLength <= 0 {
		return nil, errors.New("stream: RunLength must be positive")
	}
	if cfg.Values == nil {
		return nil, errors.New("stream: Values source is required")
	}
	if cfg.Builder == nil {
		return nil, errors.New("stream: Builder is required")
	}
	if cfg.Delay == nil {
		cfg.Delay = ZeroDelay{}
	}
	return &GenericEngine{cfg: cfg}, nil
}

// genWindowState is one open window in the generic engine.
type genWindowState struct {
	win      Window
	sk       sketch.Sketch
	values   []float64
	accepted int64
}

// Run executes the job, emitting windows ordered by (End, Start). It
// returns engine stats; late events (arriving after their window fired,
// beyond AllowedLateness) are dropped and counted.
func (e *GenericEngine) Run(emit func(GenericResult)) (Stats, error) {
	cfg := e.cfg
	interval := time.Second / time.Duration(cfg.Rate)
	if interval <= 0 {
		return Stats{}, fmt.Errorf("stream: rate %d too high for ns resolution", cfg.Rate)
	}

	var (
		stats     Stats
		inFlight  minHeap[Event]
		open                    = map[Window]*genWindowState{}
		watermark time.Duration = -1
	)
	met := cfg.Metrics

	fire := func(w *genWindowState) {
		if met != nil {
			met.WindowFires.Inc()
		}
		emit(GenericResult{Window: w.win, Sketch: w.sk, Values: w.values, Accepted: w.accepted})
	}

	// fireReady fires every open window whose end (+lateness) the
	// watermark has passed, in deterministic (End, Start) order.
	fireReady := func() {
		var ready []*genWindowState
		for win, w := range open {
			if watermark >= win.End+cfg.AllowedLateness {
				ready = append(ready, w)
			}
		}
		sort.Slice(ready, func(i, j int) bool {
			if ready[i].win.End != ready[j].win.End {
				return ready[i].win.End < ready[j].win.End
			}
			return ready[i].win.Start < ready[j].win.Start
		})
		for _, w := range ready {
			delete(open, w.win)
			fire(w)
		}
	}

	process := func(ev Event) {
		eventTime := ev.GenTime
		if cfg.UseIngestionTime {
			eventTime = ev.Arrival
		}
		if math.IsNaN(ev.Value) || math.IsInf(ev.Value, 0) {
			// Poisoned payload: rejected before window assignment or any
			// sketch insert; the event still advances the watermark.
			stats.RejectedInput++
			if met != nil {
				met.RejectedInput.Inc()
			}
		} else {
			wins := cfg.Assigner.Assign(eventTime)
			if cfg.Assigner.MergesWindows() {
				wins = e.mergeSessions(open, wins[0])
			}
			accepted := false
			for _, win := range wins {
				// A window that already fired (its end passed the fired
				// horizon and it is no longer open) rejects the event.
				if watermark >= win.End+cfg.AllowedLateness && open[win] == nil {
					continue
				}
				w := open[win]
				if w == nil {
					w = &genWindowState{win: win, sk: cfg.Builder()}
					open[win] = w
				}
				w.sk.Insert(ev.Value)
				w.accepted++
				if cfg.CollectValues {
					w.values = append(w.values, ev.Value)
				}
				accepted = true
			}
			if accepted {
				stats.Accepted++
				if met != nil {
					met.Inserted.Inc()
				}
			} else {
				stats.DroppedLate++
				if met != nil {
					met.DroppedLate.Inc()
				}
			}
		}
		if wm := eventTime - cfg.WatermarkLag; wm > watermark {
			watermark = wm
			fireReady()
		}
		if met != nil {
			if lag := int64(ev.Arrival - watermark); lag > 0 {
				met.MaxWatermarkLagNS.Max(lag)
			}
		}
	}

	genEnd := cfg.RunLength
	for gen := time.Duration(0); gen < genEnd; gen += interval {
		v := cfg.Values.Next()
		d := cfg.Delay.Delay()
		stats.Generated++
		if met != nil {
			met.Generated.Inc()
		}
		inFlight.Push(Event{GenTime: gen, Arrival: gen + d, Value: v})
		for inFlight.Len() > 0 && inFlight.Min().Arrival <= gen {
			process(inFlight.Pop())
		}
	}
	for inFlight.Len() > 0 {
		process(inFlight.Pop())
	}
	// Source exhausted: advance the watermark to +∞ and flush.
	watermark = 1 << 62
	fireReady()
	return stats, nil
}

// mergeSessions folds the proto-window into any overlapping open session
// windows, transferring their state into the union window. It returns
// the single resulting window.
func (e *GenericEngine) mergeSessions(open map[Window]*genWindowState, proto Window) []Window {
	union := proto
	var absorbed []*genWindowState
	for win, w := range open {
		if win.Start < union.End && union.Start < win.End { // overlap
			if win.Start < union.Start {
				union.Start = win.Start
			}
			if win.End > union.End {
				union.End = win.End
			}
			absorbed = append(absorbed, w)
		}
	}
	if len(absorbed) == 0 {
		return []Window{union}
	}
	if len(absorbed) == 1 && absorbed[0].win == union {
		return []Window{union}
	}
	// Deterministic merge order.
	sort.Slice(absorbed, func(i, j int) bool { return absorbed[i].win.Start < absorbed[j].win.Start })
	merged := &genWindowState{win: union, sk: e.cfg.Builder()}
	for _, w := range absorbed {
		delete(open, w.win)
		if err := merged.sk.Merge(w.sk); err != nil {
			// Same-builder sketches always merge; a failure here is a
			// programming error worth failing loudly on.
			panic(fmt.Sprintf("stream: session merge: %v", err))
		}
		merged.accepted += w.accepted
		merged.values = append(merged.values, w.values...)
	}
	open[union] = merged
	return []Window{union}
}
