package stream

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/budget"
	"repro/internal/checkpoint"
	"repro/internal/datagen"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/sketch"
)

// GenericConfig describes a streaming job over an arbitrary window
// assigner (tumbling, sliding or session). The tumbling-specialized
// Engine remains the harness's fast path; GenericEngine trades some
// speed for the full windowing semantics of paper Sec 2.5.
type GenericConfig struct {
	// Assigner maps event times to windows.
	Assigner Assigner
	// Rate is the source's event rate in events per second.
	Rate int
	// RunLength is how long the source generates events (event time).
	RunLength time.Duration
	// AllowedLateness keeps a window open for this long (in watermark
	// time) past its end before firing, re-admitting mildly late events —
	// Flink's allowedLateness. Zero reproduces the paper's
	// drop-everything-late behaviour.
	AllowedLateness time.Duration
	// UseIngestionTime assigns windows by arrival time instead of
	// generation time (the alternative grouping of paper Sec 2.5). With
	// ingestion time nothing is ever late, at the cost of windows no
	// longer corresponding to when events actually happened.
	UseIngestionTime bool
	// WatermarkLag holds the watermark this far behind the max observed
	// event time (Flink's bounded-out-of-orderness watermarks): windows
	// fire later, so events up to WatermarkLag late are still admitted.
	// Unlike AllowedLateness it delays ALL firings rather than keeping
	// fired windows open.
	WatermarkLag time.Duration
	// Values supplies event payloads in generation order.
	Values datagen.Source
	// NewValues returns a fresh copy of the Values source (see
	// Config.NewValues); required by ResumeGeneric.
	NewValues func() datagen.Source
	// Delay is the network-delay model; nil means ZeroDelay.
	Delay DelayModel
	// NewDelay is NewValues for the delay model (see Config.NewDelay).
	NewDelay func() DelayModel
	// Builder constructs the per-window sketch.
	Builder sketch.Builder
	// CollectValues materializes accepted events per window.
	CollectValues bool
	// Metrics, when non-nil, receives engine-level counters as the run
	// progresses (see Config.Metrics).
	Metrics *obs.EngineMetrics
	// CheckpointStore, when non-nil, enables snapshots at window-fire
	// points (see Config.CheckpointStore).
	CheckpointStore checkpoint.Store
	// CheckpointEvery is the snapshot cadence in fired windows; values
	// below 1 default to 1.
	CheckpointEvery int
	// Faults, when non-nil, injects deterministic faults into the run
	// (see Config.Faults). The generic engine is single-threaded, so
	// hooks fire as worker 0, partition 0.
	Faults *faultinject.Plan
	// MemoryBudget, when positive, caps the total live sketch footprint
	// in bytes (see Config.MemoryBudget). The generic engine has no
	// sealed panes, so the ladder is two rungs: degrade open-window
	// sketches largest-first, then shed (counted in Stats.ShedBudget)
	// until degradation fits the budget again.
	MemoryBudget int
}

// GenericResult is one fired window from the generic engine.
type GenericResult struct {
	// Window is the event-time span (for sessions: after all merges).
	Window Window
	// Sketch summarizes the accepted events.
	Sketch sketch.Sketch
	// Values holds accepted payloads when CollectValues is set.
	Values []float64
	// Accepted counts the events included.
	Accepted int64
}

// GenericEngine runs jobs with sliding or session windows (and tumbling,
// for parity testing against the specialized Engine).
type GenericEngine struct {
	cfg GenericConfig
}

// NewGenericEngine validates cfg.
func NewGenericEngine(cfg GenericConfig) (*GenericEngine, error) {
	if cfg.Assigner == nil {
		return nil, errors.New("stream: Assigner is required")
	}
	// Misconfigured assigners are rejected once here rather than
	// per-event inside Assign, so the hot path stays branch-free and a
	// bad Slide cannot surface as a mid-run crash.
	if sa, ok := cfg.Assigner.(SlidingAssigner); ok {
		if sa.Slide <= 0 || sa.Slide > sa.Size {
			return nil, fmt.Errorf("stream: SlidingAssigner Slide %v outside (0, Size=%v]", sa.Slide, sa.Size)
		}
	}
	if cfg.Rate <= 0 {
		return nil, errors.New("stream: Rate must be positive")
	}
	if cfg.RunLength <= 0 {
		return nil, errors.New("stream: RunLength must be positive")
	}
	if cfg.Values == nil && cfg.NewValues == nil {
		return nil, errors.New("stream: Values source (or NewValues factory) is required")
	}
	if cfg.Builder == nil {
		return nil, errors.New("stream: Builder is required")
	}
	if cfg.Delay == nil {
		cfg.Delay = ZeroDelay{}
	}
	if cfg.CheckpointStore != nil && cfg.CheckpointEvery < 1 {
		cfg.CheckpointEvery = 1
	}
	return &GenericEngine{cfg: cfg}, nil
}

// genWindowState is one open window in the generic engine.
type genWindowState struct {
	win      Window
	sk       sketch.Sketch
	values   []float64
	accepted int64
	govID    int64 // budget-governor tracking id (creation order)
}

// genRunState is one generic run's mutable state, factored out like
// runState so checkpoint restore can rebuild it mid-stream.
type genRunState struct {
	cfg  GenericConfig
	emit func(GenericResult)
	met  *obs.EngineMetrics

	vals  datagen.Source
	delay DelayModel

	interval time.Duration

	stats     Stats
	inFlight  minHeap[Event]
	open      map[Window]*genWindowState
	watermark time.Duration

	drawn     int64
	fired     uint64
	sinceSnap int
	snapEvery int

	builderName string
	inserts     int64 // fault-hook insert count (worker 0, partition 0)

	gov          *budget.Governor // nil without MemoryBudget
	shedding     bool
	sinceEnforce int
	enforceAt    int   // cached gov.Interval(), refreshed by enforceBudget
	nextGovID    int64 // monotone id source for genWindowState.govID
}

func (e *GenericEngine) newRunState(emit func(GenericResult)) (*genRunState, error) {
	cfg := e.cfg
	interval := time.Second / time.Duration(cfg.Rate)
	if interval <= 0 {
		return nil, fmt.Errorf("stream: rate %d too high for ns resolution", cfg.Rate)
	}
	rs := &genRunState{
		cfg:       cfg,
		emit:      emit,
		met:       cfg.Metrics,
		vals:      cfg.Values,
		delay:     cfg.Delay,
		interval:  interval,
		open:      map[Window]*genWindowState{},
		watermark: -1,
		snapEvery: math.MaxInt,
	}
	if cfg.NewValues != nil {
		rs.vals = cfg.NewValues()
	}
	if cfg.NewDelay != nil {
		rs.delay = cfg.NewDelay()
	}
	if cfg.CheckpointStore != nil {
		rs.snapEvery = cfg.CheckpointEvery
		rs.builderName = cfg.Builder().Name()
	}
	rs.gov = budget.New(cfg.MemoryBudget)
	rs.enforceAt = rs.gov.Interval()
	return rs, nil
}

// trackWindow registers a freshly created window's sketch with the
// governor under a creation-order id, so ties in footprint degrade the
// oldest window first.
func (rs *genRunState) trackWindow(w *genWindowState) {
	w.govID = rs.nextGovID
	rs.nextGovID++
	rs.gov.Track(w.govID, w.sk)
}

// enforceBudget runs one governor pass: degrade largest-first (rung 1)
// and toggle shedding when even that cannot fit the budget. The generic
// engine has no sealed panes, so there is no coarsening rung.
func (rs *genRunState) enforceBudget() {
	rs.sinceEnforce = 0
	out := rs.gov.Enforce(func(int64) {
		if rs.met != nil {
			rs.met.Degradations.Inc()
		}
	})
	rs.shedding = out.Exhausted
	rs.enforceAt = rs.gov.Interval()
	if rs.met != nil {
		rs.met.BudgetBytes.Max(int64(out.Usage))
	}
}

func (rs *genRunState) fire(w *genWindowState) {
	rs.gov.Untrack(w.govID)
	if rs.met != nil {
		rs.met.WindowFires.Inc()
	}
	rs.fired++
	rs.sinceSnap++
	rs.emit(GenericResult{Window: w.win, Sketch: w.sk, Values: w.values, Accepted: w.accepted})
}

// fireReady fires every open window whose end (+lateness) the
// watermark has passed, in deterministic (End, Start) order.
func (rs *genRunState) fireReady() {
	var ready []*genWindowState
	for win, w := range rs.open {
		if rs.watermark >= win.End+rs.cfg.AllowedLateness {
			ready = append(ready, w)
		}
	}
	sort.Slice(ready, func(i, j int) bool {
		if ready[i].win.End != ready[j].win.End {
			return ready[i].win.End < ready[j].win.End
		}
		return ready[i].win.Start < ready[j].win.Start
	})
	for _, w := range ready {
		delete(rs.open, w.win)
		rs.fire(w)
	}
}

func (rs *genRunState) process(ev Event) error {
	cfg := rs.cfg
	eventTime := ev.GenTime
	if cfg.UseIngestionTime {
		eventTime = ev.Arrival
	}
	if math.IsNaN(ev.Value) || math.IsInf(ev.Value, 0) {
		// Poisoned payload: rejected before window assignment or any
		// sketch insert; the event still advances the watermark.
		rs.stats.RejectedInput++
		if rs.met != nil {
			rs.met.RejectedInput.Inc()
		}
	} else if rs.shedding {
		// Budget exhausted past every degradation rung: shed before
		// window assignment; the event still advances the watermark.
		rs.stats.ShedBudget++
		if rs.met != nil {
			rs.met.BudgetShed.Inc()
		}
	} else {
		wins := cfg.Assigner.Assign(eventTime)
		if cfg.Assigner.MergesWindows() {
			merged, err := rs.mergeSessions(wins[0])
			if err != nil {
				return err
			}
			wins = merged
		}
		accepted := false
		for _, win := range wins {
			// A window that already fired (its end passed the fired
			// horizon and it is no longer open) rejects the event.
			if rs.watermark >= win.End+cfg.AllowedLateness && rs.open[win] == nil {
				continue
			}
			w := rs.open[win]
			if w == nil {
				w = &genWindowState{win: win, sk: cfg.Builder()}
				rs.open[win] = w
				rs.trackWindow(w)
			}
			if cfg.Faults != nil {
				cfg.Faults.OnEvent(0, 0, rs.inserts, rs.inserts)
				rs.inserts++
			}
			w.sk.Insert(ev.Value)
			w.accepted++
			if cfg.CollectValues {
				w.values = append(w.values, ev.Value)
			}
			accepted = true
		}
		if accepted {
			rs.stats.Accepted++
			if rs.met != nil {
				rs.met.Inserted.Inc()
			}
		} else {
			rs.stats.DroppedLate++
			if rs.met != nil {
				rs.met.DroppedLate.Inc()
			}
		}
	}
	if wm := eventTime - cfg.WatermarkLag; wm > rs.watermark {
		rs.watermark = wm
		rs.fireReady()
	}
	if rs.gov != nil {
		rs.sinceEnforce++
		if rs.sinceEnforce >= rs.enforceAt {
			rs.enforceBudget()
		}
	}
	if rs.met != nil {
		if lag := int64(ev.Arrival - rs.watermark); lag > 0 {
			rs.met.MaxWatermarkLagNS.Max(lag)
		}
	}
	return nil
}

// mergeSessions folds the proto-window into any overlapping open session
// windows, transferring their state into the union window. It returns
// the single resulting window. A sketch merge failure — same-builder
// sketches normally always merge — propagates as an error that aborts
// the run rather than panicking, so a harness driving many
// configurations can report the failed one and continue.
func (rs *genRunState) mergeSessions(proto Window) ([]Window, error) {
	union := proto
	var absorbed []*genWindowState
	for win, w := range rs.open {
		if win.Start < union.End && union.Start < win.End { // overlap
			if win.Start < union.Start {
				union.Start = win.Start
			}
			if win.End > union.End {
				union.End = win.End
			}
			absorbed = append(absorbed, w)
		}
	}
	if len(absorbed) == 0 {
		return []Window{union}, nil
	}
	if len(absorbed) == 1 && absorbed[0].win == union {
		return []Window{union}, nil
	}
	// Deterministic merge order.
	sort.Slice(absorbed, func(i, j int) bool { return absorbed[i].win.Start < absorbed[j].win.Start })
	merged := &genWindowState{win: union, sk: rs.cfg.Builder()}
	rs.trackWindow(merged)
	for _, w := range absorbed {
		delete(rs.open, w.win)
		rs.gov.Untrack(w.govID)
		if err := merged.sk.Merge(w.sk); err != nil {
			return nil, fmt.Errorf("stream: session merge [%v, %v) into [%v, %v): %w",
				w.win.Start, w.win.End, union.Start, union.End, err)
		}
		merged.accepted += w.accepted
		merged.values = append(merged.values, w.values...)
	}
	rs.open[union] = merged
	return []Window{union}, nil
}

// maybeSnapshot is the generic engine's checkpoint cadence check,
// mirroring runState.maybeSnapshot.
func (rs *genRunState) maybeSnapshot() error {
	if rs.sinceSnap < rs.snapEvery {
		return nil
	}
	rs.sinceSnap = 0
	return rs.snapshot()
}

// snapshot captures the generic run state. Open windows are stored with
// Index -1 and their [Start, End) span, each with a single sealed
// sketch blob (the generic engine has no partitions).
func (rs *genRunState) snapshot() error {
	snap := &checkpoint.Snapshot{
		Seq:           rs.fired,
		SketchName:    rs.builderName,
		Drawn:         rs.drawn,
		Watermark:     int64(rs.watermark),
		Generated:     rs.stats.Generated,
		Accepted:      rs.stats.Accepted,
		DroppedLate:   rs.stats.DroppedLate,
		RejectedInput: rs.stats.RejectedInput,
		ShedBudget:    rs.stats.ShedBudget,
	}
	snap.InFlight = make([]checkpoint.Event, len(rs.inFlight.data))
	for i, ev := range rs.inFlight.data {
		snap.InFlight[i] = checkpoint.Event{
			Gen:       int64(ev.GenTime),
			Arrival:   int64(ev.Arrival),
			Value:     ev.Value,
			Partition: int64(ev.Partition),
		}
	}
	wins := make([]Window, 0, len(rs.open))
	for win := range rs.open {
		wins = append(wins, win)
	}
	sort.Slice(wins, func(i, j int) bool {
		if wins[i].Start != wins[j].Start {
			return wins[i].Start < wins[j].Start
		}
		return wins[i].End < wins[j].End
	})
	for _, win := range wins {
		w := rs.open[win]
		sealed, err := sealPartial(w.sk)
		if err != nil {
			return err
		}
		ws := checkpoint.WindowSnap{
			Index:    -1,
			Start:    int64(win.Start),
			End:      int64(win.End),
			Accepted: w.accepted,
			Partials: [][]byte{sealed},
		}
		if w.values != nil {
			ws.HasValues = true
			ws.Values = w.values
		}
		snap.Windows = append(snap.Windows, ws)
	}
	data, err := checkpoint.EncodeSnapshot(snap)
	if err != nil {
		return fmt.Errorf("stream: checkpoint encode: %w", err)
	}
	if err := rs.cfg.CheckpointStore.Put(snap.Seq, data); err != nil {
		return fmt.Errorf("stream: checkpoint put: %w", err)
	}
	if rs.met != nil {
		rs.met.SnapshotsTaken.Inc()
		rs.met.SnapshotBytes.Add(int64(len(data)))
	}
	return nil
}

// restore rebuilds the generic run state from a decoded snapshot.
func (rs *genRunState) restore(snap *checkpoint.Snapshot) error {
	if snap.SketchName != rs.builderName {
		return fmt.Errorf("stream: snapshot holds %q sketches, engine builds %q", snap.SketchName, rs.builderName)
	}
	if snap.Drawn < 0 {
		return fmt.Errorf("stream: snapshot state out of range for this config: %w", checkpoint.ErrCorrupt)
	}
	rs.drawn = snap.Drawn
	rs.fired = snap.Seq
	rs.watermark = time.Duration(snap.Watermark)
	rs.stats = Stats{
		Generated:     snap.Generated,
		Accepted:      snap.Accepted,
		DroppedLate:   snap.DroppedLate,
		RejectedInput: snap.RejectedInput,
		ShedBudget:    snap.ShedBudget,
	}
	rs.inFlight.data = make([]Event, len(snap.InFlight))
	for i, ev := range snap.InFlight {
		rs.inFlight.data[i] = Event{
			GenTime:   time.Duration(ev.Gen),
			Arrival:   time.Duration(ev.Arrival),
			Value:     ev.Value,
			Partition: int(ev.Partition),
		}
	}
	for i := range snap.Windows {
		ws := &snap.Windows[i]
		if ws.Index != -1 || len(ws.Partials) != 1 || ws.Partials[0] == nil {
			return fmt.Errorf("stream: snapshot window %d is not a generic-engine window: %w", i, checkpoint.ErrCorrupt)
		}
		sk, err := decodePartial(rs.cfg.Builder, rs.builderName, ws.Partials[0])
		if err != nil {
			return err
		}
		win := Window{Start: time.Duration(ws.Start), End: time.Duration(ws.End)}
		w := &genWindowState{win: win, sk: sk, accepted: ws.Accepted}
		if ws.HasValues {
			w.values = ws.Values
		}
		rs.open[win] = w
		rs.trackWindow(w)
	}
	for i := int64(0); i < snap.Drawn; i++ {
		rs.vals.Next()
		rs.delay.Delay()
	}
	if rs.met != nil {
		rs.met.Restores.Inc()
		rs.met.ReplayedEvents.Add(snap.Drawn)
	}
	return nil
}

// loop drives the generic run; on a resumed state (drawn > 0) it first
// finishes the interrupted arrival drain, then continues generating
// from the checkpointed source offset. Panics (including injected
// faults) are converted into a *PanicError result.
func (rs *genRunState) loop() (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = asPanicError(r)
		}
	}()
	cfg := rs.cfg
	drainTo := func(gen time.Duration) error {
		for rs.inFlight.Len() > 0 && rs.inFlight.Min().Arrival <= gen {
			if err := rs.process(rs.inFlight.Pop()); err != nil {
				return err
			}
			if err := rs.maybeSnapshot(); err != nil {
				return err
			}
		}
		return nil
	}
	if rs.drawn > 0 {
		if err := drainTo(rs.interval * time.Duration(rs.drawn-1)); err != nil {
			return err
		}
	}
	for gen := rs.interval * time.Duration(rs.drawn); gen < cfg.RunLength; gen += rs.interval {
		v := rs.vals.Next()
		d := rs.delay.Delay()
		rs.drawn++
		rs.stats.Generated++
		if rs.met != nil {
			rs.met.Generated.Inc()
		}
		rs.inFlight.Push(Event{GenTime: gen, Arrival: gen + d, Value: v})
		if err := drainTo(gen); err != nil {
			return err
		}
	}
	for rs.inFlight.Len() > 0 {
		if err := rs.process(rs.inFlight.Pop()); err != nil {
			return err
		}
		if err := rs.maybeSnapshot(); err != nil {
			return err
		}
	}
	// Source exhausted: advance the watermark to +∞ and flush.
	rs.watermark = 1 << 62
	rs.fireReady()
	return nil
}

// Run executes the job, emitting windows ordered by (End, Start). It
// returns engine stats; late events (arriving after their window fired,
// beyond AllowedLateness) are dropped and counted.
func (e *GenericEngine) Run(emit func(GenericResult)) (Stats, error) {
	rs, err := e.newRunState(emit)
	if err != nil {
		return Stats{}, err
	}
	if err := rs.loop(); err != nil {
		return Stats{}, err
	}
	return rs.stats, nil
}

// ResumeGeneric restores the newest valid snapshot in
// cfg.CheckpointStore and runs the generic job to completion from
// there, emitting the windows fired after the snapshot point. Requires
// CheckpointStore and NewValues, like Resume.
func ResumeGeneric(cfg GenericConfig, emit func(GenericResult)) (Stats, error) {
	e, err := NewGenericEngine(cfg)
	if err != nil {
		return Stats{}, err
	}
	cfg = e.cfg
	if cfg.CheckpointStore == nil {
		return Stats{}, errors.New("stream: ResumeGeneric requires CheckpointStore")
	}
	if cfg.NewValues == nil {
		return Stats{}, errors.New("stream: ResumeGeneric requires NewValues (sources are forward-only)")
	}
	snap, _, _, err := checkpoint.LatestValid(cfg.CheckpointStore)
	if err != nil {
		return Stats{}, err
	}
	rs, err := e.newRunState(emit)
	if err != nil {
		return Stats{}, err
	}
	if err := rs.restore(snap); err != nil {
		return Stats{}, err
	}
	if err := rs.loop(); err != nil {
		return Stats{}, err
	}
	return rs.stats, nil
}
