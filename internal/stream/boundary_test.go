package stream

import (
	"math"
	"os"
	"testing"
	"time"

	"repro/internal/datagen"
	"repro/internal/kll"
	"repro/internal/obs"
)

// testMetrics is live for the whole stream test package: every engine
// run and every KLL sketch in these tests records into it, so the
// determinism and race guarantees (TestParallelBitIdentical,
// TestParallelManyWindows under -race) are proven to hold with metrics
// ENABLED, not just on the nil fast path.
var testMetrics *obs.Registry

func TestMain(m *testing.M) {
	testMetrics = obs.NewRegistry()
	kll.SetMetrics(testMetrics.Sketch("kll"))
	os.Exit(m.Run())
}

// rampSource emits 0, 1, 2, ... — the value identifies the event's
// generation index, so window membership is directly observable.
type rampSource struct{ i float64 }

func (r *rampSource) Next() float64 { v := r.i; r.i++; return v }

// scriptedDelay returns a fixed delay per generation index (zero when
// unlisted), making arrival order fully deterministic in tests.
type scriptedDelay struct {
	i      int
	delays map[int]time.Duration
}

func (s *scriptedDelay) Delay() time.Duration {
	d := s.delays[s.i]
	s.i++
	return d
}

// poisonSource wraps a source, replacing listed generation indices with
// a poisoned payload (NaN or ±Inf).
type poisonSource struct {
	src    datagen.Source
	i      int
	poison map[int]float64
}

func (p *poisonSource) Next() float64 {
	v := p.src.Next()
	if pv, ok := p.poison[p.i]; ok {
		v = pv
	}
	p.i++
	return v
}

// checkIdentity asserts the Stats accounting identity the engine
// guarantees on every path.
func checkIdentity(t *testing.T, st Stats) {
	t.Helper()
	if st.Generated != st.Accepted+st.DroppedLate+st.RejectedInput {
		t.Errorf("stats identity violated: Generated=%d != Accepted=%d + DroppedLate=%d + RejectedInput=%d",
			st.Generated, st.Accepted, st.DroppedLate, st.RejectedInput)
	}
}

// TestWindowBoundarySemantics pins the [start, end) window contract on
// the serial and parallel paths: an event with GenTime exactly equal to
// a window's end belongs to the NEXT window, and the window fires
// exactly when the watermark reaches its end. Rate 1000 → 1 ms between
// events, windows of 10 ms, so event index 10 falls precisely on the
// first boundary; the ramp payload makes membership visible.
func TestWindowBoundarySemantics(t *testing.T) {
	for _, tc := range []struct{ partitions, workers int }{
		{1, 1}, // serial seqSink
		{2, 2}, // parallel workerPool
	} {
		eng, err := NewEngine(Config{
			WindowSize: 10 * time.Millisecond,
			Rate:       1000,
			NumWindows: 2,
			Partitions: tc.partitions,
			Workers:    tc.workers,
			Values:     &rampSource{},
			// Index 5 (GenTime 5 ms) arrives at 10.5 ms — after the
			// watermark hits 10 ms and fires window 0 — so it is late.
			Delay:         &scriptedDelay{delays: map[int]time.Duration{5: 5500 * time.Microsecond}},
			Builder:       ddBuilder,
			CollectValues: true,
			Metrics:       testMetrics.Engine(),
		})
		if err != nil {
			t.Fatal(err)
		}
		results, st, err := eng.RunCollect()
		if err != nil {
			t.Fatal(err)
		}
		if len(results) != 2 {
			t.Fatalf("partitions=%d workers=%d: got %d windows, want 2", tc.partitions, tc.workers, len(results))
		}
		w0, w1 := results[0], results[1]
		if w0.Start != 0 || w0.End != 10*time.Millisecond || w1.Start != 10*time.Millisecond || w1.End != 20*time.Millisecond {
			t.Fatalf("window spans wrong: [%v,%v) and [%v,%v)", w0.Start, w0.End, w1.Start, w1.End)
		}
		// Window 0 holds indices 0..9 minus the late index 5.
		wantW0 := []float64{0, 1, 2, 3, 4, 6, 7, 8, 9}
		if len(w0.Values) != len(wantW0) {
			t.Fatalf("window 0 values %v, want %v", w0.Values, wantW0)
		}
		for i, v := range wantW0 {
			if w0.Values[i] != v {
				t.Fatalf("window 0 values %v, want %v", w0.Values, wantW0)
			}
		}
		// Index 10 (GenTime == 10 ms == window 0's end) must open window
		// 1, never close out window 0: [start, end).
		for _, v := range w1.Values {
			if v < 10 || v >= 20 {
				t.Errorf("window 1 contains value %v outside [10,20)", v)
			}
		}
		if w1.Accepted != 10 {
			t.Errorf("window 1 accepted %d, want 10 (indices 10..19)", w1.Accepted)
		}
		if w0.DroppedLate != 1 {
			t.Errorf("window 0 DroppedLate %d, want 1", w0.DroppedLate)
		}
		if st.Generated != 20 || st.Accepted != 19 || st.DroppedLate != 1 || st.RejectedInput != 0 {
			t.Errorf("stats %+v, want Generated=20 Accepted=19 DroppedLate=1 RejectedInput=0", st)
		}
		checkIdentity(t, st)
	}
}

// TestGenericWindowBoundarySemantics pins the same [start, end)
// contract on the generic engine's tumbling path, plus the
// AllowedLateness boundary: a late event arriving while
// watermark < end+lateness is re-admitted, one arriving at or after
// that horizon is dropped — so `end+lateness` is itself exclusive.
func TestGenericWindowBoundarySemantics(t *testing.T) {
	eng, err := NewGenericEngine(GenericConfig{
		Assigner:        TumblingAssigner{Size: 10 * time.Millisecond},
		Rate:            1000,
		RunLength:       20 * time.Millisecond,
		AllowedLateness: 5 * time.Millisecond,
		Values:          &rampSource{},
		Delay: &scriptedDelay{delays: map[int]time.Duration{
			// Index 9 arrives at 14.5 ms: watermark is 14 ms < 15 ms, so
			// window [0,10) is still open and re-admits it.
			9: 5500 * time.Microsecond,
			// Index 7 arrives at 15.5 ms: index 15 (on time, GenTime
			// 15 ms) has already pushed the watermark to exactly
			// end+lateness = 15 ms, firing the window, so it is dropped.
			7: 8500 * time.Microsecond,
		}},
		Builder:       ddBuilder,
		CollectValues: true,
		Metrics:       testMetrics.Engine(),
	})
	if err != nil {
		t.Fatal(err)
	}
	var results []GenericResult
	st, err := eng.Run(func(r GenericResult) { results = append(results, r) })
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d windows, want 2", len(results))
	}
	w0, w1 := results[0], results[1]
	if w0.Window.Start != 0 || w0.Window.End != 10*time.Millisecond {
		t.Fatalf("first window [%v,%v), want [0,10ms)", w0.Window.Start, w0.Window.End)
	}
	// Window [0,10): indices 0..9 minus dropped index 7; the re-admitted
	// index 9 lands last (it arrived after indices 10..14 were processed).
	wantW0 := []float64{0, 1, 2, 3, 4, 5, 6, 8, 9}
	if len(w0.Values) != len(wantW0) {
		t.Fatalf("window 0 values %v, want %v", w0.Values, wantW0)
	}
	for i, v := range wantW0 {
		if w0.Values[i] != v {
			t.Fatalf("window 0 values %v, want %v", w0.Values, wantW0)
		}
	}
	// Index 10 (GenTime == 10 ms) belongs to [10,20).
	for _, v := range w1.Values {
		if v < 10 || v >= 20 {
			t.Errorf("window [10,20) contains value %v", v)
		}
	}
	if st.Generated != 20 || st.Accepted != 19 || st.DroppedLate != 1 || st.RejectedInput != 0 {
		t.Errorf("stats %+v, want Generated=20 Accepted=19 DroppedLate=1 RejectedInput=0", st)
	}
	checkIdentity(t, st)
}

// TestRejectedInput feeds a poisoned source (NaN, ±Inf payloads) through
// the serial engine: the poison must be counted in RejectedInput, reach
// no sketch and no collected values, and leave the accounting identity
// exact.
func TestRejectedInput(t *testing.T) {
	poison := map[int]float64{
		3:  math.NaN(),
		11: math.Inf(1),
		17: math.Inf(-1),
	}
	eng, err := NewEngine(Config{
		WindowSize:    10 * time.Millisecond,
		Rate:          1000,
		NumWindows:    2,
		Values:        &poisonSource{src: &rampSource{}, poison: poison},
		Builder:       ddBuilder,
		CollectValues: true,
		Metrics:       testMetrics.Engine(),
	})
	if err != nil {
		t.Fatal(err)
	}
	results, st, err := eng.RunCollect()
	if err != nil {
		t.Fatal(err)
	}
	if st.RejectedInput != 3 {
		t.Errorf("RejectedInput %d, want 3", st.RejectedInput)
	}
	if st.Generated != 20 || st.Accepted != 17 || st.DroppedLate != 0 {
		t.Errorf("stats %+v, want Generated=20 Accepted=17 DroppedLate=0", st)
	}
	checkIdentity(t, st)
	for _, r := range results {
		if uint64(len(r.Values)) != r.Sketch.Count() {
			t.Errorf("window %d: %d values vs sketch count %d", r.Index, len(r.Values), r.Sketch.Count())
		}
		for _, v := range r.Values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("window %d: poisoned value %v reached the window", r.Index, v)
			}
		}
	}
}

// TestGenericRejectedInput is TestRejectedInput on the generic engine.
func TestGenericRejectedInput(t *testing.T) {
	poison := map[int]float64{2: math.NaN(), 12: math.Inf(1)}
	eng, err := NewGenericEngine(GenericConfig{
		Assigner:      TumblingAssigner{Size: 10 * time.Millisecond},
		Rate:          1000,
		RunLength:     20 * time.Millisecond,
		Values:        &poisonSource{src: &rampSource{}, poison: poison},
		Builder:       ddBuilder,
		CollectValues: true,
		Metrics:       testMetrics.Engine(),
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := eng.Run(func(r GenericResult) {
		for _, v := range r.Values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("poisoned value %v reached window %v", v, r.Window)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.RejectedInput != 2 {
		t.Errorf("RejectedInput %d, want 2", st.RejectedInput)
	}
	if st.Generated != 20 || st.Accepted != 18 || st.DroppedLate != 0 {
		t.Errorf("stats %+v, want Generated=20 Accepted=18 DroppedLate=0", st)
	}
	checkIdentity(t, st)
}

// TestParallelDrainLosesNothing is the no-event-left-behind regression
// test: under late drops AND poisoned inputs, every generated event must
// be accounted for exactly once at every worker count, and the whole
// Stats struct must match the serial reference bit for bit. Run under
// -race by scripts/verify.sh.
func TestParallelDrainLosesNothing(t *testing.T) {
	poison := map[int]float64{97: math.NaN(), 501: math.Inf(1), 1303: math.Inf(-1), 2999: math.NaN()}
	run := func(workers, partitions int) Stats {
		eng, err := NewEngine(Config{
			WindowSize: 100 * time.Millisecond,
			Rate:       10000,
			NumWindows: 4,
			Partitions: partitions,
			Workers:    workers,
			Values:     &poisonSource{src: datagen.NewPareto(1, 1, 77), poison: poison},
			Delay:      NewExponentialDelay(15*time.Millisecond, 79),
			Builder:    ddBuilder,
			Metrics:    testMetrics.Engine(),
		})
		if err != nil {
			t.Fatal(err)
		}
		_, st, err := eng.RunCollect()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	for _, partitions := range []int{4, 5} {
		serial := run(1, partitions)
		if serial.DroppedLate == 0 {
			t.Fatal("want late drops so the drain is tested under pressure")
		}
		if serial.RejectedInput != 4 {
			t.Fatalf("serial RejectedInput %d, want 4", serial.RejectedInput)
		}
		checkIdentity(t, serial)
		for _, workers := range []int{2, 4, 8} {
			st := run(workers, partitions)
			checkIdentity(t, st)
			if st != serial {
				t.Errorf("partitions=%d workers=%d: stats %+v differ from serial %+v", partitions, workers, st, serial)
			}
		}
	}
}

// TestDroppedLateContract enforces the WindowResult.DroppedLate
// contract: streaming Run callbacks always observe zero (late events
// surface after their window was emitted), RunCollect patches the
// per-window counts afterwards, and those patched counts sum exactly to
// Stats.DroppedLate.
func TestDroppedLateContract(t *testing.T) {
	// Source and delay model are stateful; build a fresh config per run
	// so both runs see identical streams.
	newCfg := func() Config {
		return Config{
			WindowSize: 100 * time.Millisecond,
			Rate:       5000,
			NumWindows: 5,
			Values:     datagen.NewUniform(1, 2, 31),
			Delay:      NewExponentialDelay(20*time.Millisecond, 37),
			Builder:    ddBuilder,
			Metrics:    testMetrics.Engine(),
		}
	}
	eng, err := NewEngine(newCfg())
	if err != nil {
		t.Fatal(err)
	}
	stStream, err := eng.Run(func(r WindowResult) {
		if r.DroppedLate != 0 {
			t.Errorf("streaming Run callback saw DroppedLate=%d on window %d; contract says 0", r.DroppedLate, r.Index)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if stStream.DroppedLate == 0 {
		t.Fatal("want late drops for the contract to be meaningful")
	}
	checkIdentity(t, stStream)

	eng2, err := NewEngine(newCfg())
	if err != nil {
		t.Fatal(err)
	}
	results, st, err := eng2.RunCollect()
	if err != nil {
		t.Fatal(err)
	}
	if st != stStream {
		t.Fatalf("RunCollect stats %+v differ from Run stats %+v on identical config", st, stStream)
	}
	var sum int64
	for _, r := range results {
		sum += r.DroppedLate
	}
	if sum != st.DroppedLate {
		t.Errorf("per-window DroppedLate sums to %d, Stats.DroppedLate is %d; must be exact", sum, st.DroppedLate)
	}
	checkIdentity(t, st)
}

// TestEngineMetricsMatchStats proves the obs counters are not a second
// bookkeeping that can drift: after a run with drops and rejections, a
// fresh EngineMetrics must agree exactly with the returned Stats.
func TestEngineMetricsMatchStats(t *testing.T) {
	reg := obs.NewRegistry()
	eng, err := NewEngine(Config{
		WindowSize: 100 * time.Millisecond,
		Rate:       5000,
		NumWindows: 3,
		Partitions: 2,
		Workers:    2,
		Values:     &poisonSource{src: datagen.NewUniform(1, 2, 51), poison: map[int]float64{10: math.NaN()}},
		Delay:      NewExponentialDelay(20*time.Millisecond, 53),
		Builder:    ddBuilder,
		Metrics:    reg.Engine(),
	})
	if err != nil {
		t.Fatal(err)
	}
	_, st, err := eng.RunCollect()
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	for key, want := range map[string]int64{
		"engine.generated":      st.Generated,
		"engine.inserted":       st.Accepted,
		"engine.dropped_late":   st.DroppedLate,
		"engine.rejected_input": st.RejectedInput,
		"engine.window_fires":   3,
	} {
		if got := snap[key]; got != want {
			t.Errorf("%s = %d, want %d (stats %+v)", key, got, want, st)
		}
	}
	checkIdentity(t, st)
}
