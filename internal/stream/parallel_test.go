package stream

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/datagen"
	"repro/internal/kll"
	"repro/internal/sketch"
)

// parallelRun executes one engine run with the given worker and
// partition counts. The KLL builder makes the comparison strict: its
// compaction coin flips depend on the exact per-partition insert
// sequence, so any reordering anywhere in the parallel path would show
// up in the serialized sketches. Metrics are enabled (testMetrics) so
// the bit-identity guarantee is proven with recording on.
func parallelRun(t *testing.T, workers, partitions int) ([]WindowResult, Stats) {
	t.Helper()
	eng, err := NewEngine(Config{
		WindowSize:    time.Second,
		Rate:          5000,
		NumWindows:    4,
		Partitions:    partitions,
		Workers:       workers,
		Values:        datagen.NewPareto(1, 1, 41),
		Delay:         NewExponentialDelay(150*time.Millisecond, 43),
		Builder:       func() sketch.Sketch { return kll.NewWithSeed(128, 99) },
		CollectValues: true,
		Metrics:       testMetrics.Engine(),
	})
	if err != nil {
		t.Fatal(err)
	}
	results, stats, err := eng.RunCollect()
	if err != nil {
		t.Fatal(err)
	}
	return results, stats
}

// marshal serializes a window's merged sketch for byte comparison.
func marshal(t *testing.T, sk sketch.Sketch) []byte {
	t.Helper()
	blob, err := sk.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// TestParallelBitIdentical is the determinism guarantee of
// Config.Workers: the parallel path must produce output byte-identical
// to the sequential path at every worker count, including counts where
// partitions are unevenly distributed across workers and counts above
// the partition count (clamped).
func TestParallelBitIdentical(t *testing.T) {
	for _, partitions := range []int{4, 5} {
		seqResults, seqStats := parallelRun(t, 0, partitions)
		if seqStats.DroppedLate == 0 {
			t.Fatalf("want late drops in the reference run so the parallel path is tested under reordering pressure")
		}
		for _, workers := range []int{1, 2, 4, 8} {
			parResults, parStats := parallelRun(t, workers, partitions)
			if parStats != seqStats {
				t.Errorf("partitions=%d workers=%d: stats %+v, sequential %+v", partitions, workers, parStats, seqStats)
			}
			if len(parResults) != len(seqResults) {
				t.Fatalf("partitions=%d workers=%d: %d windows, sequential %d", partitions, workers, len(parResults), len(seqResults))
			}
			for i, seq := range seqResults {
				par := parResults[i]
				if par.Index != seq.Index || par.Start != seq.Start || par.End != seq.End ||
					par.Accepted != seq.Accepted || par.DroppedLate != seq.DroppedLate {
					t.Errorf("partitions=%d workers=%d window %d: header %+v, sequential %+v",
						partitions, workers, i, par, seq)
				}
				if len(par.Values) != len(seq.Values) {
					t.Fatalf("partitions=%d workers=%d window %d: %d values, sequential %d",
						partitions, workers, i, len(par.Values), len(seq.Values))
				}
				for j := range seq.Values {
					if par.Values[j] != seq.Values[j] {
						t.Fatalf("partitions=%d workers=%d window %d value %d: %v, sequential %v",
							partitions, workers, i, j, par.Values[j], seq.Values[j])
					}
				}
				if !bytes.Equal(marshal(t, par.Sketch), marshal(t, seq.Sketch)) {
					t.Errorf("partitions=%d workers=%d window %d: merged sketch differs from sequential",
						partitions, workers, i)
				}
			}
		}
	}
}

// TestParallelManyWindows drives the worker pool across enough windows
// and events that batches, fire barriers and the sync.Pool recycling
// all cycle repeatedly; run under -race (scripts/verify.sh does) this
// doubles as the data-race exercise for the parallel path.
func TestParallelManyWindows(t *testing.T) {
	run := func(workers int) ([]WindowResult, Stats) {
		eng, err := NewEngine(Config{
			WindowSize: 500 * time.Millisecond,
			Rate:       20_000,
			NumWindows: 12,
			Partitions: 8,
			Workers:    workers,
			Values:     datagen.NewUniform(0, 1000, 61),
			Delay:      NewExponentialDelay(40*time.Millisecond, 67),
			Builder:    func() sketch.Sketch { return kll.NewWithSeed(64, 5) },
			Metrics:    testMetrics.Engine(),
		})
		if err != nil {
			t.Fatal(err)
		}
		results, stats, err := eng.RunCollect()
		if err != nil {
			t.Fatal(err)
		}
		return results, stats
	}
	seqResults, seqStats := run(1)
	parResults, parStats := run(3)
	if parStats != seqStats {
		t.Fatalf("stats %+v, sequential %+v", parStats, seqStats)
	}
	for i, seq := range seqResults {
		if parResults[i].Accepted != seq.Accepted {
			t.Errorf("window %d: accepted %d, sequential %d", i, parResults[i].Accepted, seq.Accepted)
		}
		if !bytes.Equal(marshal(t, parResults[i].Sketch), marshal(t, seq.Sketch)) {
			t.Errorf("window %d: merged sketch differs from sequential", i)
		}
	}
}
