// Equivalence tests for the MultiQuantiler contract: QuantileAll must be
// bitwise-indistinguishable from per-q Quantile calls — same estimates,
// same first error with identical wrapping — so the Quantiles dispatch
// can route through the batch kernel transparently.
package sketch_test

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"repro/internal/sketch"
)

// fallbackQuantiles replicates the per-q loop Quantiles uses for
// sketches without a batch kernel — the reference behavior QuantileAll
// must reproduce exactly.
func fallbackQuantiles(sk sketch.Sketch, qs []float64) ([]float64, error) {
	out := make([]float64, len(qs))
	for i, q := range qs {
		v, err := sk.Quantile(q)
		if err != nil {
			return nil, fmt.Errorf("quantile %v: %w", q, err)
		}
		out[i] = v
	}
	return out, nil
}

// quantileAllGrids covers the shapes a batch kernel must handle: single
// targets, the harness's sorted grid, unsorted order with duplicates and
// extremes, q=1 fast paths, invalid quantiles mid-slice, and empty input.
var quantileAllGrids = [][]float64{
	{0.5},
	{0.05, 0.25, 0.5, 0.75, 0.9, 0.95, 0.98, 0.99},
	{0.99, 0.01, 0.5, 1, 0.5, 1e-9, 0.999},
	{1, 1, 0.25},
	{0.5, -1, 0.9},
	{0.9, 2},
	{math.NaN()},
	{},
}

// TestQuantileAllEquivalence pins QuantileAll to the scalar path on
// every study sketch (including the stress configurations of
// batchBuilders) across empty, filled, warm-cache and post-merge states.
func TestQuantileAllEquivalence(t *testing.T) {
	const n = 20_000
	vals := batchTestValues(n)
	for name, builder := range batchBuilders(t) {
		t.Run(name, func(t *testing.T) {
			sk := builder()
			mq, ok := sk.(sketch.MultiQuantiler)
			if !ok {
				t.Fatalf("%s does not implement sketch.MultiQuantiler", name)
			}
			check := func(stage string) {
				t.Helper()
				for _, qs := range quantileAllGrids {
					// Batch first (cold caches), then the scalar reference,
					// then batch again (warm caches): both calls must match.
					cold, errC := mq.QuantileAll(qs)
					want, errW := fallbackQuantiles(sk, qs)
					warm, errH := mq.QuantileAll(qs)
					for pass, got := range map[string][]float64{"cold": cold, "warm": warm} {
						errG := errC
						if pass == "warm" {
							errG = errH
						}
						if (errW == nil) != (errG == nil) {
							t.Fatalf("%s %s qs=%v: error mismatch: batch %v, scalar %v", stage, pass, qs, errG, errW)
						}
						if errW != nil {
							if errG.Error() != errW.Error() {
								t.Fatalf("%s %s qs=%v: error text %q, scalar %q", stage, pass, qs, errG, errW)
							}
							for _, sentinel := range []error{sketch.ErrEmpty, sketch.ErrInvalidQuantile} {
								if errors.Is(errW, sentinel) != errors.Is(errG, sentinel) {
									t.Fatalf("%s %s qs=%v: sentinel mismatch on %v", stage, pass, qs, sentinel)
								}
							}
							continue
						}
						if len(got) != len(want) {
							t.Fatalf("%s %s qs=%v: got %d values, want %d", stage, pass, qs, len(got), len(want))
						}
						for i := range want {
							if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
								t.Errorf("%s %s q=%v: batch %v, scalar %v", stage, pass, qs[i], got[i], want[i])
							}
						}
					}
				}
			}
			check("empty")
			for _, x := range vals {
				sk.Insert(x)
			}
			check("filled")
			other := builder()
			for _, x := range vals[:n/2] {
				other.Insert(x)
			}
			if err := sk.Merge(other); err != nil {
				t.Fatal(err)
			}
			check("merged")
		})
	}
}

// TestQuantilesUsesBatchKernel pins the Quantiles dispatch: a sketch
// implementing MultiQuantiler must receive the whole slice in one call.
func TestQuantilesUsesBatchKernel(t *testing.T) {
	rec := &recordingMulti{}
	if _, err := sketch.Quantiles(rec, []float64{0.1, 0.9}); err != nil {
		t.Fatal(err)
	}
	if rec.batch != 1 || rec.scalar != 0 {
		t.Fatalf("Quantiles used %d batch calls and %d scalar queries; want 1 and 0", rec.batch, rec.scalar)
	}
}

// recordingMulti counts which query path Quantiles picked.
type recordingMulti struct {
	sketch.Sketch
	batch  int
	scalar int
}

func (r *recordingMulti) Quantile(float64) (float64, error) {
	r.scalar++
	return 0, nil
}

func (r *recordingMulti) QuantileAll(qs []float64) ([]float64, error) {
	r.batch++
	return make([]float64, len(qs)), nil
}
