//go:build invariants

// Metamorphic contract tests: properties that must hold for every
// registered sketch on any input stream, regardless of the sketch's
// accuracy guarantees. They run under the invariants build tag — the same
// runs that arm the per-package assertion hooks — so a property violation
// surfaces together with the internal state checks:
//
//	go test -tags invariants ./internal/...
package sketch_test

import (
	"math"
	"testing"

	"repro/internal/registry"
)

// splitmix is the deterministic stream generator shared by all cases.
type splitmix uint64

func (s *splitmix) next() float64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

// streams are chosen to stress different shapes: flat, heavy-tailed, and
// heavily duplicated. All values are strictly positive so log-domain
// sketches (moments-full, dcs) see representable input.
func streams(n int) map[string][]float64 {
	out := make(map[string][]float64)
	var s splitmix = 0x5ee0
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = 1 + s.next()*1e4
	}
	out["uniform"] = vals

	s = 0xbeef
	vals = make([]float64, n)
	for i := range vals {
		vals[i] = math.Exp(2 + 4*s.next())
	}
	out["heavytail"] = vals

	s = 0xd15c
	vals = make([]float64, n)
	for i := range vals {
		vals[i] = float64(1 + int(s.next()*8)*125)
	}
	out["discrete"] = vals
	return out
}

// TestQuantileMonotonicity: the quantile function of any distribution is
// non-decreasing, and every sketch's estimator must preserve that —
// an inversion means two queries disagree about the same CDF.
func TestQuantileMonotonicity(t *testing.T) {
	for name, vals := range streams(3000) {
		for _, e := range registry.Entries() {
			s := e.New()
			for _, v := range vals {
				s.Insert(v)
			}
			prevQ, prev := 0.0, math.Inf(-1)
			for qi := 1; qi <= 99; qi++ {
				q := float64(qi) / 100
				est, err := s.Quantile(q)
				if err != nil {
					t.Fatalf("%s/%s: Quantile(%v): %v", e.Name, name, q, err)
				}
				if math.IsNaN(est) {
					t.Fatalf("%s/%s: Quantile(%v) is NaN", e.Name, name, q)
				}
				// Tiny relative slack absorbs float jitter in
				// interpolating estimators without hiding real
				// inversions.
				slack := 1e-9 * (math.Abs(est) + math.Abs(prev))
				if est < prev-slack {
					t.Errorf("%s/%s: quantile inversion: Q(%v)=%v > Q(%v)=%v",
						e.Name, name, prevQ, prev, q, est)
				}
				prevQ, prev = q, est
			}
		}
	}
}

// TestRankQuantileDuality: feeding a quantile estimate back through Rank
// must land near the original q. Rank may legitimately exceed q when mass
// is concentrated on few points (the discrete stream), so only the lower
// side is bounded there; continuous streams are bounded on both sides.
func TestRankQuantileDuality(t *testing.T) {
	const tol = 0.08
	for name, vals := range streams(3000) {
		for _, e := range registry.Entries() {
			s := e.New()
			for _, v := range vals {
				s.Insert(v)
			}
			for _, q := range []float64{0.05, 0.25, 0.5, 0.75, 0.95} {
				x, err := s.Quantile(q)
				if err != nil {
					t.Fatalf("%s/%s: Quantile(%v): %v", e.Name, name, q, err)
				}
				r, err := s.Rank(x)
				if err != nil {
					t.Fatalf("%s/%s: Rank(Quantile(%v)=%v): %v", e.Name, name, q, x, err)
				}
				if r < q-tol || r > 1+1e-9 {
					t.Errorf("%s/%s: duality broken: Rank(Quantile(%v)=%v) = %v",
						e.Name, name, q, x, r)
				}
				if name != "discrete" && r > q+tol {
					t.Errorf("%s/%s: duality broken high: Rank(Quantile(%v)=%v) = %v",
						e.Name, name, q, x, r)
				}
			}
		}
	}
}

// TestMergeMatchesUnion: merging two halves of a stream must answer
// quantile queries close to a single sketch fed the whole stream. The
// tolerance is loose — randomized compaction means the two are not
// bit-identical — but a merge that corrupts structure lands far outside
// it (and trips the invariants hooks compiled into this build).
func TestMergeMatchesUnion(t *testing.T) {
	const tol = 0.10
	for name, vals := range streams(3000) {
		half := len(vals) / 2
		for _, e := range registry.Entries() {
			whole, a, b := e.New(), e.New(), e.New()
			for _, v := range vals {
				whole.Insert(v)
			}
			for _, v := range vals[:half] {
				a.Insert(v)
			}
			for _, v := range vals[half:] {
				b.Insert(v)
			}
			if err := a.Merge(b); err != nil {
				t.Fatalf("%s/%s: Merge: %v", e.Name, name, err)
			}
			if a.Count() != whole.Count() {
				t.Errorf("%s/%s: merged count %d != whole-stream count %d",
					e.Name, name, a.Count(), whole.Count())
			}
			for _, q := range []float64{0.25, 0.5, 0.75} {
				xw, err := whole.Quantile(q)
				if err != nil {
					t.Fatalf("%s/%s: Quantile(%v): %v", e.Name, name, q, err)
				}
				rm, err := a.Rank(xw)
				if err != nil {
					t.Fatalf("%s/%s: Rank(%v): %v", e.Name, name, xw, err)
				}
				if rm < q-tol && name != "discrete" {
					t.Errorf("%s/%s: merged sketch ranks whole-stream Q(%v)=%v at %v",
						e.Name, name, q, xw, rm)
				}
			}
		}
	}
}
