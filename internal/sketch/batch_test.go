// Equivalence tests for the BatchInserter contract: InsertBatch must be
// indistinguishable from per-element Insert in stream order, across
// every chunking of the input. The external test package lets these
// tests exercise the concrete study sketches against the interface they
// implement.
package sketch_test

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/datagen"
	"repro/internal/ddsketch"
	"repro/internal/kll"
	"repro/internal/moments"
	"repro/internal/req"
	"repro/internal/sketch"
	"repro/internal/uddsketch"
)

// batchBuilders covers every BatchInserter implementation, configured
// so the interesting state transitions happen mid-batch: small KLL/REQ
// capacities force many compactions, a tiny UDDSketch budget forces
// repeated uniform collapses, and the collapsing DDSketch store
// exercises the per-element fallback of its batch kernel.
func batchBuilders(t *testing.T) map[string]sketch.Builder {
	t.Helper()
	udd, err := uddsketch.NewWithBudget(0.01, 64, 6)
	if err != nil {
		t.Fatal(err)
	}
	uddAlpha, uddBuckets := udd.InitialAlpha(), udd.MaxBuckets()
	return map[string]sketch.Builder{
		"kll":               func() sketch.Sketch { return kll.NewWithSeed(32, 7) },
		"req":               func() sketch.Sketch { return req.NewWithSeed(8, true, 7) },
		"ddsketch":          func() sketch.Sketch { return ddsketch.New(0.01) },
		"ddsketch-collapse": func() sketch.Sketch { return ddsketch.NewCollapsing(0.01, 48) },
		"uddsketch":         func() sketch.Sketch { return uddsketch.New(uddAlpha, uddBuckets) },
		"moments":           func() sketch.Sketch { return moments.New(12) },
		"moments-log":       func() sketch.Sketch { return moments.NewWithTransform(12, moments.TransformLog) },
		"moments-arcsinh":   func() sketch.Sketch { return moments.NewWithTransform(12, moments.TransformArcsinh) },
	}
}

// batchTestValues mixes heavy-tailed positives with the awkward cases
// every kernel must route exactly like the scalar path: NaNs (skipped),
// zeros and subnormals (zero counter / unrepresentable), and negatives
// (negative store, or skipped under the log transform).
func batchTestValues(n int) []float64 {
	src := datagen.NewPareto(1, 1, 17)
	vals := make([]float64, n)
	for i := range vals {
		switch i % 13 {
		case 3:
			vals[i] = math.NaN()
		case 5:
			vals[i] = 0
		case 7:
			vals[i] = -src.Next()
		case 11:
			vals[i] = 5e-324 // subnormal: below every minimum indexable magnitude
		default:
			vals[i] = src.Next()
		}
	}
	return vals
}

// TestInsertBatchEquivalence feeds the same stream through Insert and
// through InsertBatch at several chunk sizes and requires identical
// serialized state, count and query answers.
func TestInsertBatchEquivalence(t *testing.T) {
	const n = 20_000
	vals := batchTestValues(n)
	for name, builder := range batchBuilders(t) {
		t.Run(name, func(t *testing.T) {
			ref := builder()
			if _, ok := ref.(sketch.BatchInserter); !ok {
				t.Fatalf("%s does not implement sketch.BatchInserter", name)
			}
			for _, x := range vals {
				ref.Insert(x)
			}
			refBlob, err := ref.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			for _, chunk := range []int{1, 3, 64, 256, 1000, n} {
				got := builder()
				bi := got.(sketch.BatchInserter)
				for i := 0; i < n; i += chunk {
					j := i + chunk
					if j > n {
						j = n
					}
					bi.InsertBatch(vals[i:j])
				}
				if got.Count() != ref.Count() {
					t.Fatalf("chunk=%d: count %d, scalar %d", chunk, got.Count(), ref.Count())
				}
				gotBlob, err := got.MarshalBinary()
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(gotBlob, refBlob) {
					t.Errorf("chunk=%d: serialized state differs from scalar inserts", chunk)
				}
				for _, q := range []float64{0.01, 0.5, 0.9, 0.99, 1} {
					want, errW := ref.Quantile(q)
					have, errH := got.Quantile(q)
					if (errW == nil) != (errH == nil) {
						t.Fatalf("chunk=%d q=%v: error mismatch %v vs %v", chunk, q, errH, errW)
					}
					if errW == nil && math.Float64bits(have) != math.Float64bits(want) {
						t.Errorf("chunk=%d q=%v: %v, scalar %v", chunk, q, have, want)
					}
				}
			}
		})
	}
}

// TestInsertAllUsesBatchKernel pins the InsertAll dispatch: a sketch
// implementing BatchInserter must receive the whole slice in one call.
func TestInsertAllUsesBatchKernel(t *testing.T) {
	rec := &recordingBatcher{}
	sketch.InsertAll(rec, []float64{1, 2, 3})
	if rec.batches != 1 || rec.inserts != 0 {
		t.Fatalf("InsertAll used %d batch calls and %d scalar inserts; want 1 and 0", rec.batches, rec.inserts)
	}
}

// recordingBatcher counts which insert path InsertAll picked.
type recordingBatcher struct {
	sketch.Sketch
	batches int
	inserts int
}

func (r *recordingBatcher) Insert(float64)           { r.inserts++ }
func (r *recordingBatcher) InsertBatch(xs []float64) { r.batches++ }
