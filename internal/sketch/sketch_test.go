package sketch

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCheckQuantile(t *testing.T) {
	for _, q := range []float64{1e-9, 0.5, 1} {
		if err := CheckQuantile(q); err != nil {
			t.Errorf("CheckQuantile(%v) = %v", q, err)
		}
	}
	for _, q := range []float64{0, -0.5, 1.0001, math.NaN(), math.Inf(1)} {
		if err := CheckQuantile(q); err == nil {
			t.Errorf("CheckQuantile(%v) should fail", q)
		}
	}
}

func TestWriterReaderRoundTrip(t *testing.T) {
	w := NewWriter(64)
	w.Header(TagKLL)
	w.Byte(0xAB)
	w.U32(12345)
	w.U64(1 << 60)
	w.I64(-42)
	w.F64(math.Pi)
	w.F64s([]float64{1.5, -2.5, math.Inf(1)})
	w.I64s([]int64{-1, 0, 1})

	r := NewReader(w.Bytes())
	if err := r.Header(TagKLL); err != nil {
		t.Fatal(err)
	}
	if r.Byte() != 0xAB {
		t.Error("byte mismatch")
	}
	if r.U32() != 12345 {
		t.Error("u32 mismatch")
	}
	if r.U64() != 1<<60 {
		t.Error("u64 mismatch")
	}
	if r.I64() != -42 {
		t.Error("i64 mismatch")
	}
	if r.F64() != math.Pi {
		t.Error("f64 mismatch")
	}
	fs := r.F64s()
	if len(fs) != 3 || fs[0] != 1.5 || fs[1] != -2.5 || !math.IsInf(fs[2], 1) {
		t.Errorf("f64s = %v", fs)
	}
	is := r.I64s()
	if len(is) != 3 || is[0] != -1 || is[2] != 1 {
		t.Errorf("i64s = %v", is)
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	if r.Remaining() != 0 {
		t.Errorf("remaining = %d", r.Remaining())
	}
}

func TestReaderUnderflow(t *testing.T) {
	r := NewReader([]byte{1, 2})
	_ = r.U64()
	if r.Err() == nil {
		t.Error("underflow should set Err")
	}
	// Subsequent reads stay failed and return zero values.
	if r.F64() != 0 || r.Err() == nil {
		t.Error("failed reader should stay failed")
	}
}

func TestReaderWrongHeader(t *testing.T) {
	w := NewWriter(8)
	w.Header(TagKLL)
	r := NewReader(w.Bytes())
	if err := r.Header(TagMoments); err == nil {
		t.Error("wrong tag should fail")
	}
	// Wrong version.
	blob := append([]byte(nil), w.Bytes()...)
	blob[1] = 0xFF
	r = NewReader(blob)
	if err := r.Header(TagKLL); err == nil {
		t.Error("wrong version should fail")
	}
}

func TestSliceLengthLying(t *testing.T) {
	// A length prefix larger than the remaining bytes must be rejected,
	// not cause a huge allocation.
	w := NewWriter(8)
	w.U32(1 << 30)
	r := NewReader(w.Bytes())
	if vs := r.F64s(); vs != nil || r.Err() == nil {
		t.Error("lying length prefix should fail")
	}
	r2 := NewReader(w.Bytes())
	if vs := r2.I64s(); vs != nil || r2.Err() == nil {
		t.Error("lying length prefix should fail for I64s")
	}
}

// Property: arbitrary f64 slices round-trip exactly.
func TestQuickF64sRoundTrip(t *testing.T) {
	f := func(vals []float64) bool {
		w := NewWriter(8 * len(vals))
		w.F64s(vals)
		r := NewReader(w.Bytes())
		got := r.F64s()
		if r.Err() != nil || len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if math.Float64bits(got[i]) != math.Float64bits(vals[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuantilesHelper(t *testing.T) {
	// A stub sketch to exercise the helpers without a real implementation.
	s := &stubSketch{}
	for i := 0; i < 10; i++ {
		s.Insert(float64(i))
	}
	vs, err := Quantiles(s, []float64{0.5, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 2 {
		t.Fatalf("got %d values", len(vs))
	}
	if _, err := Quantiles(s, []float64{2}); err == nil {
		t.Error("invalid quantile should fail")
	}
	InsertAll(s, []float64{1, 2, 3})
	if s.Count() != 13 {
		t.Errorf("count = %d", s.Count())
	}
}

// stubSketch is a minimal Sketch used to test the package helpers.
type stubSketch struct {
	vals []float64
}

func (s *stubSketch) Insert(x float64) { s.vals = append(s.vals, x) }
func (s *stubSketch) Quantile(q float64) (float64, error) {
	if err := CheckQuantile(q); err != nil {
		return 0, err
	}
	if len(s.vals) == 0 {
		return 0, ErrEmpty
	}
	return s.vals[0], nil
}
func (s *stubSketch) Rank(float64) (float64, error) { return 0, nil }
func (s *stubSketch) Merge(Sketch) error            { return nil }
func (s *stubSketch) Count() uint64                 { return uint64(len(s.vals)) }
func (s *stubSketch) MemoryBytes() int              { return 8 * len(s.vals) }
func (s *stubSketch) Name() string                  { return "stub" }
func (s *stubSketch) Reset()                        { s.vals = nil }
func (s *stubSketch) MarshalBinary() ([]byte, error) {
	return nil, nil
}
func (s *stubSketch) UnmarshalBinary([]byte) error { return nil }
