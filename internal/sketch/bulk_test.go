package sketch_test

import (
	"math"
	"testing"

	"repro/internal/ddsketch"
	"repro/internal/hdr"
	"repro/internal/kll"
	"repro/internal/moments"
	"repro/internal/sketch"
	"repro/internal/tdigest"
	"repro/internal/uddsketch"
)

// bulkSketches lists every BulkInserter implementation.
func bulkSketches(t *testing.T) map[string]func() sketch.Sketch {
	t.Helper()
	return map[string]func() sketch.Sketch{
		"ddsketch": func() sketch.Sketch { return ddsketch.New(0.01) },
		"uddsketch": func() sketch.Sketch {
			s, err := uddsketch.NewChecked(0.01, 1024)
			if err != nil {
				t.Fatal(err)
			}
			return s
		},
		"moments": func() sketch.Sketch { return moments.New(10) },
		"hdr": func() sketch.Sketch {
			h, err := hdr.New(1, 1_000_000, 3)
			if err != nil {
				t.Fatal(err)
			}
			return h
		},
		"tdigest": func() sketch.Sketch { return tdigest.New(100) },
	}
}

// InsertN(x, n) must be equivalent to n Insert(x) calls.
func TestBulkInsertEquivalence(t *testing.T) {
	values := []struct {
		x float64
		n uint64
	}{{10, 1000}, {42.5, 500}, {999, 2500}, {3.3, 1}, {77, 7}}
	for name, mk := range bulkSketches(t) {
		t.Run(name, func(t *testing.T) {
			bulk, loop := mk(), mk()
			bi, ok := bulk.(sketch.BulkInserter)
			if !ok {
				t.Fatalf("%s does not implement BulkInserter", name)
			}
			var total uint64
			for _, v := range values {
				bi.InsertN(v.x, v.n)
				for i := uint64(0); i < v.n; i++ {
					loop.Insert(v.x)
				}
				total += v.n
			}
			if bulk.Count() != total || loop.Count() != total {
				t.Fatalf("counts: bulk %d loop %d want %d", bulk.Count(), loop.Count(), total)
			}
			switch name {
			case "moments":
				// Five point masses are infeasible for the max-entropy
				// solver (the paper's minimum-cardinality caveat), so
				// compare the accumulated power sums instead of queries;
				// they differ only by summation rounding.
				ps1 := bulk.(*moments.Sketch).PowerSums()
				ps2 := loop.(*moments.Sketch).PowerSums()
				for i := range ps1 {
					if math.Abs(ps1[i]-ps2[i]) > 1e-9*(1+math.Abs(ps2[i])) {
						t.Errorf("power sum %d: bulk %v vs loop %v", i, ps1[i], ps2[i])
					}
				}
			case "tdigest":
				// t-digest clusters weighted points differently from
				// interleaved singleton inserts (it has no per-quantile
				// guarantee to preserve); assert the structural
				// invariants instead: count, range, monotonicity.
				prevB, prevL := math.Inf(-1), math.Inf(-1)
				for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
					a, err1 := bulk.Quantile(q)
					b, err2 := loop.Quantile(q)
					if err1 != nil || err2 != nil {
						t.Fatalf("q=%v: %v / %v", q, err1, err2)
					}
					if a < prevB || b < prevL {
						t.Errorf("q=%v: non-monotone estimates", q)
					}
					prevB, prevL = a, b
					if a < 3.3 || a > 999 {
						t.Errorf("q=%v: bulk estimate %v outside data range", q, a)
					}
				}
			default:
				for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
					a, err1 := bulk.Quantile(q)
					b, err2 := loop.Quantile(q)
					if err1 != nil || err2 != nil {
						t.Fatalf("q=%v: %v / %v", q, err1, err2)
					}
					if a != b {
						t.Errorf("q=%v: bulk %v vs loop %v", q, a, b)
					}
				}
			}
		})
	}
}

// InsertN with n=0 or NaN must be a no-op.
func TestBulkInsertNoOps(t *testing.T) {
	for name, mk := range bulkSketches(t) {
		sk := mk()
		bi := sk.(sketch.BulkInserter)
		bi.InsertN(5, 0)
		bi.InsertN(math.NaN(), 10)
		if sk.Count() != 0 {
			t.Errorf("%s: count %d after no-op inserts", name, sk.Count())
		}
	}
}

// InsertRepeated falls back to a loop for sampling sketches.
func TestInsertRepeatedFallback(t *testing.T) {
	s := kll.New(64)
	sketch.InsertRepeated(s, 7, 1000)
	if s.Count() != 1000 {
		t.Fatalf("count = %d", s.Count())
	}
	v, err := s.Quantile(0.5)
	if err != nil || v != 7 {
		t.Errorf("median = %v, %v", v, err)
	}
	// And uses the fast path for bulk sketches.
	d := ddsketch.New(0.01)
	sketch.InsertRepeated(d, 7, 1000)
	if d.Count() != 1000 {
		t.Fatalf("dd count = %d", d.Count())
	}
}
