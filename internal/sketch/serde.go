package sketch

import (
	"encoding/binary"
	"math"
)

// The sketches in this repository share a tiny hand-rolled binary codec:
// little-endian fixed-width integers and IEEE-754 doubles, preceded by a
// one-byte type tag and a format version so corrupt or mismatched blobs
// fail fast instead of decoding garbage.

// Type tags used as the first byte of every serialized sketch.
const (
	TagKLL       byte = 0x01
	TagMoments   byte = 0x02
	TagDDSketch  byte = 0x03
	TagUDDSketch byte = 0x04
	TagReq       byte = 0x05
	TagTDigest   byte = 0x06
	TagGK        byte = 0x07
)

// SerdeVersion is bumped whenever any sketch's wire layout changes.
// Version 2 added the exact RNG state of the randomized sketches
// (KLL/REQ/MRL) so a decoded sketch continues bit-identically to the
// original — the property checkpoint/restore recovery is built on.
const SerdeVersion byte = 2

// Writer appends primitive values to a byte buffer in the shared codec.
type Writer struct {
	buf []byte
}

// NewWriter returns a Writer with capacity preallocated for n bytes.
func NewWriter(n int) *Writer {
	return &Writer{buf: make([]byte, 0, n)}
}

// Bytes returns the accumulated encoding.
func (w *Writer) Bytes() []byte { return w.buf }

// Byte appends a single byte.
func (w *Writer) Byte(b byte) { w.buf = append(w.buf, b) }

// U32 appends a little-endian uint32.
func (w *Writer) U32(v uint32) {
	w.buf = binary.LittleEndian.AppendUint32(w.buf, v)
}

// U64 appends a little-endian uint64.
func (w *Writer) U64(v uint64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, v)
}

// I64 appends a little-endian int64.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// F64 appends an IEEE-754 double.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// F64s appends a length-prefixed slice of doubles.
func (w *Writer) F64s(vs []float64) {
	w.U32(uint32(len(vs)))
	for _, v := range vs {
		w.F64(v)
	}
}

// I64s appends a length-prefixed slice of int64s.
func (w *Writer) I64s(vs []int64) {
	w.U32(uint32(len(vs)))
	for _, v := range vs {
		w.I64(v)
	}
}

// Blob appends a length-prefixed opaque byte slice.
func (w *Writer) Blob(b []byte) {
	w.U32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}

// Header writes the standard (tag, version) prefix.
func (w *Writer) Header(tag byte) {
	w.Byte(tag)
	w.Byte(SerdeVersion)
}

// Reader consumes primitive values from a byte buffer. All methods return
// ErrCorrupt (wrapped in the bool/ok protocol below) on underflow: callers
// check Err once at the end.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader wraps data for decoding.
func NewReader(data []byte) *Reader { return &Reader{buf: data} }

// Err reports the first underflow encountered, if any.
func (r *Reader) Err() error { return r.err }

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.buf) {
		r.err = ErrCorrupt
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// Byte reads a single byte.
func (r *Reader) Byte() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads a little-endian int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// F64 reads an IEEE-754 double.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// F64s reads a length-prefixed slice of doubles.
func (r *Reader) F64s() []float64 {
	n := int(r.U32())
	if r.err != nil || n < 0 || n > (len(r.buf)-r.off)/8 {
		if r.err == nil {
			r.err = ErrCorrupt
		}
		return nil
	}
	vs := make([]float64, n)
	for i := range vs {
		vs[i] = r.F64()
	}
	return vs
}

// I64s reads a length-prefixed slice of int64s.
func (r *Reader) I64s() []int64 {
	n := int(r.U32())
	if r.err != nil || n < 0 || n > (len(r.buf)-r.off)/8 {
		if r.err == nil {
			r.err = ErrCorrupt
		}
		return nil
	}
	vs := make([]int64, n)
	for i := range vs {
		vs[i] = r.I64()
	}
	return vs
}

// Blob reads a length-prefixed opaque byte slice (a copy, never an
// alias of the input buffer).
func (r *Reader) Blob() []byte {
	n := int(r.U32())
	if r.err != nil || n < 0 || n > len(r.buf)-r.off {
		if r.err == nil {
			r.err = ErrCorrupt
		}
		return nil
	}
	b := make([]byte, n)
	copy(b, r.take(n))
	return b
}

// Header consumes and validates the (tag, version) prefix.
func (r *Reader) Header(wantTag byte) error {
	tag := r.Byte()
	ver := r.Byte()
	if r.err != nil {
		return r.err
	}
	if tag != wantTag || ver != SerdeVersion {
		return ErrCorrupt
	}
	return nil
}

// Remaining reports how many undecoded bytes are left; decoders use it to
// reject trailing garbage.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }
