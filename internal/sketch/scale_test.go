package sketch_test

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/ddsketch"
	"repro/internal/kll"
	"repro/internal/moments"
	"repro/internal/req"
	"repro/internal/sketch"
	"repro/internal/uddsketch"
)

// scalers builds one loaded instance of every CountScaler
// implementation (all five study sketches), each fed the same
// deterministic positive stream. Seeded builders keep the KLL/REQ coin
// flips reproducible so byte comparisons are meaningful.
func scalers(t *testing.T, n int) map[string]func() sketch.Sketch {
	t.Helper()
	builders := map[string]func() sketch.Sketch{
		"kll": func() sketch.Sketch { return kll.NewWithSeed(128, 7) },
		"req": func() sketch.Sketch { return req.NewWithSeed(30, true, 7) },
		"ddsketch": func() sketch.Sketch {
			return ddsketch.New(0.01)
		},
		"uddsketch": func() sketch.Sketch {
			s, err := uddsketch.NewWithBudget(0.01, 1024, 12)
			if err != nil {
				t.Fatal(err)
			}
			return s
		},
		"moments": func() sketch.Sketch { return moments.New(8) },
	}
	out := make(map[string]func() sketch.Sketch, len(builders))
	for name, b := range builders {
		build := b
		out[name] = func() sketch.Sketch {
			s := build()
			x := 1.0
			for i := 0; i < n; i++ {
				s.Insert(x)
				x = math.Mod(x*1.37+0.11, 1000) + 1
			}
			return s
		}
	}
	return out
}

// marshalSk serializes a sketch for byte comparison.
func marshalSk(t *testing.T, s sketch.Sketch) []byte {
	t.Helper()
	blob, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// TestScaleCountContract pins the shared CountScaler clamp contract on
// every implementation: g ≥ 1 and NaN are no-ops (decay weights only
// shrink), g ≤ 0 empties the sketch, and a genuine down-weight shrinks
// the count without corrupting the summary.
func TestScaleCountContract(t *testing.T) {
	for name, mk := range scalers(t, 5000) {
		t.Run(name, func(t *testing.T) {
			for _, g := range []float64{1, 1.5, math.NaN()} {
				s := mk()
				before := marshalSk(t, s)
				s.(sketch.CountScaler).ScaleCount(g)
				if !bytes.Equal(marshalSk(t, s), before) {
					t.Errorf("ScaleCount(%v) mutated the sketch, want no-op", g)
				}
			}
			for _, g := range []float64{0, -0.5} {
				s := mk()
				s.(sketch.CountScaler).ScaleCount(g)
				if c := s.Count(); c != 0 {
					t.Errorf("ScaleCount(%v) left count %d, want empty", g, c)
				}
			}
			s := mk()
			orig := s.Count()
			s.(sketch.CountScaler).ScaleCount(0.5)
			c := s.Count()
			if c == 0 || c >= orig {
				t.Fatalf("ScaleCount(0.5): count %d, want in (0, %d)", c, orig)
			}
			// Rounding slack: KLL/REQ re-place per level, the bucketed
			// sketches round per bucket, moments is exact.
			if lo, hi := orig/4, 3*orig/4; c < lo || c > hi {
				t.Errorf("ScaleCount(0.5): count %d outside the plausible band [%d, %d]", c, lo, hi)
			}
			// The summary stays queryable and inside the data range.
			med, err := s.Quantile(0.5)
			if err != nil {
				t.Fatalf("quantile after scale: %v", err)
			}
			if math.IsNaN(med) || med < 1 || med > 1001 {
				t.Errorf("median %v after scale outside the data range", med)
			}
		})
	}
}

// TestScaleCountDeterministic: scaling is a pure function of the prior
// state and g — two identical sketches scale to byte-identical states,
// an engine requirement (pane decay must replay bit-identically across
// crash recovery).
func TestScaleCountDeterministic(t *testing.T) {
	for name, mk := range scalers(t, 3000) {
		t.Run(name, func(t *testing.T) {
			a, b := mk(), mk()
			if !bytes.Equal(marshalSk(t, a), marshalSk(t, b)) {
				t.Fatal("identically built sketches differ before scaling")
			}
			for _, g := range []float64{0.8, 0.3, 0.05} {
				a.(sketch.CountScaler).ScaleCount(g)
				b.(sketch.CountScaler).ScaleCount(g)
				if !bytes.Equal(marshalSk(t, a), marshalSk(t, b)) {
					t.Fatalf("ScaleCount(%v) diverged across identical sketches", g)
				}
			}
		})
	}
}

// TestScaleCountMomentsExact: the Moments sketch is linear in the
// input multiset, so scaling is exact — the count scales to precisely
// round(g·n) with no structural loss, and repeated scaling composes
// multiplicatively.
func TestScaleCountMomentsExact(t *testing.T) {
	s := moments.New(8)
	for i := 1; i <= 1000; i++ {
		s.Insert(float64(i))
	}
	s.ScaleCount(0.5)
	if c := s.Count(); c != 500 {
		t.Fatalf("count %d after ScaleCount(0.5), want 500", c)
	}
	s.ScaleCount(0.5)
	if c := s.Count(); c != 250 {
		t.Fatalf("count %d after second ScaleCount(0.5), want 250", c)
	}
}
