// Package sketch defines the common interface implemented by every
// quantile sketch in this repository, together with shared error values
// and small helpers used by more than one implementation.
//
// The interface mirrors the operations the EDBT 2023 study measures:
// Insert (stream consumption), Quantile and Rank (queries), Merge
// (distributed aggregation), and MemoryBytes (the structural space
// accounting of the paper's Table 3).
package sketch

import (
	"encoding"
	"errors"
	"fmt"
)

// Common errors returned by sketch operations.
var (
	// ErrEmpty is returned when querying a sketch that has consumed no data.
	ErrEmpty = errors.New("sketch: empty sketch")
	// ErrInvalidQuantile is returned when q is outside (0, 1].
	ErrInvalidQuantile = errors.New("sketch: quantile must be in (0, 1]")
	// ErrIncompatible is returned when merging sketches whose types or
	// parameters do not permit a lossless merge.
	ErrIncompatible = errors.New("sketch: incompatible sketches")
	// ErrUnsupportedValue is returned when a sketch cannot represent an
	// inserted value (for example NaN, or a non-positive value in a
	// log-mapped sketch configured for positive data only).
	ErrUnsupportedValue = errors.New("sketch: unsupported value")
	// ErrCorrupt is returned when deserializing malformed bytes.
	ErrCorrupt = errors.New("sketch: corrupt serialized data")
	// ErrNotDegradable is returned by Degrade when a sketch cannot shrink
	// any further: either its accuracy knob is already at the floor, or
	// the structure is fixed-size by construction (moments).
	ErrNotDegradable = errors.New("sketch: not degradable")
)

// Sketch is the uniform interface over all quantile sketches evaluated in
// the study. Implementations are single-writer: callers must provide
// external synchronization to share one sketch across goroutines.
type Sketch interface {
	// Insert adds one observation to the sketch.
	Insert(x float64)

	// Quantile returns an estimate of the q-quantile of the inserted data
	// for q in (0, 1]. It returns ErrEmpty if nothing was inserted and
	// ErrInvalidQuantile for out-of-range q.
	Quantile(q float64) (float64, error)

	// Rank returns an estimate of the fraction of inserted values that are
	// less than or equal to x. It returns ErrEmpty on an empty sketch.
	Rank(x float64) (float64, error)

	// Merge folds other into the receiver so that the receiver summarizes
	// the union of both input streams. Implementations return
	// ErrIncompatible when other has a different concrete type or
	// incompatible parameters. other is not modified.
	Merge(other Sketch) error

	// Count reports the number of values inserted (including via merges).
	Count() uint64

	// MemoryBytes reports the structural size of the sketch: the number of
	// numbers (counters, samples, moments) retained, at 8 bytes each, plus
	// fixed per-structure overhead. It deliberately measures what the
	// paper's Table 3 measures rather than process RSS.
	MemoryBytes() int

	// Name returns a short stable identifier ("kll", "ddsketch", ...).
	Name() string

	// Reset restores the sketch to its freshly-constructed state,
	// preserving configuration parameters.
	Reset()

	encoding.BinaryMarshaler
	encoding.BinaryUnmarshaler
}

// Quantiler is the read-only query surface of a sketch: everything a
// consumer needs to answer quantile and rank questions, without the
// mutating half of the Sketch interface. Every Sketch is a Quantiler.
// The concurrent layer (internal/concurrent) hands out epoch-stamped
// snapshots as Quantilers so readers cannot accidentally mutate shared
// state.
type Quantiler interface {
	// Quantile returns an estimate of the q-quantile for q in (0, 1].
	Quantile(q float64) (float64, error)
	// Rank returns an estimate of the fraction of values ≤ x.
	Rank(x float64) (float64, error)
	// Count reports the number of values summarized.
	Count() uint64
}

// CheckQuantile validates q, returning ErrInvalidQuantile when q lies
// outside (0, 1]. Shared by all implementations so the boundary behaviour
// is identical across sketches.
func CheckQuantile(q float64) error {
	if !(q > 0 && q <= 1) {
		return fmt.Errorf("%w: got %v", ErrInvalidQuantile, q)
	}
	return nil
}

// Builder constructs a fresh sketch with fixed configuration. The harness
// uses builders so every window/run starts from an identically configured
// empty sketch.
type Builder func() Sketch

// Quantiles evaluates s at each q in qs, returning estimates in the same
// order. It stops at the first error. Sketches implementing
// MultiQuantiler answer the whole batch through their native kernel;
// everything else falls back to one Quantile call per q. It accepts any
// Quantiler (full sketches and read-only concurrent snapshots alike).
func Quantiles(s Quantiler, qs []float64) ([]float64, error) {
	if m, ok := s.(MultiQuantiler); ok {
		return m.QuantileAll(qs)
	}
	out := make([]float64, len(qs))
	for i, q := range qs {
		v, err := s.Quantile(q)
		if err != nil {
			return nil, fmt.Errorf("quantile %v: %w", q, err)
		}
		out[i] = v
	}
	return out, nil
}

// MultiQuantiler is implemented by sketches with a native batched query
// kernel that answers a whole quantile set in one pass: a single CDF
// snapshot / store scan / maxent solve is shared across all targets
// instead of being redone per quantile.
//
// Contract: QuantileAll(qs) must be indistinguishable from calling
// Quantile(q) for each q in order — bitwise-identical estimates, and on
// failure the same first error (wrapped with its offending quantile,
// exactly as the Quantiles fallback loop wraps it). Only invisible
// scratch state (cached sorted views, solver warm starts, spare slice
// capacity) may differ afterwards. TestQuantileAllEquivalence enforces
// this for every implementation.
type MultiQuantiler interface {
	// QuantileAll returns the estimates for every q of qs in order,
	// equivalent to querying them one at a time.
	QuantileAll(qs []float64) ([]float64, error)
}

// ValidateQuantiles reproduces the error behaviour of a per-q scalar
// query loop for a batched kernel: each q is validated in slice order,
// and an empty sketch fails at the first (valid) q. The returned error
// is wrapped exactly like the Quantiles fallback wraps it, so callers
// cannot distinguish the native path from the loop.
func ValidateQuantiles(qs []float64, empty bool) error {
	for _, q := range qs {
		if err := CheckQuantile(q); err != nil {
			return fmt.Errorf("quantile %v: %w", q, err)
		}
		if empty {
			return fmt.Errorf("quantile %v: %w", q, ErrEmpty)
		}
	}
	return nil
}

// InsertAll inserts every value of xs into s, using the sketch's native
// batch kernel when it implements BatchInserter.
func InsertAll(s Sketch, xs []float64) {
	if b, ok := s.(BatchInserter); ok {
		b.InsertBatch(xs)
		return
	}
	for _, x := range xs {
		s.Insert(x)
	}
}

// BatchInserter is implemented by sketches with a native batched insert
// kernel that amortizes per-element interface-call, bookkeeping and
// bounds-check overhead across a slice of observations.
//
// Contract: InsertBatch(xs) must be indistinguishable from calling
// Insert(x) for each x in order — identical serialized form, count,
// retained samples and query answers, which requires the same
// compaction/collapse trigger points, the same floating-point
// accumulation order, and the same treatment of NaN and unrepresentable
// values. Only invisible scratch state (e.g. a backing array's spare
// capacity) may differ. The stream engine's parallel path relies on
// this equivalence to stay bit-deterministic at any worker count
// (internal/stream), and TestInsertBatchEquivalence enforces it for
// every implementation.
type BatchInserter interface {
	// InsertBatch adds every value of xs, equivalent to inserting them
	// one at a time in order.
	InsertBatch(xs []float64)
}

// CountScaler is implemented by sketches that can rescale their total
// weight by a factor g in [0, 1] — the primitive behind exponential
// time decay, where a window merge down-weights older panes by
// exp(-λ·age) before folding them in (internal/stream).
//
// Contract: after ScaleCount(g) the sketch summarizes approximately the
// same distribution with Count() ≈ g·oldCount, all structural
// invariants intact, and the result is a pure function of the prior
// state and g (no randomness, no iteration-order dependence), so that
// decayed engine runs stay bit-deterministic. g values outside (0, 1)
// are clamped: g ≥ 1 or NaN is a no-op, g ≤ 0 resets the sketch. The
// exact mechanism is per-sketch (sample re-placement for samplers,
// rounded bucket scaling for histograms, exact moment scaling) and
// documented on each implementation.
type CountScaler interface {
	// ScaleCount multiplies the sketch's effective weight by g.
	ScaleCount(g float64)
}

// Footprinter is implemented by sketches that can report their live
// memory footprint — the bytes actually held right now, including
// allocated-but-unused buffer capacity and reusable scratch — as
// opposed to MemoryBytes, which reports the paper's structural Table 3
// accounting. The memory-budget governor (internal/budget) charges
// sketches by Footprint when available and falls back to MemoryBytes;
// use FootprintOf for that dispatch.
type Footprinter interface {
	// Footprint reports the sketch's current live size in bytes.
	Footprint() int
}

// FootprintOf charges s by its live footprint when it reports one and
// by its structural MemoryBytes otherwise.
func FootprintOf(s Sketch) int {
	if f, ok := s.(Footprinter); ok {
		return f.Footprint()
	}
	return s.MemoryBytes()
}

// Degrader is implemented by sketches that can trade accuracy for
// memory on demand — the per-sketch knob behind the memory-budget
// governor's degradation ladder (internal/budget). Each call performs
// one degradation step: KLL and REQ force-compact to a smaller k,
// DDSketch collapses the lowest-value region of its store, UDDSketch
// runs one extra uniform collapse (α-deterioration, Epicoco et al.),
// and moments — fixed-size by construction — always refuses.
//
// Contract: Degrade either strictly shrinks the sketch and returns the
// bytes freed (freedBytes ≥ 0 as measured by FootprintOf before/after),
// or returns ErrNotDegradable leaving the sketch untouched. Count() is
// conserved exactly, every structural invariant holds afterwards, and
// the result remains mergeable with undegraded sketches of the same
// configuration family (documented per implementation). The step is a
// pure function of the prior state, so budgeted engine runs stay
// deterministic.
type Degrader interface {
	// Degrade performs one accuracy-for-memory degradation step.
	Degrade() (freedBytes int, err error)
}

// AccuracyBounder is implemented by sketches that can report their
// current error guarantee as a single dimensionless number: relative
// value error α for the histogram sketches, an empirical normalized
// rank-error scale for the samplers. The bound grows monotonically as
// the sketch degrades, which is what the stream engine surfaces on
// each WindowResult so consumers can see exactly how much accuracy a
// budget-constrained window gave up.
type AccuracyBounder interface {
	// AccuracyBound reports the sketch's current error bound.
	AccuracyBound() float64
}

// BulkInserter is implemented by sketches that can absorb n identical
// observations in O(1) — the histogram and moment sketches. Sampling
// sketches (KLL, REQ) cannot, since their guarantees depend on seeing
// items individually; use a loop there.
type BulkInserter interface {
	// InsertN adds n occurrences of x.
	InsertN(x float64, n uint64)
}

// InsertRepeated adds n occurrences of x to any sketch, using the O(1)
// path when the sketch supports it.
func InsertRepeated(s Sketch, x float64, n uint64) {
	if b, ok := s.(BulkInserter); ok {
		b.InsertN(x, n)
		return
	}
	for i := uint64(0); i < n; i++ {
		s.Insert(x)
	}
}
