package concurrent

import "testing"

// TestInsertAllocsHandoffFree pins the //sketch:hotpath contract on
// Writer.Insert: a handoff-free insert is an append into a
// preallocated buffer and must allocate nothing. The buffer is sized
// far beyond the measured window so no flush fires mid-measurement.
func TestInsertAllocsHandoffFree(t *testing.T) {
	for name, w := range map[string]*Writer{
		"kll": NewKLL(200, 1, 1<<20).Writer(0),
		"ddsketch": func() *Writer {
			s, err := NewDDSketch(0.01, 1, 1<<20)
			if err != nil {
				t.Fatal(err)
			}
			return s.Writer(0)
		}(),
	} {
		t.Run(name, func(t *testing.T) {
			x := 1.0
			if avg := testing.AllocsPerRun(10000, func() {
				w.Insert(x)
				x += 1.0
			}); avg != 0 {
				t.Errorf("handoff-free Insert allocates %.2f per call, want 0", avg)
			}
		})
	}
}

// TestDDSketchSustainedInsertAllocs pins the stronger DDSketch
// property: once the touched counter pages are installed, even the
// handoff itself is allocation-free (atomic adds into preallocated
// pages — no copy-on-write clone as in KLL). Small buffer so the
// measured window crosses many handoffs.
func TestDDSketchSustainedInsertAllocs(t *testing.T) {
	s, err := NewDDSketch(0.01, 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	w := s.Writer(0)
	for i := 0; i < 10000; i++ {
		w.Insert(1 + float64(i%1000)) // warm: install the pages this range touches
	}
	i := 0
	if avg := testing.AllocsPerRun(10000, func() {
		w.Insert(1 + float64(i%1000))
		i++
	}); avg != 0 {
		t.Errorf("sustained Insert (with handoffs) allocates %.2f per call, want 0", avg)
	}
}
