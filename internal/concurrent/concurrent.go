// Package concurrent is the shared-sketch ingestion layer: many writer
// goroutines feed one logical sketch while readers take consistent
// point-in-time snapshots, without a lock on the insert hot path.
//
// The architecture follows Rinberg et al. ("Fast Concurrent Data
// Sketches", PPoPP 2020) and Quancurrent: each writer owns a local
// buffer of capacity B and appends to it with zero shared-state
// touches; when the buffer fills, the whole batch is propagated into
// the shared sketch in one handoff (an epoch-advancing CAS publication
// for KLL, atomic bin-counter additions for DDSketch). Readers call
// Snapshot and get an epoch-stamped sketch.Quantiler that is immutable
// and private to them.
//
// The price of lock-freedom is relaxed semantics with a provable bound:
// a snapshot taken while writers are active reflects every handoff that
// completed before the snapshot and may miss values still sitting in
// writer-local buffers — at most B per writer, so at most
// NumWriters × BufferSize values in total (MaxRelaxation). After every
// writer flushes and quiesces, snapshots are exact. The relaxation
// property test in this package and the derivation in DESIGN.md §14
// pin this bound.
//
// Writer handles are single-goroutine: each of the NumWriters handles
// must be used by at most one goroutine at a time (ownership may move
// between goroutines only across a happens-before edge). Any number of
// goroutines may call Snapshot, Epoch and Count concurrently with the
// writers.
package concurrent

import (
	"math"

	"repro/internal/sketch"
)

// DefaultBufferSize is the per-writer buffer capacity used when callers
// pass bufSize <= 0: large enough to amortize handoff cost (a KLL
// handoff clones ~3k float32 samples), small enough that the relaxation
// bound NumWriters × B stays a negligible fraction of any realistic
// stream.
const DefaultBufferSize = 1024

// Shared is a sketch ingested by NumWriters concurrent writers and
// readable at any time through relaxed snapshots.
type Shared interface {
	// Writer returns handle i in [0, NumWriters). Each handle is
	// single-goroutine; distinct handles may be used concurrently.
	Writer(i int) *Writer
	// NumWriters reports the number of writer handles.
	NumWriters() int
	// BufferSize reports the per-writer buffer capacity B.
	BufferSize() int
	// Snapshot returns an epoch-stamped, immutable point-in-time view
	// (concretely a *Snapshot). It may trail the writers by at most
	// MaxRelaxation unpropagated values and is exact at quiescence
	// after Flush.
	Snapshot() sketch.Quantiler
	// Epoch reports the number of completed handoffs — it increases
	// monotonically, and a snapshot's Epoch tells a reader how fresh
	// its view is.
	Epoch() uint64
	// Count reports the number of values propagated into the shared
	// sketch so far (excluding values still in writer buffers).
	Count() uint64
	// MaxRelaxation reports the worst-case number of inserted values a
	// snapshot may be missing while writers are active:
	// NumWriters × BufferSize.
	MaxRelaxation() uint64
	// Flush propagates every writer's buffered values. It touches all
	// writer buffers and is therefore only safe when no writer is
	// concurrently inserting (a quiescent point: end of stream, end of
	// test, checkpoint barrier).
	Flush()
	// Footprint estimates the shared sketch's resident heap bytes —
	// the published sketch state plus every writer's buffer capacity —
	// so a memory-budget governor can account for shared ingestion
	// alongside the per-window sketches. Safe to call concurrently with
	// writers; the estimate is a relaxed read like Snapshot.
	Footprint() int
}

// bufSink absorbs one writer's full buffer into the shared sketch.
type bufSink interface {
	flushBuffer(vals []float64)
}

// Writer is a single-goroutine ingestion handle: a local buffer plus
// the shared sketch it hands off to. The zero value is not usable;
// obtain handles from a Shared implementation.
type Writer struct {
	buf  []float64
	sink bufSink
}

func newWriter(sink bufSink, bufSize int) *Writer {
	return &Writer{buf: make([]float64, 0, bufSize), sink: sink}
}

// Insert adds one observation. NaN and ±Inf payloads are rejected
// before reaching the buffer (counted in ConcurrentMetrics.
// RejectedInput when metrics are wired), mirroring the stream engine's
// input validation: a buffered Inf would otherwise survive until the
// handoff and poison the shared sketch's summary. The hot path is a
// bounds-checked append into the writer-local buffer; the shared
// sketch is touched only on the handoff when the buffer fills (once
// per BufferSize inserts).
//
//sketch:hotpath
func (w *Writer) Insert(x float64) {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		recordRejected()
		return
	}
	w.buf = append(w.buf, x)
	if len(w.buf) == cap(w.buf) {
		w.sink.flushBuffer(w.buf)
		w.buf = w.buf[:0]
	}
}

// InsertBatch adds every value of xs, equivalent to inserting them one
// at a time in order.
func (w *Writer) InsertBatch(xs []float64) {
	for _, x := range xs {
		w.Insert(x)
	}
}

// Flush propagates the buffered values now instead of waiting for the
// buffer to fill. Call it when the owning goroutine finishes its input
// (stream end, worker shutdown) so the shared sketch converges to the
// exact serial state.
func (w *Writer) Flush() {
	if len(w.buf) > 0 {
		w.sink.flushBuffer(w.buf)
		w.buf = w.buf[:0]
	}
}

// Buffered reports the number of values currently held locally — this
// writer's contribution to the relaxation bound.
func (w *Writer) Buffered() int { return len(w.buf) }

// Snapshot is an epoch-stamped, immutable point-in-time view of a
// shared sketch. It embeds the query surface, so a *Snapshot is a
// sketch.Quantiler; Epoch orders it against other snapshots of the
// same shared sketch.
type Snapshot struct {
	sketch.Quantiler
	epoch uint64
}

// Epoch reports how many handoffs the view includes. Snapshots of the
// same shared sketch with equal epochs summarize identical data.
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// recordHandoff updates the package metrics for one buffer handoff.
func recordHandoff(values int) {
	if metrics != nil {
		metrics.Handoffs.Inc()
		metrics.HandoffValues.Add(int64(values))
	}
}

// recordSnapshot updates the package metrics for one snapshot read.
func recordSnapshot() {
	if metrics != nil {
		metrics.Snapshots.Inc()
	}
}

// recordCASRetry updates the package metrics for one lost CAS race.
func recordCASRetry() {
	if metrics != nil {
		metrics.CASRetries.Inc()
	}
}

// recordRejected updates the package metrics for one rejected payload.
func recordRejected() {
	if metrics != nil {
		metrics.RejectedInput.Inc()
	}
}
