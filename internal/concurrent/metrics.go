package concurrent

import "repro/internal/obs"

// metrics is the package's observability hook. nil (the default)
// disables recording; see internal/obs for the wiring contract.
var metrics *obs.ConcurrentMetrics

// SetMetrics installs the metrics set all shared sketches in this
// package record into. Call before any shared sketch is running;
// passing nil disables recording.
func SetMetrics(m *obs.ConcurrentMetrics) { metrics = m }
