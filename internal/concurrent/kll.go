package concurrent

import (
	"fmt"
	"sync/atomic"

	"repro/internal/kll"
	"repro/internal/sketch"
)

// kllState is one published version of the shared KLL sketch. The
// sketch behind sk is immutable from the moment the state is published:
// handoffs clone it before inserting, and snapshots clone it before
// querying (KLL queries build mutable sorted-view caches).
type kllState struct {
	epoch uint64
	sk    *kll.Sketch
}

// SharedKLL is a concurrent KLL sketch: per-writer buffers propagated
// by copy-on-write CAS publication. A handoff clones the current shared
// sketch, batch-inserts the writer's buffer into the clone (reusing the
// serial compaction kernel, so the published sketch is always a state
// some serial KLL could have reached), and compare-and-swaps the new
// version in; losing the race re-clones from the winner and retries.
// Readers never block writers and vice versa.
type SharedKLL struct {
	state   atomic.Pointer[kllState]
	writers []*Writer
	bufSize int
}

var _ Shared = (*SharedKLL)(nil)

// NewKLL returns a shared KLL sketch with max compactor size k (see
// kll.DefaultK), writers handles and per-writer buffer capacity
// bufSize (DefaultBufferSize when <= 0). It panics if k < 2 (as
// kll.New does) or writers < 1.
func NewKLL(k, writers, bufSize int) *SharedKLL {
	if writers < 1 {
		panic(fmt.Sprintf("concurrent: writers must be >= 1, got %d", writers))
	}
	if bufSize <= 0 {
		bufSize = DefaultBufferSize
	}
	s := &SharedKLL{bufSize: bufSize}
	s.state.Store(&kllState{epoch: 0, sk: kll.New(k)})
	s.writers = make([]*Writer, writers)
	for i := range s.writers {
		s.writers[i] = newWriter(s, bufSize)
	}
	return s
}

// Writer implements Shared.
func (s *SharedKLL) Writer(i int) *Writer { return s.writers[i] }

// NumWriters implements Shared.
func (s *SharedKLL) NumWriters() int { return len(s.writers) }

// BufferSize implements Shared.
func (s *SharedKLL) BufferSize() int { return s.bufSize }

// MaxRelaxation implements Shared.
func (s *SharedKLL) MaxRelaxation() uint64 {
	return uint64(len(s.writers)) * uint64(s.bufSize)
}

// flushBuffer implements bufSink: copy-on-write CAS publication of one
// writer's buffer.
func (s *SharedKLL) flushBuffer(vals []float64) {
	for {
		cur := s.state.Load()
		next := cur.sk.Clone()
		next.InsertBatch(vals)
		if s.state.CompareAndSwap(cur, &kllState{epoch: cur.epoch + 1, sk: next}) {
			break
		}
		recordCASRetry()
	}
	recordHandoff(len(vals))
}

// Snapshot implements Shared. The returned view is a private clone of
// the published sketch: KLL queries lazily build sorted-view caches,
// so handing out the shared instance itself would race reader against
// reader.
func (s *SharedKLL) Snapshot() sketch.Quantiler {
	st := s.state.Load()
	recordSnapshot()
	return &Snapshot{Quantiler: st.sk.Clone(), epoch: st.epoch}
}

// Epoch implements Shared.
func (s *SharedKLL) Epoch() uint64 { return s.state.Load().epoch }

// Count implements Shared.
func (s *SharedKLL) Count() uint64 { return s.state.Load().sk.Count() }

// Footprint implements Shared: the published sketch's footprint plus
// the writer buffers' full capacity (they fill and drain continuously,
// so capacity, not length, is the resident cost).
func (s *SharedKLL) Footprint() int {
	return s.state.Load().sk.Footprint() + len(s.writers)*s.bufSize*8
}

// Flush implements Shared. Quiescent-only: see the interface contract.
func (s *SharedKLL) Flush() {
	for _, w := range s.writers {
		w.Flush()
	}
}
