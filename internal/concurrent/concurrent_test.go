package concurrent

import (
	"math"
	"sort"
	"sync"
	"testing"

	"repro/internal/ddsketch"
	"repro/internal/kll"
	"repro/internal/sketch"
)

// testValues returns n deterministic pseudo-random positive values.
func testValues(n int) []float64 {
	xs := make([]float64, n)
	state := uint64(0x9e3779b97f4a7c15)
	for i := range xs {
		state = state*6364136223846793005 + 1442695040888963407
		xs[i] = 1 + float64(state>>11)/float64(1<<53)*999
	}
	return xs
}

// exactQuantile returns the ⌈q·n⌉-th order statistic of sorted xs, the
// same rank convention the sketches use.
func exactQuantile(sorted []float64, q float64) float64 {
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// TestSharedKLLSingleWriterMatchesSerial: with one writer, handoffs
// replay the stream in order through the serial batch kernel, so after
// Flush the shared sketch must be indistinguishable from a serial KLL
// fed the same stream — identical count and identical quantile
// estimates (same samples, same compaction coin flips).
func TestSharedKLLSingleWriterMatchesSerial(t *testing.T) {
	xs := testValues(20000)
	ref := kll.New(kll.DefaultK)
	for _, x := range xs {
		ref.Insert(x)
	}
	sh := NewKLL(kll.DefaultK, 1, 512)
	w := sh.Writer(0)
	for _, x := range xs {
		w.Insert(x)
	}
	sh.Flush()
	snap := sh.Snapshot()
	if snap.Count() != ref.Count() {
		t.Fatalf("count: shared %d, serial %d", snap.Count(), ref.Count())
	}
	for _, q := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		got, err := snap.Quantile(q)
		if err != nil {
			t.Fatalf("shared quantile(%v): %v", q, err)
		}
		want, err := ref.Quantile(q)
		if err != nil {
			t.Fatalf("serial quantile(%v): %v", q, err)
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("quantile(%v): shared %v, serial %v", q, got, want)
		}
	}
}

// TestSharedDDSketchMatchesSerialAfterFlush: DDSketch state is a bag
// of commuting counter increments, so after Flush a multi-writer
// shared sketch must answer bit-identically to a serial DDSketch fed
// the same multiset in any order.
func TestSharedDDSketchMatchesSerialAfterFlush(t *testing.T) {
	const alpha = 0.01
	xs := testValues(20000)
	// Mix in signs and zeros to cover all three routing arms.
	for i := range xs {
		switch i % 5 {
		case 3:
			xs[i] = -xs[i]
		case 4:
			xs[i] = 0
		}
	}
	ref := ddsketch.New(alpha)
	for _, x := range xs {
		ref.Insert(x)
	}
	sh, err := NewDDSketch(alpha, 4, 128)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range xs {
		sh.Writer(i % 4).Insert(x)
	}
	sh.Flush()
	snap := sh.Snapshot()
	if snap.Count() != ref.Count() {
		t.Fatalf("count: shared %d, serial %d", snap.Count(), ref.Count())
	}
	for _, q := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		got, err := snap.Quantile(q)
		if err != nil {
			t.Fatalf("shared quantile(%v): %v", q, err)
		}
		want, err := ref.Quantile(q)
		if err != nil {
			t.Fatalf("serial quantile(%v): %v", q, err)
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("quantile(%v): shared %v, serial %v", q, got, want)
		}
	}
	if r, err := snap.Rank(500); err != nil {
		t.Fatalf("rank: %v", err)
	} else if want, _ := ref.Rank(500); math.Float64bits(r) != math.Float64bits(want) {
		t.Errorf("rank(500): shared %v, serial %v", r, want)
	}
}

// TestDDSketchAggregatedFlushMatchesDirect: a buffer of aggMinBatch or
// more values takes the pre-aggregated handoff (one atomic add per
// distinct bucket), smaller buffers the direct per-value path. Both
// must produce the identical shared state, including when the data
// spans more than aggMaxUsed distinct buckets so the table spills.
func TestDDSketchAggregatedFlushMatchesDirect(t *testing.T) {
	const alpha = 0.01
	// Geometric sweep over ~18 decades plus signs and zeros: far more
	// than aggMaxUsed distinct buckets, forcing the spill arm.
	n := 4 * aggMinBatch
	xs := make([]float64, n)
	for i := range xs {
		x := math.Pow(10, -9+18*float64(i%aggMinBatch)/float64(aggMinBatch))
		switch i % 7 {
		case 5:
			x = -x
		case 6:
			x = 0
		}
		xs[i] = x
	}
	direct, err := NewDDSketch(alpha, 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := NewDDSketch(alpha, 1, aggMinBatch)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range xs {
		direct.Writer(0).Insert(x)
		agg.Writer(0).Insert(x)
	}
	direct.Flush()
	agg.Flush()
	ds, as := direct.Snapshot(), agg.Snapshot()
	if ds.Count() != as.Count() || as.Count() != uint64(n) {
		t.Fatalf("counts: direct %d, aggregated %d, want %d", ds.Count(), as.Count(), n)
	}
	for _, q := range []float64{0.001, 0.1, 0.5, 0.9, 0.999, 1} {
		want, err := ds.Quantile(q)
		if err != nil {
			t.Fatalf("direct quantile(%v): %v", q, err)
		}
		got, err := as.Quantile(q)
		if err != nil {
			t.Fatalf("aggregated quantile(%v): %v", q, err)
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("quantile(%v): aggregated %v, direct %v", q, got, want)
		}
	}
}

// TestRelaxationBound is the relaxation property test: while writers
// are mid-stream, every snapshot (a) reflects between inserted−W·B and
// inserted values, and (b) answers quantile queries within the
// sketch's own error budget of the exact quantile over the values it
// actually propagated — i.e. relaxation costs visibility of at most
// W·B items, never accuracy on the visible prefix.
func TestRelaxationBound(t *testing.T) {
	const (
		numWriters = 4
		bufSize    = 64
		n          = 10000
	)
	xs := testValues(n)
	for name, sh := range map[string]Shared{
		"kll": NewKLL(kll.DefaultK, numWriters, bufSize),
		"ddsketch": func() Shared {
			s, err := NewDDSketch(0.01, numWriters, bufSize)
			if err != nil {
				t.Fatal(err)
			}
			return s
		}(),
	} {
		t.Run(name, func(t *testing.T) {
			maxRelax := sh.MaxRelaxation()
			if maxRelax != numWriters*bufSize {
				t.Fatalf("MaxRelaxation = %d, want %d", maxRelax, numWriters*bufSize)
			}
			var propagated []float64 // multiset handed off so far, in checkable form
			pending := make([][]float64, numWriters)
			for i, x := range xs {
				w := i % numWriters
				sh.Writer(w).Insert(x)
				pending[w] = append(pending[w], x)
				if len(pending[w]) == bufSize {
					// The writer's buffer just flushed.
					propagated = append(propagated, pending[w]...)
					pending[w] = pending[w][:0]
				}
				if (i+1)%997 != 0 {
					continue
				}
				inserted := uint64(i + 1)
				snap := sh.Snapshot()
				c := snap.Count()
				if c != uint64(len(propagated)) {
					t.Fatalf("after %d inserts: snapshot count %d, propagated %d", inserted, c, len(propagated))
				}
				if c > inserted || c+maxRelax < inserted {
					t.Fatalf("after %d inserts: snapshot count %d outside [%d, %d]",
						inserted, c, inserted-min(inserted, maxRelax), inserted)
				}
				if c == 0 {
					continue
				}
				sorted := append([]float64(nil), propagated...)
				sort.Float64s(sorted)
				for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
					got, err := snap.Quantile(q)
					if err != nil {
						t.Fatalf("quantile(%v): %v", q, err)
					}
					exact := exactQuantile(sorted, q)
					switch name {
					case "ddsketch":
						// α-relative guarantee on the propagated multiset.
						if relErr := math.Abs(got-exact) / math.Abs(exact); relErr > 0.0101 {
							t.Errorf("after %d inserts, quantile(%v) = %v, exact %v, rel err %v > α",
								inserted, q, got, exact, relErr)
						}
					case "kll":
						// KLL's guarantee is on rank, not value: the
						// estimate's exact rank must be within εn of the
						// target (ε ≈ 1.7% at k=350 with generous slack
						// for this fixed seed).
						target := math.Ceil(q * float64(c))
						rank := float64(sort.SearchFloat64s(sorted, got) + 1)
						if math.Abs(rank-target) > 0.03*float64(c)+1 {
							t.Errorf("after %d inserts, quantile(%v) = %v has rank %v, target %v (n=%d)",
								inserted, q, got, rank, target, c)
						}
					}
				}
			}
			// At quiescence the relaxation collapses to zero.
			sh.Flush()
			if c := sh.Snapshot().Count(); c != n {
				t.Fatalf("after flush: count %d, want %d", c, n)
			}
		})
	}
}

// TestEpochMonotonic pins the freshness contract: the shared epoch
// counts handoffs, snapshots carry the epoch they observed, and both
// only move forward.
func TestEpochMonotonic(t *testing.T) {
	sh := NewKLL(kll.DefaultK, 2, 8)
	if sh.Epoch() != 0 {
		t.Fatalf("fresh epoch = %d, want 0", sh.Epoch())
	}
	var last uint64
	for i := 0; i < 100; i++ {
		sh.Writer(i % 2).Insert(float64(i))
		e := sh.Epoch()
		if e < last {
			t.Fatalf("epoch went backward: %d after %d", e, last)
		}
		last = e
	}
	sh.Flush()
	snap := sh.Snapshot().(*Snapshot)
	if snap.Epoch() != sh.Epoch() {
		t.Fatalf("quiescent snapshot epoch %d, shared epoch %d", snap.Epoch(), sh.Epoch())
	}
	// 100 inserts over 2 writers with B=8: 12 full-buffer handoffs
	// plus 2 flush handoffs.
	if sh.Epoch() != 14 {
		t.Fatalf("epoch = %d, want 14", sh.Epoch())
	}
}

// TestSnapshotIsolation: a snapshot is a private immutable view —
// later inserts and handoffs must not leak into it.
func TestSnapshotIsolation(t *testing.T) {
	for name, mk := range map[string]func() Shared{
		"kll": func() Shared { return NewKLL(kll.DefaultK, 1, 4) },
		"ddsketch": func() Shared {
			s, err := NewDDSketch(0.01, 1, 4)
			if err != nil {
				t.Fatal(err)
			}
			return s
		},
	} {
		t.Run(name, func(t *testing.T) {
			sh := mk()
			w := sh.Writer(0)
			for i := 0; i < 100; i++ {
				w.Insert(float64(i + 1))
			}
			sh.Flush()
			snap := sh.Snapshot()
			before, err := snap.Quantile(0.5)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 1000; i++ {
				w.Insert(1e6)
			}
			sh.Flush()
			if got := snap.Count(); got != 100 {
				t.Fatalf("old snapshot count changed to %d", got)
			}
			after, err := snap.Quantile(0.5)
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(before) != math.Float64bits(after) {
				t.Fatalf("old snapshot median drifted: %v -> %v", before, after)
			}
			if got := sh.Snapshot().Count(); got != 1100 {
				t.Fatalf("new snapshot count %d, want 1100", got)
			}
		})
	}
}

// TestWriterBufferedAndNaN: Buffered tracks the local buffer, NaNs are
// dropped before buffering (mirroring the serial sketches), and an
// empty flush is a no-op.
func TestWriterBufferedAndNaN(t *testing.T) {
	sh := NewKLL(kll.DefaultK, 1, 8)
	w := sh.Writer(0)
	w.Flush() // empty flush: no handoff
	if sh.Epoch() != 0 {
		t.Fatalf("empty flush advanced epoch to %d", sh.Epoch())
	}
	w.Insert(math.NaN())
	if w.Buffered() != 0 {
		t.Fatalf("NaN was buffered")
	}
	w.Insert(1)
	w.Insert(2)
	if w.Buffered() != 2 {
		t.Fatalf("Buffered = %d, want 2", w.Buffered())
	}
	w.Flush()
	if w.Buffered() != 0 || sh.Count() != 2 {
		t.Fatalf("after flush: buffered %d, count %d", w.Buffered(), sh.Count())
	}
}

// TestConcurrentWritersReaders is the in-package race smoke: writers
// hammer inserts while readers hammer snapshots and query them. Run
// with -race (the verify.sh concurrent gate does) it proves the
// publication protocol has no data races; the final assertions prove
// no values were lost.
func TestConcurrentWritersReaders(t *testing.T) {
	const (
		numWriters = 4
		numReaders = 3
		perWriter  = 5000
	)
	for name, mk := range map[string]func() Shared{
		"kll": func() Shared { return NewKLL(kll.DefaultK, numWriters, 64) },
		"ddsketch": func() Shared {
			s, err := NewDDSketch(0.01, numWriters, 64)
			if err != nil {
				t.Fatal(err)
			}
			return s
		},
	} {
		t.Run(name, func(t *testing.T) {
			sh := mk()
			var wg sync.WaitGroup
			stop := make(chan struct{})
			for r := 0; r < numReaders; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					var lastEpoch uint64
					for {
						select {
						case <-stop:
							return
						default:
						}
						snap := sh.Snapshot().(*Snapshot)
						if snap.Epoch() < lastEpoch {
							t.Errorf("snapshot epoch went backward: %d after %d", snap.Epoch(), lastEpoch)
							return
						}
						lastEpoch = snap.Epoch()
						if snap.Count() > 0 {
							if _, err := snap.Quantile(0.5); err != nil {
								t.Errorf("quantile on live snapshot: %v", err)
								return
							}
							if _, err := sketch.Quantiles(snap, []float64{0.25, 0.75}); err != nil {
								t.Errorf("quantiles on live snapshot: %v", err)
								return
							}
						}
					}
				}()
			}
			var writers sync.WaitGroup
			for i := 0; i < numWriters; i++ {
				writers.Add(1)
				go func(i int) {
					defer writers.Done()
					w := sh.Writer(i)
					base := float64(i * perWriter)
					for j := 0; j < perWriter; j++ {
						w.Insert(base + float64(j))
					}
					w.Flush()
				}(i)
			}
			writers.Wait()
			close(stop)
			wg.Wait()
			if c := sh.Snapshot().Count(); c != numWriters*perWriter {
				t.Fatalf("final count %d, want %d", c, numWriters*perWriter)
			}
		})
	}
}

// TestSharedFootprint pins the budget-governor accounting surface: a
// fresh shared sketch already charges its writer buffers at capacity,
// and the footprint grows as state is published (KLL samples, DDSketch
// counter pages).
func TestSharedFootprint(t *testing.T) {
	const writers, bufSize = 4, 256
	bufBytes := writers * bufSize * 8

	k := NewKLL(kll.DefaultK, writers, bufSize)
	if got := k.Footprint(); got < bufBytes {
		t.Errorf("fresh SharedKLL footprint %d < buffer capacity %d", got, bufBytes)
	}
	base := k.Footprint()
	w := k.Writer(0)
	for _, v := range testValues(8 * bufSize) {
		w.Insert(v)
	}
	if got := k.Footprint(); got <= base {
		t.Errorf("SharedKLL footprint did not grow after handoffs: %d <= %d", got, base)
	}

	d, err := NewDDSketch(0.01, writers, bufSize)
	if err != nil {
		t.Fatal(err)
	}
	base = d.Footprint()
	if base < bufBytes {
		t.Errorf("fresh SharedDDSketch footprint %d < buffer capacity %d", base, bufBytes)
	}
	w = d.Writer(0)
	for _, v := range testValues(4 * bufSize) {
		w.Insert(v)
	}
	if got := d.Footprint(); got <= base {
		t.Errorf("SharedDDSketch footprint did not grow after page installs: %d <= %d", got, base)
	}
}
