package concurrent

import (
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/ddsketch"
	"repro/internal/sketch"
)

// pageLen is the atomic bin store's page size in counters. 64 slots ×
// 8 bytes = 512 B per page: large enough that realistic data (a few
// hundred populated buckets) touches a handful of pages, small enough
// that sparse tails don't drag in the whole index span.
const pageLen = 64

// countPage is one lazily installed page of atomic bucket counters.
type countPage [pageLen]atomic.Int64

// atomicStore is a fixed-directory paginated store of atomic counters.
// The directory covers the mapping's entire indexable range (computed
// once at construction, so the hot path never resizes shared state);
// pages are allocated on first touch and CAS-installed, after which
// every Add is a single atomic increment. It is the concurrent analog
// of the serial BufferedPaginatedStore.
type atomicStore struct {
	base  int // index of page 0, slot 0; pageLen-aligned
	pages []atomic.Pointer[countPage]
}

// newAtomicStore covers bucket indices [minIdx, maxIdx].
func newAtomicStore(minIdx, maxIdx int) *atomicStore {
	base := pageFloor(minIdx)
	numPages := (maxIdx-base)/pageLen + 1
	return &atomicStore{base: base, pages: make([]atomic.Pointer[countPage], numPages)}
}

// pageFloor rounds i down to a multiple of pageLen (toward −∞, so
// negative bucket indices land in-range too).
func pageFloor(i int) int {
	q := i / pageLen
	if i%pageLen != 0 && i < 0 {
		q--
	}
	return q * pageLen
}

// add atomically increments bucket i by n, installing the page on
// first touch.
func (st *atomicStore) add(i int, n int64) {
	off := i - st.base
	p, slot := off/pageLen, off%pageLen
	pg := st.pages[p].Load()
	if pg == nil {
		fresh := new(countPage)
		if st.pages[p].CompareAndSwap(nil, fresh) {
			pg = fresh
		} else {
			// Another writer installed the page first; count the lost
			// race and use theirs.
			recordCASRetry()
			pg = st.pages[p].Load()
		}
	}
	pg[slot].Add(n)
}

// copyInto copies every populated bucket into dst, returning the total
// count copied. Loads are per-counter atomic; the aggregate is a
// relaxed cut (concurrent adds may be partially included), which is
// exactly the semantics the snapshot contract promises.
func (st *atomicStore) copyInto(dst ddsketch.Store) int64 {
	var total int64
	for p := range st.pages {
		pg := st.pages[p].Load()
		if pg == nil {
			continue
		}
		for slot := range pg {
			if c := pg[slot].Load(); c > 0 {
				dst.Add(st.base+p*pageLen+slot, c)
				total += c
			}
		}
	}
	return total
}

// SharedDDSketch is a concurrent DDSketch: writer buffers drain into
// atomic bucket counters, so handoffs from different writers proceed
// in parallel without ever conflicting on more than a single counter.
// Unlike SharedKLL there is no copy-on-write version chain — DDSketch
// state is a bag of commuting counter increments, so propagation is
// wait-free per bucket and the epoch only orders handoffs.
//
// Memory ordering makes snapshots well-formed: a handoff publishes its
// min/max updates before its counter additions, and a snapshot reads
// the counters before min/max, so any counted value's bounds are
// visible to the snapshot that counted it (Go's sync/atomic operations
// are sequentially consistent).
type SharedDDSketch struct {
	mapping ddsketch.Cubic // concrete: devirtualized Index on the flush path
	minIdx  float64        // mapping.MinIndexable(), loaded once
	pos     *atomicStore
	neg     *atomicStore
	zeroCnt atomic.Int64
	count   atomic.Uint64
	minBits atomic.Uint64 // math.Float64bits of the running min
	maxBits atomic.Uint64
	epoch   atomic.Uint64
	writers []*Writer
	bufSize int
}

var _ Shared = (*SharedDDSketch)(nil)

// NewDDSketch returns a shared DDSketch with relative accuracy alpha
// (cubically interpolated mapping, the serial default), writers
// handles and per-writer buffer capacity bufSize (DefaultBufferSize
// when <= 0).
func NewDDSketch(alpha float64, writers, bufSize int) (*SharedDDSketch, error) {
	if writers < 1 {
		return nil, fmt.Errorf("concurrent: writers must be >= 1, got %d", writers)
	}
	if bufSize <= 0 {
		bufSize = DefaultBufferSize
	}
	m, err := ddsketch.NewCubic(alpha)
	if err != nil {
		return nil, err
	}
	// The mapping's index range is fixed by float64's value range:
	// every indexable magnitude lies in [MinIndexable, MaxFloat64] and
	// Index is monotone, so these two probes bound the directory.
	lo := m.Index(m.MinIndexable())
	hi := m.Index(math.MaxFloat64)
	s := &SharedDDSketch{
		mapping: m,
		minIdx:  m.MinIndexable(),
		pos:     newAtomicStore(lo, hi),
		neg:     newAtomicStore(lo, hi),
		bufSize: bufSize,
	}
	s.minBits.Store(math.Float64bits(math.Inf(1)))
	s.maxBits.Store(math.Float64bits(math.Inf(-1)))
	s.writers = make([]*Writer, writers)
	for i := range s.writers {
		s.writers[i] = newWriter(s, bufSize)
	}
	return s, nil
}

// Writer implements Shared.
func (s *SharedDDSketch) Writer(i int) *Writer { return s.writers[i] }

// NumWriters implements Shared.
func (s *SharedDDSketch) NumWriters() int { return len(s.writers) }

// BufferSize implements Shared.
func (s *SharedDDSketch) BufferSize() int { return s.bufSize }

// MaxRelaxation implements Shared.
func (s *SharedDDSketch) MaxRelaxation() uint64 {
	return uint64(len(s.writers)) * uint64(s.bufSize)
}

// Alpha returns the configured relative accuracy.
func (s *SharedDDSketch) Alpha() float64 { return s.mapping.Alpha() }

// casMin lowers the shared running min to x if x is smaller.
func (s *SharedDDSketch) casMin(x float64) {
	for {
		old := s.minBits.Load()
		if math.Float64frombits(old) <= x {
			return
		}
		if s.minBits.CompareAndSwap(old, math.Float64bits(x)) {
			return
		}
		recordCASRetry()
	}
}

// casMax raises the shared running max to x if x is larger.
func (s *SharedDDSketch) casMax(x float64) {
	for {
		old := s.maxBits.Load()
		if math.Float64frombits(old) >= x {
			return
		}
		if s.maxBits.CompareAndSwap(old, math.Float64bits(x)) {
			return
		}
		recordCASRetry()
	}
}

// Local pre-aggregation: buffers of at least aggMinBatch values are
// first collapsed into an on-stack open-addressing table of (bucket,
// count) pairs, so the shared store sees one atomic add per DISTINCT
// bucket instead of one per value. With a few hundred populated
// buckets per multi-thousand-value buffer this removes most of the
// cross-core counter traffic a handoff generates. Smaller buffers skip
// the table: zeroing it would cost more than the adds it saves.
const (
	aggBits     = 10
	aggSlots    = 1 << aggBits
	aggMinBatch = aggSlots
	// aggMaxUsed caps table occupancy at 3/4 so probe chains stay
	// short; keys beyond it spill to direct atomic adds, which is
	// correct because bounds are already published by then.
	aggMaxUsed = aggSlots * 3 / 4
)

// flushBuffer implements bufSink. Bounds first, then counters: the
// ordering Snapshot's consistency argument depends on.
func (s *SharedDDSketch) flushBuffer(vals []float64) {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, x := range vals {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	s.casMin(lo)
	s.casMax(hi)
	if len(vals) >= aggMinBatch {
		s.addAggregated(vals)
	} else {
		for _, x := range vals {
			switch {
			case x > 0 && x >= s.minIdx:
				s.pos.add(s.mapping.Index(x), 1)
			case x < 0 && -x >= s.minIdx:
				s.neg.add(s.mapping.Index(-x), 1)
			default:
				s.zeroCnt.Add(1)
			}
		}
	}
	s.count.Add(uint64(len(vals)))
	s.epoch.Add(1)
	recordHandoff(len(vals))
}

// addAggregated counts vals into the shared stores via a local
// (bucket, count) table. Keys pack the bucket index with a 2-bit
// store tag, so they are never zero (the empty-slot sentinel) and a
// single table covers both signs and the zero bucket. The caller must
// have published min/max already — spilled adds bypass the table.
func (s *SharedDDSketch) addAggregated(vals []float64) {
	var keys [aggSlots]uint64
	var cnts [aggSlots]int64
	used := 0
	for _, x := range vals {
		var key uint64
		switch {
		case x > 0 && x >= s.minIdx:
			key = uint64(int64(s.mapping.Index(x)))<<2 | tagPos
		case x < 0 && -x >= s.minIdx:
			key = uint64(int64(s.mapping.Index(-x)))<<2 | tagNeg
		default:
			key = tagZero
		}
		h := (key * 0x9E3779B97F4A7C15) >> (64 - aggBits)
		for {
			if keys[h] == key {
				cnts[h]++
				break
			}
			if keys[h] == 0 {
				if used == aggMaxUsed {
					s.addKey(key, 1)
					break
				}
				keys[h] = key
				cnts[h] = 1
				used++
				break
			}
			h = (h + 1) & (aggSlots - 1)
		}
	}
	for i, k := range keys {
		if k != 0 {
			s.addKey(k, cnts[i])
		}
	}
}

// Store tags in the two low key bits of aggregated entries.
const (
	tagPos  = 1
	tagNeg  = 2
	tagZero = 3
)

// addKey routes one aggregated (key, count) entry to its store. The
// arithmetic shift restores negative bucket indices.
func (s *SharedDDSketch) addKey(key uint64, n int64) {
	idx := int(int64(key) >> 2)
	switch key & 3 {
	case tagPos:
		s.pos.add(idx, n)
	case tagNeg:
		s.neg.add(idx, n)
	default:
		s.zeroCnt.Add(n)
	}
}

// Snapshot implements Shared: the atomic counters are materialized
// into a plain serial DDSketch, which then answers queries with the
// exact serial kernels. It panics if the materialized state violates
// DDSketch's structural invariants, which the flush ordering makes
// unreachable.
func (s *SharedDDSketch) Snapshot() sketch.Quantiler {
	epoch := s.epoch.Load()
	posD := ddsketch.NewDenseStore()
	negD := ddsketch.NewDenseStore()
	total := s.pos.copyInto(posD)
	total += s.neg.copyInto(negD)
	zero := s.zeroCnt.Load()
	total += zero
	// Bounds are read after the counters: a handoff publishes bounds
	// first, so every counted value's bounds are included. The reverse
	// race — bounds from a handoff whose counters were missed — can
	// only widen the clamp range, except in the empty case, where the
	// canonical sentinels must be restored.
	minV := math.Float64frombits(s.minBits.Load())
	maxV := math.Float64frombits(s.maxBits.Load())
	if total == 0 {
		minV, maxV = math.Inf(1), math.Inf(-1)
	}
	sk, err := ddsketch.NewFromState(s.mapping, posD, negD, zero, minV, maxV)
	if err != nil {
		panic(fmt.Sprintf("concurrent: inconsistent ddsketch snapshot: %v", err))
	}
	recordSnapshot()
	return &Snapshot{Quantiler: sk, epoch: epoch}
}

// Epoch implements Shared.
func (s *SharedDDSketch) Epoch() uint64 { return s.epoch.Load() }

// Count implements Shared.
func (s *SharedDDSketch) Count() uint64 { return s.count.Load() }

// Flush implements Shared. Quiescent-only: see the interface contract.
func (s *SharedDDSketch) Flush() {
	for _, w := range s.writers {
		w.Flush()
	}
}

// Footprint implements Shared: the page directories, every installed
// counter page (512 B each), and the writer buffers' full capacity.
// Page pointers are loaded atomically, so the estimate is a relaxed
// cut like copyInto's.
func (s *SharedDDSketch) Footprint() int {
	total := (len(s.pos.pages) + len(s.neg.pages)) * 8 // directories
	for _, st := range []*atomicStore{s.pos, s.neg} {
		for p := range st.pages {
			if st.pages[p].Load() != nil {
				total += pageLen * 8
			}
		}
	}
	return total + len(s.writers)*s.bufSize*8
}
