package concurrent

import (
	"math"
	"testing"

	"repro/internal/kll"
	"repro/internal/obs"
)

// TestWriterRejectsNonFinite pins the input-validation contract on the
// insert hot path: NaN and both infinities are rejected before the
// buffer (a buffered Inf would survive until the handoff and poison
// the shared summary), each rejection is counted when metrics are
// wired, and finite values are unaffected.
func TestWriterRejectsNonFinite(t *testing.T) {
	reg := obs.NewRegistry()
	SetMetrics(reg.Concurrent())
	defer SetMetrics(nil)

	for name, w := range map[string]*Writer{
		"kll": NewKLL(kll.DefaultK, 1, 64).Writer(0),
		"ddsketch": func() *Writer {
			s, err := NewDDSketch(0.01, 1, 64)
			if err != nil {
				t.Fatal(err)
			}
			return s.Writer(0)
		}(),
	} {
		t.Run(name, func(t *testing.T) {
			before := reg.Concurrent().RejectedInput.Load()
			for _, x := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
				w.Insert(x)
			}
			if w.Buffered() != 0 {
				t.Fatalf("non-finite payload was buffered (%d pending)", w.Buffered())
			}
			if got := reg.Concurrent().RejectedInput.Load() - before; got != 3 {
				t.Errorf("RejectedInput advanced by %d, want 3", got)
			}
			w.Insert(1.5)
			if w.Buffered() != 1 {
				t.Fatalf("finite payload not buffered")
			}
		})
	}
}

// TestRejectAllocsFree extends the hot-path allocation contract to the
// rejection branch: turning away a non-finite payload (with metrics
// recording on) must allocate nothing, like the accepting path.
func TestRejectAllocsFree(t *testing.T) {
	reg := obs.NewRegistry()
	SetMetrics(reg.Concurrent())
	defer SetMetrics(nil)

	w := NewKLL(200, 1, 1<<20).Writer(0)
	inf := math.Inf(1)
	if avg := testing.AllocsPerRun(10000, func() {
		w.Insert(inf)
	}); avg != 0 {
		t.Errorf("rejecting Insert allocates %.2f per call, want 0", avg)
	}
	if w.Buffered() != 0 {
		t.Fatalf("Inf leaked into the buffer")
	}
}
