//go:build !invariants

package moments

// assertInvariants compiles to an empty inlined call without the
// invariants build tag; see invariants.go for the checked contracts.
func (s *Sketch) assertInvariants(string) {}

// assertCount compiles to an empty inlined call without the invariants
// build tag; see invariants.go for the checked contracts.
func (s *Sketch) assertCount(string, float64) {}

// assertInvariants compiles to an empty inlined call without the
// invariants build tag; see invariants.go for the checked contracts.
func (s *FullSketch) assertInvariants(string) {}

// assertCount compiles to an empty inlined call without the invariants
// build tag; see invariants.go for the checked contracts.
func (s *FullSketch) assertCount(string, uint64) {}
