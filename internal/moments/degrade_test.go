package moments

import (
	"errors"
	"testing"

	"repro/internal/sketch"
)

// TestDegradeNotDegradable pins that the fixed-size Moments Sketch
// always refuses to degrade, untouched.
func TestDegradeNotDegradable(t *testing.T) {
	s := New(DefaultK)
	for i := 0; i < 100; i++ {
		s.Insert(float64(i))
	}
	before, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	freed, derr := s.Degrade()
	if !errors.Is(derr, sketch.ErrNotDegradable) || freed != 0 {
		t.Errorf("Degrade = (%d, %v), want (0, ErrNotDegradable)", freed, derr)
	}
	after, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Error("refused Degrade mutated the sketch")
	}
	if sketch.FootprintOf(s) < s.MemoryBytes() {
		t.Errorf("Footprint %d below MemoryBytes %d", sketch.FootprintOf(s), s.MemoryBytes())
	}
}
