package moments

import (
	"fmt"
	"math"

	"repro/internal/maxent"
	"repro/internal/sketch"
)

// FullSketch is the Moments Sketch as originally designed by Gan et al.:
// it maintains BOTH the standard power sums Σxⁱ and the log power sums
// Σ(ln x)ⁱ, and solves the max-entropy problem subject to both moment
// sets jointly. The study's implementation "keeps only standard moments
// and avoids maintaining log moments" (Sec 4.3); this variant exists to
// measure what that simplification costs (experiment ablation-grid's
// sibling analysis) — the joint constraints capture heavy-tailed shapes
// without the harness having to choose a transform per data set.
//
// FullSketch accepts positive values only (the log basis requires it);
// non-positive inserts are ignored, mirroring TransformLog.
type FullSketch struct {
	k         int
	gridSize  int
	powerSums []float64 // Σ x^i, [0] = count
	logSums   []float64 // Σ (ln x)^i, [0] = count (same)
	min, max  float64   // raw domain

	solved *maxent.GridDensity
}

var _ sketch.Sketch = (*FullSketch)(nil)

// NewFull returns a full Moments Sketch holding k standard and k log
// power sums (2k−1 joint constraints). It panics if k < 2.
func NewFull(k int) *FullSketch {
	if k < 2 {
		panic(fmt.Sprintf("moments: need k >= 2, got %d", k))
	}
	return &FullSketch{
		k:         k,
		gridSize:  maxent.DefaultGridSize,
		powerSums: make([]float64, k),
		logSums:   make([]float64, k),
		min:       math.Inf(1),
		max:       math.Inf(-1),
	}
}

// Name implements sketch.Sketch.
func (s *FullSketch) Name() string { return "moments-full" }

// K returns the per-basis moment count.
func (s *FullSketch) K() int { return s.k }

// Insert implements sketch.Sketch; non-positive values and NaNs are
// ignored (the log basis cannot represent them).
func (s *FullSketch) Insert(x float64) { s.InsertN(x, 1) }

// InsertN implements sketch.BulkInserter.
func (s *FullSketch) InsertN(x float64, n uint64) {
	if math.IsNaN(x) || x <= 0 || n == 0 {
		return
	}
	w := float64(n)
	lx := math.Log(x)
	curP, curL := 1.0, 1.0
	for i := 0; i < s.k; i++ {
		s.powerSums[i] += w * curP
		s.logSums[i] += w * curL
		curP *= x
		curL *= lx
	}
	if x < s.min {
		s.min = x
	}
	if x > s.max {
		s.max = x
	}
	s.solved = nil
	s.assertInvariants("insert")
}

// Count implements sketch.Sketch.
func (s *FullSketch) Count() uint64 { return uint64(s.powerSums[0]) }

// solve fits the joint max-entropy density on an x-domain grid.
func (s *FullSketch) solve() error {
	if s.solved != nil {
		return nil
	}
	n := s.powerSums[0]
	if n < MinCardinality {
		return ErrTooFewValues
	}
	if s.max <= s.min {
		return nil // degenerate, handled by callers
	}
	gs := s.gridSize
	// The grid is uniform in LOG space: the log basis varies fastest near
	// the minimum and the polynomial basis is smooth everywhere, so log
	// spacing resolves both. Quadrature weights carry the Jacobian
	// dx = x·du.
	lmin, lmax := math.Log(s.min), math.Log(s.max)
	du := (lmax - lmin) / float64(gs)
	xs := make([]float64, gs)
	weights := make([]float64, gs)
	for g := range xs {
		u := lmin + (float64(g)+0.5)*du
		xs[g] = math.Exp(u)
		weights[g] = xs[g] * du
	}
	// Standard basis: T_i(t), t = affine(x) onto [−1, 1].
	at := 2 / (s.max - s.min)
	bt := -(s.max + s.min) / (s.max - s.min)
	// Log basis: T_j(u), u = affine(ln x) onto [−1, 1].
	au := 2 / (lmax - lmin)
	bu := -(lmax + lmin) / (lmax - lmin)

	coeffs := maxent.ChebyshevCoefficients(s.k)
	evalCheb := func(poly []float64, v float64) float64 {
		out := 0.0
		p := 1.0
		for _, c := range poly {
			out += c * p
			p *= v
		}
		return out
	}
	total := 2*s.k - 1
	basis := make([][]float64, total)
	basis[0] = make([]float64, gs)
	for g := range basis[0] {
		basis[0][g] = 1
	}
	for i := 1; i < s.k; i++ {
		rowT := make([]float64, gs)
		rowU := make([]float64, gs)
		for g := 0; g < gs; g++ {
			rowT[g] = evalCheb(coeffs[i], at*xs[g]+bt)
			rowU[g] = evalCheb(coeffs[i], au*math.Log(xs[g])+bu)
		}
		basis[i] = rowT
		basis[s.k-1+i] = rowU
	}

	// Targets: Chebyshev moments in each basis.
	rawP := make([]float64, s.k)
	rawL := make([]float64, s.k)
	for i := 0; i < s.k; i++ {
		rawP[i] = s.powerSums[i] / n
		rawL[i] = s.logSums[i] / n
	}
	chebT := maxent.PowerToChebyshevMoments(maxent.ShiftPowerMoments(rawP, at, bt))
	chebU := maxent.PowerToChebyshevMoments(maxent.ShiftPowerMoments(rawL, au, bu))
	d := make([]float64, total)
	d[0] = 1
	copy(d[1:s.k], chebT[1:])
	copy(d[s.k:], chebU[1:])

	solver, err := maxent.NewGridSolver(basis, weights)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrSolverFailed, err)
	}
	dens, err := solver.Solve(d)
	if err != nil {
		// Degrade to fewer constraints per basis, which is always better
		// conditioned.
		for k := s.k - 2; k >= 3; k-- {
			sub := make([][]float64, 2*k-1)
			subD := make([]float64, 2*k-1)
			sub[0] = basis[0]
			subD[0] = 1
			for i := 1; i < k; i++ {
				sub[i] = basis[i]
				subD[i] = d[i]
				sub[k-1+i] = basis[s.k-1+i]
				subD[k-1+i] = d[s.k-1+i]
			}
			ss, err2 := maxent.NewGridSolver(sub, weights)
			if err2 != nil {
				continue
			}
			if dn, err2 := ss.Solve(subD); err2 == nil {
				s.solved = dn
				return nil
			}
		}
		return fmt.Errorf("%w: %v", ErrSolverFailed, err)
	}
	s.solved = dens
	return nil
}

// Quantile implements sketch.Sketch.
func (s *FullSketch) Quantile(q float64) (float64, error) {
	if err := sketch.CheckQuantile(q); err != nil {
		return 0, err
	}
	if s.powerSums[0] == 0 {
		return 0, sketch.ErrEmpty
	}
	if err := s.solve(); err != nil {
		return 0, err
	}
	if s.solved == nil { // all values identical
		return s.min, nil
	}
	cell := s.solved.QuantileCell(q)
	lmin, lmax := math.Log(s.min), math.Log(s.max)
	du := (lmax - lmin) / float64(s.gridSize)
	x := math.Exp(lmin + (cell+0.5)*du)
	if x < s.min {
		x = s.min
	}
	if x > s.max {
		x = s.max
	}
	return x, nil
}

// Rank implements sketch.Sketch.
func (s *FullSketch) Rank(x float64) (float64, error) {
	if s.powerSums[0] == 0 {
		return 0, sketch.ErrEmpty
	}
	if err := s.solve(); err != nil {
		return 0, err
	}
	if s.solved == nil {
		if x >= s.min {
			return 1, nil
		}
		return 0, nil
	}
	if x <= 0 {
		return 0, nil
	}
	lmin, lmax := math.Log(s.min), math.Log(s.max)
	du := (lmax - lmin) / float64(s.gridSize)
	cell := (math.Log(x)-lmin)/du - 0.5
	return s.solved.CDFCell(cell), nil
}

// Merge implements sketch.Sketch.
func (s *FullSketch) Merge(other sketch.Sketch) error {
	o, ok := other.(*FullSketch)
	if !ok {
		return fmt.Errorf("%w: cannot merge %s into moments-full", sketch.ErrIncompatible, other.Name())
	}
	if o.k != s.k {
		return fmt.Errorf("%w: k mismatch %d vs %d", sketch.ErrIncompatible, s.k, o.k)
	}
	mergedCount := s.Count() + o.Count()
	for i := range s.powerSums {
		s.powerSums[i] += o.powerSums[i]
		s.logSums[i] += o.logSums[i]
	}
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	s.solved = nil
	s.assertCount("merge", mergedCount)
	return nil
}

// MemoryBytes implements sketch.Sketch: 2k sums plus min/max and config.
func (s *FullSketch) MemoryBytes() int { return 8 * (2*s.k + 5) }

// Reset implements sketch.Sketch.
func (s *FullSketch) Reset() {
	for i := range s.powerSums {
		s.powerSums[i] = 0
		s.logSums[i] = 0
	}
	s.min = math.Inf(1)
	s.max = math.Inf(-1)
	s.solved = nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (s *FullSketch) MarshalBinary() ([]byte, error) {
	w := sketch.NewWriter(48 + 16*s.k)
	w.Byte(0x0A) // private tag: the full variant is an extension
	w.Byte(sketch.SerdeVersion)
	w.U32(uint32(s.k))
	w.U32(uint32(s.gridSize))
	w.F64(s.min)
	w.F64(s.max)
	w.F64s(s.powerSums)
	w.F64s(s.logSums)
	return w.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (s *FullSketch) UnmarshalBinary(data []byte) error {
	r := sketch.NewReader(data)
	if r.Byte() != 0x0A || r.Byte() != sketch.SerdeVersion {
		return sketch.ErrCorrupt
	}
	k := int(r.U32())
	gridSize := int(r.U32())
	minV := r.F64()
	maxV := r.F64()
	ps := r.F64s()
	ls := r.F64s()
	if r.Err() != nil {
		return r.Err()
	}
	if k < 2 || k > 64 || gridSize < 8 || gridSize > 1<<12 ||
		len(ps) != k || len(ls) != k || r.Remaining() != 0 {
		return sketch.ErrCorrupt
	}
	// Structural validation mirrors the invariants-tag assertions. All
	// inserted values are strictly positive, so every standard power sum
	// and every even log sum is a sum of non-negative terms, and a
	// non-empty sketch needs ordered positive bounds.
	if !(ps[0] >= 0) || math.IsInf(ps[0], 0) || math.Float64bits(ls[0]) != math.Float64bits(ps[0]) {
		return sketch.ErrCorrupt
	}
	for i := 1; i < k; i++ {
		if !(ps[i] >= 0) {
			return sketch.ErrCorrupt
		}
	}
	for i := 2; i < k; i += 2 {
		if !(ls[i] >= 0) {
			return sketch.ErrCorrupt
		}
	}
	if ps[0] > 0 && (math.IsNaN(minV) || math.IsNaN(maxV) || !(minV > 0 && minV <= maxV)) {
		return sketch.ErrCorrupt
	}
	ns := NewFull(k)
	ns.gridSize = gridSize
	ns.min = minV
	ns.max = maxV
	copy(ns.powerSums, ps)
	copy(ns.logSums, ls)
	ns.assertInvariants("unmarshal")
	*s = *ns
	return nil
}
