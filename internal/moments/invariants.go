//go:build invariants

package moments

import (
	"math"

	"repro/internal/invariant"
)

// assertInvariants re-verifies the moments sketch's contracts:
//
//   - Shape: exactly k power sums.
//   - Finite count: powerSums[0] is the item count — it must be a
//     finite non-negative float (the uint64 conversion in Count is
//     undefined for ±Inf/NaN).
//   - Even power sums: powerSums[2m] = Σ y^{2m} is a sum of
//     non-negative terms, so it can never be negative or NaN (the
//     `!(v >= 0)` form rejects both). Odd sums are unconstrained:
//     they may legitimately be negative, or NaN via +Inf + -Inf
//     overflow of finite inputs.
//   - Ordered bounds: min ≤ max (non-NaN) whenever non-empty.
func (s *Sketch) assertInvariants(op string) {
	if len(s.powerSums) != s.k {
		invariant.Violationf("moments", op, "have %d power sums, want k=%d", len(s.powerSums), s.k)
	}
	if !(s.powerSums[0] >= 0) || math.IsInf(s.powerSums[0], 0) {
		invariant.Violationf("moments", op, "count sum %v is not a finite non-negative float", s.powerSums[0])
	}
	for i := 2; i < len(s.powerSums); i += 2 {
		if !(s.powerSums[i] >= 0) {
			invariant.Violationf("moments", op, "even power sum [%d] = %v is negative or NaN", i, s.powerSums[i])
		}
	}
	if s.powerSums[0] > 0 {
		if math.IsNaN(s.min) || math.IsNaN(s.max) || !(s.min <= s.max) {
			invariant.Violationf("moments", op, "bounds broken: min %v, max %v with count %v",
				s.min, s.max, s.powerSums[0])
		}
	}
}

// assertCount verifies count conservation across a merge, in float
// space: decayed sketches (ScaleCount) carry fractional counts, where
// the integer projection uint64(a)+uint64(b) == uint64(a+b) does not
// hold even though the underlying count sums add exactly.
func (s *Sketch) assertCount(op string, want float64) {
	if got := s.powerSums[0]; math.Float64bits(got) != math.Float64bits(want) {
		invariant.Violationf("moments", op, "count conservation broken: got %v, want %v", got, want)
	}
	s.assertInvariants(op)
}

// assertInvariants re-verifies the two-basis variant's contracts. All
// inserted values are strictly positive, so every standard power sum
// Σ x^i is a sum of non-negative terms; for the log basis only the
// even sums Σ (ln x)^{2m} are sign-constrained.
func (s *FullSketch) assertInvariants(op string) {
	if len(s.powerSums) != s.k || len(s.logSums) != s.k {
		invariant.Violationf("moments-full", op, "have %d/%d sums, want k=%d",
			len(s.powerSums), len(s.logSums), s.k)
	}
	if !(s.powerSums[0] >= 0) || math.IsInf(s.powerSums[0], 0) {
		invariant.Violationf("moments-full", op, "count sum %v is not a finite non-negative float", s.powerSums[0])
	}
	if math.Float64bits(s.logSums[0]) != math.Float64bits(s.powerSums[0]) {
		invariant.Violationf("moments-full", op, "basis counts diverged: power %v vs log %v",
			s.powerSums[0], s.logSums[0])
	}
	for i := 1; i < s.k; i++ {
		if !(s.powerSums[i] >= 0) {
			invariant.Violationf("moments-full", op, "power sum [%d] = %v is negative or NaN", i, s.powerSums[i])
		}
	}
	for i := 2; i < s.k; i += 2 {
		if !(s.logSums[i] >= 0) {
			invariant.Violationf("moments-full", op, "even log sum [%d] = %v is negative or NaN", i, s.logSums[i])
		}
	}
	if s.powerSums[0] > 0 {
		if math.IsNaN(s.min) || math.IsNaN(s.max) || !(s.min > 0 && s.min <= s.max) {
			invariant.Violationf("moments-full", op, "bounds broken: min %v, max %v with count %v",
				s.min, s.max, s.powerSums[0])
		}
	}
}

// assertCount verifies count conservation across a merge.
func (s *FullSketch) assertCount(op string, want uint64) {
	if got := s.Count(); got != want {
		invariant.Violationf("moments-full", op, "count conservation broken: got %d, want %d", got, want)
	}
	s.assertInvariants(op)
}
