package moments

import (
	"math"

	"repro/internal/sketch"
)

var _ sketch.CountScaler = (*Sketch)(nil)

// ScaleCount implements sketch.CountScaler exactly: every power sum
// Σ yⁱ is linear in the input multiset, so weighting each item by g is
// precisely multiplying each sum (including the count in powerSums[0])
// by g — no rounding, no structural change. The transformed-domain
// min/max stay as-is (the support of the decayed distribution is
// unchanged), and the cached max-entropy solution is discarded because
// the moment vector changed.
func (s *Sketch) ScaleCount(g float64) {
	if math.IsNaN(g) || g >= 1 {
		return
	}
	if g <= 0 {
		s.Reset()
		return
	}
	for i := range s.powerSums {
		s.powerSums[i] *= g
	}
	s.discardWarmStarts()
}
