package moments

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/sketch"
)

func exactQuantile(sorted []float64, q float64) float64 {
	idx := int(math.Ceil(q * float64(len(sorted))))
	if idx < 1 {
		idx = 1
	}
	if idx > len(sorted) {
		idx = len(sorted)
	}
	return sorted[idx-1]
}

func relErr(truth, est float64) float64 {
	if truth == 0 {
		return math.Abs(est)
	}
	return math.Abs(truth-est) / math.Abs(truth)
}

func TestUniformData(t *testing.T) {
	s := New(DefaultK)
	rng := rand.New(rand.NewPCG(1, 2))
	n := 100000
	data := make([]float64, n)
	for i := range data {
		data[i] = 30 + 70*rng.Float64()
		s.Insert(data[i])
	}
	sort.Float64s(data)
	for _, q := range []float64{0.05, 0.25, 0.5, 0.75, 0.95, 0.99} {
		est, err := s.Quantile(q)
		if err != nil {
			t.Fatalf("q=%v: %v", q, err)
		}
		if re := relErr(exactQuantile(data, q), est); re > 0.01 {
			t.Errorf("q=%v: rel err %v on uniform data (est=%v truth=%v)",
				q, re, est, exactQuantile(data, q))
		}
	}
}

func TestGaussianData(t *testing.T) {
	s := New(DefaultK)
	rng := rand.New(rand.NewPCG(5, 6))
	n := 100000
	data := make([]float64, n)
	for i := range data {
		data[i] = 1000 + 50*rng.NormFloat64()
		s.Insert(data[i])
	}
	sort.Float64s(data)
	for _, q := range []float64{0.05, 0.5, 0.95} {
		est, err := s.Quantile(q)
		if err != nil {
			t.Fatal(err)
		}
		if re := relErr(exactQuantile(data, q), est); re > 0.005 {
			t.Errorf("q=%v: rel err %v on gaussian data", q, re)
		}
	}
}

// Pareto with a log transform: the transformed data is exponential, which
// the max-entropy fit handles well. This mirrors the study's methodology
// for data spanning many orders of magnitude (Sec 4.2).
func TestParetoWithLogTransform(t *testing.T) {
	s := NewWithTransform(DefaultK, TransformLog)
	rng := rand.New(rand.NewPCG(7, 8))
	n := 200000
	data := make([]float64, n)
	for i := range data {
		data[i] = 1 / (1 - rng.Float64()) // Pareto α=1
		s.Insert(data[i])
	}
	sort.Float64s(data)
	for _, q := range []float64{0.25, 0.5, 0.75, 0.95, 0.98} {
		est, err := s.Quantile(q)
		if err != nil {
			t.Fatal(err)
		}
		if re := relErr(exactQuantile(data, q), est); re > 0.05 {
			t.Errorf("q=%v: rel err %v on log-transformed Pareto", q, re)
		}
	}
}

func TestArcsinhTransform(t *testing.T) {
	s := NewWithTransform(DefaultK, TransformArcsinh)
	rng := rand.New(rand.NewPCG(9, 10))
	n := 50000
	data := make([]float64, n)
	for i := range data {
		// Signed, large magnitude.
		data[i] = rng.NormFloat64() * 1e4
		s.Insert(data[i])
	}
	sort.Float64s(data)
	est, err := s.Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	truth := exactQuantile(data, 0.5)
	if math.Abs(est-truth) > 500 { // |median| ≈ 0, compare absolutely vs sd=1e4
		t.Errorf("median = %v, want ≈ %v", est, truth)
	}
}

func TestMinCardinality(t *testing.T) {
	s := New(DefaultK)
	for i := 0; i < MinCardinality-1; i++ {
		s.Insert(float64(i + 1))
	}
	if _, err := s.Quantile(0.5); err == nil {
		t.Error("expected ErrTooFewValues below the minimum cardinality")
	}
	s.Insert(10)
	if _, err := s.Quantile(0.5); err != nil {
		t.Errorf("at min cardinality: %v", err)
	}
}

func TestAllEqualValues(t *testing.T) {
	s := New(DefaultK)
	for i := 0; i < 100; i++ {
		s.Insert(42)
	}
	got, err := s.Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-42) > 1e-9 {
		t.Errorf("all-equal median = %v, want 42", got)
	}
}

func TestEmptyAndInvalid(t *testing.T) {
	s := New(DefaultK)
	if _, err := s.Quantile(0.5); err != sketch.ErrEmpty {
		t.Errorf("empty err = %v", err)
	}
	s.Insert(1)
	if _, err := s.Quantile(0); err == nil {
		t.Error("Quantile(0) should fail")
	}
}

func TestLogTransformIgnoresNonPositive(t *testing.T) {
	s := NewWithTransform(DefaultK, TransformLog)
	s.Insert(-5)
	s.Insert(0)
	if s.Count() != 0 {
		t.Errorf("non-positive values should be ignored under log transform, count=%d", s.Count())
	}
}

// Merge must be exactly equivalent to inserting the union (power sums are
// exactly additive — the property that makes Moments merges so fast).
func TestMergeExactlyAdditive(t *testing.T) {
	a, b, u := New(DefaultK), New(DefaultK), New(DefaultK)
	rng := rand.New(rand.NewPCG(11, 12))
	for i := 0; i < 10000; i++ {
		x := rng.Float64()*100 + 1
		u.Insert(x)
		if i%2 == 0 {
			a.Insert(x)
		} else {
			b.Insert(x)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	for i := range a.powerSums {
		if re := relErr(u.powerSums[i], a.powerSums[i]); re > 1e-12 {
			t.Errorf("power sum %d: merged %v vs union %v", i, a.powerSums[i], u.powerSums[i])
		}
	}
	if a.min != u.min || a.max != u.max {
		t.Error("min/max mismatch after merge")
	}
	qa, _ := a.Quantile(0.9)
	qu, _ := u.Quantile(0.9)
	if relErr(qu, qa) > 1e-9 {
		t.Errorf("merged quantile %v vs union %v", qa, qu)
	}
}

func TestMergeIncompatible(t *testing.T) {
	a := New(10)
	b := New(12)
	if err := a.Merge(b); err == nil {
		t.Error("different k should not merge")
	}
	c := NewWithTransform(10, TransformLog)
	if err := a.Merge(c); err == nil {
		t.Error("different transforms should not merge")
	}
}

func TestRankRoundTrip(t *testing.T) {
	s := New(DefaultK)
	rng := rand.New(rand.NewPCG(13, 14))
	data := make([]float64, 50000)
	for i := range data {
		data[i] = 500 + 100*rng.NormFloat64()
		s.Insert(data[i])
	}
	sort.Float64s(data)
	for _, q := range []float64{0.25, 0.5, 0.75} {
		x := exactQuantile(data, q)
		r, err := s.Rank(x)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(r-q) > 0.01 {
			t.Errorf("Rank(%v) = %v, want ≈ %v", x, r, q)
		}
	}
}

func TestMemoryTiny(t *testing.T) {
	s := New(DefaultK)
	for i := 0; i < 1000000; i++ {
		s.Insert(float64(i%1000) + 1)
	}
	// Table 3: 0.14 KB regardless of stream size.
	if got := s.MemoryBytes(); got > 200 {
		t.Errorf("MemoryBytes = %d, want < 200", got)
	}
}

func TestSerdeRoundTrip(t *testing.T) {
	s := NewWithTransform(DefaultK, TransformLog)
	rng := rand.New(rand.NewPCG(15, 16))
	for i := 0; i < 10000; i++ {
		s.Insert(1 + rng.Float64()*1e6)
	}
	blob, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var d Sketch
	if err := d.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if d.Count() != s.Count() || d.Transform() != s.Transform() || d.K() != s.K() {
		t.Fatal("state mismatch")
	}
	qa, _ := s.Quantile(0.9)
	qb, _ := d.Quantile(0.9)
	if qa != qb {
		t.Errorf("quantile mismatch after round trip: %v vs %v", qa, qb)
	}
	if err := d.UnmarshalBinary(blob[:6]); err == nil {
		t.Error("truncated blob should fail")
	}
}

// Property: the solver cache is invalidated correctly — query, insert
// more, query again must reflect the new data.
func TestCacheInvalidation(t *testing.T) {
	s := New(8)
	for i := 1; i <= 1000; i++ {
		s.Insert(float64(i))
	}
	med1, err := s.Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1001; i <= 10000; i++ {
		s.Insert(float64(i))
	}
	med2, err := s.Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if med2 <= med1 {
		t.Errorf("median should have moved up: %v → %v", med1, med2)
	}
}

// Property: Quantile is monotone in q.
func TestQuickQuantileMonotone(t *testing.T) {
	s := New(10)
	rng := rand.New(rand.NewPCG(20, 21))
	for i := 0; i < 20000; i++ {
		s.Insert(100 + 10*rng.NormFloat64())
	}
	f := func(a, b uint16) bool {
		qa := (float64(a) + 1) / 65537
		qb := (float64(b) + 1) / 65537
		if qa > qb {
			qa, qb = qb, qa
		}
		va, err1 := s.Quantile(qa)
		vb, err2 := s.Quantile(qb)
		if err1 != nil || err2 != nil {
			return false
		}
		return va <= vb+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// The bimodality weakness (Fig 6d): on a strongly bimodal distribution
// the mid-quantile error should be clearly worse than on a unimodal one.
func TestBimodalWeakness(t *testing.T) {
	uni := New(DefaultK)
	bim := New(DefaultK)
	rng := rand.New(rand.NewPCG(30, 31))
	var uniData, bimData []float64
	for i := 0; i < 100000; i++ {
		u := 100 + 10*rng.NormFloat64()
		uni.Insert(u)
		uniData = append(uniData, u)
		var b float64
		if rng.Float64() < 0.5 {
			b = 20 + 2*rng.NormFloat64()
		} else {
			b = 180 + 2*rng.NormFloat64()
		}
		bim.Insert(b)
		bimData = append(bimData, b)
	}
	sort.Float64s(uniData)
	sort.Float64s(bimData)
	eUni, err := uni.Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	eBim, err := bim.Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	uniErr := relErr(exactQuantile(uniData, 0.5), eUni)
	bimErr := relErr(exactQuantile(bimData, 0.5), eBim)
	t.Logf("median rel err: unimodal=%v bimodal=%v", uniErr, bimErr)
	if bimErr < uniErr {
		t.Errorf("expected bimodal (%v) to be harder than unimodal (%v)", bimErr, uniErr)
	}
}
