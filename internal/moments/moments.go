// Package moments implements the Moments Sketch (Gan, Ding, Tai, Sharan,
// Bailis; VLDB 2018): a constant-size summary holding min, max and the
// first k raw power sums Σxⁱ of the stream. Quantiles are estimated at
// query time by fitting the maximum-entropy distribution consistent with
// those moments (internal/maxent) and inverting its CDF.
//
// Like the reference implementation the study evaluates, the sketch keeps
// only standard moments (no log moments) — fewer than 20 numbers at
// k = 12 (paper Sec 4.3, the 0.14 KB row of Table 3) — and supports an
// input transform (log or arcsinh) for data spanning many orders of
// magnitude, which the study applies to the Pareto and Power data sets
// (Sec 4.2).
//
// Merging adds the power sums and recomputes min/max — the cheapest merge
// of any sketch in the study by an order of magnitude (Fig 5c).
package moments

import (
	"fmt"
	"math"

	"repro/internal/maxent"
	"repro/internal/sketch"
)

// DefaultK is the study's moment count: 12, below the ~15-moment
// numerical-stability limit reported by Gan et al. (Sec 4.2).
const DefaultK = 12

// MinCardinality is the smallest stream size the solver accepts; the
// paper notes "a minimum cardinality of 5 is required for this sketch or
// its underlying algorithm will fail" (Sec 3.2).
const MinCardinality = 5

// ErrTooFewValues is returned by queries on sketches holding fewer than
// MinCardinality values.
var ErrTooFewValues = fmt.Errorf("moments: fewer than %d values: %w", MinCardinality, sketch.ErrUnsupportedValue)

// ErrSolverFailed wraps max-entropy solver failures at query time.
var ErrSolverFailed = fmt.Errorf("moments: max-entropy solve failed")

// Transform selects an input transformation applied before accumulating
// power sums; estimates are mapped back through the inverse at query time.
type Transform uint8

// Supported transforms.
const (
	// TransformNone accumulates raw values.
	TransformNone Transform = iota
	// TransformLog accumulates ln(x); requires positive data. The study
	// uses it for the Pareto and Power data sets.
	TransformLog
	// TransformArcsinh accumulates asinh(x), the transform recommended
	// for large-magnitude data of arbitrary sign (Sec 3.2).
	TransformArcsinh
)

func (t Transform) String() string {
	switch t {
	case TransformNone:
		return "none"
	case TransformLog:
		return "log"
	case TransformArcsinh:
		return "arcsinh"
	default:
		return fmt.Sprintf("transform(%d)", uint8(t))
	}
}

func (t Transform) apply(x float64) float64 {
	switch t {
	case TransformLog:
		return math.Log(x)
	case TransformArcsinh:
		return math.Asinh(x)
	default:
		return x
	}
}

func (t Transform) invert(y float64) float64 {
	switch t {
	case TransformLog:
		return math.Exp(y)
	case TransformArcsinh:
		return math.Sinh(y)
	default:
		return y
	}
}

// Sketch is a Moments Sketch instance.
type Sketch struct {
	k         int
	transform Transform
	gridSize  int

	powerSums []float64 // powerSums[i] = Σ y^i of transformed values; [0] = count
	min, max  float64   // transformed domain

	// Query-time solution cache, invalidated by Insert/Merge: solving the
	// max-entropy problem is the expensive part of a query (Fig 5b), so a
	// multi-quantile query solves once. The solver is retained across
	// epochs both for its precomputed grid and for its warm-start state.
	solved *maxent.Density
	solver *maxent.Solver

	// Reusable solve-time scratch: the normalized raw moments, and the
	// reduced-k solvers of the robustness fallback chain (each carries a
	// precomputed Chebyshev grid that is expensive to rebuild per retry).
	rawScratch []float64
	fallback   map[int]*maxent.Solver
}

var _ sketch.Sketch = (*Sketch)(nil)

// New returns a Moments Sketch holding k power sums (k ≥ 2) with no input
// transform and the default solver grid.
func New(k int) *Sketch { return NewWithTransform(k, TransformNone) }

// NewWithTransform returns a Moments Sketch with an input transform.
// It panics if k < 2.
func NewWithTransform(k int, tr Transform) *Sketch {
	if k < 2 {
		panic(fmt.Sprintf("moments: need k >= 2, got %d", k))
	}
	return &Sketch{
		k:         k,
		transform: tr,
		gridSize:  maxent.DefaultGridSize,
		powerSums: make([]float64, k),
		min:       math.Inf(1),
		max:       math.Inf(-1),
	}
}

// MaxGridSize bounds the solver quadrature grid; larger requests clamp.
const MaxGridSize = 1 << 20

// SetGridSize overrides the solver quadrature grid (accuracy/query-time
// trade-off, Sec 4.5.5). It must be called before the first query;
// values clamp to [8, MaxGridSize].
func (s *Sketch) SetGridSize(n int) {
	if n < 8 {
		n = 8
	}
	if n > MaxGridSize {
		n = MaxGridSize
	}
	s.gridSize = n
	s.solver = nil
	s.solved = nil
	s.fallback = nil
}

// Name implements sketch.Sketch.
func (s *Sketch) Name() string { return "moments" }

// K returns the number of power sums held.
func (s *Sketch) K() int { return s.k }

// Transform returns the configured input transform.
func (s *Sketch) Transform() Transform { return s.transform }

// PowerSums returns a copy of the raw power sums Σyⁱ (y the transformed
// values); PowerSums()[0] is the count.
func (s *Sketch) PowerSums() []float64 {
	return append([]float64(nil), s.powerSums...)
}

// Insert implements sketch.Sketch. NaNs are ignored, as are non-positive
// values under TransformLog (they cannot be represented).
func (s *Sketch) Insert(x float64) { s.InsertN(x, 1) }

// InsertN implements sketch.BulkInserter: n occurrences of x in O(k).
func (s *Sketch) InsertN(x float64, n uint64) {
	if math.IsNaN(x) || n == 0 {
		return
	}
	if s.transform == TransformLog && x <= 0 {
		return
	}
	if metrics != nil {
		metrics.Inserts.Add(int64(n))
	}
	y := s.transform.apply(x)
	w := float64(n)
	cur := 1.0
	for i := 0; i < s.k; i++ {
		s.powerSums[i] += w * cur
		cur *= y
	}
	if y < s.min {
		s.min = y
	}
	if y > s.max {
		s.max = y
	}
	s.solved = nil
	s.assertInvariants("insert")
}

// Count implements sketch.Sketch.
func (s *Sketch) Count() uint64 { return uint64(s.powerSums[0]) }

// solve fits the max-entropy density for the current moments, caching the
// result until the next mutation.
func (s *Sketch) solve() (*maxent.Density, error) {
	if s.solved != nil {
		return s.solved, nil
	}
	if metrics != nil {
		metrics.PeakBytes.Max(int64(s.MemoryBytes()))
	}
	n := s.powerSums[0]
	if n < MinCardinality {
		return nil, ErrTooFewValues
	}
	if s.max <= s.min {
		return nil, nil // degenerate: all values equal; handled by caller
	}
	// Scale the transformed domain onto [−1, 1]: t = a·y + b.
	a := 2 / (s.max - s.min)
	b := -(s.max + s.min) / (s.max - s.min)
	if cap(s.rawScratch) < s.k {
		s.rawScratch = make([]float64, s.k)
	}
	raw := s.rawScratch[:s.k]
	for i := range raw {
		raw[i] = s.powerSums[i] / n
	}
	scaled := maxent.ShiftPowerMoments(raw, a, b)
	cheb := maxent.PowerToChebyshevMoments(scaled)
	if s.solver == nil || s.solver.K() != s.k {
		s.solver = maxent.NewSolver(s.k, s.gridSize)
	}
	d, err := s.solver.Solve(cheb)
	if err != nil {
		// Degrade gracefully: retry with fewer moments, which is always
		// better conditioned; with 2 moments (count & mean) the solve is
		// trivial. This mirrors the reference solver's robustness fallback.
		for k := s.k - 2; k >= 4; k -= 2 {
			sub := s.fallback[k]
			if sub == nil {
				sub = maxent.NewSolver(k, s.gridSize)
				if s.fallback == nil {
					s.fallback = make(map[int]*maxent.Solver)
				}
				s.fallback[k] = sub
			}
			if d2, err2 := sub.Solve(cheb[:k]); err2 == nil {
				s.solved = d2
				return d2, nil
			}
		}
		return nil, fmt.Errorf("%w: %v", ErrSolverFailed, err)
	}
	s.solved = d
	return d, nil
}

// Quantile implements sketch.Sketch by inverting the CDF of the fitted
// max-entropy density.
func (s *Sketch) Quantile(q float64) (float64, error) {
	if err := sketch.CheckQuantile(q); err != nil {
		return 0, err
	}
	if s.powerSums[0] == 0 {
		return 0, sketch.ErrEmpty
	}
	d, err := s.solve()
	if err != nil {
		return 0, err
	}
	return s.quantileFromDensity(d, q), nil
}

// quantileFromDensity inverts the fitted CDF for one valid q. A nil
// density means all values were identical.
func (s *Sketch) quantileFromDensity(d *maxent.Density, q float64) float64 {
	if d == nil {
		return s.transform.invert(s.min)
	}
	t := d.QuantileT(q)
	// Map t ∈ [−1,1] back to the transformed domain, then invert the
	// transform.
	y := s.min + (t+1)/2*(s.max-s.min)
	return s.transform.invert(y)
}

// QuantileAll implements sketch.MultiQuantiler: the max-entropy problem
// is solved once per mutation epoch (warm-started by the solver from the
// previous epoch's solution) and the fitted CDF is inverted for every
// target.
func (s *Sketch) QuantileAll(qs []float64) ([]float64, error) {
	// Validation interleaves with evaluation in slice order, exactly like
	// the per-q fallback loop: a solve failure at an early valid q must
	// win over an invalid q later in the slice.
	out := make([]float64, len(qs))
	var d *maxent.Density
	solved := false
	for i, q := range qs {
		if err := sketch.CheckQuantile(q); err != nil {
			return nil, fmt.Errorf("quantile %v: %w", q, err)
		}
		if s.powerSums[0] == 0 {
			return nil, fmt.Errorf("quantile %v: %w", q, sketch.ErrEmpty)
		}
		if !solved {
			var err error
			if d, err = s.solve(); err != nil {
				return nil, fmt.Errorf("quantile %v: %w", q, err)
			}
			solved = true
		}
		out[i] = s.quantileFromDensity(d, q)
	}
	return out, nil
}

// Rank implements sketch.Sketch via the fitted CDF.
func (s *Sketch) Rank(x float64) (float64, error) {
	if s.powerSums[0] == 0 {
		return 0, sketch.ErrEmpty
	}
	d, err := s.solve()
	if err != nil {
		return 0, err
	}
	if s.transform == TransformLog && x <= 0 {
		return 0, nil
	}
	y := s.transform.apply(x)
	if d == nil {
		if y >= s.min {
			return 1, nil
		}
		return 0, nil
	}
	t := 2*(y-s.min)/(s.max-s.min) - 1
	return d.CDFT(t), nil
}

// Merge implements sketch.Sketch: power sums add elementwise; min/max
// combine (Sec 3.2). Sketches must agree on k and transform.
func (s *Sketch) Merge(other sketch.Sketch) error {
	o, ok := other.(*Sketch)
	if !ok {
		return fmt.Errorf("%w: cannot merge %s into moments", sketch.ErrIncompatible, other.Name())
	}
	if o.k != s.k || o.transform != s.transform {
		return fmt.Errorf("%w: config mismatch (k=%d,%v) vs (k=%d,%v)",
			sketch.ErrIncompatible, s.k, s.transform, o.k, o.transform)
	}
	mergedCount := s.powerSums[0] + o.powerSums[0]
	for i := range s.powerSums {
		s.powerSums[i] += o.powerSums[i]
	}
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	s.solved = nil
	s.assertCount("merge", mergedCount)
	return nil
}

// MemoryBytes implements sketch.Sketch: k power sums plus min and max and
// configuration — under 20 numbers at k = 12 (Table 3's 0.14 KB).
func (s *Sketch) MemoryBytes() int {
	return 8 * (s.k + 2 + 3)
}

// Footprint implements sketch.Footprinter: the structural power-sum
// state plus the retained solver scratch (the normalized-moment buffer;
// the solver grids are shared query-time machinery rebuilt on demand
// and already bounded by SetGridSize).
func (s *Sketch) Footprint() int {
	return s.MemoryBytes() + 8*cap(s.rawScratch)
}

// Degrade implements sketch.Degrader: the Moments Sketch is fixed-size
// by construction — k power sums regardless of stream length — so there
// is no accuracy-for-memory knob to turn; it always reports
// ErrNotDegradable and the budget governor moves past it.
func (s *Sketch) Degrade() (int, error) {
	return 0, sketch.ErrNotDegradable
}

// Reset implements sketch.Sketch.
func (s *Sketch) Reset() {
	for i := range s.powerSums {
		s.powerSums[i] = 0
	}
	s.min = math.Inf(1)
	s.max = math.Inf(-1)
	s.discardWarmStarts()
}

// discardWarmStarts forgets every solver's warm-start multipliers and
// any cached density derived from them. Warm-started Newton converges
// to a (numerically) slightly different solution than a cold start, so
// at boundaries where answers must be a pure function of sketch state —
// serialization, reset — the history-dependent state has to go: a
// round-tripped replica and the original must both cold-start their
// next solve and agree bitwise.
func (s *Sketch) discardWarmStarts() {
	s.solved = nil
	if s.solver != nil {
		s.solver.DiscardWarm()
	}
	//lint:ignore purity each DiscardWarm clears one solver's private cache and emits nothing; the visit order cannot reach the encoded bytes
	for _, sub := range s.fallback {
		sub.DiscardWarm()
	}
}

// MarshalBinary implements encoding.BinaryMarshaler. The wire format
// carries only the power-sum state; the solver's warm-start cache is
// discarded on the way out so the origin answers future queries exactly
// like a replica decoded from the blob.
func (s *Sketch) MarshalBinary() ([]byte, error) {
	s.discardWarmStarts()
	w := sketch.NewWriter(32 + 8*s.k)
	w.Header(sketch.TagMoments)
	w.Byte(byte(s.transform))
	w.U32(uint32(s.k))
	w.U32(uint32(s.gridSize))
	w.F64(s.min)
	w.F64(s.max)
	w.F64s(s.powerSums)
	return w.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (s *Sketch) UnmarshalBinary(data []byte) error {
	r := sketch.NewReader(data)
	if err := r.Header(sketch.TagMoments); err != nil {
		return err
	}
	tr := Transform(r.Byte())
	k := int(r.U32())
	gridSize := int(r.U32())
	minV := r.F64()
	maxV := r.F64()
	sums := r.F64s()
	if r.Err() != nil {
		return r.Err()
	}
	if k < 2 || k > 64 || len(sums) != k || tr > TransformArcsinh || r.Remaining() != 0 {
		return sketch.ErrCorrupt
	}
	// Decoded grids are bounded far tighter than SetGridSize's clamp:
	// each Newton step costs O(k²·grid) and the solver tabulates
	// (2k−1)·grid float64s, so untrusted input must not dictate the
	// solve cost. 4096 leaves 4× headroom over the default grid.
	if gridSize < 8 || gridSize > 1<<12 {
		return sketch.ErrCorrupt
	}
	// Structural validation mirrors the invariants-tag assertions so a
	// decodable payload can never resurrect an impossible state: the
	// count sum must be a finite non-negative float, even power sums are
	// sums of non-negative terms, and a non-empty sketch needs ordered
	// non-NaN bounds.
	if !(sums[0] >= 0) || math.IsInf(sums[0], 0) {
		return sketch.ErrCorrupt
	}
	for i := 2; i < k; i += 2 {
		if !(sums[i] >= 0) {
			return sketch.ErrCorrupt
		}
	}
	if sums[0] > 0 && (math.IsNaN(minV) || math.IsNaN(maxV) || !(minV <= maxV)) {
		return sketch.ErrCorrupt
	}
	ns := NewWithTransform(k, tr)
	ns.gridSize = gridSize
	ns.min = minV
	ns.max = maxV
	copy(ns.powerSums, sums)
	ns.assertInvariants("unmarshal")
	*s = *ns
	return nil
}
