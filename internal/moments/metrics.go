package moments

import (
	"repro/internal/maxent"
	"repro/internal/obs"
)

// metrics aggregates structural counters across every Sketch this
// package builds. nil (the default) disables recording; every hook site
// is guarded by a nil check, so the disabled cost is one predictable
// branch at coarse-grained points (insert, solve, merge).
var metrics *obs.SketchMetrics

// SetMetrics enables (or, with nil, disables) metrics recording for all
// Moments sketches in this process, including the max-entropy solver's
// Newton-iteration and cold-start counters (wired through to
// internal/maxent, whose solvers this package owns). It must be called
// while no sketch built by this package is in use — typically at
// process start; after that, recording is safe from any number of
// goroutines.
func SetMetrics(m *obs.SketchMetrics) {
	metrics = m
	maxent.SetMetrics(m)
}
