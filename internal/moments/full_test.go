package moments

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"

	"repro/internal/sketch"
)

func TestFullParetoWithoutTransform(t *testing.T) {
	// The whole point of the joint log basis: heavy-tailed data without
	// the harness choosing a transform.
	s := NewFull(8)
	rng := rand.New(rand.NewPCG(1, 2))
	n := 200000
	data := make([]float64, n)
	for i := range data {
		data[i] = 1 / math.Pow(1-rng.Float64(), 1.0)
		s.Insert(data[i])
	}
	sort.Float64s(data)
	for _, q := range []float64{0.25, 0.5, 0.75, 0.9} {
		est, err := s.Quantile(q)
		if err != nil {
			t.Fatalf("q=%v: %v", q, err)
		}
		if re := relErr(exactQuantile(data, q), est); re > 0.10 {
			t.Errorf("q=%v: rel err %v (est=%v truth=%v)", q, re, est, exactQuantile(data, q))
		}
	}
}

func TestFullUniform(t *testing.T) {
	s := NewFull(10)
	rng := rand.New(rand.NewPCG(3, 4))
	n := 100000
	data := make([]float64, n)
	for i := range data {
		data[i] = 30 + 70*rng.Float64()
		s.Insert(data[i])
	}
	sort.Float64s(data)
	for _, q := range []float64{0.05, 0.5, 0.95} {
		est, err := s.Quantile(q)
		if err != nil {
			t.Fatal(err)
		}
		if re := relErr(exactQuantile(data, q), est); re > 0.01 {
			t.Errorf("q=%v: rel err %v", q, re)
		}
	}
}

func TestFullIgnoresNonPositive(t *testing.T) {
	s := NewFull(6)
	s.Insert(-1)
	s.Insert(0)
	s.Insert(math.NaN())
	if s.Count() != 0 {
		t.Errorf("count %d after unrepresentable inserts", s.Count())
	}
}

func TestFullMinCardinality(t *testing.T) {
	s := NewFull(6)
	for i := 0; i < MinCardinality-1; i++ {
		s.Insert(float64(i + 1))
	}
	if _, err := s.Quantile(0.5); err == nil {
		t.Error("expected ErrTooFewValues")
	}
}

func TestFullAllEqual(t *testing.T) {
	s := NewFull(6)
	for i := 0; i < 100; i++ {
		s.Insert(7)
	}
	v, err := s.Quantile(0.5)
	if err != nil || v != 7 {
		t.Errorf("all-equal median = %v, %v", v, err)
	}
}

func TestFullMergeAdditive(t *testing.T) {
	a, b, u := NewFull(8), NewFull(8), NewFull(8)
	rng := rand.New(rand.NewPCG(5, 6))
	for i := 0; i < 20000; i++ {
		x := rng.ExpFloat64()*10 + 1
		u.Insert(x)
		if i%2 == 0 {
			a.Insert(x)
		} else {
			b.Insert(x)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	for i := range a.powerSums {
		if relErr(u.powerSums[i], a.powerSums[i]) > 1e-12 ||
			relErr(u.logSums[i], a.logSums[i]) > 1e-12 {
			t.Fatalf("sum %d mismatch after merge", i)
		}
	}
	c := NewFull(6)
	if err := a.Merge(c); err == nil {
		t.Error("k mismatch should fail")
	}
	if err := a.Merge(New(8)); err == nil {
		t.Error("cross-type merge should fail")
	}
}

func TestFullSerde(t *testing.T) {
	s := NewFull(8)
	rng := rand.New(rand.NewPCG(7, 8))
	for i := 0; i < 10000; i++ {
		s.Insert(1 + rng.Float64()*100)
	}
	blob, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var d FullSketch
	if err := d.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	qa, _ := s.Quantile(0.9)
	qb, _ := d.Quantile(0.9)
	if qa != qb {
		t.Errorf("round trip: %v != %v", qa, qb)
	}
	if err := d.UnmarshalBinary(blob[:9]); err == nil {
		t.Error("truncated blob should fail")
	}
	if err := d.UnmarshalBinary([]byte{1, 2, 3}); err == nil {
		t.Error("garbage should fail")
	}
}

func TestFullRankConsistency(t *testing.T) {
	s := NewFull(8)
	rng := rand.New(rand.NewPCG(9, 10))
	for i := 0; i < 50000; i++ {
		s.Insert(math.Exp(rng.NormFloat64()))
	}
	med, err := s.Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Rank(med)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-0.5) > 0.02 {
		t.Errorf("Rank(median) = %v", r)
	}
}

// The headline comparison: on lognormal-ish data without any transform,
// the joint variant must beat the standard-only variant that the study's
// stripped implementation uses.
func TestFullBeatsStandardOnHeavyTail(t *testing.T) {
	full := NewFull(8)
	std := New(8) // standard moments, no transform (the study's setting
	// for data they didn't transform)
	rng := rand.New(rand.NewPCG(11, 12))
	n := 100000
	data := make([]float64, n)
	for i := range data {
		data[i] = math.Exp(rng.NormFloat64() * 2) // lognormal, heavy tail
		full.Insert(data[i])
		std.Insert(data[i])
	}
	sort.Float64s(data)
	var fullErr, stdErr float64
	for _, q := range []float64{0.25, 0.5, 0.75} {
		truth := exactQuantile(data, q)
		fe, err := full.Quantile(q)
		if err != nil {
			t.Fatalf("full q=%v: %v", q, err)
		}
		fullErr += relErr(truth, fe)
		if se, err := std.Quantile(q); err == nil {
			stdErr += relErr(truth, se)
		} else {
			stdErr += 1 // solver failure counts as a full miss
		}
	}
	t.Logf("mid-quantile error: full=%v standard=%v", fullErr/3, stdErr/3)
	if fullErr >= stdErr {
		t.Errorf("joint log basis (%v) should beat standard-only (%v) on heavy tails", fullErr/3, stdErr/3)
	}
}

var _ sketch.BulkInserter = (*FullSketch)(nil)
