package moments

import (
	"math"

	"repro/internal/sketch"
)

var (
	_ sketch.BatchInserter  = (*Sketch)(nil)
	_ sketch.MultiQuantiler = (*Sketch)(nil)
)

// InsertBatch implements sketch.BatchInserter: a fused power-sum
// accumulation loop. The transform dispatch, moment count and bounds
// are hoisted out of the per-element work; each element still adds its
// powers directly into s.powerSums in stream order (power-sum addition
// is not associative in floating point, so accumulating into a local
// and adding once would change the result).
//
//sketch:hotpath
func (s *Sketch) InsertBatch(xs []float64) {
	if len(xs) == 0 {
		return
	}
	k := s.k
	tr := s.transform
	sums := s.powerSums
	minV, maxV := s.min, s.max
	var skipped int
	for _, x := range xs {
		if math.IsNaN(x) {
			skipped++
			continue
		}
		if tr == TransformLog && x <= 0 {
			skipped++
			continue
		}
		y := x
		switch tr {
		case TransformLog:
			y = math.Log(x)
		case TransformArcsinh:
			y = math.Asinh(x)
		}
		cur := 1.0
		for i := 0; i < k; i++ {
			sums[i] += cur
			cur *= y
		}
		if y < minV {
			minV = y
		}
		if y > maxV {
			maxV = y
		}
	}
	if metrics != nil {
		metrics.Inserts.Add(int64(len(xs) - skipped))
	}
	s.min, s.max = minV, maxV
	s.solved = nil
	s.assertInvariants("insert-batch")
}
