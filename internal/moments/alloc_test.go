package moments

import "testing"

// TestInsertBatchAllocs pins the //sketch:hotpath contract on the fused
// power-sum loop: the kernel is pure arithmetic on preallocated state,
// so a batch of any size must allocate nothing.
func TestInsertBatchAllocs(t *testing.T) {
	s := New(10)
	xs := make([]float64, 1024)
	state := uint64(0x9e3779b97f4a7c15)
	for i := range xs {
		state = state*6364136223846793005 + 1442695040888963407
		xs[i] = 1 + float64(state>>11)/float64(1<<53)*999
	}
	s.InsertBatch(xs) // warm (nothing to grow, but symmetrical with the others)
	avg := testing.AllocsPerRun(100, func() { s.InsertBatch(xs) })
	if avg > 0 {
		t.Errorf("InsertBatch allocates %.1f times per 1024-value batch, want 0", avg)
	}
}
