// Package tdigest implements the merging t-digest (Dunning & Ertl,
// arXiv:1902.04023): incoming values buffer until a merge pass
// re-clusters them into weighted centroids whose maximum size is governed
// by the scale function k(q) = (δ/2π)·asin(2q−1) — clusters near the
// extreme quantiles stay tiny (accurate) while mid-range clusters grow.
//
// The study surveys t-digest as related work (Sec 5.2.4) and excludes it
// from the main evaluation because it offers no hard error bound and its
// merges can degrade accuracy; this implementation exists so the
// `related` experiment can check those claims against the five evaluated
// sketches under the same harness.
package tdigest

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/sketch"
)

// DefaultCompression is the customary δ = 100 (≈ 1% accuracy mid-range,
// much better at the tails).
const DefaultCompression = 100

// centroid is one weighted cluster.
type centroid struct {
	mean  float64
	count int64
}

// Sketch is a t-digest.
type Sketch struct {
	compression float64
	centroids   []centroid
	buffer      []float64
	bufCap      int
	count       int64
	min, max    float64
}

var _ sketch.Sketch = (*Sketch)(nil)

// New returns a t-digest with the given compression δ (≥ 10).
func New(compression float64) *Sketch {
	if compression < 10 {
		compression = 10
	}
	return &Sketch{
		compression: compression,
		bufCap:      int(8 * compression),
		min:         math.Inf(1),
		max:         math.Inf(-1),
	}
}

// Name implements sketch.Sketch.
func (s *Sketch) Name() string { return "tdigest" }

// Compression returns δ.
func (s *Sketch) Compression() float64 { return s.compression }

// Insert implements sketch.Sketch. NaNs are ignored.
func (s *Sketch) Insert(x float64) {
	if math.IsNaN(x) {
		return
	}
	s.buffer = append(s.buffer, x)
	s.count++
	if x < s.min {
		s.min = x
	}
	if x > s.max {
		s.max = x
	}
	if len(s.buffer) >= s.bufCap {
		s.flush()
	}
}

// InsertN implements sketch.BulkInserter: n occurrences of x are added
// as one weighted centroid in O(1) amortized.
func (s *Sketch) InsertN(x float64, n uint64) {
	if math.IsNaN(x) || n == 0 {
		return
	}
	s.flush()
	s.centroids = append(s.centroids, centroid{mean: x, count: int64(n)})
	sort.Slice(s.centroids, func(i, j int) bool { return s.centroids[i].mean < s.centroids[j].mean })
	s.count += int64(n)
	if x < s.min {
		s.min = x
	}
	if x > s.max {
		s.max = x
	}
	s.flushCentroids()
}

// kScale is the tail-sensitive scale function k1.
func (s *Sketch) kScale(q float64) float64 {
	return s.compression / (2 * math.Pi) * math.Asin(2*q-1)
}

// kInverse inverts kScale.
func (s *Sketch) kInverse(k float64) float64 {
	return (math.Sin(k*2*math.Pi/s.compression) + 1) / 2
}

// flush merges buffered values into the centroid list (the "merging
// t-digest" pass).
func (s *Sketch) flush() {
	if len(s.buffer) == 0 {
		return
	}
	pts := make([]centroid, 0, len(s.centroids)+len(s.buffer))
	pts = append(pts, s.centroids...)
	for _, v := range s.buffer {
		pts = append(pts, centroid{mean: v, count: 1})
	}
	s.buffer = s.buffer[:0]
	sort.Slice(pts, func(i, j int) bool { return pts[i].mean < pts[j].mean })

	var total int64
	for _, p := range pts {
		total += p.count
	}
	out := make([]centroid, 0, int(s.compression)+8)
	cur := pts[0]
	var done int64 // weight fully emitted before cur
	qLimit := s.kInverse(s.kScale(0) + 1)
	for _, p := range pts[1:] {
		prospective := float64(done+cur.count+p.count) / float64(total)
		if prospective <= qLimit {
			// Absorb p into cur (weighted mean update).
			cur.mean = (cur.mean*float64(cur.count) + p.mean*float64(p.count)) / float64(cur.count+p.count)
			cur.count += p.count
		} else {
			out = append(out, cur)
			done += cur.count
			qLimit = s.kInverse(s.kScale(float64(done)/float64(total)) + 1)
			cur = p
		}
	}
	out = append(out, cur)
	s.centroids = out
}

// Count implements sketch.Sketch.
func (s *Sketch) Count() uint64 { return uint64(s.count) }

// Quantile implements sketch.Sketch, interpolating between centroid
// means.
func (s *Sketch) Quantile(q float64) (float64, error) {
	if err := sketch.CheckQuantile(q); err != nil {
		return 0, err
	}
	if s.count == 0 {
		return 0, sketch.ErrEmpty
	}
	s.flush()
	if q == 1 || len(s.centroids) == 1 {
		if q == 1 {
			return s.max, nil
		}
		return s.centroids[0].mean, nil
	}
	target := q * float64(s.count)
	var cum float64
	for i, c := range s.centroids {
		mid := cum + float64(c.count)/2
		if target <= mid || i == len(s.centroids)-1 {
			// Interpolate between the previous centroid's midpoint and
			// this one's.
			if i == 0 {
				frac := target / mid
				return s.min + frac*(c.mean-s.min), nil
			}
			prev := s.centroids[i-1]
			prevMid := cum - float64(prev.count)/2
			frac := (target - prevMid) / (mid - prevMid)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return prev.mean + frac*(c.mean-prev.mean), nil
		}
		cum += float64(c.count)
	}
	return s.max, nil
}

// Rank implements sketch.Sketch.
func (s *Sketch) Rank(x float64) (float64, error) {
	if s.count == 0 {
		return 0, sketch.ErrEmpty
	}
	s.flush()
	if x < s.min {
		return 0, nil
	}
	if x >= s.max {
		return 1, nil
	}
	var cum float64
	for i, c := range s.centroids {
		if x < c.mean {
			if i == 0 {
				frac := (x - s.min) / (c.mean - s.min)
				return frac * float64(c.count) / 2 / float64(s.count), nil
			}
			prev := s.centroids[i-1]
			prevMid := cum - float64(prev.count)/2
			mid := cum + float64(c.count)/2
			frac := (x - prev.mean) / (c.mean - prev.mean)
			return (prevMid + frac*(mid-prevMid)) / float64(s.count), nil
		}
		cum += float64(c.count)
	}
	return 1, nil
}

// Merge implements sketch.Sketch by feeding the other digest's centroids
// through a merge pass. Note the paper's caveat: t-digest merges carry no
// guarantee and can degrade accuracy (Sec 5.2.4).
func (s *Sketch) Merge(other sketch.Sketch) error {
	o, ok := other.(*Sketch)
	if !ok {
		return fmt.Errorf("%w: cannot merge %s into tdigest", sketch.ErrIncompatible, other.Name())
	}
	oc := o.clone()
	oc.flush()
	s.flush()
	s.centroids = append(s.centroids, oc.centroids...)
	sort.Slice(s.centroids, func(i, j int) bool { return s.centroids[i].mean < s.centroids[j].mean })
	s.count += oc.count
	if oc.min < s.min {
		s.min = oc.min
	}
	if oc.max > s.max {
		s.max = oc.max
	}
	s.flushCentroids()
	return nil
}

// flushCentroids re-clusters the (sorted) centroid list in place.
func (s *Sketch) flushCentroids() {
	pts := s.centroids
	if len(pts) == 0 {
		return
	}
	var total int64
	for _, p := range pts {
		total += p.count
	}
	out := make([]centroid, 0, int(s.compression)+8)
	cur := pts[0]
	var done int64
	qLimit := s.kInverse(s.kScale(0) + 1)
	for _, p := range pts[1:] {
		prospective := float64(done+cur.count+p.count) / float64(total)
		if prospective <= qLimit {
			cur.mean = (cur.mean*float64(cur.count) + p.mean*float64(p.count)) / float64(cur.count+p.count)
			cur.count += p.count
		} else {
			out = append(out, cur)
			done += cur.count
			qLimit = s.kInverse(s.kScale(float64(done)/float64(total)) + 1)
			cur = p
		}
	}
	out = append(out, cur)
	s.centroids = out
}

func (s *Sketch) clone() *Sketch {
	c := *s
	c.centroids = append([]centroid(nil), s.centroids...)
	c.buffer = append([]float64(nil), s.buffer...)
	return &c
}

// Centroids reports the current cluster count (after flushing).
func (s *Sketch) Centroids() int {
	s.flush()
	return len(s.centroids)
}

// MemoryBytes implements sketch.Sketch: two numbers per centroid plus the
// buffer capacity and bookkeeping.
func (s *Sketch) MemoryBytes() int {
	return 8 * (2*len(s.centroids) + len(s.buffer) + 6)
}

// Reset implements sketch.Sketch.
func (s *Sketch) Reset() {
	*s = *New(s.compression)
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (s *Sketch) MarshalBinary() ([]byte, error) {
	s.flush()
	w := sketch.NewWriter(48 + 16*len(s.centroids))
	w.Header(sketch.TagTDigest)
	w.F64(s.compression)
	w.I64(s.count)
	w.F64(s.min)
	w.F64(s.max)
	w.U32(uint32(len(s.centroids)))
	for _, c := range s.centroids {
		w.F64(c.mean)
		w.I64(c.count)
	}
	return w.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (s *Sketch) UnmarshalBinary(data []byte) error {
	r := sketch.NewReader(data)
	if err := r.Header(sketch.TagTDigest); err != nil {
		return err
	}
	comp := r.F64()
	count := r.I64()
	minV := r.F64()
	maxV := r.F64()
	n := int(r.U32())
	if r.Err() != nil {
		return r.Err()
	}
	if comp < 10 || comp > 1e6 || n < 0 || n > r.Remaining()/16 {
		return sketch.ErrCorrupt
	}
	ns := New(comp)
	ns.count = count
	ns.min = minV
	ns.max = maxV
	ns.centroids = make([]centroid, n)
	for i := range ns.centroids {
		ns.centroids[i] = centroid{mean: r.F64(), count: r.I64()}
		if ns.centroids[i].count < 0 {
			return sketch.ErrCorrupt
		}
	}
	if r.Err() != nil {
		return r.Err()
	}
	if r.Remaining() != 0 {
		return sketch.ErrCorrupt
	}
	*s = *ns
	return nil
}
