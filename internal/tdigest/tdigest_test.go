package tdigest

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/sketch"
)

func exactQuantile(sorted []float64, q float64) float64 {
	idx := int(math.Ceil(q * float64(len(sorted))))
	if idx < 1 {
		idx = 1
	}
	if idx > len(sorted) {
		idx = len(sorted)
	}
	return sorted[idx-1]
}

func exactRankOf(sorted []float64, x float64) float64 {
	i := sort.SearchFloat64s(sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(sorted))
}

func TestUniformAccuracy(t *testing.T) {
	s := New(DefaultCompression)
	rng := rand.New(rand.NewPCG(1, 2))
	n := 200000
	data := make([]float64, n)
	for i := range data {
		data[i] = rng.Float64() * 1000
		s.Insert(data[i])
	}
	sort.Float64s(data)
	for _, q := range []float64{0.01, 0.05, 0.25, 0.5, 0.75, 0.95, 0.99, 0.999} {
		est, err := s.Quantile(q)
		if err != nil {
			t.Fatal(err)
		}
		rankErr := math.Abs(q - exactRankOf(data, est))
		// t-digest with δ=100 should stay well under 1% rank error, and
		// far tighter at the tails.
		bound := 0.01
		if q <= 0.05 || q >= 0.95 {
			bound = 0.003
		}
		if rankErr > bound {
			t.Errorf("q=%v: rank error %v > %v", q, rankErr, bound)
		}
	}
}

func TestTailsAreTighter(t *testing.T) {
	s := New(DefaultCompression)
	rng := rand.New(rand.NewPCG(5, 6))
	n := 300000
	data := make([]float64, n)
	for i := range data {
		data[i] = rng.ExpFloat64()
		s.Insert(data[i])
	}
	sort.Float64s(data)
	tailErr := 0.0
	for _, q := range []float64{0.99, 0.995, 0.999} {
		est, _ := s.Quantile(q)
		tailErr += math.Abs(q - exactRankOf(data, est))
	}
	midErr := 0.0
	for _, q := range []float64{0.4, 0.5, 0.6} {
		est, _ := s.Quantile(q)
		midErr += math.Abs(q - exactRankOf(data, est))
	}
	t.Logf("tail rank err sum=%v mid rank err sum=%v", tailErr, midErr)
	if tailErr > midErr+0.005 {
		t.Errorf("tails (%v) should not be looser than mid (%v)", tailErr, midErr)
	}
}

func TestCentroidCountBounded(t *testing.T) {
	s := New(100)
	rng := rand.New(rand.NewPCG(7, 8))
	for i := 0; i < 1000000; i++ {
		s.Insert(rng.NormFloat64())
	}
	if c := s.Centroids(); c > 200 {
		t.Errorf("centroid count %d, want ≤ ~2δ", c)
	}
}

func TestEmptyAndInvalid(t *testing.T) {
	s := New(100)
	if _, err := s.Quantile(0.5); err != sketch.ErrEmpty {
		t.Errorf("empty err = %v", err)
	}
	s.Insert(1)
	if _, err := s.Quantile(0); err == nil {
		t.Error("Quantile(0) should fail")
	}
	v, err := s.Quantile(1)
	if err != nil || v != 1 {
		t.Errorf("Quantile(1) = %v, %v", v, err)
	}
}

func TestMergeAccuracy(t *testing.T) {
	a, b := New(100), New(100)
	rng := rand.New(rand.NewPCG(11, 12))
	var all []float64
	for i := 0; i < 100000; i++ {
		x := rng.NormFloat64()*10 + 100
		all = append(all, x)
		if i%2 == 0 {
			a.Insert(x)
		} else {
			b.Insert(x)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != uint64(len(all)) {
		t.Fatalf("count %d, want %d", a.Count(), len(all))
	}
	sort.Float64s(all)
	for _, q := range []float64{0.1, 0.5, 0.9} {
		est, _ := a.Quantile(q)
		if re := math.Abs(q - exactRankOf(all, est)); re > 0.02 {
			t.Errorf("q=%v: rank error %v after merge", q, re)
		}
	}
}

func TestSerdeRoundTrip(t *testing.T) {
	s := New(100)
	rng := rand.New(rand.NewPCG(13, 14))
	for i := 0; i < 50000; i++ {
		s.Insert(rng.Float64())
	}
	blob, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var d Sketch
	if err := d.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if d.Count() != s.Count() {
		t.Fatal("count mismatch")
	}
	qa, _ := s.Quantile(0.9)
	qb, _ := d.Quantile(0.9)
	if qa != qb {
		t.Errorf("quantile mismatch: %v vs %v", qa, qb)
	}
	if err := d.UnmarshalBinary(blob[:9]); err == nil {
		t.Error("truncated blob should fail")
	}
}

// Property: count is conserved through any insert/merge sequence.
func TestQuickCountConserved(t *testing.T) {
	f := func(a, b []float32) bool {
		s1, s2 := New(50), New(50)
		for _, v := range a {
			s1.Insert(float64(v))
		}
		for _, v := range b {
			s2.Insert(float64(v))
		}
		want := s1.Count() + s2.Count()
		if err := s1.Merge(s2); err != nil {
			return false
		}
		return s1.Count() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: quantile estimates stay within [min, max].
func TestQuickEstimatesInRange(t *testing.T) {
	f := func(vals []float32, qFrac uint16) bool {
		if len(vals) == 0 {
			return true
		}
		s := New(50)
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range vals {
			x := float64(v)
			if math.IsNaN(x) {
				continue
			}
			s.Insert(x)
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		if s.Count() == 0 {
			return true
		}
		q := (float64(qFrac) + 1) / 65537
		est, err := s.Quantile(q)
		if err != nil {
			return false
		}
		return est >= lo && est <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
