package fastlog

import (
	"math"
	"math/rand/v2"
	"testing"
)

// The slope bounds must hold pointwise: for any x, the approximation
// error of ℓ against true log2 stays within the distortion the exported
// minimum slopes promise (ℓ is a reparametrization of log2 with
// derivative in [minSlope/ln2 · ln2, ...]; equivalently ℓ differences
// are at least minSlope times log2 differences).
func TestMinSlopeBounds(t *testing.T) {
	if !(CubicMinSlope > 0.9 && CubicMinSlope <= 1) {
		t.Errorf("CubicMinSlope = %v, expected just under 1", CubicMinSlope)
	}
	if math.Abs(LinearMinSlope-math.Ln2) > 1e-12 {
		t.Errorf("LinearMinSlope = %v, want ln2 = %v", LinearMinSlope, math.Ln2)
	}
	rng := rand.New(rand.NewPCG(11, 12))
	for i := 0; i < 50000; i++ {
		a := math.Exp(rng.Float64()*80 - 40)
		b := a * (1 + rng.Float64())
		trueDiff := math.Log2(b) - math.Log2(a)
		for name, fn := range map[string]struct {
			log2     func(float64) float64
			minSlope float64
		}{
			"cubic":  {Log2Cubic, CubicMinSlope},
			"linear": {Log2Linear, LinearMinSlope},
		} {
			got := fn.log2(b) - fn.log2(a)
			// ℓ must stretch log2 by at least minSlope (= min dℓ/dlog2) —
			// allow a hair of float slack on the comparison itself.
			if got < fn.minSlope*trueDiff*(1-1e-9)-1e-12 {
				t.Fatalf("%s: ℓ-diff %v under slope bound for log2-diff %v", name, got, trueDiff)
			}
		}
	}
}

// ℓ must be exact at powers of two and monotone across octave seams.
func TestLog2ExactAtPowersOfTwo(t *testing.T) {
	for e := -900; e <= 900; e += 37 {
		x := math.Ldexp(1, e)
		if got := Log2Cubic(x); got != float64(e) {
			t.Fatalf("Log2Cubic(2^%d) = %v", e, got)
		}
		if got := Log2Linear(x); got != float64(e) {
			t.Fatalf("Log2Linear(2^%d) = %v", e, got)
		}
	}
}

func TestMonotone(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	prevX := 0.0
	for i := 0; i < 20000; i++ {
		x := math.Exp(rng.Float64()*60 - 30)
		if x < prevX {
			x, prevX = prevX, x
		}
		if prevX > 0 {
			if Log2Cubic(x) < Log2Cubic(prevX) {
				t.Fatalf("Log2Cubic not monotone at %v vs %v", prevX, x)
			}
			if Log2Linear(x) < Log2Linear(prevX) {
				t.Fatalf("Log2Linear not monotone at %v vs %v", prevX, x)
			}
		}
		prevX = x
	}
}

// The inverses must invert to high relative precision over the full
// indexable range.
func TestInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	for i := 0; i < 50000; i++ {
		x := math.Exp(rng.Float64()*120 - 60)
		if back := Log2CubicInverse(Log2Cubic(x)); math.Abs(back-x)/x > 1e-9 {
			t.Fatalf("cubic inverse: %v -> %v", x, back)
		}
		if back := Log2LinearInverse(Log2Linear(x)); math.Abs(back-x)/x > 1e-12 {
			t.Fatalf("linear inverse: %v -> %v", x, back)
		}
	}
}

// The //sketch:hotpath contract: the approximations are pure float
// arithmetic, zero allocations.
func TestLog2Allocs(t *testing.T) {
	xs := make([]float64, 1024)
	state := uint64(0x9e3779b97f4a7c15)
	for i := range xs {
		state = state*6364136223846793005 + 1442695040888963407
		xs[i] = 1 + float64(state>>11)/float64(1<<53)*999
	}
	sink := 0.0
	for name, fn := range map[string]func(float64) float64{
		"cubic":  Log2Cubic,
		"linear": Log2Linear,
	} {
		avg := testing.AllocsPerRun(100, func() {
			for _, x := range xs {
				sink += fn(x)
			}
		})
		if avg > 0 {
			t.Errorf("%s allocates %.1f times per 1024 calls, want 0", name, avg)
		}
	}
	_ = sink
}
