// Package fastlog provides bit-trick approximations of log2 shared by
// the sketch index mappings: the binary exponent is read straight out of
// the IEEE 754 representation and log2 of the mantissa is approximated
// by a low-degree polynomial, so computing a bucket index costs a few
// multiply-adds instead of a transcendental call.
//
// The approximations are interpolations of log2(1+s) on s ∈ [0, 1) with
// P(0)=0 and P(1)=1, which makes ℓ(x) = exponent(x) + P(mantissa(x)−1)
// continuous and exactly one per octave: ℓ(2x) = ℓ(x)+1. A mapping built
// on top preserves a relative-accuracy guarantee *by construction*: the
// polynomial's worst-case slope distortion against the true log2 —
// min over s of P'(s)·(1+s)·ln2, exported as CubicMinSlope /
// LinearMinSlope — is folded into the caller's index multiplier, making
// buckets at most slightly narrower than exact log_γ buckets (more
// buckets, same guarantee, faster Index).
package fastlog

import "math"

// Cubic interpolation coefficients (the reference DDSketch
// implementation's CubicallyInterpolatedMapping polynomial):
// P(s) = C1·s + C2·s² + C3·s³, with P(1) = C1+C2+C3 = 1.
const (
	cubicC1 = 10.0 / 7
	cubicC2 = -3.0 / 5
	cubicC3 = 6.0 / 35
)

// MinIndexable is the smallest positive value the bit-trick ℓ handles
// exactly: below it (subnormals in particular) the exponent extraction
// no longer matches the value's true magnitude. Callers route smaller
// magnitudes to their exact-zero counters.
const MinIndexable = 0x1p-1000

// CubicMinSlope and LinearMinSlope are min over s ∈ [0,1] of
// P'(s)·(1+s)·ln2 — how far a true log2-width of 1 can be squeezed in ℓ
// units. A bucket of ℓ-width 1/m spans at most 1/(m·minSlope) in log2,
// so a multiplier of 1/(minSlope·log2(γ)) guarantees every bucket stays
// within ratio γ. Both are computed by the same 2^14-step scan the
// in-sketch polynomial mappings historically used, keeping multipliers
// bit-identical to previously serialized sketches.
var (
	CubicMinSlope  = minSlope(cubicDeriv)
	LinearMinSlope = minSlope(linearDeriv)
)

func cubicPoly(s float64) float64  { return ((cubicC3*s+cubicC2)*s + cubicC1) * s }
func cubicDeriv(s float64) float64 { return (3*cubicC3*s+2*cubicC2)*s + cubicC1 }
func linearDeriv(float64) float64  { return 1 }

// minSlope scans the distortion curve on a fixed grid; the polynomials
// are gentle cubics at most, so 2^14 steps over-resolves the minimum.
func minSlope(deriv func(float64) float64) float64 {
	m := math.Inf(1)
	const steps = 1 << 14
	for i := 0; i <= steps; i++ {
		s := float64(i) / steps
		slope := deriv(s) * (1 + s) * math.Ln2
		if slope < m {
			m = slope
		}
	}
	return m
}

// Log2Cubic approximates log2(x) for x ≥ MinIndexable via exponent
// extraction plus the cubic mantissa polynomial. Monotone in x; exact at
// powers of two.
//
//sketch:hotpath
func Log2Cubic(x float64) float64 {
	bits := math.Float64bits(x)
	e := float64(int((bits>>52)&0x7ff) - 1023)
	s := math.Float64frombits((bits&0x000fffffffffffff)|0x3ff0000000000000) - 1
	return e + ((cubicC3*s+cubicC2)*s+cubicC1)*s
}

// Log2CubicInverse returns the x with Log2Cubic(x) = y, inverting the
// mantissa polynomial by Newton iteration (monotone on [0, 1], so the
// iteration is safe; clamped for robustness at the seam).
func Log2CubicInverse(y float64) float64 {
	e := math.Floor(y)
	frac := y - e
	s := frac // good starting point: P ≈ identity-ish
	for i := 0; i < 16; i++ {
		f := ((cubicC3*s+cubicC2)*s+cubicC1)*s - frac
		if math.Abs(f) < 1e-14 {
			break
		}
		s -= f / ((3*cubicC3*s+2*cubicC2)*s + cubicC1)
		if s < 0 {
			s = 0
		} else if s > 1 {
			s = 1
		}
	}
	return math.Ldexp(1+s, int(e))
}

// Log2Linear approximates log2(x) with the identity mantissa polynomial
// P(s) = s — the cheapest ℓ, at the cost of the largest distortion
// (LinearMinSlope = ln2, ≈44% more buckets than exact).
//
//sketch:hotpath
func Log2Linear(x float64) float64 {
	bits := math.Float64bits(x)
	e := float64(int((bits>>52)&0x7ff) - 1023)
	s := math.Float64frombits((bits&0x000fffffffffffff)|0x3ff0000000000000) - 1
	return e + s
}

// Log2LinearInverse returns the x with Log2Linear(x) = y (closed form:
// the linear polynomial is its own inverse on the mantissa).
func Log2LinearInverse(y float64) float64 {
	e := math.Floor(y)
	return math.Ldexp(1+(y-e), int(e))
}
