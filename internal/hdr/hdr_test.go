package hdr

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/sketch"
)

func exactQuantile(sorted []float64, q float64) float64 {
	idx := int(math.Ceil(q * float64(len(sorted))))
	if idx < 1 {
		idx = 1
	}
	if idx > len(sorted) {
		idx = len(sorted)
	}
	return sorted[idx-1]
}

func TestPrecisionGuarantee(t *testing.T) {
	// 3 significant digits → relative quantization error ≤ 10^-3.
	h, err := New(1, 10_000_000, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 200000; i++ {
		v := int64(math.Exp(rng.Float64()*15) + 1)
		h.RecordValue(v)
		// Round-trip through the bucket structure.
		idx := h.countsIndexFor(v)
		lo, hi := h.valueFor(idx)
		if v < lo || v > hi {
			t.Fatalf("value %d outside its bucket [%d,%d]", v, lo, hi)
		}
		if float64(hi-lo) > math.Max(1, float64(v))/500 {
			t.Fatalf("bucket [%d,%d] too wide for value %d at 3 digits", lo, hi, v)
		}
	}
}

func TestQuantileAccuracy(t *testing.T) {
	h, err := New(1, 1_000_000, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(3, 4))
	n := 200000
	data := make([]float64, n)
	for i := range data {
		data[i] = math.Round(1/(1-rng.Float64())*100) + 1
		h.Insert(data[i])
	}
	sort.Float64s(data)
	for _, q := range []float64{0.05, 0.5, 0.95, 0.99} {
		truth := exactQuantile(data, q)
		est, err := h.Quantile(q)
		if err != nil {
			t.Fatal(err)
		}
		if re := math.Abs(est-truth) / truth; re > 0.01 {
			t.Errorf("q=%v: rel err %v at 2 significant digits", q, re)
		}
	}
}

func TestClampsToRange(t *testing.T) {
	h, err := New(10, 1000, 2)
	if err != nil {
		t.Fatal(err)
	}
	h.Insert(1)     // below range → clamps to 10
	h.Insert(99999) // above range → clamps to 1000
	h.Insert(-5)    // negative → clamps to 10
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	lo, _ := h.Quantile(0.3)
	hi, _ := h.Quantile(1)
	// Near the lowest discernible value the resolution is
	// 2^unitMagnitude (= 8 here), so the low estimate is that bucket's
	// midpoint, not exactly 10.
	if lo < 10 || lo > 16 {
		t.Errorf("low clamped quantile = %v, want within 10's bucket", lo)
	}
	if hi != 1000 {
		t.Errorf("high clamped quantile = %v, want 1000", hi)
	}
}

func TestInvalidConfig(t *testing.T) {
	if _, err := New(0, 100, 2); err == nil {
		t.Error("lowest 0 should fail")
	}
	if _, err := New(100, 150, 2); err == nil {
		t.Error("highest < 2*lowest should fail")
	}
	if _, err := New(1, 100, 0); err == nil {
		t.Error("0 digits should fail")
	}
	if _, err := New(1, 100, 6); err == nil {
		t.Error("6 digits should fail")
	}
}

func TestMergeAndSerde(t *testing.T) {
	mk := func() *Histogram {
		h, err := New(1, 100000, 3)
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	a, b := mk(), mk()
	rng := rand.New(rand.NewPCG(5, 6))
	for i := 0; i < 50000; i++ {
		a.Insert(rng.Float64()*1000 + 1)
		b.Insert(rng.Float64()*5000 + 1)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != 100000 {
		t.Fatalf("merged count %d", a.Count())
	}
	blob, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	c := mk()
	if err := c.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	qa, _ := a.Quantile(0.9)
	qc, _ := c.Quantile(0.9)
	if qa != qc {
		t.Errorf("round trip: %v != %v", qa, qc)
	}
	if err := c.UnmarshalBinary(blob[:11]); err == nil {
		t.Error("truncated blob should fail")
	}
	other, _ := New(1, 100000, 2)
	if err := a.Merge(other); err == nil {
		t.Error("config mismatch should fail")
	}
}

func TestEmpty(t *testing.T) {
	h, _ := New(1, 1000, 2)
	if _, err := h.Quantile(0.5); err != sketch.ErrEmpty {
		t.Errorf("empty err = %v", err)
	}
}

// Property: rank is monotone and consistent with quantile.
func TestQuickRankQuantileConsistency(t *testing.T) {
	h, _ := New(1, 1_000_000, 3)
	rng := rand.New(rand.NewPCG(7, 8))
	for i := 0; i < 50000; i++ {
		h.Insert(rng.Float64()*10000 + 1)
	}
	f := func(qFrac uint16) bool {
		q := (float64(qFrac) + 1) / 65537
		v, err := h.Quantile(q)
		if err != nil {
			return false
		}
		r, err := h.Rank(v)
		if err != nil {
			return false
		}
		// Rank of the estimate must reach q (within one bucket's mass).
		return r >= q-0.01
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
