// Package hdr implements the HDR Histogram (Tene), the modern
// linear-within-exponential histogram the study surveys in Sec 5.2.2:
// values in a configured trackable range are bucketed so that every
// recorded value is resolved to the configured number of significant
// decimal digits, giving a relative-accuracy style guarantee like
// DDSketch's.
//
// The study cites Masson et al.'s comparison — HDR ≈ DDSketch on
// accuracy and insertion speed, worse on merge speed and total size —
// as the reason HDR is excluded from the main evaluation; this
// implementation lets the `related` experiment verify that claim.
//
// Layout (faithful to the reference design): values are split into
// exponential "buckets" (each covering a power-of-two range) and, within
// each bucket, subBucketCount linear sub-buckets; subBucketCount is the
// smallest power of two ≥ 2·10^digits, which bounds the relative
// quantization error by 10^−digits.
package hdr

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/sketch"
)

// Histogram is an HDR histogram over an integer value range. Float
// streams are recorded at a configured unit scale (e.g. microseconds).
type Histogram struct {
	lowest  int64 // lowest discernible value (≥ 1)
	highest int64 // highest trackable value
	digits  int   // significant decimal digits (1..5)

	subBucketCount     int
	subBucketHalfCount int
	subBucketMask      int64
	unitMagnitude      uint
	bucketCount        int

	counts []int64
	total  int64
	min    int64
	max    int64
}

var _ sketch.Sketch = (*Histogram)(nil)

// New returns an HDR histogram tracking values in [lowest, highest] at
// the given significant decimal digits.
func New(lowest, highest int64, digits int) (*Histogram, error) {
	if lowest < 1 {
		return nil, fmt.Errorf("hdr: lowest discernible value must be >= 1, got %d", lowest)
	}
	if highest < 2*lowest {
		return nil, fmt.Errorf("hdr: highest (%d) must be >= 2*lowest (%d)", highest, lowest)
	}
	if digits < 1 || digits > 5 {
		return nil, fmt.Errorf("hdr: significant digits must be in [1,5], got %d", digits)
	}
	h := &Histogram{lowest: lowest, highest: highest, digits: digits, min: math.MaxInt64}
	largest := 2 * int64(math.Pow(10, float64(digits)))
	subBucketCountMag := uint(math.Ceil(math.Log2(float64(largest))))
	h.subBucketCount = 1 << subBucketCountMag
	h.subBucketHalfCount = h.subBucketCount / 2
	h.unitMagnitude = uint(math.Floor(math.Log2(float64(lowest))))
	h.subBucketMask = int64(h.subBucketCount-1) << h.unitMagnitude

	// Number of exponential buckets needed to cover highest.
	smallestUntrackable := int64(h.subBucketCount) << h.unitMagnitude
	buckets := 1
	for smallestUntrackable <= highest {
		if smallestUntrackable > math.MaxInt64/2 {
			buckets++
			break
		}
		smallestUntrackable <<= 1
		buckets++
	}
	h.bucketCount = buckets
	h.counts = make([]int64, (buckets+1)*h.subBucketHalfCount)
	return h, nil
}

// Name implements sketch.Sketch.
func (h *Histogram) Name() string { return "hdr" }

// SignificantDigits returns the configured precision.
func (h *Histogram) SignificantDigits() int { return h.digits }

// countsIndexFor maps a raw value to its slot.
func (h *Histogram) countsIndexFor(v int64) int {
	bucketIdx := h.bucketIndex(v)
	subIdx := h.subBucketIndex(v, bucketIdx)
	base := (bucketIdx + 1) << uint(bits.Len(uint(h.subBucketHalfCount))-1)
	return base + subIdx - h.subBucketHalfCount
}

func (h *Histogram) bucketIndex(v int64) int {
	return bits.Len64(uint64(v|h.subBucketMask)) - bits.Len(uint(h.subBucketCount-1)) - int(h.unitMagnitude)
}

func (h *Histogram) subBucketIndex(v int64, bucketIdx int) int {
	return int(v >> (uint(bucketIdx) + h.unitMagnitude))
}

// valueFor reconstructs the (lowest) value of a slot; the representative
// returned to callers is the midpoint of the slot's range.
func (h *Histogram) valueFor(index int) (low, high int64) {
	shift := bits.Len(uint(h.subBucketHalfCount)) - 1
	bucketIdx := index>>uint(shift) - 1
	subIdx := index&(h.subBucketHalfCount-1) + h.subBucketHalfCount
	if bucketIdx < 0 {
		bucketIdx = 0
		subIdx = index & (h.subBucketCount - 1)
	}
	low = int64(subIdx) << (uint(bucketIdx) + h.unitMagnitude)
	high = low + (1 << (uint(bucketIdx) + h.unitMagnitude)) - 1
	return
}

// RecordValue adds one integer observation, clamping to the trackable
// range.
func (h *Histogram) RecordValue(v int64) { h.RecordValues(v, 1) }

// RecordValues adds n occurrences of v in O(1).
func (h *Histogram) RecordValues(v int64, n uint64) {
	if n == 0 {
		return
	}
	if v < h.lowest {
		v = h.lowest
	}
	if v > h.highest {
		v = h.highest
	}
	h.counts[h.countsIndexFor(v)] += int64(n)
	h.total += int64(n)
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// InsertN implements sketch.BulkInserter.
func (h *Histogram) InsertN(x float64, n uint64) {
	if math.IsNaN(x) {
		return
	}
	h.RecordValues(int64(math.Round(x)), n)
}

// Insert implements sketch.Sketch: float values are rounded to integers
// (record at an appropriate unit scale for sub-unit resolution). NaNs
// and non-positive values are clamped to the lowest discernible value.
func (h *Histogram) Insert(x float64) {
	if math.IsNaN(x) {
		return
	}
	h.RecordValue(int64(math.Round(x)))
}

// Count implements sketch.Sketch.
func (h *Histogram) Count() uint64 { return uint64(h.total) }

// Quantile implements sketch.Sketch.
func (h *Histogram) Quantile(q float64) (float64, error) {
	if err := sketch.CheckQuantile(q); err != nil {
		return 0, err
	}
	if h.total == 0 {
		return 0, sketch.ErrEmpty
	}
	target := int64(math.Ceil(q * float64(h.total)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		cum += c
		if cum >= target {
			low, high := h.valueFor(i)
			mid := (low + high + 1) / 2
			if mid < h.min {
				mid = h.min
			}
			if mid > h.max {
				mid = h.max
			}
			return float64(mid), nil
		}
	}
	return float64(h.max), nil
}

// Rank implements sketch.Sketch.
func (h *Histogram) Rank(x float64) (float64, error) {
	if h.total == 0 {
		return 0, sketch.ErrEmpty
	}
	v := int64(math.Round(x))
	if v < h.lowest {
		return 0, nil
	}
	if v > h.highest {
		v = h.highest
	}
	idx := h.countsIndexFor(v)
	var le int64
	for i := 0; i <= idx && i < len(h.counts); i++ {
		le += h.counts[i]
	}
	return float64(le) / float64(h.total), nil
}

// Merge implements sketch.Sketch: slot-wise addition for identically
// configured histograms.
func (h *Histogram) Merge(other sketch.Sketch) error {
	o, ok := other.(*Histogram)
	if !ok {
		return fmt.Errorf("%w: cannot merge %s into hdr", sketch.ErrIncompatible, other.Name())
	}
	if o.lowest != h.lowest || o.highest != h.highest || o.digits != h.digits {
		return fmt.Errorf("%w: hdr config mismatch", sketch.ErrIncompatible)
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.total += o.total
	if o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	return nil
}

// MemoryBytes implements sketch.Sketch: the full preallocated count
// array (HDR's design point — and why its total size compares poorly to
// DDSketch's, per the study).
func (h *Histogram) MemoryBytes() int { return 8 * (len(h.counts) + 6) }

// Slots reports the allocated count-array length.
func (h *Histogram) Slots() int { return len(h.counts) }

// Reset implements sketch.Sketch.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.total = 0
	h.min = math.MaxInt64
	h.max = 0
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (h *Histogram) MarshalBinary() ([]byte, error) {
	w := sketch.NewWriter(64 + 8*len(h.counts))
	w.Byte(0x08) // private tag: hdr is not part of the study's five
	w.Byte(sketch.SerdeVersion)
	w.I64(h.lowest)
	w.I64(h.highest)
	w.U32(uint32(h.digits))
	w.I64(h.total)
	w.I64(h.min)
	w.I64(h.max)
	w.I64s(h.counts)
	return w.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (h *Histogram) UnmarshalBinary(data []byte) error {
	r := sketch.NewReader(data)
	if r.Byte() != 0x08 || r.Byte() != sketch.SerdeVersion {
		return sketch.ErrCorrupt
	}
	lowest := r.I64()
	highest := r.I64()
	digits := int(r.U32())
	total := r.I64()
	minV := r.I64()
	maxV := r.I64()
	counts := r.I64s()
	if r.Err() != nil {
		return r.Err()
	}
	if lowest < 1 || highest < 2 || highest > 1<<50 {
		return sketch.ErrCorrupt
	}
	nh, err := New(lowest, highest, digits)
	if err != nil {
		return sketch.ErrCorrupt
	}
	if len(counts) != len(nh.counts) || r.Remaining() != 0 {
		return sketch.ErrCorrupt
	}
	copy(nh.counts, counts)
	nh.total = total
	nh.min = minV
	nh.max = maxV
	*h = *nh
	return nil
}
