// Package faultinject provides deterministic fault injection for the
// stream engine, in the nil-guarded hook style of internal/obs: a nil
// *Plan disables every hook at the cost of one predictable branch, and
// an armed Plan fires each configured fault exactly once at a
// deterministic point (worker w's n-th insert, the n-th shipped batch,
// checkpoint sequence s), so a "chaotic" run is exactly reproducible.
//
// Faults are one-shot by design: the fired flags live on the Plan and
// survive engine restarts, so a crash-recovery loop that re-runs the
// same Plan does not re-crash on the replayed events.
package faultinject

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/checkpoint"
)

// Fault is the value an injected panic throws. Recovery code can
// distinguish injected crashes from real bugs by type-asserting the
// recovered value.
type Fault struct {
	// Worker is the worker index that crashed (0 is the engine
	// goroutine on the serial path).
	Worker int
	// Event is the worker-local insert count at which the crash fired.
	Event int64
}

func (f Fault) String() string {
	return fmt.Sprintf("injected panic: worker %d at event %d", f.Worker, f.Event)
}

// Plan is a deterministic fault schedule. The zero value (or a nil
// pointer) injects nothing; arm faults with the With* builders or
// Parse. A single Plan may be shared by an engine, its recovery
// restarts, and a wrapped Store — that sharing is what makes the
// one-shot semantics hold across crash/resume cycles.
type Plan struct {
	panicWorker int
	panicEvent  int64
	panicArmed  bool
	panicFired  atomic.Bool

	stallPart  int
	stallEvent int64
	stallDur   time.Duration
	stallArmed bool
	stallFired atomic.Bool

	dupBatch int64
	dupArmed bool
	dupFired atomic.Bool

	corruptSeq   uint64
	corruptMode  string
	corruptArmed bool
	corruptFired atomic.Bool

	// Transient store faults: unlike corruption (silent damage), these
	// make Put fail loudly in ways a retrying store can absorb.
	eioSeq   uint64
	eioLeft  atomic.Int64 // failures remaining; <= 0 disarms
	eioArmed bool

	slowSeq   uint64
	slowDur   time.Duration
	slowArmed bool
	slowFired atomic.Bool

	tornSeq   uint64
	tornArmed bool
	tornFired atomic.Bool
}

// New returns an empty (inert) Plan.
func New() *Plan { return &Plan{} }

// WithPanic arms a panic on worker's event-th insert (worker-local,
// zero-based). The panic value is a Fault. It panics if event is
// negative — the fault point must exist.
func (p *Plan) WithPanic(worker int, event int64) *Plan {
	if event < 0 {
		panic("faultinject: panic event must be >= 0")
	}
	p.panicWorker, p.panicEvent, p.panicArmed = worker, event, true
	return p
}

// WithStall arms a stall: the worker inserting partition part's
// event-th value (partition-local, zero-based) sleeps for d before
// proceeding — backpressure without state loss.
func (p *Plan) WithStall(part int, event int64, d time.Duration) *Plan {
	p.stallPart, p.stallEvent, p.stallDur, p.stallArmed = part, event, d, true
	return p
}

// WithDuplicateBatch arms duplicate delivery of the n-th shipped event
// batch (zero-based): the engine ships it twice, exercising the
// workers' sequence-number dedupe.
func (p *Plan) WithDuplicateBatch(n int64) *Plan {
	p.dupBatch, p.dupArmed = n, true
	return p
}

// Corruption modes for WithCorruptCheckpoint.
const (
	CorruptTruncate = "truncate"
	CorruptBitflip  = "bitflip"
)

// WithCorruptCheckpoint arms checkpoint corruption: the snapshot stored
// under seq is truncated or bit-flipped on its way into the store
// (silently — the Put succeeds), so the damage is only discoverable by
// checksum validation at resume time.
func (p *Plan) WithCorruptCheckpoint(seq uint64, mode string) *Plan {
	p.corruptSeq, p.corruptMode, p.corruptArmed = seq, mode, true
	return p
}

// WithEIO arms a transient write failure: the Put for checkpoint seq
// fails its first n attempts with an error wrapping syscall.EIO, then
// succeeds — the shape checkpoint.RetryStore is built to absorb.
func (p *Plan) WithEIO(seq uint64, n int64) *Plan {
	if n < 1 {
		panic("faultinject: eio failure count must be >= 1")
	}
	p.eioSeq, p.eioArmed = seq, true
	p.eioLeft.Store(n)
	return p
}

// WithSlowPut arms a one-shot stall on the Put for checkpoint seq: the
// write sleeps for d before reaching the store, modelling a disk that
// went away briefly without failing.
func (p *Plan) WithSlowPut(seq uint64, d time.Duration) *Plan {
	if d < 0 {
		panic("faultinject: slow duration must be >= 0")
	}
	p.slowSeq, p.slowDur, p.slowArmed = seq, d, true
	return p
}

// WithTornPut arms a one-shot torn write on checkpoint seq: the first
// Put writes only half the payload to the store and then reports EIO,
// so a retry must overwrite the partial record. Against DirStore the
// half-written file lands under the final name, exercising both the
// retry path and the envelope checksum that guards reads.
func (p *Plan) WithTornPut(seq uint64) *Plan {
	p.tornSeq, p.tornArmed = seq, true
	return p
}

// OnEvent is the per-insert hook: worker is the inserting worker,
// part the event's partition, workerEvent and partEvent the
// worker-local and partition-local insert counts (zero-based). It may
// sleep (stall fault) or panic with a Fault (panic fault). Nil-safe.
func (p *Plan) OnEvent(worker, part int, workerEvent, partEvent int64) {
	if p == nil {
		return
	}
	if p.stallArmed && part == p.stallPart && partEvent == p.stallEvent &&
		p.stallFired.CompareAndSwap(false, true) {
		time.Sleep(p.stallDur)
	}
	if p.panicArmed && worker == p.panicWorker && workerEvent == p.panicEvent &&
		p.panicFired.CompareAndSwap(false, true) {
		panic(Fault{Worker: worker, Event: workerEvent})
	}
}

// DuplicateBatch reports whether the shipped-th batch (zero-based)
// should be delivered twice. Nil-safe.
func (p *Plan) DuplicateBatch(shipped int64) bool {
	if p == nil || !p.dupArmed || shipped != p.dupBatch {
		return false
	}
	return p.dupFired.CompareAndSwap(false, true)
}

// WrapStore wraps store so the configured checkpoint faults (silent
// corruption and the loud transient failures) are applied on Put. With
// no store fault armed (or a nil Plan) it returns store unchanged.
func (p *Plan) WrapStore(store checkpoint.Store) checkpoint.Store {
	if p == nil || store == nil ||
		(!p.corruptArmed && !p.eioArmed && !p.slowArmed && !p.tornArmed) {
		return store
	}
	return &corruptingStore{Store: store, plan: p}
}

// corruptingStore applies the plan's checkpoint faults on Put.
type corruptingStore struct {
	checkpoint.Store
	plan *Plan
}

func (c *corruptingStore) Put(seq uint64, data []byte) error {
	p := c.plan
	if p.slowArmed && seq == p.slowSeq && p.slowFired.CompareAndSwap(false, true) {
		time.Sleep(p.slowDur)
	}
	if p.tornArmed && seq == p.tornSeq && p.tornFired.CompareAndSwap(false, true) {
		// Land the partial record under the final key, then fail: only
		// a retry (or the envelope checksum at read time) saves us.
		_ = c.Store.Put(seq, data[:len(data)/2])
		return fmt.Errorf("faultinject: torn write at seq %d: %w", seq, syscall.EIO)
	}
	if p.eioArmed && seq == p.eioSeq && p.eioLeft.Load() > 0 {
		if left := p.eioLeft.Add(-1); left >= 0 {
			return fmt.Errorf("faultinject: transient write failure at seq %d (%d more): %w",
				seq, left, syscall.EIO)
		}
	}
	if p.corruptArmed && seq == p.corruptSeq && p.corruptFired.CompareAndSwap(false, true) {
		switch p.corruptMode {
		case CorruptTruncate:
			data = data[:len(data)/2]
		default: // CorruptBitflip
			flipped := make([]byte, len(data))
			copy(flipped, data)
			flipped[len(flipped)/2] ^= 0x10
			data = flipped
		}
	}
	return c.Store.Put(seq, data)
}

// Parse builds a Plan from a comma-separated fault spec, the
// `quantbench -fault` syntax:
//
//	panic@w<worker>:<event>          panic worker w at its event-th insert
//	stall@p<part>:<event>:<duration> stall partition part for duration
//	dup@<batch>                      deliver the batch-th batch twice
//	corrupt@<seq>:truncate|bitflip   damage checkpoint seq on Put
//	eio@<seq>:<n>                    fail checkpoint seq's first n Puts with EIO
//	slow@<seq>:<duration>            stall checkpoint seq's Put once
//	torn@<seq>                       write half of checkpoint seq, then fail once
//
// Example: -fault "panic@w1:5000,corrupt@2:bitflip,eio@3:2".
func Parse(spec string) (*Plan, error) {
	p := New()
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kind, arg, ok := strings.Cut(part, "@")
		if !ok {
			return nil, fmt.Errorf("faultinject: %q: want <kind>@<args>", part)
		}
		switch kind {
		case "panic":
			rest, okW := strings.CutPrefix(arg, "w")
			wStr, evStr, okC := strings.Cut(rest, ":")
			if !okW || !okC {
				return nil, fmt.Errorf("faultinject: %q: want panic@w<worker>:<event>", part)
			}
			w, err1 := strconv.Atoi(wStr)
			ev, err2 := strconv.ParseInt(evStr, 10, 64)
			if err1 != nil || err2 != nil || w < 0 || ev < 0 {
				return nil, fmt.Errorf("faultinject: %q: bad worker or event", part)
			}
			p.WithPanic(w, ev)
		case "stall":
			rest, okP := strings.CutPrefix(arg, "p")
			fields := strings.Split(rest, ":")
			if !okP || len(fields) != 3 {
				return nil, fmt.Errorf("faultinject: %q: want stall@p<part>:<event>:<duration>", part)
			}
			pt, err1 := strconv.Atoi(fields[0])
			ev, err2 := strconv.ParseInt(fields[1], 10, 64)
			d, err3 := time.ParseDuration(fields[2])
			if err1 != nil || err2 != nil || err3 != nil || pt < 0 || ev < 0 || d < 0 {
				return nil, fmt.Errorf("faultinject: %q: bad partition, event or duration", part)
			}
			p.WithStall(pt, ev, d)
		case "dup":
			n, err := strconv.ParseInt(arg, 10, 64)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("faultinject: %q: want dup@<batch>", part)
			}
			p.WithDuplicateBatch(n)
		case "corrupt":
			seqStr, mode, okC := strings.Cut(arg, ":")
			seq, err := strconv.ParseUint(seqStr, 10, 64)
			if !okC || err != nil || (mode != CorruptTruncate && mode != CorruptBitflip) {
				return nil, fmt.Errorf("faultinject: %q: want corrupt@<seq>:truncate|bitflip", part)
			}
			p.WithCorruptCheckpoint(seq, mode)
		case "eio":
			seqStr, nStr, okC := strings.Cut(arg, ":")
			seq, err1 := strconv.ParseUint(seqStr, 10, 64)
			n, err2 := strconv.ParseInt(nStr, 10, 64)
			if !okC || err1 != nil || err2 != nil || n < 1 {
				return nil, fmt.Errorf("faultinject: %q: want eio@<seq>:<n>", part)
			}
			p.WithEIO(seq, n)
		case "slow":
			seqStr, dStr, okC := strings.Cut(arg, ":")
			seq, err1 := strconv.ParseUint(seqStr, 10, 64)
			d, err2 := time.ParseDuration(dStr)
			if !okC || err1 != nil || err2 != nil || d < 0 {
				return nil, fmt.Errorf("faultinject: %q: want slow@<seq>:<duration>", part)
			}
			p.WithSlowPut(seq, d)
		case "torn":
			seq, err := strconv.ParseUint(arg, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faultinject: %q: want torn@<seq>", part)
			}
			p.WithTornPut(seq)
		default:
			return nil, fmt.Errorf("faultinject: unknown fault kind %q (panic, stall, dup, corrupt, eio, slow, torn)", kind)
		}
	}
	return p, nil
}
