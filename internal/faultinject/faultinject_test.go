package faultinject

import (
	"strings"
	"testing"
	"time"

	"repro/internal/checkpoint"
)

func TestNilPlanIsInert(t *testing.T) {
	var p *Plan
	p.OnEvent(0, 0, 0, 0) // must not panic
	if p.DuplicateBatch(0) {
		t.Error("nil plan duplicates batches")
	}
	store := checkpoint.NewMemStore()
	if got := p.WrapStore(store); got != checkpoint.Store(store) {
		t.Error("nil plan wraps the store")
	}
}

func TestPanicFiresOnce(t *testing.T) {
	p := New().WithPanic(1, 5)
	fire := func(worker int, ev int64) (panicked bool) {
		defer func() { panicked = recover() != nil }()
		p.OnEvent(worker, 0, ev, ev)
		return false
	}
	if fire(0, 5) {
		t.Error("panic fired on the wrong worker")
	}
	if fire(1, 4) {
		t.Error("panic fired on the wrong event")
	}
	if !fire(1, 5) {
		t.Error("panic did not fire at its point")
	}
	if fire(1, 5) {
		t.Error("one-shot panic fired twice (recovery would re-crash)")
	}
}

func TestDuplicateBatchFiresOnce(t *testing.T) {
	p := New().WithDuplicateBatch(3)
	if p.DuplicateBatch(2) || !p.DuplicateBatch(3) || p.DuplicateBatch(3) {
		t.Error("duplicate-batch fault is not exactly-once at batch 3")
	}
}

func TestCorruptingStore(t *testing.T) {
	inner := checkpoint.NewMemStore()
	p := New().WithCorruptCheckpoint(2, CorruptBitflip)
	store := p.WrapStore(inner)
	for seq := uint64(1); seq <= 2; seq++ {
		if err := store.Put(seq, []byte{1, 2, 3, 4}); err != nil {
			t.Fatal(err)
		}
	}
	clean, _ := inner.Get(1)
	dirty, _ := inner.Get(2)
	if string(clean) != string([]byte{1, 2, 3, 4}) {
		t.Errorf("untargeted seq was altered: %v", clean)
	}
	if string(dirty) == string([]byte{1, 2, 3, 4}) {
		t.Error("targeted seq was stored unaltered")
	}
	// One-shot: a re-Put of the same seq goes through clean.
	if err := store.Put(2, []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if redo, _ := inner.Get(2); string(redo) != string([]byte{1, 2, 3, 4}) {
		t.Error("corruption fired twice")
	}
}

func TestEIOStore(t *testing.T) {
	inner := checkpoint.NewMemStore()
	p := New().WithEIO(2, 2)
	store := p.WrapStore(inner)
	if err := store.Put(1, []byte{9}); err != nil {
		t.Fatalf("untargeted seq failed: %v", err)
	}
	for i := 0; i < 2; i++ {
		err := store.Put(2, []byte{1, 2})
		if err == nil {
			t.Fatalf("attempt %d: eio fault did not fire", i)
		}
		if !checkpoint.IsTransient(err) {
			t.Fatalf("attempt %d: eio error %v not classified transient", i, err)
		}
	}
	if err := store.Put(2, []byte{1, 2}); err != nil {
		t.Fatalf("third attempt should succeed: %v", err)
	}
	if got, _ := inner.Get(2); string(got) != string([]byte{1, 2}) {
		t.Errorf("payload after recovery = %v", got)
	}
}

func TestTornPutStore(t *testing.T) {
	inner := checkpoint.NewMemStore()
	p := New().WithTornPut(1)
	store := p.WrapStore(inner)
	payload := []byte{1, 2, 3, 4, 5, 6}
	err := store.Put(1, payload)
	if err == nil || !checkpoint.IsTransient(err) {
		t.Fatalf("torn put error = %v, want transient failure", err)
	}
	// The partial record landed — exactly the hazard the envelope
	// checksum and the retry overwrite exist for.
	if got, _ := inner.Get(1); len(got) != len(payload)/2 {
		t.Fatalf("partial record = %v, want half of %v", got, payload)
	}
	if err := store.Put(1, payload); err != nil {
		t.Fatalf("retry after torn write: %v", err)
	}
	if got, _ := inner.Get(1); string(got) != string(payload) {
		t.Errorf("record after retry = %v", got)
	}
}

// TestRetryStoreAbsorbsInjectedFaults is the integration seam: a
// faultinject-wrapped store under checkpoint.RetryStore completes
// without the caller ever seeing an error.
func TestRetryStoreAbsorbsInjectedFaults(t *testing.T) {
	inner := checkpoint.NewMemStore()
	p := New().WithEIO(1, 3)
	rs := &checkpoint.RetryStore{
		Inner: p.WrapStore(inner),
		Sleep: func(time.Duration) {},
	}
	if err := rs.Put(1, []byte("snap")); err != nil {
		t.Fatalf("retry store surfaced injected fault: %v", err)
	}
	if got, _ := inner.Get(1); string(got) != "snap" {
		t.Errorf("payload = %q", got)
	}
}

func TestParse(t *testing.T) {
	p, err := Parse("panic@w1:5000, stall@p2:100:50ms, dup@7, corrupt@3:truncate")
	if err != nil {
		t.Fatal(err)
	}
	if !p.panicArmed || p.panicWorker != 1 || p.panicEvent != 5000 {
		t.Errorf("panic fault parsed as %+v", p)
	}
	if !p.stallArmed || p.stallPart != 2 || p.stallEvent != 100 || p.stallDur != 50*time.Millisecond {
		t.Errorf("stall fault parsed wrong")
	}
	if !p.dupArmed || p.dupBatch != 7 {
		t.Errorf("dup fault parsed wrong")
	}
	if !p.corruptArmed || p.corruptSeq != 3 || p.corruptMode != CorruptTruncate {
		t.Errorf("corrupt fault parsed wrong")
	}

	p2, err := Parse("eio@4:2, slow@5:20ms, torn@6")
	if err != nil {
		t.Fatal(err)
	}
	if !p2.eioArmed || p2.eioSeq != 4 || p2.eioLeft.Load() != 2 {
		t.Errorf("eio fault parsed wrong")
	}
	if !p2.slowArmed || p2.slowSeq != 5 || p2.slowDur != 20*time.Millisecond {
		t.Errorf("slow fault parsed wrong")
	}
	if !p2.tornArmed || p2.tornSeq != 6 {
		t.Errorf("torn fault parsed wrong")
	}

	for _, bad := range []string{
		"panic@5000", "panic@w1", "stall@p1:2", "dup@x",
		"corrupt@1:melt", "jitter@5", "panic",
		"eio@1:0", "eio@1", "slow@1:fast", "torn@x",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
	if _, err := Parse(""); err != nil {
		t.Errorf("empty spec rejected: %v", err)
	}
}

func TestFaultString(t *testing.T) {
	f := Fault{Worker: 2, Event: 99}
	if s := f.String(); !strings.Contains(s, "worker 2") || !strings.Contains(s, "99") {
		t.Errorf("Fault.String() = %q", s)
	}
}
