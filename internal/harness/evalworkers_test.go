package harness

import (
	"reflect"
	"testing"

	"repro/internal/datagen"
)

// TestEvalWorkersDeterminism pins the parallel accuracy-evaluation
// contract: the rendered accuracy table must be byte-identical whether
// windows are evaluated inline or by a pool of workers. Runs under
// -race in scripts/verify.sh, which also exercises the pool for data
// races against the stream replay.
func TestEvalWorkersDeterminism(t *testing.T) {
	run := func(workers int) Table {
		t.Helper()
		o := tinyOpts()
		o.EvalWorkers = workers
		tbl, err := RunAccuracy(o, datagen.DatasetPareto)
		if err != nil {
			t.Fatal(err)
		}
		return tbl
	}
	sequential := run(1)
	parallel := run(4)
	if !reflect.DeepEqual(sequential, parallel) {
		t.Fatalf("accuracy output differs between EvalWorkers=1 and =4:\n%s\nvs\n%s",
			sequential.Render(), parallel.Render())
	}
}
