package harness

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/ddsketch"
	"repro/internal/kll"
	"repro/internal/kllpm"
	"repro/internal/moments"
	"repro/internal/sketch"
	"repro/internal/stats"
	"repro/internal/uddsketch"
)

func init() {
	register(Experiment{
		ID:    "ablation-mapping",
		Title: "DDSketch index-mapping ablation: exact log vs cubic vs linear interpolation",
		Ref:   "Sec 4.4.1 (DDSketch implementation design)",
		Run:   runMappingAblation,
	})
	register(Experiment{
		ID:    "ablation-grid",
		Title: "Moments Sketch solver-grid ablation: accuracy vs query time",
		Ref:   "Sec 4.5.5",
		Run:   runGridAblation,
	})
	register(Experiment{
		ID:    "ablation-uddstore",
		Title: "UDDSketch store ablation: the paper's map store vs a dense array store",
		Ref:   "Sec 4.4.1/4.4.3",
		Run:   runUDDStoreAblation,
	})
	register(Experiment{
		ID:    "ablation-logmoments",
		Title: "Moments Sketch: study's standard-only variant vs the original joint log-moments design",
		Ref:   "Sec 4.3 (implementation footnote)",
		Run:   runLogMomentsAblation,
	})
	register(Experiment{
		ID:    "ablation-partitions",
		Title: "Window partitioning: accuracy invariance under P-way sketch merging",
		Ref:   "Sec 2.4",
		Run:   runPartitionsAblation,
	})
	register(Experiment{
		ID:    "ablation-deletion",
		Title: "KLL± turnstile extension: deletion support cost vs plain KLL",
		Ref:   "Sec 3.1 / [40]",
		Run:   runDeletionAblation,
	})
}

// runMappingAblation quantifies the index-mapping trade-off behind
// DDSketch's insert speed (the paper attributes DDSketch's lead to cheap
// bucket derivation, Sec 4.4.1): interpolated mappings avoid the log()
// call per insert at the cost of slightly more buckets.
func runMappingAblation(opts Options) ([]Table, error) {
	n := opts.scaled(10_000_000)
	buf := presample(minInt(n, 1_000_000), opts.Seed^0x3a3a)
	tbl := Table{
		Title:   fmt.Sprintf("DDSketch mapping/store ablation (α=0.01, %d Pareto inserts)", n),
		Headers: []string{"mapping", "store", "insert/op", "buckets", "memory KB", "p99 rel err"},
		Notes: []string{
			"cubic ≈ exact bucket count without the per-insert log(); linear trades ~44% more buckets for the cheapest indexing",
			"the buffered-paginated store pays only for touched bucket pages; the dense store pays for the whole index span",
		},
	}
	dense := func() ddsketch.Store { return ddsketch.NewDenseStore() }
	paginated := func() ddsketch.Store { return ddsketch.NewBufferedPaginatedStore() }
	type variant struct {
		name  string
		make  func() (ddsketch.IndexMapping, error)
		store string
		newSt func() ddsketch.Store
	}
	variants := []variant{
		{"logarithmic", func() (ddsketch.IndexMapping, error) { return ddsketch.NewLogarithmic(0.01) }, "dense", dense},
		{"cubic", func() (ddsketch.IndexMapping, error) { return ddsketch.NewCubicMapping(0.01) }, "dense", dense},
		{"linear", func() (ddsketch.IndexMapping, error) { return ddsketch.NewLinearMapping(0.01) }, "dense", dense},
		{"cubic", func() (ddsketch.IndexMapping, error) { return ddsketch.NewCubicMapping(0.01) }, "paginated", paginated},
	}
	data := make([]float64, minInt(n, 1_000_000))
	copy(data, buf[:len(data)])
	exact := stats.NewExactQuantiles(data)
	for _, v := range variants {
		m, err := v.make()
		if err != nil {
			return nil, err
		}
		sk, err := ddsketch.NewWithMapping(m, v.newSt)
		if err != nil {
			return nil, err
		}
		d := measure(func() {
			for i := 0; i < n; i++ {
				sk.Insert(buf[i%len(buf)])
			}
		})
		est, err := sk.Quantile(0.99)
		if err != nil {
			return nil, err
		}
		// Ground truth covers one buffer cycle; with n a multiple of the
		// buffer the distribution is identical.
		re := stats.RelativeError(exact.Quantile(0.99), est)
		tbl.Rows = append(tbl.Rows, []string{
			v.name,
			v.store,
			fmtDur(d / time.Duration(n)),
			fmt.Sprint(sk.NonEmptyBuckets()),
			fmt.Sprintf("%.2f", float64(sk.MemoryBytes())/1024),
			fmtErr(re),
		})
		opts.logf("ablation-mapping: %s/%s done", v.name, v.store)
	}
	tbl.Notes = append(tbl.Notes, scaleNote(opts)...)
	return []Table{tbl}, nil
}

// runGridAblation sweeps the Moments Sketch quadrature grid: "accuracy
// can be increased at the cost of increased query time by increasing the
// grid size parameter for the moments solver" (Sec 4.5.5).
func runGridAblation(opts Options) ([]Table, error) {
	n := opts.scaled(1_000_000)
	src := datagen.NewSyntheticPower(opts.Seed ^ 0x66dd)
	data := datagen.Take(src, n)
	exact := stats.NewExactQuantiles(data)
	tbl := Table{
		Title:   fmt.Sprintf("Moments Sketch grid-size ablation (Power stand-in, %d points, 12 moments, log transform)", n),
		Headers: []string{"grid", "mid err", "upper err", "p99 err", "8-quantile query"},
	}
	for _, grid := range []int{128, 512, 1024, 4096, 16384} {
		sk := moments.NewWithTransform(12, moments.TransformLog)
		sk.SetGridSize(grid)
		for _, x := range data {
			sk.Insert(x)
		}
		var mid, upper, p99 float64
		var qd time.Duration
		const reps = 5
		for r := 0; r < reps; r++ {
			sk.Insert(data[r]) // invalidate the solve cache
			var err error
			qd += measure(func() {
				var wa struct{ mid, upper, p99 float64 }
				wa.mid, wa.upper, wa.p99, err = momentsGroups(sk, exact)
				mid, upper, p99 = wa.mid, wa.upper, wa.p99
			})
			if err != nil {
				return nil, fmt.Errorf("grid %d: %w", grid, err)
			}
		}
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprint(grid),
			fmtErr(mid), fmtErr(upper), fmtErr(p99),
			fmtDur(qd / reps),
		})
		opts.logf("ablation-grid: %d done", grid)
	}
	tbl.Notes = append(tbl.Notes, scaleNote(opts)...)
	return []Table{tbl}, nil
}

// momentsGroups evaluates the study's quantile groups on one sketch.
func momentsGroups(sk *moments.Sketch, exact *stats.ExactQuantiles) (mid, upper, p99 float64, err error) {
	sum := func(qs []float64) (float64, error) {
		ests, err := sk.QuantileAll(qs)
		if err != nil {
			return 0, err
		}
		var s float64
		for i, q := range qs {
			s += stats.RelativeError(exact.Quantile(q), ests[i])
		}
		return s / float64(len(qs)), nil
	}
	if mid, err = sum([]float64{0.05, 0.25, 0.5, 0.75, 0.9}); err != nil {
		return
	}
	if upper, err = sum([]float64{0.95, 0.98}); err != nil {
		return
	}
	p99, err = sum([]float64{0.99})
	return
}

// runDeletionAblation measures what the turnstile extension costs: KLL±
// doubles state and pays rank-correction overhead — the reason the study
// restricts itself to cash-register sketches (Sec 5.1).
func runDeletionAblation(opts Options) ([]Table, error) {
	n := opts.scaled(1_000_000)
	buf := presample(minInt(n, 1_000_000), opts.Seed^0x0dd0)
	tbl := Table{
		Title:   fmt.Sprintf("KLL vs KLL± on %d operations (30%% deletions for KLL±)", n),
		Headers: []string{"sketch", "op/op", "memory KB", "median rank err"},
		Notes: []string{
			"turnstile support doubles the footprint and degrades the guarantee to ε·(ops), cf. Luo et al.'s cash-register vs turnstile analysis (Sec 5.1)",
		},
	}
	// Plain KLL: n inserts.
	{
		sk := kll.NewWithSeed(kll.DefaultK, opts.Seed)
		d := measure(func() {
			for i := 0; i < n; i++ {
				sk.Insert(buf[i%len(buf)])
			}
		})
		data := make([]float64, n)
		for i := range data {
			data[i] = buf[i%len(buf)]
		}
		exact := stats.NewExactQuantiles(data)
		est, err := sk.Quantile(0.5)
		if err != nil {
			return nil, err
		}
		rankErr := exact.NormalizedRank(est) - 0.5
		if rankErr < 0 {
			rankErr = -rankErr
		}
		tbl.Rows = append(tbl.Rows, []string{
			"kll",
			fmtDur(d / time.Duration(n)),
			fmt.Sprintf("%.2f", float64(sk.MemoryBytes())/1024),
			fmtErr(rankErr),
		})
	}
	// KLL±: same operation count with 30% deletions of previously
	// inserted values (sliding churn).
	{
		sk := kllpm.NewWithSeed(kll.DefaultK, opts.Seed)
		live := make([]float64, 0, n)
		d := measure(func() {
			for i := 0; i < n; i++ {
				if i%10 < 3 && len(live) > 1000 {
					// delete the oldest live value
					sk.Delete(live[0])
					live = live[1:]
				} else {
					x := buf[i%len(buf)]
					sk.Insert(x)
					live = append(live, x)
				}
			}
		})
		exact := stats.NewExactQuantiles(live)
		est, err := sk.Quantile(0.5)
		if err != nil {
			return nil, err
		}
		rankErr := exact.NormalizedRank(est) - 0.5
		if rankErr < 0 {
			rankErr = -rankErr
		}
		tbl.Rows = append(tbl.Rows, []string{
			"kllpm",
			fmtDur(d / time.Duration(n)),
			fmt.Sprintf("%.2f", float64(sk.MemoryBytes())/1024),
			fmtErr(rankErr),
		})
	}
	opts.logf("ablation-deletion: done")
	tbl.Notes = append(tbl.Notes, scaleNote(opts)...)
	return []Table{tbl}, nil
}

// runPartitionsAblation verifies the mergeability property the study
// motivates in Sec 2.4 end to end: splitting each window across more
// partition-local sketches (merged at fire time) must not change the
// error profile of any algorithm.
func runPartitionsAblation(opts Options) ([]Table, error) {
	tbl := Table{
		Title:   "Partitioned-window ablation: Pareto accuracy vs partition count",
		Headers: []string{"partitions", "req p99", "kll p99", "uddsketch p99", "ddsketch p99", "moments p99"},
		Notes: []string{
			"each window's events are sketched in P partition-local sketches merged at fire time (Sec 2.4); guarantees must be merge-invariant",
		},
	}
	for _, p := range []int{1, 4, 16} {
		agg, _, err := streamAccuracyPartitioned(opts, datagen.DatasetPareto, 0, p)
		if err != nil {
			return nil, err
		}
		row := []string{fmt.Sprint(p)}
		for _, alg := range []string{"req", "kll", "uddsketch", "ddsketch", "moments"} {
			row = append(row, fmtErr(agg[alg].p99.Mean()))
		}
		tbl.Rows = append(tbl.Rows, row)
		opts.logf("ablation-partitions: P=%d done", p)
	}
	tbl.Notes = append(tbl.Notes, scaleNote(opts)...)
	return []Table{tbl}, nil
}

// runLogMomentsAblation compares the study's stripped Moments Sketch
// (standard moments only, manual per-data-set transform) against the
// original full design (joint standard+log moments) on all four data
// sets — quantifying the paper's Sec 4.3 footnote that its
// implementation "keeps only standard moments and avoids maintaining
// log moments".
func runLogMomentsAblation(opts Options) ([]Table, error) {
	n := opts.scaled(1_000_000)
	tbl := Table{
		Title:   fmt.Sprintf("Moments variants: study's standard-only (+transform) vs full joint log moments (%d points)", n),
		Headers: []string{"dataset", "variant", "mid err", "upper err", "p99 err", "memory B"},
		Notes: []string{
			"'standard+transform' is the study's configuration (log transform on pareto/power); 'full' is Gan et al.'s original joint design",
		},
	}
	seedState := opts.Seed ^ 0x109109
	for _, ds := range datagen.DatasetNames() {
		src, err := datagen.NewDataset(ds, datagen.SplitMix64(&seedState))
		if err != nil {
			return nil, err
		}
		data := datagen.Take(src, n)
		exact := stats.NewExactQuantiles(data)

		tr := moments.TransformNone
		if datagen.NeedsLogTransform(ds) {
			tr = moments.TransformLog
		}
		std := moments.NewWithTransform(12, tr)
		full := moments.NewFull(12)
		for _, x := range data {
			std.Insert(x)
			full.Insert(x)
		}
		for _, v := range []struct {
			name string
			sk   sketch.Sketch
		}{{"standard+transform", std}, {"full", full}} {
			wa, err := core.EvaluateAgainst(v.sk, exact)
			row := []string{ds, v.name}
			if err != nil {
				row = append(row, "solve-failed", "solve-failed", "solve-failed")
			} else {
				row = append(row, fmtErr(wa.Mid), fmtErr(wa.Upper), fmtErr(wa.P99))
			}
			row = append(row, fmt.Sprint(v.sk.MemoryBytes()))
			tbl.Rows = append(tbl.Rows, row)
		}
		opts.logf("ablation-logmoments: %s done", ds)
	}
	tbl.Notes = append(tbl.Notes, scaleNote(opts)...)
	return []Table{tbl}, nil
}

// runUDDStoreAblation tests the paper's causal claim head-on: UDDSketch's
// slow inserts and merges are attributed to its "unoptimized map-based
// implementation" (Sec 4.4.1/4.4.3). Same collapse algorithm, two
// stores.
func runUDDStoreAblation(opts Options) ([]Table, error) {
	n := opts.scaled(10_000_000)
	buf := presample(minInt(n, 1_000_000), opts.Seed^0x5705)
	tbl := Table{
		Title:   fmt.Sprintf("UDDSketch store ablation: map vs dense array (%d Pareto inserts)", n),
		Headers: []string{"store", "insert/op", "merge/op", "8-quantile query", "memory KB"},
		Notes: []string{
			"paper attributes UDDSketch's slow insert/merge to the map store; identical collapse algorithm here isolates that choice",
		},
	}
	type variant struct {
		name string
		mk   func() sketch.Sketch
	}
	variants := []variant{
		{"map (paper's)", func() sketch.Sketch {
			s, err := uddsketch.NewWithBudget(core.UDDSketchAlpha, core.UDDSketchMaxBuckets, core.UDDSketchNumCollapses)
			if err != nil {
				panic(err)
			}
			return s
		}},
		{"dense array", func() sketch.Sketch {
			s, err := uddsketch.NewArrayWithBudget(core.UDDSketchAlpha, core.UDDSketchMaxBuckets, core.UDDSketchNumCollapses)
			if err != nil {
				panic(err)
			}
			return s
		}},
	}
	qs := core.AllQuantiles()
	for _, v := range variants {
		sk := v.mk()
		ins := measure(func() {
			for i := 0; i < n; i++ {
				sk.Insert(buf[i%len(buf)])
			}
		})
		// Merge: fold 64 copies of a 100k-point sketch.
		part := v.mk()
		for i := 0; i < minInt(n, 100_000); i++ {
			part.Insert(buf[i%len(buf)])
		}
		acc := v.mk()
		const merges = 64
		var mErr error
		md := measure(func() {
			for i := 0; i < merges; i++ {
				if err := acc.Merge(part); err != nil && mErr == nil {
					mErr = err
				}
			}
		})
		if mErr != nil {
			return nil, mErr
		}
		var qd time.Duration
		const reps = 20
		for r := 0; r < reps; r++ {
			qd += measure(func() {
				if _, err := sketch.Quantiles(sk, qs); err != nil && mErr == nil {
					mErr = err
				}
			})
		}
		if mErr != nil {
			return nil, mErr
		}
		tbl.Rows = append(tbl.Rows, []string{
			v.name,
			fmtDur(ins / time.Duration(n)),
			fmtDur(md / merges),
			fmtDur(qd / reps),
			fmt.Sprintf("%.2f", float64(sk.MemoryBytes())/1024),
		})
		opts.logf("ablation-uddstore: %s done", v.name)
	}
	tbl.Notes = append(tbl.Notes, scaleNote(opts)...)
	return []Table{tbl}, nil
}
