package harness

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/sketch"
)

func init() {
	register(Experiment{
		ID:    "fig5a",
		Title: "Average insertion time of an element",
		Ref:   "Fig 5a",
		Run:   runFig5a,
	})
	register(Experiment{
		ID:    "fig5b",
		Title: "Quantile computation time against number of entries processed",
		Ref:   "Fig 5b",
		Run:   runFig5b,
	})
	register(Experiment{
		ID:    "fig5c",
		Title: "Average time to merge two sketches (100 and 1000 sketches)",
		Ref:   "Fig 5c",
		Run:   runFig5c,
	})
}

// speedBuilders returns the five configured builders for the speed
// experiments: pre-sampled Pareto data, so the Moments transform follows
// the Pareto setting (log), exactly as in the accuracy runs.
func speedBuilders(seed uint64) (map[string]sketch.Builder, error) {
	return core.BuildersForDataset(datagen.DatasetPareto, seed)
}

// presample draws n values from the Fig 5 fill distribution, Pareto(α=1,
// Xm=1), so measured loops exclude generation cost.
func presample(n int, seed uint64) []float64 {
	return datagen.Take(datagen.NewPareto(1, 1, seed), n)
}

// runFig5a measures mean per-element insertion time after 10M/100M/1B
// inserts (scaled). Insertion time is size-independent (Sec 4.4.1), so
// the scaled sizes preserve the comparison.
func runFig5a(opts Options) ([]Table, error) {
	sizes := []int{opts.scaled(10_000_000), opts.scaled(100_000_000), opts.scaled(1_000_000_000)}
	builders, err := speedBuilders(opts.Seed)
	if err != nil {
		return nil, err
	}
	// One shared pre-sampled buffer, cycled: keeps memory flat at any
	// scale while exercising the full value range.
	buf := presample(1_000_000, opts.Seed^0xfafafa)
	tbl := Table{
		Title:   "Fig 5a: average insertion time per element (pre-sampled Pareto α=1, Xm=1)",
		Headers: append([]string{"sketch"}, fmt.Sprintf("%d inserts", sizes[0]), fmt.Sprintf("%d inserts", sizes[1]), fmt.Sprintf("%d inserts", sizes[2])),
		Notes: []string{
			"paper ordering: DDSketch fastest; UDDSketch slowest (map store + uniform collapses); all < 0.2 µs",
		},
	}
	if opts.Scale != 1.0 {
		tbl.Notes = append(tbl.Notes, fmt.Sprintf("scaled sizes (scale=%g); paper uses 10M/100M/1B", opts.Scale))
	}
	for _, alg := range core.AlgorithmNames() {
		row := []string{alg}
		for _, n := range sizes {
			sk := builders[alg]()
			d := measure(func() {
				j := 0
				for i := 0; i < n; i++ {
					sk.Insert(buf[j])
					j++
					if j == len(buf) {
						j = 0
					}
				}
			})
			row = append(row, fmtDur(d/time.Duration(n)))
		}
		tbl.Rows = append(tbl.Rows, row)
		opts.logf("fig5a: %s done", alg)
	}
	return []Table{tbl}, nil
}

// runFig5b measures the time to answer the study's quantile set as a
// function of the data size already consumed by the sketch.
func runFig5b(opts Options) ([]Table, error) {
	baseSizes := []int{10_000, 100_000, 1_000_000, 10_000_000, 100_000_000}
	var sizes []int
	for _, s := range baseSizes {
		sizes = append(sizes, opts.scaled(s))
	}
	builders, err := speedBuilders(opts.Seed)
	if err != nil {
		return nil, err
	}
	buf := presample(1_000_000, opts.Seed^0x5b5b5b)
	headers := []string{"sketch"}
	for _, s := range sizes {
		headers = append(headers, fmt.Sprintf("n=%d", s))
	}
	tbl := Table{
		Title:   "Fig 5b: time to answer the 8-quantile query set vs data size",
		Headers: headers,
		Notes: []string{
			"paper: Moments worst (maxent solve, size-independent); DDS/UDDS/KLL fast; REQ grows sub-linearly",
		},
	}
	qs := core.AllQuantiles()
	for _, alg := range core.AlgorithmNames() {
		row := []string{alg}
		for _, n := range sizes {
			sk := builders[alg]()
			j := 0
			for i := 0; i < n; i++ {
				sk.Insert(buf[j])
				j++
				if j == len(buf) {
					j = 0
				}
			}
			// Repeat the query set enough times to resolve fast sketches;
			// re-inserting between repetitions would perturb state, so we
			// accept intra-repetition caching (Moments caches its solve —
			// mirroring how a real multi-quantile query behaves) but reset
			// the cache per repetition via a sacrificial insert before
			// timing when repetitions > 1.
			reps := 1
			if n <= 1_000_000 {
				reps = 10
			}
			var total time.Duration
			var qErr error
			for r := 0; r < reps; r++ {
				sk.Insert(buf[r%len(buf)]) // invalidate caches, negligible state change
				total += measure(func() {
					if _, err := sketch.Quantiles(sk, qs); err != nil && qErr == nil {
						qErr = fmt.Errorf("fig5b %s n=%d: %w", alg, n, err)
					}
				})
			}
			if qErr != nil {
				return nil, qErr
			}
			row = append(row, fmtDur(total/time.Duration(reps)))
		}
		tbl.Rows = append(tbl.Rows, row)
		opts.logf("fig5b: %s done", alg)
	}
	if opts.Scale != 1.0 {
		tbl.Notes = append(tbl.Notes, fmt.Sprintf("scaled sizes (scale=%g); paper sweeps to 1e8+", opts.Scale))
	}
	return []Table{tbl}, nil
}

// runFig5c measures the mean time to merge two sketches while folding 100
// and 1000 sketches, each pre-filled with (scaled) 1M events from the
// uniform, binomial and Zipf workloads.
func runFig5c(opts Options) ([]Table, error) {
	fillSize := opts.scaled(1_000_000)
	counts := []int{100, 1000}
	// The merge workloads (uniform/binomial/zipf) are small-ranged, so
	// Moments runs untransformed here.
	builders, err := core.BuildersForDataset(datagen.DatasetUniform, opts.Seed)
	if err != nil {
		return nil, err
	}
	var tables []Table
	for _, workload := range datagen.MergeWorkloadNames() {
		tbl := Table{
			Title:   fmt.Sprintf("Fig 5c: average time to merge two sketches (%s fill, %d events each)", workload, fillSize),
			Headers: []string{"sketch", fmt.Sprintf("merging %d", counts[0]), fmt.Sprintf("merging %d", counts[1])},
			Notes: []string{
				"paper: Moments ≥10x faster than all; UDDS slowest of the summary sketches; KLL/REQ slowest overall",
			},
		}
		seedState := opts.Seed ^ 0xcc00cc
		for _, alg := range core.AlgorithmNames() {
			row := []string{alg}
			for _, count := range counts {
				// Build a pool of distinct filled sketches. Filling
				// count×fillSize values dominates runtime, so the pool is
				// capped and reused cyclically — merge cost depends only on
				// sketch state, which is identical across pool reuse.
				pool := count
				if pool > 32 {
					pool = 32
				}
				sketches := make([]sketch.Sketch, pool)
				for i := range sketches {
					src, err := datagen.NewMergeWorkload(workload, datagen.SplitMix64(&seedState))
					if err != nil {
						return nil, err
					}
					sk := builders[alg]()
					for j := 0; j < fillSize; j++ {
						sk.Insert(src.Next())
					}
					sketches[i] = sk
				}
				acc := builders[alg]()
				var mErr error
				d := measure(func() {
					for i := 0; i < count; i++ {
						if err := acc.Merge(sketches[i%pool]); err != nil && mErr == nil {
							mErr = fmt.Errorf("fig5c %s/%s: %w", alg, workload, err)
						}
					}
				})
				if mErr != nil {
					return nil, mErr
				}
				row = append(row, fmtDur(d/time.Duration(count)))
			}
			tbl.Rows = append(tbl.Rows, row)
			opts.logf("fig5c: %s/%s done", workload, alg)
		}
		if opts.Scale != 1.0 {
			tbl.Notes = append(tbl.Notes, fmt.Sprintf("scaled fill (scale=%g); paper fills 1M per sketch", opts.Scale))
		}
		tables = append(tables, tbl)
	}
	return tables, nil
}
