package harness

import (
	"testing"

	"repro/internal/faultinject"
)

// TestCheckpointedAccuracyEquivalence is the harness-level transparency
// guarantee of fault-tolerant execution: the accuracy experiment's
// rendered output is bit-identical with and without checkpointing, even
// when an injected fault crashes a run mid-stream and it recovers from
// its newest snapshot.
func TestCheckpointedAccuracyEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep")
	}
	base := tinyOpts()
	plain, err := RunAccuracy(base, "uniform")
	if err != nil {
		t.Fatal(err)
	}

	chaos := base
	chaos.CheckpointDir = t.TempDir()
	// Crash the serial engine (worker 0) mid-run, after the first
	// windows have fired so snapshots exist to restore from.
	chaos.Faults = faultinject.New().WithPanic(0, 25000)
	panicsBefore := testRegistry.Engine().RecoveredPanics.Load()
	recovered, err := RunAccuracy(chaos, "uniform")
	if err != nil {
		t.Fatal(err)
	}
	if testRegistry.Engine().RecoveredPanics.Load() == panicsBefore {
		t.Error("fault never fired: the run did not exercise crash recovery")
	}
	if got, want := recovered.Render(), plain.Render(); got != want {
		t.Errorf("fault-tolerant run diverged from the plain run:\nplain:\n%s\nrecovered:\n%s", want, got)
	}
}
