package harness

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/obs"
)

// TestMetricsSnapshotGroundTruth runs one accuracy experiment against a
// private registry and checks the counters against first-principles
// ground truth: the engine generates exactly runEnd/interval events per
// run, none are dropped or rejected with zero delay, every window
// fires, and every accepted event is inserted into all five sketches by
// the multi-sketch builder.
func TestMetricsSnapshotGroundTruth(t *testing.T) {
	reg := obs.NewRegistry()
	core.EnableMetrics(reg)
	defer core.EnableMetrics(testRegistry) // restore the package-wide wiring

	o := tinyOpts()
	o.Metrics = reg
	if _, err := RunAccuracy(o, datagen.DatasetPareto); err != nil {
		t.Fatal(err)
	}

	// Ground truth, mirroring streamAccuracyPartitioned's sizing.
	windowDur := time.Duration(o.WindowSeconds * o.Scale * float64(time.Second))
	if windowDur < 100*time.Millisecond {
		windowDur = 100 * time.Millisecond
	}
	runs := int64(o.scaledRuns())
	numWindows := int64(o.Windows + 1)
	interval := time.Second / time.Duration(o.Rate)
	runEnd := windowDur * time.Duration(numWindows)
	perRun := int64((runEnd + interval - 1) / interval) // gen ticks in [0, runEnd)
	wantGenerated := perRun * runs

	snap := reg.Snapshot()
	if got := snap["engine.generated"]; got != wantGenerated {
		t.Errorf("engine.generated = %d, want %d (%d runs × %d events)", got, wantGenerated, runs, perRun)
	}
	if got := snap["engine.inserted"]; got != wantGenerated {
		t.Errorf("engine.inserted = %d, want %d (zero delay: nothing dropped)", got, wantGenerated)
	}
	if snap["engine.dropped_late"] != 0 || snap["engine.rejected_input"] != 0 {
		t.Errorf("dropped_late=%d rejected_input=%d, want 0/0 with zero delay and a clean source",
			snap["engine.dropped_late"], snap["engine.rejected_input"])
	}
	if got, want := snap["engine.window_fires"], numWindows*runs; got != want {
		t.Errorf("engine.window_fires = %d, want %d", got, want)
	}
	// The identity, straight from the counters.
	if snap["engine.generated"] != snap["engine.inserted"]+snap["engine.dropped_late"]+snap["engine.rejected_input"] {
		t.Errorf("counter identity violated: %+v", snap)
	}
	// The multi-sketch builder feeds every accepted event to all five
	// study sketches.
	for _, alg := range core.AlgorithmNames() {
		if got := snap["sketch."+alg+".inserts"]; got != wantGenerated {
			t.Errorf("sketch.%s.inserts = %d, want %d", alg, got, wantGenerated)
		}
	}
	// Accuracy evaluation queried Moments in every window: the max-entropy
	// solver must have recorded work.
	if snap["sketch.moments.newton_iterations"] == 0 {
		t.Error("sketch.moments.newton_iterations = 0, want > 0 after quantile queries")
	}
	if snap["sketch.moments.cold_starts"] == 0 {
		t.Error("sketch.moments.cold_starts = 0, want ≥ 1 (first solve has no warm start)")
	}
	for _, alg := range []string{core.AlgKLL, core.AlgReq, core.AlgUDD} {
		if snap["sketch."+alg+".peak_bytes"] == 0 {
			t.Errorf("sketch.%s.peak_bytes = 0, want > 0", alg)
		}
	}
}
