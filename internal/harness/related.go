package harness

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/ddsketch"
	"repro/internal/gk"
	"repro/internal/mrl"
	"repro/internal/req"
	"repro/internal/sketch"
	"repro/internal/stats"
	"repro/internal/tdigest"
)

func init() {
	register(Experiment{
		ID:    "related",
		Title: "t-digest and Greenwald-Khanna vs the five evaluated sketches",
		Ref:   "Sec 5.1/5.2",
		Run:   runRelated,
	})
	register(Experiment{
		ID:    "ablation-store",
		Title: "DDSketch store ablation: unbounded vs collapsing dense store",
		Ref:   "Sec 4.3/4.5.5",
		Run:   runStoreAblation,
	})
	register(Experiment{
		ID:    "ablation-hra",
		Title: "ReqSketch HRA vs LRA: upper- vs lower-quantile accuracy trade",
		Ref:   "Sec 4.2/4.5.5",
		Run:   runHRAAblation,
	})
}

// runRelated checks the study's exclusion rationale (Sec 5.2) against
// measurements: t-digest has no error bound and degrades under merging;
// GK is slower per insert and not losslessly mergeable.
func runRelated(opts Options) ([]Table, error) {
	n := opts.scaled(1_000_000)
	builders := map[string]sketch.Builder{
		"tdigest": func() sketch.Sketch { return tdigest.New(tdigest.DefaultCompression) },
		"gk":      func() sketch.Sketch { return gk.New(gk.DefaultEpsilon) },
		"mrl":     func() sketch.Sketch { return mrl.NewWithSeed(mrl.DefaultBuffers, mrl.DefaultK, opts.Seed) },
	}
	order := append(core.AlgorithmNames(), "tdigest", "gk", "mrl")
	seedState := opts.Seed ^ 0x5e1a7ed
	for _, alg := range core.AlgorithmNames() {
		b, err := core.NewBuilder(alg, core.BuilderOptions{
			LogTransformMoments: true, // Pareto fill below
			Seed:                datagen.SplitMix64(&seedState),
		})
		if err != nil {
			return nil, err
		}
		builders[alg] = b
	}

	buf := presample(minInt(n, 1_000_000), opts.Seed^0x77ee77)
	accTbl := Table{
		Title:   fmt.Sprintf("Related sketches: accuracy and speed on %d Pareto points", n),
		Headers: []string{"sketch", "mid err", "upper err", "p99 err", "insert/op", "memory KB"},
		Notes: []string{
			"paper Sec 5.2: t-digest has no error bound (5.2.4); GK predates the five (5.1); mrl is Random, the MRL-descended ancestor KLL improved on (5.2.1)",
		},
	}
	data := make([]float64, n)
	for i := range data {
		data[i] = buf[i%len(buf)]
	}
	exact := stats.NewExactQuantiles(data)
	for _, alg := range order {
		sk := builders[alg]()
		d := measure(func() { sketch.InsertAll(sk, data) })
		wa, err := core.EvaluateAgainst(sk, exact)
		if err != nil {
			return nil, fmt.Errorf("related %s: %w", alg, err)
		}
		accTbl.Rows = append(accTbl.Rows, []string{
			alg,
			fmtErr(wa.Mid), fmtErr(wa.Upper), fmtErr(wa.P99),
			fmtDur(d / time.Duration(n)),
			fmt.Sprintf("%.2f", float64(sk.MemoryBytes())/1024),
		})
		opts.logf("related: %s done", alg)
	}

	// Merge-degradation check: repeated pairwise merging of t-digest and
	// GK vs DDSketch (whose guarantee is merge-invariant).
	mergeTbl := Table{
		Title:   "Merge degradation: p99 rank/relative error after folding 64 sketches",
		Headers: []string{"sketch", "single-sketch p99 err", "64-way merged p99 err"},
	}
	for _, alg := range []string{"ddsketch", "tdigest", "gk"} {
		single := builders[alg]()
		sketch.InsertAll(single, data)
		sWA, err := core.EvaluateAgainst(single, exact)
		if err != nil {
			return nil, err
		}
		parts := 64
		per := n / parts
		merged := builders[alg]()
		for p := 0; p < parts; p++ {
			part := builders[alg]()
			lo := p * per
			hi := lo + per
			if p == parts-1 {
				hi = n
			}
			sketch.InsertAll(part, data[lo:hi])
			if err := merged.Merge(part); err != nil {
				return nil, err
			}
		}
		mWA, err := core.EvaluateAgainst(merged, exact)
		if err != nil {
			return nil, err
		}
		mergeTbl.Rows = append(mergeTbl.Rows, []string{alg, fmtErr(sWA.P99), fmtErr(mWA.P99)})
	}
	accTbl.Notes = append(accTbl.Notes, scaleNote(opts)...)
	return []Table{accTbl, mergeTbl}, nil
}

// runStoreAblation compares DDSketch's unbounded dense store (the study's
// configuration) against the collapsing dense store with 1024 buckets.
// The paper reports an average error difference of 0.14% (mid) / 0.07%
// (upper) between the two (Sec 4.5.5).
func runStoreAblation(opts Options) ([]Table, error) {
	n := opts.scaled(1_000_000)
	tbl := Table{
		Title:   "DDSketch store ablation (α = 0.01)",
		Headers: []string{"dataset", "store", "mid err", "upper err", "p99 err", "buckets", "collapses", "memory KB"},
		Notes: []string{
			"paper: unbounded vs collapsing-1024 differ by 0.14% (mid) and 0.07% (upper) on average",
		},
	}
	seedState := opts.Seed ^ 0xab1a7e
	for _, ds := range datagen.DatasetNames() {
		src, err := datagen.NewDataset(ds, datagen.SplitMix64(&seedState))
		if err != nil {
			return nil, err
		}
		data := datagen.Take(src, n)
		exact := stats.NewExactQuantiles(data)
		variants := []struct {
			name string
			sk   *ddsketch.Sketch
		}{
			{"unbounded", ddsketch.New(core.DDSketchAlpha)},
			{"collapsing-1024", ddsketch.NewCollapsing(core.DDSketchAlpha, 1024)},
			{"collapsing-128", ddsketch.NewCollapsing(core.DDSketchAlpha, 128)},
		}
		for _, v := range variants {
			sketch.InsertAll(v.sk, data)
			wa, err := core.EvaluateAgainst(v.sk, exact)
			if err != nil {
				return nil, err
			}
			tbl.Rows = append(tbl.Rows, []string{
				ds, v.name,
				fmtErr(wa.Mid), fmtErr(wa.Upper), fmtErr(wa.P99),
				fmt.Sprint(v.sk.NonEmptyBuckets()),
				fmt.Sprint(v.sk.CollapseCount()),
				fmt.Sprintf("%.2f", float64(v.sk.MemoryBytes())/1024),
			})
		}
		opts.logf("ablation-store: %s done", ds)
	}
	tbl.Notes = append(tbl.Notes, scaleNote(opts)...)
	return []Table{tbl}, nil
}

// runHRAAblation quantifies the HRA trade-off the study leans on: HRA
// sharpens upper quantiles at the cost of lower ones, and vice versa.
func runHRAAblation(opts Options) ([]Table, error) {
	n := opts.scaled(1_000_000)
	runs := opts.scaledRuns()
	tbl := Table{
		Title:   "ReqSketch HRA vs LRA on Pareto data (relative error)",
		Headers: []string{"mode", "q=0.05", "q=0.25", "q=0.5", "q=0.95", "q=0.99"},
		Notes: []string{
			"paper Sec 4.2: HRA enabled because it significantly reduces upper-quantile error",
		},
	}
	qs := []float64{0.05, 0.25, 0.5, 0.95, 0.99}
	seedState := opts.Seed ^ 0x44aa44
	for _, hra := range []bool{true, false} {
		sums := make([]stats.Summary, len(qs))
		for run := 0; run < runs; run++ {
			src := datagen.NewPareto(1, 1, datagen.SplitMix64(&seedState))
			data := datagen.Take(src, n)
			exact := stats.NewExactQuantiles(data)
			sk := req.NewWithSeed(core.ReqNumSections, hra, datagen.SplitMix64(&seedState))
			sketch.InsertAll(sk, data)
			ests, err := sketch.Quantiles(sk, qs)
			if err != nil {
				return nil, err
			}
			for i, q := range qs {
				sums[i].Observe(stats.RelativeError(exact.Quantile(q), ests[i]))
			}
		}
		mode := "LRA"
		if hra {
			mode = "HRA"
		}
		row := []string{mode}
		for i := range qs {
			row = append(row, fmtErr(sums[i].Mean()))
		}
		tbl.Rows = append(tbl.Rows, row)
		opts.logf("ablation-hra: %s done", mode)
	}
	tbl.Notes = append(tbl.Notes, scaleNote(opts)...)
	return []Table{tbl}, nil
}
