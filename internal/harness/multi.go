package harness

import (
	"fmt"

	"repro/internal/sketch"
)

// multiSketch fans every insert/merge out to one child sketch per
// algorithm so a single engine pass (event generation, delay simulation,
// windowing, ground-truth collection) evaluates all five algorithms on
// exactly the same event sequence — the uniform-setting requirement of
// the study. It is query-opaque: callers evaluate the named children.
type multiSketch struct {
	order    []string
	children map[string]sketch.Sketch
}

var _ sketch.Sketch = (*multiSketch)(nil)

// newMultiBuilder wraps per-algorithm builders into a single builder for
// the stream engine.
func newMultiBuilder(order []string, builders map[string]sketch.Builder) sketch.Builder {
	return func() sketch.Sketch {
		m := &multiSketch{order: order, children: make(map[string]sketch.Sketch, len(order))}
		for _, name := range order {
			m.children[name] = builders[name]()
		}
		return m
	}
}

// child returns the named child sketch.
func (m *multiSketch) child(name string) sketch.Sketch { return m.children[name] }

// Insert implements sketch.Sketch.
func (m *multiSketch) Insert(x float64) {
	for _, name := range m.order {
		m.children[name].Insert(x)
	}
}

// InsertBatch implements sketch.BatchInserter by forwarding the batch
// to every child through its own batch kernel (when it has one), so the
// stream engine's batched path benefits all algorithms under test.
func (m *multiSketch) InsertBatch(xs []float64) {
	for _, name := range m.order {
		sketch.InsertAll(m.children[name], xs)
	}
}

// Merge implements sketch.Sketch.
func (m *multiSketch) Merge(other sketch.Sketch) error {
	o, ok := other.(*multiSketch)
	if !ok {
		return fmt.Errorf("%w: cannot merge %s into multi", sketch.ErrIncompatible, other.Name())
	}
	for _, name := range m.order {
		oc := o.children[name]
		if oc == nil {
			return fmt.Errorf("%w: missing child %s", sketch.ErrIncompatible, name)
		}
		if err := m.children[name].Merge(oc); err != nil {
			return err
		}
	}
	return nil
}

// Quantile implements sketch.Sketch; the multiplexer is query-opaque.
func (m *multiSketch) Quantile(float64) (float64, error) {
	return 0, fmt.Errorf("harness: query the multi sketch's children, not the multiplexer")
}

// Rank implements sketch.Sketch; the multiplexer is query-opaque.
func (m *multiSketch) Rank(float64) (float64, error) {
	return 0, fmt.Errorf("harness: query the multi sketch's children, not the multiplexer")
}

// Count implements sketch.Sketch.
func (m *multiSketch) Count() uint64 {
	if len(m.order) == 0 {
		return 0
	}
	return m.children[m.order[0]].Count()
}

// MemoryBytes implements sketch.Sketch.
func (m *multiSketch) MemoryBytes() int {
	total := 0
	for _, c := range m.children {
		total += c.MemoryBytes()
	}
	return total
}

// Name implements sketch.Sketch.
func (m *multiSketch) Name() string { return "multi" }

// Reset implements sketch.Sketch.
func (m *multiSketch) Reset() {
	for _, c := range m.children {
		c.Reset()
	}
}

// MarshalBinary implements encoding.BinaryMarshaler; the multiplexer is a
// harness-internal vehicle and is not serializable.
func (m *multiSketch) MarshalBinary() ([]byte, error) {
	return nil, fmt.Errorf("harness: multi sketch is not serializable")
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (m *multiSketch) UnmarshalBinary([]byte) error {
	return fmt.Errorf("harness: multi sketch is not serializable")
}
