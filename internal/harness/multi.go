package harness

import (
	"fmt"
	"sort"

	"repro/internal/sketch"
)

// multiSketch fans every insert/merge out to one child sketch per
// algorithm so a single engine pass (event generation, delay simulation,
// windowing, ground-truth collection) evaluates all five algorithms on
// exactly the same event sequence — the uniform-setting requirement of
// the study. It is query-opaque: callers evaluate the named children.
type multiSketch struct {
	order    []string
	builders map[string]sketch.Builder
	children map[string]sketch.Sketch
}

var (
	_ sketch.Sketch      = (*multiSketch)(nil)
	_ sketch.CountScaler = (*multiSketch)(nil)
	_ sketch.Footprinter = (*multiSketch)(nil)
	_ sketch.Degrader    = (*multiSketch)(nil)
)

// newMultiBuilder wraps per-algorithm builders into a single builder for
// the stream engine.
func newMultiBuilder(order []string, builders map[string]sketch.Builder) sketch.Builder {
	return func() sketch.Sketch {
		m := &multiSketch{order: order, builders: builders, children: make(map[string]sketch.Sketch, len(order))}
		for _, name := range order {
			m.children[name] = builders[name]()
		}
		return m
	}
}

// child returns the named child sketch.
func (m *multiSketch) child(name string) sketch.Sketch { return m.children[name] }

// Insert implements sketch.Sketch.
func (m *multiSketch) Insert(x float64) {
	for _, name := range m.order {
		m.children[name].Insert(x)
	}
}

// InsertBatch implements sketch.BatchInserter by forwarding the batch
// to every child through its own batch kernel (when it has one), so the
// stream engine's batched path benefits all algorithms under test.
func (m *multiSketch) InsertBatch(xs []float64) {
	for _, name := range m.order {
		sketch.InsertAll(m.children[name], xs)
	}
}

// Merge implements sketch.Sketch.
func (m *multiSketch) Merge(other sketch.Sketch) error {
	o, ok := other.(*multiSketch)
	if !ok {
		return fmt.Errorf("%w: cannot merge %s into multi", sketch.ErrIncompatible, other.Name())
	}
	for _, name := range m.order {
		oc := o.children[name]
		if oc == nil {
			return fmt.Errorf("%w: missing child %s", sketch.ErrIncompatible, name)
		}
		if err := m.children[name].Merge(oc); err != nil {
			return err
		}
	}
	return nil
}

// Quantile implements sketch.Sketch; the multiplexer is query-opaque.
func (m *multiSketch) Quantile(float64) (float64, error) {
	return 0, fmt.Errorf("harness: query the multi sketch's children, not the multiplexer")
}

// Rank implements sketch.Sketch; the multiplexer is query-opaque.
func (m *multiSketch) Rank(float64) (float64, error) {
	return 0, fmt.Errorf("harness: query the multi sketch's children, not the multiplexer")
}

// Count implements sketch.Sketch.
func (m *multiSketch) Count() uint64 {
	if len(m.order) == 0 {
		return 0
	}
	return m.children[m.order[0]].Count()
}

// MemoryBytes implements sketch.Sketch.
func (m *multiSketch) MemoryBytes() int {
	total := 0
	for _, c := range m.children {
		total += c.MemoryBytes()
	}
	return total
}

// Name implements sketch.Sketch.
func (m *multiSketch) Name() string { return "multi" }

// Footprint implements sketch.Footprinter: the sum of the children's
// live footprints, so a memory-budget governor charges the multiplexer
// by what it actually holds.
func (m *multiSketch) Footprint() int {
	total := 0
	for _, name := range m.order {
		total += sketch.FootprintOf(m.children[name])
	}
	return total
}

// Degrade implements sketch.Degrader by degrading the currently
// largest degradable child (ties by algorithm order), so a budgeted
// multi-algorithm run sheds memory where it is actually spent. Children
// at their floor fall through to the next largest; ErrNotDegradable
// only when every child refuses.
func (m *multiSketch) Degrade() (int, error) {
	type cand struct {
		name string
		foot int
	}
	cands := make([]cand, 0, len(m.order))
	for _, name := range m.order {
		if _, ok := m.children[name].(sketch.Degrader); ok {
			cands = append(cands, cand{name, sketch.FootprintOf(m.children[name])})
		}
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].foot > cands[j].foot })
	for _, c := range cands {
		if freed, err := m.children[c.name].(sketch.Degrader).Degrade(); err == nil {
			return freed, nil
		}
	}
	return 0, sketch.ErrNotDegradable
}

// Reset implements sketch.Sketch.
func (m *multiSketch) Reset() {
	for _, c := range m.children {
		c.Reset()
	}
}

// ScaleCount implements sketch.CountScaler by forwarding to every
// child in deterministic algorithm order, so the engine's exponential
// decay applies to all algorithms under test at once. All five study
// sketches implement CountScaler; a child that does not is a
// configuration error surfaced at engine construction via the builder
// probe, so the assertion here cannot fire in a validated run.
func (m *multiSketch) ScaleCount(g float64) {
	for _, name := range m.order {
		m.children[name].(sketch.CountScaler).ScaleCount(g)
	}
}

// multiTag is the type tag of the multiplexer's own wire format. It is
// harness-local (not in sketch's shared tag space) because multi blobs
// only ever live inside checkpoint envelopes written and read by the
// harness itself.
const multiTag byte = 0x7E

// MarshalBinary implements encoding.BinaryMarshaler: each child's
// serialized state, name-prefixed, in deterministic algorithm order.
// Checkpointed harness runs persist the multiplexer through this.
func (m *multiSketch) MarshalBinary() ([]byte, error) {
	w := sketch.NewWriter(64)
	w.Byte(multiTag)
	w.Byte(sketch.SerdeVersion)
	w.U32(uint32(len(m.order)))
	for _, name := range m.order {
		blob, err := m.children[name].MarshalBinary()
		if err != nil {
			return nil, fmt.Errorf("harness: multi child %s: %w", name, err)
		}
		w.Blob([]byte(name))
		w.Blob(blob)
	}
	return w.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler. Decoding is
// atomic: every child blob is decoded into a freshly built child first,
// and the receiver adopts the new children only if all of them succeed.
func (m *multiSketch) UnmarshalBinary(data []byte) error {
	r := sketch.NewReader(data)
	if r.Byte() != multiTag || r.Byte() != sketch.SerdeVersion {
		return fmt.Errorf("harness: multi decode: %w", sketch.ErrCorrupt)
	}
	n := int(r.U32())
	if r.Err() != nil || n != len(m.order) {
		return fmt.Errorf("harness: multi decode: %d children, want %d: %w", n, len(m.order), sketch.ErrCorrupt)
	}
	fresh := make(map[string]sketch.Sketch, n)
	for i := 0; i < n; i++ {
		name := string(r.Blob())
		blob := r.Blob()
		if r.Err() != nil {
			return fmt.Errorf("harness: multi decode: %w", r.Err())
		}
		if name != m.order[i] {
			return fmt.Errorf("harness: multi decode: child %d is %q, want %q: %w", i, name, m.order[i], sketch.ErrCorrupt)
		}
		b := m.builders[name]
		if b == nil {
			return fmt.Errorf("harness: multi decode: no builder for child %q: %w", name, sketch.ErrCorrupt)
		}
		c := b()
		if err := c.UnmarshalBinary(blob); err != nil {
			return fmt.Errorf("harness: multi decode child %s: %w", name, err)
		}
		fresh[name] = c
	}
	if r.Remaining() != 0 {
		return fmt.Errorf("harness: multi decode: trailing bytes: %w", sketch.ErrCorrupt)
	}
	m.children = fresh
	return nil
}
