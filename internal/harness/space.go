package harness

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/ddsketch"
	"repro/internal/kll"
	"repro/internal/req"
	"repro/internal/stats"
	"repro/internal/uddsketch"
)

func init() {
	register(Experiment{
		ID:    "table3",
		Title: "Final memory usage of each sketch (KB) after consuming 1M data points",
		Ref:   "Table 3",
		Run:   runTable3,
	})
	register(Experiment{
		ID:    "fig4",
		Title: "Histogram representations of data sets used",
		Ref:   "Fig 4",
		Run:   runFig4,
	})
}

// runTable3 reproduces Table 3: fill each sketch with (scaled) 1M points
// of each data set and report the structural memory footprint, plus the
// Sec 4.3 structural statistics the paper quotes in prose (bucket counts,
// retained samples).
func runTable3(opts Options) ([]Table, error) {
	n := opts.scaled(1_000_000)
	tbl := Table{
		Title:   "Table 3: Final memory usage of each sketch (KB) after consuming " + fmt.Sprint(n) + " data points",
		Headers: []string{"dataset", "REQ", "KLL", "UDDS", "DDS", "Moments"},
		Notes: []string{
			"paper (1M points): Pareto 16.99/4.24/27.96/5.42/0.14; Uniform 16.99/4.24/20.9/1.84/0.14",
		},
	}
	detail := Table{
		Title:   "Sec 4.3 structural detail after the Pareto fill",
		Headers: []string{"sketch", "statistic", "value", "paper"},
	}
	seedState := opts.Seed
	for _, ds := range datagen.DatasetNames() {
		builders, err := core.BuildersForDataset(ds, datagen.SplitMix64(&seedState))
		if err != nil {
			return nil, err
		}
		row := []string{ds}
		for _, alg := range []string{core.AlgReq, core.AlgKLL, core.AlgUDD, core.AlgDD, core.AlgMoments} {
			src, err := datagen.NewDataset(ds, datagen.SplitMix64(&seedState))
			if err != nil {
				return nil, err
			}
			sk := builders[alg]()
			for i := 0; i < n; i++ {
				sk.Insert(src.Next())
			}
			row = append(row, fmt.Sprintf("%.2f", float64(sk.MemoryBytes())/1024))
			if ds == datagen.DatasetPareto {
				switch v := sk.(type) {
				case *req.Sketch:
					detail.Rows = append(detail.Rows, []string{"REQ", "retained items", fmt.Sprint(v.Retained()), "4177"})
				case *kll.Sketch:
					detail.Rows = append(detail.Rows, []string{"KLL", "retained items", fmt.Sprint(v.Retained()), "1048"})
				case *uddsketch.Sketch:
					detail.Rows = append(detail.Rows, []string{"UDDS", "non-empty buckets", fmt.Sprint(v.NonEmptyBuckets()), "981"})
					detail.Rows = append(detail.Rows, []string{"UDDS", "collapses", fmt.Sprint(v.Collapses()), "~11"})
				case *ddsketch.Sketch:
					detail.Rows = append(detail.Rows, []string{"DDS", "non-empty buckets", fmt.Sprint(v.NonEmptyBuckets()), "~670"})
				}
			}
		}
		tbl.Rows = append(tbl.Rows, row)
		opts.logf("table3: %s done", ds)
	}
	if opts.Scale != 1.0 {
		tbl.Notes = append(tbl.Notes, fmt.Sprintf("scaled run: %d points per fill (use -scale 1 for the paper's 1M)", n))
	}
	return []Table{tbl, detail}, nil
}

// runFig4 renders the four data-set histograms and their summary
// statistics, validating the synthetic stand-ins' defining properties
// (top-10 value mass, kurtosis, range).
func runFig4(opts Options) ([]Table, error) {
	n := opts.scaled(1_000_000)
	summary := Table{
		Title:   "Fig 4: data-set shape summary (" + fmt.Sprint(n) + " samples each)",
		Headers: []string{"dataset", "min", "p50", "p99", "max", "kurtosis", "top-10 value mass"},
		Notes: []string{
			"paper: NYT top-10 mass ≈ 31.2%, Power top-10 mass ≈ 4.5% (Sec 4.5.3)",
			"NYT and Power are synthetic stand-ins; see DESIGN.md substitutions",
		},
	}
	var tables []Table
	seedState := opts.Seed ^ 0xf19f19
	for _, ds := range datagen.DatasetNames() {
		src, err := datagen.NewDataset(ds, datagen.SplitMix64(&seedState))
		if err != nil {
			return nil, err
		}
		data := datagen.Take(src, n)
		ex := stats.NewExactQuantiles(data)
		var mom stats.Moments
		mom.AddAll(data)
		summary.Rows = append(summary.Rows, []string{
			ds,
			fmt.Sprintf("%.3g", ex.Min()),
			fmt.Sprintf("%.4g", ex.Quantile(0.5)),
			fmt.Sprintf("%.4g", ex.Quantile(0.99)),
			fmt.Sprintf("%.3g", ex.Max()),
			fmt.Sprintf("%.1f", mom.Kurtosis()),
			fmt.Sprintf("%.1f%%", 100*stats.TopValueMass(data, 10)),
		})
		// Histogram over a range that keeps the shape visible (clip the
		// extreme Pareto tail like the paper's log-scaled panels do).
		hi := ex.Quantile(0.995)
		h := stats.NewHistogram(data, ex.Min(), hi, 20)
		ht := Table{
			Title:   fmt.Sprintf("Fig 4 histogram: %s (clipped at p99.5 = %.4g)", ds, hi),
			Headers: []string{"bin-low", "bar"},
		}
		var maxC int64 = 1
		for _, c := range h.Counts {
			if c > maxC {
				maxC = c
			}
		}
		for i, c := range h.Counts {
			lo := ex.Min() + float64(i)*(hi-ex.Min())/20
			bar := ""
			for j := int64(0); j < 40*c/maxC; j++ {
				bar += "#"
			}
			ht.Rows = append(ht.Rows, []string{fmt.Sprintf("%.4g", lo), bar})
		}
		tables = append(tables, ht)
		opts.logf("fig4: %s done", ds)
	}
	return append([]Table{summary}, tables...), nil
}
