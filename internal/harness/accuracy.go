package harness

import (
	"fmt"
	"math"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/sketch"
	"repro/internal/stats"
	"repro/internal/stream"
)

func init() {
	register(Experiment{
		ID:    "fig6",
		Title: "Accuracy of each algorithm against the four data sets (streaming windows)",
		Ref:   "Fig 6",
		Run:   func(o Options) ([]Table, error) { return runFig6(o, false) },
	})
	register(Experiment{
		ID:    "late",
		Title: "Accuracy with late-arriving data dropped (exponential network delay)",
		Ref:   "Sec 4.6",
		Run:   func(o Options) ([]Table, error) { return runFig6(o, true) },
	})
	register(Experiment{
		ID:    "fig7",
		Title: "Accuracy of the 0.98 quantile as a function of kurtosis",
		Ref:   "Fig 7",
		Run:   runFig7,
	})
	register(Experiment{
		ID:    "fig8",
		Title: "Adaptability: accuracy under a mid-stream distribution switch",
		Ref:   "Fig 8 / Sec 4.5.7",
		Run:   runFig8,
	})
	register(Experiment{
		ID:    "winsize",
		Title: "Sensitivity of accuracy to window size (5s/10s/20s)",
		Ref:   "Sec 4.7",
		Run:   runWinsize,
	})
}

// accAgg accumulates per-run group errors for one algorithm.
type accAgg struct {
	mid, upper, p99 stats.Summary
}

// streamAccuracy runs the study's Flink-style accuracy experiment for one
// data set: Rate events/s into tumbling windows, the first window
// discarded, group errors averaged over the remaining windows, repeated
// over runs. delayMean > 0 enables the late-data configuration.
func streamAccuracy(opts Options, dataset string, delayMean time.Duration) (map[string]*accAgg, *stats.Summary, error) {
	return streamAccuracyPartitioned(opts, dataset, delayMean, 4)
}

// streamAccuracyPartitioned is streamAccuracy with an explicit partition
// count (the ablation-partitions experiment varies it; everything else
// uses the default of 4).
func streamAccuracyPartitioned(opts Options, dataset string, delayMean time.Duration, partitions int) (map[string]*accAgg, *stats.Summary, error) {
	windowDur := time.Duration(opts.WindowSeconds * opts.Scale * float64(time.Second))
	if windowDur < 100*time.Millisecond {
		windowDur = 100 * time.Millisecond
	}
	var slideDur time.Duration
	effLambda := 0.0
	if opts.SlideSeconds > 0 {
		// Preserve the window:slide ratio under Scale (and the 100 ms
		// clamp above) so the pane geometry is scale-invariant.
		slideDur = time.Duration(float64(windowDur) * opts.SlideSeconds / opts.WindowSeconds)
		if opts.DecayLambda > 0 {
			// Rescale λ so exp(-λ·age) across the scaled window matches
			// the requested profile across the paper-scale window.
			effLambda = opts.DecayLambda * opts.WindowSeconds * float64(time.Second) / float64(windowDur)
		}
	}
	runs := opts.scaledRuns()
	agg := make(map[string]*accAgg, 5)
	for _, alg := range core.AlgorithmNames() {
		agg[alg] = &accAgg{}
	}
	// Pre-derive every run's seeds so the result is identical at any
	// parallelism level.
	type runSeeds struct{ builder, source, delay uint64 }
	seedState := opts.Seed ^ hashString(dataset)
	seeds := make([]runSeeds, runs)
	for i := range seeds {
		seeds[i] = runSeeds{
			builder: datagen.SplitMix64(&seedState),
			source:  datagen.SplitMix64(&seedState),
			delay:   datagen.SplitMix64(&seedState),
		}
	}
	type runResult struct {
		perAlg map[string]*accAgg
		loss   float64
		err    error
	}
	results := make([]runResult, runs)
	oneRun := func(run int) runResult {
		builders, err := core.BuildersForDataset(dataset, seeds[run].builder)
		if err != nil {
			return runResult{err: err}
		}
		src, err := datagen.NewDataset(dataset, seeds[run].source)
		if err != nil {
			return runResult{err: err}
		}
		var delay stream.DelayModel = stream.ZeroDelay{}
		if delayMean > 0 {
			// Keep the dropped-share semantics at reduced scale by
			// shrinking the delay with the window.
			mean := time.Duration(float64(delayMean) * opts.Scale)
			if mean < time.Millisecond {
				mean = time.Millisecond
			}
			delay = stream.NewExponentialDelay(mean, seeds[run].delay)
		}
		cfg := stream.Config{
			WindowSize:    windowDur,
			Slide:         slideDur,
			DecayLambda:   effLambda,
			Rate:          opts.Rate,
			NumWindows:    opts.Windows + 1, // first window discarded
			Partitions:    partitions,
			Workers:       opts.StreamWorkers,
			Values:        src,
			Delay:         delay,
			Builder:       newMultiBuilder(core.AlgorithmNames(), builders),
			CollectValues: true,
			Metrics:       opts.engineMetrics(),
			MemoryBudget:  opts.MemoryBudget,
		}
		if opts.CheckpointDir != "" {
			// Fault-tolerant mode: per-run store subdirectory, plus the
			// source/delay factories recovery needs to re-derive the
			// stream from its seeds after a crash.
			store, err := checkpoint.NewDirStore(filepath.Join(
				opts.CheckpointDir, fmt.Sprintf("%s-run%03d", dataset, run)))
			if err != nil {
				return runResult{err: err}
			}
			cfg.CheckpointStore = store
			cfg.CheckpointEvery = opts.CheckpointEvery
			cfg.Faults = opts.Faults
			srcSeed := seeds[run].source
			cfg.NewValues = func() datagen.Source {
				s, err := datagen.NewDataset(dataset, srcSeed)
				if err != nil {
					return nil // NewDataset already succeeded above with the same args
				}
				return s
			}
			delaySeed := seeds[run].delay
			cfg.NewDelay = func() stream.DelayModel {
				if delayMean <= 0 {
					return stream.ZeroDelay{}
				}
				mean := time.Duration(float64(delayMean) * opts.Scale)
				if mean < time.Millisecond {
					mean = time.Millisecond
				}
				return stream.NewExponentialDelay(mean, delaySeed)
			}
		}
		eng, err := stream.NewEngine(cfg)
		if err != nil {
			return runResult{err: err}
		}
		// One evaluation slot per window (slot 0 is the discarded warm-up
		// window). Both the inline path and the worker pool fill slots by
		// window index, and the fold below reads them in window order, so
		// accuracy output is bit-identical at any EvalWorkers value.
		type windowEval struct {
			perAlg map[string]core.WindowAccuracy
			err    error
		}
		evals := make([]windowEval, opts.Windows+1)
		evalOne := func(r stream.WindowResult) windowEval {
			if len(r.Values) == 0 {
				return windowEval{err: fmt.Errorf("harness: empty window %d on %s", r.Index, dataset)}
			}
			var exact core.QuantileOracle = stats.NewExactQuantiles(r.Values)
			if effLambda > 0 {
				// Decayed windows are judged against the weighted exact
				// distribution the engine's pane down-weighting targets.
				exact = decayedOracle(r, effLambda)
			}
			multi := r.Sketch.(*multiSketch)
			perWin := make(map[string]core.WindowAccuracy, 5)
			for _, alg := range core.AlgorithmNames() {
				wa, err := core.EvaluateAgainst(multi.child(alg), exact)
				if err != nil {
					return windowEval{err: fmt.Errorf("harness: %s window %d: %w", alg, r.Index, err)}
				}
				perWin[alg] = wa
			}
			return windowEval{perAlg: perWin}
		}
		var st stream.Stats
		if opts.CheckpointDir != "" {
			// RunRecovering collects windows itself (re-fired windows after
			// a recovery overwrite their bit-identical first emission), so
			// evaluation happens after the run completes.
			winResults, stats, rerr := stream.RunRecovering(cfg)
			if rerr != nil {
				return runResult{err: rerr}
			}
			st = stats
			for _, r := range winResults {
				if r.Index == 0 {
					continue
				}
				evals[r.Index] = evalOne(r)
			}
		} else if evalWorkers := opts.evalWorkers(); evalWorkers <= 1 {
			st, err = eng.Run(func(r stream.WindowResult) {
				if r.Index == 0 {
					return
				}
				evals[r.Index] = evalOne(r)
			})
		} else {
			// The engine fires windows in index order and hands over each
			// window's freshly-built Values slice and sketch, never touching
			// them again, so evaluation can proceed concurrently with the
			// stream replay of later windows.
			jobs := make(chan stream.WindowResult, evalWorkers)
			var wg sync.WaitGroup
			for w := 0; w < evalWorkers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for r := range jobs {
						evals[r.Index] = evalOne(r)
					}
				}()
			}
			st, err = eng.Run(func(r stream.WindowResult) {
				if r.Index == 0 {
					return
				}
				jobs <- r
			})
			close(jobs)
			wg.Wait()
		}
		if err != nil {
			return runResult{err: err}
		}
		perAlg := make(map[string]*accAgg, 5)
		for _, alg := range core.AlgorithmNames() {
			perAlg[alg] = &accAgg{}
		}
		for idx := 1; idx <= opts.Windows; idx++ {
			we := evals[idx]
			if we.err != nil {
				return runResult{err: we.err}
			}
			for _, alg := range core.AlgorithmNames() {
				wa := we.perAlg[alg]
				perAlg[alg].mid.Observe(wa.Mid)
				perAlg[alg].upper.Observe(wa.Upper)
				perAlg[alg].p99.Observe(wa.P99)
			}
		}
		return runResult{perAlg: perAlg, loss: st.LossRate()}
	}

	workers := opts.parallelism()
	if workers > runs {
		workers = runs
	}
	if workers <= 1 {
		for run := 0; run < runs; run++ {
			results[run] = oneRun(run)
			opts.logf("%s run %d/%d done (loss %.2f%%)", dataset, run+1, runs, 100*results[run].loss)
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for run := range next {
					results[run] = oneRun(run)
				}
			}()
		}
		for run := 0; run < runs; run++ {
			next <- run
		}
		close(next)
		wg.Wait()
		opts.logf("%s: %d runs done (%d workers)", dataset, runs, workers)
	}

	var loss stats.Summary
	for run := 0; run < runs; run++ {
		r := results[run]
		if r.err != nil {
			return nil, nil, r.err
		}
		for _, alg := range core.AlgorithmNames() {
			agg[alg].mid.Observe(r.perAlg[alg].mid.Mean())
			agg[alg].upper.Observe(r.perAlg[alg].upper.Mean())
			agg[alg].p99.Observe(r.perAlg[alg].p99.Mean())
		}
		loss.Observe(r.loss)
	}
	return agg, &loss, nil
}

// decayedOracle builds the weighted exact ground truth of one decayed
// sliding window: every value of pane segment i (segments delimited by
// r.PaneCounts, oldest first, values concatenated in the same order)
// carries weight exp(-λ·age_i), the exact weight the engine applied to
// that pane's sketch at window assembly.
func decayedOracle(r stream.WindowResult, lambda float64) *stats.WeightedQuantiles {
	n := len(r.PaneCounts)
	paneLen := (r.End - r.Start) / time.Duration(n)
	weights := make([]float64, 0, len(r.Values))
	for i, c := range r.PaneCounts {
		w := math.Exp(-lambda * (time.Duration(n-1-i) * paneLen).Seconds())
		for k := 0; k < c; k++ {
			weights = append(weights, w)
		}
	}
	return stats.NewWeightedQuantiles(r.Values, weights)
}

// RunAccuracy runs the Fig 6-style streaming accuracy evaluation for one
// data set and renders its table. Exported for benchmarks and tools that
// need a single-dataset accuracy pass without the full fig6 sweep.
func RunAccuracy(opts Options, dataset string) (Table, error) {
	agg, _, err := streamAccuracy(opts, dataset, 0)
	if err != nil {
		return Table{}, err
	}
	tbl := Table{
		Title:   fmt.Sprintf("accuracy: mean relative error on %s", dataset),
		Headers: []string{"sketch", "mid (.05-.9)", "upper (.95,.98)", "p99"},
	}
	for _, alg := range core.AlgorithmNames() {
		a := agg[alg]
		tbl.Rows = append(tbl.Rows, []string{
			alg,
			fmtErrCI(a.mid.Mean(), a.mid.CI95()),
			fmtErrCI(a.upper.Mean(), a.upper.CI95()),
			fmtErrCI(a.p99.Mean(), a.p99.CI95()),
		})
	}
	tbl.Notes = append(tbl.Notes, scaleNote(opts)...)
	return tbl, nil
}

// runFig6 reproduces Fig 6 (late=false) and the Sec 4.6 late-data variant
// (late=true): one accuracy table per data set.
func runFig6(opts Options, late bool) ([]Table, error) {
	var delayMean time.Duration
	if late {
		delayMean = 150 * time.Millisecond
	}
	panels := map[string]string{
		datagen.DatasetPareto:  "Fig 6a",
		datagen.DatasetUniform: "Fig 6b",
		datagen.DatasetNYT:     "Fig 6c",
		datagen.DatasetPower:   "Fig 6d",
	}
	var tables []Table
	for _, ds := range datagen.DatasetNames() {
		agg, loss, err := streamAccuracy(opts, ds, delayMean)
		if err != nil {
			return nil, err
		}
		title := fmt.Sprintf("%s: mean relative error on %s", panels[ds], ds)
		if late {
			title = fmt.Sprintf("Sec 4.6 (late data): mean relative error on %s (loss %.2f%%)", ds, 100*loss.Mean())
		}
		tbl := Table{
			Title:   title,
			Headers: []string{"sketch", "mid (.05-.9)", "upper (.95,.98)", "p99"},
		}
		for _, alg := range core.AlgorithmNames() {
			a := agg[alg]
			tbl.Rows = append(tbl.Rows, []string{
				alg,
				fmtErrCI(a.mid.Mean(), a.mid.CI95()),
				fmtErrCI(a.upper.Mean(), a.upper.CI95()),
				fmtErrCI(a.p99.Mean(), a.p99.CI95()),
			})
		}
		tbl.Notes = append(tbl.Notes, scaleNote(opts)...)
		tables = append(tables, tbl)
	}
	return tables, nil
}

// runFig7 reproduces Fig 7: relative error of the 0.98 quantile across
// data sets of increasing kurtosis.
func runFig7(opts Options) ([]Table, error) {
	n := opts.scaled(1_000_000)
	runs := opts.scaledRuns()
	sweepSeed := opts.Seed ^ 0x717171
	points := datagen.NewKurtosisSweep(sweepSeed, minInt(n, 200_000))
	tbl := Table{
		Title:   "Fig 7: relative error of the 0.98 quantile vs kurtosis",
		Headers: append([]string{"dataset", "kurtosis"}, core.AlgorithmNames()...),
		Notes: []string{
			"paper: DDS/UDDS flat across kurtosis; KLL degrades with skew; REQ robust; Moments fails on real-world shapes",
		},
	}
	seedState := sweepSeed ^ 0x9090
	for _, p := range points {
		aggs := make(map[string]*stats.Summary, 5)
		for _, alg := range core.AlgorithmNames() {
			aggs[alg] = &stats.Summary{}
		}
		var kurt float64
		for run := 0; run < runs; run++ {
			// Fresh sources per run: re-derive the sweep to keep sources
			// independent across runs.
			runPts := datagen.NewKurtosisSweep(sweepSeed^datagen.SplitMix64(&seedState), 1000)
			var src datagen.Source
			for _, rp := range runPts {
				if rp.Name == p.Name {
					src = rp.Src
					break
				}
			}
			if src == nil {
				return nil, fmt.Errorf("harness: sweep point %q vanished", p.Name)
			}
			data := datagen.Take(src, n)
			exact := stats.NewExactQuantiles(data)
			kurt = stats.Kurtosis(data)
			logTr := p.Name == datagen.DatasetPareto || p.Name == datagen.DatasetPower
			for _, alg := range core.AlgorithmNames() {
				b, err := core.NewBuilder(alg, core.BuilderOptions{
					LogTransformMoments: logTr,
					Seed:                datagen.SplitMix64(&seedState),
				})
				if err != nil {
					return nil, err
				}
				sk := b()
				sketch.InsertAll(sk, data)
				est, err := sk.Quantile(0.98)
				if err != nil {
					return nil, fmt.Errorf("harness: fig7 %s on %s: %w", alg, p.Name, err)
				}
				aggs[alg].Observe(stats.RelativeError(exact.Quantile(0.98), est))
			}
		}
		row := []string{p.Name, fmt.Sprintf("%.1f", kurt)}
		for _, alg := range core.AlgorithmNames() {
			row = append(row, fmtErr(aggs[alg].Mean()))
		}
		tbl.Rows = append(tbl.Rows, row)
		opts.logf("fig7: %s done (kurtosis %.1f)", p.Name, kurt)
	}
	tbl.Notes = append(tbl.Notes, scaleNote(opts)...)
	return []Table{tbl}, nil
}

// runFig8 reproduces the adaptability experiment: (scaled) 1M points of
// Binomial(30, 0.4) followed by 1M of U(30, 100); per-quantile error.
func runFig8(opts Options) ([]Table, error) {
	half := opts.scaled(1_000_000)
	runs := opts.scaledRuns()
	qs := core.AllQuantiles()
	aggs := make(map[string][]stats.Summary, 5)
	for _, alg := range core.AlgorithmNames() {
		aggs[alg] = make([]stats.Summary, len(qs))
	}
	seedState := opts.Seed ^ 0x8a8a8a
	for run := 0; run < runs; run++ {
		src := datagen.NewAdaptabilityWorkload(datagen.SplitMix64(&seedState), half)
		data := datagen.Take(src, 2*half)
		exact := stats.NewExactQuantiles(data)
		for _, alg := range core.AlgorithmNames() {
			b, err := core.NewBuilder(alg, core.BuilderOptions{Seed: datagen.SplitMix64(&seedState)})
			if err != nil {
				return nil, err
			}
			sk := b()
			sketch.InsertAll(sk, data)
			ests, err := sketch.Quantiles(sk, qs)
			if err != nil {
				return nil, fmt.Errorf("harness: fig8 %s: %w", alg, err)
			}
			for i, q := range qs {
				aggs[alg][i].Observe(stats.RelativeError(exact.Quantile(q), ests[i]))
			}
		}
		opts.logf("fig8: run %d/%d done", run+1, runs)
	}
	tbl := Table{
		Title:   "Fig 8b: adaptability — relative error per quantile (binomial→uniform switch at the median)",
		Headers: append([]string{"quantile"}, core.AlgorithmNames()...),
		Notes: []string{
			"paper: error jumps at q=0.5 (the switch point) for KLL/REQ/Moments; DDS/UDDS stable",
		},
	}
	for i, q := range qs {
		row := []string{fmt.Sprintf("%.2f", q)}
		for _, alg := range core.AlgorithmNames() {
			row = append(row, fmtErr(aggs[alg][i].Mean()))
		}
		tbl.Rows = append(tbl.Rows, row)
	}
	tbl.Notes = append(tbl.Notes, scaleNote(opts)...)
	return []Table{tbl}, nil
}

// runWinsize reproduces the Sec 4.7 sensitivity analysis: Fig 6 accuracy
// at window sizes 5, 10 and 20 seconds, reporting the overall mean
// relative error (all 8 quantiles) per algorithm and window size.
func runWinsize(opts Options) ([]Table, error) {
	var tables []Table
	for _, ds := range datagen.DatasetNames() {
		tbl := Table{
			Title:   fmt.Sprintf("Sec 4.7: overall mean relative error on %s by window size", ds),
			Headers: []string{"sketch", "5 s", "10 s", "20 s"},
			Notes: []string{
				"paper: Moments improves with window size on real-world data; KLL/REQ degrade slightly; DDS/UDDS flat",
			},
		}
		rows := make(map[string][]string, 5)
		for _, alg := range core.AlgorithmNames() {
			rows[alg] = []string{alg}
		}
		for _, ws := range []float64{5, 10, 20} {
			o := opts
			o.WindowSeconds = ws
			if opts.SlideSeconds > 0 {
				// Preserve the requested slide:window ratio across the
				// sweep — a fixed absolute slide would degenerate to
				// tumbling at the smallest window (and reject decay).
				o.SlideSeconds = opts.SlideSeconds * ws / opts.WindowSeconds
			}
			agg, _, err := streamAccuracy(o, ds, 0)
			if err != nil {
				return nil, err
			}
			for _, alg := range core.AlgorithmNames() {
				a := agg[alg]
				nMid, nUp := float64(len(core.MidQuantiles)), float64(len(core.UpperQuantiles))
				overall := (a.mid.Mean()*nMid + a.upper.Mean()*nUp + a.p99.Mean()) / (nMid + nUp + 1)
				rows[alg] = append(rows[alg], fmtErr(overall))
			}
			opts.logf("winsize: %s %vs done", ds, ws)
		}
		for _, alg := range core.AlgorithmNames() {
			tbl.Rows = append(tbl.Rows, rows[alg])
		}
		tbl.Notes = append(tbl.Notes, scaleNote(opts)...)
		tables = append(tables, tbl)
	}
	return tables, nil
}

// scaleNote documents sub-paper-scale runs on every produced table.
func scaleNote(opts Options) []string {
	if opts.Scale == 1.0 {
		return nil
	}
	return []string{fmt.Sprintf("scaled run (scale=%g): window/runs reduced proportionally; use -scale 1 for paper scale", opts.Scale)}
}

// hashString gives a stable seed perturbation per dataset name.
func hashString(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
