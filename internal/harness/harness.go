// Package harness regenerates every table and figure of the study's
// evaluation section. Each experiment is registered under the paper
// artifact it reproduces (table3, fig5a, …, winsize) and emits one or
// more text tables with the same rows/series the paper reports.
//
// Experiments accept a Scale factor so the full paper-sized workloads
// (which run for tens of minutes) can be dialed down for quick runs; the
// default CLI scale of 0.1 preserves every qualitative result. All
// randomness is seeded, so runs are reproducible.
package harness

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
)

// Options control experiment size and reporting.
type Options struct {
	// Scale multiplies every workload size (stream length, sketch count,
	// window size). 1.0 reproduces the paper's scale.
	Scale float64
	// Runs is the number of independent repetitions averaged for accuracy
	// experiments (paper: 10).
	Runs int
	// Rate is the stream event rate (paper: 50,000 events/s).
	Rate int
	// WindowSeconds is the tumbling window length in seconds (paper: 20).
	WindowSeconds float64
	// SlideSeconds, when in (0, WindowSeconds), switches the accuracy
	// streams to sliding windows of WindowSeconds length starting every
	// SlideSeconds, computed by the engine's pane-based sharing. The
	// window-to-slide ratio is preserved under Scale. 0 keeps tumbling
	// windows.
	SlideSeconds float64
	// DecayLambda, when positive (requires SlideSeconds), applies
	// exponential time decay at window assembly: older panes are
	// down-weighted by exp(-DecayLambda·age). Accuracy is then judged
	// against the correspondingly weighted exact quantiles. The decay
	// rate is rescaled with the window so the per-window weight profile
	// is Scale-invariant.
	DecayLambda float64
	// Windows is the number of measured windows per run (paper: 10, after
	// discarding the first).
	Windows int
	// Seed is the root seed all per-run seeds derive from.
	Seed uint64
	// Parallel bounds how many independent accuracy runs execute
	// concurrently (each run is single-threaded and fully seeded, so
	// results are identical at any parallelism). 0 or 1 = sequential.
	Parallel int
	// StreamWorkers is passed through as stream.Config.Workers: the
	// number of goroutines running partition-local sketch inserts inside
	// each engine run. Results are bit-identical at any value; 0 or 1 =
	// inserts on the engine's goroutine.
	StreamWorkers int
	// EvalWorkers bounds how many window evaluations (exact-quantile
	// sort + sketch queries) run concurrently inside each accuracy run.
	// Windows are handed off as the engine fires them and folded back in
	// window order, so accuracy output is bit-identical at any value.
	// 0 or 1 = evaluation inline on the engine's emit callback.
	EvalWorkers int
	// Metrics, when non-nil, receives engine counters from every stream
	// run the experiments execute (the registry's shared EngineMetrics is
	// passed as stream.Config.Metrics). Callers that also want sketch
	// counters should wire the registry with core.EnableMetrics first.
	Metrics *obs.Registry
	// CheckpointDir, when non-empty, runs every accuracy stream fault
	// tolerantly: each run checkpoints into its own subdirectory of this
	// directory and crashes recover automatically via
	// stream.RunRecovering. Output is bit-identical to an
	// un-checkpointed run.
	CheckpointDir string
	// CheckpointEvery is the snapshot cadence in fired windows; values
	// below 1 mean every window. Only meaningful with CheckpointDir.
	CheckpointEvery int
	// Faults optionally injects a deterministic fault plan into the
	// stream runs (panic a worker, stall a partition, corrupt a stored
	// checkpoint, duplicate a batch). Faults are one-shot across the
	// whole experiment; recovery keeps the results identical.
	Faults *faultinject.Plan
	// MemoryBudget, when positive, caps each stream run's live sketch
	// footprint in bytes (stream.Config.MemoryBudget): sketches degrade
	// in place when the budget is exceeded, and events are shed only
	// when degradation cannot fit it.
	MemoryBudget int
	// Out receives progress logging; nil silences it.
	Out io.Writer
}

// engineMetrics returns the EngineMetrics to pass to stream configs
// (nil when metrics are disabled).
func (o Options) engineMetrics() *obs.EngineMetrics {
	if o.Metrics == nil {
		return nil
	}
	return o.Metrics.Engine()
}

// DefaultOptions returns the paper's experimental configuration at the
// given scale.
func DefaultOptions(scale float64) Options {
	return Options{
		Scale:         scale,
		Runs:          10,
		Rate:          50000,
		WindowSeconds: 20,
		Windows:       10,
		Seed:          0x5eedc0de,
	}
}

// scaled returns max(1, round(n·Scale)).
func (o Options) scaled(n int) int {
	v := int(float64(n)*o.Scale + 0.5)
	if v < 1 {
		v = 1
	}
	return v
}

// scaledRuns returns the repetition count at the current scale, at least 2
// so confidence intervals exist.
func (o Options) scaledRuns() int {
	r := o.scaled(o.Runs)
	if r < 2 {
		r = 2
	}
	return r
}

// parallelism returns the worker count for per-run fan-out.
func (o Options) parallelism() int {
	if o.Parallel < 1 {
		return 1
	}
	return o.Parallel
}

// evalWorkers returns the worker count for per-window evaluation fan-out.
func (o Options) evalWorkers() int {
	if o.EvalWorkers < 1 {
		return 1
	}
	return o.EvalWorkers
}

// logf writes progress output when Out is set.
func (o Options) logf(format string, args ...any) {
	if o.Out != nil {
		fmt.Fprintf(o.Out, format+"\n", args...)
	}
}

// Table is one rendered result artifact.
type Table struct {
	// Title names the artifact ("Table 3: ...", "Fig 6a: ...").
	Title string
	// Headers label the columns.
	Headers []string
	// Rows hold the cells, one slice per row.
	Rows [][]string
	// Notes carries caveats (scaling, substitutions) printed under the
	// table.
	Notes []string
}

// Render draws the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	b.WriteString(t.Title)
	b.WriteString("\n")
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	total := len(widths)*2 - 2
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteString("\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		b.WriteString("note: ")
		b.WriteString(n)
		b.WriteString("\n")
	}
	return b.String()
}

// CSV renders the table as comma-separated values (quotes are not needed
// for the numeric/identifier cells the harness emits).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Headers, ","))
	b.WriteString("\n")
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteString("\n")
	}
	return b.String()
}

// Experiment is one registered paper artifact.
type Experiment struct {
	// ID is the registry key ("table3", "fig5a", ...).
	ID string
	// Title is a one-line description.
	Title string
	// Ref cites the paper artifact ("Table 3", "Fig 5a", "Sec 4.6").
	Ref string
	// Run executes the experiment.
	Run func(Options) ([]Table, error)
}

var registry = map[string]Experiment{}

// register adds an experiment at init time; duplicate IDs panic.
func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("harness: duplicate experiment id " + e.ID)
	}
	registry[e.ID] = e
}

// Get looks up an experiment by ID.
func Get(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// Experiments returns all registered experiments sorted by ID.
func Experiments() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// measure runs fn and returns its wall-clock duration.
func measure(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}

// fmtDur renders a duration per-operation with appropriate units.
func fmtDur(d time.Duration) string {
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%.1f ns", float64(d.Nanoseconds()))
	case d < time.Millisecond:
		return fmt.Sprintf("%.3f µs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.3f ms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.3f s", d.Seconds())
	}
}

// fmtErr renders a relative error.
func fmtErr(e float64) string { return fmt.Sprintf("%.5f", e) }

// fmtErrCI renders mean ± 95% CI.
func fmtErrCI(mean, ci float64) string { return fmt.Sprintf("%.5f ±%.5f", mean, ci) }
