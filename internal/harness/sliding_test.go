package harness

import (
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
)

// TestSlidingAccuracyTiny drives the accuracy pipeline in pane-sharing
// sliding mode: every algorithm must evaluate cleanly against the
// per-window exact oracle when windows overlap, and the reported
// errors must stay in the sketches' configured accuracy regime.
func TestSlidingAccuracyTiny(t *testing.T) {
	o := tinyOpts()
	o.SlideSeconds = o.WindowSeconds / 4
	agg, loss, err := streamAccuracy(o, datagen.DatasetPareto, 0)
	if err != nil {
		t.Fatal(err)
	}
	if loss.Mean() != 0 {
		t.Errorf("zero-delay sliding run lost %.2f%% of events", 100*loss.Mean())
	}
	for _, alg := range core.AlgorithmNames() {
		a := agg[alg]
		if a.mid.N() == 0 {
			t.Fatalf("%s: no windows evaluated", alg)
		}
		if m := a.mid.Mean(); m < 0 || m > 0.5 {
			t.Errorf("%s: sliding mid-group error %.4f outside sanity band", alg, m)
		}
	}
}

// TestDecayedAccuracyTiny adds exponential decay: the engine
// down-weights old panes and the evaluation judges against the
// matching weighted oracle, so errors must stay in the same regime as
// the undecayed run — a mismatch between the two weightings would blow
// the error up by the decayed/undecayed quantile gap instead.
func TestDecayedAccuracyTiny(t *testing.T) {
	o := tinyOpts()
	o.SlideSeconds = o.WindowSeconds / 4
	o.DecayLambda = 0.1
	agg, _, err := streamAccuracy(o, datagen.DatasetPareto, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range core.AlgorithmNames() {
		a := agg[alg]
		if a.mid.N() == 0 {
			t.Fatalf("%s: no windows evaluated", alg)
		}
		if m := a.mid.Mean(); m < 0 || m > 0.5 {
			t.Errorf("%s: decayed mid-group error %.4f outside sanity band", alg, m)
		}
	}
}
