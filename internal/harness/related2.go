package harness

import (
	"fmt"
	"time"

	"repro/internal/datagen"
	"repro/internal/dcs"
	"repro/internal/ddsketch"
	"repro/internal/hdr"
	"repro/internal/kll"
	"repro/internal/sketch"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "related2",
		Title: "HDR Histogram vs DDSketch and Dyadic Count Sketch vs KLL (the Sec 5.2 exclusion claims)",
		Ref:   "Sec 5.2.2/5.2.3",
		Run:   runRelated2,
	})
}

// runRelated2 verifies the two remaining exclusion claims: (a) HDR is
// comparable to DDSketch on accuracy and insertion but worse on merge
// speed and total size (Sec 5.2.2, citing Masson et al.); (b) KLL
// outperforms DCS on memory, speed and accuracy (Sec 5.2.3, citing Zhao
// et al.).
func runRelated2(opts Options) ([]Table, error) {
	n := opts.scaled(1_000_000)
	seedState := opts.Seed ^ 0x5e1a7ed2

	// --- HDR vs DDSketch, NYT-like fare data (bounded positive range,
	// which suits HDR's fixed trackable range). Values are scaled to
	// cents so HDR's integer recording retains precision.
	hdrTbl := Table{
		Title:   fmt.Sprintf("HDR Histogram vs DDSketch (%d synthetic NYT fares, recorded in cents)", n),
		Headers: []string{"sketch", "mid err", "upper err", "p99 err", "insert/op", "merge/op", "memory KB"},
		Notes: []string{
			"paper Sec 5.2.2: HDR ≈ DDSketch on accuracy/insert, worse on merge speed and total sketch size",
		},
	}
	src := datagen.NewSyntheticNYT(datagen.SplitMix64(&seedState))
	fares := datagen.Take(src, n)
	cents := make([]float64, n)
	for i, f := range fares {
		cents[i] = f * 100
	}
	exact := stats.NewExactQuantiles(cents)
	evalGroups := func(sk sketch.Sketch) (mid, upper, p99 float64, err error) {
		sum := func(qs []float64) (float64, error) {
			ests, err := sketch.Quantiles(sk, qs)
			if err != nil {
				return 0, err
			}
			var s float64
			for i, q := range qs {
				s += stats.RelativeError(exact.Quantile(q), ests[i])
			}
			return s / float64(len(qs)), nil
		}
		if mid, err = sum([]float64{0.05, 0.25, 0.5, 0.75, 0.9}); err != nil {
			return
		}
		if upper, err = sum([]float64{0.95, 0.98}); err != nil {
			return
		}
		p99, err = sum([]float64{0.99})
		return
	}
	type contender struct {
		name string
		make func() sketch.Sketch
	}
	hdrContenders := []contender{
		{"ddsketch", func() sketch.Sketch { return ddsketch.New(0.005) }},
		{"hdr", func() sketch.Sketch {
			h, err := hdr.New(1, 100_000, 3) // cents: up to $1000, 3 digits ≈ same α
			if err != nil {
				panic(err)
			}
			return h
		}},
	}
	for _, c := range hdrContenders {
		sk := c.make()
		ins := measure(func() { sketch.InsertAll(sk, cents) })
		mid, upper, p99, err := evalGroups(sk)
		if err != nil {
			return nil, fmt.Errorf("related2 %s: %w", c.name, err)
		}
		// Merge speed: fold 64 copies.
		part := c.make()
		sketch.InsertAll(part, cents[:n/8])
		acc := c.make()
		const merges = 64
		md := measure(func() {
			for i := 0; i < merges; i++ {
				if err := acc.Merge(part); err != nil {
					panic(err)
				}
			}
		})
		hdrTbl.Rows = append(hdrTbl.Rows, []string{
			c.name,
			fmtErr(mid), fmtErr(upper), fmtErr(p99),
			fmtDur(ins / time.Duration(n)),
			fmtDur(md / merges),
			fmt.Sprintf("%.2f", float64(sk.MemoryBytes())/1024),
		})
		opts.logf("related2: %s done", c.name)
	}

	// --- DCS vs KLL, uniform integer data in [0, 2^20) — DCS's home
	// turf (known universe), where it still loses on all three axes.
	dcsTbl := Table{
		Title:   fmt.Sprintf("Dyadic Count Sketch vs KLL (%d uniform integers in [0, 2^20))", n),
		Headers: []string{"sketch", "mean rank err", "insert/op", "query/op", "memory KB", "turnstile"},
		Notes: []string{
			"paper Sec 5.2.3: KLL outperforms DCS on memory, speed and accuracy; DCS's upside is deletion support",
		},
	}
	ints := make([]float64, n)
	u := datagen.NewUniform(0, 1<<20, datagen.SplitMix64(&seedState))
	for i := range ints {
		ints[i] = float64(int(u.Next()))
	}
	intExact := stats.NewExactQuantiles(ints)
	qs := []float64{0.05, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99}

	dcsContenders := []struct {
		name      string
		sk        sketch.Sketch
		turnstile string
	}{
		{"kll", kll.NewWithSeed(kll.DefaultK, datagen.SplitMix64(&seedState)), "no"},
	}
	{
		// Width chosen so DCS's footprint, while still an order of
		// magnitude above KLL's, is as small as the accuracy target
		// permits — the comparison the exclusion claim is about.
		f, err := dcs.NewFloat(0.0005, 1, 21, 5, 1024, datagen.SplitMix64(&seedState))
		if err != nil {
			return nil, err
		}
		dcsContenders = append(dcsContenders, struct {
			name      string
			sk        sketch.Sketch
			turnstile string
		}{"dcs", f, "yes"})
	}
	for _, c := range dcsContenders {
		ins := measure(func() { sketch.InsertAll(c.sk, ints) })
		var rankErr float64
		var ests []float64
		var qErr error
		qd := measure(func() { ests, qErr = sketch.Quantiles(c.sk, qs) })
		if qErr != nil {
			return nil, fmt.Errorf("related2 %s: %w", c.name, qErr)
		}
		for i, q := range qs {
			rankErr += relRankErr(intExact, q, ests[i])
		}
		dcsTbl.Rows = append(dcsTbl.Rows, []string{
			c.name,
			fmtErr(rankErr / float64(len(qs))),
			fmtDur(ins / time.Duration(n)),
			fmtDur(qd / time.Duration(len(qs))),
			fmt.Sprintf("%.1f", float64(c.sk.MemoryBytes())/1024),
			c.turnstile,
		})
		opts.logf("related2: %s done", c.name)
	}
	hdrTbl.Notes = append(hdrTbl.Notes, scaleNote(opts)...)
	return []Table{hdrTbl, dcsTbl}, nil
}

// relRankErr is |q − NormalizedRank(estimate)|.
func relRankErr(e *stats.ExactQuantiles, q, est float64) float64 {
	d := q - e.NormalizedRank(est)
	if d < 0 {
		d = -d
	}
	return d
}
