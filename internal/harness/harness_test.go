package harness

import (
	"os"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sketch"
)

// testRegistry is live for the whole harness test package (sketch
// packages wired via core.EnableMetrics, engines via Options.Metrics),
// so determinism guarantees like TestEvalWorkersDeterminism are proven
// to hold with metrics ENABLED, not just on the nil fast path.
var testRegistry *obs.Registry

func TestMain(m *testing.M) {
	testRegistry = obs.NewRegistry()
	core.EnableMetrics(testRegistry)
	os.Exit(m.Run())
}

func tinyOpts() Options {
	o := DefaultOptions(0.01)
	o.Runs = 2
	o.Metrics = testRegistry
	return o
}

func TestRegistryComplete(t *testing.T) {
	// Every paper artifact must be registered.
	want := []string{
		"table3", "fig4", "fig5a", "fig5b", "fig5c", "fig6", "fig7",
		"fig8", "late", "winsize", "table4", "related",
		"ablation-store", "ablation-hra", "ablation-mapping", "ablation-grid", "ablation-deletion", "ablation-partitions", "ablation-logmoments", "ablation-uddstore", "related2",
	}
	for _, id := range want {
		if _, ok := Get(id); !ok {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if len(Experiments()) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(Experiments()), len(want))
	}
	// Sorted and unique.
	exps := Experiments()
	for i := 1; i < len(exps); i++ {
		if exps[i].ID <= exps[i-1].ID {
			t.Error("Experiments() not sorted")
		}
	}
}

func TestTableRender(t *testing.T) {
	tbl := Table{
		Title:   "T",
		Headers: []string{"a", "bb"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Notes:   []string{"n1"},
	}
	out := tbl.Render()
	for _, want := range []string{"T\n", "a", "bb", "333", "note: n1"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	csv := tbl.CSV()
	if !strings.HasPrefix(csv, "a,bb\n1,2\n") {
		t.Errorf("csv = %q", csv)
	}
}

func TestOptionsScaling(t *testing.T) {
	o := DefaultOptions(0.1)
	if got := o.scaled(1000); got != 100 {
		t.Errorf("scaled(1000) = %d", got)
	}
	if got := o.scaled(1); got != 1 {
		t.Errorf("scaled(1) = %d, floor is 1", got)
	}
	if got := o.scaledRuns(); got < 2 {
		t.Errorf("scaledRuns = %d, floor is 2", got)
	}
	o.Scale = 1
	if got := o.scaled(1000); got != 1000 {
		t.Errorf("unit scale changed size: %d", got)
	}
}

// Each experiment must run end-to-end at tiny scale and produce
// non-empty tables. This is the integration test of the whole repo:
// generators → sketches → stream engine → evaluation → rendering.
func TestExperimentsRunTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep")
	}
	// winsize is fig6 × 3 window sizes; covered separately below at an
	// even smaller setting to bound runtime.
	for _, id := range []string{"table3", "fig4", "fig5a", "fig5b", "fig5c", "fig6", "fig7", "fig8", "late", "table4", "related", "ablation-store", "ablation-hra"} {
		id := id
		t.Run(id, func(t *testing.T) {
			e, _ := Get(id)
			opts := tinyOpts()
			if id == "fig5a" || id == "fig5b" {
				opts.Scale = 0.0005
			}
			tables, err := e.Run(opts)
			if err != nil {
				t.Fatal(err)
			}
			if len(tables) == 0 {
				t.Fatal("no tables")
			}
			for _, tbl := range tables {
				if len(tbl.Headers) == 0 || len(tbl.Rows) == 0 {
					t.Errorf("table %q is empty", tbl.Title)
				}
				for _, row := range tbl.Rows {
					if len(row) != len(tbl.Headers) {
						t.Errorf("table %q: row width %d != header width %d", tbl.Title, len(row), len(tbl.Headers))
					}
				}
			}
		})
	}
}

func TestWinsizeTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep")
	}
	e, _ := Get("winsize")
	o := tinyOpts()
	o.Scale = 0.004
	tables, err := e.Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 4 {
		t.Fatalf("winsize produced %d tables, want 4 datasets", len(tables))
	}
}

func TestMultiSketchFanOut(t *testing.T) {
	builders, err := core.BuildersForDataset("uniform", 1)
	if err != nil {
		t.Fatal(err)
	}
	mb := newMultiBuilder(core.AlgorithmNames(), builders)
	m := mb().(*multiSketch)
	for i := 1; i <= 1000; i++ {
		m.Insert(float64(i))
	}
	if m.Count() != 1000 {
		t.Fatalf("count = %d", m.Count())
	}
	for _, alg := range core.AlgorithmNames() {
		c := m.child(alg)
		if c.Count() != 1000 {
			t.Errorf("%s child count = %d", alg, c.Count())
		}
		v, err := c.Quantile(0.5)
		if err != nil {
			t.Errorf("%s: %v", alg, err)
		}
		if v < 400 || v > 600 {
			t.Errorf("%s median = %v", alg, v)
		}
	}
	// Merging multi sketches merges every child.
	m2 := mb().(*multiSketch)
	for i := 1001; i <= 2000; i++ {
		m2.Insert(float64(i))
	}
	if err := m.Merge(m2); err != nil {
		t.Fatal(err)
	}
	if m.Count() != 2000 {
		t.Errorf("merged count = %d", m.Count())
	}
	// The multiplexer itself is query-opaque.
	if _, err := m.Quantile(0.5); err == nil {
		t.Error("multiplexer Quantile should fail")
	}
	var foreign sketch.Sketch = mb()
	_ = foreign
	if err := m.Merge(builders["kll"]()); err == nil {
		t.Error("merging a non-multi sketch should fail")
	}
}

// TestMultiSketchSerde pins the multiplexer wire format the harness's
// checkpointed runs persist: a round-trip restores every child
// bit-identically, and corrupt input errors without touching the
// receiver.
func TestMultiSketchSerde(t *testing.T) {
	builders, err := core.BuildersForDataset("uniform", 7)
	if err != nil {
		t.Fatal(err)
	}
	mb := newMultiBuilder(core.AlgorithmNames(), builders)
	m := mb().(*multiSketch)
	for i := 1; i <= 5000; i++ {
		m.Insert(float64(i % 997))
	}
	blob, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back := mb().(*multiSketch)
	if err := back.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if back.Count() != m.Count() {
		t.Fatalf("round-trip count %d, want %d", back.Count(), m.Count())
	}
	blob2, err := back.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if string(blob) != string(blob2) {
		t.Error("round-trip is not bit-identical")
	}
	for _, alg := range core.AlgorithmNames() {
		a, _ := m.child(alg).Quantile(0.9)
		b, _ := back.child(alg).Quantile(0.9)
		if a != b {
			t.Errorf("%s child diverged after round-trip: %v vs %v", alg, a, b)
		}
	}
	// Corrupt input must error and leave the receiver unchanged.
	recv := mb().(*multiSketch)
	recv.Insert(42)
	before, _ := recv.MarshalBinary()
	for _, bad := range [][]byte{blob[:len(blob)/2], blob[:3], nil, append([]byte{0xFF}, blob[1:]...)} {
		if err := recv.UnmarshalBinary(bad); err == nil {
			t.Error("corrupt multi blob decoded")
		}
	}
	after, _ := recv.MarshalBinary()
	if string(before) != string(after) {
		t.Error("failed decode mutated the receiver")
	}
}

func TestFmtHelpers(t *testing.T) {
	if got := fmtDur(500); got != "500.0 ns" {
		t.Errorf("fmtDur(500ns) = %q", got)
	}
	if got := fmtDur(1500); !strings.Contains(got, "µs") {
		t.Errorf("fmtDur(1.5µs) = %q", got)
	}
	if got := fmtDur(2_500_000); !strings.Contains(got, "ms") {
		t.Errorf("fmtDur(2.5ms) = %q", got)
	}
	if got := fmtDur(2_500_000_000); !strings.Contains(got, "s") {
		t.Errorf("fmtDur(2.5s) = %q", got)
	}
	if got := fmtErr(0.123456); got != "0.12346" {
		t.Errorf("fmtErr = %q", got)
	}
	if got := fmtErrCI(0.1, 0.01); got != "0.10000 ±0.01000" {
		t.Errorf("fmtErrCI = %q", got)
	}
}

func TestHashStringStable(t *testing.T) {
	if hashString("pareto") != hashString("pareto") {
		t.Error("hash not deterministic")
	}
	if hashString("pareto") == hashString("uniform") {
		t.Error("hash collision on dataset names")
	}
}
