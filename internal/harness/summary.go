package harness

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/sketch"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "table4",
		Title: "Characteristic summary of each algorithm, derived from measurements",
		Ref:   "Table 4",
		Run:   runTable4,
	})
}

// sketchingApproach is static knowledge (Sec 4.8): whether the algorithm
// retains samples or a statistical summary.
var sketchingApproach = map[string]string{
	core.AlgKLL:     "Sampling",
	core.AlgMoments: "Summary",
	core.AlgDD:      "Summary",
	core.AlgUDD:     "Summary",
	core.AlgReq:     "Sampling",
}

// runTable4 regenerates the paper's qualitative summary from fresh
// measurements: speed tiers from micro-benchmarks, accuracy categories
// from per-dataset static accuracy, adaptability from the Fig 8 workload.
func runTable4(opts Options) ([]Table, error) {
	n := opts.scaled(1_000_000)
	if n > 1_000_000 {
		n = 1_000_000
	}
	algs := []string{core.AlgKLL, core.AlgMoments, core.AlgDD, core.AlgUDD, core.AlgReq}

	// --- speed tiers ---
	insertNS := map[string]float64{}
	queryNS := map[string]float64{}
	mergeNS := map[string]float64{}
	buf := presample(minInt(n, 500_000), opts.Seed^0x1414)
	builders, err := speedBuilders(opts.Seed)
	if err != nil {
		return nil, err
	}
	for _, alg := range algs {
		sk := builders[alg]()
		d := measure(func() {
			for i := 0; i < n; i++ {
				sk.Insert(buf[i%len(buf)])
			}
		})
		insertNS[alg] = float64(d.Nanoseconds()) / float64(n)

		qs := core.AllQuantiles()
		reps := 20
		var qd time.Duration
		var qErr error
		for r := 0; r < reps; r++ {
			sk.Insert(buf[r]) // invalidate solver caches between repetitions
			qd += measure(func() {
				if _, err := sketch.Quantiles(sk, qs); err != nil && qErr == nil {
					qErr = err
				}
			})
		}
		if qErr != nil {
			return nil, fmt.Errorf("harness: table4 query %s: %w", alg, qErr)
		}
		queryNS[alg] = float64(qd.Nanoseconds()) / float64(reps)

		pool := make([]sketch.Sketch, 8)
		fill := minInt(n, 100_000)
		for i := range pool {
			p := builders[alg]()
			for j := 0; j < fill; j++ {
				p.Insert(buf[(i*fill+j)%len(buf)])
			}
			pool[i] = p
		}
		acc := builders[alg]()
		count := 64
		var mErr error
		md := measure(func() {
			for i := 0; i < count; i++ {
				if err := acc.Merge(pool[i%len(pool)]); err != nil && mErr == nil {
					mErr = err
				}
			}
		})
		if mErr != nil {
			return nil, fmt.Errorf("harness: table4 merge %s: %w", alg, mErr)
		}
		mergeNS[alg] = float64(md.Nanoseconds()) / float64(count)
		opts.logf("table4: speed %s done", alg)
	}

	// --- accuracy categories ---
	type accCat struct{ tail, nontail map[string]float64 } // dataset → error
	cats := map[string]*accCat{}
	for _, alg := range algs {
		cats[alg] = &accCat{tail: map[string]float64{}, nontail: map[string]float64{}}
	}
	seedState := opts.Seed ^ 0x4242
	accN := minInt(n, 500_000)
	for _, ds := range datagen.DatasetNames() {
		src, err := datagen.NewDataset(ds, datagen.SplitMix64(&seedState))
		if err != nil {
			return nil, err
		}
		data := datagen.Take(src, accN)
		exact := stats.NewExactQuantiles(data)
		dsBuilders, err := core.BuildersForDataset(ds, datagen.SplitMix64(&seedState))
		if err != nil {
			return nil, err
		}
		for _, alg := range algs {
			sk := dsBuilders[alg]()
			sketch.InsertAll(sk, data)
			wa, err := core.EvaluateAgainst(sk, exact)
			if err != nil {
				return nil, fmt.Errorf("harness: table4 accuracy %s on %s: %w", alg, ds, err)
			}
			cats[alg].tail[ds] = (wa.Upper*2 + wa.P99) / 3
			cats[alg].nontail[ds] = wa.Mid
		}
		opts.logf("table4: accuracy %s done", ds)
	}

	// --- adaptability (Fig 8 workload, q = 0.5 vs the rest) ---
	adapt := map[string]string{}
	{
		src := datagen.NewAdaptabilityWorkload(datagen.SplitMix64(&seedState), accN)
		data := datagen.Take(src, 2*accN)
		exact := stats.NewExactQuantiles(data)
		for _, alg := range algs {
			b, err := core.NewBuilder(alg, core.BuilderOptions{Seed: datagen.SplitMix64(&seedState)})
			if err != nil {
				return nil, err
			}
			sk := b()
			sketch.InsertAll(sk, data)
			var medErr, otherErr float64
			var others int
			aqs := core.AllQuantiles()
			ests, err := sketch.Quantiles(sk, aqs)
			if err != nil {
				return nil, err
			}
			for i, q := range aqs {
				re := stats.RelativeError(exact.Quantile(q), ests[i])
				if q == 0.5 {
					medErr = re
				} else {
					otherErr += re
					others++
				}
			}
			otherErr /= float64(others)
			switch {
			case medErr <= 0.02 && otherErr <= 0.02:
				adapt[alg] = "High"
			case medErr > 0.02 && otherErr <= 0.02:
				adapt[alg] = "Inconsistent"
			default:
				adapt[alg] = "Low"
			}
		}
	}

	classifyAcc := func(errs map[string]float64) string {
		const thr = 0.011
		allOK, synthOK, nonSkewOK := true, true, true
		for ds, e := range errs {
			ok := e <= thr
			if !ok {
				allOK = false
				if ds == datagen.DatasetPareto || ds == datagen.DatasetUniform {
					synthOK = false
				}
				if ds != datagen.DatasetPareto { // "non-skewed" = all but the heavy tail
					nonSkewOK = false
				}
			}
		}
		switch {
		case allOK:
			return "All"
		case synthOK:
			return "Synthetic"
		case nonSkewOK:
			return "Non-Skewed"
		default:
			return "Limited"
		}
	}
	tier := func(ns map[string]float64) map[string]string {
		type kv struct {
			alg string
			v   float64
		}
		order := make([]kv, 0, len(ns))
		for a, v := range ns {
			order = append(order, kv{a, v})
		}
		sort.Slice(order, func(i, j int) bool { return order[i].v < order[j].v })
		out := map[string]string{}
		for i, e := range order {
			switch {
			case i < 2:
				out[e.alg] = "High"
			case i < 3:
				out[e.alg] = "Medium"
			default:
				out[e.alg] = "Low"
			}
		}
		return out
	}
	insTier, qryTier, mrgTier := tier(insertNS), tier(queryNS), tier(mergeNS)

	cols := []string{"KLL Sketch", "Moments", "DDSketch", "UDDSketch", "ReqSketch (HRA)"}
	tbl := Table{
		Title:   "Table 4: algorithm characteristics (derived from this run's measurements)",
		Headers: append([]string{"Characteristic"}, cols...),
		Notes: []string{
			"paper Table 4: speeds — insert H/M for DDS/KLL+Moments, L for UDDS+REQ; query H for KLL/DDS/UDDS; merge H for Moments",
			"speed tiers here are measured ranks (top2=High, 3rd=Medium, rest=Low) and may shift ±1 tier run to run",
		},
	}
	addRow := func(name string, f func(alg string) string) {
		row := []string{name}
		for _, alg := range algs {
			row = append(row, f(alg))
		}
		tbl.Rows = append(tbl.Rows, row)
	}
	addRow("Sketching approach", func(a string) string { return sketchingApproach[a] })
	addRow("High Tail Accuracy", func(a string) string { return classifyAcc(cats[a].tail) })
	addRow("High Non-Tail Accuracy", func(a string) string { return classifyAcc(cats[a].nontail) })
	addRow("Insertion Speed", func(a string) string { return insTier[a] })
	addRow("Query Speed", func(a string) string { return qryTier[a] })
	addRow("Merge Speed", func(a string) string { return mrgTier[a] })
	addRow("Adaptability", func(a string) string { return adapt[a] })

	raw := Table{
		Title:   "Table 4 raw speed measurements",
		Headers: []string{"sketch", "insert/op", "8-quantile query", "merge/op"},
	}
	for _, alg := range algs {
		raw.Rows = append(raw.Rows, []string{
			alg,
			fmtDur(time.Duration(insertNS[alg])),
			fmtDur(time.Duration(queryNS[alg])),
			fmtDur(time.Duration(mergeNS[alg])),
		})
	}
	return []Table{tbl, raw}, nil
}
