package uddsketch

import (
	"math"

	"repro/internal/fastlog"
	"repro/internal/sketch"
)

var (
	_ sketch.BatchInserter  = (*Sketch)(nil)
	_ sketch.MultiQuantiler = (*Sketch)(nil)
)

// InsertBatch implements sketch.BatchInserter: one branch on the
// indexer kind outside the loop, then the index computation — the cubic
// float-bit approximation with its multiplier hoisted, or the legacy
// log-gamma divide — runs in a tight loop with the store maps, bounds
// and count in locals. The bucket-budget check stays per-element — a
// collapse changes every subsequent index — so collapses trigger at
// exactly the scalar path's points; the hoisted mapping state is
// refreshed after each collapse.
//
//sketch:hotpath
func (s *Sketch) InsertBatch(xs []float64) {
	if len(xs) == 0 {
		return
	}
	if s.indexer == indexerCubic {
		s.insertBatchCubic(xs)
	} else {
		s.insertBatchLog(xs)
	}
}

//sketch:hotpath
func (s *Sketch) insertBatchCubic(xs []float64) {
	pos, neg := s.positive, s.negative
	mult := s.multiplier
	budget := s.maxBuckets
	count := s.count
	startCount := count
	minV, maxV := s.min, s.max
	var zero int64
	for _, x := range xs {
		if math.IsNaN(x) {
			continue
		}
		switch {
		case x >= fastlog.MinIndexable:
			pos[int(math.Ceil(fastlog.Log2Cubic(x)*mult))]++
		case x < 0 && -x >= fastlog.MinIndexable:
			neg[int(math.Ceil(fastlog.Log2Cubic(-x)*mult))]++
		default:
			zero++
		}
		count++
		if x < minV {
			minV = x
		}
		if x > maxV {
			maxV = x
		}
		if len(pos)+len(neg) > budget {
			s.count = count
			s.zeroCnt += zero
			zero = 0
			s.min, s.max = minV, maxV
			for len(s.positive)+len(s.negative) > budget {
				s.uniformCollapse()
			}
			s.assertInvariants("collapse")
			pos, neg = s.positive, s.negative
			mult = s.multiplier
		}
	}
	if metrics != nil {
		metrics.Inserts.Add(int64(count - startCount))
	}
	s.count = count
	s.zeroCnt += zero
	s.min, s.max = minV, maxV
}

//sketch:hotpath
func (s *Sketch) insertBatchLog(xs []float64) {
	pos, neg := s.positive, s.negative
	logGamma := s.logGamma
	minIndexable := s.minIndexable()
	budget := s.maxBuckets
	count := s.count
	startCount := count
	minV, maxV := s.min, s.max
	var zero int64
	for _, x := range xs {
		if math.IsNaN(x) {
			continue
		}
		switch {
		case x > 0 && x >= minIndexable:
			pos[int(math.Ceil(math.Log(x)/logGamma))]++
		case x < 0 && -x >= minIndexable:
			neg[int(math.Ceil(math.Log(-x)/logGamma))]++
		default:
			zero++
		}
		count++
		if x < minV {
			minV = x
		}
		if x > maxV {
			maxV = x
		}
		if len(pos)+len(neg) > budget {
			s.count = count
			s.zeroCnt += zero
			zero = 0
			s.min, s.max = minV, maxV
			for len(s.positive)+len(s.negative) > budget {
				s.uniformCollapse()
			}
			s.assertInvariants("collapse")
			pos, neg = s.positive, s.negative
			logGamma = s.logGamma
			minIndexable = s.minIndexable()
		}
	}
	if metrics != nil {
		metrics.Inserts.Add(int64(count - startCount))
	}
	s.count = count
	s.zeroCnt += zero
	s.min, s.max = minV, maxV
}
