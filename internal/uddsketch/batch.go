package uddsketch

import (
	"math"

	"repro/internal/sketch"
)

var (
	_ sketch.BatchInserter  = (*Sketch)(nil)
	_ sketch.MultiQuantiler = (*Sketch)(nil)
)

// InsertBatch implements sketch.BatchInserter: the index computation
// (log-gamma divide) runs in a tight loop with the store maps, bounds
// and count in locals. The bucket-budget check stays per-element — a
// collapse squares γ, which changes every subsequent index — so
// collapses trigger at exactly the scalar path's points; the hoisted
// mapping state is refreshed after each collapse.
//
//sketch:hotpath
func (s *Sketch) InsertBatch(xs []float64) {
	if len(xs) == 0 {
		return
	}
	pos, neg := s.positive, s.negative
	logGamma := s.logGamma
	minIndexable := s.minIndexable()
	budget := s.maxBuckets
	count := s.count
	startCount := count
	minV, maxV := s.min, s.max
	var zero int64
	for _, x := range xs {
		if math.IsNaN(x) {
			continue
		}
		switch {
		case x > 0 && x >= minIndexable:
			pos[int(math.Ceil(math.Log(x)/logGamma))]++
		case x < 0 && -x >= minIndexable:
			neg[int(math.Ceil(math.Log(-x)/logGamma))]++
		default:
			zero++
		}
		count++
		if x < minV {
			minV = x
		}
		if x > maxV {
			maxV = x
		}
		if len(pos)+len(neg) > budget {
			s.count = count
			s.zeroCnt += zero
			zero = 0
			s.min, s.max = minV, maxV
			for len(s.positive)+len(s.negative) > budget {
				s.uniformCollapse()
			}
			s.assertInvariants("collapse")
			pos, neg = s.positive, s.negative
			logGamma = s.logGamma
			minIndexable = s.minIndexable()
		}
	}
	if metrics != nil {
		metrics.Inserts.Add(int64(count - startCount))
	}
	s.count = count
	s.zeroCnt += zero
	s.min, s.max = minV, maxV
}
