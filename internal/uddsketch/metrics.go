package uddsketch

import "repro/internal/obs"

// metrics aggregates structural counters across every Sketch this
// package builds. nil (the default) disables recording; every hook site
// is guarded by a nil check, so the disabled cost is one predictable
// branch at coarse-grained points (insert, uniform collapse, merge).
var metrics *obs.SketchMetrics

// SetMetrics enables (or, with nil, disables) metrics recording for all
// UDDSketch instances in this process. It must be called while no
// sketch built by this package is in use — typically at process start;
// after that, recording is safe from any number of goroutines.
func SetMetrics(m *obs.SketchMetrics) { metrics = m }
