package uddsketch

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
)

// The cubic indexer's collapse exactness: because the multiplier is
// halved exactly in floating point at every uniform collapse,
// index_k(x) = ceilDiv2^k(index_0(x)) holds bit-exactly, so a sketch
// that collapsed organically mid-stream must end in *bit-identical*
// state to one that ingested everything at full resolution and
// collapsed afterwards. This is the metamorphic pin for the bit-trick
// indexer — any drift between "collapse then insert" and "insert then
// collapse" would show up as differing bucket keys here.
func TestMetamorphicCollapseInsertCommutes(t *testing.T) {
	const budget = 64
	rng := rand.New(rand.NewPCG(41, 43))
	data := make([]float64, 30_000)
	for i := range data {
		// Wide dynamic range with sign mix to force many collapses.
		x := math.Exp(rng.Float64()*50 - 25)
		if rng.IntN(4) == 0 {
			x = -x
		}
		if rng.IntN(50) == 0 {
			x = 0
		}
		data[i] = x
	}
	limited := New(0.001, budget)
	for _, x := range data {
		limited.Insert(x)
	}
	if limited.Collapses() == 0 {
		t.Fatal("stream did not force any collapse; test is vacuous")
	}
	unlimited := New(0.001, 1<<30)
	for _, x := range data {
		unlimited.Insert(x)
	}
	for unlimited.Collapses() < limited.Collapses() {
		unlimited.uniformCollapse()
	}
	if a, b := limited.Alpha(), unlimited.Alpha(); math.Float64bits(a) != math.Float64bits(b) {
		t.Fatalf("alpha diverged: %x vs %x", math.Float64bits(a), math.Float64bits(b))
	}
	if a, b := limited.multiplier, unlimited.multiplier; math.Float64bits(a) != math.Float64bits(b) {
		t.Fatalf("multiplier diverged: %x vs %x", math.Float64bits(a), math.Float64bits(b))
	}
	mapsEqual := func(tag string, a, b map[int]int64) {
		t.Helper()
		if len(a) != len(b) {
			t.Fatalf("%s: %d buckets vs %d", tag, len(a), len(b))
		}
		for i, c := range a {
			if b[i] != c {
				t.Fatalf("%s bucket %d: %d vs %d", tag, i, c, b[i])
			}
		}
	}
	mapsEqual("positive", limited.positive, unlimited.positive)
	mapsEqual("negative", limited.negative, unlimited.negative)
	for _, q := range []float64{0.001, 0.25, 0.5, 0.75, 0.999} {
		a, err1 := limited.Quantile(q)
		b, err2 := unlimited.Quantile(q)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if math.Float64bits(a) != math.Float64bits(b) {
			t.Fatalf("q=%v: %v vs %v not bit-identical", q, a, b)
		}
	}
}

// The same metamorphic property for the array-backed ablation variant.
func TestMetamorphicCollapseInsertCommutesArray(t *testing.T) {
	const budget = 64
	rng := rand.New(rand.NewPCG(47, 53))
	data := make([]float64, 20_000)
	for i := range data {
		data[i] = math.Exp(rng.Float64()*40 - 20)
	}
	limited, err := NewArray(0.001, budget)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range data {
		limited.Insert(x)
	}
	if limited.collapses == 0 {
		t.Fatal("no collapse forced")
	}
	unlimited, err := NewArray(0.001, 1<<24)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range data {
		unlimited.Insert(x)
	}
	for unlimited.collapses < limited.collapses {
		unlimited.uniformCollapse()
	}
	if math.Float64bits(limited.multiplier) != math.Float64bits(unlimited.multiplier) {
		t.Fatal("multiplier diverged")
	}
	for _, q := range []float64{0.01, 0.5, 0.99} {
		a, err1 := limited.Quantile(q)
		b, err2 := unlimited.Quantile(q)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if math.Float64bits(a) != math.Float64bits(b) {
			t.Fatalf("q=%v: %v vs %v not bit-identical", q, a, b)
		}
	}
}

// The fast indexer and the retained exact-log indexer each honor the
// collapsed accuracy contract on a collapse-forcing stream: both stay
// within α_k of the exact stream quantiles, so they can differ from each
// other by at most the contract, never more.
func TestFastVsLegacyIndexerContract(t *testing.T) {
	const budget = 256
	rng := rand.New(rand.NewPCG(59, 61))
	data := make([]float64, 50_000)
	for i := range data {
		data[i] = 1 / math.Pow(1-rng.Float64(), 1.3)
	}
	fast := New(0.01, budget)
	legacy := New(0.01, budget)
	legacy.indexer = indexerLog // pre-fast-indexer behavior, retained for old envelopes
	for _, x := range data {
		fast.Insert(x)
		legacy.Insert(x)
	}
	sorted := append([]float64(nil), data...)
	sort.Float64s(sorted)
	for name, s := range map[string]*Sketch{"fast": fast, "legacy": legacy} {
		if s.Collapses() == 0 {
			t.Fatalf("%s: no collapse forced", name)
		}
		alphaK := s.Alpha()
		for _, q := range []float64{0.05, 0.5, 0.95, 0.99} {
			truth := sorted[int(q*float64(len(sorted)-1))]
			est, err := s.Quantile(q)
			if err != nil {
				t.Fatal(err)
			}
			if re := math.Abs(est-truth) / truth; re > alphaK*(1+1e-6) {
				t.Errorf("%s q=%v: rel err %v > α_k=%v", name, q, re, alphaK)
			}
		}
	}
}

// A pre-fast-indexer envelope — indexer flag clear in the collapse
// counter — must decode as an exact-log sketch whose answers match the
// legacy indexer's bit for bit.
func TestLegacyEnvelopeDecodesAsLog(t *testing.T) {
	legacy := New(0.01, 128)
	legacy.indexer = indexerLog
	rng := rand.New(rand.NewPCG(67, 71))
	for i := 0; i < 20_000; i++ {
		legacy.Insert(math.Exp(rng.Float64()*30 - 15))
	}
	if legacy.Collapses() == 0 {
		t.Fatal("no collapse forced")
	}
	blob, err := legacy.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var d Sketch
	if err := d.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if d.indexer != indexerLog {
		t.Fatalf("legacy envelope decoded with indexer %d, want log", d.indexer)
	}
	for _, q := range []float64{0.01, 0.5, 0.99} {
		a, _ := legacy.Quantile(q)
		b, _ := d.Quantile(q)
		if math.Float64bits(a) != math.Float64bits(b) {
			t.Fatalf("q=%v: %v vs %v", q, a, b)
		}
	}
	// And the indexer kinds must not merge: their buckets mean different
	// boundaries.
	fast := New(0.01, 128)
	fast.Insert(1)
	if err := fast.Merge(&d); err == nil {
		t.Fatal("fast sketch absorbed log-indexed buckets")
	}
}
