// Package uddsketch implements UDDSketch (Epicoco et al., IEEE Access
// 2020), the uniform-collapse variant of DDSketch. Like DDSketch it is a
// log-bucketed histogram, but when the bucket budget is exhausted it
// collapses *every* adjacent bucket pair (i, i+1), i odd, into bucket
// ⌈i/2⌉ — squaring γ and degrading the relative-error guarantee uniformly
// to α' = 2α/(1+α²) instead of sacrificing the lowest quantiles.
//
// Because atanh(α') = 2·atanh(α) under that recurrence, the initial
// accuracy needed to guarantee a final accuracy α_k after k−1 collapses is
// α₀ = tanh(atanh(α_k)/2^(k−1)), which NewWithBudget computes (paper
// Sec 3.4 and 4.2).
//
// Mirroring the study's methodology, the store is a Go map — the paper's
// UDDSketch deliberately keeps the map-backed bucket store of the original
// C implementation, and attributes its slower insert/merge times to it.
package uddsketch

import (
	"fmt"
	"math"
	"slices"
	"sort"

	"repro/internal/fastlog"
	"repro/internal/sketch"
)

// Bucket indexer kinds. The cubic indexer replaces the per-insert
// math.Log with a float-bit log2 approximation (internal/fastlog) whose
// slope distortion is folded into a precomputed multiplier, preserving
// the α guarantee by construction. The exact-log indexer is retained for
// sketches deserialized from envelopes that predate the fast indexer
// (their bucket boundaries are log_γ's, not the cubic approximation's,
// so the indexer kind must travel with the data).
const (
	indexerLog   byte = 0 // exact ⌈log_γ x⌉ via math.Log (legacy envelopes)
	indexerCubic byte = 1 // ⌈ℓ(x)·multiplier⌉ via fastlog.Log2Cubic (default)
)

// indexerFlagCubic marks the cubic indexer in the serialized collapse
// counter's high bit. Collapses are bounded (≤4096; α saturates long
// before), so the bit is always clear in envelopes written before the
// fast indexer existed — those decode as exact-log sketches, keeping
// their bucket boundaries meaningful, with no format-version bump and
// no change to the length of the envelope (truncations stay detectable).
const indexerFlagCubic = uint32(1) << 31

// indexerBits returns the flag bits to fold into the collapse counter.
func indexerBits(indexer byte) uint32 {
	if indexer == indexerCubic {
		return indexerFlagCubic
	}
	return 0
}

// initMultiplier returns the cubic indexer's buckets-per-ℓ-unit factor
// for an uncollapsed γ: 1/(minSlope·log2 γ), the same construction as
// DDSketch's cubic mapping.
func initMultiplier(gamma float64) float64 {
	return 1 / (fastlog.CubicMinSlope * math.Log2(gamma))
}

// Sketch is a UDDSketch instance covering the full real line (positive
// map store, mirrored negative map store, and an exact-zero counter).
type Sketch struct {
	initAlpha  float64
	alpha      float64
	gamma      float64
	logGamma   float64
	maxBuckets int
	collapses  int

	// indexer selects the bucket-boundary family; multiplier is the
	// cubic indexer's index factor. A uniform collapse merges index
	// pairs (2i−1, 2i) → i, which for fixed bucket boundaries is
	// exactly a halving of the multiplier — so the multiplier is
	// *halved* per collapse (exact in floating point) rather than
	// recomputed from the collapsed α, keeping collapse-then-insert and
	// insert-then-collapse bit-identical.
	indexer    byte
	multiplier float64

	positive map[int]int64
	negative map[int]int64
	zeroCnt  int64
	count    int64
	min, max float64
}

var _ sketch.Sketch = (*Sketch)(nil)

// New returns a UDDSketch with initial relative accuracy alpha0 and a
// bucket budget of maxBuckets (counting positive and negative buckets
// together). It panics on invalid parameters; use NewChecked for errors.
func New(alpha0 float64, maxBuckets int) *Sketch {
	s, err := NewChecked(alpha0, maxBuckets)
	if err != nil {
		panic(err)
	}
	return s
}

// NewChecked is New with error reporting instead of panicking.
func NewChecked(alpha0 float64, maxBuckets int) (*Sketch, error) {
	if !(alpha0 > 0 && alpha0 < 1) {
		return nil, fmt.Errorf("uddsketch: alpha must be in (0,1), got %v", alpha0)
	}
	if maxBuckets < 2 {
		return nil, fmt.Errorf("uddsketch: need at least 2 buckets, got %d", maxBuckets)
	}
	s := &Sketch{
		initAlpha:  alpha0,
		maxBuckets: maxBuckets,
		indexer:    indexerCubic,
		positive:   make(map[int]int64),
		negative:   make(map[int]int64),
		min:        math.Inf(1),
		max:        math.Inf(-1),
	}
	s.setAlpha(alpha0)
	s.multiplier = initMultiplier(s.gamma)
	return s, nil
}

// NewWithBudget returns a UDDSketch whose *final* relative accuracy is
// still alphaK after numCollapses−1 uniform collapses, by starting from
// α₀ = tanh(atanh(alphaK)/2^(numCollapses−1)). This reproduces the study's
// configuration: alphaK = 0.01, maxBuckets = 1024, numCollapses = 12.
func NewWithBudget(alphaK float64, maxBuckets, numCollapses int) (*Sketch, error) {
	if !(alphaK > 0 && alphaK < 1) {
		return nil, fmt.Errorf("uddsketch: alpha must be in (0,1), got %v", alphaK)
	}
	if numCollapses < 1 {
		return nil, fmt.Errorf("uddsketch: numCollapses must be >= 1, got %d", numCollapses)
	}
	alpha0 := math.Tanh(math.Atanh(alphaK) / math.Pow(2, float64(numCollapses-1)))
	return NewChecked(alpha0, maxBuckets)
}

func (s *Sketch) setAlpha(alpha float64) {
	s.alpha = alpha
	s.gamma = (1 + alpha) / (1 - alpha)
	s.logGamma = math.Log(s.gamma)
}

// Name implements sketch.Sketch.
func (s *Sketch) Name() string { return "uddsketch" }

// Alpha returns the *current* relative-error guarantee (grows with each
// collapse).
func (s *Sketch) Alpha() float64 { return s.alpha }

// InitialAlpha returns the α₀ the sketch started from.
func (s *Sketch) InitialAlpha() float64 { return s.initAlpha }

// Gamma returns the current bucket growth factor.
func (s *Sketch) Gamma() float64 { return s.gamma }

// Collapses reports how many uniform collapse operations have run.
func (s *Sketch) Collapses() int { return s.collapses }

// MaxBuckets returns the configured bucket budget.
func (s *Sketch) MaxBuckets() int { return s.maxBuckets }

// UseLegacyLogIndexer switches an *empty* sketch to the exact-log
// indexer retained for pre-fast-indexer envelopes — for ablation
// benchmarks and cross-checks. Panics once the sketch holds data, since
// already-assigned buckets would change meaning.
func (s *Sketch) UseLegacyLogIndexer() {
	if s.count != 0 || s.zeroCnt != 0 {
		panic("uddsketch: cannot change indexer of a non-empty sketch")
	}
	s.indexer = indexerLog
}

// minIndexable is the smallest magnitude this sketch can bucket: the
// cubic indexer needs exact exponent extraction (no subnormals), the
// legacy indexer only needs the index computation not to underflow.
func (s *Sketch) minIndexable() float64 {
	if s.indexer == indexerCubic {
		return fastlog.MinIndexable
	}
	return math.Exp(float64(math.MinInt32+1) * s.logGamma)
}

//sketch:hotpath
func (s *Sketch) index(x float64) int {
	if s.indexer == indexerCubic {
		return int(math.Ceil(fastlog.Log2Cubic(x) * s.multiplier))
	}
	return int(math.Ceil(math.Log(x) / s.logGamma))
}

func (s *Sketch) value(i int) float64 {
	if s.indexer == indexerCubic {
		lo := fastlog.Log2CubicInverse((float64(i) - 1) / s.multiplier)
		hi := fastlog.Log2CubicInverse(float64(i) / s.multiplier)
		// Harmonic midpoint in the overflow-safe form — the product
		// lo·hi overflows past ~1e154.
		return 2 * (hi / (1 + hi/lo))
	}
	return 2 * math.Pow(s.gamma, float64(i)) / (s.gamma + 1)
}

// Insert implements sketch.Sketch. NaNs are ignored; zeros and values too
// small to index are counted exactly.
func (s *Sketch) Insert(x float64) { s.InsertN(x, 1) }

// InsertN implements sketch.BulkInserter: n occurrences of x in O(1).
func (s *Sketch) InsertN(x float64, n uint64) {
	if math.IsNaN(x) || n == 0 {
		return
	}
	if metrics != nil {
		metrics.Inserts.Add(int64(n))
	}
	switch {
	case x > 0 && x >= s.minIndexable():
		s.positive[s.index(x)] += int64(n)
	case x < 0 && -x >= s.minIndexable():
		s.negative[s.index(-x)] += int64(n)
	default:
		s.zeroCnt += int64(n)
	}
	s.count += int64(n)
	if x < s.min {
		s.min = x
	}
	if x > s.max {
		s.max = x
	}
	if len(s.positive)+len(s.negative) > s.maxBuckets {
		for len(s.positive)+len(s.negative) > s.maxBuckets {
			s.uniformCollapse()
		}
		s.assertInvariants("collapse")
	}
}

// ceilDiv2 computes ⌈i/2⌉ for signed i.
func ceilDiv2(i int) int {
	if i > 0 {
		return (i + 1) / 2
	}
	return i / 2 // Go truncation toward zero == ceil for negatives
}

// uniformCollapse merges every adjacent (odd, even) index pair into
// ⌈i/2⌉, squares γ, and updates the error guarantee α ← 2α/(1+α²).
func (s *Sketch) uniformCollapse() {
	collapse := func(old map[int]int64) map[int]int64 {
		neu := make(map[int]int64, (len(old)+1)/2)
		for i, c := range old {
			neu[ceilDiv2(i)] += c
		}
		return neu
	}
	s.positive = collapse(s.positive)
	s.negative = collapse(s.negative)
	s.setAlpha(2 * s.alpha / (1 + s.alpha*s.alpha))
	// Halving is exact in floating point, so the cubic indexer's bucket
	// boundaries after the collapse are exactly the merged pairs'.
	s.multiplier /= 2
	s.collapses++
	if metrics != nil {
		// A uniform collapse is both a store collapse and an α
		// deterioration — UDDSketch degrades its guarantee on every one.
		metrics.Collapses.Inc()
		metrics.AlphaDeteriorations.Inc()
		metrics.PeakBytes.Max(int64(s.MemoryBytes()))
	}
}

// Count implements sketch.Sketch.
func (s *Sketch) Count() uint64 { return uint64(s.count) }

func sortedKeys(m map[int]int64) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// Quantile implements sketch.Sketch.
func (s *Sketch) Quantile(q float64) (float64, error) {
	if err := sketch.CheckQuantile(q); err != nil {
		return 0, err
	}
	if s.count == 0 {
		return 0, sketch.ErrEmpty
	}
	rank := int64(math.Ceil(q * float64(s.count)))
	if rank < 1 {
		rank = 1
	}
	if rank > s.count {
		rank = s.count
	}
	var negTotal int64
	for _, c := range s.negative {
		negTotal += c
	}
	switch {
	case rank <= negTotal:
		want := negTotal - rank
		var cum int64
		keys := sortedKeys(s.negative)
		for _, i := range keys {
			cum += s.negative[i]
			if cum > want {
				return s.clamp(-s.value(i)), nil
			}
		}
		return s.clamp(s.min), nil
	case rank <= negTotal+s.zeroCnt:
		return 0, nil
	default:
		want := rank - negTotal - s.zeroCnt
		var cum int64
		keys := sortedKeys(s.positive)
		for _, i := range keys {
			cum += s.positive[i]
			if cum >= want {
				return s.clamp(s.value(i)), nil
			}
		}
		return s.clamp(s.max), nil
	}
}

// storeTarget is one batched rank target: want is the cumulative count
// that resolves it during a store scan, pos its slot in the output.
type storeTarget struct {
	want int64
	pos  int
}

// QuantileAll implements sketch.MultiQuantiler: the negative total is
// summed once, each touched store sorts its keys once, and one
// cumulative scan resolves all of that store's targets in ascending
// rank order — instead of one full map walk plus key sort per quantile.
func (s *Sketch) QuantileAll(qs []float64) ([]float64, error) {
	if err := sketch.ValidateQuantiles(qs, s.count == 0); err != nil {
		return nil, err
	}
	var negTotal int64
	for _, c := range s.negative {
		negTotal += c
	}
	out := make([]float64, len(qs))
	var negT, posT []storeTarget
	for i, q := range qs {
		rank := int64(math.Ceil(q * float64(s.count)))
		if rank < 1 {
			rank = 1
		}
		if rank > s.count {
			rank = s.count
		}
		switch {
		case rank <= negTotal:
			negT = append(negT, storeTarget{negTotal - rank, i})
		case rank <= negTotal+s.zeroCnt:
			out[i] = 0
		default:
			posT = append(posT, storeTarget{rank - negTotal - s.zeroCnt, i})
		}
	}
	byWant := func(a, b storeTarget) int {
		switch {
		case a.want < b.want:
			return -1
		case a.want > b.want:
			return 1
		default:
			return 0
		}
	}
	if len(negT) > 0 {
		slices.SortFunc(negT, byWant)
		k := 0
		var cum int64
		for _, i := range sortedKeys(s.negative) {
			cum += s.negative[i]
			for k < len(negT) && cum > negT[k].want {
				out[negT[k].pos] = s.clamp(-s.value(i))
				k++
			}
			if k == len(negT) {
				break
			}
		}
		for ; k < len(negT); k++ {
			out[negT[k].pos] = s.clamp(s.min)
		}
	}
	if len(posT) > 0 {
		slices.SortFunc(posT, byWant)
		k := 0
		var cum int64
		for _, i := range sortedKeys(s.positive) {
			cum += s.positive[i]
			for k < len(posT) && cum >= posT[k].want {
				out[posT[k].pos] = s.clamp(s.value(i))
				k++
			}
			if k == len(posT) {
				break
			}
		}
		for ; k < len(posT); k++ {
			out[posT[k].pos] = s.clamp(s.max)
		}
	}
	return out, nil
}

func (s *Sketch) clamp(x float64) float64 {
	if x < s.min {
		return s.min
	}
	if x > s.max {
		return s.max
	}
	return x
}

// Rank implements sketch.Sketch.
func (s *Sketch) Rank(x float64) (float64, error) {
	if s.count == 0 {
		return 0, sketch.ErrEmpty
	}
	var le int64
	if x >= 0 {
		for _, c := range s.negative {
			le += c
		}
		le += s.zeroCnt
		if x > 0 {
			xi := s.index(x)
			for i, c := range s.positive {
				if i <= xi {
					le += c
				}
			}
		}
	} else {
		xi := s.index(-x)
		for i, c := range s.negative {
			if i >= xi {
				le += c
			}
		}
	}
	return float64(le) / float64(s.count), nil
}

// Merge implements sketch.Sketch (the fusion algorithm of Cafaro et al.):
// the less-collapsed sketch's buckets are collapsed until both share γ,
// the aligned bucket counts are added, and a final uniform collapse runs
// if the bucket budget is exceeded.
func (s *Sketch) Merge(other sketch.Sketch) error {
	o, ok := other.(*Sketch)
	if !ok {
		return fmt.Errorf("%w: cannot merge %s into uddsketch", sketch.ErrIncompatible, other.Name())
	}
	if math.Abs(o.initAlpha-s.initAlpha) > 1e-15 {
		return fmt.Errorf("%w: initial alpha mismatch %v vs %v", sketch.ErrIncompatible, s.initAlpha, o.initAlpha)
	}
	if o.indexer != s.indexer {
		// Different indexers bucket at different boundaries; adding their
		// counts index-by-index would silently corrupt both guarantees.
		return fmt.Errorf("%w: indexer mismatch %d vs %d", sketch.ErrIncompatible, s.indexer, o.indexer)
	}
	mergedCount := s.count + o.count
	// Work on a private copy of the more-refined side so `other` is not
	// mutated while aligning γ.
	src := o
	if o.collapses != s.collapses {
		if o.collapses < s.collapses {
			src = o.clone()
			for src.collapses < s.collapses {
				src.uniformCollapse()
			}
		} else {
			for s.collapses < o.collapses {
				s.uniformCollapse()
			}
		}
	}
	for i, c := range src.positive {
		s.positive[i] += c
	}
	for i, c := range src.negative {
		s.negative[i] += c
	}
	s.zeroCnt += src.zeroCnt
	s.count += src.count
	if src.min < s.min {
		s.min = src.min
	}
	if src.max > s.max {
		s.max = src.max
	}
	for len(s.positive)+len(s.negative) > s.maxBuckets {
		s.uniformCollapse()
	}
	if metrics != nil {
		metrics.PeakBytes.Max(int64(s.MemoryBytes()))
	}
	s.assertCount("merge", mergedCount)
	return nil
}

func (s *Sketch) clone() *Sketch {
	c := *s
	c.positive = make(map[int]int64, len(s.positive))
	for i, v := range s.positive {
		c.positive[i] = v
	}
	c.negative = make(map[int]int64, len(s.negative))
	for i, v := range s.negative {
		c.negative[i] = v
	}
	return &c
}

// NonEmptyBuckets reports the live bucket count across both stores.
func (s *Sketch) NonEmptyBuckets() int { return len(s.positive) + len(s.negative) }

// Footprint implements sketch.Footprinter. The map-backed stores hold
// no hidden capacity beyond the paper's 3-numbers-per-bucket
// accounting, so the live footprint is MemoryBytes itself.
func (s *Sketch) Footprint() int { return s.MemoryBytes() }

// maxDegradeCollapses caps the collapse counter at its serialization
// bound (the counter shares its wire word with the indexer flag; α has
// long saturated at 1 by then anyway).
const maxDegradeCollapses = 4096

// Degrade implements sketch.Degrader: run one extra uniform collapse —
// exactly the sketch's native budget mechanism (Epicoco et al.),
// merging every adjacent bucket pair and deteriorating the guarantee
// α ← 2α/(1+α²). Merge already aligns differing collapse counts, so a
// degraded sketch stays mergeable with any sketch of the same initial
// α. Refused when fewer than 4 buckets are live (a collapse would
// degrade α while freeing almost nothing).
func (s *Sketch) Degrade() (int, error) {
	if s.NonEmptyBuckets() < 4 || s.collapses >= maxDegradeCollapses {
		return 0, sketch.ErrNotDegradable
	}
	before := s.Footprint()
	s.uniformCollapse()
	s.assertInvariants("degrade")
	freed := before - s.Footprint()
	if freed < 0 {
		freed = 0
	}
	return freed, nil
}

// AccuracyBound implements sketch.AccuracyBounder: the sketch's current
// relative accuracy α — the exact post-collapse guarantee, which grows
// with every Degrade and propagates through merges (the merged sketch
// carries the worse collapse count's α).
func (s *Sketch) AccuracyBound() float64 { return s.alpha }

// MemoryBytes implements sketch.Sketch using the paper's accounting for a
// map-backed store: a map index, a bucket index and a count per bucket
// (Sec 4.3), plus fixed bookkeeping.
func (s *Sketch) MemoryBytes() int {
	numbers := 3*(len(s.positive)+len(s.negative)) + 8
	return 8 * numbers
}

// Reset implements sketch.Sketch.
func (s *Sketch) Reset() {
	s.positive = make(map[int]int64)
	s.negative = make(map[int]int64)
	s.zeroCnt = 0
	s.count = 0
	s.collapses = 0
	s.min = math.Inf(1)
	s.max = math.Inf(-1)
	s.setAlpha(s.initAlpha)
	s.multiplier = initMultiplier(s.gamma)
}

// MarshalBinary implements encoding.BinaryMarshaler. The indexer kind
// rides in the high bit of the collapse counter (see indexerFlagCubic)
// so that envelopes written before the fast indexer existed decode as
// exact-log sketches without a version bump or a length change.
func (s *Sketch) MarshalBinary() ([]byte, error) {
	w := sketch.NewWriter(64 + 16*(len(s.positive)+len(s.negative)))
	w.Header(sketch.TagUDDSketch)
	w.F64(s.initAlpha)
	w.U32(uint32(s.maxBuckets))
	w.U32(uint32(s.collapses) | indexerBits(s.indexer))
	w.I64(s.zeroCnt)
	w.I64(s.count)
	w.F64(s.min)
	w.F64(s.max)
	writeMap := func(m map[int]int64) {
		w.U32(uint32(len(m)))
		for _, i := range sortedKeys(m) {
			w.I64(int64(i))
			w.I64(m[i])
		}
	}
	writeMap(s.positive)
	writeMap(s.negative)
	return w.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (s *Sketch) UnmarshalBinary(data []byte) error {
	r := sketch.NewReader(data)
	if err := r.Header(sketch.TagUDDSketch); err != nil {
		return err
	}
	initAlpha := r.F64()
	maxBuckets := int(r.U32())
	rawCollapses := r.U32()
	// High bit of the collapse counter carries the indexer kind;
	// envelopes from before the fast indexer always have it clear, so
	// they decode as exact-log sketches and their bucket boundaries keep
	// meaning what they meant when written.
	indexer := indexerLog
	if rawCollapses&indexerFlagCubic != 0 {
		indexer = indexerCubic
	}
	collapses := int(rawCollapses &^ indexerFlagCubic)
	zeroCnt := r.I64()
	count := r.I64()
	minV := r.F64()
	maxV := r.F64()
	if r.Err() != nil {
		return r.Err()
	}
	// Bound decoded parameters: α saturates after ~60 collapses, and the
	// bucket budget never exceeds a few thousand in any valid sketch.
	if collapses < 0 || collapses > 4096 || maxBuckets > 1<<24 {
		return sketch.ErrCorrupt
	}
	if zeroCnt < 0 || count < 0 || math.IsNaN(minV) || math.IsNaN(maxV) {
		return sketch.ErrCorrupt
	}
	ns, err := NewChecked(initAlpha, maxBuckets)
	if err != nil {
		return sketch.ErrCorrupt
	}
	for i := 0; i < collapses; i++ {
		ns.setAlpha(2 * ns.alpha / (1 + ns.alpha*ns.alpha))
	}
	ns.collapses = collapses
	ns.zeroCnt = zeroCnt
	ns.count = count
	ns.min = minV
	ns.max = maxV
	readMap := func(m map[int]int64) error {
		n := int(r.U32())
		for i := 0; i < n; i++ {
			idx := r.I64()
			c := r.I64()
			if r.Err() != nil {
				return r.Err()
			}
			// Valid sketches never hold empty or negative buckets.
			if c <= 0 {
				return sketch.ErrCorrupt
			}
			m[int(idx)] += c
		}
		return nil
	}
	if err := readMap(ns.positive); err != nil {
		return err
	}
	if err := readMap(ns.negative); err != nil {
		return err
	}
	if r.Err() != nil {
		return r.Err()
	}
	if r.Remaining() != 0 {
		return sketch.ErrCorrupt
	}
	ns.indexer = indexer
	// Ldexp is the k-fold exact halving the collapses performed.
	ns.multiplier = math.Ldexp(ns.multiplier, -collapses)
	// Structural validation: bucket sums must reproduce the serialized
	// count, the budget must hold, and a non-empty sketch needs ordered
	// bounds — anything else is corruption, not a decodable sketch.
	var sum int64
	for _, c := range ns.positive {
		sum += c
	}
	for _, c := range ns.negative {
		sum += c
	}
	if sum+ns.zeroCnt != ns.count {
		return sketch.ErrCorrupt
	}
	if len(ns.positive)+len(ns.negative) > ns.maxBuckets {
		return sketch.ErrCorrupt
	}
	if ns.count > 0 && !(ns.min <= ns.max) {
		return sketch.ErrCorrupt
	}
	ns.assertInvariants("unmarshal")
	*s = *ns
	return nil
}
