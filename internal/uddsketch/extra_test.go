package uddsketch

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestRankNegativeAndZero(t *testing.T) {
	s := New(0.01, 2048)
	for i := 1; i <= 1000; i++ {
		s.Insert(-float64(i))
		s.Insert(float64(i))
	}
	s.Insert(0)
	r, err := s.Rank(-500)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-0.25) > 0.02 {
		t.Errorf("Rank(-500) = %v, want ≈ 0.25", r)
	}
	r, _ = s.Rank(0)
	if math.Abs(r-0.5) > 0.02 {
		t.Errorf("Rank(0) = %v", r)
	}
	r, _ = s.Rank(2000)
	if r != 1 {
		t.Errorf("Rank(max) = %v, want 1", r)
	}
	// Negative quantile path.
	est, err := s.Quantile(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if re := relErr(-800, est); re > 0.02 {
		t.Errorf("q=0.1 = %v, want ≈ -800", est)
	}
}

func TestInsertNTriggersCollapse(t *testing.T) {
	s := New(1e-4, 32)
	rng := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 100; i++ {
		s.InsertN(math.Exp(rng.Float64()*20-10), 100)
	}
	if s.NonEmptyBuckets() > 32 {
		t.Errorf("bulk inserts exceeded bucket budget: %d", s.NonEmptyBuckets())
	}
	if s.Count() != 10000 {
		t.Errorf("count = %d", s.Count())
	}
}

func TestGammaSquaresPerCollapse(t *testing.T) {
	s := New(0.001, 4)
	g0 := s.Gamma()
	for i := 0; i < 10000; i++ {
		s.Insert(math.Exp(float64(i%40) - 20))
	}
	if s.Collapses() == 0 {
		t.Fatal("expected collapses")
	}
	want := g0
	for i := 0; i < s.Collapses(); i++ {
		want = want * want
	}
	if math.Abs(s.Gamma()-want) > 1e-9*want {
		t.Errorf("gamma = %v, want %v after %d collapses", s.Gamma(), want, s.Collapses())
	}
}

func TestMergeIntoEmpty(t *testing.T) {
	a := New(0.01, 1024)
	b := New(0.01, 1024)
	for i := 1; i <= 100; i++ {
		b.Insert(float64(i))
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != 100 {
		t.Errorf("count = %d", a.Count())
	}
	med, err := a.Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if re := relErr(50, med); re > 0.01 {
		t.Errorf("median = %v", med)
	}
}

func TestInvalidConstruction(t *testing.T) {
	if _, err := NewChecked(0, 10); err == nil {
		t.Error("alpha 0 should fail")
	}
	if _, err := NewChecked(0.01, 1); err == nil {
		t.Error("1 bucket should fail")
	}
	if _, err := NewWithBudget(1.5, 10, 3); err == nil {
		t.Error("alpha > 1 should fail")
	}
	if _, err := NewWithBudget(0.01, 10, 0); err == nil {
		t.Error("0 collapses should fail")
	}
}
