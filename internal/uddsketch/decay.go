package uddsketch

import (
	"math"

	"repro/internal/sketch"
)

var _ sketch.CountScaler = (*Sketch)(nil)

// ScaleCount implements sketch.CountScaler by rounded bucket scaling:
// every bucket count c becomes round(c·g) (buckets rounding to 0 are
// dropped — valid sketches never hold empty buckets), the zero counter
// scales the same way, and the total count is recomputed as the sum of
// the scaled parts so Σ buckets + zeroCnt == count holds exactly. Each
// bucket transforms independently of every other, so the result does
// not depend on map iteration order. Scaling only removes buckets, so
// the maxBuckets budget and the current collapse level are untouched;
// min/max are kept as conservative bounds. If every count rounds away
// the sketch resets.
func (s *Sketch) ScaleCount(g float64) {
	if math.IsNaN(g) || g >= 1 {
		return
	}
	if g <= 0 {
		s.Reset()
		return
	}
	scaleMap := func(m map[int]int64) (map[int]int64, int64) {
		out := make(map[int]int64, len(m))
		var total int64
		for i, c := range m {
			sc := int64(math.Round(float64(c) * g))
			if sc > 0 {
				out[i] = sc
				total += sc
			}
		}
		return out, total
	}
	pos, posTotal := scaleMap(s.positive)
	neg, negTotal := scaleMap(s.negative)
	zero := int64(math.Round(float64(s.zeroCnt) * g))
	count := posTotal + negTotal + zero
	if count == 0 {
		s.Reset()
		return
	}
	s.positive = pos
	s.negative = neg
	s.zeroCnt = zero
	s.count = count
}
