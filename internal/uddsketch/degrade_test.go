package uddsketch

import (
	"errors"
	"math/rand/v2"
	"testing"

	"repro/internal/sketch"
)

// TestDegrade pins the sketch.Degrader contract for UDDSketch: Degrade
// is exactly one uniform collapse — the collapse counter advances, α
// deteriorates by the closed form, the count is conserved, and a
// degraded sketch still merges with an undegraded one (Merge aligns
// collapse counts).
func TestDegrade(t *testing.T) {
	s := New(0.001, 1<<20) // huge budget: collapses only via Degrade
	rng := rand.New(rand.NewPCG(1, 2))
	const n = 50000
	for i := 0; i < n; i++ {
		s.Insert(rng.ExpFloat64() * 1000)
	}
	buckets := s.NonEmptyBuckets()
	alpha := s.Alpha()
	freed, err := s.Degrade()
	if err != nil {
		t.Fatalf("degrade: %v", err)
	}
	if freed <= 0 {
		t.Errorf("freed = %d, want > 0 (had %d buckets)", freed, buckets)
	}
	if s.Collapses() != 1 {
		t.Errorf("collapses = %d, want 1", s.Collapses())
	}
	wantAlpha := 2 * alpha / (1 + alpha*alpha)
	if s.Alpha() != wantAlpha || s.AccuracyBound() != wantAlpha {
		t.Errorf("alpha = %v (bound %v), want %v", s.Alpha(), s.AccuracyBound(), wantAlpha)
	}
	if s.Count() != n {
		t.Errorf("count = %d, want %d", s.Count(), n)
	}
	if nb := s.NonEmptyBuckets(); nb >= buckets {
		t.Errorf("buckets %d did not shrink from %d", nb, buckets)
	}

	fresh := New(0.001, 1<<20)
	for i := 0; i < 10000; i++ {
		fresh.Insert(rng.ExpFloat64() * 1000)
	}
	want := s.Count() + fresh.Count()
	if err := fresh.Merge(s); err != nil {
		t.Fatalf("fresh.Merge(degraded): %v", err)
	}
	if fresh.Count() != want || fresh.Collapses() != 1 {
		t.Errorf("merged count=%d collapses=%d, want count=%d collapses=1",
			fresh.Count(), fresh.Collapses(), want)
	}
}

// TestDegradeRefusesWhenTiny pins the floor: a near-empty sketch
// refuses to trade α for nothing.
func TestDegradeRefusesWhenTiny(t *testing.T) {
	s := New(0.01, 1024)
	s.Insert(1)
	s.Insert(2)
	if _, err := s.Degrade(); !errors.Is(err, sketch.ErrNotDegradable) {
		t.Errorf("Degrade on 2-bucket sketch = %v, want ErrNotDegradable", err)
	}
	if s.Collapses() != 0 {
		t.Errorf("refused Degrade must not collapse (got %d)", s.Collapses())
	}
}
