package uddsketch

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/sketch"
)

func exactQuantile(sorted []float64, q float64) float64 {
	idx := int(math.Ceil(q * float64(len(sorted))))
	if idx < 1 {
		idx = 1
	}
	if idx > len(sorted) {
		idx = len(sorted)
	}
	return sorted[idx-1]
}

func relErr(truth, est float64) float64 {
	if truth == 0 {
		return math.Abs(est)
	}
	return math.Abs(truth-est) / math.Abs(truth)
}

func TestCeilDiv2(t *testing.T) {
	cases := map[int]int{
		-5: -2, -4: -2, -3: -1, -2: -1, -1: 0, 0: 0,
		1: 1, 2: 1, 3: 2, 4: 2, 5: 3,
	}
	for in, want := range cases {
		if got := ceilDiv2(in); got != want {
			t.Errorf("ceilDiv2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestBudgetFormula(t *testing.T) {
	// α₀ = tanh(atanh(α_k)/2^(k−1)); with the study's parameters
	// (α_k = 0.01, numCollapses = 12) this is ≈ 4.88e-6.
	s, err := NewWithBudget(0.01, 1024, 12)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Tanh(math.Atanh(0.01) / math.Pow(2, 11))
	if got := s.InitialAlpha(); math.Abs(got-want) > 1e-18 {
		t.Fatalf("alpha0 = %v, want %v", got, want)
	}
	if s.InitialAlpha() > 5e-6 || s.InitialAlpha() < 4.5e-6 {
		t.Errorf("alpha0 = %v, expected ≈ 4.88e-6", s.InitialAlpha())
	}
}

// The collapse recurrence α' = 2α/(1+α²) must match atanh doubling.
func TestAlphaDeterioration(t *testing.T) {
	s := New(1e-6, 4) // tiny budget forces collapses
	alpha0 := s.Alpha()
	rng := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 10000; i++ {
		s.Insert(math.Exp(rng.Float64()*30 - 15))
	}
	if s.Collapses() == 0 {
		t.Fatal("expected collapses with a 4-bucket budget")
	}
	want := math.Tanh(math.Atanh(alpha0) * math.Pow(2, float64(s.Collapses())))
	if math.Abs(s.Alpha()-want) > 1e-12*want {
		t.Errorf("alpha after %d collapses = %v, want %v", s.Collapses(), s.Alpha(), want)
	}
}

func TestBucketBudgetRespected(t *testing.T) {
	s := New(1e-4, 64)
	rng := rand.New(rand.NewPCG(9, 10))
	for i := 0; i < 100000; i++ {
		s.Insert(math.Exp(rng.Float64()*40 - 20))
	}
	if n := s.NonEmptyBuckets(); n > 64 {
		t.Errorf("holds %d buckets, budget 64", n)
	}
}

// The headline property: current Alpha() always bounds the observed
// relative error, even after collapses.
func TestRelativeErrorGuarantee(t *testing.T) {
	s, err := NewWithBudget(0.01, 1024, 12)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(42, 43))
	data := make([]float64, 200000)
	for i := range data {
		data[i] = 1 / math.Pow(1-rng.Float64(), 1.0) // Pareto α=1, huge range
		s.Insert(data[i])
	}
	sort.Float64s(data)
	alpha := s.Alpha()
	if alpha > 0.01 {
		t.Fatalf("final alpha %v exceeded the 0.01 design threshold", alpha)
	}
	for _, q := range []float64{0.01, 0.25, 0.5, 0.75, 0.95, 0.99, 0.999} {
		truth := exactQuantile(data, q)
		est, err := s.Quantile(q)
		if err != nil {
			t.Fatal(err)
		}
		if re := relErr(truth, est); re > alpha*(1+1e-9) {
			t.Errorf("q=%v: rel err %v > current alpha %v", q, re, alpha)
		}
	}
}

func TestEmptyAndInvalid(t *testing.T) {
	s := New(0.01, 1024)
	if _, err := s.Quantile(0.5); err != sketch.ErrEmpty {
		t.Errorf("empty Quantile err = %v", err)
	}
	s.Insert(1)
	if _, err := s.Quantile(0); err == nil {
		t.Error("Quantile(0) should fail")
	}
	if _, err := s.Quantile(1.5); err == nil {
		t.Error("Quantile(1.5) should fail")
	}
}

func TestNegativeAndZero(t *testing.T) {
	s := New(0.01, 1024)
	for _, x := range []float64{-50, -5, 0, 5, 50} {
		s.Insert(x)
	}
	med, err := s.Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if med != 0 {
		t.Errorf("median = %v, want 0", med)
	}
	lo, _ := s.Quantile(0.2)
	if re := relErr(-50, lo); re > 0.01 {
		t.Errorf("q=0.2 = %v, want ≈ -50", lo)
	}
}

// Merging sketches with different collapse counts aligns γ first and
// preserves counts and accuracy.
func TestMergeAlignsCollapses(t *testing.T) {
	a := New(1e-4, 128) // will collapse on wide data
	b := New(1e-4, 128)
	rng := rand.New(rand.NewPCG(5, 6))
	var all []float64
	for i := 0; i < 50000; i++ {
		x := math.Exp(rng.Float64()*30 - 15)
		all = append(all, x)
		a.Insert(x)
	}
	for i := 0; i < 1000; i++ {
		// Narrow enough to fit 128 buckets at γ ≈ 1.0002: span < γ^128.
		x := 1 + 0.02*rng.Float64()
		all = append(all, x)
		b.Insert(x)
	}
	if a.Collapses() == 0 {
		t.Fatal("test needs a to have collapsed")
	}
	if b.Collapses() != 0 {
		t.Fatal("test needs b uncollapsed")
	}
	bCountBefore := b.Count()
	bCollapsesBefore := b.Collapses()
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	// other is unchanged.
	if b.Count() != bCountBefore || b.Collapses() != bCollapsesBefore {
		t.Error("Merge mutated its argument")
	}
	if a.Count() != uint64(len(all)) {
		t.Fatalf("merged count %d, want %d", a.Count(), len(all))
	}
	sort.Float64s(all)
	alpha := a.Alpha()
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		truth := exactQuantile(all, q)
		got, _ := a.Quantile(q)
		if re := relErr(truth, got); re > alpha*(1+1e-9) {
			t.Errorf("q=%v: rel err %v > alpha %v after merge", q, re, alpha)
		}
	}
}

func TestMergeReverseDirection(t *testing.T) {
	// Merge a collapsed sketch INTO an uncollapsed one: the receiver must
	// collapse itself to align.
	a := New(1e-4, 128)
	b := New(1e-4, 128)
	rng := rand.New(rand.NewPCG(15, 16))
	for i := 0; i < 1000; i++ {
		a.Insert(1 + rng.Float64())
	}
	for i := 0; i < 50000; i++ {
		b.Insert(math.Exp(rng.Float64()*30 - 15))
	}
	if b.Collapses() == 0 {
		t.Fatal("test needs b collapsed")
	}
	want := a.Count() + b.Count()
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != want {
		t.Fatalf("count %d, want %d", a.Count(), want)
	}
	if a.Collapses() < b.Collapses() {
		t.Errorf("receiver should have aligned to >= %d collapses, has %d", b.Collapses(), a.Collapses())
	}
}

func TestMergeIncompatible(t *testing.T) {
	a := New(0.01, 1024)
	b := New(0.02, 1024)
	if err := a.Merge(b); err == nil {
		t.Error("different alpha lineages should not merge")
	}
}

func TestSerdeRoundTrip(t *testing.T) {
	s := New(1e-4, 128)
	rng := rand.New(rand.NewPCG(21, 22))
	for i := 0; i < 30000; i++ {
		s.Insert(math.Exp(rng.Float64()*20 - 10))
	}
	blob, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var d Sketch
	if err := d.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if d.Count() != s.Count() || d.Collapses() != s.Collapses() {
		t.Fatalf("state mismatch after round trip")
	}
	if math.Abs(d.Alpha()-s.Alpha()) > 1e-15 {
		t.Fatalf("alpha mismatch: %v vs %v", d.Alpha(), s.Alpha())
	}
	for _, q := range []float64{0.05, 0.5, 0.95} {
		a, _ := s.Quantile(q)
		b, _ := d.Quantile(q)
		if a != b {
			t.Errorf("q=%v: %v != %v", q, a, b)
		}
	}
	if err := d.UnmarshalBinary(blob[:10]); err == nil {
		t.Error("truncated blob should fail")
	}
}

// Property: inserting any positive data keeps estimates within Alpha().
func TestQuickGuarantee(t *testing.T) {
	f := func(vals []uint16, qFrac uint16) bool {
		if len(vals) < 1 {
			return true
		}
		s := New(0.01, 512)
		data := make([]float64, len(vals))
		for i, v := range vals {
			data[i] = float64(v) + 1
			s.Insert(data[i])
		}
		sort.Float64s(data)
		q := (float64(qFrac) + 1) / 65537
		truth := exactQuantile(data, q)
		est, err := s.Quantile(q)
		if err != nil {
			return false
		}
		return relErr(truth, est) <= s.Alpha()*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: a merge never loses or invents observations.
func TestQuickMergeCount(t *testing.T) {
	f := func(a, b []uint16) bool {
		s1, s2 := New(0.01, 256), New(0.01, 256)
		for _, v := range a {
			s1.Insert(float64(v) + 1)
		}
		for _, v := range b {
			s2.Insert(float64(v) + 1)
		}
		want := s1.Count() + s2.Count()
		if err := s1.Merge(s2); err != nil {
			return false
		}
		return s1.Count() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestReset(t *testing.T) {
	s := New(1e-4, 64)
	rng := rand.New(rand.NewPCG(31, 32))
	for i := 0; i < 10000; i++ {
		s.Insert(math.Exp(rng.Float64() * 10))
	}
	s.Reset()
	if s.Count() != 0 || s.Collapses() != 0 || s.NonEmptyBuckets() != 0 {
		t.Error("reset left state behind")
	}
	if s.Alpha() != s.InitialAlpha() {
		t.Error("reset should restore alpha0")
	}
}
