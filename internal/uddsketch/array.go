package uddsketch

import (
	"fmt"
	"math"

	"repro/internal/fastlog"
	"repro/internal/sketch"
)

// ArraySketch is UDDSketch with a dense array bucket store instead of the
// map the paper's implementation (and this package's Sketch) uses. The
// study attributes UDDSketch's slow inserts and merges to its
// "unoptimized map-based implementation" (Sec 4.4.1/4.4.3); this variant
// exists to test that causal claim directly — same collapse algorithm,
// same guarantees, different store.
//
// It covers positive values plus an exact-zero counter (negative values
// count as zero), which is all the study's workloads need; the map-backed
// Sketch remains the full-real-line implementation.
type ArraySketch struct {
	initAlpha  float64
	alpha      float64
	gamma      float64
	logGamma   float64
	maxBuckets int
	collapses  int

	// indexer/multiplier mirror Sketch's fast-indexer state (see the
	// field comments there): multiplier is exactly halved per collapse.
	indexer    byte
	multiplier float64

	counts  []int64 // counts[i] = bucket (offset + i)
	offset  int
	nonZero int
	zeroCnt int64
	count   int64
	min     float64
	max     float64
}

var _ sketch.Sketch = (*ArraySketch)(nil)

// NewArray returns an array-backed UDDSketch with initial accuracy
// alpha0 and the given bucket budget.
func NewArray(alpha0 float64, maxBuckets int) (*ArraySketch, error) {
	if !(alpha0 > 0 && alpha0 < 1) {
		return nil, fmt.Errorf("uddsketch: alpha must be in (0,1), got %v", alpha0)
	}
	if maxBuckets < 2 {
		return nil, fmt.Errorf("uddsketch: need at least 2 buckets, got %d", maxBuckets)
	}
	s := &ArraySketch{
		initAlpha:  alpha0,
		maxBuckets: maxBuckets,
		indexer:    indexerCubic,
		min:        math.Inf(1),
		max:        math.Inf(-1),
	}
	s.setAlpha(alpha0)
	s.multiplier = initMultiplier(s.gamma)
	return s, nil
}

// NewArrayWithBudget mirrors NewWithBudget for the array variant.
func NewArrayWithBudget(alphaK float64, maxBuckets, numCollapses int) (*ArraySketch, error) {
	if !(alphaK > 0 && alphaK < 1) || numCollapses < 1 {
		return nil, fmt.Errorf("uddsketch: invalid budget parameters")
	}
	alpha0 := math.Tanh(math.Atanh(alphaK) / math.Pow(2, float64(numCollapses-1)))
	return NewArray(alpha0, maxBuckets)
}

func (s *ArraySketch) setAlpha(alpha float64) {
	s.alpha = alpha
	s.gamma = (1 + alpha) / (1 - alpha)
	s.logGamma = math.Log(s.gamma)
}

// Name implements sketch.Sketch.
func (s *ArraySketch) Name() string { return "uddsketch-array" }

// Alpha returns the current error guarantee.
func (s *ArraySketch) Alpha() float64 { return s.alpha }

// Collapses reports the uniform collapses performed.
func (s *ArraySketch) Collapses() int { return s.collapses }

//sketch:hotpath
func (s *ArraySketch) index(x float64) int {
	if s.indexer == indexerCubic {
		return int(math.Ceil(fastlog.Log2Cubic(x) * s.multiplier))
	}
	return int(math.Ceil(math.Log(x) / s.logGamma))
}

func (s *ArraySketch) value(i int) float64 {
	if s.indexer == indexerCubic {
		lo := fastlog.Log2CubicInverse((float64(i) - 1) / s.multiplier)
		hi := fastlog.Log2CubicInverse(float64(i) / s.multiplier)
		// Overflow-safe harmonic midpoint, as in Sketch.value.
		return 2 * (hi / (1 + hi/lo))
	}
	return 2 * math.Pow(s.gamma, float64(i)) / (s.gamma + 1)
}

// arrMinIndexable is the smallest positive magnitude the sketch buckets;
// below it values count exactly in the zero counter.
func (s *ArraySketch) arrMinIndexable() float64 {
	if s.indexer == indexerCubic {
		return fastlog.MinIndexable
	}
	return math.SmallestNonzeroFloat64
}

// add increments bucket idx by c, growing the array as needed.
func (s *ArraySketch) add(idx int, c int64) {
	if s.counts == nil {
		s.counts = make([]int64, 64)
		s.offset = idx - 32
	}
	pos := idx - s.offset
	for pos < 0 || pos >= len(s.counts) {
		s.grow(idx)
		pos = idx - s.offset
	}
	if s.counts[pos] == 0 {
		s.nonZero++
	}
	s.counts[pos] += c
}

// grow re-centers the array over the union of the current span and idx,
// with 50% headroom so repeated range extensions amortize to O(1) per
// insert. At UDDSketch's tiny initial α the index span can reach
// millions of slots before the first collapses shrink it — the very
// reason the reference implementation chose a map store; the array
// variant pays that memory spike to win steady-state speed.
func (s *ArraySketch) grow(idx int) {
	lo, hi := s.offset, s.offset+len(s.counts)-1
	if idx < lo {
		lo = idx
	}
	if idx > hi {
		hi = idx
	}
	span := hi - lo + 1
	n := span + span/2
	if min := (span + 63) / 64 * 64; n < min {
		n = min
	}
	grown := make([]int64, n)
	newOffset := lo - (n-span)/2
	copy(grown[s.offset-newOffset:], s.counts)
	s.counts = grown
	s.offset = newOffset
}

// Insert implements sketch.Sketch. NaNs are ignored; zeros, negatives
// and sub-normal positives count exactly in the zero bucket.
func (s *ArraySketch) Insert(x float64) { s.InsertN(x, 1) }

// InsertN implements sketch.BulkInserter.
func (s *ArraySketch) InsertN(x float64, n uint64) {
	if math.IsNaN(x) || n == 0 {
		return
	}
	if x > 0 && x >= s.arrMinIndexable() {
		s.add(s.index(x), int64(n))
	} else {
		s.zeroCnt += int64(n)
	}
	s.count += int64(n)
	if x < s.min {
		s.min = x
	}
	if x > s.max {
		s.max = x
	}
	for s.nonZero > s.maxBuckets {
		s.uniformCollapse()
	}
}

// uniformCollapse halves every bucket index (⌈i/2⌉) in one linear pass.
// It must advance α and the collapse counter even when the store is
// empty (merge aligns collapse counts by collapsing the emptier side).
func (s *ArraySketch) uniformCollapse() {
	if s.counts == nil {
		s.setAlpha(2 * s.alpha / (1 + s.alpha*s.alpha))
		s.multiplier /= 2
		s.collapses++
		return
	}
	lo := s.offset
	hi := s.offset + len(s.counts) - 1
	newLo := ceilDiv2(lo)
	newHi := ceilDiv2(hi)
	span := newHi - newLo + 1
	n := (span + 63) / 64 * 64
	grown := make([]int64, n)
	newOffset := newLo - (n-span)/2
	nonZero := 0
	for pos, c := range s.counts {
		if c == 0 {
			continue
		}
		np := ceilDiv2(lo+pos) - newOffset
		if grown[np] == 0 {
			nonZero++
		}
		grown[np] += c
	}
	s.counts = grown
	s.offset = newOffset
	s.nonZero = nonZero
	s.setAlpha(2 * s.alpha / (1 + s.alpha*s.alpha))
	s.multiplier /= 2
	s.collapses++
}

// Count implements sketch.Sketch.
func (s *ArraySketch) Count() uint64 { return uint64(s.count) }

// Quantile implements sketch.Sketch.
func (s *ArraySketch) Quantile(q float64) (float64, error) {
	if err := sketch.CheckQuantile(q); err != nil {
		return 0, err
	}
	if s.count == 0 {
		return 0, sketch.ErrEmpty
	}
	rank := int64(math.Ceil(q * float64(s.count)))
	if rank <= s.zeroCnt {
		if s.min < 0 {
			return s.min, nil
		}
		return 0, nil
	}
	want := rank - s.zeroCnt
	var cum int64
	for pos, c := range s.counts {
		if c == 0 {
			continue
		}
		cum += c
		if cum >= want {
			return s.clamp(s.value(s.offset + pos)), nil
		}
	}
	return s.clamp(s.max), nil
}

func (s *ArraySketch) clamp(x float64) float64 {
	if x < s.min {
		return s.min
	}
	if x > s.max {
		return s.max
	}
	return x
}

// Rank implements sketch.Sketch.
func (s *ArraySketch) Rank(x float64) (float64, error) {
	if s.count == 0 {
		return 0, sketch.ErrEmpty
	}
	if x < 0 {
		return 0, nil
	}
	le := s.zeroCnt
	if x > 0 {
		xi := s.index(x)
		for pos, c := range s.counts {
			if s.offset+pos > xi {
				break
			}
			le += c
		}
	}
	return float64(le) / float64(s.count), nil
}

// Merge implements sketch.Sketch: align collapse counts (the less
// collapsed side collapses up), then add counts linearly.
func (s *ArraySketch) Merge(other sketch.Sketch) error {
	o, ok := other.(*ArraySketch)
	if !ok {
		return fmt.Errorf("%w: cannot merge %s into uddsketch-array", sketch.ErrIncompatible, other.Name())
	}
	if math.Abs(o.initAlpha-s.initAlpha) > 1e-15 {
		return fmt.Errorf("%w: initial alpha mismatch", sketch.ErrIncompatible)
	}
	if o.indexer != s.indexer {
		return fmt.Errorf("%w: indexer mismatch %d vs %d", sketch.ErrIncompatible, s.indexer, o.indexer)
	}
	src := o
	if o.collapses != s.collapses {
		if o.collapses < s.collapses {
			src = o.clone()
			for src.collapses < s.collapses {
				src.uniformCollapse()
			}
		} else {
			for s.collapses < o.collapses {
				s.uniformCollapse()
			}
		}
	}
	for pos, c := range src.counts {
		if c != 0 {
			s.add(src.offset+pos, c)
		}
	}
	s.zeroCnt += src.zeroCnt
	s.count += src.count
	if src.min < s.min {
		s.min = src.min
	}
	if src.max > s.max {
		s.max = src.max
	}
	for s.nonZero > s.maxBuckets {
		s.uniformCollapse()
	}
	return nil
}

func (s *ArraySketch) clone() *ArraySketch {
	c := *s
	c.counts = append([]int64(nil), s.counts...)
	return &c
}

// NonEmptyBuckets reports the live bucket count.
func (s *ArraySketch) NonEmptyBuckets() int { return s.nonZero }

// MemoryBytes implements sketch.Sketch: the allocated array plus
// bookkeeping (the accounting difference vs the map store is itself part
// of the ablation).
func (s *ArraySketch) MemoryBytes() int { return 8 * (len(s.counts) + 10) }

// Reset implements sketch.Sketch.
func (s *ArraySketch) Reset() {
	s.counts = nil
	s.offset = 0
	s.nonZero = 0
	s.zeroCnt = 0
	s.count = 0
	s.collapses = 0
	s.min = math.Inf(1)
	s.max = math.Inf(-1)
	s.setAlpha(s.initAlpha)
	s.multiplier = initMultiplier(s.gamma)
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (s *ArraySketch) MarshalBinary() ([]byte, error) {
	w := sketch.NewWriter(64 + 16*s.nonZero)
	w.Byte(0x0B) // private tag: ablation variant
	w.Byte(sketch.SerdeVersion)
	w.F64(s.initAlpha)
	w.U32(uint32(s.maxBuckets))
	// Indexer kind rides in the collapse counter's high bit, as in
	// Sketch.MarshalBinary: pre-fast-indexer envelopes have it clear and
	// decode as exact-log sketches.
	w.U32(uint32(s.collapses) | indexerBits(s.indexer))
	w.I64(s.zeroCnt)
	w.I64(s.count)
	w.F64(s.min)
	w.F64(s.max)
	w.U32(uint32(s.nonZero))
	for pos, c := range s.counts {
		if c != 0 {
			w.I64(int64(s.offset + pos))
			w.I64(c)
		}
	}
	return w.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (s *ArraySketch) UnmarshalBinary(data []byte) error {
	r := sketch.NewReader(data)
	if r.Byte() != 0x0B || r.Byte() != sketch.SerdeVersion {
		return sketch.ErrCorrupt
	}
	initAlpha := r.F64()
	maxBuckets := int(r.U32())
	rawCollapses := r.U32()
	indexer := indexerLog
	if rawCollapses&indexerFlagCubic != 0 {
		indexer = indexerCubic
	}
	collapses := int(rawCollapses &^ indexerFlagCubic)
	zeroCnt := r.I64()
	count := r.I64()
	minV := r.F64()
	maxV := r.F64()
	nb := int(r.U32())
	if r.Err() != nil {
		return r.Err()
	}
	if collapses < 0 || collapses > 4096 || maxBuckets > 1<<24 || nb < 0 || nb > r.Remaining()/16 {
		return sketch.ErrCorrupt
	}
	ns, err := NewArray(initAlpha, maxBuckets)
	if err != nil {
		return sketch.ErrCorrupt
	}
	for i := 0; i < collapses; i++ {
		ns.setAlpha(2 * ns.alpha / (1 + ns.alpha*ns.alpha))
	}
	ns.collapses = collapses
	ns.zeroCnt = zeroCnt
	ns.count = count
	ns.min = minV
	ns.max = maxV
	for i := 0; i < nb; i++ {
		idx := r.I64()
		c := r.I64()
		if r.Err() != nil {
			return r.Err()
		}
		if c < 0 || idx > 1<<26 || idx < -(1<<26) {
			return sketch.ErrCorrupt
		}
		ns.add(int(idx), c)
	}
	if r.Remaining() != 0 {
		return sketch.ErrCorrupt
	}
	ns.indexer = indexer
	ns.multiplier = math.Ldexp(ns.multiplier, -collapses)
	*s = *ns
	return nil
}
