package uddsketch

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
)

func TestArrayMatchesMapSketch(t *testing.T) {
	// Same algorithm, different store: on the same stream, the array and
	// map variants must report identical collapse counts and (for
	// positive data) identical quantile estimates.
	m, err := NewWithBudget(0.01, 512, 12)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewArrayWithBudget(0.01, 512, 12)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 200000; i++ {
		x := math.Exp(rng.Float64()*20 - 10)
		m.Insert(x)
		a.Insert(x)
	}
	if m.Collapses() != a.Collapses() {
		t.Fatalf("collapses: map %d vs array %d", m.Collapses(), a.Collapses())
	}
	if math.Abs(m.Alpha()-a.Alpha()) > 1e-15 {
		t.Fatalf("alpha: map %v vs array %v", m.Alpha(), a.Alpha())
	}
	for _, q := range []float64{0.01, 0.25, 0.5, 0.75, 0.95, 0.99} {
		vm, err1 := m.Quantile(q)
		va, err2 := a.Quantile(q)
		if err1 != nil || err2 != nil {
			t.Fatalf("q=%v: %v / %v", q, err1, err2)
		}
		if vm != va {
			t.Errorf("q=%v: map %v vs array %v", q, vm, va)
		}
	}
}

func TestArrayGuarantee(t *testing.T) {
	s, err := NewArrayWithBudget(0.01, 1024, 12)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(3, 4))
	n := 200000
	data := make([]float64, n)
	for i := range data {
		data[i] = 1 / math.Pow(1-rng.Float64(), 1.0)
		s.Insert(data[i])
	}
	sort.Float64s(data)
	for _, q := range []float64{0.05, 0.5, 0.95, 0.99} {
		est, err := s.Quantile(q)
		if err != nil {
			t.Fatal(err)
		}
		if re := relErr(exactQuantile(data, q), est); re > s.Alpha()*(1+1e-9) {
			t.Errorf("q=%v: rel err %v > alpha %v", q, re, s.Alpha())
		}
	}
}

func TestArrayBucketBudget(t *testing.T) {
	s, err := NewArray(1e-4, 64)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(5, 6))
	for i := 0; i < 100000; i++ {
		s.Insert(math.Exp(rng.Float64()*40 - 20))
	}
	if s.NonEmptyBuckets() > 64 {
		t.Errorf("%d buckets, budget 64", s.NonEmptyBuckets())
	}
	if s.Collapses() == 0 {
		t.Error("expected collapses")
	}
}

func TestArrayMergeAligns(t *testing.T) {
	a, _ := NewArray(1e-4, 128)
	b, _ := NewArray(1e-4, 128)
	rng := rand.New(rand.NewPCG(7, 8))
	var all []float64
	for i := 0; i < 50000; i++ {
		x := math.Exp(rng.Float64()*30 - 15)
		all = append(all, x)
		a.Insert(x)
	}
	for i := 0; i < 1000; i++ {
		x := 1 + 0.02*rng.Float64()
		all = append(all, x)
		b.Insert(x)
	}
	if a.Collapses() == 0 || b.Collapses() != 0 {
		t.Fatalf("setup: a=%d b=%d collapses", a.Collapses(), b.Collapses())
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != uint64(len(all)) {
		t.Fatalf("count %d, want %d", a.Count(), len(all))
	}
	sort.Float64s(all)
	alpha := a.Alpha()
	for _, q := range []float64{0.1, 0.5, 0.9} {
		est, _ := a.Quantile(q)
		if re := relErr(exactQuantile(all, q), est); re > alpha*(1+1e-9) {
			t.Errorf("q=%v: rel err %v > alpha after merge", q, re)
		}
	}
}

func TestArrayZeroAndNegative(t *testing.T) {
	s, _ := NewArray(0.01, 256)
	s.Insert(0)
	s.Insert(-5)
	s.Insert(10)
	if s.Count() != 3 {
		t.Fatalf("count %d", s.Count())
	}
	lo, err := s.Quantile(0.3)
	if err != nil {
		t.Fatal(err)
	}
	if lo != -5 { // zero bucket reports min when negatives were folded in
		t.Errorf("q=0.3 = %v, want -5", lo)
	}
}

func TestArraySerde(t *testing.T) {
	s, _ := NewArrayWithBudget(0.01, 512, 12)
	rng := rand.New(rand.NewPCG(9, 10))
	for i := 0; i < 50000; i++ {
		s.Insert(math.Exp(rng.Float64() * 10))
	}
	blob, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var d ArraySketch
	if err := d.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if d.Count() != s.Count() || d.Collapses() != s.Collapses() {
		t.Fatal("state mismatch")
	}
	qa, _ := s.Quantile(0.9)
	qb, _ := d.Quantile(0.9)
	if qa != qb {
		t.Errorf("round trip: %v != %v", qa, qb)
	}
	if err := d.UnmarshalBinary(blob[:11]); err == nil {
		t.Error("truncated blob should fail")
	}
}
