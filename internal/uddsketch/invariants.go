//go:build invariants

package uddsketch

import (
	"math"

	"repro/internal/invariant"
)

// assertInvariants re-verifies the map-backed UDDSketch's contracts:
//
//   - Count conservation: Σ positive + Σ negative + zeroCnt == count.
//     Unlike DDSketch the total is stored, so a drifting bucket map
//     would silently skew every rank estimate.
//   - Bucket budget: at most maxBuckets live buckets after any
//     complete operation (uniform collapse enforces it).
//   - Positive bucket counts: neither insertion nor collapse can
//     produce an empty or negative bucket.
//   - Accuracy bookkeeping: α ∈ (0,1) and γ consistent with α.
//   - Ordered bounds: min ≤ max (non-NaN) whenever non-empty.
func (s *Sketch) assertInvariants(op string) {
	var sum int64
	for side, m := range map[string]map[int]int64{"positive": s.positive, "negative": s.negative} {
		for i, c := range m {
			if c <= 0 {
				invariant.Violationf("uddsketch", op, "%s bucket %d has non-positive count %d", side, i, c)
			}
			sum += c
		}
	}
	if sum+s.zeroCnt != s.count {
		invariant.Violationf("uddsketch", op, "count conservation broken: buckets %d + zero %d != count %d",
			sum, s.zeroCnt, s.count)
	}
	if n := len(s.positive) + len(s.negative); n > s.maxBuckets {
		invariant.Violationf("uddsketch", op, "bucket budget exceeded: %d live buckets, budget %d", n, s.maxBuckets)
	}
	if !(s.alpha > 0 && s.alpha < 1) {
		invariant.Violationf("uddsketch", op, "alpha %v outside (0,1) after %d collapses", s.alpha, s.collapses)
	}
	if g := (1 + s.alpha) / (1 - s.alpha); math.Abs(g-s.gamma) > 1e-9*g {
		invariant.Violationf("uddsketch", op, "gamma %v inconsistent with alpha %v (want %v)", s.gamma, s.alpha, g)
	}
	if s.count > 0 {
		if math.IsNaN(s.min) || math.IsNaN(s.max) || !(s.min <= s.max) {
			invariant.Violationf("uddsketch", op, "bounds broken: min %v, max %v with count %d", s.min, s.max, s.count)
		}
	}
}

// assertCount verifies count conservation across a merge.
func (s *Sketch) assertCount(op string, want int64) {
	if s.count != want {
		invariant.Violationf("uddsketch", op, "count conservation broken: got %d, want %d", s.count, want)
	}
	s.assertInvariants(op)
}
