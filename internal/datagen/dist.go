package datagen

import (
	"math"
	"math/rand/v2"
	"sort"
)

// Source produces an endless stream of float64 observations. All sources
// in this package are deterministic functions of their seed.
type Source interface {
	// Next returns the next observation.
	Next() float64
}

// SourceFunc adapts a function to the Source interface.
type SourceFunc func() float64

// Next implements Source.
func (f SourceFunc) Next() float64 { return f() }

// Take draws n values from src into a new slice.
func Take(src Source, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = src.Next()
	}
	return out
}

// Uniform samples U(lo, hi).
type Uniform struct {
	Lo, Hi float64
	rng    *rand.Rand
}

// NewUniform returns a uniform source over [lo, hi).
func NewUniform(lo, hi float64, seed uint64) *Uniform {
	return &Uniform{Lo: lo, Hi: hi, rng: NewRand(seed)}
}

// Next implements Source.
func (u *Uniform) Next() float64 { return u.Lo + (u.Hi-u.Lo)*u.rng.Float64() }

// Pareto samples the Pareto distribution with shape Alpha and scale Xm:
// P(X > x) = (Xm/x)^Alpha for x ≥ Xm. With Alpha = 1 (the paper's speed
// workload) the distribution has an extremely long tail and infinite mean.
type Pareto struct {
	Alpha, Xm float64
	rng       *rand.Rand
}

// NewPareto returns a Pareto source.
func NewPareto(alpha, xm float64, seed uint64) *Pareto {
	return &Pareto{Alpha: alpha, Xm: xm, rng: NewRand(seed)}
}

// Next implements Source.
func (p *Pareto) Next() float64 {
	// Inverse-CDF sampling; 1-U avoids a zero argument.
	u := 1 - p.rng.Float64()
	return p.Xm / math.Pow(u, 1/p.Alpha)
}

// Normal samples N(Mu, Sigma²).
type Normal struct {
	Mu, Sigma float64
	rng       *rand.Rand
}

// NewNormal returns a normal source.
func NewNormal(mu, sigma float64, seed uint64) *Normal {
	return &Normal{Mu: mu, Sigma: sigma, rng: NewRand(seed)}
}

// Next implements Source.
func (n *Normal) Next() float64 { return n.Mu + n.Sigma*n.rng.NormFloat64() }

// Exponential samples Exp with the given mean.
type Exponential struct {
	Mean float64
	rng  *rand.Rand
}

// NewExponential returns an exponential source.
func NewExponential(mean float64, seed uint64) *Exponential {
	return &Exponential{Mean: mean, rng: NewRand(seed)}
}

// Next implements Source.
func (e *Exponential) Next() float64 { return e.Mean * e.rng.ExpFloat64() }

// Gamma samples the gamma distribution with the given Shape (k) and Scale
// (θ) using the Marsaglia–Tsang squeeze method. Its excess kurtosis is
// 6/Shape, which the kurtosis experiment (Fig 7) exploits to sweep tail
// weight.
type Gamma struct {
	Shape, Scale float64
	rng          *rand.Rand
}

// NewGamma returns a gamma source; shape and scale must be positive.
func NewGamma(shape, scale float64, seed uint64) *Gamma {
	if shape <= 0 || scale <= 0 {
		panic("datagen: gamma shape and scale must be positive")
	}
	return &Gamma{Shape: shape, Scale: scale, rng: NewRand(seed)}
}

// Next implements Source.
func (g *Gamma) Next() float64 { return g.Scale * gammaSample(g.rng, g.Shape) }

func gammaSample(rng *rand.Rand, shape float64) float64 {
	if shape < 1 {
		// Boost: Gamma(k) = Gamma(k+1) · U^(1/k).
		u := rng.Float64()
		return gammaSample(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// LogNormal samples exp(N(Mu, Sigma²)).
type LogNormal struct {
	Mu, Sigma float64
	rng       *rand.Rand
}

// NewLogNormal returns a lognormal source.
func NewLogNormal(mu, sigma float64, seed uint64) *LogNormal {
	return &LogNormal{Mu: mu, Sigma: sigma, rng: NewRand(seed)}
}

// Next implements Source.
func (l *LogNormal) Next() float64 {
	return math.Exp(l.Mu + l.Sigma*l.rng.NormFloat64())
}

// Binomial samples the discrete Binomial(N, P) distribution. The paper
// uses Binomial(100, 0.2) for merge-speed sketches and Binomial(30, 0.4)
// for the adaptability workload; at these sizes direct simulation of N
// Bernoulli trials is exact and fast enough.
type Binomial struct {
	N   int
	P   float64
	rng *rand.Rand
}

// NewBinomial returns a binomial source.
func NewBinomial(n int, p float64, seed uint64) *Binomial {
	return &Binomial{N: n, P: p, rng: NewRand(seed)}
}

// Next implements Source.
func (b *Binomial) Next() float64 {
	k := 0
	for i := 0; i < b.N; i++ {
		if b.rng.Float64() < b.P {
			k++
		}
	}
	return float64(k)
}

// Zipf samples from a finite Zipf distribution over the values 1..N with
// exponent S: P(k) ∝ 1/k^S. Unlike math/rand's Zipf it supports exponents
// below 1, which the paper's merge workload needs (20 elements, s = 0.6).
type Zipf struct {
	cdf []float64
	rng *rand.Rand
}

// NewZipf returns a finite Zipf source over 1..n.
func NewZipf(n int, s float64, seed uint64) *Zipf {
	if n < 1 {
		panic("datagen: zipf needs n >= 1")
	}
	cdf := make([]float64, n)
	var total float64
	for k := 1; k <= n; k++ {
		total += 1 / math.Pow(float64(k), s)
		cdf[k-1] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return &Zipf{cdf: cdf, rng: NewRand(seed)}
}

// Next implements Source.
func (z *Zipf) Next() float64 {
	u := z.rng.Float64()
	i := sort.SearchFloat64s(z.cdf, u)
	return float64(i + 1)
}

// Mixture draws from one of its component sources with the configured
// probabilities. Weights are normalized at construction.
type Mixture struct {
	cdf     []float64
	sources []Source
	rng     *rand.Rand
}

// NewMixture builds a mixture of sources with the given weights.
func NewMixture(seed uint64, weights []float64, sources ...Source) *Mixture {
	if len(weights) != len(sources) || len(sources) == 0 {
		panic("datagen: mixture weights/sources mismatch")
	}
	cdf := make([]float64, len(weights))
	var total float64
	for i, w := range weights {
		if w < 0 {
			panic("datagen: negative mixture weight")
		}
		total += w
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return &Mixture{cdf: cdf, sources: sources, rng: NewRand(seed)}
}

// Next implements Source.
func (m *Mixture) Next() float64 {
	u := m.rng.Float64()
	i := sort.SearchFloat64s(m.cdf, u)
	if i >= len(m.sources) {
		i = len(m.sources) - 1
	}
	return m.sources[i].Next()
}

// Constant always returns V; used for point masses inside mixtures.
type Constant struct{ V float64 }

// Next implements Source.
func (c Constant) Next() float64 { return c.V }

// Concat exhausts each source for its configured count before moving to
// the next; it builds the adaptability workload's hard distribution switch.
type Concat struct {
	counts  []int
	sources []Source
	idx     int
	used    int
}

// NewConcat returns a source yielding counts[i] values from sources[i] in
// order, then repeating the final source forever.
func NewConcat(counts []int, sources ...Source) *Concat {
	if len(counts) != len(sources) || len(sources) == 0 {
		panic("datagen: concat counts/sources mismatch")
	}
	return &Concat{counts: counts, sources: sources}
}

// Next implements Source.
func (c *Concat) Next() float64 {
	for c.idx < len(c.sources)-1 && c.used >= c.counts[c.idx] {
		c.idx++
		c.used = 0
	}
	c.used++
	return c.sources[c.idx].Next()
}

// Quantize rounds the wrapped source's output to multiples of step,
// creating the repeated discrete values that characterize real-world
// metering data.
type Quantize struct {
	Src  Source
	Step float64
}

// Next implements Source.
func (q Quantize) Next() float64 {
	return math.Round(q.Src.Next()/q.Step) * q.Step
}

// Clamp limits the wrapped source's output to [Lo, Hi].
type Clamp struct {
	Src    Source
	Lo, Hi float64
}

// Next implements Source.
func (c Clamp) Next() float64 {
	x := c.Src.Next()
	if x < c.Lo {
		return c.Lo
	}
	if x > c.Hi {
		return c.Hi
	}
	return x
}
