package datagen

// Synthetic stand-ins for the two real-world data sets. We do not have
// the 2013 NYC taxi-fare dump or the UCI household power file in this
// offline environment, so each stand-in is constructed to reproduce the
// statistics the paper actually leans on in its analysis (see DESIGN.md,
// Substitutions). The accompanying tests assert those statistics hold.

// NYTTopFares lists the discrete point masses forming the head of the
// synthetic NYT fare distribution. The paper reports that the top-10 most
// frequent values carry ≈31.2% of the 14.7M-row data set and names 6.5,
// 7.5, 8.0 and 9.0 as the (exactly estimated) 0.25-quantile values, each
// repeated over 200,000 times. Weights below decay geometrically so those
// four dominate.
var NYTTopFares = []struct {
	Fare   float64
	Weight float64
}{
	{7.5, 0.052}, {8.0, 0.046}, {6.5, 0.042}, {9.0, 0.038},
	{7.0, 0.033}, {8.5, 0.028}, {6.0, 0.024}, {9.5, 0.020},
	{10.0, 0.016}, {5.5, 0.013},
}

// NYTAirportFare is the flat JFK fare plus fixed surcharges; the paper
// observes the 0.98-quantile value 57.3 repeated more than 4,000 times in
// a 1M sample, which this point mass reproduces.
const NYTAirportFare = 57.3

// NewSyntheticNYT builds the NYT taxi-fare stand-in:
//
//   - ≈31.2% of mass on the ten discrete head fares above (massive
//     mid-quantile repetition — what makes KLL/REQ exact at q=0.25);
//   - a lognormal body quantized to $0.5 metering steps (fares are
//     discrete in the real data too);
//   - a 0.55% point mass at the $57.30 airport flat fare (so the 0.98
//     quantile is a heavily repeated exact value, per Fig 7's discussion);
//   - a thin quantized heavy tail out to several hundred dollars
//     (long-tail relative-error behaviour in Fig 6c).
func NewSyntheticNYT(seed uint64) Source {
	var headW float64
	head := make([]Source, 0, len(NYTTopFares))
	weights := make([]float64, 0, len(NYTTopFares)+3)
	for _, f := range NYTTopFares {
		head = append(head, Constant{f.Fare})
		weights = append(weights, f.Weight)
		headW += f.Weight
	}
	s := seed
	// The body is quantized at $0.10 (fare steps are $0.50 but totals
	// carry surcharges and tax at dime granularity), keeping every
	// individual body value below the head weights so the top-10 mass is
	// the head's ≈31.2%.
	body := Quantize{Src: NewLogNormal(2.45, 0.45, SplitMix64(&s)), Step: 0.1}
	airport := Constant{NYTAirportFare}
	tail := Quantize{
		Src:  Clamp{Src: NewPareto(1.6, 40, SplitMix64(&s)), Lo: 40, Hi: 600},
		Step: 0.1,
	}
	// Tail and airport weights are chosen so P(X < 57.3) ≈ 0.98: the
	// airport point mass IS the 0.98 quantile, repeated ≈5,500 times per
	// 1M — the property Fig 7's discussion relies on.
	const airportW, tailW = 0.0055, 0.026
	bodyW := 1 - headW - airportW - tailW
	sources := append(head, body, airport, tail)
	weights = append(weights, bodyW, airportW, tailW)
	return Clamp{
		Src: NewMixture(SplitMix64(&s), weights, sources...),
		Lo:  2.5, Hi: 600,
	}
}

// NewSyntheticPower builds the UCI household power stand-in: a bimodal
// mixture over [0, 11] kW with a tall idle hump (~0.3 kW) and a broad
// active hump (~1.4–2.5 kW), quantized to the meter's 0.002 kW resolution.
// The quantization yields ≈4–5% top-10 value mass (the paper reports
// ≈4.5%), and the bimodality is what defeats Moments Sketch's max-entropy
// fit in Fig 6d.
func NewSyntheticPower(seed uint64) Source {
	s := seed
	idle := NewGamma(9, 0.035, SplitMix64(&s))   // sharp hump near 0.3 kW
	active := NewGamma(10, 0.19, SplitMix64(&s)) // broad hump near 1.9 kW
	spikes := NewGamma(4.0, 1.1, SplitMix64(&s)) // occasional 3–8 kW loads
	mix := NewMixture(SplitMix64(&s), []float64{0.52, 0.40, 0.08}, idle, active, spikes)
	return Quantize{
		Src:  Clamp{Src: mix, Lo: 0.076, Hi: 11.122},
		Step: 0.002,
	}
}
