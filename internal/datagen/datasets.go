package datagen

import (
	"fmt"
	"sort"
)

// Dataset names used across the harness, matching the paper's Fig 4.
const (
	DatasetPareto  = "pareto"
	DatasetUniform = "uniform"
	DatasetNYT     = "nyt"
	DatasetPower   = "power"
)

// ResampleEveryAt50k is the drift re-sampling period in events
// corresponding to the paper's "every millisecond" at 50,000 events/s.
const ResampleEveryAt50k = 50

// NewDataset returns the accuracy-experiment source for one of the four
// named data sets (Sec 4.1). Unknown names return an error listing the
// valid choices.
func NewDataset(name string, seed uint64) (Source, error) {
	switch name {
	case DatasetPareto:
		return NewDriftingPareto(seed, ResampleEveryAt50k), nil
	case DatasetUniform:
		return NewDriftingUniform(seed, ResampleEveryAt50k), nil
	case DatasetNYT:
		return NewSyntheticNYT(seed), nil
	case DatasetPower:
		return NewSyntheticPower(seed), nil
	default:
		return nil, fmt.Errorf("datagen: unknown dataset %q (want one of %v)", name, DatasetNames())
	}
}

// DatasetNames returns the four data-set names in the paper's order.
func DatasetNames() []string {
	return []string{DatasetPareto, DatasetUniform, DatasetNYT, DatasetPower}
}

// NeedsLogTransform reports whether the harness applies the Moments-Sketch
// log transformation for the data set, mirroring the paper's methodology:
// "we apply a log transformation to Pareto and Power data sets since these
// data sets span over many orders of magnitude" (Sec 4.2).
func NeedsLogTransform(dataset string) bool {
	return dataset == DatasetPareto || dataset == DatasetPower
}

// MergeWorkloadNames returns the three distributions feeding the
// merge-speed experiment (Fig 5c).
func MergeWorkloadNames() []string { return []string{"uniform", "binomial", "zipf"} }

// NewMergeWorkload returns one of the Fig 5c per-sketch fill sources:
// U(30,100), Binomial(100, 0.2) or Zipf(20 elements, exponent 0.6).
func NewMergeWorkload(name string, seed uint64) (Source, error) {
	switch name {
	case "uniform":
		return NewUniform(30, 100, seed), nil
	case "binomial":
		return NewBinomial(100, 0.2, seed), nil
	case "zipf":
		return NewZipf(20, 0.6, seed), nil
	default:
		return nil, fmt.Errorf("datagen: unknown merge workload %q", name)
	}
}

// NewAdaptabilityWorkload returns the Sec 4.5.7 source: the first half
// (halfSize values) from Binomial(30, 0.4), then U(30, 100) thereafter.
func NewAdaptabilityWorkload(seed uint64, halfSize int) Source {
	s := seed
	return NewConcat(
		[]int{halfSize, int(^uint(0) >> 1)},
		NewBinomial(30, 0.4, SplitMix64(&s)),
		NewUniform(30, 100, SplitMix64(&s)),
	)
}

// KurtosisPoint is one x-axis entry of the Fig 7 sweep: a named source
// whose sample kurtosis spans from no tail (uniform) to an extremely heavy
// tail (Pareto).
type KurtosisPoint struct {
	Name string
	Src  Source
}

// NewKurtosisSweep returns the Fig 7 data sets ordered by increasing
// sample kurtosis: the four paper data sets plus gamma interpolation
// points (excess kurtosis of Gamma(k) is 6/k) that fill the gap between
// uniform and Pareto, echoing Fig 1's gamma example. The pilot sample used
// for ordering draws from independent source instances, so the returned
// sources are fresh and deterministic in seed.
func NewKurtosisSweep(seed uint64, sampleSize int) []KurtosisPoint {
	factories := []struct {
		name string
		make func(seed uint64) Source
	}{
		{"uniform", func(s uint64) Source { return NewDriftingUniform(s, ResampleEveryAt50k) }},
		{"gamma(k=6)", func(s uint64) Source { return NewGamma(6, 10, s) }},
		{"gamma(k=2)", func(s uint64) Source { return NewGamma(2, 10, s) }},
		{"power", NewSyntheticPower},
		{"gamma(k=0.5)", func(s uint64) Source { return NewGamma(0.5, 10, s) }},
		{"nyt", NewSyntheticNYT},
		{"pareto", func(s uint64) Source { return NewDriftingPareto(s, ResampleEveryAt50k) }},
	}
	// Order by measured kurtosis on a pilot sample so the sweep is
	// monotone on its x-axis regardless of the synthetic details.
	s := seed
	type kp struct {
		p KurtosisPoint
		k float64
	}
	measured := make([]kp, len(factories))
	for i, f := range factories {
		srcSeed := SplitMix64(&s)
		pilot := f.make(srcSeed ^ 0xabcddcba12344321)
		measured[i] = kp{KurtosisPoint{f.name, f.make(srcSeed)}, sampleKurtosis(pilot, sampleSize)}
	}
	sort.SliceStable(measured, func(i, j int) bool { return measured[i].k < measured[j].k })
	out := make([]KurtosisPoint, len(measured))
	for i, m := range measured {
		out[i] = m.p
	}
	return out
}

func sampleKurtosis(src Source, n int) float64 {
	// Local import cycle avoidance: a tiny inline kurtosis accumulator
	// (same update as stats.Moments) keeps datagen free of dependencies.
	var (
		cnt              float64
		mean, m2, m3, m4 float64
	)
	for i := 0; i < n; i++ {
		x := src.Next()
		n1 := cnt
		cnt++
		delta := x - mean
		dn := delta / cnt
		dn2 := dn * dn
		t1 := delta * dn * n1
		mean += dn
		m4 += t1*dn2*(cnt*cnt-3*cnt+3) + 6*dn2*m2 - 4*dn*m3
		m3 += t1*dn*(cnt-2) - 3*dn*m2
		m2 += t1
	}
	if m2 == 0 {
		return 0
	}
	return cnt*m4/(m2*m2) - 3
}
