package datagen

import "math/rand/v2"

// The paper's synthetic accuracy workloads do not sample one fixed
// distribution: "we periodically sample the synthetic data generation
// parameters from normal distributions ... updated every millisecond"
// (Sec 4.1). At 50,000 events/s a millisecond is 50 events, so a drifting
// source re-parameterizes itself every ResampleEvery events.

// Drifting wraps a family of distributions and re-instantiates the active
// member from freshly sampled parameters every ResampleEvery observations.
type Drifting struct {
	// ResampleEvery is the number of observations drawn from one parameter
	// set before re-sampling (50 ≙ 1 ms at the paper's 50k events/s).
	ResampleEvery int

	rng     *rand.Rand
	seedSrc uint64
	make    func(rng *rand.Rand, seed uint64) Source
	active  Source
	drawn   int
}

// NewDrifting returns a drifting source. makeFn receives the parameter RNG
// (for drawing new distribution parameters) and a derived seed (for the
// new member's own value stream).
func NewDrifting(seed uint64, every int, makeFn func(rng *rand.Rand, seed uint64) Source) *Drifting {
	if every < 1 {
		every = 1
	}
	d := &Drifting{
		ResampleEvery: every,
		rng:           NewRand(seed),
		seedSrc:       seed ^ 0xd1f7a9e3b5c80421,
		make:          makeFn,
	}
	d.resample()
	return d
}

func (d *Drifting) resample() {
	d.active = d.make(d.rng, SplitMix64(&d.seedSrc))
	d.drawn = 0
}

// Next implements Source.
func (d *Drifting) Next() float64 {
	if d.drawn >= d.ResampleEvery {
		d.resample()
	}
	d.drawn++
	return d.active.Next()
}

// NewDriftingPareto reproduces the paper's Pareto accuracy workload: shape
// α ~ N(1, 0.05) and scale Xm ~ N(1, 0.05), re-sampled every `every`
// observations. Parameters are clamped away from zero so the distribution
// stays well-defined under unlucky draws.
func NewDriftingPareto(seed uint64, every int) *Drifting {
	return NewDrifting(seed, every, func(rng *rand.Rand, s uint64) Source {
		alpha := clampMin(1+0.05*rng.NormFloat64(), 0.5)
		xm := clampMin(1+0.05*rng.NormFloat64(), 0.5)
		return NewPareto(alpha, xm, s)
	})
}

// NewDriftingUniform reproduces the paper's Uniform accuracy workload: the
// minimum ~ N(1000, 100) with a fixed width of 1000, re-sampled every
// `every` observations.
func NewDriftingUniform(seed uint64, every int) *Drifting {
	const width = 1000
	return NewDrifting(seed, every, func(rng *rand.Rand, s uint64) Source {
		lo := clampMin(1000+100*rng.NormFloat64(), 1)
		return NewUniform(lo, lo+width, s)
	})
}

func clampMin(x, lo float64) float64 {
	if x < lo {
		return lo
	}
	return x
}
