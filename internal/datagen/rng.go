// Package datagen generates the study's synthetic workloads: the Pareto
// and Uniform streams with drifting parameters (paper Sec 4.1), the
// distributions used by the speed experiments (uniform, binomial, Zipf),
// the adaptability workload (binomial → uniform switch, Sec 4.5.7), and
// synthetic stand-ins for the two real-world data sets (NYT taxi fares and
// UCI household power) whose defining statistics the paper reports.
//
// Every source is deterministic given its seed, so experiment runs are
// reproducible; the harness derives per-run seeds with SplitMix64.
package datagen

import "math/rand/v2"

// SplitMix64 advances the classic splitmix64 generator one step and
// returns the next value. It is used to derive independent, well-mixed
// seeds for sub-streams (per-run, per-partition) from a single root seed.
func SplitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRand returns a deterministic PCG-backed generator for seed.
func NewRand(seed uint64) *rand.Rand {
	s := seed
	a := SplitMix64(&s)
	b := SplitMix64(&s)
	return rand.New(rand.NewPCG(a, b))
}

// DeriveSeed returns the i-th derived seed from root, suitable for seeding
// an independent sub-stream.
func DeriveSeed(root uint64, i int) uint64 {
	s := root
	var v uint64
	for k := 0; k <= i; k++ {
		v = SplitMix64(&s)
	}
	return v
}
