package datagen

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// FileSource replays float64 values from a text file (one value per
// line; blank lines and '#' comments skipped), cycling back to the start
// when exhausted. It exists so the harness's synthetic NYT/Power
// stand-ins can be swapped for the real data sets when available: dump
// the fare / power column to a file and pass it to NewFileSource.
type FileSource struct {
	values []float64
	pos    int
}

// NewFileSource loads path fully into memory (the study's data sets are
// tens of MB). It fails on unparsable lines, reporting the line number.
func NewFileSource(path string) (*FileSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("datagen: %w", err)
	}
	defer f.Close()
	var values []float64
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		v, err := strconv.ParseFloat(line, 64)
		if err != nil {
			return nil, fmt.Errorf("datagen: %s:%d: %w", path, lineNo, err)
		}
		values = append(values, v)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("datagen: reading %s: %w", path, err)
	}
	if len(values) == 0 {
		return nil, fmt.Errorf("datagen: %s holds no values", path)
	}
	return &FileSource{values: values}, nil
}

// Len reports how many values the file held.
func (f *FileSource) Len() int { return len(f.values) }

// Next implements Source, cycling through the file's values.
func (f *FileSource) Next() float64 {
	v := f.values[f.pos]
	f.pos++
	if f.pos == len(f.values) {
		f.pos = 0
	}
	return v
}

// NewDatasetOrFile resolves name like NewDataset, additionally accepting
// "file:<path>" for replaying real data.
func NewDatasetOrFile(name string, seed uint64) (Source, error) {
	if path, ok := strings.CutPrefix(name, "file:"); ok {
		return NewFileSource(path)
	}
	return NewDataset(name, seed)
}
