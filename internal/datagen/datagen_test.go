package datagen

import (
	"math"
	"os"
	"sort"
	"testing"
	"testing/quick"
)

// sampleStats computes mean and variance of n draws.
func sampleStats(src Source, n int) (mean, variance float64) {
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		x := src.Next()
		sum += x
		sum2 += x * x
	}
	mean = sum / float64(n)
	variance = sum2/float64(n) - mean*mean
	return
}

func TestDeterminism(t *testing.T) {
	factories := map[string]func(seed uint64) Source{
		"uniform":   func(s uint64) Source { return NewUniform(0, 1, s) },
		"pareto":    func(s uint64) Source { return NewPareto(1, 1, s) },
		"normal":    func(s uint64) Source { return NewNormal(0, 1, s) },
		"gamma":     func(s uint64) Source { return NewGamma(2, 3, s) },
		"binomial":  func(s uint64) Source { return NewBinomial(30, 0.4, s) },
		"zipf":      func(s uint64) Source { return NewZipf(20, 0.6, s) },
		"lognormal": func(s uint64) Source { return NewLogNormal(0, 1, s) },
		"nyt":       NewSyntheticNYT,
		"power":     NewSyntheticPower,
		"driftP":    func(s uint64) Source { return NewDriftingPareto(s, 50) },
		"driftU":    func(s uint64) Source { return NewDriftingUniform(s, 50) },
	}
	for name, f := range factories {
		a := Take(f(42), 1000)
		b := Take(f(42), 1000)
		c := Take(f(43), 1000)
		same, diff := true, false
		for i := range a {
			if a[i] != b[i] {
				same = false
			}
			if a[i] != c[i] {
				diff = true
			}
		}
		if !same {
			t.Errorf("%s: same seed produced different streams", name)
		}
		if !diff {
			t.Errorf("%s: different seeds produced identical streams", name)
		}
	}
}

func TestUniformRange(t *testing.T) {
	src := NewUniform(30, 100, 1)
	for i := 0; i < 10000; i++ {
		x := src.Next()
		if x < 30 || x >= 100 {
			t.Fatalf("U(30,100) produced %v", x)
		}
	}
}

func TestParetoTail(t *testing.T) {
	src := NewPareto(2, 1, 2) // finite mean 2, finite variance
	mean, _ := sampleStats(src, 500000)
	if math.Abs(mean-2) > 0.1 {
		t.Errorf("Pareto(2,1) mean = %v, want ≈ 2", mean)
	}
	// All values ≥ Xm.
	src = NewPareto(1, 5, 3)
	for i := 0; i < 10000; i++ {
		if x := src.Next(); x < 5 {
			t.Fatalf("Pareto(1,5) produced %v < Xm", x)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	mean, variance := sampleStats(NewNormal(10, 3, 4), 500000)
	if math.Abs(mean-10) > 0.05 {
		t.Errorf("mean = %v", mean)
	}
	if math.Abs(variance-9) > 0.2 {
		t.Errorf("variance = %v", variance)
	}
}

func TestGammaMoments(t *testing.T) {
	// Gamma(k, θ): mean kθ, variance kθ².
	for _, tc := range []struct{ shape, scale float64 }{{0.5, 2}, {2, 3}, {9, 0.5}} {
		mean, variance := sampleStats(NewGamma(tc.shape, tc.scale, 5), 500000)
		wantMean := tc.shape * tc.scale
		wantVar := tc.shape * tc.scale * tc.scale
		if math.Abs(mean-wantMean) > 0.05*wantMean+0.02 {
			t.Errorf("Gamma(%v,%v) mean = %v, want %v", tc.shape, tc.scale, mean, wantMean)
		}
		if math.Abs(variance-wantVar) > 0.1*wantVar+0.05 {
			t.Errorf("Gamma(%v,%v) var = %v, want %v", tc.shape, tc.scale, variance, wantVar)
		}
	}
}

func TestBinomialMoments(t *testing.T) {
	mean, variance := sampleStats(NewBinomial(30, 0.4, 6), 200000)
	if math.Abs(mean-12) > 0.1 {
		t.Errorf("mean = %v, want 12", mean)
	}
	if math.Abs(variance-7.2) > 0.3 {
		t.Errorf("variance = %v, want 7.2", variance)
	}
}

func TestZipfDistribution(t *testing.T) {
	src := NewZipf(20, 0.6, 7)
	counts := make(map[float64]int)
	n := 200000
	for i := 0; i < n; i++ {
		x := src.Next()
		if x < 1 || x > 20 || x != math.Trunc(x) {
			t.Fatalf("Zipf produced %v", x)
		}
		counts[x]++
	}
	// P(1)/P(2) should be ≈ 2^0.6.
	ratio := float64(counts[1]) / float64(counts[2])
	if math.Abs(ratio-math.Pow(2, 0.6)) > 0.1 {
		t.Errorf("P(1)/P(2) = %v, want ≈ %v", ratio, math.Pow(2, 0.6))
	}
	if counts[1] <= counts[20] {
		t.Error("Zipf should favour small values")
	}
}

func TestExponentialMean(t *testing.T) {
	mean, _ := sampleStats(NewExponential(150, 8), 500000)
	if math.Abs(mean-150) > 2 {
		t.Errorf("mean = %v, want 150", mean)
	}
}

func TestMixtureWeights(t *testing.T) {
	m := NewMixture(9, []float64{3, 1}, Constant{1}, Constant{2})
	n := 100000
	ones := 0
	for i := 0; i < n; i++ {
		if m.Next() == 1 {
			ones++
		}
	}
	if frac := float64(ones) / float64(n); math.Abs(frac-0.75) > 0.01 {
		t.Errorf("mixture weight 3:1 gave %v ones", frac)
	}
}

func TestConcatSwitches(t *testing.T) {
	c := NewConcat([]int{3, 1 << 30}, Constant{1}, Constant{2})
	want := []float64{1, 1, 1, 2, 2}
	for i, w := range want {
		if got := c.Next(); got != w {
			t.Fatalf("Concat value %d = %v, want %v", i, got, w)
		}
	}
}

func TestQuantizeAndClamp(t *testing.T) {
	q := Quantize{Src: Constant{1.234}, Step: 0.5}
	if got := q.Next(); got != 1.0 {
		t.Errorf("Quantize(1.234, 0.5) = %v, want 1.0", got)
	}
	cl := Clamp{Src: Constant{99}, Lo: 0, Hi: 10}
	if got := cl.Next(); got != 10 {
		t.Errorf("Clamp(99) = %v", got)
	}
}

func TestDriftingResamples(t *testing.T) {
	// A drifting uniform with a tiny resample period must produce values
	// from multiple parameter regimes: its overall spread exceeds any
	// single member's width of 1000.
	src := NewDriftingUniform(11, 10)
	data := Take(src, 10000)
	sort.Float64s(data)
	spread := data[len(data)-1] - data[0]
	if spread <= 1000 {
		t.Errorf("spread %v suggests parameters never drifted", spread)
	}
}

func TestSyntheticNYTProperties(t *testing.T) {
	data := Take(NewSyntheticNYT(12), 1_000_000)
	sort.Float64s(data)
	n := len(data)
	q := func(p float64) float64 { return data[int(math.Ceil(p*float64(n)))-1] }

	// The paper's defining statistics (Sec 4.5.3, Fig 7).
	if v := q(0.98); v != NYTAirportFare {
		t.Errorf("q0.98 = %v, want the airport fare %v", v, NYTAirportFare)
	}
	airport := 0
	for _, x := range data {
		if x == NYTAirportFare {
			airport++
		}
	}
	if airport < 4000 {
		t.Errorf("airport fare repeated %d times per 1M, paper reports > 4000", airport)
	}
	// q0.25 is one of the heavily repeated head fares.
	head := map[float64]bool{}
	for _, f := range NYTTopFares {
		head[f.Fare] = true
	}
	if v := q(0.25); !head[v] {
		t.Errorf("q0.25 = %v, want a head fare", v)
	}
	// Top-10 mass ≈ 31% (paper: 31.2%; accept 25–40%).
	freq := map[float64]int{}
	for _, x := range data {
		freq[x]++
	}
	counts := make([]int, 0, len(freq))
	for _, c := range freq {
		counts = append(counts, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	top10 := 0
	for i := 0; i < 10 && i < len(counts); i++ {
		top10 += counts[i]
	}
	if frac := float64(top10) / float64(n); frac < 0.25 || frac > 0.40 {
		t.Errorf("top-10 mass = %v, paper reports ≈ 0.312", frac)
	}
}

func TestSyntheticPowerProperties(t *testing.T) {
	data := Take(NewSyntheticPower(13), 500_000)
	lo, hi := math.Inf(1), math.Inf(-1)
	freq := map[float64]int{}
	for _, x := range data {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
		freq[x]++
	}
	if lo < 0 || hi > 11.2 {
		t.Errorf("range [%v, %v] outside the UCI data's [0, 11]", lo, hi)
	}
	counts := make([]int, 0, len(freq))
	for _, c := range freq {
		counts = append(counts, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	top10 := 0
	for i := 0; i < 10 && i < len(counts); i++ {
		top10 += counts[i]
	}
	frac := float64(top10) / float64(len(data))
	if frac < 0.02 || frac > 0.10 {
		t.Errorf("top-10 mass = %v, paper reports ≈ 0.045", frac)
	}
	// Bimodality: a histogram over the body should have ≥ 2 well-separated
	// peaks.
	bins := make([]int, 30)
	for _, x := range data {
		i := int(x / 3.0 * float64(len(bins)))
		if i >= len(bins) {
			i = len(bins) - 1
		}
		bins[i]++
	}
	peaks := 0
	for i := 1; i < len(bins)-1; i++ {
		if bins[i] > bins[i-1] && bins[i] >= bins[i+1] && bins[i] > len(data)/100 {
			peaks++
		}
	}
	if peaks < 2 {
		t.Errorf("found %d peaks, want bimodal (≥2)", peaks)
	}
}

func TestDatasetRegistry(t *testing.T) {
	for _, name := range DatasetNames() {
		src, err := NewDataset(name, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if v := src.Next(); math.IsNaN(v) {
			t.Errorf("%s produced NaN", name)
		}
	}
	if _, err := NewDataset("nope", 1); err == nil {
		t.Error("unknown dataset should fail")
	}
	if !NeedsLogTransform(DatasetPareto) || !NeedsLogTransform(DatasetPower) {
		t.Error("pareto and power need the log transform")
	}
	if NeedsLogTransform(DatasetUniform) || NeedsLogTransform(DatasetNYT) {
		t.Error("uniform and nyt must not be transformed")
	}
}

func TestMergeWorkloads(t *testing.T) {
	for _, name := range MergeWorkloadNames() {
		src, err := NewMergeWorkload(name, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		Take(src, 100)
	}
	if _, err := NewMergeWorkload("nope", 1); err == nil {
		t.Error("unknown workload should fail")
	}
}

func TestKurtosisSweepOrdered(t *testing.T) {
	pts := NewKurtosisSweep(21, 50000)
	if len(pts) < 5 {
		t.Fatalf("sweep has %d points", len(pts))
	}
	prev := math.Inf(-1)
	for _, p := range pts {
		k := sampleKurtosis(p.Src, 50000)
		// Re-measured kurtosis may wobble for the heavy-tail points, but
		// the broad ordering must hold: each point within 3 units or
		// greater than the previous.
		if k < prev-5 && prev < 50 {
			t.Errorf("sweep not ordered: %s has kurtosis %v after %v", p.Name, k, prev)
		}
		if k > prev {
			prev = k
		}
	}
	// Endpoints: uniform first, pareto last.
	if pts[0].Name != "uniform" {
		t.Errorf("first sweep point = %s, want uniform", pts[0].Name)
	}
	if last := pts[len(pts)-1].Name; last != "pareto" && last != "nyt" {
		t.Errorf("last sweep point = %s, want a heavy tail", last)
	}
}

func TestSplitMix64(t *testing.T) {
	s := uint64(0)
	a := SplitMix64(&s)
	b := SplitMix64(&s)
	if a == b {
		t.Error("consecutive outputs equal")
	}
	s2 := uint64(0)
	if a2 := SplitMix64(&s2); a2 != a {
		t.Error("not deterministic")
	}
}

// Property: DeriveSeed(root, i) is deterministic and injective-ish over
// small i.
func TestQuickDeriveSeed(t *testing.T) {
	f := func(root uint64) bool {
		seen := map[uint64]bool{}
		for i := 0; i < 16; i++ {
			s := DeriveSeed(root, i)
			if s != DeriveSeed(root, i) {
				return false
			}
			if seen[s] {
				return false
			}
			seen[s] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFileSource(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/vals.txt"
	content := "# header comment\n1.5\n\n2.5\n3.5\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	src, err := NewFileSource(path)
	if err != nil {
		t.Fatal(err)
	}
	if src.Len() != 3 {
		t.Fatalf("Len = %d", src.Len())
	}
	want := []float64{1.5, 2.5, 3.5, 1.5} // cycles
	for i, w := range want {
		if got := src.Next(); got != w {
			t.Errorf("value %d = %v, want %v", i, got, w)
		}
	}
	// Registry integration.
	if _, err := NewDatasetOrFile("file:"+path, 1); err != nil {
		t.Errorf("file: prefix failed: %v", err)
	}
	if _, err := NewDatasetOrFile("pareto", 1); err != nil {
		t.Errorf("plain dataset failed: %v", err)
	}
	// Failure paths.
	if _, err := NewFileSource(dir + "/missing.txt"); err == nil {
		t.Error("missing file should fail")
	}
	bad := dir + "/bad.txt"
	os.WriteFile(bad, []byte("1.5\nnot-a-number\n"), 0o644)
	if _, err := NewFileSource(bad); err == nil {
		t.Error("bad line should fail")
	}
	empty := dir + "/empty.txt"
	os.WriteFile(empty, []byte("# nothing\n"), 0o644)
	if _, err := NewFileSource(empty); err == nil {
		t.Error("empty file should fail")
	}
}
