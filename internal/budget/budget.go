// Package budget implements the memory governor behind
// stream.Config.MemoryBudget: it tracks the live footprint of a set of
// sketches (sketch.FootprintOf: true live bytes where the sketch
// reports them, the paper's structural accounting otherwise) and, when
// the tracked total exceeds a configured byte budget, degrades the
// largest sketches in place (sketch.Degrader) until the total fits
// again or every sketch is exhausted.
//
// Degradation order is deterministic: strictly largest-footprint first,
// ties broken by ascending tracking ID. Enforcement happens only at the
// engine's deterministic safe points (batch boundaries, seal/fire
// barriers), so a budgeted run is a pure function of its configuration
// — the property every bit-identity test in this repository leans on.
//
// The governor is rung 1 of the engine's degradation ladder; rungs 2
// (sealed-pane coarsening) and 3 (shedding) live in internal/stream,
// which consults Outcome.Exhausted to climb.
package budget

import (
	"sort"

	"repro/internal/sketch"
)

// entry is one tracked sketch with its last-refreshed footprint.
type entry struct {
	id   int64
	sk   sketch.Sketch
	foot int
	// dead marks a sketch that refused to degrade (or freed nothing)
	// during the current Enforce call; cleared on the next call, since
	// a grown sketch may become degradable again.
	dead bool
}

// Governor tracks live sketches against a byte budget. A nil Governor
// is valid and inert: every method no-ops, so the unbudgeted hot path
// pays one branch. Governors are single-goroutine, like the sketches
// they track; the parallel engine gives each worker its own governor
// over its share of the budget.
type Governor struct {
	limit   int
	entries map[int64]*entry
	order   []*entry // Enforce scratch, reused across calls

	degradations int64 // cumulative successful Degrade calls
	highWater    int   // max post-Enforce usage ever observed
	interval     int   // adaptive enforcement cadence, see Interval
}

// BaseInterval is the densest enforcement cadence in processed events —
// the interval engines use while the budget is binding: frequent enough
// that the footprint between passes can only grow by a few hundred
// inserts' worth of buckets, rare enough to keep the governor off the
// per-event profile. While the tracked footprint stays at or below half
// the limit, Interval backs off exponentially (doubling per pass,
// capped at 64× base) so a slack budget costs next to nothing; it snaps
// back to BaseInterval the moment usage crosses half the limit.
const BaseInterval = 256

// Outcome reports one Enforce pass.
type Outcome struct {
	// Usage is the refreshed tracked footprint after any degradation.
	Usage int
	// Degradations counts the successful Degrade calls of this pass.
	Degradations int
	// Freed is the total bytes the pass reclaimed.
	Freed int
	// Exhausted is set when Usage still exceeds the budget but no
	// tracked sketch can shrink any further — the engine's cue to climb
	// to the next rung of the ladder (coarsen panes, then shed).
	Exhausted bool
}

// New returns a governor enforcing limit bytes, or nil (inert) when
// limit <= 0.
func New(limit int) *Governor {
	if limit <= 0 {
		return nil
	}
	return &Governor{limit: limit, entries: make(map[int64]*entry), interval: BaseInterval}
}

// Limit returns the configured byte budget (0 for a nil governor).
func (g *Governor) Limit() int {
	if g == nil {
		return 0
	}
	return g.limit
}

// Track registers sk under id, replacing any previous sketch with the
// same id. IDs are caller-assigned; the engine uses window·P+partition
// so the degradation order is reproducible.
func (g *Governor) Track(id int64, sk sketch.Sketch) {
	if g == nil || sk == nil {
		return
	}
	g.entries[id] = &entry{id: id, sk: sk, foot: sketch.FootprintOf(sk)}
}

// Untrack forgets id (a fired window, an evicted pane).
func (g *Governor) Untrack(id int64) {
	if g == nil {
		return
	}
	delete(g.entries, id)
}

// Tracked reports the number of tracked sketches.
func (g *Governor) Tracked() int {
	if g == nil {
		return 0
	}
	return len(g.entries)
}

// Degradations reports the cumulative successful Degrade calls.
func (g *Governor) Degradations() int64 {
	if g == nil {
		return 0
	}
	return g.degradations
}

// HighWater reports the maximum post-Enforce usage ever observed — the
// bound the budget property test asserts never exceeds the limit (for
// budgets above the degradation floor).
func (g *Governor) HighWater() int {
	if g == nil {
		return 0
	}
	return g.highWater
}

// Usage refreshes and sums the tracked footprints.
func (g *Governor) Usage() int {
	if g == nil {
		return 0
	}
	total := 0
	for _, e := range g.entries {
		e.foot = sketch.FootprintOf(e.sk)
		total += e.foot
	}
	return total
}

// Enforce refreshes the tracked footprints and, while the total exceeds
// the budget, degrades the largest degradable sketch (ties by ascending
// id). onDegrade, when non-nil, observes each successful step's id —
// the engine uses it to attribute degradations to windows. The pass
// ends when the total fits, or when every sketch is dead (refused or
// freed nothing), reported as Exhausted.
func (g *Governor) Enforce(onDegrade func(id int64)) Outcome {
	if g == nil {
		return Outcome{}
	}
	out := Outcome{Usage: g.Usage()}
	if out.Usage <= g.limit {
		g.note(out.Usage)
		return out
	}
	order := g.order[:0]
	for _, e := range g.entries {
		e.dead = false
		order = append(order, e)
	}
	g.order = order
	for out.Usage > g.limit {
		// Re-sort each step: a degraded sketch's footprint changed, and
		// the next-largest victim must be chosen against fresh sizes.
		sort.Slice(order, func(i, j int) bool {
			if order[i].foot != order[j].foot {
				return order[i].foot > order[j].foot
			}
			return order[i].id < order[j].id
		})
		victim := (*entry)(nil)
		for _, e := range order {
			if !e.dead {
				victim = e
				break
			}
		}
		if victim == nil {
			out.Exhausted = true
			break
		}
		d, ok := victim.sk.(sketch.Degrader)
		if !ok {
			victim.dead = true
			continue
		}
		freed, err := d.Degrade()
		if err != nil || freed <= 0 {
			victim.dead = true
			continue
		}
		victim.foot = sketch.FootprintOf(victim.sk)
		out.Usage -= freed
		out.Freed += freed
		out.Degradations++
		g.degradations++
		if onDegrade != nil {
			onDegrade(victim.id)
		}
	}
	g.note(out.Usage)
	return out
}

// Interval returns the current enforcement cadence in events: engines
// re-run Enforce after this many processed events. It adapts after
// every pass (see BaseInterval) and is a deterministic function of the
// enforcement history, so cadence backoff never breaks bit-identity.
// A nil governor reports an unreachable cadence.
func (g *Governor) Interval() int {
	if g == nil {
		return int(^uint(0) >> 1)
	}
	return g.interval
}

// note records the post-enforcement usage high-water mark and adapts
// the enforcement cadence to how close usage runs to the limit.
func (g *Governor) note(usage int) {
	if usage > g.highWater {
		g.highWater = usage
	}
	if usage <= g.limit/2 {
		if g.interval < BaseInterval<<6 {
			g.interval <<= 1
		}
	} else {
		g.interval = BaseInterval
	}
}
