package budget

import (
	"math/rand/v2"
	"testing"

	"repro/internal/kll"
	"repro/internal/moments"
	"repro/internal/sketch"
)

func fill(s sketch.Sketch, n int, seed uint64) {
	rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b9))
	for i := 0; i < n; i++ {
		s.Insert(rng.Float64() * 1000)
	}
}

// TestNilGovernor pins that a nil governor (no budget configured) is
// inert on every method — the unbudgeted hot path contract.
func TestNilGovernor(t *testing.T) {
	var g *Governor = New(0)
	if g != nil {
		t.Fatal("New(0) should return nil")
	}
	if New(-1) != nil {
		t.Fatal("New(-1) should return nil")
	}
	g.Track(1, kll.New(64))
	g.Untrack(1)
	if g.Usage() != 0 || g.Limit() != 0 || g.Tracked() != 0 ||
		g.Degradations() != 0 || g.HighWater() != 0 {
		t.Error("nil governor reported non-zero state")
	}
	if out := g.Enforce(nil); out != (Outcome{}) {
		t.Errorf("nil Enforce = %+v, want zero", out)
	}
}

// TestUnderBudgetNoop pins that Enforce never degrades when the tracked
// total already fits.
func TestUnderBudgetNoop(t *testing.T) {
	s := kll.NewWithSeed(128, 1)
	fill(s, 10000, 1)
	g := New(1 << 30)
	g.Track(1, s)
	out := g.Enforce(nil)
	if out.Degradations != 0 || out.Exhausted || out.Freed != 0 {
		t.Errorf("under-budget Enforce degraded: %+v", out)
	}
	if out.Usage != sketch.FootprintOf(s) {
		t.Errorf("usage %d, want %d", out.Usage, sketch.FootprintOf(s))
	}
	if g.HighWater() != out.Usage {
		t.Errorf("high water %d, want %d", g.HighWater(), out.Usage)
	}
}

// TestEnforceLargestFirst pins the deterministic victim order: the
// largest sketch degrades first, and a budget chosen between the two
// footprints leaves the smaller sketch untouched.
func TestEnforceLargestFirst(t *testing.T) {
	big := kll.NewWithSeed(256, 2)
	small := kll.NewWithSeed(32, 3)
	fill(big, 50000, 2)
	fill(small, 50000, 3)
	bigFoot, smallFoot := sketch.FootprintOf(big), sketch.FootprintOf(small)
	if bigFoot <= smallFoot {
		t.Fatalf("test setup: big %d not larger than small %d", bigFoot, smallFoot)
	}
	// A budget that only the big sketch violates on its own.
	g := New(bigFoot - 1 + smallFoot)
	g.Track(1, big)
	g.Track(2, small)
	var order []int64
	out := g.Enforce(func(id int64) { order = append(order, id) })
	if len(order) == 0 || order[0] != 1 {
		t.Fatalf("first victim %v, want sketch 1 (largest)", order)
	}
	if small.K() != 32 {
		t.Errorf("small sketch degraded (k=%d) while big could still shrink", small.K())
	}
	if out.Usage > g.Limit() {
		t.Errorf("post-enforce usage %d above limit %d", out.Usage, g.Limit())
	}
	if out.Exhausted {
		t.Error("exhausted with a reachable budget")
	}
}

// TestEnforceTieBreaksByID pins that equal footprints degrade in
// ascending-id order, making budgeted runs reproducible.
func TestEnforceTieBreaksByID(t *testing.T) {
	a := kll.NewWithSeed(128, 4)
	b := kll.NewWithSeed(128, 4)
	fill(a, 20000, 4)
	fill(b, 20000, 4) // same seed + data => identical footprint
	if sketch.FootprintOf(a) != sketch.FootprintOf(b) {
		t.Skip("identical builds diverged in footprint; tie unreachable")
	}
	g := New(sketch.FootprintOf(a) + sketch.FootprintOf(b) - 1)
	g.Track(7, a)
	g.Track(3, b)
	var first int64 = -1
	g.Enforce(func(id int64) {
		if first < 0 {
			first = id
		}
	})
	if first != 3 {
		t.Errorf("first victim id = %d, want 3 (lowest id wins ties)", first)
	}
}

// TestEnforceExhausted pins the ladder hand-off: when nothing tracked
// can shrink (moments is fixed-size), Enforce reports Exhausted instead
// of spinning or panicking.
func TestEnforceExhausted(t *testing.T) {
	m := moments.New(moments.DefaultK)
	fill(m, 1000, 5)
	g := New(1) // impossible budget
	g.Track(1, m)
	out := g.Enforce(nil)
	if !out.Exhausted {
		t.Fatal("want Exhausted with only a fixed-size sketch tracked")
	}
	if out.Degradations != 0 {
		t.Errorf("moments degraded %d times", out.Degradations)
	}
	// A degradable sketch also exhausts once it hits its floor.
	k := kll.NewWithSeed(64, 6)
	fill(k, 20000, 6)
	g2 := New(1)
	g2.Track(1, k)
	out2 := g2.Enforce(nil)
	if !out2.Exhausted {
		t.Fatal("want Exhausted after degrading KLL to its floor")
	}
	if out2.Degradations == 0 {
		t.Error("KLL should have degraded before exhausting")
	}
	if k.K() != 8 {
		t.Errorf("KLL left at k=%d, want floor 8", k.K())
	}
}

// TestUntrackReleases pins that untracked sketches stop counting toward
// usage and are never degraded.
func TestUntrackReleases(t *testing.T) {
	a := kll.NewWithSeed(128, 7)
	b := kll.NewWithSeed(128, 8)
	fill(a, 20000, 7)
	fill(b, 20000, 8)
	g := New(1 << 30)
	g.Track(1, a)
	g.Track(2, b)
	full := g.Usage()
	g.Untrack(1)
	if got := g.Usage(); got >= full {
		t.Errorf("usage %d did not drop from %d after Untrack", got, full)
	}
	if g.Tracked() != 1 {
		t.Errorf("tracked %d, want 1", g.Tracked())
	}
	// Now force enforcement: only b may degrade.
	g2 := New(1)
	g2.Track(1, a)
	g2.Untrack(1)
	g2.Track(2, b)
	g2.Enforce(func(id int64) {
		if id == 1 {
			t.Error("degraded an untracked sketch")
		}
	})
	if a.K() != 128 {
		t.Errorf("untracked sketch degraded to k=%d", a.K())
	}
}

// TestDegradationsAccumulate pins the cumulative counter across
// multiple Enforce passes as sketches regrow.
func TestDegradationsAccumulate(t *testing.T) {
	s := kll.NewWithSeed(256, 9)
	fill(s, 50000, 9)
	g := New(sketch.FootprintOf(s) / 2)
	g.Track(1, s)
	out1 := g.Enforce(nil)
	if out1.Degradations == 0 {
		t.Fatal("first pass did not degrade")
	}
	if g.Degradations() != int64(out1.Degradations) {
		t.Errorf("cumulative %d, want %d", g.Degradations(), out1.Degradations)
	}
	out2 := g.Enforce(nil)
	if want := int64(out1.Degradations + out2.Degradations); g.Degradations() != want {
		t.Errorf("cumulative %d after second pass, want %d", g.Degradations(), want)
	}
}
