package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// checkAtomicMix enforces the all-or-nothing discipline of sync/atomic:
// once any code path accesses a struct field through an atomic
// operation, every other read and write of that field races unless it
// is atomic too (or happens in the constructor, before the value is
// shared). This is the precondition for the concurrent shared-sketch
// work: a field that is "mostly atomic" is a data race waiting for the
// scheduler to expose it, and the race detector only catches the
// interleavings a test happens to produce. The pass is module-global —
// the atomic access and the plain access are usually in different
// functions, often different packages.
func checkAtomicMix(c *Checker) []Finding {
	// Pass 1: every field whose address is taken by a sync/atomic call.
	atomicAt := make(map[*types.Var]token.Pos) // field → first atomic access
	inAtomicCall := make(map[*ast.SelectorExpr]bool)
	for _, node := range c.sortedNodes() {
		pkg := node.pkg
		ast.Inspect(node.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isSyncAtomicCall(pkg, call) || len(call.Args) == 0 {
				return true
			}
			ue, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || ue.Op != token.AND {
				return true
			}
			sel, ok := ast.Unparen(ue.X).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			field := fieldObj(pkg, sel)
			if field == nil {
				return true
			}
			inAtomicCall[sel] = true
			if _, seen := atomicAt[field]; !seen {
				atomicAt[field] = sel.Pos()
			}
			return true
		})
	}
	if len(atomicAt) == 0 {
		return nil
	}
	// Pass 2: every other selector touching one of those fields is a
	// plain (racy) access, unless it sits in a constructor.
	var out []Finding
	for _, node := range c.sortedNodes() {
		if isConstructor(node.decl) {
			continue
		}
		pkg := node.pkg
		ast.Inspect(node.decl.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || inAtomicCall[sel] {
				return true
			}
			field := fieldObj(pkg, sel)
			if field == nil {
				return true
			}
			firstAt, isAtomic := atomicAt[field]
			if !isAtomic {
				return true
			}
			first := pkg.Fset.Position(firstAt)
			out = append(out, Finding{
				Pos:  pkg.Fset.Position(sel.Pos()),
				Rule: RuleAtomicMix,
				Msg: fmt.Sprintf("plain access to field %s, which is accessed via sync/atomic at %s:%d; mixing plain and atomic access races — use atomic ops everywhere outside the constructor",
					field.Name(), shortFile(first.Filename), first.Line),
			})
			return true
		})
	}
	return out
}

// isSyncAtomicCall reports whether call invokes a sync/atomic
// package-level function (AddInt64, LoadUint32, StorePointer, ...).
// Methods on the typed atomics (atomic.Int64 etc.) are safe by
// construction and need no tracking: the field cannot be touched
// plainly without copying the struct, which go vet already rejects.
func isSyncAtomicCall(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pkg.Info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == "sync/atomic"
}

// fieldObj resolves a selector to the struct field it denotes, or nil.
func fieldObj(pkg *Package, sel *ast.SelectorExpr) *types.Var {
	s, ok := pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, ok := s.Obj().(*types.Var)
	if !ok || !v.IsField() {
		return nil
	}
	return v
}

// isConstructor reports whether decl is allowed to touch
// atomically-accessed fields plainly: conventional constructors (New*,
// new*) and package init, where the value is not yet shared between
// goroutines.
func isConstructor(decl *ast.FuncDecl) bool {
	name := decl.Name.Name
	return strings.HasPrefix(name, "New") || strings.HasPrefix(name, "new") || name == "init"
}

// shortFile trims a filename to its last two path segments for
// messages.
func shortFile(name string) string {
	parts := strings.Split(name, "/")
	if len(parts) > 2 {
		parts = parts[len(parts)-2:]
	}
	return strings.Join(parts, "/")
}

// sortFindings orders findings by file, line, column.
func sortFindings(out []Finding) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
}
