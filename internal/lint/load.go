// Package lint implements sketchlint, a repo-specific static analyzer
// for the quantile-sketch codebase. It is built only on the standard
// library (go/parser, go/ast, go/types): packages are loaded from
// source, type-checked with a module-aware importer, and then walked by
// a fixed set of rules that encode this repository's correctness
// contracts (see rules.go).
//
// The analyzer exists because the experiment harness silently trusts
// the sketches: an unchecked Quantile error, an accidental float ==, or
// a nondeterministically seeded RNG skews every regenerated table
// without failing a single test. sketchlint turns those contracts into
// machine-checked build gates (scripts/verify.sh).
package lint

import (
	"bufio"
	"bytes"
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for rule checks.
type Package struct {
	// ImportPath is the full import path ("repro/internal/kll").
	ImportPath string
	// RelPath is the module-relative path ("internal/kll", "" for root).
	RelPath string
	// Dir is the absolute directory the package was loaded from.
	Dir string
	// Fset positions every AST node of the module.
	Fset *token.FileSet
	// Files holds the parsed non-test files.
	Files []*ast.File
	// Types is the type-checked package object (possibly incomplete if
	// TypeErrors is non-empty).
	Types *types.Package
	// Info carries the type-checker's expression facts.
	Info *types.Info
	// TypeErrors collects type-checking problems; rules still run
	// best-effort when it is non-empty.
	TypeErrors []error
}

// Loader parses and type-checks the packages of a single module from
// source. Imports within the module resolve recursively; everything
// else (the standard library) resolves through go/importer's source
// importer, so no compiled export data is needed.
type Loader struct {
	// Root is the absolute module root (the directory holding go.mod).
	Root string
	// ModulePath is the module's import-path prefix ("repro").
	ModulePath string

	fset     *token.FileSet
	pkgs     map[string]*Package // by import path
	loading  map[string]bool     // cycle detection
	fallback types.ImporterFrom
}

// NewLoader returns a Loader for the module rooted at dir, reading the
// module path from dir/go.mod.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := readModulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Root:       abs,
		ModulePath: modPath,
		fset:       fset,
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
		fallback:   importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
	}, nil
}

// readModulePath extracts the module path from a go.mod file.
func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: cannot read %s: %w", gomod, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			p := strings.TrimSpace(rest)
			p = strings.Trim(p, `"`)
			if p != "" {
				return p, nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module line in %s", gomod)
}

// LoadAll walks the module tree and loads every package it finds,
// returning them sorted by import path. Directories named testdata,
// hidden directories, and nested modules are skipped.
func (l *Loader) LoadAll() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.Root {
			if strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" {
				return filepath.SkipDir
			}
			// A nested go.mod starts a different module.
			if _, err := os.Stat(filepath.Join(path, "go.mod")); err == nil {
				return filepath.SkipDir
			}
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, dir := range dirs {
		pkg, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			out = append(out, pkg)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	return out, nil
}

// hasGoFiles reports whether dir directly contains at least one
// non-test .go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && isLintableFile(e.Name()) {
			return true
		}
	}
	return false
}

// isLintableFile reports whether name is a non-test Go source file.
func isLintableFile(name string) bool {
	return strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go")
}

// buildTagsSatisfied evaluates a file's //go:build line (if any)
// against the lint build configuration: the host GOOS/GOARCH plus the
// repository's `invariants` tag, so the build-tag-gated assertion hooks
// are linted and their mutually exclusive no-op stubs are skipped.
func buildTagsSatisfied(src []byte) bool {
	sc := bufio.NewScanner(bytes.NewReader(src))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(line, "package ") {
			break
		}
		if !constraint.IsGoBuild(line) {
			continue
		}
		expr, err := constraint.Parse(line)
		if err != nil {
			return true
		}
		return expr.Eval(func(tag string) bool {
			return tag == "invariants" || tag == runtime.GOOS || tag == runtime.GOARCH ||
				tag == "unix" || strings.HasPrefix(tag, "go1")
		})
	}
	return true
}

// LoadDir loads the package in a single directory (non-test files
// only). It returns nil if the directory holds no lintable files.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(l.Root, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("lint: %s is outside module root %s", dir, l.Root)
	}
	imp := l.ModulePath
	if rel != "." {
		imp = l.ModulePath + "/" + filepath.ToSlash(rel)
	}
	return l.load(imp)
}

// load type-checks the package with import path imp (which must lie
// inside the module), memoized.
func (l *Loader) load(imp string) (*Package, error) {
	if p, ok := l.pkgs[imp]; ok {
		return p, nil
	}
	if l.loading[imp] {
		return nil, fmt.Errorf("lint: import cycle through %s", imp)
	}
	l.loading[imp] = true
	defer delete(l.loading, imp)

	rel := strings.TrimPrefix(strings.TrimPrefix(imp, l.ModulePath), "/")
	dir := filepath.Join(l.Root, filepath.FromSlash(rel))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !isLintableFile(e.Name()) {
			continue
		}
		name := filepath.Join(dir, e.Name())
		src, err := os.ReadFile(name)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		if !buildTagsSatisfied(src) {
			continue
		}
		f, err := parser.ParseFile(l.fset, name, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}

	pkg := &Package{
		ImportPath: imp,
		RelPath:    strings.TrimPrefix(strings.TrimPrefix(imp, l.ModulePath), "/"),
		Dir:        dir,
		Fset:       l.fset,
		Files:      files,
		Info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Uses:       make(map[*ast.Ident]types.Object),
			Defs:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		},
	}
	conf := types.Config{
		Importer: (*moduleImporter)(l),
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tp, err := conf.Check(imp, l.fset, files, pkg.Info)
	if err != nil && tp == nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", imp, err)
	}
	pkg.Types = tp
	l.pkgs[imp] = pkg
	return pkg, nil
}

// moduleImporter resolves module-internal imports from source through
// the Loader and delegates everything else to the stdlib source
// importer.
type moduleImporter Loader

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	return m.ImportFrom(path, "", 0)
}

func (m *moduleImporter) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	l := (*Loader)(m)
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("lint: no Go files in %s", path)
		}
		return pkg.Types, nil
	}
	return m.fallback.ImportFrom(path, srcDir, mode)
}
