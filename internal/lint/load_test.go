package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module under t.TempDir and returns
// its root. files maps module-relative paths to contents; a go.mod is
// added automatically.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	files["go.mod"] = "module broken\n\ngo 1.22\n"
	for rel, src := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// TestLoadUnparseableFile checks that a syntax error surfaces as a load
// error naming the broken file rather than a silent skip: a file the
// linter cannot read is a file the linter cannot vouch for.
func TestLoadUnparseableFile(t *testing.T) {
	root := writeModule(t, map[string]string{
		"internal/bad/bad.go": "package bad\n\nfunc Broken( {\n",
	})
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.LoadAll(); err == nil {
		t.Fatal("LoadAll succeeded on an unparseable file; want a syntax error")
	} else if !strings.Contains(err.Error(), "bad.go") {
		t.Fatalf("error does not name the broken file: %v", err)
	}
}

// TestLoadMissingGoMod checks the loader refuses roots that are not a
// module.
func TestLoadMissingGoMod(t *testing.T) {
	if _, err := NewLoader(t.TempDir()); err == nil {
		t.Fatal("NewLoader succeeded without a go.mod; want an error")
	}
}

// TestValidateRulesUnknown checks the CLI-facing rule parser rejects
// unknown names instead of silently filtering every finding.
func TestValidateRulesUnknown(t *testing.T) {
	if _, err := ValidateRules("purity,definitely-not-a-rule"); err == nil {
		t.Fatal("ValidateRules accepted an unknown rule name")
	} else if !strings.Contains(err.Error(), "definitely-not-a-rule") {
		t.Fatalf("error does not name the unknown rule: %v", err)
	}
	got, err := ValidateRules(" purity , atomic-mix ")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != RulePurity || got[1] != RuleAtomicMix {
		t.Fatalf("ValidateRules = %v, want [purity atomic-mix]", got)
	}
	if got, err := ValidateRules(""); err != nil || got != nil {
		t.Fatalf("ValidateRules(\"\") = %v, %v; want nil, nil", got, err)
	}
}

// TestCheckerRejectsDeadConfig checks NewChecker fails when a config
// entry matches nothing in the module: a dead scope silently disables
// a gate.
func TestCheckerRejectsDeadConfig(t *testing.T) {
	root := writeModule(t, map[string]string{
		"internal/ok/ok.go": "package ok\n\n// F does nothing.\nfunc F() {}\n",
	})
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"scope", Config{GlobalRandScopes: []string{"internal/nonexistent"}}, "scope internal/nonexistent"},
		{"recover scope", Config{RecoverScopes: []string{"internal/gone"}}, "scope internal/gone"},
		{"sketch package", Config{SketchPackages: []string{"internal/nosuchsketch"}}, "sketch package internal/nosuchsketch"},
		{"allow file", Config{FloatEqAllowFiles: []string{"internal/ok/missing.go"}}, "file internal/ok/missing.go"},
		{"purity root func", Config{PurityRootFuncs: []string{"internal/ok.Missing"}}, "purity root func internal/ok.Missing"},
		{"purity root method", Config{PurityRootMethods: []string{"MarshalBinary"}}, "purity root method MarshalBinary"},
	}
	for _, tc := range cases {
		_, err := NewChecker(pkgs, tc.cfg)
		if err == nil {
			t.Errorf("%s: NewChecker accepted dead config entry", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	// The empty config matches trivially and must pass.
	if _, err := NewChecker(pkgs, Config{}); err != nil {
		t.Errorf("NewChecker rejected an empty config: %v", err)
	}
}
