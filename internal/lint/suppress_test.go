package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parsePkg parses src as a single-file package for directive tests; no
// type information is needed.
func parsePkg(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	return &Package{Fset: fset, Files: []*ast.File{f}}
}

// TestParseDirectivesMalformed covers the malformed shapes: a bare
// directive, a directive missing its reason, an unknown rule, and an
// attempt to suppress unused-suppression itself. All must surface as
// bad directives that suppress nothing.
func TestParseDirectivesMalformed(t *testing.T) {
	src := `package fix

//lint:ignore
func A() {}

//lint:ignore purity
func B() {}

//lint:ignore purity,bogus reason text
func C() {}

//lint:ignore unused-suppression trying to silence the auditor
func D() {}

//lint:ignore purity,atomic-mix both rules share one excuse
func E() {}
`
	ds := parseDirectives(parsePkg(t, src))
	if len(ds) != 5 {
		t.Fatalf("parsed %d directives, want 5", len(ds))
	}
	for i, wantBad := range []string{
		"malformed",
		"needs both a rule and a reason",
		`unknown rule "bogus"`,
		"cannot itself be suppressed",
		"",
	} {
		if wantBad == "" {
			if ds[i].bad != "" {
				t.Errorf("directive %d unexpectedly bad: %s", i, ds[i].bad)
			}
			continue
		}
		if !strings.Contains(ds[i].bad, wantBad) {
			t.Errorf("directive %d: bad = %q, want mention of %q", i, ds[i].bad, wantBad)
		}
	}
	// The multi-rule directive parses both rule names.
	if got := strings.Join(ds[4].rules, ","); got != "purity,atomic-mix" {
		t.Errorf("multi-rule directive parsed rules %q", got)
	}
}

// TestApplySuppressionsLines checks the placement contract: a directive
// suppresses findings on its own line and the line below, nothing else,
// and every bad or unused directive becomes an unused-suppression
// finding.
func TestApplySuppressionsLines(t *testing.T) {
	src := `package fix

//lint:ignore purity excused on the next line
func A() {}

//lint:ignore purity excused two lines down, out of range
//
func B() {}
`
	pkg := parsePkg(t, src)
	ds := parseDirectives(pkg)
	if len(ds) != 2 {
		t.Fatalf("parsed %d directives, want 2", len(ds))
	}
	findings := []Finding{
		{Pos: token.Position{Filename: "fix.go", Line: 4}, Rule: RulePurity, Msg: "next-line finding"},
		{Pos: token.Position{Filename: "fix.go", Line: 8}, Rule: RulePurity, Msg: "too far away"},
	}
	kept := applySuppressions(findings, ds)
	var rules []string
	for _, f := range kept {
		rules = append(rules, f.Rule)
	}
	// The line-4 finding is suppressed; the line-8 finding survives; the
	// second directive (line 6, covering lines 6-7 only) is unused.
	if len(kept) != 2 {
		t.Fatalf("kept %d findings (%v), want 2", len(kept), rules)
	}
	if kept[0].Rule != RulePurity || kept[0].Pos.Line != 8 {
		t.Errorf("surviving finding = %+v, want the line-8 purity finding", kept[0])
	}
	if kept[1].Rule != RuleUnusedSuppression || kept[1].Pos.Line != 6 {
		t.Errorf("unused directive finding = %+v, want unused-suppression at line 6", kept[1])
	}
}
