package lint

import (
	"fmt"
	"go/token"
	"strings"
)

// ignorePrefix introduces a suppression directive:
//
//	//lint:ignore <rule>[,<rule>...] <reason>
//
// placed either at the end of the flagged line or alone on the line
// immediately above it. The reason is mandatory — a suppression is a
// reviewed, explained exception, not an off switch. Directives that
// suppress nothing are themselves findings (unused-suppression), so
// stale exceptions cannot linger after the code they excused changes.
const ignorePrefix = "lint:ignore "

// directive is one parsed //lint:ignore comment.
type directive struct {
	pos    token.Position
	rules  []string
	reason string
	// bad holds a diagnostic for a malformed directive; such directives
	// suppress nothing.
	bad string
	// used counts how many findings the directive suppressed.
	used int
}

// parseDirectives extracts every suppression directive from pkg's
// files.
func parseDirectives(pkg *Package) []*directive {
	var out []*directive
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, cm := range cg.List {
				text, ok := strings.CutPrefix(cm.Text, "//")
				if !ok {
					continue // /* */ comments cannot carry directives
				}
				body, ok := strings.CutPrefix(strings.TrimSpace(text), ignorePrefix)
				if !ok {
					if strings.HasPrefix(strings.TrimSpace(text), "lint:ignore") {
						out = append(out, &directive{
							pos: pkg.Fset.Position(cm.Pos()),
							bad: "malformed //lint:ignore directive: want //lint:ignore <rule> <reason>",
						})
					}
					continue
				}
				d := &directive{pos: pkg.Fset.Position(cm.Pos())}
				fields := strings.Fields(body)
				if len(fields) < 2 {
					d.bad = "suppression needs both a rule and a reason: //lint:ignore <rule> <reason>"
					out = append(out, d)
					continue
				}
				d.rules = strings.Split(fields[0], ",")
				d.reason = strings.Join(fields[1:], " ")
				for _, r := range d.rules {
					if !KnownRule(r) {
						d.bad = fmt.Sprintf("suppression names unknown rule %q (known: %s)", r, strings.Join(Rules(), ", "))
						break
					}
					if r == RuleUnusedSuppression {
						d.bad = "unused-suppression cannot itself be suppressed"
						break
					}
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// applySuppressions removes findings covered by a well-formed directive
// on the same or the immediately preceding line, then reports malformed
// and unused directives as findings of their own.
func applySuppressions(findings []Finding, directives []*directive) []Finding {
	type key struct {
		file string
		line int
		rule string
	}
	index := make(map[key][]*directive)
	for _, d := range directives {
		if d.bad != "" {
			continue
		}
		for _, r := range d.rules {
			index[key{d.pos.Filename, d.pos.Line, r}] = append(index[key{d.pos.Filename, d.pos.Line, r}], d)
			index[key{d.pos.Filename, d.pos.Line + 1, r}] = append(index[key{d.pos.Filename, d.pos.Line + 1, r}], d)
		}
	}
	kept := findings[:0]
	for _, f := range findings {
		ds := index[key{f.Pos.Filename, f.Pos.Line, f.Rule}]
		if len(ds) == 0 {
			kept = append(kept, f)
			continue
		}
		for _, d := range ds {
			d.used++
		}
	}
	for _, d := range directives {
		switch {
		case d.bad != "":
			kept = append(kept, Finding{Pos: d.pos, Rule: RuleUnusedSuppression, Msg: d.bad})
		case d.used == 0:
			kept = append(kept, Finding{
				Pos:  d.pos,
				Rule: RuleUnusedSuppression,
				Msg: fmt.Sprintf("//lint:ignore %s suppresses nothing; the excused finding is gone — delete the directive (reason was: %s)",
					strings.Join(d.rules, ","), d.reason),
			})
		}
	}
	return kept
}
