package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// Rule names, used in findings, suppression directives, and for
// enabling/disabling on the CLI.
const (
	// RuleUncheckedErr flags discarded errors from the sketch contract
	// methods (Quantile, Rank, Merge, UnmarshalBinary).
	RuleUncheckedErr = "unchecked-err"
	// RuleFloatEq flags == / != between non-constant float operands.
	RuleFloatEq = "float-eq"
	// RuleGlobalRand flags the global math/rand source inside internal/.
	RuleGlobalRand = "global-rand"
	// RulePanic flags panic in sketch packages outside invariant files
	// and functions that do not document the panic.
	RulePanic = "panic"
	// RuleContainerHeap flags container/heap imports in the stream
	// engine packages.
	RuleContainerHeap = "container-heap"
	// RuleQuantileLoop flags loops that query a sketch one quantile at a
	// time where a batched Quantiles/QuantileAll call applies.
	RuleQuantileLoop = "quantile-loop"
	// RuleNakedPanic flags undocumented panic calls in the fault-tolerant
	// scopes (stream engine, checkpoint layer).
	RuleNakedPanic = "naked-panic"
	// RulePurity flags nondeterminism (wall clock, global RNG,
	// order-leaking map iteration) reachable from serialization roots.
	RulePurity = "purity"
	// RuleAtomicMix flags plain accesses to fields that are accessed via
	// sync/atomic elsewhere.
	RuleAtomicMix = "atomic-mix"
	// RuleRecoverSwallow flags recover() calls whose value is discarded
	// instead of being converted to an error.
	RuleRecoverSwallow = "recover-swallow"
	// RuleHotpathAlloc flags allocation patterns (interface boxing,
	// capturing closures, zero-capacity appends in loops) inside
	// functions annotated //sketch:hotpath.
	RuleHotpathAlloc = "hotpath-alloc"
	// RuleUnusedSuppression flags //lint:ignore directives that are
	// malformed or no longer suppress anything.
	RuleUnusedSuppression = "unused-suppression"
)

// ruleInfo is one registered rule: its name, a one-line doc string, and
// exactly one pass — per-package (pkgPass) for local rules, or
// whole-module (modPass) for rules that need the call graph or
// cross-package facts. Registration, Rules(), KnownRule and dispatch
// all read this single table, so adding a rule is one entry here plus
// its pass function.
type ruleInfo struct {
	name    string
	doc     string
	pkgPass func(c *Checker, pkg *Package) []Finding
	modPass func(c *Checker) []Finding
}

// ruleTable registers every rule, in reporting order.
var ruleTable = []ruleInfo{
	{RuleUncheckedErr, "errors from sketch contract methods must not be discarded", checkUncheckedErr, nil},
	{RuleFloatEq, "no == / != between non-constant floats", checkFloatEq, nil},
	{RuleGlobalRand, "seeded generators only; never the process-global math/rand", checkGlobalRand, nil},
	{RulePanic, "sketch packages panic only in invariant files or documented guards", checkPanic, nil},
	{RuleContainerHeap, "stream engine uses the generic non-boxing heap, not container/heap", checkContainerHeap, nil},
	{RuleQuantileLoop, "batch quantile targets through Quantiles/QuantileAll, not per-q loops", checkQuantileLoop, nil},
	{RuleNakedPanic, "fault-tolerant scopes turn failures into errors, not panics", checkNakedPanic, nil},
	{RulePurity, "encode paths must be pure: no clock, no global RNG, no map-order leaks", nil, checkPurity},
	{RuleAtomicMix, "a field accessed via sync/atomic is never accessed plainly outside its constructor", nil, checkAtomicMix},
	{RuleRecoverSwallow, "recover() values become errors; never discarded", checkRecoverSwallow, nil},
	{RuleHotpathAlloc, "//sketch:hotpath functions avoid boxing, capturing closures, zero-cap appends", checkHotpathAlloc, nil},
	{RuleUnusedSuppression, "//lint:ignore directives must be well-formed and still suppress something", nil, nil},
}

// Rules lists every rule name, in reporting order.
func Rules() []string {
	out := make([]string, len(ruleTable))
	for i, r := range ruleTable {
		out[i] = r.name
	}
	return out
}

// RuleDocs returns a name → one-line description map for usage output.
func RuleDocs() map[string]string {
	out := make(map[string]string, len(ruleTable))
	for _, r := range ruleTable {
		out[r.name] = r.doc
	}
	return out
}

// KnownRule reports whether name is a recognized rule.
func KnownRule(name string) bool {
	for _, r := range ruleTable {
		if r.name == name {
			return true
		}
	}
	return false
}

// ValidateRules parses a comma-separated rule list (as given to the
// CLI's -rules flag) and rejects unknown names: a typo'd rule must not
// silently filter every finding and report a clean tree.
func ValidateRules(spec string) ([]string, error) {
	if spec == "" {
		return nil, nil
	}
	var out []string
	for _, r := range strings.Split(spec, ",") {
		r = strings.TrimSpace(r)
		if !KnownRule(r) {
			return nil, fmt.Errorf("unknown rule %q (known: %s)", r, strings.Join(Rules(), ", "))
		}
		out = append(out, r)
	}
	return out, nil
}

// Finding is one rule violation at a source position.
type Finding struct {
	Pos  token.Position
	Rule string
	Msg  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Rule, f.Msg)
}

// Config tunes the rules to a repository layout.
type Config struct {
	// CheckedMethods are the method names whose error results must not
	// be discarded in non-test code.
	CheckedMethods []string
	// SketchPackages are module-relative package paths subject to the
	// panic rule.
	SketchPackages []string
	// GlobalRandScopes are module-relative path prefixes under which
	// the global-rand rule applies.
	GlobalRandScopes []string
	// FloatEqAllowFiles are module-relative file paths exempt from the
	// float-eq rule (for deliberate, documented exact comparisons).
	FloatEqAllowFiles []string
	// ContainerHeapScopes are module-relative path prefixes under which
	// importing container/heap is forbidden.
	ContainerHeapScopes []string
	// QuantileLoopAllowFiles are module-relative file paths exempt from
	// the quantile-loop rule (the generic per-q fallback itself).
	QuantileLoopAllowFiles []string
	// NoPanicScopes are module-relative path prefixes where naked panic
	// calls are forbidden (the fault-tolerant engine and checkpoint
	// layers, where a stray panic defeats containment and recovery).
	NoPanicScopes []string
	// RecoverScopes are module-relative path prefixes where the
	// recover-swallow rule applies.
	RecoverScopes []string
	// PurityRootMethods are method names that root the purity walk
	// wherever they are declared (the serialization entry points).
	PurityRootMethods []string
	// PurityRootFuncs are "relpath.Name" entries rooting the purity walk
	// at specific functions (checkpoint/snapshot encoders).
	PurityRootFuncs []string
}

// DefaultConfig returns the configuration used for this repository.
func DefaultConfig() Config {
	return Config{
		CheckedMethods: []string{"Quantile", "Rank", "Merge", "UnmarshalBinary"},
		SketchPackages: []string{
			"internal/sketch",
			"internal/kll",
			"internal/kllpm",
			"internal/req",
			"internal/gk",
			"internal/ddsketch",
			"internal/uddsketch",
			"internal/moments",
			"internal/maxent",
			"internal/tdigest",
			"internal/hdr",
			"internal/mrl",
			"internal/dcs",
		},
		GlobalRandScopes:    []string{"internal"},
		FloatEqAllowFiles:   nil,
		ContainerHeapScopes: []string{"internal/stream"},
		// sketch.Quantiles itself hosts the per-q fallback loop for
		// sketches without a batch kernel.
		QuantileLoopAllowFiles: []string{"internal/sketch/sketch.go"},
		// The crash-recovery contract: engine and checkpoint code turns
		// failures into errors (or documents the panic as a programming-
		// error guard); an undocumented panic escapes the recovery layer.
		NoPanicScopes: []string{"internal/stream", "internal/checkpoint"},
		// Anywhere a panic is caught, its value must travel onward as an
		// error (the *PanicError discipline).
		RecoverScopes: []string{"internal", "cmd"},
		// Every sketch serializer, plus the engine-state encoders the
		// crash-recovery bit-identity proofs depend on.
		PurityRootMethods: []string{"MarshalBinary"},
		PurityRootFuncs: []string{
			"internal/checkpoint.EncodeSnapshot",
			"internal/stream.snapshot",
		},
	}
}

// Run executes every registered rule over the checker's module, applies
// the //lint:ignore suppressions, reports malformed or unused
// directives, and returns the surviving findings sorted by position.
func (c *Checker) Run() []Finding {
	var out []Finding
	for _, r := range ruleTable {
		if r.modPass != nil {
			out = append(out, r.modPass(c)...)
		}
		if r.pkgPass == nil {
			continue
		}
		for _, pkg := range c.Pkgs {
			out = append(out, r.pkgPass(c, pkg)...)
		}
	}
	var directives []*directive
	for _, pkg := range c.Pkgs {
		directives = append(directives, parseDirectives(pkg)...)
	}
	out = applySuppressions(out, directives)
	sortFindings(out)
	return out
}

// CheckAll loads every package under root and runs the full rule suite.
func CheckAll(root string, cfg Config) ([]Finding, error) {
	l, err := NewLoader(root)
	if err != nil {
		return nil, err
	}
	pkgs, err := l.LoadAll()
	if err != nil {
		return nil, err
	}
	c, err := NewChecker(pkgs, cfg)
	if err != nil {
		return nil, err
	}
	return c.Run(), nil
}

// errorType is the universe error interface.
var errorType = types.Universe.Lookup("error").Type()

// errResultIndex reports which result of a call is the error, or -1 if
// the call returns no error.
func errResultIndex(pkg *Package, call *ast.CallExpr) int {
	tv, ok := pkg.Info.Types[call]
	if !ok || tv.Type == nil {
		return -1
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if types.Identical(t.At(i).Type(), errorType) {
				return i
			}
		}
	default:
		if types.Identical(t, errorType) {
			return 0
		}
	}
	return -1
}

// checkedCall returns the method name if call is a selector call to one
// of the contract methods that returns an error.
func checkedCall(pkg *Package, cfg Config, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	found := false
	for _, m := range cfg.CheckedMethods {
		if m == name {
			found = true
			break
		}
	}
	if !found {
		return "", false
	}
	// Only method calls count: a selector into a package (rand.Merge)
	// is not a sketch contract call.
	if id, ok := sel.X.(*ast.Ident); ok {
		if _, isPkg := pkg.Info.Uses[id].(*types.PkgName); isPkg {
			return "", false
		}
	}
	if errResultIndex(pkg, call) < 0 {
		return "", false
	}
	return name, true
}

// checkUncheckedErr flags contract-method calls whose error result is
// discarded: expression statements, go/defer statements, and blank
// assignments.
func checkUncheckedErr(c *Checker, pkg *Package) []Finding {
	cfg := c.Cfg
	var out []Finding
	flag := func(call *ast.CallExpr, name string) {
		out = append(out, Finding{
			Pos:  pkg.Fset.Position(call.Pos()),
			Rule: RuleUncheckedErr,
			Msg:  fmt.Sprintf("error returned by %s is discarded; handle it or assign it to a named variable", name),
		})
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				if call, ok := st.X.(*ast.CallExpr); ok {
					if name, ok := checkedCall(pkg, cfg, call); ok {
						flag(call, name)
					}
				}
			case *ast.GoStmt:
				if name, ok := checkedCall(pkg, cfg, st.Call); ok {
					flag(st.Call, name)
				}
			case *ast.DeferStmt:
				if name, ok := checkedCall(pkg, cfg, st.Call); ok {
					flag(st.Call, name)
				}
			case *ast.AssignStmt:
				out = append(out, checkAssignedBlank(pkg, cfg, st)...)
			}
			return true
		})
	}
	return out
}

// checkAssignedBlank flags assignments that bind a contract method's
// error result to the blank identifier.
func checkAssignedBlank(pkg *Package, cfg Config, st *ast.AssignStmt) []Finding {
	var out []Finding
	flagIfBlank := func(lhs ast.Expr, call *ast.CallExpr, name string) {
		if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
			out = append(out, Finding{
				Pos:  pkg.Fset.Position(call.Pos()),
				Rule: RuleUncheckedErr,
				Msg:  fmt.Sprintf("error returned by %s is assigned to _; handle it instead", name),
			})
		}
	}
	if len(st.Rhs) == 1 {
		if call, ok := st.Rhs[0].(*ast.CallExpr); ok {
			name, isChecked := checkedCall(pkg, cfg, call)
			if !isChecked {
				return nil
			}
			idx := errResultIndex(pkg, call)
			if idx >= 0 && idx < len(st.Lhs) {
				flagIfBlank(st.Lhs[idx], call, name)
			}
			return out
		}
	}
	// Parallel assignment: a, b = f(), g() — each RHS yields one value.
	if len(st.Rhs) == len(st.Lhs) {
		for i, rhs := range st.Rhs {
			if call, ok := rhs.(*ast.CallExpr); ok {
				if name, isChecked := checkedCall(pkg, cfg, call); isChecked {
					flagIfBlank(st.Lhs[i], call, name)
				}
			}
		}
	}
	return out
}

// isFloatOperand reports whether e has (non-constant) floating-point
// type. Constant operands are the rule's allowlist: comparisons against
// literals like q == 1 or scale == 1.0 are deliberate sentinels.
func isFloatOperand(pkg *Package, e ast.Expr) (isFloat, isConst bool) {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false, false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsFloat == 0 {
		return false, false
	}
	return true, tv.Value != nil
}

// checkFloatEq flags == and != where both operands are non-constant
// floats. Exact float equality is almost never what a rank or merge
// comparison wants; the fix is math.Abs(a-b) < eps for tolerances,
// math.Float64bits for exact-representation identity, or math.IsNaN.
func checkFloatEq(c *Checker, pkg *Package) []Finding {
	cfg := c.Cfg
	allow := make(map[string]bool, len(cfg.FloatEqAllowFiles))
	for _, f := range cfg.FloatEqAllowFiles {
		allow[f] = true
	}
	var out []Finding
	for _, f := range pkg.Files {
		base := filepath.Base(pkg.Fset.Position(f.Pos()).Filename)
		rel := base
		if pkg.RelPath != "" {
			rel = pkg.RelPath + "/" + base
		}
		if allow[rel] {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			xf, xc := isFloatOperand(pkg, be.X)
			yf, yc := isFloatOperand(pkg, be.Y)
			if xf && yf && !xc && !yc {
				out = append(out, Finding{
					Pos:  pkg.Fset.Position(be.OpPos),
					Rule: RuleFloatEq,
					Msg:  "direct float equality; use math.Abs(a-b) < eps, math.Float64bits for exact identity, or math.IsNaN",
				})
			}
			return true
		})
	}
	return out
}

// globalRandAllowed are math/rand selectors that do not touch the
// package-global generator: constructors and type names.
var globalRandAllowed = map[string]bool{
	"New": true, "NewPCG": true, "NewChaCha8": true, "NewSource": true,
	"NewZipf": true, "Rand": true, "Source": true, "Zipf": true,
	"PCG": true, "ChaCha8": true,
}

// checkGlobalRand flags uses of the global math/rand generator inside
// the configured scopes. Experiments must be reproducible from an
// explicit seed, so internal packages go through a seeded *rand.Rand
// (internal/datagen.NewRand / SplitMix64), never the process-global
// source.
func checkGlobalRand(c *Checker, pkg *Package) []Finding {
	if !inScopes(pkg.RelPath, c.Cfg.GlobalRandScopes) {
		return nil
	}
	var out []Finding
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pkg.Info.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			p := pn.Imported().Path()
			if p != "math/rand" && p != "math/rand/v2" {
				return true
			}
			if globalRandAllowed[sel.Sel.Name] {
				return true
			}
			out = append(out, Finding{
				Pos:  pkg.Fset.Position(sel.Pos()),
				Rule: RuleGlobalRand,
				Msg: fmt.Sprintf("%s.%s uses the process-global generator; use a seeded *rand.Rand (internal/datagen.NewRand) for reproducibility",
					pn.Imported().Name(), sel.Sel.Name),
			})
			return true
		})
	}
	return out
}

// checkContainerHeap flags container/heap imports inside the configured
// scopes. The stream engines sit on the per-event hot path, where the
// interface-boxed heap.Interface costs two allocations per event and an
// indirect call per sift comparison; those packages must use the
// non-boxing generic minHeap instead.
func checkContainerHeap(c *Checker, pkg *Package) []Finding {
	if !inScopes(pkg.RelPath, c.Cfg.ContainerHeapScopes) {
		return nil
	}
	var out []Finding
	for _, f := range pkg.Files {
		for _, imp := range f.Imports {
			if strings.Trim(imp.Path.Value, `"`) != "container/heap" {
				continue
			}
			out = append(out, Finding{
				Pos:  pkg.Fset.Position(imp.Pos()),
				Rule: RuleContainerHeap,
				Msg:  "container/heap boxes every element and dispatches sifts through an interface; use the package's generic minHeap on the stream hot path",
			})
		}
	}
	return out
}

// checkQuantileLoop flags loops that evaluate a sketch one quantile at
// a time: a range statement whose loop variable is passed to a Quantile
// method returning an error. Every study sketch answers a whole target
// set in one pass over its state via sketch.Quantiles / QuantileAll;
// a per-q loop rebuilds the CDF snapshot (or re-solves max-entropy)
// once per target. Errorless Quantile helpers (exact reference values)
// are exempt, as are the files in QuantileLoopAllowFiles.
func checkQuantileLoop(c *Checker, pkg *Package) []Finding {
	cfg := c.Cfg
	allow := make(map[string]bool, len(cfg.QuantileLoopAllowFiles))
	for _, f := range cfg.QuantileLoopAllowFiles {
		allow[f] = true
	}
	var out []Finding
	for _, f := range pkg.Files {
		base := filepath.Base(pkg.Fset.Position(f.Pos()).Filename)
		rel := base
		if pkg.RelPath != "" {
			rel = pkg.RelPath + "/" + base
		}
		if allow[rel] {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			loopVars := rangeVarObjs(pkg, rs)
			if len(loopVars) == 0 {
				return true
			}
			ast.Inspect(rs.Body, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok || len(call.Args) != 1 {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Quantile" {
					return true
				}
				if id, ok := sel.X.(*ast.Ident); ok {
					if _, isPkg := pkg.Info.Uses[id].(*types.PkgName); isPkg {
						return true
					}
				}
				arg, ok := call.Args[0].(*ast.Ident)
				if !ok || !loopVars[pkg.Info.Uses[arg]] {
					return true
				}
				if errResultIndex(pkg, call) < 0 {
					return true
				}
				out = append(out, Finding{
					Pos:  pkg.Fset.Position(call.Pos()),
					Rule: RuleQuantileLoop,
					Msg:  "sketch queried one quantile per iteration; batch the targets through sketch.Quantiles / QuantileAll (one pass over the sketch state)",
				})
				return true
			})
			return true
		})
	}
	return out
}

// rangeVarObjs collects the objects bound to a range statement's key and
// value positions (either := definitions or = reuses).
func rangeVarObjs(pkg *Package, rs *ast.RangeStmt) map[types.Object]bool {
	vars := make(map[types.Object]bool, 2)
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		if obj := pkg.Info.Defs[id]; obj != nil {
			vars[obj] = true
		} else if obj := pkg.Info.Uses[id]; obj != nil {
			vars[obj] = true
		}
	}
	return vars
}

// checkNakedPanic flags panic calls inside the fault-tolerant scopes
// (stream engine, checkpoint layer). A panic there either deadlocks a
// barrier or surfaces as a spurious "crash" the recovery machinery then
// masks, so failures must travel as errors. The one allowed escape is a
// function whose doc comment documents the panic as a deliberate
// programming-error guard. Test files are never loaded, so injected-
// fault panics in tests are out of scope by construction.
func checkNakedPanic(c *Checker, pkg *Package) []Finding {
	if !inScopes(pkg.RelPath, c.Cfg.NoPanicScopes) {
		return nil
	}
	var out []Finding
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if fn.Doc != nil && strings.Contains(strings.ToLower(fn.Doc.Text()), "panic") {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok || id.Name != "panic" {
					return true
				}
				if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); !isBuiltin {
					return true
				}
				out = append(out, Finding{
					Pos:  pkg.Fset.Position(call.Pos()),
					Rule: RuleNakedPanic,
					Msg:  fmt.Sprintf("naked panic in fault-tolerant scope (func %s): return an error so crash recovery can contain the failure, or document the panic in the doc comment", fn.Name.Name),
				})
				return true
			})
		}
	}
	return out
}

// checkPanic flags panic calls in sketch packages. Allowed escapes:
// files whose name contains "invariant" (the build-tag-gated assertion
// hooks), and functions whose doc comment documents the panic.
func checkPanic(c *Checker, pkg *Package) []Finding {
	isSketchPkg := false
	for _, p := range c.Cfg.SketchPackages {
		if pkg.RelPath == p {
			isSketchPkg = true
			break
		}
	}
	if !isSketchPkg {
		return nil
	}
	var out []Finding
	for _, f := range pkg.Files {
		base := filepath.Base(pkg.Fset.Position(f.Pos()).Filename)
		if strings.Contains(base, "invariant") {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if fn.Doc != nil && strings.Contains(strings.ToLower(fn.Doc.Text()), "panic") {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok || id.Name != "panic" {
					return true
				}
				if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); !isBuiltin {
					return true
				}
				out = append(out, Finding{
					Pos:  pkg.Fset.Position(call.Pos()),
					Rule: RulePanic,
					Msg:  fmt.Sprintf("panic in sketch package (func %s): return an error, move the check to an invariant file, or document the panic in the doc comment", fn.Name.Name),
				})
				return true
			})
		}
	}
	return out
}
