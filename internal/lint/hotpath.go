package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// hotpathDirective marks a function as allocation-sensitive: the
// per-event insert/batch kernels and mapping index functions whose
// cost the benchmarks gate. The annotation is a contract, enforced
// here and by the AllocsPerRun regression tests that accompany it.
const hotpathDirective = "//sketch:hotpath"

// checkHotpathAlloc analyses every function annotated //sketch:hotpath
// for the three allocation patterns that silently wreck a kernel:
//
//   - interface boxing: passing a concrete value where an interface
//     parameter is expected heap-allocates per call (one escape per
//     event on an insert path);
//   - escaping closures: a func literal that captures variables
//     allocates its environment;
//   - unbounded append: appending inside a loop to a slice that
//     provably starts with zero capacity reallocates log₂(n) times —
//     hot-path slices come from reusable scratch or a sized make.
func checkHotpathAlloc(c *Checker, pkg *Package) []Finding {
	var out []Finding
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotpath(fd) {
				continue
			}
			out = append(out, hotpathBoxing(pkg, fd)...)
			out = append(out, hotpathClosures(pkg, fd)...)
			out = append(out, hotpathAppends(pkg, fd)...)
		}
	}
	return out
}

// isHotpath reports whether fd carries the //sketch:hotpath directive.
// The raw comment list is inspected because go/ast strips directive
// comments from Doc.Text().
func isHotpath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, l := range fd.Doc.List {
		if strings.TrimSpace(l.Text) == hotpathDirective {
			return true
		}
	}
	return false
}

// hotpathBoxing flags call arguments that box a concrete value into an
// interface parameter.
func hotpathBoxing(pkg *Package, fd *ast.FuncDecl) []Finding {
	var out []Finding
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if tv, ok := pkg.Info.Types[call.Fun]; !ok || tv.IsType() {
			return true // conversion, or untyped (builtin)
		}
		sigT, ok := pkg.Info.Types[call.Fun].Type.(*types.Signature)
		if !ok {
			return true
		}
		params := sigT.Params()
		for i, arg := range call.Args {
			var pt types.Type
			switch {
			case sigT.Variadic() && i >= params.Len()-1:
				if call.Ellipsis.IsValid() {
					continue // s... passes the slice through, no boxing
				}
				pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
			case i < params.Len():
				pt = params.At(i).Type()
			default:
				continue
			}
			if _, isIface := pt.Underlying().(*types.Interface); !isIface {
				continue
			}
			at := pkg.Info.Types[arg].Type
			if at == nil || types.Identical(at, types.Typ[types.UntypedNil]) {
				continue
			}
			if _, argIface := at.Underlying().(*types.Interface); argIface {
				continue
			}
			out = append(out, Finding{
				Pos:  pkg.Fset.Position(arg.Pos()),
				Rule: RuleHotpathAlloc,
				Msg:  fmt.Sprintf("hotpath function %s boxes %s into interface parameter of %s (heap allocation per call); use a concrete type or move the call off the hot path", fd.Name.Name, at, exprString(call.Fun)),
			})
		}
		return true
	})
	return out
}

// hotpathClosures flags func literals that capture enclosing variables:
// the captured environment escapes and allocates. Capture-free literals
// compile to static function values and stay.
func hotpathClosures(pkg *Package, fd *ast.FuncDecl) []Finding {
	var out []Finding
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		if captured := capturedVar(pkg, lit); captured != nil {
			out = append(out, Finding{
				Pos:  pkg.Fset.Position(lit.Pos()),
				Rule: RuleHotpathAlloc,
				Msg:  fmt.Sprintf("hotpath function %s builds a closure capturing %q (environment allocation); hoist the closure out of the kernel or pass state explicitly", fd.Name.Name, captured.Name()),
			})
			return false // one finding per literal; skip nested re-reports
		}
		return true
	})
	return out
}

// capturedVar returns a variable the literal captures from its
// enclosing function, or nil.
func capturedVar(pkg *Package, lit *ast.FuncLit) *types.Var {
	var captured *types.Var
	ast.Inspect(lit, func(n ast.Node) bool {
		if captured != nil {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pkg.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Package-level variables are not captures; anything declared
		// outside the literal's span but inside some function is.
		if v.Parent() != nil && v.Parent().Parent() == types.Universe {
			return true
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			captured = v
		}
		return true
	})
	return captured
}

// hotpathAppends flags appends inside loops whose destination slice
// provably starts at zero capacity (var s []T, s := []T{}, or a
// two-argument make). Slices sourced from fields, parameters, reslices
// (scratch[:0]) or a sized make are assumed managed.
func hotpathAppends(pkg *Package, fd *ast.FuncDecl) []Finding {
	var out []Finding
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch loop := n.(type) {
		case *ast.ForStmt:
			body = loop.Body
		case *ast.RangeStmt:
			body = loop.Body
		default:
			return true
		}
		ast.Inspect(body, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || id.Name != "append" {
				return true
			}
			if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); !isBuiltin {
				return true
			}
			dst, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
			if !ok {
				return true
			}
			obj, ok := pkg.Info.Uses[dst].(*types.Var)
			if !ok {
				return true
			}
			if zeroCapSlice(pkg, fd, obj) {
				out = append(out, Finding{
					Pos:  pkg.Fset.Position(call.Pos()),
					Rule: RuleHotpathAlloc,
					Msg:  fmt.Sprintf("hotpath function %s appends to %s inside a loop, and %s starts with zero capacity; preallocate with make(..., 0, n) or reuse a scratch buffer", fd.Name.Name, dst.Name, dst.Name),
				})
			}
			return true
		})
		return true
	})
	return out
}

// zeroCapSlice reports whether every initialization of obj inside fd is
// a provably zero-capacity form. Unknown or managed forms (field loads,
// reslices, sized makes, call results) veto the finding.
func zeroCapSlice(pkg *Package, fd *ast.FuncDecl, obj *types.Var) bool {
	found, zero := false, true
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.DeclStmt:
			gd, ok := st.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if pkg.Info.Defs[name] != obj {
						continue
					}
					found = true
					if len(vs.Values) > i {
						zero = zero && zeroCapExpr(pkg, vs.Values[i], obj)
					}
					// var s []T with no value: zero capacity — keep zero.
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || i >= len(st.Rhs) {
					continue
				}
				if pkg.Info.Defs[id] != obj && pkg.Info.Uses[id] != obj {
					continue
				}
				found = true
				zero = zero && zeroCapExpr(pkg, st.Rhs[i], obj)
			}
		}
		return true
	})
	return found && zero
}

// zeroCapExpr reports whether e provably yields a zero-capacity slice.
// `append(obj, ...)` feeding back into the same variable keeps the
// verdict of the other initializations.
func zeroCapExpr(pkg *Package, e ast.Expr, obj *types.Var) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return len(x.Elts) == 0
	case *ast.CallExpr:
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
			if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
				switch id.Name {
				case "make":
					return len(x.Args) < 3 // make([]T, n) — no spare capacity
				case "append":
					if dst, ok := ast.Unparen(x.Args[0]).(*ast.Ident); ok && pkg.Info.Uses[dst] == obj {
						return true // self-append: judged by the true initializer
					}
				}
			}
		}
		return false // other call results: assume managed
	case *ast.Ident:
		return x.Name == "nil"
	}
	return false
}
