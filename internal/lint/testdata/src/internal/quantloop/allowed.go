package quantloop

// fallback mirrors the real module's generic per-q dispatch loop; the
// file is in QuantileLoopAllowFiles, so nothing here is flagged.
func fallback(s sk, qs []float64) ([]float64, error) {
	out := make([]float64, 0, len(qs))
	for _, q := range qs {
		v, err := s.Quantile(q)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
