// Package quantloop is a lint fixture for the quantile-loop rule: a
// sketch-shaped Quantile (returning an error) queried per loop
// iteration must be flagged; errorless exact-quantile helpers, fixed-q
// calls inside unrelated loops, and allowlisted files must not.
package quantloop

type sk struct{}

// Quantile mimics the sketch contract method shape.
func (sk) Quantile(q float64) (float64, error) { return q, nil }

type exact struct{}

// Quantile mimics an exact-quantile reference helper: no error result.
func (exact) Quantile(q float64) float64 { return q }

func perQuery(s sk, qs []float64) ([]float64, error) {
	out := make([]float64, 0, len(qs))
	for _, q := range qs {
		v, err := s.Quantile(q) // want quantile-loop
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func reference(e exact, qs []float64) []float64 {
	out := make([]float64, 0, len(qs))
	for _, q := range qs {
		out = append(out, e.Quantile(q)) // errorless helper: no finding
	}
	return out
}

func fixedTarget(s sk, names []string) error {
	for range names {
		if _, err := s.Quantile(0.5); err != nil { // fixed q: no finding
			return err
		}
	}
	return nil
}

func single(s sk) (float64, error) {
	return s.Quantile(0.5) // not in a loop: no finding
}
