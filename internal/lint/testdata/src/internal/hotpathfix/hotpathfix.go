// Package hotpathfix is a lint fixture for the hotpath-alloc rule:
// functions annotated //sketch:hotpath must not box values into
// interfaces, build capturing closures, or append in a loop to a slice
// that provably starts with zero capacity. Unannotated functions may
// do all of that freely.
package hotpathfix

import "fmt"

// Stat is the interface used to demonstrate boxing.
type Stat interface{ Observe(x float64) }

// counter implements Stat.
type counter struct{ n int }

// Observe implements Stat.
func (c *counter) Observe(float64) { c.n++ }

// record takes an interface parameter, so concrete arguments box.
func record(s Stat, x float64) { s.Observe(x) }

// sink consumes pre-boxed values; a slice passed through with ... does
// not box again.
func sink(vs ...any) int { return len(vs) }

// Kernel is annotated hot: each allocation pattern below is a finding.
//
//sketch:hotpath
func Kernel(xs []float64, c *counter) float64 {
	var out []float64
	total := 0.0
	for _, x := range xs {
		record(c, x)           // want hotpath-alloc
		out = append(out, x)   // want hotpath-alloc
		label := fmt.Sprint(x) // want hotpath-alloc
		total += x + float64(len(label))
	}
	f := func() float64 { return total } // want hotpath-alloc
	_ = out
	return f()
}

// KernelClean is hot but allocation-free: concrete calls, a sized
// make, a variadic slice passthrough, and no captures.
//
//sketch:hotpath
func KernelClean(xs []float64, pre []any, c *counter) float64 {
	out := make([]float64, 0, len(xs))
	total := 0.0
	for _, x := range xs {
		c.Observe(x) // concrete receiver: no boxing
		out = append(out, x)
		total += x
	}
	return total + float64(len(out)+sink(pre...))
}

// Slow is not annotated: the same patterns are fine off the hot path.
func Slow(xs []float64, c *counter) []float64 {
	var out []float64
	for _, x := range xs {
		record(c, x)
		out = append(out, x)
	}
	return out
}
