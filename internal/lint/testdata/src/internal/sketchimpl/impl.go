// Package sketchimpl is a lint fixture standing in for a sketch
// implementation package. Lines carrying a "want <rule>" comment are
// expected sketchlint findings; everything else must stay clean.
package sketchimpl

import "errors"

// Sketch is a minimal stand-in with the contract method shapes.
type Sketch struct{ count float64 }

// New returns an empty fixture sketch.
func New() *Sketch { return &Sketch{} }

// Quantile mimics the contract method.
func (s *Sketch) Quantile(q float64) (float64, error) {
	if q != q { // want float-eq
		return 0, errors.New("nan quantile")
	}
	if q == 1 { // constant comparison: allowed
		return s.count, nil
	}
	return 0, nil
}

// Rank mimics the contract method.
func (s *Sketch) Rank(x float64) (float64, error) {
	if x == s.count { // want float-eq
		return 1, nil
	}
	return 0, nil
}

// Merge mimics the contract method.
func (s *Sketch) Merge(o *Sketch) error {
	if s.count != o.count { // want float-eq
		panic("count mismatch") // want panic
	}
	return nil
}

// UnmarshalBinary mimics the contract method.
func (s *Sketch) UnmarshalBinary(data []byte) error {
	if len(data) == 0 {
		return errors.New("empty")
	}
	return nil
}

// MustQuantile panics when the query fails; the documented panic is
// allowed by the panic rule.
func (s *Sketch) MustQuantile(q float64) float64 {
	v, err := s.Quantile(q)
	if err != nil {
		panic(err) // allowed: doc comment mentions the panic
	}
	return v
}

func use(s *Sketch) {
	s.Quantile(0.5)         // want unchecked-err
	_ = s.Merge(s)          // want unchecked-err
	v, _ := s.Quantile(0.9) // want unchecked-err
	_ = v
	s.UnmarshalBinary(nil) // want unchecked-err
	defer s.Merge(s)       // want unchecked-err
	if v2, err := s.Quantile(0.2); err == nil {
		_ = v2 // checked: no finding
	}
	if err := s.Merge(s); err != nil {
		_ = err // checked: no finding
	}
}
