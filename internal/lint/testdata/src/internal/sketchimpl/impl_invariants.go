package sketchimpl

// assertInvariants may panic freely: files whose name contains
// "invariant" hold the build-tag-gated assertion hooks.
func (s *Sketch) assertInvariants() {
	if s.count < 0 {
		panic("sketchimpl: negative count") // allowed: invariant file
	}
}
