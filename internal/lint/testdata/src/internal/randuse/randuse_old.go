package randuse

import oldrand "math/rand"

// OldShuffle uses the legacy math/rand global generator.
func OldShuffle(xs []int) {
	oldrand.Shuffle(len(xs), func(i, j int) { // want global-rand
		xs[i], xs[j] = xs[j], xs[i]
	})
}
