// Package randuse is a lint fixture for the global-rand rule.
package randuse

import "math/rand/v2"

// Roll draws from the process-global generator: not reproducible.
func Roll() float64 {
	return rand.Float64() // want global-rand
}

// Pick also touches the global generator.
func Pick(n int) int {
	return rand.IntN(n) // want global-rand
}

// Seeded uses an explicit seeded generator: allowed.
func Seeded(seed uint64) float64 {
	r := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
	return r.Float64()
}
