// Package suppressfix is a lint fixture for //lint:ignore handling: a
// reasoned directive suppresses exactly the named finding on its own
// line or the line below, and directives that excuse nothing (or name
// unknown rules) are findings themselves.
package suppressfix

import "math/rand/v2"

// Jitter draws from the global generator; the directive on the line
// above excuses it, so the global-rand finding is suppressed.
func Jitter() float64 {
	//lint:ignore global-rand fixture: exercising a used next-line suppression
	return rand.Float64()
}

// SameLine exercises the trailing-comment placement.
func SameLine() float64 {
	return rand.Float64() //lint:ignore global-rand fixture: same-line suppression placement
}

// Stale carries a directive whose finding is gone: the directive is
// itself reported.
func Stale() int {
	//lint:ignore global-rand stale excuse, nothing left to suppress // want unused-suppression
	return 4
}

// Unknown names a rule that does not exist: malformed, reported.
func Unknown() int {
	//lint:ignore not-a-rule reasons do not save a bad rule name // want unused-suppression
	return 5
}
