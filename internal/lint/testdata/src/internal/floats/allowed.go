// Package floats is a lint fixture for the float-eq file allowlist.
package floats

// SameBits compares floats exactly; this file is on the allowlist, so
// the comparison must not be reported.
func SameBits(a, b float64) bool {
	return a == b // allowlisted file: no finding
}
