// Package streamimpl is the container-heap rule fixture: a stream-engine
// package (per the fixture config's ContainerHeapScopes) that imports
// the boxing heap.
package streamimpl

import "container/heap" // want container-heap

// events is a heap.Interface implementation over arrival times.
type events []int

func (e events) Len() int           { return len(e) }
func (e events) Less(i, j int) bool { return e[i] < e[j] }
func (e events) Swap(i, j int)      { e[i], e[j] = e[j], e[i] }
func (e *events) Push(x any)        { *e = append(*e, x.(int)) }
func (e *events) Pop() any          { old := *e; n := len(old); x := old[n-1]; *e = old[:n-1]; return x }

// NextArrival pops the earliest arrival.
func NextArrival(e *events) int {
	heap.Init(e)
	return heap.Pop(e).(int)
}

// drain pops the next arrival, aborting on an empty queue (the doc
// comment does not mention the abort mechanism, so the rule fires).
func drain(e *events) int {
	if len(*e) == 0 {
		panic("streamimpl: drain of empty queue") // want naked-panic
	}
	return NextArrival(e)
}

// mustSize validates a window size at construction time. It panics when
// n is non-positive: a programming error caught before any stream runs,
// documented here, so the naked-panic rule stays silent.
func mustSize(n int) int {
	if n <= 0 {
		panic("streamimpl: non-positive size")
	}
	return n
}

var _ = drain
var _ = mustSize
