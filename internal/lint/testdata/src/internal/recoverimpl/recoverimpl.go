// Package recoverimpl is a lint fixture for the recover-swallow rule:
// a recovered panic value must be bound and converted to an error, not
// discarded, blanked, or compared without binding.
package recoverimpl

import "fmt"

// Run demonstrates the accepted containment shape: bind, test, convert.
func Run(fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil { // bound and converted: allowed
			err = fmt.Errorf("contained panic: %v", r)
		}
	}()
	fn()
	return nil
}

// Convert passes the recovered value straight into a converter: the
// value still travels onward, so this is allowed too.
func Convert(fn func()) (err error) {
	defer func() {
		err = asError(recover())
	}()
	fn()
	return
}

// asError turns a recovered value into an error.
func asError(r any) error {
	if r == nil {
		return nil
	}
	return fmt.Errorf("panic: %v", r)
}

// Swallow discards the recover result entirely.
func Swallow(fn func()) {
	defer func() {
		recover() // want recover-swallow
	}()
	fn()
}

// Blank assigns the recovered value to the blank identifier.
func Blank(fn func()) {
	defer func() {
		_ = recover() // want recover-swallow
	}()
	fn()
}

// Compare tests the result without ever binding the panic value.
func Compare(fn func()) (ok bool) {
	ok = true
	defer func() {
		if recover() != nil { // want recover-swallow
			ok = false
		}
	}()
	fn()
	return ok
}

// DirectDefer defers recover alone, suppressing any panic silently.
func DirectDefer(fn func()) {
	defer recover() // want recover-swallow
	fn()
}

// Inline calls recover outside any defer and drops the result.
func Inline() {
	recover() // want recover-swallow
}
