// Package purityfix is a lint fixture for the purity rule: the
// call-graph walk from the encode roots (the MarshalBinary method and
// the configured EncodeState root func) must flag wall-clock reads and
// order-leaking map ranges wherever they are reachable — including
// behind interface dispatch — while the collect-then-sort idiom and
// helpers off the encode paths stay clean.
package purityfix

import (
	"encoding/binary"
	"sort"
	"time"
)

// Hist is a map-backed fixture sketch with an encode entry point.
type Hist struct {
	counts map[int]int64
	stamp  int64
}

// MarshalBinary roots the purity walk; the wall-clock read sits in the
// root itself.
func (h *Hist) MarshalBinary() ([]byte, error) {
	h.stamp = time.Now().UnixNano() // want purity
	var buf []byte
	for _, k := range h.sortedKeys() {
		buf = binary.AppendVarint(buf, int64(k))
		buf = binary.AppendVarint(buf, h.counts[k])
	}
	return h.appendRaw(buf), nil
}

// appendRaw leaks map iteration order into the encoded bytes, one call
// below the root.
func (h *Hist) appendRaw(buf []byte) []byte {
	for k, v := range h.counts { // want purity
		buf = binary.AppendVarint(buf, int64(k))
		buf = binary.AppendVarint(buf, v)
	}
	return buf
}

// sortedKeys is the canonical deterministic form: the map range only
// accumulates locally, and the sort canonicalizes the order.
func (h *Hist) sortedKeys() []int {
	keys := make([]int, 0, len(h.counts))
	for k := range h.counts { // collect-then-sort: allowed
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// store is the dispatch fixture: EncodeState sees only the interface,
// and the walk must still reach the implementation.
type store interface {
	visit(fn func(k int, v int64))
}

// mapStore implements store with an order-leaking range.
type mapStore struct{ m map[int]int64 }

func (s *mapStore) visit(fn func(k int, v int64)) {
	for k, v := range s.m { // want purity
		fn(k, v)
	}
}

// EncodeState is a configured purity root (PurityRootFuncs): the leak
// sits behind the dynamic call to store.visit.
func EncodeState(s store, buf []byte) []byte {
	s.visit(func(k int, v int64) {
		buf = binary.AppendVarint(buf, int64(k))
		buf = binary.AppendVarint(buf, v)
	})
	return buf
}

// debugDump is unreachable from any encode root: wall-clock use is
// allowed off the encode paths.
func debugDump(h *Hist) int64 {
	return time.Now().UnixNano() + h.stamp
}
