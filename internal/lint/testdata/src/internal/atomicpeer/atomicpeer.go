// Package atomicpeer misuses atomicmix.Gauge from another package: the
// atomic-mix rule is module-global, so the plain read here is caught
// even though every atomic access lives in atomicmix.
package atomicpeer

import "fixture/internal/atomicmix"

// Drain snapshots the counter without the required atomic load.
func Drain(g *atomicmix.Gauge) int64 {
	return g.Hits // want atomic-mix
}
