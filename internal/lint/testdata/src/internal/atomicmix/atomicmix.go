// Package atomicmix is a lint fixture for the atomic-mix rule: a field
// touched through sync/atomic anywhere must be touched that way
// everywhere outside its constructor.
package atomicmix

import "sync/atomic"

// Gauge mixes access disciplines across its fields.
type Gauge struct {
	// Hits is exported so internal/atomicpeer can misread it from the
	// other side of the package boundary.
	Hits  int64
	total int64
	safe  int64
}

// NewGauge may initialize plainly: the value is not shared yet.
func NewGauge() *Gauge {
	g := &Gauge{}
	g.Hits = 0  // constructor: allowed
	g.total = 0 // constructor: allowed
	return g
}

// Inc updates every counter atomically, marking the fields.
func (g *Gauge) Inc() {
	atomic.AddInt64(&g.Hits, 1)
	atomic.AddInt64(&g.total, 1)
	atomic.AddInt64(&g.safe, 1)
}

// Total reads total plainly while Inc updates it atomically: racy.
func (g *Gauge) Total() int64 {
	return g.total // want atomic-mix
}

// Safe reads its field the correct way: no finding.
func (g *Gauge) Safe() int64 {
	return atomic.LoadInt64(&g.safe)
}
