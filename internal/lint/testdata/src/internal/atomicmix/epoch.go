// epoch.go models the concurrent shared-sketch idioms the atomic-mix
// rule exists to guard: a handoff epoch counter bumped with
// atomic.AddUint64 and a state pointer published by compare-and-swap.
// Every plain read of either field between atomic operations is a
// race; the typed-atomic spelling is immune by construction.
package atomicmix

import (
	"sync/atomic"
	"unsafe"
)

// Shared models a shared sketch with a legacy (pre-typed-atomic) epoch
// counter and a CAS-published state pointer.
type Shared struct {
	epoch uint64
	state unsafe.Pointer
	// typedEpoch is the modern spelling: the typed atomic's methods
	// cannot be mixed with plain access, so the rule need not track it.
	typedEpoch atomic.Uint64
}

// NewShared may initialize plainly: the value is not shared yet.
func NewShared() *Shared {
	s := &Shared{}
	s.epoch = 0 // constructor: allowed
	return s
}

// Publish CAS-installs new state and bumps the epoch, marking both
// fields as atomically accessed for the rest of the module.
func (s *Shared) Publish(p unsafe.Pointer) {
	for {
		old := atomic.LoadPointer(&s.state)
		if atomic.CompareAndSwapPointer(&s.state, old, p) {
			atomic.AddUint64(&s.epoch, 1)
			return
		}
	}
}

// Epoch reads the counter plainly between atomic bumps: racy.
func (s *Shared) Epoch() uint64 {
	return s.epoch // want atomic-mix
}

// Reset rewrites the CAS-published pointer without the CAS: a reader
// loading it atomically can still observe a torn or stale value.
func (s *Shared) Reset() {
	s.state = nil // want atomic-mix
}

// Bump uses the typed atomic correctly: no finding.
func (s *Shared) Bump() uint64 {
	return s.typedEpoch.Add(1)
}
