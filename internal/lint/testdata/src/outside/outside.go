// Package outside sits outside internal/: the global-rand and panic
// rules do not apply here, but unchecked-err still does.
package outside

import "math/rand/v2"

// Jitter may use the global generator outside internal/.
func Jitter() float64 {
	return rand.Float64() // allowed: outside the configured scope
}

// Fail panics outside a sketch package: allowed.
func Fail() {
	panic("outside: not a sketch package")
}
