package lint

import (
	"fmt"
	"go/types"
	"sort"
	"strings"
)

// checkPurity walks the call graph from the configured encode roots
// (MarshalBinary methods, checkpoint snapshot encoders) and reports
// every reachable nondeterminism source. Replay bit-identity — the
// crash-recovery contract and the reproducibility premise of every
// regenerated experiment table — holds only if serialized bytes are a
// pure function of sketch state, so nothing on an encode path may read
// the wall clock, draw from the process-global RNG, or iterate a map in
// a way that leaks the (randomized) iteration order into the output.
func checkPurity(c *Checker) []Finding {
	roots := c.purityRoots()
	if len(roots) == 0 {
		return nil
	}
	// Multi-source BFS with parent links for path reporting.
	parent := make(map[*types.Func]*types.Func)
	visited := make(map[*types.Func]bool)
	var queue []*types.Func
	for _, r := range roots {
		if !visited[r.fn] {
			visited[r.fn] = true
			queue = append(queue, r.fn)
		}
	}
	var out []Finding
	report := func(fn *types.Func, node *funcNode) {
		for _, op := range node.ops {
			var what string
			switch op.kind {
			case opTimeNow:
				what = fmt.Sprintf("calls %s (wall-clock read)", op.detail)
			case opGlobalRand:
				what = fmt.Sprintf("calls %s (process-global RNG)", op.detail)
			case opMapRange:
				what = fmt.Sprintf("ranges over map %s with order-leaking loop body; collect and sort the keys first", op.detail)
			}
			out = append(out, Finding{
				Pos:  node.pkg.Fset.Position(op.pos),
				Rule: RulePurity,
				Msg:  fmt.Sprintf("%s on a deterministic encode path (%s); serialized bytes must be a pure function of state", what, pathTo(parent, fn)),
			})
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		node, ok := c.nodes[fn]
		if !ok {
			continue // declared outside the module (stdlib): no body to walk
		}
		report(fn, node)
		for _, callee := range node.callees {
			if !visited[callee] {
				visited[callee] = true
				parent[callee] = fn
				queue = append(queue, callee)
			}
		}
	}
	return out
}

// purityRoots resolves Config.PurityRootMethods (any module method with
// that name) and Config.PurityRootFuncs ("relpath.Name" entries) to
// graph nodes, in deterministic order.
func (c *Checker) purityRoots() []*funcNode {
	methods := make(map[string]bool, len(c.Cfg.PurityRootMethods))
	for _, m := range c.Cfg.PurityRootMethods {
		methods[m] = true
	}
	funcs := make(map[string]bool, len(c.Cfg.PurityRootFuncs))
	for _, f := range c.Cfg.PurityRootFuncs {
		funcs[f] = true
	}
	var out []*funcNode
	for fn, node := range c.nodes {
		isMethodRoot := sig(fn).Recv() != nil && methods[fn.Name()]
		if isMethodRoot || funcs[node.pkg.RelPath+"."+fn.Name()] {
			out = append(out, node)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].decl.Pos() < out[j].decl.Pos() })
	return out
}

// pathTo renders the BFS call chain from a root to fn, e.g.
// "reachable from Sketch.MarshalBinary via Sketch.MarshalBinary →
// SparseStore.ForEach".
func pathTo(parent map[*types.Func]*types.Func, fn *types.Func) string {
	var chain []string
	for f := fn; f != nil; f = parent[f] {
		chain = append(chain, shortName(f))
	}
	// chain is leaf→root; reverse it.
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	if len(chain) == 1 {
		return "in encode root " + chain[0]
	}
	const maxHops = 6
	if len(chain) > maxHops {
		chain = append(chain[:maxHops-1], "…", chain[len(chain)-1])
	}
	return "reachable from " + chain[0] + " via " + strings.Join(chain[1:], " → ")
}
