package lint

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fixtureConfig mirrors DefaultConfig but targets the fixture module
// under testdata/src.
func fixtureConfig() Config {
	return Config{
		CheckedMethods:         []string{"Quantile", "Rank", "Merge", "UnmarshalBinary"},
		SketchPackages:         []string{"internal/sketchimpl"},
		GlobalRandScopes:       []string{"internal"},
		FloatEqAllowFiles:      []string{"internal/floats/allowed.go"},
		ContainerHeapScopes:    []string{"internal/streamimpl"},
		QuantileLoopAllowFiles: []string{"internal/quantloop/allowed.go"},
		NoPanicScopes:          []string{"internal/streamimpl"},
		RecoverScopes:          []string{"internal/recoverimpl"},
		PurityRootMethods:      []string{"MarshalBinary"},
		PurityRootFuncs:        []string{"internal/purityfix.EncodeState"},
	}
}

// wantMarkers scans every fixture source file for "want <rule>" line
// comments and returns the expected findings keyed "file:line:rule"
// (file relative to root).
func wantMarkers(t *testing.T, root string) map[string]bool {
	t.Helper()
	want := make(map[string]bool)
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		rel, _ := filepath.Rel(root, path)
		sc := bufio.NewScanner(f)
		line := 0
		for sc.Scan() {
			line++
			text := sc.Text()
			i := strings.Index(text, "// want ")
			if i < 0 {
				continue
			}
			for _, rule := range strings.Fields(text[i+len("// want "):]) {
				want[fmt.Sprintf("%s:%d:%s", rel, line, rule)] = true
			}
		}
		return sc.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	return want
}

// TestFixtureFindings loads the fixture module and checks that the
// analyzer reports exactly the marked lines: every rule must fire on
// its violation and stay silent everywhere else.
func TestFixtureFindings(t *testing.T) {
	root := filepath.Join("testdata", "src")
	findings, err := CheckAll(root, fixtureConfig())
	if err != nil {
		t.Fatal(err)
	}
	absRoot, err := filepath.Abs(root)
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string]bool)
	for _, f := range findings {
		rel, err := filepath.Rel(absRoot, f.Pos.Filename)
		if err != nil {
			t.Fatalf("finding outside fixture root: %v", f)
		}
		key := fmt.Sprintf("%s:%d:%s", rel, f.Pos.Line, f.Rule)
		if got[key] {
			t.Errorf("duplicate finding %s", key)
		}
		got[key] = true
	}
	want := wantMarkers(t, root)
	for key := range want {
		if !got[key] {
			t.Errorf("missing expected finding %s", key)
		}
	}
	for key := range got {
		if !want[key] {
			t.Errorf("unexpected finding %s", key)
		}
	}
	// Sanity: the fixture exercises every rule at least once.
	rules := map[string]bool{}
	for _, f := range findings {
		rules[f.Rule] = true
	}
	for _, r := range Rules() {
		if !rules[r] {
			t.Errorf("rule %s never fired on the fixtures", r)
		}
	}
}

// TestLoaderTypeChecks ensures the fixture packages type-check cleanly;
// rules run best-effort on broken code, but the fixtures themselves
// must be valid so the expectations are trustworthy.
func TestLoaderTypeChecks(t *testing.T) {
	l, err := NewLoader(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 4 {
		t.Fatalf("loaded %d fixture packages, want >= 4", len(pkgs))
	}
	for _, p := range pkgs {
		for _, terr := range p.TypeErrors {
			t.Errorf("%s: type error: %v", p.ImportPath, terr)
		}
	}
}

// TestSelfCheck runs the default configuration over this repository:
// the tree must stay sketchlint-clean (the same gate scripts/verify.sh
// enforces).
func TestSelfCheck(t *testing.T) {
	root := filepath.Join("..", "..")
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Skipf("module root not found: %v", err)
	}
	findings, err := CheckAll(root, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
