package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Checker runs the rule suite over a whole loaded module. Per-package
// rules see one package at a time; module rules (purity, atomic-mix)
// see every package at once through the conservative call graph built
// here, so facts can flow across function and package boundaries.
type Checker struct {
	// Pkgs are the loaded packages, sorted by import path.
	Pkgs []*Package
	// Cfg is the rule configuration.
	Cfg Config

	// nodes indexes every declared function/method with a body.
	nodes map[*types.Func]*funcNode
	// concreteTypes are the named non-interface types of the module, in
	// deterministic (package, name) order, used for interface method-set
	// expansion.
	concreteTypes []*types.Named
	// implCache memoizes interface-method → concrete-method expansion.
	implCache map[*types.Func][]*types.Func
}

// opKind classifies a purity-forbidden operation found in a function
// body.
type opKind int

const (
	opTimeNow opKind = iota
	opGlobalRand
	opMapRange
)

// forbiddenOp is one nondeterminism source recorded during the body
// scan: a wall-clock read, a draw from the process-global RNG, or a
// map iteration whose body leaks iteration order.
type forbiddenOp struct {
	pos  token.Pos
	kind opKind
	// detail names the offending call ("time.Now") or map expression.
	detail string
}

// funcNode is one function in the call graph.
type funcNode struct {
	fn   *types.Func
	decl *ast.FuncDecl
	pkg  *Package
	// callees are the statically resolvable outgoing edges, in source
	// order: direct calls, interface calls expanded over module method
	// sets, and functions referenced as values (conservatively assumed
	// called).
	callees []*types.Func
	// ops are the purity-forbidden operations in this body.
	ops []forbiddenOp
}

// shortName renders a function for path reporting: "Type.Method" or
// "pkg.Func".
func shortName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			return n.Obj().Name() + "." + fn.Name()
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// NewChecker indexes pkgs and builds the call graph. It fails when the
// configuration names scopes, files, or purity roots that match nothing
// in the loaded module: a dead scope silently disables a gate, which is
// exactly the failure mode the linter exists to prevent.
func NewChecker(pkgs []*Package, cfg Config) (*Checker, error) {
	c := &Checker{
		Pkgs:      pkgs,
		Cfg:       cfg,
		nodes:     make(map[*types.Func]*funcNode),
		implCache: make(map[*types.Func][]*types.Func),
	}
	c.collectTypes()
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				c.nodes[fn] = &funcNode{fn: fn, decl: fd, pkg: pkg}
			}
		}
	}
	for _, node := range c.sortedNodes() {
		c.scanBody(node)
	}
	if missing := c.unmatchedConfig(); len(missing) > 0 {
		return nil, fmt.Errorf("lint: config entries match nothing in the module: %s", strings.Join(missing, ", "))
	}
	return c, nil
}

// sortedNodes returns the graph nodes in deterministic source order.
func (c *Checker) sortedNodes() []*funcNode {
	out := make([]*funcNode, 0, len(c.nodes))
	for _, n := range c.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].decl.Pos() < out[j].decl.Pos() })
	return out
}

// collectTypes gathers the module's named concrete types for interface
// expansion, in deterministic order.
func (c *Checker) collectTypes() {
	for _, pkg := range c.Pkgs {
		if pkg.Types == nil {
			continue
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if _, isIface := named.Underlying().(*types.Interface); isIface {
				continue
			}
			c.concreteTypes = append(c.concreteTypes, named)
		}
	}
}

// implementations expands an interface method to every module method
// that can satisfy it: for each named concrete type whose method set
// (value or pointer) implements the interface, the concrete method of
// the same name. This is what makes the purity walk sound across
// dynamic dispatch — Store.ForEach reaches every store implementation.
func (c *Checker) implementations(ifaceMethod *types.Func) []*types.Func {
	if out, ok := c.implCache[ifaceMethod]; ok {
		return out
	}
	var out []*types.Func
	sig := ifaceMethod.Type().(*types.Signature)
	recv := sig.Recv()
	if recv == nil {
		c.implCache[ifaceMethod] = nil
		return nil
	}
	iface, ok := recv.Type().Underlying().(*types.Interface)
	if !ok {
		c.implCache[ifaceMethod] = nil
		return nil
	}
	for _, named := range c.concreteTypes {
		ptr := types.NewPointer(named)
		if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
			continue
		}
		sel := types.NewMethodSet(ptr).Lookup(ifaceMethod.Pkg(), ifaceMethod.Name())
		if sel == nil {
			continue
		}
		if m, ok := sel.Obj().(*types.Func); ok {
			out = append(out, m)
		}
	}
	c.implCache[ifaceMethod] = out
	return out
}

// isInterfaceMethod reports whether fn is declared on an interface.
func isInterfaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	_, ok = sig.Recv().Type().Underlying().(*types.Interface)
	return ok
}

// timeForbidden are the time package functions that read the wall
// clock.
var timeForbidden = map[string]bool{"Now": true, "Since": true, "Until": true}

// scanBody records node's outgoing call edges and purity-forbidden
// operations. Function literals nested in the body are attributed to
// the enclosing declaration: a closure handed to Store.ForEach runs on
// the encode path even though no static call site names it.
func (c *Checker) scanBody(node *funcNode) {
	pkg := node.pkg
	// calleeIdents marks identifiers appearing in call position so the
	// value-reference pass below doesn't double-count them.
	calleeIdents := make(map[*ast.Ident]bool)
	addCallee := func(fn *types.Func) {
		if fn == nil {
			return
		}
		if isInterfaceMethod(fn) {
			node.callees = append(node.callees, c.implementations(fn)...)
			return
		}
		node.callees = append(node.callees, fn)
	}
	ast.Inspect(node.decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			fn, id := c.resolveCallee(pkg, x)
			if id != nil {
				calleeIdents[id] = true
			}
			if fn == nil {
				return true
			}
			if fn.Pkg() != nil {
				switch p := fn.Pkg().Path(); {
				case p == "time" && timeForbidden[fn.Name()]:
					node.ops = append(node.ops, forbiddenOp{pos: x.Pos(), kind: opTimeNow, detail: "time." + fn.Name()})
				case (p == "math/rand" || p == "math/rand/v2") && !globalRandAllowed[fn.Name()] && sig(fn).Recv() == nil:
					node.ops = append(node.ops, forbiddenOp{pos: x.Pos(), kind: opGlobalRand, detail: fn.Pkg().Name() + "." + fn.Name()})
				}
			}
			addCallee(fn)
		case *ast.RangeStmt:
			if tv, ok := pkg.Info.Types[x.X]; ok && tv.Type != nil {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap && mapRangeLeaksOrder(pkg, x.Body) {
					node.ops = append(node.ops, forbiddenOp{pos: x.Pos(), kind: opMapRange, detail: exprString(x.X)})
				}
			}
		}
		return true
	})
	// Second pass: functions referenced as values (sort.Slice(less),
	// callbacks stored in fields) are conservatively assumed called.
	ast.Inspect(node.decl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || calleeIdents[id] {
			return true
		}
		if fn, ok := pkg.Info.Uses[id].(*types.Func); ok {
			addCallee(fn)
		}
		return true
	})
}

// sig returns fn's signature.
func sig(fn *types.Func) *types.Signature { return fn.Type().(*types.Signature) }

// resolveCallee statically resolves a call expression to a function
// object, also returning the identifier that named it (for the
// value-reference pass). Conversions and builtins resolve to nil.
func (c *Checker) resolveCallee(pkg *Package, call *ast.CallExpr) (*types.Func, *ast.Ident) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pkg.Info.Uses[fun].(*types.Func)
		return fn, fun
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn, fun.Sel
		}
		// Qualified call into another package: pkg.Func(...).
		fn, _ := pkg.Info.Uses[fun.Sel].(*types.Func)
		return fn, fun.Sel
	}
	return nil, nil
}

// orderInsensitiveBuiltins may appear inside a map-range body without
// leaking iteration order: they only build local state that a later
// (sorted) pass can canonicalize.
var orderInsensitiveBuiltins = map[string]bool{
	"append": true, "len": true, "cap": true, "delete": true,
	"copy": true, "min": true, "max": true, "make": true, "new": true,
}

// mapRangeLeaksOrder reports whether a map-range body can leak the
// iteration order into observable output. Pure local accumulation
// (append, arithmetic, min/max tracking) is order-insensitive — that is
// exactly the collect-keys-then-sort idiom — but calling any function,
// returning, or sending on a channel inside the loop emits per-element
// effects in map order.
func mapRangeLeaksOrder(pkg *Package, body *ast.BlockStmt) bool {
	leaks := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if tv, ok := pkg.Info.Types[x.Fun]; ok && tv.IsType() {
				return true // conversion
			}
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
				if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin && orderInsensitiveBuiltins[id.Name] {
					return true
				}
			}
			leaks = true
		case *ast.ReturnStmt, *ast.SendStmt:
			leaks = true
		}
		return true
	})
	return leaks
}

// exprString renders a short source-ish form of an expression for
// messages.
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.CallExpr:
		return exprString(x.Fun) + "(...)"
	case *ast.ParenExpr:
		return exprString(x.X)
	}
	return "expression"
}

// relFile returns the module-relative path of the file containing pos.
func (c *Checker) relFile(pkg *Package, pos token.Pos) string {
	base := pkg.Fset.Position(pos).Filename
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	if pkg.RelPath == "" {
		return base
	}
	return pkg.RelPath + "/" + base
}

// inScopes reports whether a module-relative package path falls under
// any of the listed scope prefixes.
func inScopes(rel string, scopes []string) bool {
	for _, s := range scopes {
		if rel == s || strings.HasPrefix(rel, s+"/") {
			return true
		}
	}
	return false
}

// unmatchedConfig lists configuration entries that match nothing in the
// loaded module.
func (c *Checker) unmatchedConfig() []string {
	pkgSet := make(map[string]bool, len(c.Pkgs))
	fileSet := make(map[string]bool)
	funcSet := make(map[string]bool)
	methodSet := make(map[string]bool)
	for _, pkg := range c.Pkgs {
		pkgSet[pkg.RelPath] = true
		for _, f := range pkg.Files {
			fileSet[c.relFile(pkg, f.Pos())] = true
		}
	}
	for fn, node := range c.nodes {
		funcSet[node.pkg.RelPath+"."+fn.Name()] = true
		if sig(fn).Recv() != nil {
			methodSet[fn.Name()] = true
		}
	}
	anyPrefix := func(scope string) bool {
		for rel := range pkgSet {
			if rel == scope || strings.HasPrefix(rel, scope+"/") {
				return true
			}
		}
		return false
	}
	var missing []string
	add := func(kind, entry string) { missing = append(missing, kind+" "+entry) }
	for _, p := range c.Cfg.SketchPackages {
		if !pkgSet[p] {
			add("sketch package", p)
		}
	}
	for _, scopes := range [][]string{c.Cfg.GlobalRandScopes, c.Cfg.ContainerHeapScopes, c.Cfg.NoPanicScopes, c.Cfg.RecoverScopes} {
		for _, s := range scopes {
			if !anyPrefix(s) {
				add("scope", s)
			}
		}
	}
	for _, files := range [][]string{c.Cfg.FloatEqAllowFiles, c.Cfg.QuantileLoopAllowFiles} {
		for _, f := range files {
			if !fileSet[f] {
				add("file", f)
			}
		}
	}
	for _, fn := range c.Cfg.PurityRootFuncs {
		if !funcSet[fn] {
			add("purity root func", fn)
		}
	}
	for _, m := range c.Cfg.PurityRootMethods {
		if !methodSet[m] {
			add("purity root method", m)
		}
	}
	sort.Strings(missing)
	return missing
}
