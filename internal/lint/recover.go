package lint

import (
	"go/ast"
	"go/types"
)

// checkRecoverSwallow flags recover() calls whose value is thrown away:
// bare expression statements, assignments to the blank identifier, and
// comparisons that never bind the value (`recover() != nil`). The
// repository's containment discipline (PR 5) is that a recovered panic
// becomes a *PanicError carrying the original value and stack — a
// swallowed recover masks the failure entirely, and a compared-but-
// unbound recover loses the panic value the error needs. The accepted
// shape is `if r := recover(); r != nil { ... asPanicError(r) ... }`
// (or passing recover() directly into a converter).
func checkRecoverSwallow(c *Checker, pkg *Package) []Finding {
	if !inScopes(pkg.RelPath, c.Cfg.RecoverScopes) {
		return nil
	}
	var out []Finding
	flag := func(call *ast.CallExpr, how string) {
		out = append(out, Finding{
			Pos:  pkg.Fset.Position(call.Pos()),
			Rule: RuleRecoverSwallow,
			Msg:  "recover() " + how + "; bind the value and convert it to an error (asPanicError-style) so the failure is contained, not hidden",
		})
	}
	for _, f := range pkg.Files {
		// Track the node stack: ast.Inspect calls f(nil) after each
		// subtree, so push on non-nil and pop on nil.
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			call, ok := n.(*ast.CallExpr)
			if !ok || !isRecoverCall(pkg, call) {
				return true
			}
			switch parent := nearestParent(stack).(type) {
			case *ast.ExprStmt:
				flag(call, "result is discarded")
			case *ast.DeferStmt:
				flag(call, "result is discarded (deferred recover() alone suppresses the panic silently)")
			case *ast.GoStmt:
				flag(call, "result is discarded")
			case *ast.AssignStmt:
				for i, rhs := range parent.Rhs {
					if ast.Unparen(rhs) != call || i >= len(parent.Lhs) {
						continue
					}
					if id, ok := parent.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
						flag(call, "result is assigned to _")
					}
				}
			case *ast.BinaryExpr:
				flag(call, "result is compared but never bound")
			}
			return true
		})
	}
	return out
}

// nearestParent returns the closest enclosing node of the call at the
// top of the stack, skipping parentheses.
func nearestParent(stack []ast.Node) ast.Node {
	for i := len(stack) - 2; i >= 0; i-- {
		if _, ok := stack[i].(*ast.ParenExpr); ok {
			continue
		}
		return stack[i]
	}
	return nil
}

// isRecoverCall reports whether call invokes the recover builtin.
func isRecoverCall(pkg *Package, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "recover" {
		return false
	}
	_, isBuiltin := pkg.Info.Uses[id].(*types.Builtin)
	return isBuiltin
}
