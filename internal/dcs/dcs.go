package dcs

import (
	"fmt"
	"math"

	"repro/internal/sketch"
)

// exactLevelThreshold: dyadic levels with at most this many blocks store
// exact counters instead of a Count-Sketch (cheaper AND error-free — the
// standard DCS optimization for the top of the tree).
const exactLevelThreshold = 4096

// Sketch is a Dyadic Count Sketch over the integer universe [0, 2^LogU).
type Sketch struct {
	logU  int
	depth int
	width int
	seed  uint64

	sketches []*CountSketch // per level, nil where exact
	exact    [][]int64      // per level, nil where sketched
	count    int64          // signed live count (inserts − deletes)
}

// New returns a DCS over [0, 2^logU) with per-level Count-Sketches of
// the given depth×width (width rounded to a power of two).
func New(logU, depth, width int, seed uint64) (*Sketch, error) {
	if logU < 1 || logU > 62 {
		return nil, fmt.Errorf("dcs: logU must be in [1,62], got %d", logU)
	}
	s := &Sketch{
		logU:     logU,
		depth:    depth,
		width:    width,
		seed:     seed,
		sketches: make([]*CountSketch, logU),
		exact:    make([][]int64, logU),
	}
	for lvl := 0; lvl < logU; lvl++ {
		blocks := uint64(1) << uint(logU-lvl)
		if blocks <= exactLevelThreshold {
			s.exact[lvl] = make([]int64, blocks)
		} else {
			levelSeed := seed ^ (uint64(lvl)+1)*0x9e3779b97f4a7c15
			s.sketches[lvl] = NewCountSketch(depth, width, levelSeed)
		}
	}
	return s, nil
}

// LogU returns the configured universe size exponent.
func (s *Sketch) LogU() int { return s.logU }

// Update adds delta occurrences of x (delta = −1 deletes; DCS is a
// turnstile sketch). Out-of-universe values are clamped.
func (s *Sketch) Update(x uint64, delta int64) {
	if x >= uint64(1)<<uint(s.logU) {
		x = uint64(1)<<uint(s.logU) - 1
	}
	for lvl := 0; lvl < s.logU; lvl++ {
		block := x >> uint(lvl)
		if ex := s.exact[lvl]; ex != nil {
			ex[block] += delta
		} else {
			s.sketches[lvl].Update(block, delta)
		}
	}
	s.count += delta
}

// Insert adds one occurrence of x.
func (s *Sketch) Insert(x uint64) { s.Update(x, 1) }

// Delete removes one occurrence of x.
func (s *Sketch) Delete(x uint64) { s.Update(x, -1) }

// Count returns the live count.
func (s *Sketch) Count() uint64 {
	if s.count < 0 {
		return 0
	}
	return uint64(s.count)
}

// estimate returns the estimated count of the dyadic block at level lvl.
func (s *Sketch) estimate(lvl int, block uint64) int64 {
	if ex := s.exact[lvl]; ex != nil {
		return ex[block]
	}
	return s.sketches[lvl].Estimate(block)
}

// RankCount estimates the number of live values ≤ x by summing the
// dyadic decomposition of [0, x].
func (s *Sketch) RankCount(x uint64) int64 {
	u := uint64(1) << uint(s.logU)
	if x >= u-1 {
		return s.count
	}
	n := x + 1 // size of [0, x]
	var rank int64
	var start uint64
	for lvl := s.logU - 1; lvl >= 0; lvl-- {
		if n&(uint64(1)<<uint(lvl)) == 0 {
			continue
		}
		rank += s.estimate(lvl, start>>uint(lvl))
		start += uint64(1) << uint(lvl)
	}
	return rank
}

// Rank returns the estimated fraction of live values ≤ x.
func (s *Sketch) Rank(x uint64) (float64, error) {
	if s.count <= 0 {
		return 0, sketch.ErrEmpty
	}
	r := float64(s.RankCount(x)) / float64(s.count)
	if r < 0 {
		r = 0
	}
	if r > 1 {
		r = 1
	}
	return r, nil
}

// Quantile estimates the q-quantile by descending the dyadic tree: at
// each level, go left if the left child already covers the target rank.
func (s *Sketch) Quantile(q float64) (uint64, error) {
	if err := sketch.CheckQuantile(q); err != nil {
		return 0, err
	}
	if s.count <= 0 {
		return 0, sketch.ErrEmpty
	}
	target := int64(math.Ceil(q * float64(s.count)))
	if target < 1 {
		target = 1
	}
	var block uint64 // current block at the current level
	var before int64 // estimated count strictly below current block
	for lvl := s.logU - 1; lvl >= 0; lvl-- {
		// Children of block at level lvl+1 are 2b and 2b+1 at level lvl.
		left := block << 1
		leftCount := s.estimate(lvl, left)
		if before+leftCount >= target {
			block = left
		} else {
			before += leftCount
			block = left + 1
		}
	}
	return block, nil
}

// Merge folds other into the receiver (counter addition; both must be
// constructed with identical parameters and seed).
func (s *Sketch) Merge(other *Sketch) error {
	if other.logU != s.logU || other.depth != s.depth || other.width != s.width || other.seed != s.seed {
		return fmt.Errorf("%w: dcs config mismatch", sketch.ErrIncompatible)
	}
	for lvl := 0; lvl < s.logU; lvl++ {
		switch {
		case s.exact[lvl] != nil:
			for i, c := range other.exact[lvl] {
				s.exact[lvl][i] += c
			}
		default:
			if !s.sketches[lvl].Merge(other.sketches[lvl]) {
				return fmt.Errorf("%w: dcs level %d mismatch", sketch.ErrIncompatible, lvl)
			}
		}
	}
	s.count += other.count
	return nil
}

// MemoryBytes reports the structural footprint: all counters at 8 bytes.
func (s *Sketch) MemoryBytes() int {
	n := 4
	for lvl := 0; lvl < s.logU; lvl++ {
		if ex := s.exact[lvl]; ex != nil {
			n += len(ex)
		} else {
			n += s.sketches[lvl].Counters()
		}
	}
	return 8 * n
}

// Reset zeroes the sketch.
func (s *Sketch) Reset() {
	for lvl := 0; lvl < s.logU; lvl++ {
		if ex := s.exact[lvl]; ex != nil {
			for i := range ex {
				ex[i] = 0
			}
		} else {
			s.sketches[lvl].Reset()
		}
	}
	s.count = 0
}
